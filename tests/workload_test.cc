#include <gtest/gtest.h>

#include <set>

#include "net/headers.h"
#include "workload/traffic_gen.h"

namespace gigascope::workload {
namespace {

TrafficConfig SmallConfig() {
  TrafficConfig config;
  config.seed = 123;
  config.offered_bits_per_sec = 10e6;
  config.num_flows = 50;
  config.mean_payload = 200;
  return config;
}

TEST(TrafficGenTest, Deterministic) {
  TrafficGenerator a(SmallConfig());
  TrafficGenerator b(SmallConfig());
  for (int i = 0; i < 200; ++i) {
    net::Packet pa = a.Next();
    net::Packet pb = b.Next();
    EXPECT_EQ(pa.timestamp, pb.timestamp);
    EXPECT_EQ(pa.bytes, pb.bytes);
  }
}

TEST(TrafficGenTest, TimestampsStrictlyIncreasing) {
  TrafficGenerator gen(SmallConfig());
  SimTime last = -1;
  for (int i = 0; i < 500; ++i) {
    net::Packet packet = gen.Next();
    EXPECT_GT(packet.timestamp, last);
    last = packet.timestamp;
  }
}

TEST(TrafficGenTest, PacketsAreWellFormed) {
  TrafficGenerator gen(SmallConfig());
  for (int i = 0; i < 300; ++i) {
    net::Packet packet = gen.Next();
    auto decoded = net::DecodePacket(packet.view());
    ASSERT_TRUE(decoded.ok());
    ASSERT_TRUE(decoded->is_ipv4());
    EXPECT_TRUE(decoded->is_tcp() || decoded->is_udp());
    EXPECT_EQ(packet.orig_len, packet.bytes.size());
  }
}

TEST(TrafficGenTest, OfferedRateApproximatelyHonored) {
  TrafficConfig config = SmallConfig();
  config.offered_bits_per_sec = 50e6;
  config.burstiness = 1.0;  // smooth arrivals for a tight estimate
  TrafficGenerator gen(config);
  uint64_t bits = 0;
  net::Packet last;
  for (int i = 0; i < 20000; ++i) {
    last = gen.Next();
    bits += static_cast<uint64_t>(last.orig_len) * 8;
  }
  double seconds =
      static_cast<double>(last.timestamp) / kNanosPerSecond;
  double rate = static_cast<double>(bits) / seconds;
  EXPECT_NEAR(rate, 50e6, 10e6);
}

TEST(TrafficGenTest, Port80FractionHonored) {
  TrafficConfig config = SmallConfig();
  config.num_flows = 5000;
  config.port80_fraction = 0.3;
  config.http_fraction = 0.5;
  TrafficGenerator gen(config);
  int port80 = 0, total = 5000;
  for (int i = 0; i < total; ++i) {
    net::Packet packet = gen.Next();
    auto decoded = net::DecodePacket(packet.view());
    ASSERT_TRUE(decoded.ok());
    if (decoded->is_tcp() && decoded->tcp->dst_port == 80) ++port80;
  }
  EXPECT_NEAR(static_cast<double>(port80) / total, 0.3, 0.06);
}

TEST(TrafficGenTest, HttpPayloadsOnlyOnPort80) {
  TrafficConfig config = SmallConfig();
  config.num_flows = 2000;
  config.port80_fraction = 0.5;
  config.http_fraction = 1.0;  // all port-80 payloads are genuine HTTP
  TrafficGenerator gen(config);
  for (int i = 0; i < 2000; ++i) {
    net::Packet packet = gen.Next();
    auto decoded = net::DecodePacket(packet.view());
    ASSERT_TRUE(decoded.ok());
    std::string payload(
        reinterpret_cast<const char*>(decoded->payload.data()),
        decoded->payload.size());
    bool has_marker = payload.find("HTTP/1") != std::string::npos;
    if (decoded->is_tcp() && decoded->tcp->dst_port == 80) {
      EXPECT_TRUE(has_marker) << "port-80 payload lacks HTTP marker";
    } else {
      EXPECT_FALSE(has_marker) << "non-port-80 payload contains HTTP marker";
    }
  }
}

TEST(TrafficGenTest, FlowPopulationBounded) {
  TrafficConfig config = SmallConfig();
  config.num_flows = 10;
  TrafficGenerator gen(config);
  std::set<std::pair<uint32_t, uint16_t>> endpoints;
  for (int i = 0; i < 1000; ++i) {
    net::Packet packet = gen.Next();
    auto decoded = net::DecodePacket(packet.view());
    ASSERT_TRUE(decoded.ok());
    uint16_t port = decoded->is_tcp()   ? decoded->tcp->dst_port
                    : decoded->is_udp() ? decoded->udp->dst_port
                                        : 0;
    endpoints.insert({decoded->ip->dst_addr, port});
  }
  EXPECT_LE(endpoints.size(), 10u);
}

TEST(PayloadTest, HttpPayloadMatchesMarker) {
  Rng rng(5);
  std::string payload = MakeHttpPayload(rng, 100);
  EXPECT_EQ(payload.rfind("HTTP/1.1 ", 0), 0u);
  EXPECT_GE(payload.size(), 100u);
}

TEST(PayloadTest, OpaquePayloadNeverContainsMarker) {
  Rng rng(6);
  for (int i = 0; i < 100; ++i) {
    std::string payload = MakeOpaquePayload(rng, 500);
    EXPECT_EQ(payload.find("HTTP/1"), std::string::npos);
  }
}

}  // namespace
}  // namespace gigascope::workload
