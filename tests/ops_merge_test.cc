#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "ops/merge.h"
#include "rts/punctuation.h"

namespace gigascope::ops {
namespace {

using expr::Value;
using gsql::DataType;
using gsql::FieldDef;
using gsql::OrderSpec;
using gsql::StreamKind;
using gsql::StreamSchema;

StreamSchema MergeSchema(const std::string& name, uint64_t band = 0) {
  std::vector<FieldDef> fields;
  fields.push_back({"time", DataType::kUint,
                    band > 0 ? OrderSpec::Banded(band)
                             : OrderSpec::Increasing()});
  fields.push_back({"v", DataType::kUint, OrderSpec::None()});
  return StreamSchema(name, StreamKind::kStream, fields);
}

class MergeTest : public ::testing::Test {
 protected:
  void Init(uint64_t band = 0) {
    ASSERT_TRUE(registry_.DeclareStream(MergeSchema("a", band)).ok());
    ASSERT_TRUE(registry_.DeclareStream(MergeSchema("b", band)).ok());
    ASSERT_TRUE(registry_.DeclareStream(MergeSchema("merged", band)).ok());
    MergeNode::Spec spec;
    spec.name = "merged";
    spec.schema = MergeSchema("merged", band);
    spec.merge_field = 0;
    spec.band = band;
    auto in_a = registry_.Subscribe("a", 4096);
    auto in_b = registry_.Subscribe("b", 4096);
    ASSERT_TRUE(in_a.ok() && in_b.ok());
    node_ = std::make_unique<MergeNode>(std::move(spec),
                                        std::vector<rts::Subscription>{
                                            *in_a, *in_b},
                                        &registry_);
    auto output = registry_.Subscribe("merged", 8192);
    ASSERT_TRUE(output.ok());
    output_ = *output;
    codec_ = std::make_unique<rts::TupleCodec>(MergeSchema("merged", band));
  }

  void Send(const std::string& stream, uint64_t time, uint64_t v) {
    rts::TupleCodec codec(MergeSchema(stream));
    rts::StreamMessage message;
    codec.Encode({Value::Uint(time), Value::Uint(v)}, &message.payload);
    registry_.Publish(stream, message);
  }

  void SendHeartbeat(const std::string& stream, uint64_t time) {
    rts::Punctuation punctuation;
    punctuation.bounds.emplace_back(0, Value::Uint(time));
    registry_.Publish(stream, rts::MakePunctuationMessage(
                                  punctuation, MergeSchema(stream)));
  }

  std::vector<uint64_t> ReceiveTimes() {
    std::vector<uint64_t> times;
    rts::StreamMessage message;
    while (output_->TryPop(&message)) {
      if (message.kind != rts::StreamMessage::Kind::kTuple) continue;
      auto row = codec_->Decode(
          ByteSpan(message.payload.data(), message.payload.size()));
      if (row.ok()) times.push_back((*row)[0].uint_value());
    }
    return times;
  }

  rts::StreamRegistry registry_;
  std::unique_ptr<MergeNode> node_;
  rts::Subscription output_;
  std::unique_ptr<rts::TupleCodec> codec_;
};

TEST_F(MergeTest, InterleavesInOrder) {
  Init();
  Send("a", 1, 0);
  Send("a", 5, 0);
  Send("b", 2, 0);
  Send("b", 7, 0);
  node_->Poll(100);
  // a's head is 1, b guarantees >= 2 ... emits 1; then 2 (a guarantees 5);
  // then 5 (b guarantees 7). 7 waits: a might still produce 5 or 6.
  EXPECT_EQ(ReceiveTimes(), (std::vector<uint64_t>{1, 2, 5}));
  EXPECT_EQ(node_->buffered(), 1u);
}

TEST_F(MergeTest, SlowStreamBlocksWithoutHeartbeat) {
  Init();
  for (uint64_t t = 1; t <= 50; ++t) Send("a", t, 0);
  node_->Poll(1000);
  // b has produced nothing and has no watermark: nothing can be emitted.
  EXPECT_TRUE(ReceiveTimes().empty());
  EXPECT_EQ(node_->buffered(), 50u);
}

TEST_F(MergeTest, HeartbeatUnblocks) {
  Init();
  for (uint64_t t = 1; t <= 50; ++t) Send("a", t, 0);
  SendHeartbeat("b", 40);  // b promises nothing before time 40
  node_->Poll(1000);
  auto times = ReceiveTimes();
  ASSERT_EQ(times.size(), 40u);
  EXPECT_EQ(times.front(), 1u);
  EXPECT_EQ(times.back(), 40u);
  EXPECT_EQ(node_->buffered(), 10u);
}

TEST_F(MergeTest, OutputIsSorted) {
  Init();
  Send("a", 3, 0);
  Send("b", 1, 0);
  Send("a", 6, 0);
  Send("b", 4, 0);
  Send("a", 9, 0);
  Send("b", 8, 0);
  node_->Poll(100);
  node_->Flush();
  auto times = ReceiveTimes();
  ASSERT_EQ(times.size(), 6u);
  for (size_t i = 1; i < times.size(); ++i) {
    EXPECT_LE(times[i - 1], times[i]);
  }
}

TEST_F(MergeTest, TiesAllowedAcrossStreams) {
  Init();
  Send("a", 5, 1);
  Send("b", 5, 2);
  node_->Poll(100);
  node_->Flush();
  EXPECT_EQ(ReceiveTimes(), (std::vector<uint64_t>{5, 5}));
}

TEST_F(MergeTest, BandedInputsReorderWithinBand) {
  Init(/*band=*/10);
  // Banded stream a delivers slightly out of order.
  Send("a", 12, 0);
  Send("a", 8, 0);   // within band 10 of 12
  Send("a", 15, 0);
  Send("b", 30, 0);
  Send("b", 31, 0);
  node_->Poll(100);
  node_->Flush();
  auto times = ReceiveTimes();
  ASSERT_EQ(times.size(), 5u);
  for (size_t i = 1; i < times.size(); ++i) {
    EXPECT_LE(times[i - 1], times[i]);
  }
}

TEST_F(MergeTest, BandedWatermarkIsSlackened) {
  Init(/*band=*/10);
  Send("a", 20, 0);  // watermark only 10: future a tuples may be >= 10
  Send("b", 5, 0);
  node_->Poll(100);
  // b's head (5) < a's watermark (10): emit. But a's head (20) needs b
  // watermark >= 20; b only guarantees 5-10=0... wait: band applies per
  // stream's own declaration; b's tuple at 5 gives watermark 5-10=0 too.
  auto times = ReceiveTimes();
  EXPECT_EQ(times, (std::vector<uint64_t>{5}));
}

TEST_F(MergeTest, EmitsDownstreamPunctuation) {
  Init();
  Send("a", 10, 0);
  Send("b", 20, 0);
  auto sub = registry_.Subscribe("merged", 64);
  Send("a", 30, 0);
  Send("b", 40, 0);
  node_->Poll(100);
  bool saw_punctuation = false;
  rts::StreamMessage message;
  while ((*sub)->TryPop(&message)) {
    if (message.kind == rts::StreamMessage::Kind::kPunctuation) {
      saw_punctuation = true;
    }
  }
  EXPECT_TRUE(saw_punctuation);
}

TEST_F(MergeTest, BufferHighWaterTracked) {
  Init();
  for (uint64_t t = 1; t <= 30; ++t) Send("a", t, 0);
  node_->Poll(1000);
  EXPECT_GE(node_->buffer_high_water(), 30u);
}

TEST_F(MergeTest, SkewedBandedInputSortsViaBinaryInsert) {
  // Adversarial insertion pattern for the sorted buffer: every block of
  // ten arrives fully reversed, so all but the first tuple of each block
  // take the binary-search (upper_bound) insertion path. The output must
  // still come out sorted, and the high-water mark must reflect the full
  // buffered backlog — the same accounting as the linear-append path.
  Init(/*band=*/64);
  std::vector<uint64_t> sent;
  for (uint64_t block = 0; block < 10; ++block) {
    for (uint64_t j = 0; j < 10; ++j) {
      uint64_t t = block * 10 + (9 - j) + 1;
      Send("a", t, 0);
      sent.push_back(t);
    }
  }
  node_->Poll(1000);
  // b is silent: nothing can be emitted, everything is buffered.
  EXPECT_TRUE(ReceiveTimes().empty());
  EXPECT_EQ(node_->buffered(), sent.size());
  EXPECT_EQ(node_->buffer_high_water(), sent.size());

  SendHeartbeat("b", 1000);
  node_->Poll(1000);
  node_->Flush();
  auto times = ReceiveTimes();
  std::sort(sent.begin(), sent.end());
  EXPECT_EQ(times, sent);  // fully sorted, nothing lost or duplicated
  // Draining must never push the mark higher than the true backlog.
  EXPECT_EQ(node_->buffer_high_water(), sent.size());
}

}  // namespace
}  // namespace gigascope::ops
