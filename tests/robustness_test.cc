// Robustness ("never crash on hostile input") properties. A network
// monitor's parsers face adversarial bytes by definition; every decoder in
// the system must fail cleanly, never fault, on arbitrary input.

#include <gtest/gtest.h>

#include <string>

#include "bpf/interpreter.h"
#include "bpf/verifier.h"
#include "common/rng.h"
#include "gsql/parser.h"
#include "net/headers.h"
#include "rts/punctuation.h"
#include "rts/tuple.h"
#include "udf/lpm.h"
#include "udf/regex.h"

namespace gigascope {
namespace {

std::string RandomBytes(Rng& rng, size_t max_len) {
  size_t len = rng.NextBelow(max_len + 1);
  std::string bytes;
  bytes.reserve(len);
  for (size_t i = 0; i < len; ++i) {
    bytes += static_cast<char>(rng.NextBelow(256));
  }
  return bytes;
}

std::string RandomText(Rng& rng, size_t max_len, const char* alphabet) {
  size_t n = 0;
  while (alphabet[n] != '\0') ++n;
  size_t len = rng.NextBelow(max_len + 1);
  std::string text;
  for (size_t i = 0; i < len; ++i) {
    text += alphabet[rng.NextBelow(n)];
  }
  return text;
}

class RandomInputs : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomInputs, PacketDecoderNeverFaults) {
  Rng rng(GetParam());
  for (int i = 0; i < 2000; ++i) {
    std::string bytes = RandomBytes(rng, 200);
    auto decoded = net::DecodePacket(
        ByteSpan(reinterpret_cast<const uint8_t*>(bytes.data()),
                 bytes.size()));
    // OK or clean error; payload views must stay inside the buffer.
    if (decoded.ok() && !decoded->payload.empty()) {
      const uint8_t* begin =
          reinterpret_cast<const uint8_t*>(bytes.data());
      EXPECT_GE(decoded->payload.data(), begin);
      EXPECT_LE(decoded->payload.data() + decoded->payload.size(),
                begin + bytes.size());
    }
  }
}

TEST_P(RandomInputs, MutatedRealPacketsDecodeCleanly) {
  Rng rng(GetParam());
  net::TcpPacketSpec spec;
  spec.payload = "legitimate payload bytes";
  ByteBuffer base = net::BuildTcpPacket(spec);
  for (int i = 0; i < 2000; ++i) {
    ByteBuffer mutant = base;
    // Flip a few random bytes (header corruption).
    for (int flips = 0; flips < 4; ++flips) {
      mutant[rng.NextBelow(mutant.size())] =
          static_cast<uint8_t>(rng.Next());
    }
    // Occasionally truncate.
    if (rng.NextBool(0.3)) {
      mutant.resize(rng.NextBelow(mutant.size() + 1));
    }
    net::DecodePacket(ByteSpan(mutant.data(), mutant.size())).ok();
  }
}

TEST_P(RandomInputs, GsqlLexerAndParserNeverFault) {
  Rng rng(GetParam());
  for (int i = 0; i < 1000; ++i) {
    // Raw bytes.
    gsql::Parse(RandomBytes(rng, 120)).ok();
    // Token soup that lexes but should rarely parse.
    gsql::Parse(RandomText(
                    rng, 120,
                    "SELECT FROM WHERE GROUP BY MERGE ( ) { } , ; . : = < > "
                    "+ - * / abc 123 1.2.3.4 'str' $p "))
        .ok();
  }
}

TEST_P(RandomInputs, TupleDecoderNeverFaults) {
  Rng rng(GetParam());
  std::vector<gsql::FieldDef> fields;
  fields.push_back({"a", gsql::DataType::kUint, gsql::OrderSpec::None()});
  fields.push_back({"s", gsql::DataType::kString, gsql::OrderSpec::None()});
  fields.push_back({"b", gsql::DataType::kBool, gsql::OrderSpec::None()});
  rts::TupleCodec codec(
      gsql::StreamSchema("r", gsql::StreamKind::kStream, fields));
  for (int i = 0; i < 3000; ++i) {
    std::string bytes = RandomBytes(rng, 64);
    codec.Decode(ByteSpan(reinterpret_cast<const uint8_t*>(bytes.data()),
                          bytes.size()))
        .ok();
  }
}

TEST_P(RandomInputs, PunctuationDecoderNeverFaults) {
  Rng rng(GetParam());
  std::vector<gsql::FieldDef> fields;
  fields.push_back({"t", gsql::DataType::kUint, gsql::OrderSpec::Increasing()});
  gsql::StreamSchema schema("p", gsql::StreamKind::kStream, fields);
  for (int i = 0; i < 3000; ++i) {
    std::string bytes = RandomBytes(rng, 64);
    rts::DecodePunctuation(
        ByteSpan(reinterpret_cast<const uint8_t*>(bytes.data()),
                 bytes.size()),
        schema)
        .ok();
  }
}

TEST_P(RandomInputs, RegexCompilerNeverFaults) {
  Rng rng(GetParam());
  for (int i = 0; i < 1000; ++i) {
    std::string pattern =
        RandomText(rng, 24, "ab(|)*+?[]^$.\\{},0123456789-");
    auto regex = udf::Regex::Compile(pattern);
    if (regex.ok()) {
      // A successfully compiled pattern must match safely too.
      regex->Matches(RandomText(rng, 40, "ab01"));
      regex->FullMatch("");
    }
  }
}

TEST_P(RandomInputs, LpmTableParserNeverFaults) {
  Rng rng(GetParam());
  for (int i = 0; i < 1000; ++i) {
    udf::LpmTable::Parse(RandomText(rng, 80, "0123456789./# \nabc")).ok();
  }
}

TEST_P(RandomInputs, VerifiedBpfProgramsAlwaysTerminate) {
  Rng rng(GetParam());
  int accepted = 0;
  for (int i = 0; i < 2000; ++i) {
    bpf::Program program;
    size_t len = 1 + rng.NextBelow(12);
    for (size_t j = 0; j < len; ++j) {
      bpf::Instruction instr;
      instr.op = static_cast<bpf::OpCode>(
          rng.NextBelow(static_cast<uint64_t>(bpf::OpCode::kRetA) + 1));
      instr.k = static_cast<uint32_t>(rng.Next());
      instr.jt = static_cast<uint8_t>(rng.NextBelow(4));
      instr.jf = static_cast<uint8_t>(rng.NextBelow(4));
      program.instructions.push_back(instr);
    }
    if (!bpf::Verify(program).ok()) continue;
    ++accepted;
    // Verified programs must run to completion on any packet.
    std::string packet = RandomBytes(rng, 100);
    bpf::Run(program,
             ByteSpan(reinterpret_cast<const uint8_t*>(packet.data()),
                      packet.size()));
  }
  // The verifier should accept at least a few random programs, or this
  // test exercises nothing.
  EXPECT_GT(accepted, 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomInputs,
                         ::testing::Values(101, 202, 303, 404));

}  // namespace
}  // namespace gigascope
