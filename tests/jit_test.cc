// Native compiled-query tier (DESIGN.md §15): emission, the toolchain
// driver, kernel hot-swap, the content-hash cache, and engine-level
// equivalence between --jit=off and --jit=sync.
//
// Every test that actually invokes the system compiler skips cleanly when
// no toolchain is present — the tier itself must degrade the same way
// (covered by jit_notoolchain_test, which poisons GS_JIT_CXX).

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <cstring>

#include "common/logging.h"
#include "core/engine.h"
#include "expr/fold.h"
#include "expr/typecheck.h"
#include "expr/vm.h"
#include "gsql/parser.h"
#include "jit/abi.h"
#include "jit/compiler.h"
#include "jit/emit.h"
#include "jit/engine.h"
#include "udf/registry.h"

namespace gigascope::jit {
namespace {

using expr::CompiledExpr;
using expr::EvalContext;
using expr::EvalOutput;
using expr::Value;
using gsql::DataType;
using gsql::FieldDef;
using gsql::OrderSpec;
using gsql::StreamKind;
using gsql::StreamSchema;

StreamSchema TestSchema() {
  std::vector<FieldDef> fields;
  fields.push_back({"t", DataType::kUint, OrderSpec::Increasing()});
  fields.push_back({"i", DataType::kInt, OrderSpec::None()});
  fields.push_back({"f", DataType::kFloat, OrderSpec::None()});
  fields.push_back({"b", DataType::kBool, OrderSpec::None()});
  return StreamSchema("T", StreamKind::kStream, fields);
}

/// Compiles one GSQL expression over TestSchema to bytecode.
CompiledExpr CompileExpr(const std::string& expression) {
  gsql::Catalog catalog;
  catalog.PutStreamSchema(TestSchema());
  auto stmt = gsql::ParseStatement("SELECT " + expression + " FROM T");
  GS_CHECK(stmt.ok());
  auto* select = std::get_if<gsql::SelectStmt>(&stmt.value());
  auto resolved = gsql::AnalyzeSelect(*select, catalog);
  GS_CHECK(resolved.ok());
  expr::TypeCheckContext ctx;
  ctx.resolver = udf::FunctionRegistry::Default();
  ctx.inputs = {TestSchema()};
  ctx.bindings = &resolved->bindings;
  auto ir = expr::TypeCheck(resolved->stmt.items[0].expr, ctx);
  GS_CHECK(ir.ok());
  auto compiled = expr::Compile(expr::FoldConstants(*ir), {});
  GS_CHECK(compiled.ok());
  return std::move(compiled).value();
}

std::vector<Value> SampleRow() {
  return {Value::Uint(120), Value::Int(-3), Value::Float(2.5),
          Value::Bool(true)};
}

TEST(JitModeTest, ParseAndName) {
  EXPECT_EQ(ParseJitMode("off"), JitMode::kOff);
  EXPECT_EQ(ParseJitMode("sync"), JitMode::kSync);
  EXPECT_EQ(ParseJitMode("async"), JitMode::kAsync);
  EXPECT_FALSE(ParseJitMode("turbo").has_value());
  EXPECT_STREQ(JitModeName(JitMode::kAsync), "async");
}

TEST(EmitTest, UdfCallIsAnEmissionGap) {
  CompiledExpr expr = CompileExpr("hash64(t) + 1");
  KernelMeta meta;
  EXPECT_FALSE(EmitExprKernel(expr, "gs_test_k0", &meta).has_value());
}

TEST(EmitTest, ArithmeticEmits) {
  CompiledExpr expr = CompileExpr("t / 60 + 1");
  KernelMeta meta;
  auto body = EmitExprKernel(expr, "gs_test_k0", &meta);
  ASSERT_TRUE(body.has_value());
  EXPECT_EQ(meta.result_type, DataType::kUint);
  ASSERT_EQ(meta.fields0.size(), 1u);
  EXPECT_EQ(meta.fields0[0], 0);  // only `t` is read
  EXPECT_NE(body->find("gs_test_k0"), std::string::npos);
}

TEST(EmitTest, RequestGapCountsFallback) {
  JitOptions options;
  options.mode = JitMode::kSync;
  JitEngine engine(options);
  CompiledExpr gap = CompileExpr("hash64(t) + 1");
  auto batch = engine.BeginQuery();
  batch->RequestExpr(&gap);
  EXPECT_EQ(gap.native, nullptr);  // stays on the VM
  EXPECT_EQ(engine.fallbacks(), 1u);
  EXPECT_EQ(batch->num_requests(), 0u);
}

TEST(EmitTest, TrivialExpressionSkipsTier) {
  JitOptions options;
  options.mode = JitMode::kSync;
  JitEngine engine(options);
  CompiledExpr trivial = CompileExpr("t");  // 1 instruction
  auto batch = engine.BeginQuery();
  batch->RequestExpr(&trivial);
  EXPECT_EQ(trivial.native, nullptr);
  EXPECT_EQ(engine.fallbacks(), 0u);  // a skip, not a failure
}

/// Compiles `expressions` through one sync JitEngine batch; returns the
/// kernels' sources attached (each expr's slot publishes on return).
void CompileBatch(JitEngine* engine, std::vector<CompiledExpr*> exprs) {
  auto batch = engine->BeginQuery();
  for (CompiledExpr* e : exprs) batch->RequestExpr(e);
  engine->Submit(std::move(batch));
}

#define SKIP_WITHOUT_TOOLCHAIN()                                  \
  do {                                                            \
    if (!JitCompiler::ToolchainAvailable()) {                     \
      GTEST_SKIP() << "no C++ toolchain in this environment";     \
    }                                                             \
  } while (0)

TEST(KernelTest, SyncCompileMatchesVm) {
  SKIP_WITHOUT_TOOLCHAIN();
  JitOptions options;
  options.mode = JitMode::kSync;
  JitEngine engine(options);
  const char* cases[] = {
      "t * 2 + 10",
      "t / 60",
      "i * 2 - 7",
      "f * 4.0 + 0.5",
      "t >= 100 AND i < 0",
      "(i + t) % 7",
      "b AND t > 5",
  };
  for (const char* text : cases) {
    CompiledExpr expr = CompileExpr(text);
    CompileBatch(&engine, {&expr});
    ASSERT_NE(expr.native, nullptr) << text;
    ASSERT_NE(expr.native->kernel.load(), nullptr) << text;
    std::vector<Value> row = SampleRow();
    EvalContext ctx;
    ctx.row0 = &row;
    EvalOutput vm_out, native_out;
    Status vm_status = expr::Eval(expr, ctx, &vm_out);  // free fn: VM only
    expr::Evaluator evaluator;                          // routes to kernel
    Status native_status = evaluator.Eval(expr, ctx, &native_out);
    ASSERT_EQ(vm_status.ok(), native_status.ok()) << text;
    ASSERT_TRUE(vm_status.ok()) << text << ": " << vm_status.ToString();
    EXPECT_EQ(vm_out.value.type(), native_out.value.type()) << text;
    EXPECT_EQ(vm_out.value.Compare(native_out.value), 0) << text;
  }
  EXPECT_GE(engine.compiles(), 1u);
  EXPECT_EQ(engine.fallbacks(), 0u);
  EXPECT_GE(engine.active_kernels(), 7u);
}

TEST(KernelTest, DivisionErrorsMatchVmExactly) {
  SKIP_WITHOUT_TOOLCHAIN();
  JitOptions options;
  options.mode = JitMode::kSync;
  JitEngine engine(options);
  struct Case {
    const char* text;
    int64_t i;
    const char* message;
  } cases[] = {
      {"i / (i + 3)", -3, "division by zero"},
      {"i % (i + 3)", -3, "modulo by zero"},
      {"i / (0 - 1)", INT64_MIN, "integer division overflow"},
      {"i % (0 - 1)", INT64_MIN, "integer modulo overflow"},
  };
  for (const Case& c : cases) {
    CompiledExpr expr = CompileExpr(c.text);
    CompileBatch(&engine, {&expr});
    ASSERT_NE(expr.native, nullptr) << c.text;
    std::vector<Value> row = SampleRow();
    row[1] = Value::Int(c.i);
    EvalContext ctx;
    ctx.row0 = &row;
    EvalOutput vm_out, native_out;
    Status vm_status = expr::Eval(expr, ctx, &vm_out);
    expr::Evaluator evaluator;
    Status native_status = evaluator.Eval(expr, ctx, &native_out);
    EXPECT_FALSE(vm_status.ok()) << c.text;
    EXPECT_FALSE(native_status.ok()) << c.text;
    EXPECT_EQ(vm_status.message(), c.message) << c.text;
    EXPECT_EQ(native_status.message(), vm_status.message()) << c.text;
  }
}

TEST(KernelTest, AsyncHotSwapPublishes) {
  SKIP_WITHOUT_TOOLCHAIN();
  JitOptions options;
  options.mode = JitMode::kAsync;
  JitEngine engine(options);
  CompiledExpr expr = CompileExpr("t * 3 + 1");
  auto batch = engine.BeginQuery();
  batch->RequestExpr(&expr);
  ASSERT_NE(expr.native, nullptr);
  // Until the worker finishes, the slot is empty and the VM serves.
  engine.Submit(std::move(batch));
  engine.WaitIdle();
  ASSERT_NE(expr.native->kernel.load(), nullptr);
  std::vector<Value> row = SampleRow();
  EvalContext ctx;
  ctx.row0 = &row;
  EvalOutput out;
  expr::Evaluator evaluator;
  ASSERT_TRUE(evaluator.Eval(expr, ctx, &out).ok());
  EXPECT_EQ(out.value.uint_value(), 361u);
}

TEST(KernelTest, CacheHitAcrossEngines) {
  SKIP_WITHOUT_TOOLCHAIN();
  auto dir = MakeEphemeralCacheDir();
  ASSERT_TRUE(dir.ok());
  {
    JitOptions options;
    options.mode = JitMode::kSync;
    options.cache_dir = dir.value();
    JitEngine first(options);
    CompiledExpr expr = CompileExpr("t * 2 + 1");
    CompileBatch(&first, {&expr});
    EXPECT_EQ(first.compiles(), 1u);
    EXPECT_EQ(first.cache_hits(), 0u);
  }
  {
    JitOptions options;
    options.mode = JitMode::kSync;
    options.cache_dir = dir.value();
    JitEngine second(options);
    CompiledExpr expr = CompileExpr("t * 2 + 1");
    CompileBatch(&second, {&expr});
    EXPECT_EQ(second.compiles(), 0u);  // identical source: dlopen the .so
    EXPECT_EQ(second.cache_hits(), 1u);
    ASSERT_NE(expr.native, nullptr);
    EXPECT_NE(expr.native->kernel.load(), nullptr);
  }
  RemoveCacheDir(dir.value());
}

TEST(FilterKernelTest, MatchesPackedByteSemantics) {
  SKIP_WITHOUT_TOOLCHAIN();
  JitOptions options;
  options.mode = JitMode::kSync;
  JitEngine engine(options);
  // protocol (uint at offset 0) = 6 AND port (uint at offset 8) > 1000
  std::vector<RawFilterTerm> terms(2);
  terms[0].offset = 0;
  terms[0].type = DataType::kUint;
  terms[0].cmp = expr::ByteOp::kCmpEq;
  terms[0].u = 6;
  terms[1].offset = 8;
  terms[1].type = DataType::kUint;
  terms[1].cmp = expr::ByteOp::kCmpGt;
  terms[1].u = 1000;
  auto batch = engine.BeginQuery();
  auto slot = batch->RequestFilter(terms);
  ASSERT_NE(slot, nullptr);
  engine.Submit(std::move(batch));
  expr::ByteFilterFn fn = slot->fn.load();
  ASSERT_NE(fn, nullptr);

  auto pack = [](uint64_t a, uint64_t b) {
    std::vector<unsigned char> data(16);
    for (int k = 0; k < 8; ++k) {
      data[k] = static_cast<unsigned char>(a >> (8 * k));
      data[8 + k] = static_cast<unsigned char>(b >> (8 * k));
    }
    return data;
  };
  std::vector<unsigned char> pass = pack(6, 8080);
  std::vector<unsigned char> wrong_proto = pack(17, 8080);
  std::vector<unsigned char> low_port = pack(6, 80);
  EXPECT_EQ(fn(pass.data(), pass.size()), 1);
  EXPECT_EQ(fn(wrong_proto.data(), wrong_proto.size()), 0);
  EXPECT_EQ(fn(low_port.data(), low_port.size()), 0);
}

// -- Engine-level equivalence -------------------------------------------------

/// These tests construct Engines with explicit jit modes and assert exact
/// telemetry, so the process-wide overrides must not leak in: GS_JIT_FORCE
/// would flip the off-engine to sync, and a shared GS_JIT_CACHE_DIR (the
/// CI --jit=sync leg exports both) would turn every compile into a cache
/// hit. Each engine then uses its private mkdtemp cache, removed on
/// destruction.
class EngineJitTest : public ::testing::Test {
 protected:
  void SetUp() override {
    unsetenv("GS_JIT_FORCE");
    unsetenv("GS_JIT_CACHE_DIR");
  }
};

StreamSchema InputSchema() {
  std::vector<FieldDef> fields;
  fields.push_back({"ts", DataType::kUint, OrderSpec::Increasing()});
  fields.push_back({"v", DataType::kInt, OrderSpec::None()});
  fields.push_back({"load", DataType::kFloat, OrderSpec::None()});
  return StreamSchema("S", StreamKind::kStream, fields);
}

/// Runs the same query + injected rows through an engine with the given
/// jit mode; returns the printed output rows.
std::vector<std::string> RunQuery(JitMode mode, uint64_t* compiles) {
  core::EngineOptions options;
  options.jit.mode = mode;
  core::Engine engine(options);
  GS_CHECK(engine.DeclareStream(InputSchema()).ok());
  auto info = engine.AddQuery(
      "DEFINE { query_name shaped; } "
      "SELECT ts / 60, v * 3 + 1, load * 2.0 FROM S "
      "WHERE v % 5 != 0 AND ts > 10");
  GS_CHECK(info.ok());
  auto sub = engine.Subscribe("shaped", 4096);
  GS_CHECK(sub.ok());
  for (uint64_t n = 0; n < 200; ++n) {
    std::vector<Value> row = {Value::Uint(n * 7), Value::Int(int64_t(n) - 100),
                              Value::Float(0.25 * double(n))};
    GS_CHECK(engine.InjectRow("S", row).ok());
  }
  engine.PumpUntilIdle();
  engine.FlushAll();
  std::vector<std::string> rows;
  while (auto row = (*sub)->NextRow()) {
    std::string line;
    for (const Value& v : *row) line += v.ToString() + "\t";
    rows.push_back(line);
  }
  if (compiles != nullptr) *compiles = engine.jit().compiles();
  return rows;
}

TEST_F(EngineJitTest, OffAndSyncProduceIdenticalRows) {
  SKIP_WITHOUT_TOOLCHAIN();
  uint64_t off_compiles = 0, sync_compiles = 0;
  std::vector<std::string> off_rows = RunQuery(JitMode::kOff, &off_compiles);
  std::vector<std::string> sync_rows =
      RunQuery(JitMode::kSync, &sync_compiles);
  EXPECT_EQ(off_compiles, 0u);
  EXPECT_GE(sync_compiles, 1u);
  ASSERT_FALSE(off_rows.empty());
  EXPECT_EQ(off_rows, sync_rows);
}

TEST_F(EngineJitTest, AsyncProducesIdenticalRows) {
  SKIP_WITHOUT_TOOLCHAIN();
  std::vector<std::string> off_rows = RunQuery(JitMode::kOff, nullptr);
  std::vector<std::string> async_rows =
      RunQuery(JitMode::kAsync, nullptr);
  EXPECT_EQ(off_rows, async_rows);
}

TEST_F(EngineJitTest, TelemetryAppearsInRegistry) {
  SKIP_WITHOUT_TOOLCHAIN();
  core::EngineOptions options;
  options.jit.mode = JitMode::kSync;
  core::Engine engine(options);
  GS_CHECK(engine.DeclareStream(InputSchema()).ok());
  auto info = engine.AddQuery(
      "DEFINE { query_name q; } SELECT ts / 60 + 1 FROM S WHERE v > 3");
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  bool found = false;
  for (const auto& sample : engine.telemetry().Snapshot()) {
    if (sample.entity == "jit" && sample.metric == "jit_compiles") {
      found = true;
      EXPECT_GE(sample.value, 1u);
    }
  }
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace gigascope::jit
