#include <gtest/gtest.h>

#include <regex>
#include <string>

#include "common/rng.h"
#include "udf/regex.h"

namespace gigascope::udf {
namespace {

Regex MustCompile(std::string_view pattern) {
  auto regex = Regex::Compile(pattern);
  EXPECT_TRUE(regex.ok()) << regex.status().ToString();
  return std::move(regex).value();
}

TEST(RegexTest, LiteralSearch) {
  Regex re = MustCompile("abc");
  EXPECT_TRUE(re.Matches("abc"));
  EXPECT_TRUE(re.Matches("xxabcxx"));
  EXPECT_FALSE(re.Matches("ab"));
  EXPECT_FALSE(re.Matches("acb"));
}

TEST(RegexTest, Alternation) {
  Regex re = MustCompile("cat|dog");
  EXPECT_TRUE(re.Matches("hotdog"));
  EXPECT_TRUE(re.Matches("catalog"));
  EXPECT_FALSE(re.Matches("bird"));
}

TEST(RegexTest, StarPlusQuest) {
  Regex star = MustCompile("ab*c");
  EXPECT_TRUE(star.Matches("ac"));
  EXPECT_TRUE(star.Matches("abbbbc"));
  Regex plus = MustCompile("ab+c");
  EXPECT_FALSE(plus.Matches("ac"));
  EXPECT_TRUE(plus.Matches("abc"));
  Regex quest = MustCompile("ab?c");
  EXPECT_TRUE(quest.Matches("ac"));
  EXPECT_TRUE(quest.Matches("abc"));
  EXPECT_FALSE(quest.Matches("abbc"));
}

TEST(RegexTest, DotMatchesAllButNewline) {
  Regex re = MustCompile("a.c");
  EXPECT_TRUE(re.Matches("abc"));
  EXPECT_TRUE(re.Matches("a!c"));
  EXPECT_FALSE(re.Matches("a\nc"));
}

TEST(RegexTest, Grouping) {
  Regex re = MustCompile("(ab)+c");
  EXPECT_TRUE(re.Matches("ababc"));
  EXPECT_FALSE(re.Matches("c"));
  Regex alt = MustCompile("x(a|b)y");
  EXPECT_TRUE(alt.Matches("xay"));
  EXPECT_TRUE(alt.Matches("xby"));
  EXPECT_FALSE(alt.Matches("xcy"));
}

TEST(RegexTest, CharacterClasses) {
  Regex re = MustCompile("[abc]+");
  EXPECT_TRUE(re.Matches("cab"));
  EXPECT_FALSE(re.Matches("xyz"));
  Regex range = MustCompile("[a-f0-9]+z");
  EXPECT_TRUE(range.Matches("deadbeefz"));
  EXPECT_FALSE(range.Matches("gz"));
  Regex negated = MustCompile("[^0-9]");
  EXPECT_TRUE(negated.Matches("a"));
  EXPECT_FALSE(negated.Matches("123"));
}

TEST(RegexTest, EscapeClasses) {
  EXPECT_TRUE(MustCompile("\\d+").Matches("42"));
  EXPECT_FALSE(MustCompile("\\d+").Matches("abc"));
  EXPECT_TRUE(MustCompile("\\w+").Matches("word_1"));
  EXPECT_TRUE(MustCompile("\\s").Matches("a b"));
  EXPECT_FALSE(MustCompile("\\s").Matches("ab"));
  EXPECT_TRUE(MustCompile("a\\.b").Matches("a.b"));
  EXPECT_FALSE(MustCompile("a\\.b").Matches("axb"));
}

TEST(RegexTest, Anchors) {
  Regex start = MustCompile("^abc");
  EXPECT_TRUE(start.Matches("abcdef"));
  EXPECT_FALSE(start.Matches("xabc"));
  Regex end = MustCompile("abc$");
  EXPECT_TRUE(end.Matches("xxabc"));
  EXPECT_FALSE(end.Matches("abcx"));
  Regex both = MustCompile("^abc$");
  EXPECT_TRUE(both.Matches("abc"));
  EXPECT_FALSE(both.Matches("abcd"));
}

TEST(RegexTest, ThePaperHttpPattern) {
  // §4: "^[^\n]*HTTP/1.*"
  Regex re = MustCompile("^[^\\n]*HTTP/1.*");
  EXPECT_TRUE(re.Matches("HTTP/1.1 200 OK\r\n..."));
  EXPECT_TRUE(re.Matches("GET /x HTTP/1.0\r\nHost: y"));
  EXPECT_FALSE(re.Matches("binary tunnel payload"));
  // The marker on a *later* line must not match (first line only).
  EXPECT_FALSE(re.Matches("line one\nHTTP/1.1"));
}

TEST(RegexTest, FullMatchSemantics) {
  Regex re = MustCompile("ab*");
  EXPECT_TRUE(re.FullMatch("abbb"));
  EXPECT_FALSE(re.FullMatch("abbbc"));
  EXPECT_FALSE(re.FullMatch("xab"));
}

TEST(RegexTest, EmptyPatternMatchesEverything) {
  Regex re = MustCompile("");
  EXPECT_TRUE(re.Matches(""));
  EXPECT_TRUE(re.Matches("anything"));
}

TEST(RegexTest, EmptyAlternativeBranch) {
  Regex re = MustCompile("a(b|)c");
  EXPECT_TRUE(re.Matches("abc"));
  EXPECT_TRUE(re.Matches("ac"));
}

TEST(RegexTest, BoundedRepetitionExact) {
  Regex re = MustCompile("^a{3}$");
  EXPECT_FALSE(re.Matches("aa"));
  EXPECT_TRUE(re.Matches("aaa"));
  EXPECT_FALSE(re.Matches("aaaa"));
}

TEST(RegexTest, BoundedRepetitionRange) {
  Regex re = MustCompile("^a{2,4}$");
  EXPECT_FALSE(re.Matches("a"));
  EXPECT_TRUE(re.Matches("aa"));
  EXPECT_TRUE(re.Matches("aaa"));
  EXPECT_TRUE(re.Matches("aaaa"));
  EXPECT_FALSE(re.Matches("aaaaa"));
}

TEST(RegexTest, BoundedRepetitionOpenEnded) {
  Regex re = MustCompile("^a{2,}$");
  EXPECT_FALSE(re.Matches("a"));
  EXPECT_TRUE(re.Matches("aa"));
  EXPECT_TRUE(re.Matches(std::string(50, 'a')));
}

TEST(RegexTest, BoundedRepetitionOnGroupsAndClasses) {
  Regex group = MustCompile("^(ab){2}$");
  EXPECT_TRUE(group.Matches("abab"));
  EXPECT_FALSE(group.Matches("ab"));
  EXPECT_FALSE(group.Matches("ababab"));
  Regex digits = MustCompile("^[0-9]{1,3}\\.[0-9]{1,3}$");
  EXPECT_TRUE(digits.Matches("10.255"));
  EXPECT_FALSE(digits.Matches("1000.1"));
}

TEST(RegexTest, ZeroMinimumRepetition) {
  Regex re = MustCompile("^a{0,2}b$");
  EXPECT_TRUE(re.Matches("b"));
  EXPECT_TRUE(re.Matches("ab"));
  EXPECT_TRUE(re.Matches("aab"));
  EXPECT_FALSE(re.Matches("aaab"));
}

TEST(RegexTest, LiteralBraceWithoutDigits) {
  Regex re = MustCompile("a{x}");
  EXPECT_TRUE(re.Matches("a{x}"));
  EXPECT_FALSE(re.Matches("ax"));
}

TEST(RegexTest, RepetitionErrors) {
  EXPECT_FALSE(Regex::Compile("a{3,1}").ok());     // n < m
  EXPECT_FALSE(Regex::Compile("a{2000}").ok());    // too large
  EXPECT_FALSE(Regex::Compile("a{2,3").ok());      // missing '}'
}

TEST(RegexTest, MalformedPatternsRejected) {
  EXPECT_FALSE(Regex::Compile("(abc").ok());
  EXPECT_FALSE(Regex::Compile("abc)").ok());
  EXPECT_FALSE(Regex::Compile("[abc").ok());
  EXPECT_FALSE(Regex::Compile("*a").ok());
  EXPECT_FALSE(Regex::Compile("a\\").ok());
  EXPECT_FALSE(Regex::Compile("[z-a]").ok());
}

TEST(RegexTest, NoBacktrackingBlowup) {
  // (a+)+b on a long run of 'a's kills a backtracking engine; the NFA
  // simulation stays linear.
  Regex re = MustCompile("(a+)+b");
  std::string text(4000, 'a');
  EXPECT_FALSE(re.Matches(text));
  text += 'b';
  EXPECT_TRUE(re.Matches(text));
}

// Property check: agreement with std::regex (ECMAScript grep-alike) on a
// random corpus over a small alphabet.
TEST(RegexTest, AgreesWithStdRegexOnRandomInputs) {
  const char* patterns[] = {
      "a",       "ab",      "a|b",     "a*b",    "(ab)*",   "a.b",
      "[ab]+c",  "a+b+",    "^ab",     "ab$",    "a(b|c)d", "[^a]b",
      "a?b?c?d", "(a|b)*c", "a\\db",
      "a{2}",    "a{1,3}b", "(ab){1,2}c",
  };
  Rng rng(77);
  for (const char* pattern : patterns) {
    Regex mine = MustCompile(pattern);
    std::regex theirs(pattern);
    for (int i = 0; i < 200; ++i) {
      size_t len = rng.NextBelow(12);
      std::string text;
      for (size_t j = 0; j < len; ++j) {
        text += static_cast<char>("abcd19"[rng.NextBelow(6)]);
      }
      bool expected = std::regex_search(text, theirs);
      EXPECT_EQ(mine.Matches(text), expected)
          << "pattern '" << pattern << "' text '" << text << "'";
    }
  }
}

}  // namespace
}  // namespace gigascope::udf
