// Malformed-input hardening: hostile bytes through the packet-interpretation
// path and hostile rows through the defrag operator must never crash, read
// out of bounds, or grow state without bound. Undecodable input is counted
// in `parse_errors` and processing continues. Runs clean under ASan/UBSan
// (scripts/check_asan.sh) — the `robustness` ctest label.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "core/engine.h"
#include "net/headers.h"
#include "ops/defrag.h"
#include "telemetry/metric_names.h"

namespace gigascope {
namespace {

using core::Engine;
using expr::Value;
using gsql::DataType;
using gsql::FieldDef;
using gsql::OrderSpec;
using gsql::StreamKind;
using gsql::StreamSchema;

net::Packet MakeRawPacket(SimTime timestamp, ByteBuffer bytes) {
  net::Packet packet;
  packet.orig_len = static_cast<uint32_t>(bytes.size());
  packet.bytes = std::move(bytes);
  packet.timestamp = timestamp;
  return packet;
}

ByteBuffer ValidTcpBytes() {
  net::TcpPacketSpec spec;
  spec.src_addr = 0xac100001;
  spec.dst_addr = 0x0a000001;
  spec.src_port = 40000;
  spec.dst_port = 80;
  spec.payload = "GET / HTTP/1.0";
  return net::BuildTcpPacket(spec);
}

uint64_t Metric(const Engine& engine, const std::string& entity,
                const std::string& metric) {
  for (const auto& sample : engine.telemetry().Snapshot()) {
    if (sample.entity == entity && sample.metric == metric) {
      return sample.value;
    }
  }
  return 0;
}

/// Engine with one interface and a select-all probe so the PKT stream (and
/// its full interpretation plan) is live.
class MalformedPacketTest : public ::testing::Test {
 protected:
  void SetUp() override {
    engine_.AddInterface("eth0");
    auto info = engine_.AddQuery(
        "DEFINE { query_name probe; } "
        "SELECT time, protocol, destPort, len FROM eth0.PKT");
    ASSERT_TRUE(info.ok()) << info.status().ToString();
    auto sub = engine_.Subscribe("probe");
    ASSERT_TRUE(sub.ok());
    sub_ = std::move(sub).value();
  }

  void Inject(const ByteBuffer& bytes) {
    ++injected_;
    ASSERT_TRUE(
        engine_
            .InjectPacket("eth0", MakeRawPacket(
                                      injected_ * kNanosPerSecond, bytes))
            .ok());
  }

  Engine engine_;
  std::unique_ptr<core::TupleSubscription> sub_;
  SimTime injected_ = 0;
};

TEST_F(MalformedPacketTest, TruncatedEthernetCountedAsParseErrors) {
  // Everything shorter than an Ethernet header is undecodable.
  for (size_t len = 0; len < net::kEthernetHeaderLen; ++len) {
    Inject(ByteBuffer(len, 0x5a));
  }
  engine_.PumpUntilIdle();
  EXPECT_EQ(Metric(engine_, "eth0.PKT", telemetry::metric::kParseErrors),
            net::kEthernetHeaderLen);
  // The engine keeps running: a valid packet still interprets afterwards.
  Inject(ValidTcpBytes());
  engine_.PumpUntilIdle();
  engine_.FlushAll();
  bool saw_tcp = false;
  while (auto row = sub_->NextRow()) {
    if ((*row)[1].uint_value() == net::kIpProtoTcp) saw_tcp = true;
  }
  EXPECT_TRUE(saw_tcp);
}

TEST_F(MalformedPacketTest, TruncationLadderNeverFaults) {
  // A valid packet truncated at every possible length: the decoder must
  // stop at whatever layer the bytes no longer support, never read past
  // the buffer.
  ByteBuffer valid = ValidTcpBytes();
  for (size_t len = 0; len <= valid.size(); ++len) {
    Inject(ByteBuffer(valid.begin(), valid.begin() + static_cast<long>(len)));
  }
  engine_.PumpUntilIdle();
  engine_.FlushAll();
  // Sub-Ethernet truncations are parse errors; deeper ones interpret with
  // absent layers defaulted.
  EXPECT_EQ(Metric(engine_, "eth0.PKT", telemetry::metric::kParseErrors),
            net::kEthernetHeaderLen);
}

TEST_F(MalformedPacketTest, HeaderLyingIhlAndLengthNeverFaults) {
  ByteBuffer valid = ValidTcpBytes();
  // IHL claims a 60-byte IP header but only 20 bytes are present.
  ByteBuffer lying_ihl = valid;
  lying_ihl[net::kEthernetHeaderLen] = 0x4F;  // version 4, IHL 15
  Inject(lying_ihl);
  // Total-length field claims 64 KiB.
  ByteBuffer lying_len = valid;
  lying_len[net::kEthernetHeaderLen + 2] = 0xFF;
  lying_len[net::kEthernetHeaderLen + 3] = 0xFF;
  Inject(lying_len);
  // IHL below the minimum (garbage header length).
  ByteBuffer tiny_ihl = valid;
  tiny_ihl[net::kEthernetHeaderLen] = 0x41;  // version 4, IHL 1
  Inject(tiny_ihl);
  // No crash and no OOB is the assertion; rows may or may not decode deep
  // layers. The engine survives a valid packet afterwards.
  Inject(ValidTcpBytes());
  engine_.PumpUntilIdle();
  engine_.FlushAll();
  SUCCEED();
}

TEST_F(MalformedPacketTest, RandomGarbageCorpusNeverFaults) {
  // Deterministic xorshift corpus: 512 packets of pseudo-random length and
  // content, interleaved with valid traffic.
  uint64_t state = 0x9e3779b97f4a7c15ull;
  auto next = [&state]() {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  };
  for (int i = 0; i < 512; ++i) {
    ByteBuffer bytes(next() % 200, 0);
    for (auto& b : bytes) b = static_cast<uint8_t>(next());
    Inject(bytes);
    if (i % 16 == 0) Inject(ValidTcpBytes());
  }
  engine_.PumpUntilIdle();
  engine_.FlushAll();
  uint64_t rows = 0;
  while (sub_->NextRow()) ++rows;
  EXPECT_GT(rows, 0u);  // valid interleave still flowed end to end
}

/// Hostile defrag input: a caller-declared PKT-shaped stream fed with
/// InjectRow gives full control over the fragment header fields — rows are
/// not constrained by what the wire format can express, so the operator's
/// own bounds are the only defense.
class HostileDefragTest : public ::testing::Test {
 protected:
  void SetUp() override {
    std::vector<FieldDef> fields;
    fields.push_back({"time", DataType::kUint, OrderSpec::Increasing()});
    fields.push_back({"srcIP", DataType::kIp, OrderSpec::None()});
    fields.push_back({"destIP", DataType::kIp, OrderSpec::None()});
    fields.push_back({"protocol", DataType::kUint, OrderSpec::None()});
    fields.push_back({"ipId", DataType::kUint, OrderSpec::None()});
    fields.push_back({"fragOffset", DataType::kUint, OrderSpec::None()});
    fields.push_back({"moreFrags", DataType::kUint, OrderSpec::None()});
    fields.push_back({"ipPayload", DataType::kString, OrderSpec::None()});
    StreamSchema schema("frags", StreamKind::kStream, fields);
    ASSERT_TRUE(engine_.DeclareStream(schema).ok());
    auto input = engine_.registry().Subscribe("frags", 4096);
    ASSERT_TRUE(input.ok());
    ops::IpDefragNode::Spec spec;
    spec.name = "defrag0";
    spec.input_schema = schema;
    auto node = ops::IpDefragNode::Create(std::move(spec), *input,
                                          &engine_.registry());
    ASSERT_TRUE(node.ok()) << node.status().ToString();
    node_ = node->get();
    ASSERT_TRUE(engine_.AddNode(std::move(node).value()).ok());
    auto sub = engine_.Subscribe("defrag0");
    ASSERT_TRUE(sub.ok());
    sub_ = std::move(sub).value();
  }

  void InjectFrag(uint64_t time, uint64_t ip_id, uint64_t offset_units,
                  uint64_t more_frags, const std::string& payload) {
    rts::Row row;
    row.push_back(Value::Uint(time));
    row.push_back(Value::Ip(0x0a000001));
    row.push_back(Value::Ip(0x0a000002));
    row.push_back(Value::Uint(net::kIpProtoUdp));
    row.push_back(Value::Uint(ip_id));
    row.push_back(Value::Uint(offset_units));
    row.push_back(Value::Uint(more_frags));
    row.push_back(Value::String(payload));
    ASSERT_TRUE(engine_.InjectRow("frags", row).ok());
  }

  Engine engine_;
  ops::IpDefragNode* node_ = nullptr;
  std::unique_ptr<core::TupleSubscription> sub_;
};

TEST_F(HostileDefragTest, FragmentClaimingSpanPastDeclaredEndIsTruncated) {
  // A fragment after the MF=0 one claims bytes beyond the declared total
  // length. Before hardening this threw std::out_of_range from
  // string::replace past the datagram end.
  InjectFrag(1, 7, 0, 1, std::string(100, 'a'));   // covers [0, 100)
  InjectFrag(1, 7, 8, 1, std::string(40, 'b'));    // covers [64, 104)
  InjectFrag(1, 7, 5, 0, std::string(10, 'c'));    // MF=0: total_len = 50
  engine_.PumpUntilIdle();
  auto row = sub_->NextRow();
  ASSERT_TRUE(row.has_value());
  EXPECT_EQ((*row)[4].string_value().size(), 50u);
  EXPECT_EQ(node_->open_assemblies(), 0u);
}

TEST_F(HostileDefragTest, ImpossibleFragOffsetRejected) {
  // The IPv4 fragment-offset field is 13 bits; anything larger is a lie.
  InjectFrag(1, 8, ops::IpDefragNode::kMaxFragOffsetUnits + 1, 1, "xx");
  InjectFrag(1, 8, uint64_t{1} << 40, 1, "xx");
  engine_.PumpUntilIdle();
  EXPECT_EQ(node_->parse_errors(), 2u);
  EXPECT_EQ(node_->open_assemblies(), 0u);
  EXPECT_FALSE(sub_->NextRow().has_value());
}

TEST_F(HostileDefragTest, DataPastDatagramLimitRejected) {
  // Maximum legal offset plus a payload that would cross 64 KiB.
  InjectFrag(1, 9, ops::IpDefragNode::kMaxFragOffsetUnits, 0,
             std::string(100, 'x'));
  engine_.PumpUntilIdle();
  EXPECT_EQ(node_->parse_errors(), 1u);
  EXPECT_EQ(node_->open_assemblies(), 0u);
  // The boundary itself is accepted: 7 bytes at the max offset end exactly
  // at 65535.
  InjectFrag(2, 10, ops::IpDefragNode::kMaxFragOffsetUnits, 1,
             std::string(7, 'y'));
  engine_.PumpUntilIdle();
  EXPECT_EQ(node_->parse_errors(), 1u);
  EXPECT_EQ(node_->open_assemblies(), 1u);
}

TEST_F(HostileDefragTest, FragmentFloodOnOneKeyIsBounded) {
  // More fragments than a legitimate 64 KiB datagram can hold, all on one
  // assembly key and never completing: the assembly is abandoned instead
  // of growing without bound.
  const size_t cap = ops::IpDefragNode::kMaxFragmentsPerAssembly;
  for (size_t i = 0; i <= cap; ++i) {
    InjectFrag(1, 11, i % (ops::IpDefragNode::kMaxFragOffsetUnits + 1), 1,
               "z");
    if (i % 1024 == 0) engine_.PumpUntilIdle();
  }
  engine_.PumpUntilIdle();
  EXPECT_GE(node_->parse_errors(), 1u);
  EXPECT_EQ(node_->open_assemblies(), 0u);
  EXPECT_FALSE(sub_->NextRow().has_value());
}

TEST_F(HostileDefragTest, OverlappingHostileFragmentsStayWithinSpan) {
  InjectFrag(1, 12, 0, 1, std::string(32, 'a'));  // [0, 32)
  InjectFrag(1, 12, 2, 0, std::string(32, 'b'));  // [16, 48), total 48
  engine_.PumpUntilIdle();
  auto row = sub_->NextRow();
  ASSERT_TRUE(row.has_value());
  EXPECT_EQ((*row)[4].string_value().size(), 48u);
  EXPECT_EQ(node_->parse_errors(), 0u);
}

}  // namespace
}  // namespace gigascope
