#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <string>
#include <vector>

#include "core/engine.h"
#include "workload/traffic_gen.h"

namespace gigascope::core {
namespace {

using expr::Value;
using gsql::DataType;

net::Packet MakeTcpPacket(SimTime timestamp, uint32_t dst_addr,
                          uint16_t dst_port, const std::string& payload,
                          uint8_t flags = net::kTcpFlagAck) {
  net::TcpPacketSpec spec;
  spec.src_addr = 0xac100001;
  spec.dst_addr = dst_addr;
  spec.src_port = 40000;
  spec.dst_port = dst_port;
  spec.flags = flags;
  spec.payload = payload;
  net::Packet packet;
  packet.bytes = net::BuildTcpPacket(spec);
  packet.orig_len = static_cast<uint32_t>(packet.bytes.size());
  packet.timestamp = timestamp;
  return packet;
}

net::Packet MakeUdpPacket(SimTime timestamp, uint16_t dst_port) {
  net::UdpPacketSpec spec;
  spec.src_addr = 0xac100001;
  spec.dst_addr = 0x0a000001;
  spec.src_port = 40000;
  spec.dst_port = dst_port;
  spec.payload = "x";
  net::Packet packet;
  packet.bytes = net::BuildUdpPacket(spec);
  packet.orig_len = static_cast<uint32_t>(packet.bytes.size());
  packet.timestamp = timestamp;
  return packet;
}

TEST(EngineTest, ThePaperTcpdestQuery) {
  Engine engine;
  engine.AddInterface("eth0");
  auto info = engine.AddQuery(
      "DEFINE { query_name tcpdest0; } "
      "SELECT destIP, destPort, time FROM eth0.PKT "
      "WHERE ipVersion = 4 AND protocol = 6");
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  EXPECT_TRUE(info->has_lfta);
  EXPECT_FALSE(info->has_hfta);  // simple query: entirely an LFTA

  auto sub = engine.Subscribe("tcpdest0");
  ASSERT_TRUE(sub.ok());

  ASSERT_TRUE(engine
                  .InjectPacket("eth0", MakeTcpPacket(kNanosPerSecond,
                                                      0x0a000001, 80, "hi"))
                  .ok());
  ASSERT_TRUE(
      engine.InjectPacket("eth0", MakeUdpPacket(2 * kNanosPerSecond, 53))
          .ok());
  engine.PumpUntilIdle();

  auto row = (*sub)->NextRow();
  ASSERT_TRUE(row.has_value());
  EXPECT_EQ((*row)[0].ip_value(), 0x0a000001u);
  EXPECT_EQ((*row)[1].uint_value(), 80u);
  EXPECT_EQ((*row)[2].uint_value(), 1u);  // second 1
  EXPECT_FALSE((*sub)->NextRow().has_value());  // UDP filtered out
}

TEST(EngineTest, AggregationQueryEndToEnd) {
  Engine engine;
  engine.AddInterface("eth0");
  auto info = engine.AddQuery(
      "DEFINE { query_name pkts; } "
      "SELECT tb, count(*), sum(len) FROM eth0.PKT "
      "WHERE protocol = 6 GROUP BY time/60 AS tb");
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  EXPECT_TRUE(info->split_aggregation);
  EXPECT_TRUE(info->has_lfta);
  EXPECT_TRUE(info->has_hfta);

  auto sub = engine.Subscribe("pkts");
  ASSERT_TRUE(sub.ok());

  // Three packets in minute 0, two in minute 1, then one in minute 2 to
  // close minute 1.
  uint64_t total_len_minute0 = 0;
  for (int i = 0; i < 3; ++i) {
    net::Packet packet =
        MakeTcpPacket((10 + i) * kNanosPerSecond, 0x0a000001, 80, "abc");
    total_len_minute0 += packet.orig_len;
    ASSERT_TRUE(engine.InjectPacket("eth0", packet).ok());
  }
  for (int i = 0; i < 2; ++i) {
    ASSERT_TRUE(engine
                    .InjectPacket("eth0",
                                  MakeTcpPacket((70 + i) * kNanosPerSecond,
                                                0x0a000001, 80, "abc"))
                    .ok());
  }
  ASSERT_TRUE(engine
                  .InjectPacket("eth0", MakeTcpPacket(130 * kNanosPerSecond,
                                                      0x0a000001, 80, "a"))
                  .ok());
  engine.PumpUntilIdle();

  auto row = (*sub)->NextRow();
  ASSERT_TRUE(row.has_value());
  EXPECT_EQ((*row)[0].uint_value(), 0u);  // minute bucket 0
  EXPECT_EQ((*row)[1].uint_value(), 3u);
  EXPECT_EQ((*row)[2].uint_value(), total_len_minute0);
  row = (*sub)->NextRow();
  ASSERT_TRUE(row.has_value());
  EXPECT_EQ((*row)[0].uint_value(), 1u);
  EXPECT_EQ((*row)[1].uint_value(), 2u);
}

TEST(EngineTest, LftaStreamVisibleUnderMangledName) {
  Engine engine;
  engine.AddInterface("eth0");
  auto info = engine.AddQuery(
      "DEFINE { query_name counts; } "
      "SELECT tb, count(*) FROM eth0.PKT GROUP BY time/60 AS tb");
  ASSERT_TRUE(info.ok());
  // §3: "both streams are available to the application, though the LFTA
  // query will have a mangled name".
  auto sub = engine.Subscribe(info->lfta_name);
  EXPECT_TRUE(sub.ok()) << sub.status().ToString();
}

TEST(EngineTest, QueryCompositionThroughCatalog) {
  Engine engine;
  engine.AddInterface("eth0");
  ASSERT_TRUE(engine
                  .AddQuery("DEFINE { query_name tcp80; } "
                            "SELECT time, len FROM eth0.PKT "
                            "WHERE protocol = 6 AND destPort = 80")
                  .ok());
  // Second query reads the first one's output by name (§2.2).
  auto info = engine.AddQuery(
      "DEFINE { query_name persec; } "
      "SELECT time, count(*) FROM tcp80 GROUP BY time");
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  EXPECT_FALSE(info->has_lfta);  // Stream input: HFTA only

  auto sub = engine.Subscribe("persec");
  ASSERT_TRUE(sub.ok());
  for (int second = 1; second <= 3; ++second) {
    for (int i = 0; i < second; ++i) {
      ASSERT_TRUE(
          engine
              .InjectPacket("eth0",
                            MakeTcpPacket(second * kNanosPerSecond + i * 100,
                                          0x0a000001, 80, "x"))
              .ok());
    }
  }
  engine.PumpUntilIdle();
  // Seconds 1 and 2 closed (second 3 still open).
  auto row = (*sub)->NextRow();
  ASSERT_TRUE(row.has_value());
  EXPECT_EQ((*row)[0].uint_value(), 1u);
  EXPECT_EQ((*row)[1].uint_value(), 1u);
  row = (*sub)->NextRow();
  ASSERT_TRUE(row.has_value());
  EXPECT_EQ((*row)[0].uint_value(), 2u);
  EXPECT_EQ((*row)[1].uint_value(), 2u);
}

TEST(EngineTest, MergeQueryEndToEnd) {
  Engine engine;
  engine.AddInterface("eth0");
  engine.AddInterface("eth1");
  ASSERT_TRUE(engine
                  .AddQuery("DEFINE { query_name t0; } "
                            "SELECT time, destPort FROM eth0.PKT "
                            "WHERE protocol = 6")
                  .ok());
  ASSERT_TRUE(engine
                  .AddQuery("DEFINE { query_name t1; } "
                            "SELECT time, destPort FROM eth1.PKT "
                            "WHERE protocol = 6")
                  .ok());
  auto info = engine.AddQuery(
      "DEFINE { query_name both; } MERGE t0.time : t1.time FROM t0, t1");
  ASSERT_TRUE(info.ok()) << info.status().ToString();

  auto sub = engine.Subscribe("both");
  ASSERT_TRUE(sub.ok());

  // Interleaved traffic on the two simplex directions.
  ASSERT_TRUE(engine
                  .InjectPacket("eth0", MakeTcpPacket(1 * kNanosPerSecond,
                                                      0x0a000001, 80, "x"))
                  .ok());
  ASSERT_TRUE(engine
                  .InjectPacket("eth1", MakeTcpPacket(2 * kNanosPerSecond,
                                                      0x0a000001, 81, "x"))
                  .ok());
  ASSERT_TRUE(engine
                  .InjectPacket("eth0", MakeTcpPacket(3 * kNanosPerSecond,
                                                      0x0a000001, 82, "x"))
                  .ok());
  ASSERT_TRUE(engine
                  .InjectPacket("eth1", MakeTcpPacket(4 * kNanosPerSecond,
                                                      0x0a000001, 83, "x"))
                  .ok());
  engine.PumpUntilIdle();
  engine.FlushAll();

  std::vector<uint64_t> times;
  while (auto row = (*sub)->NextRow()) {
    times.push_back((*row)[0].uint_value());
  }
  ASSERT_EQ(times.size(), 4u);
  for (size_t i = 1; i < times.size(); ++i) {
    EXPECT_LE(times[i - 1], times[i]);
  }
}

TEST(EngineTest, HttpFractionQueryWithRegexUdf) {
  Engine engine;
  engine.AddInterface("eth0");
  auto info = engine.AddQuery(
      "DEFINE { query_name http80; } "
      "SELECT time, len FROM eth0.PKT "
      "WHERE protocol = 6 AND destPort = 80 "
      "AND match_regex(payload, '^[^\\n]*HTTP/1.*')");
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  // Regex is too expensive for an LFTA (§4): the query must split.
  EXPECT_TRUE(info->has_lfta);
  EXPECT_TRUE(info->has_hfta);

  auto sub = engine.Subscribe("http80");
  ASSERT_TRUE(sub.ok());
  ASSERT_TRUE(engine
                  .InjectPacket("eth0",
                                MakeTcpPacket(kNanosPerSecond, 0x0a000001, 80,
                                              "HTTP/1.1 200 OK\r\n"))
                  .ok());
  ASSERT_TRUE(engine
                  .InjectPacket("eth0",
                                MakeTcpPacket(2 * kNanosPerSecond, 0x0a000001,
                                              80, "opaque tunnel bytes"))
                  .ok());
  engine.PumpUntilIdle();
  auto row = (*sub)->NextRow();
  ASSERT_TRUE(row.has_value());
  EXPECT_EQ((*row)[0].uint_value(), 1u);
  EXPECT_FALSE((*sub)->NextRow().has_value());
}

TEST(EngineTest, GetLpmIdQueryEndToEnd) {
  Engine engine;
  engine.AddInterface("eth0");
  auto info = engine.AddQuery(
      "DEFINE { query_name peers; } "
      "SELECT peerid, tb, count(*) FROM eth0.PKT "
      "GROUP BY time/60 AS tb, "
      "getlpmid(destIP, 'inline:10.0.0.0/8 1\n10.1.0.0/16 2') AS peerid");
  ASSERT_TRUE(info.ok()) << info.status().ToString();

  auto sub = engine.Subscribe("peers");
  ASSERT_TRUE(sub.ok());
  // Two packets to peer 1 (10.2.x.x), one to peer 2 (10.1.x.x), one
  // unmatched (192.168.*, discarded by the partial function).
  ASSERT_TRUE(engine.InjectPacket(
      "eth0", MakeTcpPacket(1 * kNanosPerSecond, 0x0a020001, 80, "x")).ok());
  ASSERT_TRUE(engine.InjectPacket(
      "eth0", MakeTcpPacket(2 * kNanosPerSecond, 0x0a020002, 80, "x")).ok());
  ASSERT_TRUE(engine.InjectPacket(
      "eth0", MakeTcpPacket(3 * kNanosPerSecond, 0x0a010001, 80, "x")).ok());
  ASSERT_TRUE(engine.InjectPacket(
      "eth0", MakeTcpPacket(4 * kNanosPerSecond, 0xc0a80001, 80, "x")).ok());
  engine.PumpUntilIdle();
  engine.FlushAll();

  std::map<uint64_t, uint64_t> counts;
  while (auto row = (*sub)->NextRow()) {
    counts[(*row)[0].uint_value()] += (*row)[2].uint_value();
  }
  EXPECT_EQ(counts[1], 2u);
  EXPECT_EQ(counts[2], 1u);
  EXPECT_EQ(counts.count(0), 0u);  // unmatched tuple was discarded
}

TEST(EngineTest, QueryParametersChangeOnTheFly) {
  Engine engine;
  engine.AddInterface("eth0");
  auto info = engine.AddQuery(
      "DEFINE { query_name bigpkts; param minlen UINT = 1000; } "
      "SELECT time, len FROM eth0.PKT WHERE len > $minlen");
  ASSERT_TRUE(info.ok()) << info.status().ToString();

  auto sub = engine.Subscribe("bigpkts");
  ASSERT_TRUE(sub.ok());
  net::Packet small = MakeTcpPacket(kNanosPerSecond, 0x0a000001, 80, "tiny");
  ASSERT_TRUE(engine.InjectPacket("eth0", small).ok());
  engine.PumpUntilIdle();
  EXPECT_FALSE((*sub)->NextRow().has_value());

  // Lower the threshold on the fly (§3).
  ASSERT_TRUE(engine.SetParam("bigpkts", "minlen", Value::Uint(10)).ok());
  ASSERT_TRUE(
      engine.InjectPacket("eth0", MakeTcpPacket(2 * kNanosPerSecond,
                                                0x0a000001, 80, "tiny"))
          .ok());
  engine.PumpUntilIdle();
  EXPECT_TRUE((*sub)->NextRow().has_value());
}

TEST(EngineTest, SetParamValidatesNames) {
  Engine engine;
  engine.AddInterface("eth0");
  ASSERT_TRUE(engine
                  .AddQuery("DEFINE { query_name q; param p INT = 1; } "
                            "SELECT time FROM eth0.PKT WHERE len > $p")
                  .ok());
  EXPECT_FALSE(engine.SetParam("nope", "p", Value::Int(2)).ok());
  EXPECT_FALSE(engine.SetParam("q", "nope", Value::Int(2)).ok());
  EXPECT_TRUE(engine.SetParam("q", "p", Value::Int(2)).ok());
}

TEST(EngineTest, MissingParamWithoutDefaultRejected) {
  Engine engine;
  engine.AddInterface("eth0");
  auto info = engine.AddQuery(
      "DEFINE { query_name q; param p INT; } "
      "SELECT time FROM eth0.PKT WHERE len > $p");
  EXPECT_FALSE(info.ok());
  // Supplying the value at instantiation works.
  info = engine.AddQuery(
      "DEFINE { query_name q; param p INT; } "
      "SELECT time FROM eth0.PKT WHERE len > $p",
      {{"p", Value::Int(100)}});
  EXPECT_TRUE(info.ok()) << info.status().ToString();
}

TEST(EngineTest, DuplicateQueryNameRejected) {
  Engine engine;
  engine.AddInterface("eth0");
  ASSERT_TRUE(engine
                  .AddQuery("DEFINE { query_name q; } "
                            "SELECT time FROM eth0.PKT")
                  .ok());
  auto info = engine.AddQuery(
      "DEFINE { query_name q; } SELECT len FROM eth0.PKT");
  ASSERT_FALSE(info.ok());
  EXPECT_EQ(info.status().code(), Status::Code::kAlreadyExists);
}

TEST(EngineTest, CustomProtocolViaDdl) {
  Engine engine;
  engine.AddInterface("eth0");
  ASSERT_TRUE(engine
                  .ExecuteDdl("CREATE PROTOCOL MINI ("
                              "time UINT INCREASING, len UINT)")
                  .ok());
  auto info = engine.AddQuery(
      "DEFINE { query_name m; } SELECT time, len FROM eth0.MINI");
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  auto sub = engine.Subscribe("m");
  ASSERT_TRUE(sub.ok());
  net::Packet packet = MakeTcpPacket(kNanosPerSecond, 1, 2, "abc");
  ASSERT_TRUE(engine.InjectPacket("eth0", packet).ok());
  engine.PumpUntilIdle();
  auto row = (*sub)->NextRow();
  ASSERT_TRUE(row.has_value());
  EXPECT_EQ((*row)[1].uint_value(), packet.orig_len);
}

TEST(EngineTest, ExternalStreamViaInjectRow) {
  Engine engine;
  // The "write your own query node" path: declare a stream and feed it.
  std::vector<gsql::FieldDef> fields;
  fields.push_back({"t", DataType::kUint, gsql::OrderSpec::Increasing()});
  fields.push_back({"v", DataType::kUint, gsql::OrderSpec::None()});
  ASSERT_TRUE(engine
                  .DeclareStream(gsql::StreamSchema(
                      "external", gsql::StreamKind::kStream, fields))
                  .ok());
  auto info = engine.AddQuery(
      "DEFINE { query_name doubled; } SELECT t, v * 2 AS v2 FROM external");
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  auto sub = engine.Subscribe("doubled");
  ASSERT_TRUE(sub.ok());
  ASSERT_TRUE(
      engine.InjectRow("external", {Value::Uint(1), Value::Uint(21)}).ok());
  engine.PumpUntilIdle();
  auto row = (*sub)->NextRow();
  ASSERT_TRUE(row.has_value());
  EXPECT_EQ((*row)[1].uint_value(), 42u);
}

TEST(EngineTest, HeartbeatClosesIdleAggregation) {
  Engine engine;
  engine.AddInterface("eth0");
  ASSERT_TRUE(engine
                  .AddQuery("DEFINE { query_name persec; } "
                            "SELECT time, count(*) FROM eth0.PKT "
                            "GROUP BY time")
                  .ok());
  auto sub = engine.Subscribe("persec");
  ASSERT_TRUE(sub.ok());
  ASSERT_TRUE(engine
                  .InjectPacket("eth0", MakeTcpPacket(kNanosPerSecond,
                                                      0x0a000001, 80, "x"))
                  .ok());
  engine.PumpUntilIdle();
  EXPECT_FALSE((*sub)->NextRow().has_value());  // second 1 still open
  // No more packets arrive, but a heartbeat advances time to second 10:
  // second 1 closes without any tuple (§3 unblocking).
  ASSERT_TRUE(engine.InjectHeartbeat("eth0", 10 * kNanosPerSecond).ok());
  engine.PumpUntilIdle();
  auto row = (*sub)->NextRow();
  ASSERT_TRUE(row.has_value());
  EXPECT_EQ((*row)[0].uint_value(), 1u);
  EXPECT_EQ((*row)[1].uint_value(), 1u);
}

TEST(EngineTest, WindowJoinEndToEnd) {
  Engine engine;
  engine.AddInterface("eth0");
  ASSERT_TRUE(engine
                  .AddQuery("DEFINE { query_name syns; } "
                            "SELECT time, srcIP FROM eth0.PKT "
                            "WHERE protocol = 6 AND tcpFlags = 2")
                  .ok());
  ASSERT_TRUE(engine
                  .AddQuery("DEFINE { query_name fins; } "
                            "SELECT time, srcIP FROM eth0.PKT "
                            "WHERE protocol = 6 AND tcpFlags = 1")
                  .ok());
  auto info = engine.AddQuery(
      "DEFINE { query_name paired; } "
      "SELECT s.time, f.time FROM syns s, fins f "
      "WHERE s.time >= f.time - 2 AND s.time <= f.time + 2");
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  auto sub = engine.Subscribe("paired");
  ASSERT_TRUE(sub.ok());

  ASSERT_TRUE(engine
                  .InjectPacket("eth0",
                                MakeTcpPacket(1 * kNanosPerSecond, 0x0a000001,
                                              80, "", net::kTcpFlagSyn))
                  .ok());
  ASSERT_TRUE(engine
                  .InjectPacket("eth0",
                                MakeTcpPacket(2 * kNanosPerSecond, 0x0a000001,
                                              80, "", net::kTcpFlagFin))
                  .ok());
  engine.PumpUntilIdle();
  // The default join algorithm is order-preserving: completed matches are
  // held until the output bound passes them (§2.1); end-of-stream flushes.
  engine.FlushAll();
  auto row = (*sub)->NextRow();
  ASSERT_TRUE(row.has_value());
  EXPECT_EQ((*row)[0].uint_value(), 1u);
  EXPECT_EQ((*row)[1].uint_value(), 2u);
}

TEST(EngineTest, GroupByOverJoinEndToEnd) {
  Engine engine;
  engine.AddInterface("eth0");
  // Two derived streams, then a per-second count of joined pairs.
  ASSERT_TRUE(engine
                  .AddQuery("DEFINE { query_name syns; } "
                            "SELECT time, srcIP FROM eth0.PKT "
                            "WHERE protocol = 6 AND tcpFlags = 2")
                  .ok());
  ASSERT_TRUE(engine
                  .AddQuery("DEFINE { query_name acks; } "
                            "SELECT time, srcIP FROM eth0.PKT "
                            "WHERE protocol = 6 AND tcpFlags = 16")
                  .ok());
  auto info = engine.AddQuery(
      "DEFINE { query_name pairs_per_sec; } "
      "SELECT s.time, count(*) FROM syns s, acks a "
      "WHERE s.time = a.time GROUP BY s.time");
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  EXPECT_FALSE(info->unbounded_aggregation);

  auto sub = engine.Subscribe("pairs_per_sec");
  ASSERT_TRUE(sub.ok());
  // Second 1: 2 SYNs x 3 ACKs = 6 pairs; second 2: 1 x 1 = 1 pair.
  for (int i = 0; i < 2; ++i) {
    ASSERT_TRUE(engine
                    .InjectPacket("eth0",
                                  MakeTcpPacket(kNanosPerSecond + i, 1, 80,
                                                "", net::kTcpFlagSyn))
                    .ok());
  }
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(engine
                    .InjectPacket("eth0",
                                  MakeTcpPacket(kNanosPerSecond + 10 + i, 1,
                                                80, "", net::kTcpFlagAck))
                    .ok());
  }
  ASSERT_TRUE(engine
                  .InjectPacket("eth0",
                                MakeTcpPacket(2 * kNanosPerSecond, 1, 80, "",
                                              net::kTcpFlagSyn))
                  .ok());
  ASSERT_TRUE(engine
                  .InjectPacket("eth0",
                                MakeTcpPacket(2 * kNanosPerSecond + 1, 1, 80,
                                              "", net::kTcpFlagAck))
                  .ok());
  engine.PumpUntilIdle();
  engine.FlushAll();

  std::map<uint64_t, uint64_t> counts;
  while (auto row = (*sub)->NextRow()) {
    counts[(*row)[0].uint_value()] += (*row)[1].uint_value();
  }
  EXPECT_EQ(counts[1], 6u);
  EXPECT_EQ(counts[2], 1u);
}

TEST(EngineTest, NodeStatsExposed) {
  Engine engine;
  engine.AddInterface("eth0");
  ASSERT_TRUE(engine
                  .AddQuery("DEFINE { query_name q; } "
                            "SELECT time FROM eth0.PKT WHERE protocol = 6")
                  .ok());
  ASSERT_TRUE(engine
                  .InjectPacket("eth0", MakeTcpPacket(kNanosPerSecond,
                                                      0x0a000001, 80, "x"))
                  .ok());
  engine.PumpUntilIdle();
  auto stats = engine.GetNodeStats();
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_EQ(stats[0].name, "q");
  EXPECT_EQ(stats[0].tuples_in, 1u);
  EXPECT_EQ(stats[0].tuples_out, 1u);
}

TEST(EngineTest, AvgDecomposedEndToEnd) {
  Engine engine;
  engine.AddInterface("eth0");
  auto info = engine.AddQuery(
      "DEFINE { query_name stats; } "
      "SELECT tb, avg(len), count(*) FROM eth0.PKT "
      "WHERE protocol = 6 GROUP BY time/60 AS tb");
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  EXPECT_TRUE(info->split_aggregation);  // AVG still splits (as SUM+COUNT)

  auto sub = engine.Subscribe("stats");
  ASSERT_TRUE(sub.ok());
  uint64_t total = 0;
  for (int i = 0; i < 4; ++i) {
    net::Packet packet = MakeTcpPacket((i + 1) * kNanosPerSecond, 0x0a000001,
                                       80, std::string(i * 100, 'x'));
    total += packet.orig_len;
    ASSERT_TRUE(engine.InjectPacket("eth0", packet).ok());
  }
  engine.PumpUntilIdle();
  engine.FlushAll();
  auto row = (*sub)->NextRow();
  ASSERT_TRUE(row.has_value());
  EXPECT_DOUBLE_EQ((*row)[1].float_value(), static_cast<double>(total) / 4);
  EXPECT_EQ((*row)[2].uint_value(), 4u);
}

TEST(EngineTest, HavingWithParameterEndToEnd) {
  Engine engine;
  engine.AddInterface("eth0");
  auto info = engine.AddQuery(
      "DEFINE { query_name hot; param floor UINT = 3; } "
      "SELECT destIP, tb, count(*) FROM eth0.PKT "
      "GROUP BY time AS tb, destIP HAVING count(*) > $floor");
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  auto sub = engine.Subscribe("hot");
  ASSERT_TRUE(sub.ok());

  // Second 1: 5 packets to A (passes floor 3), 2 to B (filtered).
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(engine
                    .InjectPacket("eth0",
                                  MakeTcpPacket(kNanosPerSecond + i * 100,
                                                0x0a0000aa, 80, "x"))
                    .ok());
  }
  for (int i = 0; i < 2; ++i) {
    ASSERT_TRUE(engine
                    .InjectPacket("eth0",
                                  MakeTcpPacket(kNanosPerSecond + i * 100,
                                                0x0a0000bb, 80, "x"))
                    .ok());
  }
  engine.PumpUntilIdle();
  engine.FlushAll();
  auto row = (*sub)->NextRow();
  ASSERT_TRUE(row.has_value());
  EXPECT_EQ((*row)[0].ip_value(), 0x0a0000aau);
  EXPECT_EQ((*row)[2].uint_value(), 5u);
  EXPECT_FALSE((*sub)->NextRow().has_value());
}

TEST(EngineTest, BandedMergeToleratesInBandDisorder) {
  Engine engine;
  std::vector<gsql::FieldDef> fields;
  fields.push_back({"bt", DataType::kUint, gsql::OrderSpec::Banded(5)});
  fields.push_back({"v", DataType::kUint, gsql::OrderSpec::None()});
  for (const char* name : {"s0", "s1"}) {
    ASSERT_TRUE(engine
                    .DeclareStream(gsql::StreamSchema(
                        name, gsql::StreamKind::kStream, fields))
                    .ok());
  }
  auto info = engine.AddQuery(
      "DEFINE { query_name m; } MERGE s0.bt : s1.bt FROM s0, s1");
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  // The merge attribute stays banded in the output schema.
  auto schema = engine.registry().GetSchema("m");
  ASSERT_TRUE(schema.ok());
  EXPECT_EQ(schema->field(0).order.kind,
            gsql::OrderKind::kBandedIncreasing);

  auto sub = engine.Subscribe("m");
  ASSERT_TRUE(sub.ok());
  // In-band disorder on both inputs.
  for (uint64_t value : {5ull, 3ull, 7ull, 6ull, 10ull}) {
    ASSERT_TRUE(
        engine.InjectRow("s0", {Value::Uint(value), Value::Uint(0)}).ok());
  }
  for (uint64_t value : {4ull, 2ull, 8ull, 9ull, 12ull}) {
    ASSERT_TRUE(
        engine.InjectRow("s1", {Value::Uint(value), Value::Uint(1)}).ok());
  }
  engine.PumpUntilIdle();
  engine.FlushAll();
  std::vector<uint64_t> merged;
  while (auto row = (*sub)->NextRow()) {
    merged.push_back((*row)[0].uint_value());
  }
  ASSERT_EQ(merged.size(), 10u);
  EXPECT_TRUE(std::is_sorted(merged.begin(), merged.end()));
}

TEST(EngineTest, DiagnosticsNameTheProblem) {
  Engine engine;
  engine.AddInterface("eth0");
  struct Case {
    const char* query;
    const char* expected_fragment;
  };
  const Case cases[] = {
      {"SELECT nonsuch FROM eth0.PKT", "nonsuch"},
      {"SELECT time FROM eth0.NOPE", "NOPE"},
      {"SELECT time FROM wlan0.PKT", "wlan0"},
      {"SELECT destIP, count(*) FROM eth0.PKT GROUP BY time", "destIP"},
      {"SELECT time FROM eth0.PKT WHERE len > $undeclared", "undeclared"},
      {"SELECT frobnicate(len) FROM eth0.PKT", "frobnicate"},
      {"SELECT time FROM eth0.PKT WHERE payload = 5", "STRING"},
      {"SELECT l.time FROM eth0.PKT l, eth0.PKT r WHERE l.len = r.len",
       "window"},
  };
  for (const Case& test_case : cases) {
    auto info = engine.AddQuery(test_case.query);
    ASSERT_FALSE(info.ok()) << test_case.query;
    EXPECT_NE(info.status().message().find(test_case.expected_fragment),
              std::string::npos)
        << "diagnostic for \"" << test_case.query << "\" was: "
        << info.status().ToString();
  }
}

TEST(EngineTest, OverloadDropsEarliestInTheChain) {
  // §4/§5: "highly processed tuples ... are more valuable than
  // less-processed tuples". With tiny channels and a consumer that never
  // keeps up, losses land on the raw packet channel, not on the query's
  // output.
  EngineOptions options;
  options.channel_capacity = 8;
  // Per-tuple flow: ring capacity counts slots, and a slot holds a whole
  // batch — size 1 makes slot == tuple so the drop arithmetic below is
  // exact. Batched overload behavior is covered by batch_equivalence_test.
  options.batch_max_size = 1;
  Engine engine(options);
  engine.AddInterface("eth0");
  ASSERT_TRUE(engine
                  .AddQuery("DEFINE { query_name q; } "
                            "SELECT time, len FROM eth0.PKT "
                            "WHERE protocol = 6")
                  .ok());
  auto sub = engine.Subscribe("q", 1 << 12);
  ASSERT_TRUE(sub.ok());

  // Flood without pumping: the LFTA cannot drain its input.
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(engine
                    .InjectPacket("eth0",
                                  MakeTcpPacket((i + 1) * 1000, 0x0a000001,
                                                80, "x"))
                    .ok());
  }
  uint64_t raw_drops = engine.registry().TotalDrops("eth0.PKT");
  EXPECT_GE(raw_drops, 90u);  // ~92 of 100 dropped before any processing
  EXPECT_EQ(engine.registry().TotalDrops("q"), 0u);

  engine.PumpUntilIdle();
  int delivered = 0;
  while ((*sub)->NextRow()) ++delivered;
  EXPECT_EQ(delivered, 8);  // exactly the channel's worth survived
  EXPECT_EQ((*sub)->dropped(), 0u);
}

TEST(EngineTest, SubscriptionDropAccountingVisible) {
  Engine engine;
  engine.AddInterface("eth0");
  ASSERT_TRUE(engine
                  .AddQuery("DEFINE { query_name q; } "
                            "SELECT time FROM eth0.PKT")
                  .ok());
  // A deliberately tiny subscriber buffer: the subscriber is the slow one.
  auto sub = engine.Subscribe("q", 4);
  ASSERT_TRUE(sub.ok());
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(engine
                    .InjectPacket("eth0",
                                  MakeTcpPacket((i + 1) * 1000, 0x0a000001,
                                                80, "x"))
                    .ok());
    engine.PumpUntilIdle();
  }
  int received = 0;
  while ((*sub)->NextRow()) ++received;
  EXPECT_EQ(received, 4);
  EXPECT_EQ((*sub)->dropped(), 46u);
}

TEST(EngineTest, InjectIntoUnknownInterfaceFails) {
  Engine engine;
  engine.AddInterface("eth0");
  net::Packet packet = MakeTcpPacket(1, 1, 1, "");
  EXPECT_FALSE(engine.InjectPacket("eth9", packet).ok());
}

TEST(EngineTest, PunctuationOnlyChannelTerminates) {
  // Regression: a subscriber on a channel that holds only punctuations
  // (ordering-update tokens, no tuples) must see NextRow() terminate with
  // nullopt rather than spin, and pending() must reflect the skipped
  // messages correctly.
  Engine engine;
  std::vector<gsql::FieldDef> fields;
  fields.push_back({"t", DataType::kUint, gsql::OrderSpec::Increasing()});
  fields.push_back({"v", DataType::kUint, gsql::OrderSpec::None()});
  ASSERT_TRUE(engine
                  .DeclareStream(gsql::StreamSchema(
                      "external", gsql::StreamKind::kStream, fields))
                  .ok());
  auto sub = engine.Subscribe("external");
  ASSERT_TRUE(sub.ok());
  for (uint64_t t : {1ull, 2ull, 3ull}) {
    ASSERT_TRUE(
        engine.InjectPunctuation("external", 0, Value::Uint(t)).ok());
  }
  EXPECT_EQ((*sub)->pending(), 3u);
  EXPECT_FALSE((*sub)->NextRow().has_value());
  EXPECT_EQ((*sub)->pending(), 0u);  // all three were consumed, not stuck

  // A tuple behind punctuations is still found.
  ASSERT_TRUE(engine.InjectPunctuation("external", 0, Value::Uint(4)).ok());
  ASSERT_TRUE(
      engine.InjectRow("external", {Value::Uint(5), Value::Uint(7)}).ok());
  EXPECT_EQ((*sub)->pending(), 2u);
  auto row = (*sub)->NextRow();
  ASSERT_TRUE(row.has_value());
  EXPECT_EQ((*row)[1].uint_value(), 7u);
  EXPECT_EQ((*sub)->pending(), 0u);
}

TEST(EngineTest, FlushAllSealsTheEngine) {
  // Contract: FlushAll is the end-of-stream barrier. Afterwards the engine
  // rejects further input with FailedPrecondition, and repeated FlushAll
  // calls are no-ops (buffered state is not flushed twice).
  Engine engine;
  engine.AddInterface("eth0");
  std::vector<gsql::FieldDef> fields;
  fields.push_back({"t", DataType::kUint, gsql::OrderSpec::Increasing()});
  ASSERT_TRUE(engine
                  .DeclareStream(gsql::StreamSchema(
                      "ext", gsql::StreamKind::kStream, fields))
                  .ok());
  ASSERT_TRUE(engine
                  .AddQuery("DEFINE { query_name persec; } "
                            "SELECT time, count(*) FROM eth0.PKT "
                            "GROUP BY time")
                  .ok());
  auto sub = engine.Subscribe("persec");
  ASSERT_TRUE(sub.ok());
  ASSERT_TRUE(engine
                  .InjectPacket("eth0", MakeTcpPacket(kNanosPerSecond,
                                                      0x0a000001, 80, "x"))
                  .ok());
  engine.FlushAll();
  int rows = 0;
  while ((*sub)->NextRow()) ++rows;
  EXPECT_EQ(rows, 1);  // the open group was flushed exactly once

  Status status = engine.InjectPacket(
      "eth0", MakeTcpPacket(2 * kNanosPerSecond, 0x0a000001, 80, "x"));
  EXPECT_EQ(status.code(), Status::Code::kFailedPrecondition);
  status = engine.InjectRow("ext", {Value::Uint(1)});
  EXPECT_EQ(status.code(), Status::Code::kFailedPrecondition);
  status = engine.InjectPunctuation("ext", 0, Value::Uint(1));
  EXPECT_EQ(status.code(), Status::Code::kFailedPrecondition);
  status = engine.InjectHeartbeat("eth0", 3 * kNanosPerSecond);
  EXPECT_EQ(status.code(), Status::Code::kFailedPrecondition);
  EXPECT_EQ(engine.StartThreads(2).code(),
            Status::Code::kFailedPrecondition);

  engine.FlushAll();  // idempotent: no second flush of operator state
  EXPECT_FALSE((*sub)->NextRow().has_value());
}

TEST(EngineThreadedTest, MutationsRejectedWhileWorkersRun) {
  Engine engine;
  engine.AddInterface("eth0");
  ASSERT_TRUE(engine
                  .AddQuery("DEFINE { query_name agg; } "
                            "SELECT tb, count(*) FROM eth0.PKT "
                            "GROUP BY time AS tb")
                  .ok());
  ASSERT_TRUE(engine.StartThreads(2).ok());
  EXPECT_TRUE(engine.threads_running());
  EXPECT_EQ(engine
                .AddQuery("DEFINE { query_name late; } "
                          "SELECT time FROM eth0.PKT")
                .status()
                .code(),
            Status::Code::kFailedPrecondition);
  EXPECT_EQ(engine.Subscribe("agg").status().code(),
            Status::Code::kFailedPrecondition);
  EXPECT_EQ(engine.SetParam("agg", "p", Value::Uint(1)).code(),
            Status::Code::kFailedPrecondition);
  engine.StopThreads();
  EXPECT_FALSE(engine.threads_running());
}

TEST(EngineThreadedTest, SplitAggregationMatchesSingleThreaded) {
  // The same packet batch through the single-threaded pump and through the
  // worker-pool pump must produce identical aggregates: the SPSC handoff
  // loses and reorders nothing on the LFTA→HFTA channel.
  gigascope::workload::TrafficConfig config;
  config.seed = 7;
  config.num_flows = 50;
  gigascope::workload::TrafficGenerator gen(config);
  std::vector<net::Packet> batch;
  for (int i = 0; i < 4000; ++i) batch.push_back(gen.Next());
  const char* kQuery =
      "DEFINE { query_name agg; } "
      "SELECT tb, destIP, count(*), sum(len) FROM eth0.PKT "
      "GROUP BY time AS tb, destIP";

  auto run = [&](size_t threads) {
    Engine engine;  // default capacity 8192 > batch: no drops
    engine.AddInterface("eth0");
    auto info = engine.AddQuery(kQuery);
    EXPECT_TRUE(info.ok()) << info.status().ToString();
    auto sub = engine.Subscribe("agg", 8192);
    EXPECT_TRUE(sub.ok());
    if (threads > 0) {
      Status started = engine.StartThreads(threads);
      EXPECT_TRUE(started.ok()) << started.ToString();
    }
    for (const net::Packet& packet : batch) {
      EXPECT_TRUE(engine.InjectPacket("eth0", packet).ok());
    }
    engine.FlushAll();
    EXPECT_FALSE(engine.threads_running());  // FlushAll joined the pool
    std::vector<std::string> rows;
    while (auto row = (*sub)->NextRow()) {
      std::string text;
      for (const Value& value : *row) text += value.ToString() + "\t";
      rows.push_back(text);
    }
    std::sort(rows.begin(), rows.end());
    return rows;
  };

  std::vector<std::string> single = run(0);
  std::vector<std::string> threaded = run(2);
  EXPECT_FALSE(single.empty());
  EXPECT_EQ(single, threaded);
}

TEST(EngineThreadedTest, StartStopRestartDrainsEverything) {
  Engine engine;
  engine.AddInterface("eth0");
  ASSERT_TRUE(engine
                  .AddQuery("DEFINE { query_name q3; } "
                            "SELECT tb, count(*) FROM eth0.PKT "
                            "GROUP BY time AS tb")
                  .ok());
  auto sub = engine.Subscribe("q3", 8192);
  ASSERT_TRUE(sub.ok());
  ASSERT_TRUE(engine.StartThreads(1).ok());
  for (int i = 0; i < 500; ++i) {
    ASSERT_TRUE(engine
                    .InjectPacket("eth0",
                                  MakeTcpPacket((i + 1) * kNanosPerSecond,
                                                0x0a000001, 80, "x"))
                    .ok());
  }
  engine.StopThreads();
  // Undrained work survives StopThreads and can be pumped single-threaded.
  ASSERT_TRUE(engine.StartThreads(2).ok());  // restart also allowed
  engine.FlushAll();
  uint64_t total = 0;
  while (auto row = (*sub)->NextRow()) total += (*row)[1].uint_value();
  EXPECT_EQ(total, 500u);
}

TEST(EngineThreadedTest, StopAndFlushIdempotentAnyOrder) {
  // StopThreads and FlushAll must be callable repeatedly and in any order
  // without crashing, double-flushing, or losing buffered work. A clean
  // shutdown path (signal handlers, destructors, error unwinds) cannot
  // know which of the two ran first.
  Engine engine;
  engine.StopThreads();  // no-op before anything started
  engine.AddInterface("eth0");
  ASSERT_TRUE(engine
                  .AddQuery("DEFINE { query_name idem; } "
                            "SELECT tb, count(*) FROM eth0.PKT "
                            "GROUP BY time AS tb")
                  .ok());
  auto sub = engine.Subscribe("idem", 8192);
  ASSERT_TRUE(sub.ok());
  ASSERT_TRUE(engine.StartThreads(2).ok());
  for (int i = 0; i < 300; ++i) {
    ASSERT_TRUE(engine
                    .InjectPacket("eth0",
                                  MakeTcpPacket((i + 1) * kNanosPerSecond,
                                                0x0a000001, 80, "x"))
                    .ok());
  }
  engine.StopThreads();
  engine.StopThreads();  // second stop is a no-op
  engine.FlushAll();     // flush after stop drains the remaining work
  engine.FlushAll();     // second flush must not re-emit groups
  engine.StopThreads();  // stop after flush is still safe
  uint64_t total = 0;
  int rows = 0;
  while (auto row = (*sub)->NextRow()) {
    total += (*row)[1].uint_value();
    ++rows;
  }
  EXPECT_EQ(total, 300u);
  EXPECT_EQ(rows, 300);  // one row per time bucket, none duplicated
  engine.FlushAll();
  engine.StopThreads();
  EXPECT_FALSE((*sub)->NextRow().has_value());
}

TEST(EngineTest, NonMonotoneTimestampClampedAndCounted) {
  // A source that emits a timestamp older than its last punctuation would
  // violate the ordering contract the punctuation already promised
  // downstream. The engine clamps the tuple to the punctuation bound and
  // counts the regression instead of propagating the violation.
  EngineOptions options;
  options.punctuation_interval = 4;
  options.batch_max_size = 1;
  Engine engine(options);
  engine.AddInterface("eth0");
  ASSERT_TRUE(engine
                  .AddQuery("DEFINE { query_name mono; } "
                            "SELECT time, destPort FROM eth0.PKT")
                  .ok());
  auto sub = engine.Subscribe("mono");
  ASSERT_TRUE(sub.ok());

  // Four in-order packets emit a punctuation with bound time=4.
  for (int i = 1; i <= 4; ++i) {
    ASSERT_TRUE(engine
                    .InjectPacket("eth0",
                                  MakeTcpPacket(i * kNanosPerSecond,
                                                0x0a000001, 80, "x"))
                    .ok());
  }
  // This packet claims second 2 — before the bound already published.
  ASSERT_TRUE(engine
                  .InjectPacket("eth0", MakeTcpPacket(2 * kNanosPerSecond,
                                                      0x0a000001, 81, "x"))
                  .ok());
  // And a healthy in-order packet afterwards: no further regression.
  ASSERT_TRUE(engine
                  .InjectPacket("eth0", MakeTcpPacket(6 * kNanosPerSecond,
                                                      0x0a000001, 82, "x"))
                  .ok());
  engine.FlushAll();

  uint64_t regressions = 0;
  for (const auto& sample : engine.telemetry().Snapshot()) {
    if (sample.entity == "eth0.PKT" && sample.metric == "time_regressions") {
      regressions = sample.value;
    }
  }
  EXPECT_EQ(regressions, 1u);

  // The regressed tuple surfaces clamped to the punctuation bound: time
  // never runs backwards in the output.
  uint64_t last_time = 0;
  bool saw_clamped = false;
  while (auto row = (*sub)->NextRow()) {
    uint64_t time = (*row)[0].uint_value();
    EXPECT_GE(time, last_time);
    last_time = time;
    if ((*row)[1].uint_value() == 81) {
      EXPECT_EQ(time, 4u);  // clamped from 2 to the bound
      saw_clamped = true;
    }
  }
  EXPECT_TRUE(saw_clamped);
}

TEST(EngineTest, QueryInfoCarriesNicProgram) {
  Engine engine;
  engine.AddInterface("eth0");
  auto info = engine.AddQuery(
      "DEFINE { query_name f; } "
      "SELECT time FROM eth0.PKT "
      "WHERE ipVersion = 4 AND protocol = 6 AND destPort = 80");
  ASSERT_TRUE(info.ok());
  EXPECT_TRUE(info->has_nic_program);
  EXPECT_GT(info->nic_program.size(), 0u);
  EXPECT_GT(info->snap_len, 0u);  // header-only query
}

}  // namespace
}  // namespace gigascope::core
