#include <gtest/gtest.h>

#include "gsql/parser.h"
#include "plan/planner.h"
#include "udf/registry.h"

namespace gigascope::plan {
namespace {

using gsql::DataType;
using gsql::OrderKind;

class PlannerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(
        catalog_.AddSchema(gsql::Catalog::BuiltinPacketSchema()).ok());
    catalog_.AddInterface("eth0");
    options_.resolver = udf::FunctionRegistry::Default();
  }

  Result<PlannedQuery> Plan(std::string_view query) {
    auto stmt = gsql::ParseStatement(query);
    if (!stmt.ok()) return stmt.status();
    if (auto* select = std::get_if<gsql::SelectStmt>(&stmt.value())) {
      auto resolved = gsql::AnalyzeSelect(*select, catalog_);
      if (!resolved.ok()) return resolved.status();
      return PlanSelect(*resolved, options_);
    }
    auto* merge = std::get_if<gsql::MergeStmt>(&stmt.value());
    auto resolved = gsql::AnalyzeMerge(*merge, catalog_);
    if (!resolved.ok()) return resolved.status();
    return PlanMerge(*resolved, options_);
  }

  gsql::Catalog catalog_;
  PlannerOptions options_;
};

TEST_F(PlannerTest, ScanPlanShape) {
  auto planned = Plan(
      "DEFINE { query_name tcpdest0; } "
      "SELECT destIP, destPort, time FROM eth0.PKT "
      "WHERE ipVersion = 4 AND protocol = 6");
  ASSERT_TRUE(planned.ok()) << planned.status().ToString();
  EXPECT_EQ(planned->name, "tcpdest0");
  const PlanPtr& root = planned->root;
  ASSERT_EQ(root->kind, PlanKind::kSelectProject);
  EXPECT_NE(root->predicate, nullptr);
  EXPECT_EQ(root->projections.size(), 3u);
  ASSERT_EQ(root->children[0]->kind, PlanKind::kSource);
  EXPECT_TRUE(root->children[0]->source_is_protocol);
  EXPECT_EQ(root->children[0]->interface_name, "eth0");
  // Output schema: named after the query, with the projected fields.
  EXPECT_EQ(planned->output_schema.name(), "tcpdest0");
  ASSERT_EQ(planned->output_schema.num_fields(), 3u);
  EXPECT_EQ(planned->output_schema.field(0).name, "destIP");
  EXPECT_EQ(planned->output_schema.field(2).name, "time");
  // `time` keeps its increasing property through projection.
  EXPECT_EQ(planned->output_schema.field(2).order.kind,
            OrderKind::kIncreasing);
}

TEST_F(PlannerTest, AggregationPlanShape) {
  auto planned = Plan(
      "DEFINE { query_name flows; } "
      "SELECT tb, destIP, count(*), sum(len) FROM PKT "
      "WHERE protocol = 6 GROUP BY time/60 AS tb, destIP");
  ASSERT_TRUE(planned.ok()) << planned.status().ToString();
  // Shape: SelectProject(final) -> Aggregate -> SelectProject(where) -> Source.
  const PlanPtr& final_project = planned->root;
  ASSERT_EQ(final_project->kind, PlanKind::kSelectProject);
  const PlanPtr& agg = final_project->children[0];
  ASSERT_EQ(agg->kind, PlanKind::kAggregate);
  EXPECT_EQ(agg->group_keys.size(), 2u);
  EXPECT_EQ(agg->aggregates.size(), 2u);
  EXPECT_EQ(agg->ordered_key, 0);  // time/60 is increasing
  EXPECT_FALSE(planned->unbounded_aggregation);
  const PlanPtr& where = agg->children[0];
  ASSERT_EQ(where->kind, PlanKind::kSelectProject);
  EXPECT_NE(where->predicate, nullptr);
  EXPECT_EQ(where->children[0]->kind, PlanKind::kSource);
}

TEST_F(PlannerTest, AvgDecomposesIntoSumAndCount) {
  auto planned = Plan(
      "SELECT tb, avg(len) FROM PKT GROUP BY time/60 AS tb");
  ASSERT_TRUE(planned.ok()) << planned.status().ToString();
  const PlanPtr& agg = planned->root->children[0];
  ASSERT_EQ(agg->kind, PlanKind::kAggregate);
  // Stored aggregates are SUM and COUNT, never AVG.
  ASSERT_EQ(agg->aggregates.size(), 2u);
  EXPECT_EQ(agg->aggregates[0].fn, expr::AggFn::kSum);
  EXPECT_EQ(agg->aggregates[1].fn, expr::AggFn::kCount);
  // The final projection divides them (a float).
  EXPECT_EQ(planned->root->projections[1]->type, DataType::kFloat);
}

TEST_F(PlannerTest, DuplicateAggregatesShareStorage) {
  auto planned = Plan(
      "SELECT tb, count(*), avg(len), sum(len) FROM PKT "
      "GROUP BY time/60 AS tb");
  ASSERT_TRUE(planned.ok()) << planned.status().ToString();
  const PlanPtr& agg = planned->root->children[0];
  // sum(len) and count(*) are each stored once despite appearing twice
  // (once directly, once inside avg).
  EXPECT_EQ(agg->aggregates.size(), 2u);
}

TEST_F(PlannerTest, UnboundedAggregationFlagged) {
  auto planned = Plan("SELECT destIP, count(*) FROM PKT GROUP BY destIP");
  ASSERT_TRUE(planned.ok()) << planned.status().ToString();
  EXPECT_TRUE(planned->unbounded_aggregation);
  const PlanPtr& agg = planned->root->children[0];
  EXPECT_EQ(agg->ordered_key, -1);
}

TEST_F(PlannerTest, HavingBecomesFinalPredicate) {
  auto planned = Plan(
      "SELECT tb, count(*) FROM PKT GROUP BY time/60 AS tb "
      "HAVING count(*) > 10");
  ASSERT_TRUE(planned.ok()) << planned.status().ToString();
  EXPECT_NE(planned->root->predicate, nullptr);
}

TEST_F(PlannerTest, JoinPlanShape) {
  // Register two derived streams for the join.
  std::vector<gsql::FieldDef> fields;
  fields.push_back({"ts", DataType::kUint, gsql::OrderSpec::Increasing()});
  fields.push_back({"v", DataType::kUint, gsql::OrderSpec::None()});
  catalog_.PutStreamSchema(
      gsql::StreamSchema("A", gsql::StreamKind::kStream, fields));
  catalog_.PutStreamSchema(
      gsql::StreamSchema("B", gsql::StreamKind::kStream, fields));

  auto planned = Plan(
      "DEFINE { query_name joined; } "
      "SELECT l.ts, l.v, r.v FROM A l, B r "
      "WHERE l.ts = r.ts AND l.v > r.v");
  ASSERT_TRUE(planned.ok()) << planned.status().ToString();
  const PlanPtr& project = planned->root;
  ASSERT_EQ(project->kind, PlanKind::kSelectProject);
  const PlanPtr& join = project->children[0];
  ASSERT_EQ(join->kind, PlanKind::kJoin);
  EXPECT_EQ(join->window_lo, 0);
  EXPECT_EQ(join->window_hi, 0);
  EXPECT_EQ(join->children.size(), 2u);
  // Join output: fields of both inputs, collision renamed.
  EXPECT_EQ(join->output_schema.num_fields(), 4u);
  EXPECT_TRUE(join->output_schema.FieldIndex("r_ts").has_value());
}

TEST_F(PlannerTest, JoinWithoutWindowRejected) {
  std::vector<gsql::FieldDef> fields;
  fields.push_back({"ts", DataType::kUint, gsql::OrderSpec::Increasing()});
  fields.push_back({"v", DataType::kUint, gsql::OrderSpec::None()});
  catalog_.PutStreamSchema(
      gsql::StreamSchema("A", gsql::StreamKind::kStream, fields));
  catalog_.PutStreamSchema(
      gsql::StreamSchema("B", gsql::StreamKind::kStream, fields));
  auto planned = Plan("SELECT l.v FROM A l, B r WHERE l.v = r.v");
  ASSERT_FALSE(planned.ok());
  EXPECT_EQ(planned.status().code(), Status::Code::kPlanError);
}

TEST_F(PlannerTest, JoinPlusGroupByAggregatesTheJoinOutput) {
  std::vector<gsql::FieldDef> fields;
  fields.push_back({"ts", DataType::kUint, gsql::OrderSpec::Increasing()});
  fields.push_back({"v", DataType::kUint, gsql::OrderSpec::None()});
  catalog_.PutStreamSchema(
      gsql::StreamSchema("A", gsql::StreamKind::kStream, fields));
  catalog_.PutStreamSchema(
      gsql::StreamSchema("B", gsql::StreamKind::kStream, fields));
  auto planned = Plan(
      "SELECT tb, count(*), sum(r.v) FROM A l, B r "
      "WHERE l.ts = r.ts GROUP BY l.ts/10 AS tb");
  ASSERT_TRUE(planned.ok()) << planned.status().ToString();
  // Shape: final SelectProject -> Aggregate -> Join -> Sources.
  const PlanPtr& final_project = planned->root;
  ASSERT_EQ(final_project->kind, PlanKind::kSelectProject);
  const PlanPtr& agg = final_project->children[0];
  ASSERT_EQ(agg->kind, PlanKind::kAggregate);
  ASSERT_EQ(agg->children[0]->kind, PlanKind::kJoin);
  // The join's window attribute drives group closing: l.ts/10 is ordered
  // in the join output, so the aggregation is bounded.
  EXPECT_EQ(agg->ordered_key, 0);
  EXPECT_FALSE(planned->unbounded_aggregation);
  // The sum argument was remapped onto the joined row: a two-input plan
  // has no input-1 refs above the join.
  for (const auto& spec : agg->aggregates) {
    if (spec.arg != nullptr) {
      EXPECT_FALSE(expr::ReferencesInput(spec.arg, 1));
    }
  }
}

TEST_F(PlannerTest, MergePlanShape) {
  std::vector<gsql::FieldDef> fields;
  fields.push_back({"time", DataType::kUint, gsql::OrderSpec::Strict()});
  fields.push_back({"v", DataType::kUint, gsql::OrderSpec::None()});
  catalog_.PutStreamSchema(
      gsql::StreamSchema("t0", gsql::StreamKind::kStream, fields));
  catalog_.PutStreamSchema(
      gsql::StreamSchema("t1", gsql::StreamKind::kStream, fields));

  auto planned = Plan(
      "DEFINE { query_name both; } "
      "MERGE t0.time : t1.time FROM t0, t1");
  ASSERT_TRUE(planned.ok()) << planned.status().ToString();
  ASSERT_EQ(planned->root->kind, PlanKind::kMerge);
  EXPECT_EQ(planned->root->merge_field, 0u);
  EXPECT_EQ(planned->root->children.size(), 2u);
  // Strictness dies in the interleave; monotonicity survives.
  EXPECT_EQ(planned->output_schema.field(0).order.kind,
            OrderKind::kIncreasing);
}

TEST_F(PlannerTest, PlanToStringMentionsOperators) {
  auto planned = Plan(
      "SELECT tb, count(*) FROM PKT GROUP BY time/60 AS tb");
  ASSERT_TRUE(planned.ok());
  std::string text = planned->root->ToString();
  EXPECT_NE(text.find("Aggregate"), std::string::npos);
  EXPECT_NE(text.find("Source"), std::string::npos);
}

}  // namespace
}  // namespace gigascope::plan
