// Property-style parameterized suites over randomized inputs: invariants
// that must hold for any seed.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "bpf/interpreter.h"
#include "core/engine.h"
#include "expr/vm.h"
#include "ops/aggregate.h"
#include "ops/lfta_agg.h"
#include "ops/merge.h"
#include "plan/ordering.h"
#include "rts/tuple.h"
#include "workload/traffic_gen.h"

namespace gigascope {
namespace {

using expr::Value;
using gsql::DataType;
using gsql::FieldDef;
using gsql::OrderKind;
using gsql::OrderSpec;
using gsql::StreamKind;
using gsql::StreamSchema;

// ---------------------------------------------------------------------------
// Tuple codec: Decode(Encode(row)) == row for random schemas and rows.
// ---------------------------------------------------------------------------

class CodecRoundTrip : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CodecRoundTrip, RandomSchemaAndRows) {
  Rng rng(GetParam());
  // Random schema of 1..10 fields.
  size_t num_fields = 1 + rng.NextBelow(10);
  std::vector<FieldDef> fields;
  for (size_t f = 0; f < num_fields; ++f) {
    DataType type = static_cast<DataType>(rng.NextBelow(6));
    fields.push_back(
        {"f" + std::to_string(f), type, OrderSpec::None()});
  }
  StreamSchema schema("random", StreamKind::kStream, fields);
  rts::TupleCodec codec(schema);

  for (int round = 0; round < 50; ++round) {
    rts::Row row;
    for (size_t f = 0; f < num_fields; ++f) {
      switch (fields[f].type) {
        case DataType::kBool:
          row.push_back(Value::Bool(rng.NextBool(0.5)));
          break;
        case DataType::kInt:
          row.push_back(Value::Int(static_cast<int64_t>(rng.Next())));
          break;
        case DataType::kUint:
          row.push_back(Value::Uint(rng.Next()));
          break;
        case DataType::kFloat:
          row.push_back(Value::Float(rng.NextDouble() * 1e9));
          break;
        case DataType::kIp:
          row.push_back(Value::Ip(static_cast<uint32_t>(rng.Next())));
          break;
        case DataType::kString: {
          std::string s;
          size_t len = rng.NextBelow(64);
          for (size_t i = 0; i < len; ++i) {
            s += static_cast<char>(rng.NextBelow(256));
          }
          row.push_back(Value::String(std::move(s)));
          break;
        }
      }
    }
    ByteBuffer buffer;
    codec.Encode(row, &buffer);
    auto decoded = codec.Decode(ByteSpan(buffer.data(), buffer.size()));
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    ASSERT_EQ(decoded->size(), row.size());
    for (size_t f = 0; f < row.size(); ++f) {
      EXPECT_EQ((*decoded)[f], row[f]);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CodecRoundTrip,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

// ---------------------------------------------------------------------------
// Merge: for ANY interleaving of sorted inputs, the output is sorted and
// preserves multiset cardinality.
// ---------------------------------------------------------------------------

class MergeProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MergeProperty, OutputSortedAndComplete) {
  Rng rng(GetParam());
  StreamSchema schema("s", StreamKind::kStream,
                      {FieldDef{"t", DataType::kUint,
                                OrderSpec::Increasing()}});
  rts::StreamRegistry registry;
  const size_t kInputs = 2 + rng.NextBelow(3);  // 2..4 inputs
  std::vector<rts::Subscription> subs;
  for (size_t i = 0; i < kInputs; ++i) {
    StreamSchema named("in" + std::to_string(i), StreamKind::kStream,
                       schema.fields());
    ASSERT_TRUE(registry.DeclareStream(named).ok());
    auto sub = registry.Subscribe(named.name(), 4096);
    ASSERT_TRUE(sub.ok());
    subs.push_back(*sub);
  }
  ops::MergeNode::Spec spec;
  spec.name = "merged";
  spec.schema = StreamSchema("merged", StreamKind::kStream, schema.fields());
  ASSERT_TRUE(registry.DeclareStream(spec.schema).ok());
  spec.merge_field = 0;
  ops::MergeNode node(std::move(spec), subs, &registry);
  auto out = registry.Subscribe("merged", 65536);
  ASSERT_TRUE(out.ok());

  // Generate per-input sorted sequences and feed them in random
  // interleaving with interleaved polls.
  std::vector<std::vector<uint64_t>> sequences(kInputs);
  std::vector<uint64_t> cursors(kInputs, 0);
  size_t total = 0;
  for (size_t i = 0; i < kInputs; ++i) {
    uint64_t t = 0;
    size_t n = 20 + rng.NextBelow(200);
    for (size_t j = 0; j < n; ++j) {
      t += rng.NextBelow(5);  // non-strict increase
      sequences[i].push_back(t);
    }
    total += n;
  }
  rts::TupleCodec codec(schema);
  std::vector<size_t> positions(kInputs, 0);
  size_t sent = 0;
  while (sent < total) {
    size_t i = rng.NextBelow(kInputs);
    if (positions[i] >= sequences[i].size()) continue;
    rts::StreamMessage message;
    codec.Encode({Value::Uint(sequences[i][positions[i]++])},
                 &message.payload);
    registry.Publish("in" + std::to_string(i), message);
    ++sent;
    if (rng.NextBool(0.1)) node.Poll(1000);
  }
  node.Poll(100000);
  node.Flush();

  std::vector<uint64_t> merged;
  rts::StreamMessage message;
  while ((*out)->TryPop(&message)) {
    if (message.kind != rts::StreamMessage::Kind::kTuple) continue;
    auto row = codec.Decode(
        ByteSpan(message.payload.data(), message.payload.size()));
    ASSERT_TRUE(row.ok());
    merged.push_back((*row)[0].uint_value());
  }
  ASSERT_EQ(merged.size(), total);
  EXPECT_TRUE(std::is_sorted(merged.begin(), merged.end()));
  // Multiset equality with the concatenated inputs.
  std::vector<uint64_t> expected;
  for (const auto& sequence : sequences) {
    expected.insert(expected.end(), sequence.begin(), sequence.end());
  }
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(merged, expected);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MergeProperty,
                         ::testing::Values(11, 22, 33, 44, 55, 66));

// ---------------------------------------------------------------------------
// LFTA direct-mapped pre-aggregation + superaggregation == exact
// aggregation, for ANY table size (collisions only change *when* partials
// are emitted, never the final sums).
// ---------------------------------------------------------------------------

class SplitAggEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(SplitAggEquivalence, TableSizeDoesNotChangeResults) {
  const int log2_slots = GetParam();
  core::EngineOptions options;
  options.lfta_hash_log2 = log2_slots;
  core::Engine engine(options);
  engine.AddInterface("eth0");
  auto info = engine.AddQuery(
      "DEFINE { query_name flows; } "
      "SELECT tb, destIP, count(*), sum(len), min(len), max(len) "
      "FROM eth0.PKT GROUP BY time/2 AS tb, destIP");
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  ASSERT_TRUE(info->split_aggregation);
  auto sub = engine.Subscribe("flows", 1 << 20);
  ASSERT_TRUE(sub.ok());

  // Deterministic synthetic traffic; compute the reference aggregation
  // directly from the packets.
  workload::TrafficConfig config;
  config.seed = 99;
  config.num_flows = 64;
  config.offered_bits_per_sec = 20e6;
  workload::TrafficGenerator gen(config);
  struct Cell {
    uint64_t count = 0;
    uint64_t sum = 0;
    uint64_t min = UINT64_MAX;
    uint64_t max = 0;
    bool operator==(const Cell&) const = default;
  };
  std::map<std::pair<uint64_t, uint32_t>, Cell> reference;
  for (int i = 0; i < 4000; ++i) {
    net::Packet packet = gen.Next();
    auto decoded = net::DecodePacket(packet.view());
    ASSERT_TRUE(decoded.ok());
    uint64_t tb =
        static_cast<uint64_t>(SimTimeToSeconds(packet.timestamp)) / 2;
    auto& cell = reference[{tb, decoded->ip->dst_addr}];
    cell.count += 1;
    cell.sum += packet.orig_len;
    cell.min = std::min<uint64_t>(cell.min, packet.orig_len);
    cell.max = std::max<uint64_t>(cell.max, packet.orig_len);
    ASSERT_TRUE(engine.InjectPacket("eth0", packet).ok());
  }
  engine.PumpUntilIdle();
  engine.FlushAll();

  std::map<std::pair<uint64_t, uint32_t>, Cell> measured;
  while (auto row = (*sub)->NextRow()) {
    auto& cell = measured[{(*row)[0].uint_value(), (*row)[1].ip_value()}];
    cell.count += (*row)[2].uint_value();
    cell.sum += (*row)[3].uint_value();
    cell.min = std::min(cell.min, (*row)[4].uint_value());
    cell.max = std::max(cell.max, (*row)[5].uint_value());
  }
  EXPECT_EQ(measured, reference);
}

INSTANTIATE_TEST_SUITE_P(TableSizes, SplitAggEquivalence,
                         ::testing::Values(0, 2, 4, 8, 12));

// ---------------------------------------------------------------------------
// Many queries over one interface: each subscriber sees exactly what its
// own query selects, regardless of the others (the stream manager's
// fan-out isolation).
// ---------------------------------------------------------------------------

class FanoutProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FanoutProperty, TenQueriesAgreeWithTheirOwnPredicates) {
  core::Engine engine;
  engine.AddInterface("eth0");
  struct Query {
    uint16_t port_floor;
    std::unique_ptr<core::TupleSubscription> sub;
    uint64_t expected = 0;
  };
  std::vector<Query> queries;
  for (int i = 0; i < 10; ++i) {
    uint16_t floor = static_cast<uint16_t>(6000 * i);
    char text[256];
    std::snprintf(text, sizeof(text),
                  "DEFINE { query_name q%d; } "
                  "SELECT time, destPort FROM eth0.PKT "
                  "WHERE destPort >= %u",
                  i, static_cast<unsigned>(floor));
    auto info = engine.AddQuery(text);
    ASSERT_TRUE(info.ok()) << info.status().ToString();
    auto sub = engine.Subscribe(info->name, 1 << 18);
    ASSERT_TRUE(sub.ok());
    queries.push_back({floor, std::move(sub).value(), 0});
  }

  workload::TrafficConfig config;
  config.seed = GetParam();
  config.num_flows = 300;
  config.offered_bits_per_sec = 20e6;
  workload::TrafficGenerator gen(config);
  for (int i = 0; i < 3000; ++i) {
    net::Packet packet = gen.Next();
    auto decoded = net::DecodePacket(packet.view());
    ASSERT_TRUE(decoded.ok());
    uint16_t port = decoded->is_tcp()   ? decoded->tcp->dst_port
                    : decoded->is_udp() ? decoded->udp->dst_port
                                        : 0;
    for (Query& query : queries) {
      if (port >= query.port_floor) ++query.expected;
    }
    ASSERT_TRUE(engine.InjectPacket("eth0", packet).ok());
    if (i % 512 == 511) engine.PumpUntilIdle();
  }
  engine.PumpUntilIdle();
  for (Query& query : queries) {
    uint64_t received = 0;
    while (query.sub->NextRow()) ++received;
    EXPECT_EQ(received, query.expected)
        << "query with floor " << query.port_floor;
    EXPECT_EQ(query.sub->dropped(), 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FanoutProperty, ::testing::Values(41, 43));

// ---------------------------------------------------------------------------
// NIC pushdown: the generated BPF program accepts a superset of what the
// LFTA predicate accepts, on arbitrary generated traffic.
// ---------------------------------------------------------------------------

class NicSupersetProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(NicSupersetProperty, BpfNeverDropsAMatchingPacket) {
  core::Engine engine;
  engine.AddInterface("eth0");
  auto info = engine.AddQuery(
      "DEFINE { query_name f; } "
      "SELECT time FROM eth0.PKT "
      "WHERE ipVersion = 4 AND protocol = 6 AND destPort = 80 AND len > 80");
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  ASSERT_TRUE(info->has_nic_program);
  auto sub = engine.Subscribe("f", 1 << 20);
  ASSERT_TRUE(sub.ok());

  workload::TrafficConfig config;
  config.seed = GetParam();
  config.num_flows = 200;
  config.port80_fraction = 0.3;
  config.offered_bits_per_sec = 20e6;
  workload::TrafficGenerator gen(config);
  for (int i = 0; i < 2000; ++i) {
    net::Packet packet = gen.Next();
    bool lfta_would_match = false;
    auto decoded = net::DecodePacket(packet.view());
    if (decoded.ok() && decoded->is_tcp() &&
        decoded->tcp->dst_port == 80 && packet.orig_len > 80) {
      lfta_would_match = true;
    }
    bool bpf_accepts = bpf::Matches(info->nic_program, packet.view());
    if (lfta_would_match) {
      EXPECT_TRUE(bpf_accepts) << "BPF dropped a matching packet " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, NicSupersetProperty,
                         ::testing::Values(3, 7, 31, 127));

// ---------------------------------------------------------------------------
// Ordering lattice laws.
// ---------------------------------------------------------------------------

std::vector<OrderSpec> AllSpecs() {
  return {
      OrderSpec::None(),
      OrderSpec::Strict(),
      OrderSpec::Increasing(),
      OrderSpec::Banded(1),
      OrderSpec::Banded(30),
      OrderSpec{OrderKind::kNonRepeating, 0, {}},
      OrderSpec{OrderKind::kDecreasing, 0, {}},
      OrderSpec{OrderKind::kStrictlyDecreasing, 0, {}},
  };
}

TEST(OrderingLattice, ImpliesIsReflexive) {
  for (const OrderSpec& spec : AllSpecs()) {
    EXPECT_TRUE(plan::OrderImplies(spec, spec)) << spec.ToString();
  }
}

TEST(OrderingLattice, ImpliesIsTransitive) {
  auto specs = AllSpecs();
  for (const auto& a : specs) {
    for (const auto& b : specs) {
      for (const auto& c : specs) {
        if (plan::OrderImplies(a, b) && plan::OrderImplies(b, c)) {
          EXPECT_TRUE(plan::OrderImplies(a, c))
              << a.ToString() << " => " << b.ToString() << " => "
              << c.ToString();
        }
      }
    }
  }
}

TEST(OrderingLattice, WeakestCommonIsImpliedByBoth) {
  auto specs = AllSpecs();
  for (const auto& a : specs) {
    for (const auto& b : specs) {
      OrderSpec common = plan::WeakestCommonOrder(a, b);
      if (common.kind == OrderKind::kNone) continue;
      // Strictness may be lost, so check via the weakened forms: every
      // stream ordered by `a` is also ordered by `common`.
      EXPECT_TRUE(plan::OrderImplies(a, common))
          << a.ToString() << " vs " << b.ToString() << " -> "
          << common.ToString();
      EXPECT_TRUE(plan::OrderImplies(b, common));
    }
  }
}

TEST(OrderingLattice, WeakestCommonIsCommutative) {
  auto specs = AllSpecs();
  for (const auto& a : specs) {
    for (const auto& b : specs) {
      EXPECT_EQ(plan::WeakestCommonOrder(a, b),
                plan::WeakestCommonOrder(b, a));
    }
  }
}

}  // namespace
}  // namespace gigascope
