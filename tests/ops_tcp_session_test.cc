#include <gtest/gtest.h>

#include <map>

#include "core/engine.h"
#include "net/headers.h"
#include "ops/tcp_session.h"

namespace gigascope::ops {
namespace {

using core::Engine;
using expr::Value;

class TcpSessionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    engine_.AddInterface("eth0");
    ASSERT_TRUE(engine_
                    .AddQuery("DEFINE { query_name probe; } "
                              "SELECT time FROM eth0.PKT")
                    .ok());
    auto input = engine_.registry().Subscribe("eth0.PKT", 65536);
    ASSERT_TRUE(input.ok());
    TcpSessionNode::Spec spec;
    spec.name = "sessions";
    auto schema = engine_.registry().GetSchema("eth0.PKT");
    ASSERT_TRUE(schema.ok());
    spec.input_schema = *schema;
    spec.timeout_seconds = 60;
    auto node =
        TcpSessionNode::Create(std::move(spec), *input, &engine_.registry());
    ASSERT_TRUE(node.ok()) << node.status().ToString();
    node_ = node->get();
    ASSERT_TRUE(engine_.AddNode(std::move(node).value()).ok());
    auto sub = engine_.Subscribe("sessions");
    ASSERT_TRUE(sub.ok());
    sub_ = std::move(sub).value();
  }

  /// Injects one TCP packet; src/dst are logical endpoints A=initiator.
  void Packet(uint64_t second, bool from_initiator, uint8_t flags,
              const std::string& payload = "",
              uint16_t initiator_port = 40000) {
    net::TcpPacketSpec spec;
    if (from_initiator) {
      spec.src_addr = 0x0a000001;
      spec.dst_addr = 0x0a000002;
      spec.src_port = initiator_port;
      spec.dst_port = 80;
    } else {
      spec.src_addr = 0x0a000002;
      spec.dst_addr = 0x0a000001;
      spec.src_port = 80;
      spec.dst_port = initiator_port;
    }
    spec.flags = flags;
    spec.payload = payload;
    net::Packet packet;
    packet.bytes = net::BuildTcpPacket(spec);
    packet.orig_len = static_cast<uint32_t>(packet.bytes.size());
    packet.timestamp = static_cast<SimTime>(second) * kNanosPerSecond;
    ASSERT_TRUE(engine_.InjectPacket("eth0", packet).ok());
  }

  std::vector<rts::Row> Sessions() {
    engine_.PumpUntilIdle();
    std::vector<rts::Row> rows;
    while (auto row = sub_->NextRow()) rows.push_back(std::move(*row));
    return rows;
  }

  Engine engine_;
  TcpSessionNode* node_ = nullptr;
  std::unique_ptr<core::TupleSubscription> sub_;
};

TEST_F(TcpSessionTest, FullLifecycleEmitsClosedSession) {
  Packet(1, true, net::kTcpFlagSyn);                       // SYN
  Packet(1, false, net::kTcpFlagSyn | net::kTcpFlagAck);   // SYN|ACK
  Packet(2, true, net::kTcpFlagAck, "GET / HTTP/1.0\r\n");
  Packet(3, false, net::kTcpFlagAck | net::kTcpFlagPsh, "200 OK");
  Packet(4, true, net::kTcpFlagFin | net::kTcpFlagAck);
  Packet(5, false, net::kTcpFlagFin | net::kTcpFlagAck);
  auto sessions = Sessions();
  ASSERT_EQ(sessions.size(), 1u);
  const rts::Row& session = sessions[0];
  EXPECT_EQ(session[0].uint_value(), 5u);          // end time
  EXPECT_EQ(session[1].ip_value(), 0x0a000001u);   // initiator
  EXPECT_EQ(session[2].ip_value(), 0x0a000002u);
  EXPECT_EQ(session[3].uint_value(), 40000u);
  EXPECT_EQ(session[4].uint_value(), 80u);
  EXPECT_EQ(session[5].uint_value(), 6u);          // packets, both ways
  EXPECT_GT(session[6].uint_value(), 0u);          // bytes
  EXPECT_EQ(session[7].uint_value(), 4u);          // duration 1..5
  EXPECT_EQ(session[8].string_value(), "closed");
  EXPECT_EQ(node_->open_sessions(), 0u);
}

TEST_F(TcpSessionTest, ResetEndsSessionImmediately) {
  Packet(1, true, net::kTcpFlagSyn);
  Packet(2, false, net::kTcpFlagRst);
  auto sessions = Sessions();
  ASSERT_EQ(sessions.size(), 1u);
  EXPECT_EQ(sessions[0][8].string_value(), "reset");
  EXPECT_EQ(node_->sessions_reset(), 1u);
}

TEST_F(TcpSessionTest, OneFinIsNotEnough) {
  Packet(1, true, net::kTcpFlagSyn);
  Packet(2, false, net::kTcpFlagSyn | net::kTcpFlagAck);
  Packet(3, true, net::kTcpFlagFin | net::kTcpFlagAck);
  auto sessions = Sessions();
  EXPECT_TRUE(sessions.empty());
  EXPECT_EQ(node_->open_sessions(), 1u);
}

TEST_F(TcpSessionTest, MidstreamTrafficIgnored) {
  // No SYN observed: data packets must not create a session.
  Packet(1, true, net::kTcpFlagAck, "mid-stream data");
  Packet(2, false, net::kTcpFlagAck, "reply");
  auto sessions = Sessions();
  EXPECT_TRUE(sessions.empty());
  EXPECT_EQ(node_->open_sessions(), 0u);
}

TEST_F(TcpSessionTest, IdleSessionTimesOut) {
  Packet(1, true, net::kTcpFlagSyn);
  Packet(2, false, net::kTcpFlagSyn | net::kTcpFlagAck);
  // Unrelated much-later SYN triggers the expiry sweep (timeout 60s).
  Packet(100, true, net::kTcpFlagSyn, "", 41000);
  auto sessions = Sessions();
  ASSERT_EQ(sessions.size(), 1u);
  EXPECT_EQ(sessions[0][8].string_value(), "timeout");
  EXPECT_EQ(node_->sessions_timed_out(), 1u);
  EXPECT_EQ(node_->open_sessions(), 1u);  // the new SYN
}

TEST_F(TcpSessionTest, ConcurrentSessionsKeptApart) {
  for (uint16_t port = 50000; port < 50004; ++port) {
    Packet(1, true, net::kTcpFlagSyn, "", port);
  }
  for (uint16_t port = 50000; port < 50004; ++port) {
    Packet(2, true, net::kTcpFlagFin, "", port);
    Packet(3, false, net::kTcpFlagFin, "", port);
  }
  auto sessions = Sessions();
  EXPECT_EQ(sessions.size(), 4u);
  EXPECT_EQ(node_->sessions_closed(), 4u);
}

TEST_F(TcpSessionTest, EndTimesMonotone) {
  // Interleave closes and timeouts; emitted times must never regress
  // (the output field is declared INCREASING).
  Packet(1, true, net::kTcpFlagSyn, "", 51000);
  Packet(2, true, net::kTcpFlagSyn, "", 52000);
  Packet(3, true, net::kTcpFlagRst, "", 52000);   // close the newer first
  Packet(100, true, net::kTcpFlagSyn, "", 53000); // times out the older
  auto sessions = Sessions();
  ASSERT_GE(sessions.size(), 2u);
  uint64_t last = 0;
  for (const rts::Row& session : sessions) {
    EXPECT_GE(session[0].uint_value(), last);
    last = session[0].uint_value();
  }
}

TEST_F(TcpSessionTest, GsqlComposesOverSessions) {
  // §5's motivation: once sessions are a stream, GSQL aggregates them.
  auto info = engine_.AddQuery(
      "DEFINE { query_name longcount; } "
      "SELECT time, count(*) FROM sessions "
      "WHERE duration > 2 GROUP BY time");
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  auto sub = engine_.Subscribe("longcount");
  ASSERT_TRUE(sub.ok());

  Packet(1, true, net::kTcpFlagSyn);
  Packet(10, true, net::kTcpFlagFin);
  Packet(10, false, net::kTcpFlagFin);   // duration 9: qualifies
  Packet(11, true, net::kTcpFlagSyn, "", 42000);
  Packet(12, true, net::kTcpFlagRst, "", 42000);  // duration 1: filtered
  engine_.PumpUntilIdle();
  engine_.FlushAll();

  int qualifying = 0;
  while (auto row = (*sub)->NextRow()) {
    qualifying += static_cast<int>((*row)[1].uint_value());
  }
  EXPECT_EQ(qualifying, 1);
}

TEST(TcpSessionCreateTest, RejectsSchemaWithoutTcpFields) {
  rts::StreamRegistry registry;
  std::vector<gsql::FieldDef> fields;
  fields.push_back({"time", gsql::DataType::kUint,
                    gsql::OrderSpec::Increasing()});
  gsql::StreamSchema schema("thin", gsql::StreamKind::kStream, fields);
  ASSERT_TRUE(registry.DeclareStream(schema).ok());
  auto input = registry.Subscribe("thin", 16);
  ASSERT_TRUE(input.ok());
  TcpSessionNode::Spec spec;
  spec.name = "s";
  spec.input_schema = schema;
  EXPECT_FALSE(
      TcpSessionNode::Create(std::move(spec), *input, &registry).ok());
}

}  // namespace
}  // namespace gigascope::ops
