// Tests for the profiling layer: log-bucketed histograms (exact
// percentiles on bucket-boundary values), deterministic trace sampling,
// the Chrome trace-event JSON serialization (required keys, track
// ordering), end-to-end trace propagation through a split query, and a
// TSan-checked histogram-snapshot-vs-workers race.

#include <gtest/gtest.h>

#include <atomic>
#include <cctype>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/engine.h"
#include "net/headers.h"
#include "telemetry/histogram.h"
#include "telemetry/metric_names.h"
#include "telemetry/registry.h"
#include "telemetry/tracer.h"

namespace gigascope::telemetry {
namespace {

using core::Engine;
using core::EngineOptions;

net::Packet MakeTcpPacket(SimTime timestamp, uint32_t dst_addr) {
  net::TcpPacketSpec spec;
  spec.src_addr = 0xac100001;
  spec.dst_addr = dst_addr;
  spec.src_port = 40000;
  spec.dst_port = 80;
  spec.flags = net::kTcpFlagAck;
  spec.payload = "x";
  net::Packet packet;
  packet.bytes = net::BuildTcpPacket(spec);
  packet.orig_len = static_cast<uint32_t>(packet.bytes.size());
  packet.timestamp = timestamp;
  return packet;
}

// ---------------------------------------------------------------- histogram

TEST(HistogramTest, BucketIndexing) {
  EXPECT_EQ(Histogram::BucketIndex(0), 0);
  EXPECT_EQ(Histogram::BucketIndex(1), 1);
  EXPECT_EQ(Histogram::BucketIndex(2), 2);
  EXPECT_EQ(Histogram::BucketIndex(3), 2);
  EXPECT_EQ(Histogram::BucketIndex(4), 3);
  EXPECT_EQ(Histogram::BucketIndex(1023), 10);
  EXPECT_EQ(Histogram::BucketIndex(1024), 11);
  EXPECT_EQ(Histogram::BucketIndex(~uint64_t{0}), 63);
  EXPECT_EQ(Histogram::BucketUpperBound(0), 0u);
  EXPECT_EQ(Histogram::BucketUpperBound(1), 1u);
  EXPECT_EQ(Histogram::BucketUpperBound(2), 3u);
  EXPECT_EQ(Histogram::BucketUpperBound(10), 1023u);
}

// Values of the form 2^k - 1 sit exactly on bucket upper bounds, so the
// percentile report is exact and the test can assert equality.
TEST(HistogramTest, ExactPercentilesOnBucketBounds) {
  Histogram histogram;
  // 100 values: 50x 15, 40x 255, 10x 4095.
  for (int i = 0; i < 50; ++i) histogram.Record(15);
  for (int i = 0; i < 40; ++i) histogram.Record(255);
  for (int i = 0; i < 10; ++i) histogram.Record(4095);

  HistogramSnapshot snapshot = histogram.Snapshot();
  EXPECT_EQ(snapshot.TotalInBuckets(), 100u);
  EXPECT_EQ(snapshot.count, 100u);
  EXPECT_EQ(snapshot.max, 4095u);
  EXPECT_EQ(snapshot.sum, 50u * 15 + 40u * 255 + 10u * 4095);
  EXPECT_EQ(snapshot.Percentile(0.50), 15u);
  EXPECT_EQ(snapshot.Percentile(0.90), 255u);
  EXPECT_EQ(snapshot.Percentile(0.99), 4095u);
  EXPECT_EQ(snapshot.Percentile(1.0), 4095u);
  EXPECT_DOUBLE_EQ(snapshot.Mean(), (50.0 * 15 + 40 * 255 + 10 * 4095) / 100);
}

TEST(HistogramTest, EmptyAndSingle) {
  Histogram histogram;
  HistogramSnapshot empty = histogram.Snapshot();
  EXPECT_EQ(empty.Percentile(0.5), 0u);
  EXPECT_EQ(empty.Mean(), 0.0);
  histogram.Record(0);
  HistogramSnapshot one = histogram.Snapshot();
  EXPECT_EQ(one.TotalInBuckets(), 1u);
  EXPECT_EQ(one.Percentile(0.5), 0u);
  EXPECT_EQ(one.max, 0u);
}

// Registry integration: one histogram fans out to the five derived gauges.
TEST(HistogramTest, RegistryGauges) {
  Registry registry;
  Histogram histogram;
  for (int i = 0; i < 100; ++i) histogram.Record(i < 90 ? 63 : 1023);
  registry.RegisterHistogram("node", "lat_ns", &histogram);

  std::map<std::string, uint64_t> values;
  for (const MetricSample& sample : registry.Snapshot()) {
    values[sample.metric] = sample.value;
  }
  EXPECT_EQ(values.at("lat_ns_p50"), 63u);
  EXPECT_EQ(values.at("lat_ns_p90"), 63u);
  EXPECT_EQ(values.at("lat_ns_p99"), 1023u);
  EXPECT_EQ(values.at("lat_ns_max"), 1023u);
  EXPECT_EQ(values.at("lat_ns_count"), 100u);
}

// ------------------------------------------------------------------ tracer

// The sampling decision is a seeded RNG: the same seed must tag the same
// injections, and different seeds should disagree somewhere.
TEST(TracerTest, DeterministicSampling) {
  std::vector<int> tagged_a;
  std::vector<int> tagged_b;
  Tracer a(8, /*seed=*/42);
  Tracer b(8, /*seed=*/42);
  Tracer c(8, /*seed=*/7);
  std::vector<int> tagged_c;
  for (int i = 0; i < 1000; ++i) {
    if (a.SampleInject() != 0) tagged_a.push_back(i);
    if (b.SampleInject() != 0) tagged_b.push_back(i);
    if (c.SampleInject() != 0) tagged_c.push_back(i);
  }
  EXPECT_EQ(tagged_a, tagged_b);
  EXPECT_NE(tagged_a, tagged_c);
  // 1-in-8 over 1000 trials: loose bounds that cannot flake under a
  // deterministic seed (this is a regression pin, not a statistics test).
  EXPECT_GT(tagged_a.size(), 60u);
  EXPECT_LT(tagged_a.size(), 250u);
  EXPECT_EQ(a.sampled(), tagged_a.size());
}

TEST(TracerTest, SamplePeriodOneTagsEverything) {
  Tracer tracer(1);
  for (uint64_t i = 1; i <= 50; ++i) {
    EXPECT_EQ(tracer.SampleInject(), i);  // ids are dense from 1
  }
  EXPECT_EQ(tracer.sampled(), 50u);
}

TEST(TracerTest, EventsSortedPerTrack) {
  Tracer tracer(1);
  tracer.RecordInstant("late", 2, 1, 300);
  tracer.RecordInstant("early", 2, 1, 100);
  tracer.RecordSpan("span", 1, 1, 50, 90);
  auto events = tracer.events();
  ASSERT_EQ(events.size(), 3u);
  // Sorted by (tid, ts).
  EXPECT_EQ(events[0].name, "span");
  EXPECT_EQ(events[1].name, "early");
  EXPECT_EQ(events[2].name, "late");
  EXPECT_EQ(events[0].dur_ns, 40);
}

TEST(TracerTest, DropsEventsPastCap) {
  Tracer tracer(1, 42, /*max_events=*/4);
  for (int i = 0; i < 10; ++i) {
    tracer.RecordInstant("e", 0, 1, i);
  }
  EXPECT_EQ(tracer.events().size(), 4u);
  EXPECT_EQ(tracer.dropped_events(), 6u);
}

// Minimal JSON scanner: the trace-event format is one event object per
// line, so required keys can be checked per line without a JSON library.
std::vector<std::string> EventLines(const std::string& json) {
  std::vector<std::string> lines;
  std::istringstream in(json);
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind("{\"ph\":", 0) == 0) lines.push_back(line);
  }
  return lines;
}

TEST(TracerTest, WriteJsonHasRequiredKeys) {
  Tracer tracer(1);
  tracer.SetTrackName(0, "inject");
  tracer.SetTrackName(1, "node");
  tracer.RecordInstant("inject", 0, 1, 1500);
  tracer.RecordSpan("node", 1, 1, 2000, 125'000);
  std::ostringstream out;
  tracer.WriteJson(out);
  const std::string json = out.str();

  EXPECT_EQ(json.rfind("{\"traceEvents\":[", 0), 0u);
  EXPECT_EQ(json.find("]}"), json.size() - 3);  // trailing newline

  auto lines = EventLines(json);
  // 2 thread_name metadata + 2 recorded events.
  ASSERT_EQ(lines.size(), 4u);
  for (const std::string& line : lines) {
    for (const char* key : {"\"ph\":", "\"ts\":", "\"pid\":", "\"tid\":",
                            "\"name\":"}) {
      EXPECT_NE(line.find(key), std::string::npos)
          << "missing " << key << " in " << line;
    }
  }
  // ts converts ns -> us with fractional precision preserved.
  EXPECT_NE(json.find("\"ts\":1.500"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":123.000"), std::string::npos);
  EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(json.find("\"s\":\"t\""), std::string::npos);  // instant scope
}

// ------------------------------------------------- end-to-end trace + stats

// A split aggregate with tracing on: every packet is tagged, spans appear
// for LFTA and HFTA nodes, the terminal node emits `:emit` instants and an
// e2e latency histogram, and the JSON is monotone per track.
TEST(TraceEngineTest, SplitQueryEndToEnd) {
  EngineOptions options;
  options.trace_sample = 1;
  Engine engine(options);
  engine.AddInterface("eth0");
  ASSERT_TRUE(engine
                  .AddQuery("DEFINE { query_name persec; } "
                            "SELECT tb, destIP, count(*) FROM eth0.PKT "
                            "WHERE protocol = 6 GROUP BY time AS tb, destIP")
                  .ok());
  auto sub = engine.Subscribe("persec");
  ASSERT_TRUE(sub.ok());

  for (int second = 1; second <= 5; ++second) {
    for (int i = 0; i < 20; ++i) {
      ASSERT_TRUE(engine
                      .InjectPacket("eth0",
                                    MakeTcpPacket(second * kNanosPerSecond,
                                                  0x0a000000 + (i % 4)))
                      .ok());
    }
  }
  engine.PumpUntilIdle();
  engine.FlushAll();

  ASSERT_NE(engine.tracer(), nullptr);
  EXPECT_EQ(engine.tracer()->sampled(), 100u);

  auto events = engine.tracer()->events();
  std::map<std::string, size_t> by_name;
  std::map<uint32_t, int64_t> last_ts;
  for (const TraceEvent& event : events) {
    ++by_name[event.name];
    EXPECT_GE(event.ts_ns, last_ts[event.tid]);  // monotone per track
    last_ts[event.tid] = event.ts_ns;
    EXPECT_GE(event.trace_id, 1u);
  }
  EXPECT_EQ(by_name.at("inject"), 100u);
  EXPECT_GT(by_name.at("persec_lfta"), 0u);   // LFTA pre-aggregate spans
  EXPECT_GT(by_name.at("persec"), 0u);        // terminal HFTA spans
  EXPECT_GT(by_name.at("persec:emit"), 0u);   // terminal emit instants

  // The e2e latency histogram lives on the terminal node only.
  auto samples = engine.telemetry().Snapshot();
  std::optional<uint64_t> e2e_count;
  std::optional<uint64_t> e2e_p50;
  bool lfta_has_e2e = false;
  for (const MetricSample& sample : samples) {
    if (sample.metric == std::string(metric::kE2eLatencyNs) + "_count") {
      if (sample.entity == "persec") e2e_count = sample.value;
      if (sample.entity == "persec_lfta") lfta_has_e2e = true;
    }
    if (sample.entity == "persec" &&
        sample.metric == std::string(metric::kE2eLatencyNs) + "_p50") {
      e2e_p50 = sample.value;
    }
  }
  ASSERT_TRUE(e2e_count.has_value());
  EXPECT_GT(*e2e_count, 0u);
  ASSERT_TRUE(e2e_p50.has_value());
  EXPECT_GT(*e2e_p50, 0u);
  EXPECT_FALSE(lfta_has_e2e);
}

// Tracing off (the default): no tracer, no trace fields on outputs, and no
// trace metrics registered.
TEST(TraceEngineTest, DisabledByDefault) {
  Engine engine;
  engine.AddInterface("eth0");
  ASSERT_TRUE(engine
                  .AddQuery("DEFINE { query_name q; } "
                            "SELECT time, destIP FROM eth0.PKT "
                            "WHERE protocol = 6")
                  .ok());
  ASSERT_TRUE(
      engine.InjectPacket("eth0", MakeTcpPacket(kNanosPerSecond, 1)).ok());
  engine.PumpUntilIdle();
  EXPECT_EQ(engine.tracer(), nullptr);
  for (const MetricSample& sample : engine.telemetry().Snapshot()) {
    EXPECT_NE(sample.metric, metric::kTraceSampled);
  }
}

// Same injection sequence, same seed => identical traced packet set (the
// property that makes a trace reproducible run-over-run).
TEST(TraceEngineTest, ReproducibleAcrossRuns) {
  auto run = [] {
    EngineOptions options;
    options.trace_sample = 4;
    Engine engine(options);
    engine.AddInterface("eth0");
    EXPECT_TRUE(engine
                    .AddQuery("DEFINE { query_name q; } "
                              "SELECT time, destIP FROM eth0.PKT "
                              "WHERE protocol = 6")
                    .ok());
    for (int i = 0; i < 200; ++i) {
      EXPECT_TRUE(
          engine.InjectPacket("eth0", MakeTcpPacket(kNanosPerSecond, i)).ok());
    }
    engine.PumpUntilIdle();
    engine.FlushAll();
    // The instants' trace ids identify which injections were tagged.
    std::vector<uint64_t> ids;
    for (const TraceEvent& event : engine.tracer()->events()) {
      if (event.name == "inject") ids.push_back(event.trace_id);
    }
    return std::make_pair(engine.tracer()->sampled(), ids);
  };
  auto [count_a, ids_a] = run();
  auto [count_b, ids_b] = run();
  EXPECT_EQ(count_a, count_b);
  EXPECT_EQ(ids_a, ids_b);
  EXPECT_GT(count_a, 20u);
  EXPECT_LT(count_a, 90u);
}

// Trace context does not survive the process boundary: worker processes
// run without a tracer (the parent's event log is not in shared memory),
// so a tagged message crossing an shm ring into a worker must be counted
// as truncated — the observability plane reports the blind spot instead
// of silently losing spans. The counter itself lives in the shm metrics
// arena, so the parent's snapshot sees it.
TEST(TraceEngineTest, ProcessModeCountsTruncatedTraces) {
  EngineOptions options;
  options.trace_sample = 1;  // tag everything: partials must carry ids
  options.punctuation_interval = 32;
  options.process.enabled = true;
  Engine engine(options);
  engine.AddInterface("eth0");
  ASSERT_TRUE(engine
                  .AddQuery("DEFINE { query_name persec; } "
                            "SELECT tb, destIP, count(*) FROM eth0.PKT "
                            "WHERE protocol = 6 GROUP BY time AS tb, destIP")
                  .ok());
  auto sub = engine.Subscribe("persec", 1 << 14);
  ASSERT_TRUE(sub.ok());
  ASSERT_TRUE(engine.StartProcesses(1).ok());

  for (int second = 1; second <= 20; ++second) {
    for (int i = 0; i < 20; ++i) {
      ASSERT_TRUE(engine
                      .InjectPacket("eth0",
                                    MakeTcpPacket(second * kNanosPerSecond,
                                                  0x0a000000 + (i % 4)))
                      .ok());
    }
    engine.Pump();
  }
  engine.FlushAll();

  uint64_t truncated = 0;
  std::string truncating_entities;
  bool hfta_counts_truncation = false;
  for (const MetricSample& sample : engine.telemetry().Snapshot()) {
    if (sample.metric == metric::kTraceTruncated && sample.value > 0) {
      truncated += sample.value;
      truncating_entities += sample.entity + " ";
      // Only the worker-side (HFTA) nodes lose their tracer; all their
      // runtime names derive from the query name.
      if (sample.entity.rfind("persec", 0) == 0 &&
          sample.entity != "persec_lfta") {
        hfta_counts_truncation = true;
      }
    }
  }
  EXPECT_GT(truncated, 0u) << "no truncation recorded: either trace "
                              "context now propagates (update this test) "
                              "or the blind spot went unreported";
  EXPECT_TRUE(hfta_counts_truncation)
      << "truncation counted outside the worker: " << truncating_entities;
  // The parent-side nodes kept their tracer; spans still exist for the
  // LFTA half of the split.
  ASSERT_NE(engine.tracer(), nullptr);
  EXPECT_GT(engine.tracer()->sampled(), 0u);
  int rows = 0;
  while ((*sub)->NextRow()) ++rows;
  EXPECT_GT(rows, 0);
}

// ------------------------------------------------------------- concurrency

// TSan coverage: histogram gauges (p50/p99 of poll/tuple/ring-occupancy
// histograms) snapshotted from a control thread while the inject thread
// and a worker pool write them. Any unsynchronized access is a TSan report
// when this runs in the -DGS_SANITIZE=thread build (ctest -L concurrency).
TEST(TraceEngineTest, HistogramSnapshotsWhileWorkersPump) {
  EngineOptions options;
  options.trace_sample = 16;
  Engine engine(options);
  engine.AddInterface("eth0");
  ASSERT_TRUE(engine
                  .AddQuery("DEFINE { query_name agg; } "
                            "SELECT tb, destIP, count(*) FROM eth0.PKT "
                            "GROUP BY time AS tb, destIP")
                  .ok());
  auto sub = engine.Subscribe("agg", 1 << 16);
  ASSERT_TRUE(sub.ok());
  ASSERT_TRUE(engine.StartThreads(2).ok());

  std::atomic<bool> done{false};
  std::thread injector([&] {
    for (int i = 0; i < 10000; ++i) {
      SimTime timestamp =
          kNanosPerSecond + (static_cast<SimTime>(i) * kNanosPerSecond) / 500;
      engine
          .InjectPacket("eth0",
                        MakeTcpPacket(timestamp, 0x0a000000 + (i % 16)))
          .ok();
    }
    done.store(true, std::memory_order_release);
  });

  while (!done.load(std::memory_order_acquire)) {
    auto samples = engine.telemetry().Snapshot();
    EXPECT_FALSE(samples.empty());
    // The tracer's event log is also safe to read concurrently.
    engine.tracer()->events();
  }
  injector.join();
  engine.FlushAll();

  auto samples = engine.telemetry().Snapshot();
  std::optional<uint64_t> poll_count;
  for (const MetricSample& sample : samples) {
    if (sample.entity == "agg" &&
        sample.metric == std::string(metric::kPollNs) + "_count") {
      poll_count = sample.value;
    }
  }
  ASSERT_TRUE(poll_count.has_value());
  EXPECT_GT(*poll_count, 0u);
}

}  // namespace
}  // namespace gigascope::telemetry
