// Tests for the metrics export endpoint: Prometheus text-exposition
// conformance of FormatPrometheus (family grouping, TYPE lines, label
// syntax, name sanitization), the dependency-free HTTP listener's request
// handling (/metrics, /analyze, 404, 405), and a TSan-checked scrape
// while the worker pool pumps — the exact deployment shape of
// `gsrun --metrics-port=N`.

#include <arpa/inet.h>
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cctype>
#include <cstring>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/engine.h"
#include "net/headers.h"
#include "telemetry/counter.h"
#include "telemetry/histogram.h"
#include "telemetry/http_export.h"
#include "telemetry/registry.h"

namespace gigascope::telemetry {
namespace {

using core::Engine;
using core::EngineOptions;

// Minimal blocking HTTP/1.0-style client: one request, read to EOF.
std::string HttpRequest(uint16_t port, const std::string& request) {
  int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    close(fd);
    return "";
  }
  size_t sent = 0;
  while (sent < request.size()) {
    ssize_t n = send(fd, request.data() + sent, request.size() - sent, 0);
    if (n <= 0) break;
    sent += static_cast<size_t>(n);
  }
  std::string response;
  char buf[4096];
  ssize_t n = 0;
  while ((n = recv(fd, buf, sizeof(buf), 0)) > 0) {
    response.append(buf, static_cast<size_t>(n));
  }
  close(fd);
  return response;
}

std::string HttpGet(uint16_t port, const std::string& path) {
  return HttpRequest(port, "GET " + path + " HTTP/1.1\r\nHost: x\r\n"
                           "Connection: close\r\n\r\n");
}

bool ValidMetricName(const std::string& name) {
  if (name.empty()) return false;
  if (!std::isalpha(static_cast<unsigned char>(name[0])) && name[0] != '_' &&
      name[0] != ':') {
    return false;
  }
  for (char c : name) {
    if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_' && c != ':') {
      return false;
    }
  }
  return true;
}

// ---------------------------------------------------- exposition format

// Every line of the rendered exposition must be either a `# TYPE` comment
// or a sample of the form name{node="...",proc="..."} value; families are
// contiguous and announced by exactly one TYPE line each, names carry the
// gigascope_ prefix and survive sanitization, and every registry sample
// appears exactly once.
TEST(PrometheusFormatTest, ExpositionConformance) {
  Registry registry;
  Counter tuples;
  Counter weird;
  Histogram lat;
  tuples.Set(41);
  weird.Set(7);
  for (int i = 0; i < 100; ++i) lat.Record(63);
  registry.Register("lfta#0", "tuples_in", &tuples);
  registry.Register("node-b", "odd.metric", &weird);  // needs sanitizing
  registry.RegisterHistogram("lfta#0", "poll_ns", &lat);
  registry.RegisterReader("engine", "shed_level", [] { return uint64_t{2}; });

  const std::vector<MetricSample> samples = registry.Snapshot();
  const std::string text = FormatPrometheus(samples);
  ASSERT_FALSE(text.empty());
  EXPECT_EQ(text.back(), '\n');

  std::istringstream in(text);
  std::string line;
  std::map<std::string, int> type_lines;
  std::string current_family;
  size_t sample_lines = 0;
  while (std::getline(in, line)) {
    ASSERT_FALSE(line.empty());
    if (line.rfind("# TYPE ", 0) == 0) {
      std::istringstream fields(line.substr(sizeof("# TYPE ") - 1));
      std::string name;
      std::string kind;
      fields >> name >> kind;
      EXPECT_TRUE(ValidMetricName(name)) << line;
      EXPECT_EQ(name.rfind("gigascope_", 0), 0u) << line;
      EXPECT_TRUE(kind == "counter" || kind == "gauge") << line;
      EXPECT_EQ(++type_lines[name], 1) << "family split: " << name;
      current_family = name;
      continue;
    }
    // name{node="...",proc="..."} value
    size_t brace = line.find('{');
    ASSERT_NE(brace, std::string::npos) << line;
    const std::string name = line.substr(0, brace);
    EXPECT_TRUE(ValidMetricName(name)) << line;
    EXPECT_EQ(name, current_family) << "sample outside its family: " << line;
    size_t close = line.find('}', brace);
    ASSERT_NE(close, std::string::npos) << line;
    const std::string labels = line.substr(brace + 1, close - brace - 1);
    EXPECT_EQ(labels.rfind("node=\"", 0), 0u) << line;
    EXPECT_NE(labels.find(",proc=\""), std::string::npos) << line;
    ASSERT_GT(line.size(), close + 2) << line;
    EXPECT_EQ(line[close + 1], ' ') << line;
    for (size_t i = close + 2; i < line.size(); ++i) {
      EXPECT_TRUE(std::isdigit(static_cast<unsigned char>(line[i]))) << line;
    }
    ++sample_lines;
  }
  EXPECT_EQ(sample_lines, samples.size());

  // Spot-check semantics: sanitized name, cumulative vs gauge typing, and
  // the actual values.
  EXPECT_NE(text.find("# TYPE gigascope_tuples_in counter\n"),
            std::string::npos);
  EXPECT_NE(text.find("gigascope_tuples_in{node=\"lfta#0\",proc=\"rts\"} 41\n"),
            std::string::npos);
  EXPECT_NE(text.find("gigascope_odd_metric{node=\"node-b\",proc=\"rts\"} 7\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE gigascope_poll_ns_p50 gauge\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE gigascope_shed_level gauge\n"),
            std::string::npos);
}

// ------------------------------------------------------------ http server

TEST(MetricsHttpServerTest, ServesMetricsAnalyzeAndErrors) {
  MetricsHttpServer server;
  MetricsHttpServer::Handlers handlers;
  handlers.metrics = [] { return std::string("gigascope_up{} 1\n"); };
  handlers.analyze = [] { return std::string("{\"queries\":[]}"); };
  ASSERT_TRUE(server.Start(0, handlers).ok());
  ASSERT_NE(server.port(), 0);

  std::string metrics = HttpGet(server.port(), "/metrics");
  EXPECT_EQ(metrics.rfind("HTTP/1.1 200", 0), 0u) << metrics;
  EXPECT_NE(metrics.find("Content-Type: text/plain; version=0.0.4"),
            std::string::npos)
      << metrics;
  EXPECT_NE(metrics.find("gigascope_up{} 1\n"), std::string::npos);

  std::string analyze = HttpGet(server.port(), "/analyze");
  EXPECT_EQ(analyze.rfind("HTTP/1.1 200", 0), 0u) << analyze;
  EXPECT_NE(analyze.find("Content-Type: application/json"),
            std::string::npos);
  EXPECT_NE(analyze.find("{\"queries\":[]}"), std::string::npos);

  std::string missing = HttpGet(server.port(), "/nope");
  EXPECT_EQ(missing.rfind("HTTP/1.1 404", 0), 0u) << missing;

  std::string post = HttpRequest(
      server.port(), "POST /metrics HTTP/1.1\r\nHost: x\r\n\r\n");
  EXPECT_EQ(post.rfind("HTTP/1.1 405", 0), 0u) << post;

  server.Stop();
  server.Stop();  // idempotent
}

TEST(MetricsHttpServerTest, StopWithoutStartAndPortCollision) {
  MetricsHttpServer idle;
  idle.Stop();  // never started: must be a no-op

  MetricsHttpServer first;
  MetricsHttpServer::Handlers handlers;
  handlers.metrics = [] { return std::string("x\n"); };
  ASSERT_TRUE(first.Start(0, handlers).ok());
  MetricsHttpServer second;
  EXPECT_FALSE(second.Start(first.port(), handlers).ok());
  first.Stop();
}

// ---------------------------------------------- scrape while workers pump

net::Packet MakeTcpPacket(SimTime timestamp, uint32_t dst_addr) {
  net::TcpPacketSpec spec;
  spec.src_addr = 0xac100001;
  spec.dst_addr = dst_addr;
  spec.src_port = 40000;
  spec.dst_port = 80;
  spec.flags = net::kTcpFlagAck;
  spec.payload = "x";
  net::Packet packet;
  packet.bytes = net::BuildTcpPacket(spec);
  packet.orig_len = static_cast<uint32_t>(packet.bytes.size());
  packet.timestamp = timestamp;
  return packet;
}

// TSan case: the gsrun deployment shape. The endpoint serves /metrics and
// /analyze from its accept thread while the inject thread pumps packets
// and the worker pool drains the HFTA stage. The handlers must only touch
// thread-safe engine surfaces (registry snapshot, analyze assembly).
TEST(MetricsHttpServerTest, ScrapeWhileWorkersPump) {
  EngineOptions options;
  options.stats_period = kNanosPerSecond / 10;
  Engine engine(options);
  engine.AddInterface("eth0");
  ASSERT_TRUE(engine
                  .AddQuery("DEFINE { query_name agg; } "
                            "SELECT tb, destIP, count(*) FROM eth0.PKT "
                            "GROUP BY time AS tb, destIP")
                  .ok());
  auto sub = engine.Subscribe("agg", 1 << 16);
  ASSERT_TRUE(sub.ok());
  ASSERT_TRUE(engine.StartThreads(2).ok());

  MetricsHttpServer server;
  MetricsHttpServer::Handlers handlers;
  handlers.metrics = [&engine] {
    return FormatPrometheus(engine.telemetry().Snapshot());
  };
  handlers.analyze = [&engine] { return engine.AnalyzeJson(); };
  ASSERT_TRUE(server.Start(0, handlers).ok());

  std::atomic<bool> done{false};
  std::thread injector([&] {
    for (int i = 0; i < 10000; ++i) {
      SimTime timestamp =
          kNanosPerSecond + (static_cast<SimTime>(i) * kNanosPerSecond) / 500;
      engine
          .InjectPacket("eth0",
                        MakeTcpPacket(timestamp, 0x0a000000 + (i % 16)))
          .ok();
    }
    done.store(true, std::memory_order_release);
  });

  size_t scrapes = 0;
  while (!done.load(std::memory_order_acquire)) {
    std::string metrics = HttpGet(server.port(), "/metrics");
    EXPECT_EQ(metrics.rfind("HTTP/1.1 200", 0), 0u);
    EXPECT_NE(metrics.find("gigascope_tuples_in"), std::string::npos);
    std::string analyze = HttpGet(server.port(), "/analyze");
    EXPECT_EQ(analyze.rfind("HTTP/1.1 200", 0), 0u);
    EXPECT_NE(analyze.find("\"analyze\":{\"pump\":\"threads\""),
              std::string::npos);
    ++scrapes;
  }
  injector.join();
  engine.FlushAll();
  server.Stop();
  EXPECT_GT(scrapes, 0u);
}

}  // namespace
}  // namespace gigascope::telemetry
