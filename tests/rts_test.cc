#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "common/rng.h"
#include "rts/punctuation.h"
#include "rts/registry.h"
#include "rts/ring.h"
#include "rts/tuple.h"

namespace gigascope::rts {
namespace {

using expr::Value;
using gsql::DataType;
using gsql::FieldDef;
using gsql::OrderSpec;
using gsql::StreamKind;
using gsql::StreamSchema;

StreamSchema MixedSchema() {
  std::vector<FieldDef> fields;
  fields.push_back({"t", DataType::kUint, OrderSpec::Increasing()});
  fields.push_back({"i", DataType::kInt, OrderSpec::None()});
  fields.push_back({"f", DataType::kFloat, OrderSpec::None()});
  fields.push_back({"addr", DataType::kIp, OrderSpec::None()});
  fields.push_back({"s", DataType::kString, OrderSpec::None()});
  fields.push_back({"b", DataType::kBool, OrderSpec::None()});
  return StreamSchema("mixed", StreamKind::kStream, fields);
}

Row SampleRow() {
  return {Value::Uint(42),          Value::Int(-7),
          Value::Float(3.25),       Value::Ip(0x0a000001),
          Value::String("payload"), Value::Bool(true)};
}

TEST(TupleCodecTest, RoundTrip) {
  TupleCodec codec(MixedSchema());
  ByteBuffer buffer;
  Row row = SampleRow();
  codec.Encode(row, &buffer);
  EXPECT_EQ(buffer.size(), codec.EncodedSize(row));
  auto decoded = codec.Decode(ByteSpan(buffer.data(), buffer.size()));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ASSERT_EQ(decoded->size(), row.size());
  for (size_t i = 0; i < row.size(); ++i) {
    EXPECT_EQ((*decoded)[i], row[i]) << "field " << i;
  }
}

TEST(TupleCodecTest, EmptyStringField) {
  TupleCodec codec(MixedSchema());
  Row row = SampleRow();
  row[4] = Value::String("");
  ByteBuffer buffer;
  codec.Encode(row, &buffer);
  auto decoded = codec.Decode(ByteSpan(buffer.data(), buffer.size()));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ((*decoded)[4].string_value(), "");
}

TEST(TupleCodecTest, TruncationRejected) {
  TupleCodec codec(MixedSchema());
  ByteBuffer buffer;
  codec.Encode(SampleRow(), &buffer);
  for (size_t cut : {size_t{0}, size_t{1}, buffer.size() / 2,
                     buffer.size() - 1}) {
    auto decoded = codec.Decode(ByteSpan(buffer.data(), cut));
    EXPECT_FALSE(decoded.ok()) << "cut at " << cut;
  }
}

TEST(TupleCodecTest, TrailingBytesRejected) {
  TupleCodec codec(MixedSchema());
  ByteBuffer buffer;
  codec.Encode(SampleRow(), &buffer);
  buffer.push_back(0xff);
  EXPECT_FALSE(codec.Decode(ByteSpan(buffer.data(), buffer.size())).ok());
}

TEST(RingTest, FifoOrder) {
  RingChannel channel(8);
  for (int i = 0; i < 5; ++i) {
    StreamMessage message;
    message.payload = {static_cast<uint8_t>(i)};
    ASSERT_TRUE(channel.TryPush(std::move(message)));
  }
  StreamMessage out;
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(channel.TryPop(&out));
    EXPECT_EQ(out.payload[0], i);
  }
  EXPECT_FALSE(channel.TryPop(&out));
}

TEST(RingTest, CapacityEnforced) {
  RingChannel channel(2);
  StreamMessage message;
  EXPECT_TRUE(channel.TryPush(message));
  EXPECT_TRUE(channel.TryPush(message));
  EXPECT_FALSE(channel.TryPush(message));
  EXPECT_EQ(channel.size(), 2u);
}

TEST(RingTest, DropAccounting) {
  RingChannel channel(1);
  StreamMessage message;
  EXPECT_TRUE(channel.PushOrDrop(message));
  EXPECT_FALSE(channel.PushOrDrop(message));
  EXPECT_FALSE(channel.PushOrDrop(message));
  EXPECT_EQ(channel.dropped(), 2u);
  EXPECT_EQ(channel.pushed(), 1u);
}

TEST(RingTest, BatchDropAccountingIsMessageGranular) {
  // Overload accounting depends on `dropped()` counting *messages*, not
  // ring slots: a dropped 5-tuple batch is 5 lost tuples, and the shed
  // controller's drops-per-check threshold reads this counter.
  RingChannel channel(1);
  StreamBatch filler;
  filler.items.emplace_back();
  ASSERT_TRUE(channel.PushOrDrop(std::move(filler)));

  StreamBatch batch;
  for (int i = 0; i < 5; ++i) {
    StreamMessage message;
    message.payload = {static_cast<uint8_t>(i)};
    batch.items.push_back(std::move(message));
  }
  EXPECT_FALSE(channel.PushOrDrop(std::move(batch)));
  EXPECT_EQ(channel.dropped(), 5u);

  // A punctuation riding the batch parks instead of dropping: only the
  // tuple messages count.
  StreamBatch with_punct;
  for (int i = 0; i < 3; ++i) with_punct.items.emplace_back();
  StreamMessage punct;
  punct.kind = StreamMessage::Kind::kPunctuation;
  with_punct.items.push_back(std::move(punct));
  EXPECT_FALSE(channel.PushOrDrop(std::move(with_punct)));
  EXPECT_EQ(channel.dropped(), 8u);  // 5 + 3; the punctuation parked
  // The parked punctuation rides out on the next successful push after
  // the ring drains.
  StreamMessage out;
  ASSERT_TRUE(channel.TryPop(&out));
  StreamBatch next;
  next.items.emplace_back();
  ASSERT_TRUE(channel.PushOrDrop(std::move(next)));
  StreamBatch popped;
  ASSERT_TRUE(channel.TryPop(&popped));
  ASSERT_EQ(popped.items.size(), 2u);
  EXPECT_EQ(popped.items.back().kind, StreamMessage::Kind::kPunctuation);
  EXPECT_EQ(channel.dropped(), 8u);
}

TEST(RingTest, HighWaterMark) {
  RingChannel channel(16);
  StreamMessage message;
  for (int i = 0; i < 10; ++i) channel.TryPush(message);
  StreamMessage out;
  for (int i = 0; i < 10; ++i) channel.TryPop(&out);
  EXPECT_EQ(channel.high_water_mark(), 10u);
  EXPECT_EQ(channel.size(), 0u);
}

TEST(RegistryTest, DeclareSubscribePublish) {
  StreamRegistry registry;
  ASSERT_TRUE(registry.DeclareStream(MixedSchema()).ok());
  EXPECT_TRUE(registry.HasStream("mixed"));
  auto sub = registry.Subscribe("mixed", 8);
  ASSERT_TRUE(sub.ok());
  StreamMessage message;
  message.payload = {1, 2, 3};
  EXPECT_EQ(registry.Publish("mixed", message), 1u);
  StreamMessage out;
  ASSERT_TRUE((*sub)->TryPop(&out));
  EXPECT_EQ(out.payload, (ByteBuffer{1, 2, 3}));
}

TEST(RegistryTest, FanOutToMultipleSubscribers) {
  StreamRegistry registry;
  ASSERT_TRUE(registry.DeclareStream(MixedSchema()).ok());
  auto sub1 = registry.Subscribe("mixed", 8);
  auto sub2 = registry.Subscribe("mixed", 8);
  ASSERT_TRUE(sub1.ok() && sub2.ok());
  StreamMessage message;
  EXPECT_EQ(registry.Publish("mixed", message), 2u);
  EXPECT_EQ((*sub1)->size(), 1u);
  EXPECT_EQ((*sub2)->size(), 1u);
}

TEST(RegistryTest, SlowSubscriberDropsAlone) {
  StreamRegistry registry;
  ASSERT_TRUE(registry.DeclareStream(MixedSchema()).ok());
  auto slow = registry.Subscribe("mixed", 1);
  auto fast = registry.Subscribe("mixed", 100);
  StreamMessage message;
  for (int i = 0; i < 10; ++i) registry.Publish("mixed", message);
  EXPECT_EQ((*slow)->dropped(), 9u);
  EXPECT_EQ((*fast)->dropped(), 0u);
  EXPECT_EQ(registry.TotalDrops("mixed"), 9u);
}

TEST(RegistryTest, SubscribeUnknownStreamFails) {
  StreamRegistry registry;
  EXPECT_FALSE(registry.Subscribe("nope", 8).ok());
  EXPECT_EQ(registry.Publish("nope", StreamMessage{}), 0u);
}

TEST(RegistryTest, RedeclareKeepsSubscribers) {
  StreamRegistry registry;
  ASSERT_TRUE(registry.DeclareStream(MixedSchema()).ok());
  auto sub = registry.Subscribe("mixed", 8);
  ASSERT_TRUE(registry.DeclareStream(MixedSchema()).ok());
  StreamMessage message;
  EXPECT_EQ(registry.Publish("mixed", message), 1u);
}

TEST(PunctuationTest, EncodeDecodeRoundTrip) {
  StreamSchema schema = MixedSchema();
  Punctuation punctuation;
  punctuation.bounds.emplace_back(0, Value::Uint(99));
  punctuation.bounds.emplace_back(2, Value::Float(1.5));
  ByteBuffer buffer;
  EncodePunctuation(punctuation, schema, &buffer);
  auto decoded = DecodePunctuation(ByteSpan(buffer.data(), buffer.size()),
                                   schema);
  ASSERT_TRUE(decoded.ok());
  ASSERT_EQ(decoded->bounds.size(), 2u);
  EXPECT_EQ(decoded->BoundFor(0)->uint_value(), 99u);
  EXPECT_DOUBLE_EQ(decoded->BoundFor(2)->float_value(), 1.5);
  EXPECT_FALSE(decoded->BoundFor(1).has_value());
}

TEST(PunctuationTest, CombineMaxKeepsLaterBounds) {
  Punctuation a, b;
  a.bounds.emplace_back(0, Value::Uint(10));
  a.bounds.emplace_back(1, Value::Int(5));
  b.bounds.emplace_back(0, Value::Uint(20));
  b.bounds.emplace_back(2, Value::Int(1));
  a.CombineMax(b);
  EXPECT_EQ(a.BoundFor(0)->uint_value(), 20u);
  EXPECT_EQ(a.BoundFor(1)->int_value(), 5);
  EXPECT_EQ(a.BoundFor(2)->int_value(), 1);
}

TEST(PunctuationTest, DecodeRejectsOutOfRangeField) {
  StreamSchema schema = MixedSchema();
  ByteBuffer buffer;
  ByteWriter writer(&buffer);
  writer.PutU32Le(1);
  writer.PutU32Le(1000);  // bad field index
  writer.PutU64Le(5);
  EXPECT_FALSE(
      DecodePunctuation(ByteSpan(buffer.data(), buffer.size()), schema).ok());
}

TEST(PunctuationTest, DecodeRejectsTruncation) {
  StreamSchema schema = MixedSchema();
  Punctuation punctuation;
  punctuation.bounds.emplace_back(0, Value::Uint(1));
  ByteBuffer buffer;
  EncodePunctuation(punctuation, schema, &buffer);
  buffer.resize(buffer.size() - 3);
  EXPECT_FALSE(
      DecodePunctuation(ByteSpan(buffer.data(), buffer.size()), schema).ok());
}

TEST(RingConcurrencyTest, ProducerConsumerLosesNothing) {
  // The channels stand in for the paper's shared-memory segments between
  // processes; a producer and a consumer thread must agree on counts.
  RingChannel channel(256);
  const uint64_t kMessages = 200000;
  std::atomic<uint64_t> consumed{0};
  uint64_t checksum_out = 0;

  std::thread consumer([&] {
    StreamMessage message;
    uint64_t local = 0;
    while (local < kMessages) {
      if (channel.TryPop(&message)) {
        checksum_out += message.payload.empty() ? 0 : message.payload[0];
        ++local;
      } else {
        std::this_thread::yield();
      }
    }
    consumed.store(local);
  });

  uint64_t checksum_in = 0;
  for (uint64_t i = 0; i < kMessages; ++i) {
    StreamMessage message;
    message.payload = {static_cast<uint8_t>(i & 0xff)};
    checksum_in += message.payload[0];
    while (!channel.TryPush(message)) {
      std::this_thread::yield();  // backpressure, never drop
    }
  }
  consumer.join();
  EXPECT_EQ(consumed.load(), kMessages);
  EXPECT_EQ(checksum_out, checksum_in);
  EXPECT_EQ(channel.dropped(), 0u);
  EXPECT_EQ(channel.pushed(), kMessages);
  EXPECT_EQ(channel.popped(), kMessages);
}

TEST(RingTest, NonPowerOfTwoCapacityExact) {
  // The slot array rounds up to a power of two internally, but the logical
  // capacity handed to the constructor must be enforced exactly.
  RingChannel channel(3);
  EXPECT_EQ(channel.capacity(), 3u);
  StreamMessage message;
  EXPECT_TRUE(channel.TryPush(message));
  EXPECT_TRUE(channel.TryPush(message));
  EXPECT_TRUE(channel.TryPush(message));
  EXPECT_FALSE(channel.TryPush(message));
  EXPECT_EQ(channel.size(), 3u);
  StreamMessage out;
  EXPECT_TRUE(channel.TryPop(&out));
  EXPECT_TRUE(channel.TryPush(message));
  EXPECT_FALSE(channel.TryPush(message));
}

TEST(RingConcurrencyTest, SpscStressFifoNoLoss) {
  // Two-thread SPSC stress: over a million messages through a small ring,
  // every message carries its sequence number, and the consumer asserts
  // strict FIFO. Afterwards the stat counters must balance exactly.
  RingChannel channel(64);
  const uint64_t kMessages = 1 << 20;  // 1,048,576
  std::atomic<bool> fifo_ok{true};

  std::thread consumer([&] {
    StreamMessage message;
    uint64_t expected = 0;
    while (expected < kMessages) {
      if (!channel.TryPop(&message)) {
        std::this_thread::yield();
        continue;
      }
      uint64_t sequence = 0;
      for (int b = 0; b < 8; ++b) {
        sequence |= static_cast<uint64_t>(message.payload[b]) << (8 * b);
      }
      if (sequence != expected) {
        fifo_ok.store(false);
        break;
      }
      ++expected;
    }
  });

  for (uint64_t i = 0; i < kMessages; ++i) {
    StreamMessage message;
    message.payload.resize(8);
    for (int b = 0; b < 8; ++b) {
      message.payload[b] = static_cast<uint8_t>(i >> (8 * b));
    }
    // A failed TryPush leaves the message untouched (no-consume
    // contract), so the retry loop can move the very same object.
    while (!channel.TryPush(std::move(message))) {
      std::this_thread::yield();  // backpressure, never drop
    }
  }
  consumer.join();
  EXPECT_TRUE(fifo_ok.load());
  EXPECT_EQ(channel.dropped(), 0u);
  EXPECT_EQ(channel.pushed(), kMessages);
  EXPECT_EQ(channel.popped(), kMessages);
  // Exact accounting invariant: everything pushed was either popped or is
  // still queued.
  EXPECT_EQ(channel.pushed(), channel.popped() + channel.size());
}

TEST(RingTest, FailedPushLeavesMessageIntact) {
  // Regression: the old by-value TryPush consumed the message even when
  // the ring was full, so retry loops re-sent a moved-from shell.
  RingChannel channel(1);
  StreamMessage filler;
  filler.payload = {9};
  ASSERT_TRUE(channel.TryPush(std::move(filler)));

  StreamMessage message;
  message.payload = {1, 2, 3};
  message.trace_id = 77;
  EXPECT_FALSE(channel.TryPush(std::move(message)));
  // The caller still owns the payload and can retry with the same object.
  EXPECT_EQ(message.payload, (ByteBuffer{1, 2, 3}));
  EXPECT_EQ(message.trace_id, 77u);

  StreamMessage out;
  ASSERT_TRUE(channel.TryPop(&out));
  EXPECT_TRUE(channel.TryPush(std::move(message)));
  ASSERT_TRUE(channel.TryPop(&out));
  EXPECT_EQ(out.payload, (ByteBuffer{1, 2, 3}));
}

TEST(RingTest, FailedBatchPushLeavesBatchIntact) {
  RingChannel channel(1);
  StreamBatch filler;
  filler.items.emplace_back();
  ASSERT_TRUE(channel.TryPush(std::move(filler)));

  StreamBatch batch;
  for (uint8_t i = 0; i < 3; ++i) {
    StreamMessage message;
    message.payload = {i};
    batch.items.push_back(std::move(message));
  }
  EXPECT_FALSE(channel.TryPush(std::move(batch)));
  ASSERT_EQ(batch.items.size(), 3u);
  for (uint8_t i = 0; i < 3; ++i) EXPECT_EQ(batch.items[i].payload[0], i);

  StreamBatch out;
  ASSERT_TRUE(channel.TryPop(&out));
  EXPECT_TRUE(channel.TryPush(std::move(batch)));
  EXPECT_EQ(channel.pushed(), 4u);  // counters count messages, not slots
}

TEST(RingTest, PunctuationParksOnFullRingAndRidesNextPush) {
  RingChannel channel(1);
  StreamMessage filler;
  ASSERT_TRUE(channel.TryPush(std::move(filler)));

  // A full ring drops the batch's tuples but never its punctuation.
  StreamBatch batch;
  batch.items.emplace_back();  // tuple, will drop
  StreamMessage punct;
  punct.kind = StreamMessage::Kind::kPunctuation;
  punct.payload = {42};
  batch.items.push_back(std::move(punct));
  EXPECT_FALSE(channel.PushOrDrop(std::move(batch)));
  EXPECT_EQ(channel.dropped(), 1u);  // the tuple only
  EXPECT_TRUE(channel.has_parked());

  // Space frees; the parked punctuation rides the tail of the next push.
  StreamBatch out;
  ASSERT_TRUE(channel.TryPop(&out));
  StreamBatch next;
  next.items.emplace_back();
  EXPECT_TRUE(channel.PushOrDrop(std::move(next)));
  EXPECT_FALSE(channel.has_parked());
  ASSERT_TRUE(channel.TryPop(&out));
  ASSERT_EQ(out.items.size(), 2u);
  EXPECT_EQ(out.items[1].kind, StreamMessage::Kind::kPunctuation);
  EXPECT_EQ(out.items[1].payload, (ByteBuffer{42}));
}

TEST(RingTest, ParkedPunctuationSupersededByNewer) {
  RingChannel channel(1);
  StreamMessage filler;
  ASSERT_TRUE(channel.TryPush(std::move(filler)));

  StreamMessage old_punct;
  old_punct.kind = StreamMessage::Kind::kPunctuation;
  old_punct.payload = {1};
  EXPECT_FALSE(channel.PushOrDrop(std::move(old_punct)));
  EXPECT_TRUE(channel.has_parked());

  // A newer punctuation carries a bound at least as tight: the parked one
  // is dropped as superseded, and the newer one parks in its place.
  StreamMessage new_punct;
  new_punct.kind = StreamMessage::Kind::kPunctuation;
  new_punct.payload = {2};
  EXPECT_FALSE(channel.PushOrDrop(std::move(new_punct)));
  EXPECT_TRUE(channel.has_parked());
  EXPECT_EQ(channel.dropped(), 0u);  // punctuations never count as drops

  StreamBatch out;
  ASSERT_TRUE(channel.TryPop(&out));
  EXPECT_TRUE(channel.FlushParked());
  EXPECT_FALSE(channel.has_parked());
  ASSERT_TRUE(channel.TryPop(&out));
  ASSERT_EQ(out.items.size(), 1u);
  EXPECT_EQ(out.items[0].payload, (ByteBuffer{2}));  // only the newer one
}

TEST(RingTest, FlushParkedReparksWhileStillFull) {
  RingChannel channel(1);
  StreamMessage filler;
  ASSERT_TRUE(channel.TryPush(std::move(filler)));
  StreamMessage punct;
  punct.kind = StreamMessage::Kind::kPunctuation;
  EXPECT_FALSE(channel.PushOrDrop(std::move(punct)));
  EXPECT_FALSE(channel.FlushParked());  // no room yet
  EXPECT_TRUE(channel.has_parked());
  StreamBatch out;
  ASSERT_TRUE(channel.TryPop(&out));
  EXPECT_TRUE(channel.FlushParked());
  ASSERT_TRUE(channel.TryPop(&out));
  EXPECT_EQ(out.items[0].kind, StreamMessage::Kind::kPunctuation);
}

TEST(RingTest, BatchPopAndMessagePopInterleaveFifo) {
  RingChannel channel(4);
  for (uint8_t b = 0; b < 3; ++b) {
    StreamBatch batch;
    for (uint8_t i = 0; i < 3; ++i) {
      StreamMessage message;
      message.payload = {static_cast<uint8_t>(b * 3 + i)};
      batch.items.push_back(std::move(message));
    }
    ASSERT_TRUE(channel.TryPush(std::move(batch)));
  }
  // Drain one message from the first batch, then switch to batch pops:
  // the staged remainder must come out before the next slot.
  StreamMessage message;
  ASSERT_TRUE(channel.TryPop(&message));
  EXPECT_EQ(message.payload[0], 0);
  StreamBatch batch;
  ASSERT_TRUE(channel.TryPop(&batch));
  ASSERT_EQ(batch.items.size(), 2u);
  EXPECT_EQ(batch.items[0].payload[0], 1);
  EXPECT_EQ(batch.items[1].payload[0], 2);
  // Remaining six messages, message-at-a-time across slot boundaries.
  for (uint8_t expected = 3; expected < 9; ++expected) {
    ASSERT_TRUE(channel.TryPop(&message));
    EXPECT_EQ(message.payload[0], expected);
  }
  EXPECT_FALSE(channel.TryPop(&message));
  EXPECT_EQ(channel.pushed(), 9u);
  EXPECT_EQ(channel.popped(), 9u);
}

TEST(RingTest, BatchSizeHistogramCountsMessagesPerPush) {
  RingChannel channel(8);
  StreamBatch batch;
  for (int i = 0; i < 5; ++i) batch.items.emplace_back();
  ASSERT_TRUE(channel.TryPush(std::move(batch)));
  StreamMessage single;
  ASSERT_TRUE(channel.TryPush(std::move(single)));
  auto snapshot = channel.batch_size_histogram().Snapshot();
  EXPECT_EQ(snapshot.count, 2u);  // two pushes...
  EXPECT_EQ(snapshot.sum, 6u);    // ...carrying six messages
  EXPECT_EQ(snapshot.max, 5u);
}

TEST(RegistryTest, FanOutDropChargedToFullChannelOnly) {
  // Regression: a full subscriber channel must not stop delivery to the
  // others, and its drop must be charged to that channel alone, exactly
  // once per lost message.
  StreamRegistry registry;
  ASSERT_TRUE(registry.DeclareStream(MixedSchema()).ok());
  auto tiny = registry.Subscribe("mixed", 1);
  auto roomy = registry.Subscribe("mixed", 8);
  ASSERT_TRUE(tiny.ok() && roomy.ok());

  StreamMessage first, second;
  first.payload = {1};
  second.payload = {2};
  EXPECT_EQ(registry.Publish("mixed", first), 2u);
  // tiny is now full; the second publish reaches only roomy.
  EXPECT_EQ(registry.Publish("mixed", second), 1u);

  EXPECT_EQ((*tiny)->dropped(), 1u);
  EXPECT_EQ((*tiny)->pushed(), 1u);
  EXPECT_EQ((*roomy)->dropped(), 0u);
  EXPECT_EQ((*roomy)->pushed(), 2u);
  EXPECT_EQ(registry.TotalDrops("mixed"), 1u);

  // roomy saw both messages, in publish order.
  StreamMessage out;
  ASSERT_TRUE((*roomy)->TryPop(&out));
  EXPECT_EQ(out.payload, (ByteBuffer{1}));
  ASSERT_TRUE((*roomy)->TryPop(&out));
  EXPECT_EQ(out.payload, (ByteBuffer{2}));
  // tiny kept the message that fit.
  ASSERT_TRUE((*tiny)->TryPop(&out));
  EXPECT_EQ(out.payload, (ByteBuffer{1}));
  EXPECT_FALSE((*tiny)->TryPop(&out));
}

TEST(RegistryConcurrencyTest, PublisherAndSubscriberThreads) {
  StreamRegistry registry;
  ASSERT_TRUE(registry.DeclareStream(MixedSchema()).ok());
  auto sub = registry.Subscribe("mixed", 512);
  ASSERT_TRUE(sub.ok());
  const uint64_t kMessages = 50000;
  std::atomic<uint64_t> received{0};
  std::thread consumer([&] {
    StreamMessage message;
    uint64_t local = 0;
    while (local < kMessages) {
      if ((*sub)->TryPop(&message)) {
        ++local;
      } else {
        std::this_thread::yield();
      }
    }
    received.store(local);
  });
  StreamMessage message;
  for (uint64_t i = 0; i < kMessages; ++i) {
    while (registry.Publish("mixed", message) == 0 ||
           (*sub)->dropped() > 0) {
      if ((*sub)->dropped() > 0) break;  // PushOrDrop dropped: back off
      std::this_thread::yield();
    }
    // Simple backpressure: wait while nearly full.
    while ((*sub)->size() > 480) std::this_thread::yield();
  }
  consumer.join();
  EXPECT_GE(received.load() + (*sub)->dropped(), kMessages);
}

}  // namespace
}  // namespace gigascope::rts
