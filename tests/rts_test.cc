#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "common/rng.h"
#include "rts/punctuation.h"
#include "rts/registry.h"
#include "rts/ring.h"
#include "rts/tuple.h"

namespace gigascope::rts {
namespace {

using expr::Value;
using gsql::DataType;
using gsql::FieldDef;
using gsql::OrderSpec;
using gsql::StreamKind;
using gsql::StreamSchema;

StreamSchema MixedSchema() {
  std::vector<FieldDef> fields;
  fields.push_back({"t", DataType::kUint, OrderSpec::Increasing()});
  fields.push_back({"i", DataType::kInt, OrderSpec::None()});
  fields.push_back({"f", DataType::kFloat, OrderSpec::None()});
  fields.push_back({"addr", DataType::kIp, OrderSpec::None()});
  fields.push_back({"s", DataType::kString, OrderSpec::None()});
  fields.push_back({"b", DataType::kBool, OrderSpec::None()});
  return StreamSchema("mixed", StreamKind::kStream, fields);
}

Row SampleRow() {
  return {Value::Uint(42),          Value::Int(-7),
          Value::Float(3.25),       Value::Ip(0x0a000001),
          Value::String("payload"), Value::Bool(true)};
}

TEST(TupleCodecTest, RoundTrip) {
  TupleCodec codec(MixedSchema());
  ByteBuffer buffer;
  Row row = SampleRow();
  codec.Encode(row, &buffer);
  EXPECT_EQ(buffer.size(), codec.EncodedSize(row));
  auto decoded = codec.Decode(ByteSpan(buffer.data(), buffer.size()));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ASSERT_EQ(decoded->size(), row.size());
  for (size_t i = 0; i < row.size(); ++i) {
    EXPECT_EQ((*decoded)[i], row[i]) << "field " << i;
  }
}

TEST(TupleCodecTest, EmptyStringField) {
  TupleCodec codec(MixedSchema());
  Row row = SampleRow();
  row[4] = Value::String("");
  ByteBuffer buffer;
  codec.Encode(row, &buffer);
  auto decoded = codec.Decode(ByteSpan(buffer.data(), buffer.size()));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ((*decoded)[4].string_value(), "");
}

TEST(TupleCodecTest, TruncationRejected) {
  TupleCodec codec(MixedSchema());
  ByteBuffer buffer;
  codec.Encode(SampleRow(), &buffer);
  for (size_t cut : {size_t{0}, size_t{1}, buffer.size() / 2,
                     buffer.size() - 1}) {
    auto decoded = codec.Decode(ByteSpan(buffer.data(), cut));
    EXPECT_FALSE(decoded.ok()) << "cut at " << cut;
  }
}

TEST(TupleCodecTest, TrailingBytesRejected) {
  TupleCodec codec(MixedSchema());
  ByteBuffer buffer;
  codec.Encode(SampleRow(), &buffer);
  buffer.push_back(0xff);
  EXPECT_FALSE(codec.Decode(ByteSpan(buffer.data(), buffer.size())).ok());
}

TEST(RingTest, FifoOrder) {
  RingChannel channel(8);
  for (int i = 0; i < 5; ++i) {
    StreamMessage message;
    message.payload = {static_cast<uint8_t>(i)};
    ASSERT_TRUE(channel.TryPush(std::move(message)));
  }
  StreamMessage out;
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(channel.TryPop(&out));
    EXPECT_EQ(out.payload[0], i);
  }
  EXPECT_FALSE(channel.TryPop(&out));
}

TEST(RingTest, CapacityEnforced) {
  RingChannel channel(2);
  StreamMessage message;
  EXPECT_TRUE(channel.TryPush(message));
  EXPECT_TRUE(channel.TryPush(message));
  EXPECT_FALSE(channel.TryPush(message));
  EXPECT_EQ(channel.size(), 2u);
}

TEST(RingTest, DropAccounting) {
  RingChannel channel(1);
  StreamMessage message;
  EXPECT_TRUE(channel.PushOrDrop(message));
  EXPECT_FALSE(channel.PushOrDrop(message));
  EXPECT_FALSE(channel.PushOrDrop(message));
  EXPECT_EQ(channel.dropped(), 2u);
  EXPECT_EQ(channel.pushed(), 1u);
}

TEST(RingTest, HighWaterMark) {
  RingChannel channel(16);
  StreamMessage message;
  for (int i = 0; i < 10; ++i) channel.TryPush(message);
  StreamMessage out;
  for (int i = 0; i < 10; ++i) channel.TryPop(&out);
  EXPECT_EQ(channel.high_water_mark(), 10u);
  EXPECT_EQ(channel.size(), 0u);
}

TEST(RegistryTest, DeclareSubscribePublish) {
  StreamRegistry registry;
  ASSERT_TRUE(registry.DeclareStream(MixedSchema()).ok());
  EXPECT_TRUE(registry.HasStream("mixed"));
  auto sub = registry.Subscribe("mixed", 8);
  ASSERT_TRUE(sub.ok());
  StreamMessage message;
  message.payload = {1, 2, 3};
  EXPECT_EQ(registry.Publish("mixed", message), 1u);
  StreamMessage out;
  ASSERT_TRUE((*sub)->TryPop(&out));
  EXPECT_EQ(out.payload, (ByteBuffer{1, 2, 3}));
}

TEST(RegistryTest, FanOutToMultipleSubscribers) {
  StreamRegistry registry;
  ASSERT_TRUE(registry.DeclareStream(MixedSchema()).ok());
  auto sub1 = registry.Subscribe("mixed", 8);
  auto sub2 = registry.Subscribe("mixed", 8);
  ASSERT_TRUE(sub1.ok() && sub2.ok());
  StreamMessage message;
  EXPECT_EQ(registry.Publish("mixed", message), 2u);
  EXPECT_EQ((*sub1)->size(), 1u);
  EXPECT_EQ((*sub2)->size(), 1u);
}

TEST(RegistryTest, SlowSubscriberDropsAlone) {
  StreamRegistry registry;
  ASSERT_TRUE(registry.DeclareStream(MixedSchema()).ok());
  auto slow = registry.Subscribe("mixed", 1);
  auto fast = registry.Subscribe("mixed", 100);
  StreamMessage message;
  for (int i = 0; i < 10; ++i) registry.Publish("mixed", message);
  EXPECT_EQ((*slow)->dropped(), 9u);
  EXPECT_EQ((*fast)->dropped(), 0u);
  EXPECT_EQ(registry.TotalDrops("mixed"), 9u);
}

TEST(RegistryTest, SubscribeUnknownStreamFails) {
  StreamRegistry registry;
  EXPECT_FALSE(registry.Subscribe("nope", 8).ok());
  EXPECT_EQ(registry.Publish("nope", StreamMessage{}), 0u);
}

TEST(RegistryTest, RedeclareKeepsSubscribers) {
  StreamRegistry registry;
  ASSERT_TRUE(registry.DeclareStream(MixedSchema()).ok());
  auto sub = registry.Subscribe("mixed", 8);
  ASSERT_TRUE(registry.DeclareStream(MixedSchema()).ok());
  StreamMessage message;
  EXPECT_EQ(registry.Publish("mixed", message), 1u);
}

TEST(PunctuationTest, EncodeDecodeRoundTrip) {
  StreamSchema schema = MixedSchema();
  Punctuation punctuation;
  punctuation.bounds.emplace_back(0, Value::Uint(99));
  punctuation.bounds.emplace_back(2, Value::Float(1.5));
  ByteBuffer buffer;
  EncodePunctuation(punctuation, schema, &buffer);
  auto decoded = DecodePunctuation(ByteSpan(buffer.data(), buffer.size()),
                                   schema);
  ASSERT_TRUE(decoded.ok());
  ASSERT_EQ(decoded->bounds.size(), 2u);
  EXPECT_EQ(decoded->BoundFor(0)->uint_value(), 99u);
  EXPECT_DOUBLE_EQ(decoded->BoundFor(2)->float_value(), 1.5);
  EXPECT_FALSE(decoded->BoundFor(1).has_value());
}

TEST(PunctuationTest, CombineMaxKeepsLaterBounds) {
  Punctuation a, b;
  a.bounds.emplace_back(0, Value::Uint(10));
  a.bounds.emplace_back(1, Value::Int(5));
  b.bounds.emplace_back(0, Value::Uint(20));
  b.bounds.emplace_back(2, Value::Int(1));
  a.CombineMax(b);
  EXPECT_EQ(a.BoundFor(0)->uint_value(), 20u);
  EXPECT_EQ(a.BoundFor(1)->int_value(), 5);
  EXPECT_EQ(a.BoundFor(2)->int_value(), 1);
}

TEST(PunctuationTest, DecodeRejectsOutOfRangeField) {
  StreamSchema schema = MixedSchema();
  ByteBuffer buffer;
  ByteWriter writer(&buffer);
  writer.PutU32Le(1);
  writer.PutU32Le(1000);  // bad field index
  writer.PutU64Le(5);
  EXPECT_FALSE(
      DecodePunctuation(ByteSpan(buffer.data(), buffer.size()), schema).ok());
}

TEST(PunctuationTest, DecodeRejectsTruncation) {
  StreamSchema schema = MixedSchema();
  Punctuation punctuation;
  punctuation.bounds.emplace_back(0, Value::Uint(1));
  ByteBuffer buffer;
  EncodePunctuation(punctuation, schema, &buffer);
  buffer.resize(buffer.size() - 3);
  EXPECT_FALSE(
      DecodePunctuation(ByteSpan(buffer.data(), buffer.size()), schema).ok());
}

TEST(RingConcurrencyTest, ProducerConsumerLosesNothing) {
  // The channels stand in for the paper's shared-memory segments between
  // processes; a producer and a consumer thread must agree on counts.
  RingChannel channel(256);
  const uint64_t kMessages = 200000;
  std::atomic<uint64_t> consumed{0};
  uint64_t checksum_out = 0;

  std::thread consumer([&] {
    StreamMessage message;
    uint64_t local = 0;
    while (local < kMessages) {
      if (channel.TryPop(&message)) {
        checksum_out += message.payload.empty() ? 0 : message.payload[0];
        ++local;
      } else {
        std::this_thread::yield();
      }
    }
    consumed.store(local);
  });

  uint64_t checksum_in = 0;
  for (uint64_t i = 0; i < kMessages; ++i) {
    StreamMessage message;
    message.payload = {static_cast<uint8_t>(i & 0xff)};
    checksum_in += message.payload[0];
    while (!channel.TryPush(message)) {
      std::this_thread::yield();  // backpressure, never drop
    }
  }
  consumer.join();
  EXPECT_EQ(consumed.load(), kMessages);
  EXPECT_EQ(checksum_out, checksum_in);
  EXPECT_EQ(channel.dropped(), 0u);
  EXPECT_EQ(channel.pushed(), kMessages);
  EXPECT_EQ(channel.popped(), kMessages);
}

TEST(RingTest, NonPowerOfTwoCapacityExact) {
  // The slot array rounds up to a power of two internally, but the logical
  // capacity handed to the constructor must be enforced exactly.
  RingChannel channel(3);
  EXPECT_EQ(channel.capacity(), 3u);
  StreamMessage message;
  EXPECT_TRUE(channel.TryPush(message));
  EXPECT_TRUE(channel.TryPush(message));
  EXPECT_TRUE(channel.TryPush(message));
  EXPECT_FALSE(channel.TryPush(message));
  EXPECT_EQ(channel.size(), 3u);
  StreamMessage out;
  EXPECT_TRUE(channel.TryPop(&out));
  EXPECT_TRUE(channel.TryPush(message));
  EXPECT_FALSE(channel.TryPush(message));
}

TEST(RingConcurrencyTest, SpscStressFifoNoLoss) {
  // Two-thread SPSC stress: over a million messages through a small ring,
  // every message carries its sequence number, and the consumer asserts
  // strict FIFO. Afterwards the stat counters must balance exactly.
  RingChannel channel(64);
  const uint64_t kMessages = 1 << 20;  // 1,048,576
  std::atomic<bool> fifo_ok{true};

  std::thread consumer([&] {
    StreamMessage message;
    uint64_t expected = 0;
    while (expected < kMessages) {
      if (!channel.TryPop(&message)) {
        std::this_thread::yield();
        continue;
      }
      uint64_t sequence = 0;
      for (int b = 0; b < 8; ++b) {
        sequence |= static_cast<uint64_t>(message.payload[b]) << (8 * b);
      }
      if (sequence != expected) {
        fifo_ok.store(false);
        break;
      }
      ++expected;
    }
  });

  for (uint64_t i = 0; i < kMessages; ++i) {
    StreamMessage message;
    message.payload.resize(8);
    for (int b = 0; b < 8; ++b) {
      message.payload[b] = static_cast<uint8_t>(i >> (8 * b));
    }
    // TryPush takes its argument by value, so a failed push consumes the
    // moved-from message: retry with copies.
    while (!channel.TryPush(message)) {
      std::this_thread::yield();  // backpressure, never drop
    }
  }
  consumer.join();
  EXPECT_TRUE(fifo_ok.load());
  EXPECT_EQ(channel.dropped(), 0u);
  EXPECT_EQ(channel.pushed(), kMessages);
  EXPECT_EQ(channel.popped(), kMessages);
  // Exact accounting invariant: everything pushed was either popped or is
  // still queued.
  EXPECT_EQ(channel.pushed(), channel.popped() + channel.size());
}

TEST(RegistryTest, FanOutDropChargedToFullChannelOnly) {
  // Regression: a full subscriber channel must not stop delivery to the
  // others, and its drop must be charged to that channel alone, exactly
  // once per lost message.
  StreamRegistry registry;
  ASSERT_TRUE(registry.DeclareStream(MixedSchema()).ok());
  auto tiny = registry.Subscribe("mixed", 1);
  auto roomy = registry.Subscribe("mixed", 8);
  ASSERT_TRUE(tiny.ok() && roomy.ok());

  StreamMessage first, second;
  first.payload = {1};
  second.payload = {2};
  EXPECT_EQ(registry.Publish("mixed", first), 2u);
  // tiny is now full; the second publish reaches only roomy.
  EXPECT_EQ(registry.Publish("mixed", second), 1u);

  EXPECT_EQ((*tiny)->dropped(), 1u);
  EXPECT_EQ((*tiny)->pushed(), 1u);
  EXPECT_EQ((*roomy)->dropped(), 0u);
  EXPECT_EQ((*roomy)->pushed(), 2u);
  EXPECT_EQ(registry.TotalDrops("mixed"), 1u);

  // roomy saw both messages, in publish order.
  StreamMessage out;
  ASSERT_TRUE((*roomy)->TryPop(&out));
  EXPECT_EQ(out.payload, (ByteBuffer{1}));
  ASSERT_TRUE((*roomy)->TryPop(&out));
  EXPECT_EQ(out.payload, (ByteBuffer{2}));
  // tiny kept the message that fit.
  ASSERT_TRUE((*tiny)->TryPop(&out));
  EXPECT_EQ(out.payload, (ByteBuffer{1}));
  EXPECT_FALSE((*tiny)->TryPop(&out));
}

TEST(RegistryConcurrencyTest, PublisherAndSubscriberThreads) {
  StreamRegistry registry;
  ASSERT_TRUE(registry.DeclareStream(MixedSchema()).ok());
  auto sub = registry.Subscribe("mixed", 512);
  ASSERT_TRUE(sub.ok());
  const uint64_t kMessages = 50000;
  std::atomic<uint64_t> received{0};
  std::thread consumer([&] {
    StreamMessage message;
    uint64_t local = 0;
    while (local < kMessages) {
      if ((*sub)->TryPop(&message)) {
        ++local;
      } else {
        std::this_thread::yield();
      }
    }
    received.store(local);
  });
  StreamMessage message;
  for (uint64_t i = 0; i < kMessages; ++i) {
    while (registry.Publish("mixed", message) == 0 ||
           (*sub)->dropped() > 0) {
      if ((*sub)->dropped() > 0) break;  // PushOrDrop dropped: back off
      std::this_thread::yield();
    }
    // Simple backpressure: wait while nearly full.
    while ((*sub)->size() > 480) std::this_thread::yield();
  }
  consumer.join();
  EXPECT_GE(received.load() + (*sub)->dropped(), kMessages);
}

}  // namespace
}  // namespace gigascope::rts
