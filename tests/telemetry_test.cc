// Tests for the self-telemetry subsystem: single-writer counters, the
// metric registry, counter accuracy against a known workload, the built-in
// gs_stats stream (snapshot ordering + GSQL aggregation over it), and the
// thread-safety of stats readings while workers pump.

#include <gtest/gtest.h>

#include <atomic>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/engine.h"
#include "net/headers.h"
#include "plan/ordering.h"
#include "rts/punctuation.h"
#include "telemetry/counter.h"
#include "telemetry/registry.h"

namespace gigascope::telemetry {
namespace {

using core::Engine;
using core::EngineOptions;
using expr::Value;
using gsql::DataType;

net::Packet MakeTcpPacket(SimTime timestamp, uint32_t dst_addr,
                          uint16_t dst_port, const std::string& payload) {
  net::TcpPacketSpec spec;
  spec.src_addr = 0xac100001;
  spec.dst_addr = dst_addr;
  spec.src_port = 40000;
  spec.dst_port = dst_port;
  spec.flags = net::kTcpFlagAck;
  spec.payload = payload;
  net::Packet packet;
  packet.bytes = net::BuildTcpPacket(spec);
  packet.orig_len = static_cast<uint32_t>(packet.bytes.size());
  packet.timestamp = timestamp;
  return packet;
}

net::Packet MakeUdpPacket(SimTime timestamp, uint16_t dst_port) {
  net::UdpPacketSpec spec;
  spec.src_addr = 0xac100001;
  spec.dst_addr = 0x0a000001;
  spec.src_port = 40000;
  spec.dst_port = dst_port;
  spec.payload = "x";
  net::Packet packet;
  packet.bytes = net::BuildUdpPacket(spec);
  packet.orig_len = static_cast<uint32_t>(packet.bytes.size());
  packet.timestamp = timestamp;
  return packet;
}

std::optional<uint64_t> FindSample(const std::vector<MetricSample>& samples,
                                   const std::string& entity,
                                   const std::string& metric) {
  for (const MetricSample& sample : samples) {
    if (sample.entity == entity && sample.metric == metric) {
      return sample.value;
    }
  }
  return std::nullopt;
}

TEST(CounterTest, Basics) {
  Counter counter;
  EXPECT_EQ(counter.value(), 0u);
  ++counter;
  counter += 4;
  EXPECT_EQ(counter.value(), 5u);
  counter.Add(5);
  EXPECT_EQ(counter.value(), 10u);
  --counter;
  counter.Sub(2);
  EXPECT_EQ(counter.value(), 7u);
  counter.Set(100);
  EXPECT_EQ(counter.value(), 100u);
  counter.Max(50);  // no-op: below current
  EXPECT_EQ(counter.value(), 100u);
  counter.Max(200);
  EXPECT_EQ(counter.value(), 200u);
}

TEST(RegistryTest, SnapshotAndFormat) {
  Registry registry;
  Counter a;
  Counter b;
  a.Set(3);
  b.Set(7);
  registry.Register("nodeA", "tuples_in", &a);
  registry.Register("nodeA", "tuples_out", &b);
  registry.RegisterReader("engine", "answer", [] { return uint64_t{42}; });
  EXPECT_EQ(registry.num_metrics(), 3u);

  auto samples = registry.Snapshot();
  ASSERT_EQ(samples.size(), 3u);
  EXPECT_EQ(FindSample(samples, "nodeA", "tuples_in"), 3u);
  EXPECT_EQ(FindSample(samples, "nodeA", "tuples_out"), 7u);
  EXPECT_EQ(FindSample(samples, "engine", "answer"), 42u);

  // Counters are live: a later snapshot sees later values.
  a.Add(1);
  EXPECT_EQ(FindSample(registry.Snapshot(), "nodeA", "tuples_in"), 4u);

  std::string table = FormatMetricsTable(samples);
  EXPECT_NE(table.find("nodeA"), std::string::npos);
  EXPECT_NE(table.find("tuples_out"), std::string::npos);
  EXPECT_NE(table.find("42"), std::string::npos);
}

// The --stats-dump wire format (DESIGN.md §11): one metric per line, each
// line a self-contained JSON object with the fixed key order entity,
// metric, proc, value; lines sorted by (entity, metric, proc). Consumers
// get to `grep | jq` without a streaming JSON parser.
TEST(RegistryTest, NdjsonFormat) {
  Registry registry;
  Counter a;
  Counter b;
  a.Set(3);
  b.Set(7);
  registry.Register("nodeB", "tuples_in", &a);
  registry.Register("nodeA", "tuples_out", &b);
  registry.RegisterReader("engine", "shed_level", [] { return uint64_t{1}; });

  const std::string ndjson = FormatMetricsNdjson(registry.Snapshot());
  EXPECT_EQ(ndjson,
            "{\"entity\":\"engine\",\"metric\":\"shed_level\","
            "\"proc\":\"rts\",\"value\":1}\n"
            "{\"entity\":\"nodeA\",\"metric\":\"tuples_out\","
            "\"proc\":\"rts\",\"value\":7}\n"
            "{\"entity\":\"nodeB\",\"metric\":\"tuples_in\","
            "\"proc\":\"rts\",\"value\":3}\n");

  // Every line is balanced, standalone JSON (the NDJSON contract).
  std::istringstream lines(ndjson);
  std::string line;
  while (std::getline(lines, line)) {
    ASSERT_FALSE(line.empty());
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    int depth = 0;
    bool in_string = false;
    for (size_t i = 0; i < line.size(); ++i) {
      char c = line[i];
      if (c == '"' && (i == 0 || line[i - 1] != '\\')) in_string = !in_string;
      if (in_string) continue;
      if (c == '{') ++depth;
      if (c == '}') --depth;
    }
    EXPECT_EQ(depth, 0) << line;
  }
}

// gs_stats rows carry the owning process as their final field; in the
// single-process engine everything belongs to the parent ("rts"), and the
// schema places `proc` last so positional consumers of the original five
// fields keep working.
TEST(TelemetryEngineTest, StatsStreamCarriesProcColumn) {
  gsql::StreamSchema schema = gsql::Catalog::BuiltinStatsSchema();
  ASSERT_EQ(schema.num_fields(), 6u);
  EXPECT_EQ(schema.field(5).name, "proc");
  EXPECT_EQ(schema.field(5).type, DataType::kString);

  Engine engine;
  engine.AddInterface("eth0");
  ASSERT_TRUE(engine
                  .AddQuery("DEFINE { query_name base; } "
                            "SELECT time, len FROM eth0.PKT "
                            "WHERE protocol = 6")
                  .ok());
  auto channel = engine.registry().Subscribe("gs_stats", 1 << 14);
  ASSERT_TRUE(channel.ok());
  ASSERT_TRUE(
      engine.InjectPacket("eth0", MakeTcpPacket(kNanosPerSecond, 0x0a000001,
                                                80, "x"))
          .ok());
  engine.PumpUntilIdle();
  ASSERT_TRUE(engine.EmitStatsSnapshot(2 * kNanosPerSecond).ok());

  rts::TupleCodec codec(schema);
  size_t rows = 0;
  rts::StreamMessage message;
  while ((*channel)->TryPop(&message)) {
    if (message.kind != rts::StreamMessage::Kind::kTuple) continue;
    ByteSpan bytes(message.payload.data(), message.payload.size());
    auto row = codec.Decode(bytes);
    ASSERT_TRUE(row.ok());
    ASSERT_EQ(row->size(), 6u);
    EXPECT_EQ((*row)[5].string_value(), "rts");
    ++rows;
  }
  EXPECT_GT(rows, 0u);
}

// A known workload must produce exact counts: 5 TCP + 3 UDP packets through
// a TCP filter gives packets=8, tuples_in=8, tuples_out=5, and the
// subscriber ring — the same counters micro_ring reads — shows 5 pushes.
TEST(TelemetryEngineTest, CounterAccuracyKnownWorkload) {
  Engine engine;
  engine.AddInterface("eth0");
  ASSERT_TRUE(engine
                  .AddQuery("DEFINE { query_name tcponly; } "
                            "SELECT time, destIP FROM eth0.PKT "
                            "WHERE protocol = 6")
                  .ok());
  auto sub = engine.Subscribe("tcponly");
  ASSERT_TRUE(sub.ok());

  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(engine
                    .InjectPacket("eth0",
                                  MakeTcpPacket((i + 1) * kNanosPerSecond,
                                                0x0a000001, 80, "x"))
                    .ok());
  }
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(
        engine.InjectPacket("eth0", MakeUdpPacket((i + 6) * kNanosPerSecond, 53))
            .ok());
  }
  engine.PumpUntilIdle();

  auto samples = engine.telemetry().Snapshot();
  EXPECT_EQ(FindSample(samples, "eth0.PKT", "packets"), 8u);
  EXPECT_EQ(FindSample(samples, "tcponly", "tuples_in"), 8u);
  EXPECT_EQ(FindSample(samples, "tcponly", "tuples_out"), 5u);
  EXPECT_EQ(FindSample(samples, "tcponly", "eval_errors"), 0u);
  EXPECT_GE(*FindSample(samples, "tcponly", "busy_polls"), 1u);
  // Ring counters are unified: the subscriber channel's telemetry entries
  // and the TupleSubscription's own accessors read the same counters.
  EXPECT_EQ(FindSample(samples, "tcponly#sub0", "ring_pushed"), 5u);
  EXPECT_EQ(FindSample(samples, "tcponly#sub0", "ring_dropped"), 0u);
  uint64_t ring_size = *FindSample(samples, "tcponly#sub0", "ring_size");
  EXPECT_EQ(ring_size, (*sub)->pending());
  EXPECT_EQ((*sub)->dropped(), 0u);

  // GetNodeStats and the telemetry registry read the same counters too.
  for (const auto& stats : engine.GetNodeStats()) {
    EXPECT_EQ(FindSample(samples, stats.name, "tuples_in"), stats.tuples_in);
    EXPECT_EQ(FindSample(samples, stats.name, "tuples_out"),
              stats.tuples_out);
  }
}

// gs_stats snapshots must be usable by the ordering machinery: the schema
// declares `time`/`ts` increasing, emitted tuples are non-decreasing in
// both, every snapshot ends with a punctuation carrying the bound, and
// plan::ImputeExprOrder sees an increasing-like order for the field — the
// property that lets the planner run ordered aggregation over gs_stats.
TEST(TelemetryEngineTest, SnapshotOrderingAndPunctuation) {
  Engine engine;
  engine.AddInterface("eth0");

  gsql::StreamSchema schema = gsql::Catalog::BuiltinStatsSchema();
  EXPECT_EQ(schema.name(), gsql::Catalog::StatsStreamName());
  EXPECT_TRUE(schema.field(0).order.IsIncreasingLike());
  EXPECT_TRUE(schema.field(1).order.IsIncreasingLike());
  expr::IrPtr time_ref =
      expr::MakeFieldRef(0, 0, schema.field(0).type, schema.field(0).name);
  EXPECT_TRUE(plan::ImputeExprOrder(time_ref, schema).IsIncreasingLike());

  auto channel = engine.registry().Subscribe("gs_stats", 1 << 12);
  ASSERT_TRUE(channel.ok());

  ASSERT_TRUE(engine.EmitStatsSnapshot(1 * kNanosPerSecond).ok());
  ASSERT_TRUE(engine.EmitStatsSnapshot(3 * kNanosPerSecond).ok());
  // A stale timestamp must not move the stream backwards.
  ASSERT_TRUE(engine.EmitStatsSnapshot(2 * kNanosPerSecond).ok());

  rts::TupleCodec codec(schema);
  uint64_t last_ts = 0;
  size_t tuples = 0;
  size_t punctuations = 0;
  rts::StreamMessage message;
  while ((*channel)->TryPop(&message)) {
    ByteSpan bytes(message.payload.data(), message.payload.size());
    if (message.kind == rts::StreamMessage::Kind::kTuple) {
      auto row = codec.Decode(bytes);
      ASSERT_TRUE(row.ok());
      uint64_t ts = (*row)[1].uint_value();
      EXPECT_GE(ts, last_ts);
      last_ts = ts;
      ++tuples;
    } else {
      auto punctuation = rts::DecodePunctuation(bytes, schema);
      ASSERT_TRUE(punctuation.ok());
      auto bound = punctuation->BoundFor(1);
      ASSERT_TRUE(bound.has_value());
      EXPECT_GE(bound->uint_value(), last_ts);
      ++punctuations;
    }
  }
  EXPECT_GT(tuples, 0u);
  EXPECT_EQ(punctuations, 3u);
  // The clamped third snapshot reports the maximum timestamp seen so far.
  EXPECT_EQ(last_ts, 3 * kNanosPerSecond);
}

// End-to-end: a GSQL aggregation over gs_stats compiles through the normal
// planner and produces ordered per-second health rows.
TEST(TelemetryEngineTest, GsqlAggregationOverStatsStream) {
  EngineOptions options;
  options.stats_period = kNanosPerSecond;
  Engine engine(options);
  engine.AddInterface("eth0");
  ASSERT_TRUE(engine
                  .AddQuery("DEFINE { query_name base; } "
                            "SELECT time, len FROM eth0.PKT "
                            "WHERE protocol = 6")
                  .ok());
  auto info = engine.AddQuery(
      "DEFINE { query_name health; } "
      "SELECT tb, node, max(value) FROM gs_stats "
      "WHERE metric = 'tuples_out' "
      "GROUP BY time AS tb, node");
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  auto sub = engine.Subscribe("health");
  ASSERT_TRUE(sub.ok());

  // Traffic in seconds 1-3; heartbeats drive the periodic snapshots and a
  // final one at second 6 closes the last gs_stats groups.
  for (int second = 1; second <= 3; ++second) {
    ASSERT_TRUE(engine
                    .InjectPacket("eth0",
                                  MakeTcpPacket(second * kNanosPerSecond,
                                                0x0a000001, 80, "x"))
                    .ok());
    ASSERT_TRUE(
        engine.InjectHeartbeat("eth0", second * kNanosPerSecond).ok());
  }
  ASSERT_TRUE(engine.InjectHeartbeat("eth0", 6 * kNanosPerSecond).ok());
  engine.PumpUntilIdle();
  engine.FlushAll();

  uint64_t last_tb = 0;
  size_t rows = 0;
  bool saw_base_node = false;
  while (auto row = (*sub)->NextRow()) {
    uint64_t tb = (*row)[0].uint_value();
    EXPECT_GE(tb, last_tb);  // ordered aggregation closes groups in order
    last_tb = tb;
    if ((*row)[1].string_value() == "base") {
      saw_base_node = true;
      EXPECT_LE((*row)[2].uint_value(), 3u);
    }
    ++rows;
  }
  EXPECT_GT(rows, 0u);
  EXPECT_TRUE(saw_base_node);
}

// The run's tail used to go missing from gs_stats: work done after the
// last periodic snapshot was never reported. FlushAll now emits one
// terminal snapshot, stamped at the last input time, as it seals.
TEST(TelemetryEngineTest, FlushAllEmitsTerminalSnapshot) {
  EngineOptions options;
  options.stats_period = kNanosPerSecond;
  Engine engine(options);
  engine.AddInterface("eth0");
  ASSERT_TRUE(engine
                  .AddQuery("DEFINE { query_name base; } "
                            "SELECT time, len FROM eth0.PKT "
                            "WHERE protocol = 6")
                  .ok());
  auto channel = engine.registry().Subscribe("gs_stats", 1 << 14);
  ASSERT_TRUE(channel.ok());

  // Ten packets; the last lands mid-period at 2.5s, after the final
  // periodic snapshot fires.
  const SimTime last_time = 5 * kNanosPerSecond / 2;
  for (int i = 1; i <= 10; ++i) {
    ASSERT_TRUE(engine
                    .InjectPacket("eth0",
                                  MakeTcpPacket(i * kNanosPerSecond / 4,
                                                0x0a000001, 80, "x"))
                    .ok());
  }
  engine.PumpUntilIdle();
  engine.FlushAll();

  gsql::StreamSchema schema = gsql::Catalog::BuiltinStatsSchema();
  rts::TupleCodec codec(schema);
  uint64_t last_snapshot_ts = 0;
  uint64_t terminal_base_tuples = 0;
  size_t punctuations = 0;
  rts::StreamMessage message;
  while ((*channel)->TryPop(&message)) {
    ByteSpan bytes(message.payload.data(), message.payload.size());
    if (message.kind == rts::StreamMessage::Kind::kTuple) {
      auto row = codec.Decode(bytes);
      ASSERT_TRUE(row.ok());
      last_snapshot_ts = (*row)[1].uint_value();
      if ((*row)[2].string_value() == "base" &&
          (*row)[3].string_value() == "tuples_out") {
        terminal_base_tuples = (*row)[4].uint_value();
      }
    } else {
      ++punctuations;
    }
  }
  // The terminal snapshot is stamped with the last input time, not the
  // last period boundary...
  EXPECT_EQ(last_snapshot_ts, static_cast<uint64_t>(last_time));
  // ...and reports the complete run: all ten tuples, including the ones
  // processed after the 2s periodic snapshot.
  EXPECT_EQ(terminal_base_tuples, 10u);
  // Two periodic snapshots (at 1s and 2s) plus the terminal one.
  EXPECT_EQ(punctuations, 3u);
}

// TSan regression: GetNodeStats and telemetry().Snapshot() must be safe
// from a control thread while the inject thread pumps packets (with the
// periodic gs_stats emitter enabled) and workers drain the HFTA stage.
TEST(TelemetryEngineTest, StatsReadsWhileWorkersPump) {
  EngineOptions options;
  options.stats_period = kNanosPerSecond / 10;
  Engine engine(options);
  engine.AddInterface("eth0");
  ASSERT_TRUE(engine
                  .AddQuery("DEFINE { query_name agg; } "
                            "SELECT tb, destIP, count(*) FROM eth0.PKT "
                            "GROUP BY time AS tb, destIP")
                  .ok());
  ASSERT_TRUE(engine
                  .AddQuery("DEFINE { query_name statcount; } "
                            "SELECT tb, count(*) FROM gs_stats "
                            "GROUP BY time AS tb")
                  .ok());
  auto sub = engine.Subscribe("agg", 1 << 16);
  ASSERT_TRUE(sub.ok());
  ASSERT_TRUE(engine.StartThreads(2).ok());

  std::atomic<bool> done{false};
  std::thread injector([&] {
    for (int i = 0; i < 20000; ++i) {
      SimTime timestamp =
          kNanosPerSecond + (static_cast<SimTime>(i) * kNanosPerSecond) / 500;
      engine
          .InjectPacket("eth0", MakeTcpPacket(timestamp,
                                              0x0a000000 + (i % 16), 80, "x"))
          .ok();
    }
    done.store(true, std::memory_order_release);
  });

  uint64_t snapshots_seen = 0;
  while (!done.load(std::memory_order_acquire)) {
    auto stats = engine.GetNodeStats();
    EXPECT_FALSE(stats.empty());
    auto samples = engine.telemetry().Snapshot();
    auto count = FindSample(samples, "engine", "stats_snapshots");
    ASSERT_TRUE(count.has_value());
    EXPECT_GE(*count, snapshots_seen);  // monotone across reads
    snapshots_seen = *count;
  }
  injector.join();
  engine.FlushAll();

  auto samples = engine.telemetry().Snapshot();
  EXPECT_EQ(FindSample(samples, "eth0.PKT", "packets"), 20000u);
  // The LFTA half of the split sees every packet; the HFTA half only the
  // pre-aggregated partials.
  EXPECT_EQ(FindSample(samples, "agg_lfta", "tuples_in"), 20000u);
  EXPECT_GT(*FindSample(samples, "engine", "stats_snapshots"), 0u);
}

}  // namespace
}  // namespace gigascope::telemetry
