// Native-tier degradation without a C++ toolchain (DESIGN.md §15): when no
// compiler exists, --jit=sync must behave exactly like --jit=off — correct
// rows, zero compiles, counted fallbacks, no crash.
//
// This lives in its own test binary because JitCompiler::ToolchainAvailable
// probes for a compiler exactly once per process: GS_JIT_CXX must point at a
// nonexistent binary *before* the first probe, which would already have
// happened in any binary whose other tests touch the tier.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/logging.h"
#include "core/engine.h"
#include "jit/compiler.h"
#include "jit/engine.h"

namespace gigascope::jit {
namespace {

using expr::Value;
using gsql::DataType;
using gsql::FieldDef;
using gsql::OrderSpec;
using gsql::StreamKind;
using gsql::StreamSchema;

/// Poisons the toolchain probe before anything in the process can run it.
/// GS_JIT_FORCE is cleared so a CI leg exporting it (the --jit=sync suite
/// run) cannot turn the engines below back into a mode this test does not
/// mean to exercise.
struct PoisonToolchain {
  PoisonToolchain() {
    setenv("GS_JIT_CXX", "/nonexistent/no-such-compiler", 1);
    unsetenv("GS_JIT_FORCE");
  }
};
PoisonToolchain poison_at_static_init;

StreamSchema InputSchema() {
  std::vector<FieldDef> fields;
  fields.push_back({"ts", DataType::kUint, OrderSpec::Increasing()});
  fields.push_back({"v", DataType::kInt, OrderSpec::None()});
  return StreamSchema("S", StreamKind::kStream, fields);
}

std::vector<std::string> RunQuery(JitMode mode, const core::Engine** out) {
  static std::vector<std::unique_ptr<core::Engine>> engines;
  core::EngineOptions options;
  options.jit.mode = mode;
  engines.push_back(std::make_unique<core::Engine>(options));
  core::Engine& engine = *engines.back();
  GS_CHECK(engine.DeclareStream(InputSchema()).ok());
  auto info = engine.AddQuery(
      "DEFINE { query_name q; } "
      "SELECT ts / 60, v * 3 + 1 FROM S WHERE v % 5 != 0");
  GS_CHECK(info.ok());
  auto sub = engine.Subscribe("q", 4096);
  GS_CHECK(sub.ok());
  for (uint64_t n = 0; n < 100; ++n) {
    GS_CHECK(engine
                 .InjectRow("S", {Value::Uint(n * 7),
                                  Value::Int(int64_t(n) - 50)})
                 .ok());
  }
  engine.PumpUntilIdle();
  engine.FlushAll();
  std::vector<std::string> rows;
  while (auto row = (*sub)->NextRow()) {
    std::string line;
    for (const Value& v : *row) line += v.ToString() + "\t";
    rows.push_back(line);
  }
  if (out != nullptr) *out = &engine;
  return rows;
}

TEST(JitNoToolchainTest, ProbeFails) {
  EXPECT_FALSE(JitCompiler::ToolchainAvailable());
}

TEST(JitNoToolchainTest, SyncModeDegradesToVm) {
  const core::Engine* off_engine = nullptr;
  const core::Engine* sync_engine = nullptr;
  std::vector<std::string> off_rows = RunQuery(JitMode::kOff, &off_engine);
  std::vector<std::string> sync_rows = RunQuery(JitMode::kSync, &sync_engine);
  ASSERT_FALSE(off_rows.empty());
  EXPECT_EQ(off_rows, sync_rows);  // identical behavior to --jit=off
  EXPECT_EQ(off_engine->jit().compiles(), 0u);
  EXPECT_EQ(sync_engine->jit().compiles(), 0u);
  EXPECT_EQ(sync_engine->jit().active_kernels(), 0u);
  EXPECT_GE(sync_engine->jit().fallbacks(), 1u);  // counted, not fatal
}

TEST(JitNoToolchainTest, AsyncModeDegradesToVm) {
  const core::Engine* async_engine = nullptr;
  std::vector<std::string> off_rows = RunQuery(JitMode::kOff, nullptr);
  std::vector<std::string> async_rows =
      RunQuery(JitMode::kAsync, &async_engine);
  EXPECT_EQ(off_rows, async_rows);
  EXPECT_EQ(async_engine->jit().compiles(), 0u);
}

}  // namespace
}  // namespace gigascope::jit
