#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/bytes.h"
#include "common/clock.h"
#include "common/rng.h"
#include "common/status.h"

namespace gigascope {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status status = Status::InvalidArgument("bad field");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), Status::Code::kInvalidArgument);
  EXPECT_EQ(status.message(), "bad field");
  EXPECT_EQ(status.ToString(), "InvalidArgument: bad field");
}

TEST(StatusTest, AllErrorCodesFormat) {
  EXPECT_EQ(Status::NotFound("x").ToString(), "NotFound: x");
  EXPECT_EQ(Status::AlreadyExists("x").ToString(), "AlreadyExists: x");
  EXPECT_EQ(Status::OutOfRange("x").ToString(), "OutOfRange: x");
  EXPECT_EQ(Status::Unimplemented("x").ToString(), "Unimplemented: x");
  EXPECT_EQ(Status::Internal("x").ToString(), "Internal: x");
  EXPECT_EQ(Status::ResourceExhausted("x").ToString(),
            "ResourceExhausted: x");
  EXPECT_EQ(Status::ParseError("x").ToString(), "ParseError: x");
  EXPECT_EQ(Status::TypeError("x").ToString(), "TypeError: x");
  EXPECT_EQ(Status::PlanError("x").ToString(), "PlanError: x");
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> Quarter(int x) {
  GS_ASSIGN_OR_RETURN(int half, Half(x));
  return Half(half);
}

TEST(ResultTest, ValuePath) {
  Result<int> result = Half(10);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, 5);
}

TEST(ResultTest, ErrorPath) {
  Result<int> result = Half(7);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), Status::Code::kInvalidArgument);
}

TEST(ResultTest, AssignOrReturnPropagates) {
  EXPECT_TRUE(Quarter(8).ok());
  EXPECT_EQ(*Quarter(8), 2);
  EXPECT_FALSE(Quarter(6).ok());  // 6/2=3 is odd
}

TEST(RngTest, Deterministic) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 4);
}

TEST(RngTest, NextBelowInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBelow(17), 17u);
  }
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, ExponentialMeanApproximatelyCorrect) {
  Rng rng(11);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.NextExponential(5.0);
  EXPECT_NEAR(sum / n, 5.0, 0.2);
}

TEST(RngTest, ParetoRespectsMinimum) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GE(rng.NextPareto(1.5, 2.0), 2.0);
  }
}

TEST(ZipfSamplerTest, UniformWhenSkewZero) {
  Rng rng(17);
  ZipfSampler sampler(10, 0.0);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 50000; ++i) ++counts[sampler.Sample(rng)];
  for (int count : counts) {
    EXPECT_NEAR(count, 5000, 500);
  }
}

TEST(ZipfSamplerTest, SkewConcentratesOnLowRanks) {
  Rng rng(19);
  ZipfSampler sampler(1000, 1.2);
  uint64_t top10 = 0, total = 20000;
  for (uint64_t i = 0; i < total; ++i) {
    if (sampler.Sample(rng) < 10) ++top10;
  }
  // With s=1.2 the top-10 ranks carry well over a third of the mass.
  EXPECT_GT(top10, total / 3);
}

TEST(ClockTest, AdvanceMovesForward) {
  VirtualClock clock;
  EXPECT_EQ(clock.now(), 0);
  clock.Advance(5 * kNanosPerSecond);
  EXPECT_EQ(clock.now(), 5 * kNanosPerSecond);
  clock.AdvanceTo(7 * kNanosPerSecond);
  EXPECT_EQ(clock.now(), 7 * kNanosPerSecond);
}

TEST(ClockTest, Conversions) {
  EXPECT_EQ(SimTimeToSeconds(2'500'000'000), 2);
  EXPECT_EQ(SecondsToSimTime(1.5), 1'500'000'000);
}

TEST(BytesTest, WriterReaderRoundTrip) {
  ByteBuffer buffer;
  ByteWriter writer(&buffer);
  writer.PutU8(0xab);
  writer.PutU16Be(0x1234);
  writer.PutU32Be(0xdeadbeef);
  writer.PutU16Le(0x5678);
  writer.PutU32Le(0xcafebabe);
  writer.PutU64Le(0x0123456789abcdefULL);

  ByteReader reader(ByteSpan(buffer.data(), buffer.size()));
  uint8_t u8;
  uint16_t u16;
  uint32_t u32;
  uint64_t u64;
  ASSERT_TRUE(reader.GetU8(&u8));
  EXPECT_EQ(u8, 0xab);
  ASSERT_TRUE(reader.GetU16Be(&u16));
  EXPECT_EQ(u16, 0x1234);
  ASSERT_TRUE(reader.GetU32Be(&u32));
  EXPECT_EQ(u32, 0xdeadbeefu);
  ASSERT_TRUE(reader.GetU16Le(&u16));
  EXPECT_EQ(u16, 0x5678);
  ASSERT_TRUE(reader.GetU32Le(&u32));
  EXPECT_EQ(u32, 0xcafebabeu);
  ASSERT_TRUE(reader.GetU64Le(&u64));
  EXPECT_EQ(u64, 0x0123456789abcdefULL);
  EXPECT_EQ(reader.remaining(), 0u);
}

TEST(BytesTest, ReaderBoundsChecked) {
  ByteBuffer buffer = {1, 2, 3};
  ByteReader reader(ByteSpan(buffer.data(), buffer.size()));
  uint32_t u32;
  EXPECT_FALSE(reader.GetU32Be(&u32));
  uint8_t u8;
  EXPECT_TRUE(reader.GetU8(&u8));
  EXPECT_TRUE(reader.GetU8(&u8));
  EXPECT_TRUE(reader.GetU8(&u8));
  EXPECT_FALSE(reader.GetU8(&u8));
}

TEST(BytesTest, U64FailureDoesNotConsume) {
  ByteBuffer buffer = {1, 2, 3, 4, 5};  // 5 bytes < 8
  ByteReader reader(ByteSpan(buffer.data(), buffer.size()));
  uint64_t u64;
  EXPECT_FALSE(reader.GetU64Le(&u64));
  EXPECT_EQ(reader.position(), 0u);
}

TEST(Ipv4Test, FormatAndParse) {
  EXPECT_EQ(Ipv4ToString(0x0a000001), "10.0.0.1");
  EXPECT_EQ(Ipv4ToString(0xffffffff), "255.255.255.255");
  auto parsed = ParseIpv4("192.168.1.42");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(*parsed, 0xc0a8012au);
  EXPECT_EQ(Ipv4ToString(*parsed), "192.168.1.42");
}

TEST(Ipv4Test, RejectsMalformed) {
  EXPECT_FALSE(ParseIpv4("1.2.3").ok());
  EXPECT_FALSE(ParseIpv4("1.2.3.4.5").ok());
  EXPECT_FALSE(ParseIpv4("1.2.3.256").ok());
  EXPECT_FALSE(ParseIpv4("a.b.c.d").ok());
  EXPECT_FALSE(ParseIpv4("1..2.3").ok());
  EXPECT_FALSE(ParseIpv4("").ok());
}

TEST(HashTest, Fnv1a64KnownValues) {
  // FNV-1a of the empty string is the offset basis.
  EXPECT_EQ(Fnv1a64("", 0), 0xcbf29ce484222325ULL);
  // Distinct inputs hash differently.
  std::set<uint64_t> hashes;
  for (uint32_t i = 0; i < 1000; ++i) {
    hashes.insert(Fnv1a64(&i, sizeof(i)));
  }
  EXPECT_EQ(hashes.size(), 1000u);
}

}  // namespace
}  // namespace gigascope
