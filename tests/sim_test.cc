#include <gtest/gtest.h>

#include "sim/capture_pipeline.h"
#include "sim/disk.h"
#include "sim/host.h"
#include "sim/nic.h"

namespace gigascope::sim {
namespace {

TEST(DiskTest, WritesCompleteOverTime) {
  DiskModel::Params params;
  params.bytes_per_sec = 1e6;  // 1 MB/s
  params.stall_probability = 0;
  DiskModel disk(params, 1);
  ASSERT_TRUE(disk.HasSpace(0));
  disk.Write(0, 500'000);  // takes 0.5 s
  disk.DrainUntil(SecondsToSimTime(0.4));
  EXPECT_EQ(disk.writes_completed(), 0u);
  disk.DrainUntil(SecondsToSimTime(1.0));
  EXPECT_EQ(disk.writes_completed(), 1u);
  EXPECT_EQ(disk.bytes_written(), 500'000u);
}

TEST(DiskTest, QueueFillsAndBackpressures) {
  DiskModel::Params params;
  params.bytes_per_sec = 1000;  // very slow
  params.stall_probability = 0;
  params.queue_capacity = 4;
  DiskModel disk(params, 1);
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(disk.HasSpace(0));
    disk.Write(0, 10000);
  }
  EXPECT_FALSE(disk.HasSpace(0));
  SimTime free_at = disk.NextSlotFreeTime(0);
  EXPECT_GT(free_at, 0);
}

TEST(DiskTest, StallsOccurWithHeavyTail) {
  DiskModel::Params params;
  params.bytes_per_sec = 1e9;
  params.stall_probability = 0.5;
  DiskModel disk(params, 99);
  for (int i = 0; i < 200; ++i) {
    disk.DrainUntil(SecondsToSimTime(i * 10.0));
    if (disk.HasSpace(SecondsToSimTime(i * 10.0))) {
      disk.Write(SecondsToSimTime(i * 10.0), 1000);
    }
  }
  disk.DrainUntil(SecondsToSimTime(10000));
  EXPECT_GT(disk.stalls(), 0u);
}

TEST(HostTest, ProcessesWhenIdle) {
  uint64_t completed = 0;
  HostModel::Params params;
  params.interrupt_cost_seconds = 1e-6;
  HostModel host(params, [&completed](const UserJob&, SimTime t) {
    ++completed;
    return t;
  });
  // One packet per millisecond, 10 us of user work each: trivial load.
  for (int i = 0; i < 100; ++i) {
    UserJob job;
    job.remaining = CostToNanos(10e-6);
    EXPECT_TRUE(host.OnPacketArrival(i * kNanosPerMilli, job));
  }
  host.RunUserUntil(SecondsToSimTime(1));
  EXPECT_EQ(completed, 100u);
  EXPECT_EQ(host.ring_drops(), 0u);
}

TEST(HostTest, InterruptLivelockStarvesUserWork) {
  uint64_t completed = 0;
  HostModel::Params params;
  params.interrupt_cost_seconds = 6e-6;
  params.ring_capacity = 64;
  HostModel host(params, [&completed](const UserJob&, SimTime t) {
    ++completed;
    return t;
  });
  // 200k packets/sec * 6 us = 1.2 CPUs of pure interrupt load: the user
  // process starves and the ring overflows (livelock).
  SimTime gap = CostToNanos(5e-6);
  for (int i = 0; i < 100000; ++i) {
    UserJob job;
    job.remaining = CostToNanos(1e-6);
    host.OnPacketArrival(i * gap, job);
  }
  EXPECT_GT(host.ring_drops(), 90000u);
  EXPECT_GT(host.InterruptLoad(100000 * gap), 1.0);
}

TEST(HostTest, BlockingCompletionDelaysQueue) {
  HostModel::Params params;
  params.interrupt_cost_seconds = 1e-9;
  params.ring_capacity = 8;
  SimTime block_until = SecondsToSimTime(100);
  HostModel host(params, [block_until](const UserJob&, SimTime t) {
    return std::max(t, block_until);  // first completion blocks for ages
  });
  for (int i = 0; i < 20; ++i) {
    UserJob job;
    job.remaining = 1;
    host.OnPacketArrival(i * kNanosPerMilli, job);
  }
  // 1 job completes (and blocks); capacity 8 fills; the rest drop.
  EXPECT_GT(host.ring_drops(), 0u);
}

TEST(NicTest, PlainDmaForwardsEverything) {
  NicModel nic;
  net::Packet packet;
  packet.bytes = {1, 2, 3, 4};
  packet.orig_len = 4;
  SimTime deliver_at = 0;
  EXPECT_EQ(nic.Offer(100, &packet, &deliver_at),
            NicModel::Disposition::kForwarded);
  EXPECT_EQ(deliver_at, 100);
}

TEST(NicTest, OnboardFilterConsumesRejected) {
  bpf::Program filter = bpf::BuildTcpDstPortFilter(80, 0);
  NicModel::Params params;
  params.filter_cost_seconds = 1e-6;
  NicModel nic(params, &filter);

  net::TcpPacketSpec spec;
  spec.dst_port = 443;
  net::Packet packet;
  packet.bytes = net::BuildTcpPacket(spec);
  packet.orig_len = static_cast<uint32_t>(packet.bytes.size());
  SimTime deliver_at = 0;
  EXPECT_EQ(nic.Offer(0, &packet, &deliver_at),
            NicModel::Disposition::kFiltered);

  spec.dst_port = 80;
  packet.bytes = net::BuildTcpPacket(spec);
  packet.orig_len = static_cast<uint32_t>(packet.bytes.size());
  EXPECT_EQ(nic.Offer(10, &packet, &deliver_at),
            NicModel::Disposition::kForwarded);
  EXPECT_GT(deliver_at, 10);  // processing delay
}

TEST(NicTest, FifoOverflowDrops) {
  bpf::Program filter = bpf::BuildAcceptAll(0);
  NicModel::Params params;
  params.filter_cost_seconds = 1e-3;  // absurdly slow NIC processor
  params.fifo_capacity = 4;
  NicModel nic(params, &filter);
  net::Packet packet;
  packet.bytes = {1};
  packet.orig_len = 1;
  SimTime deliver_at;
  int dropped = 0;
  for (int i = 0; i < 20; ++i) {
    net::Packet p = packet;
    if (nic.Offer(i, &p, &deliver_at) == NicModel::Disposition::kDropped) {
      ++dropped;
    }
  }
  EXPECT_GT(dropped, 10);
}

// --- End-to-end capture pipeline (E1's building block) ---

PipelineConfig BaseConfig() {
  PipelineConfig config;
  config.traffic.seed = 7;
  config.traffic.num_flows = 500;
  config.traffic.offered_bits_per_sec = 50e6;
  config.traffic.port80_fraction = 0.2;
  config.traffic.http_fraction = 0.6;
  config.duration_seconds = 0.3;
  return config;
}

TEST(PipelineTest, LowRateNoLossInAllModes) {
  for (CaptureMode mode :
       {CaptureMode::kDiskDump, CaptureMode::kPcapDiscard,
        CaptureMode::kHostLfta, CaptureMode::kNicLfta}) {
    PipelineConfig config = BaseConfig();
    config.mode = mode;
    PipelineStats stats = RunCapturePipeline(config);
    EXPECT_GT(stats.offered_packets, 100u);
    EXPECT_LT(stats.LossRate(), 0.02)
        << "mode " << CaptureModeName(mode) << " lossy at low rate";
  }
}

TEST(PipelineTest, HttpFractionMeasuredCloseToConfigured) {
  PipelineConfig config = BaseConfig();
  config.mode = CaptureMode::kHostLfta;
  PipelineStats stats = RunCapturePipeline(config);
  EXPECT_GT(stats.port80_packets, 50u);
  EXPECT_NEAR(stats.HttpFraction(), 0.6, 0.15);
}

TEST(PipelineTest, NicModeFiltersBackgroundBeforeHost) {
  PipelineConfig config = BaseConfig();
  config.mode = CaptureMode::kNicLfta;
  PipelineStats stats = RunCapturePipeline(config);
  // ~80% of traffic is background and must be consumed on the NIC.
  EXPECT_GT(stats.nic_filtered, stats.offered_packets / 2);
  EXPECT_LT(stats.host_interrupts, stats.offered_packets / 2);
}

TEST(PipelineTest, DiskModeLosesFirstUnderLoad) {
  PipelineConfig disk_config = BaseConfig();
  disk_config.traffic.offered_bits_per_sec = 300e6;
  disk_config.mode = CaptureMode::kDiskDump;
  PipelineStats disk_stats = RunCapturePipeline(disk_config);

  PipelineConfig pcap_config = disk_config;
  pcap_config.mode = CaptureMode::kPcapDiscard;
  PipelineStats pcap_stats = RunCapturePipeline(pcap_config);

  EXPECT_GT(disk_stats.LossRate(), pcap_stats.LossRate());
  EXPECT_GT(disk_stats.LossRate(), 0.02);
}

TEST(PipelineTest, FindMaxSustainedRateMonotoneSetup) {
  PipelineConfig config = BaseConfig();
  config.mode = CaptureMode::kPcapDiscard;
  config.duration_seconds = 0.2;
  std::vector<double> rates = {50e6, 100e6, 200e6, 400e6, 600e6, 800e6};
  double max_rate = FindMaxSustainedRate(config, rates, 0.02);
  EXPECT_GE(max_rate, 50e6);
  EXPECT_LT(max_rate, 800e6);  // livelock must bite before 800 Mbit/s
}

}  // namespace
}  // namespace gigascope::sim
