#include <gtest/gtest.h>

#include "bpf/interpreter.h"
#include "bpf/verifier.h"
#include "gsql/parser.h"
#include "net/headers.h"
#include "plan/splitter.h"
#include "udf/registry.h"

namespace gigascope::plan {
namespace {

using gsql::DataType;

class SplitterTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(
        catalog_.AddSchema(gsql::Catalog::BuiltinPacketSchema()).ok());
    catalog_.AddInterface("eth0");
    options_.resolver = udf::FunctionRegistry::Default();
  }

  Result<SplitQuery> Split(std::string_view query) {
    auto stmt = gsql::ParseStatement(query);
    if (!stmt.ok()) return stmt.status();
    auto* select = std::get_if<gsql::SelectStmt>(&stmt.value());
    auto resolved = gsql::AnalyzeSelect(*select, catalog_);
    if (!resolved.ok()) return resolved.status();
    auto planned = PlanSelect(*resolved, options_);
    if (!planned.ok()) return planned.status();
    return SplitPlan(*planned);
  }

  gsql::Catalog catalog_;
  PlannerOptions options_;
};

TEST_F(SplitterTest, SimpleQueryRunsEntirelyAsLfta) {
  // §3: "a simple query can execute entirely as an LFTA".
  auto split = Split(
      "DEFINE { query_name tcpdest0; } "
      "SELECT destIP, destPort, time FROM eth0.PKT "
      "WHERE ipVersion = 4 AND protocol = 6");
  ASSERT_TRUE(split.ok()) << split.status().ToString();
  EXPECT_NE(split->lfta, nullptr);
  EXPECT_EQ(split->hfta, nullptr);
  EXPECT_EQ(split->lfta_name, "tcpdest0_lfta");
}

TEST_F(SplitterTest, ExpensivePredicateSplits) {
  // The §4 HTTP query: the port filter is LFTA work, the regex is not.
  auto split = Split(
      "DEFINE { query_name http; } "
      "SELECT time, len FROM eth0.PKT "
      "WHERE protocol = 6 AND destPort = 80 "
      "AND match_regex(payload, '^[^\\n]*HTTP/1.*')");
  ASSERT_TRUE(split.ok()) << split.status().ToString();
  ASSERT_NE(split->lfta, nullptr);
  ASSERT_NE(split->hfta, nullptr);
  // LFTA: filter (cheap conjuncts) + projection of needed fields.
  EXPECT_EQ(split->lfta->kind, PlanKind::kSelectProject);
  ASSERT_NE(split->lfta->predicate, nullptr);
  std::string lfta_pred = split->lfta->predicate->ToString();
  EXPECT_NE(lfta_pred.find("destPort"), std::string::npos);
  EXPECT_EQ(lfta_pred.find("match_regex"), std::string::npos);
  // HFTA: the regex.
  ASSERT_NE(split->hfta->predicate, nullptr);
  EXPECT_NE(split->hfta->predicate->ToString().find("match_regex"),
            std::string::npos);
  // The LFTA stream carries the payload for the HFTA's regex.
  EXPECT_TRUE(split->lfta_schema.FieldIndex("payload").has_value());
  // Payload referenced: full packets required.
  EXPECT_EQ(split->snap_len, 0u);
}

TEST_F(SplitterTest, AggregateQuerySplitsIntoSubAndSuper) {
  auto split = Split(
      "DEFINE { query_name counts; } "
      "SELECT tb, destIP, count(*), sum(len) FROM eth0.PKT "
      "WHERE protocol = 6 GROUP BY time/60 AS tb, destIP");
  ASSERT_TRUE(split.ok()) << split.status().ToString();
  EXPECT_TRUE(split->split_aggregation);
  ASSERT_NE(split->lfta, nullptr);
  ASSERT_NE(split->hfta, nullptr);
  // LFTA side: Aggregate over the (filtered) source.
  EXPECT_EQ(split->lfta->kind, PlanKind::kAggregate);
  // HFTA side: final projection over the superaggregate.
  ASSERT_EQ(split->hfta->kind, PlanKind::kSelectProject);
  const PlanPtr& super = split->hfta->children[0];
  ASSERT_EQ(super->kind, PlanKind::kAggregate);
  // Superaggregates: COUNT re-aggregates as SUM; SUM stays SUM.
  ASSERT_EQ(super->aggregates.size(), 2u);
  EXPECT_EQ(super->aggregates[0].fn, expr::AggFn::kSum);
  EXPECT_EQ(super->aggregates[1].fn, expr::AggFn::kSum);
  // Types survive re-aggregation.
  EXPECT_EQ(super->output_schema.fields().back().type, DataType::kUint);
}

TEST_F(SplitterTest, ExpensiveGroupKeyKeepsAggregationInHfta) {
  // The paper's getlpmid query: the prefix-match key cannot run in the
  // LFTA, so only filtering/projection is pushed down.
  auto split = Split(
      "DEFINE { query_name peers; } "
      "SELECT peerid, tb, count(*) FROM eth0.PKT "
      "GROUP BY time/60 AS tb, "
      "getlpmid(destIP, 'inline:10.0.0.0/8 1') AS peerid");
  ASSERT_TRUE(split.ok()) << split.status().ToString();
  EXPECT_FALSE(split->split_aggregation);
  ASSERT_NE(split->lfta, nullptr);
  EXPECT_EQ(split->lfta->kind, PlanKind::kSelectProject);
  // The aggregation lives in the HFTA.
  ASSERT_NE(split->hfta, nullptr);
  bool found_aggregate = false;
  for (PlanPtr node = split->hfta; node != nullptr;
       node = node->children.empty() ? nullptr : node->children[0]) {
    if (node->kind == PlanKind::kAggregate) {
      found_aggregate = true;
      break;
    }
  }
  EXPECT_TRUE(found_aggregate);
}

TEST_F(SplitterTest, StreamScanHasNoLfta) {
  std::vector<gsql::FieldDef> fields;
  fields.push_back({"t", DataType::kUint, gsql::OrderSpec::Increasing()});
  catalog_.PutStreamSchema(
      gsql::StreamSchema("upstream", gsql::StreamKind::kStream, fields));
  auto split = Split("SELECT t FROM upstream WHERE t > 5");
  ASSERT_TRUE(split.ok()) << split.status().ToString();
  EXPECT_EQ(split->lfta, nullptr);
  EXPECT_NE(split->hfta, nullptr);
}

TEST_F(SplitterTest, HeaderOnlyQueryGetsHeaderSnapLen) {
  auto split = Split(
      "SELECT destIP, time FROM eth0.PKT WHERE protocol = 6");
  ASSERT_TRUE(split.ok());
  EXPECT_GT(split->snap_len, 0u);
  EXPECT_LE(split->snap_len, 256u);
}

TEST_F(SplitterTest, NicProgramForPaperFilter) {
  auto split = Split(
      "SELECT time FROM eth0.PKT "
      "WHERE ipVersion = 4 AND protocol = 6 AND destPort = 80");
  ASSERT_TRUE(split.ok()) << split.status().ToString();
  ASSERT_TRUE(split->has_nic_program);
  ASSERT_TRUE(bpf::Verify(split->nic_program).ok())
      << split->nic_program.ToString();

  // The generated program behaves like the handwritten port-80 filter.
  net::TcpPacketSpec spec;
  spec.dst_port = 80;
  ByteBuffer match = net::BuildTcpPacket(spec);
  EXPECT_TRUE(bpf::Matches(split->nic_program,
                           ByteSpan(match.data(), match.size())));
  spec.dst_port = 443;
  ByteBuffer no_match = net::BuildTcpPacket(spec);
  EXPECT_FALSE(bpf::Matches(split->nic_program,
                            ByteSpan(no_match.data(), no_match.size())));
}

TEST_F(SplitterTest, NicProgramIsSupersetNotExact) {
  // len > 100 is not BPF-pushable; the NIC program must still accept
  // everything the LFTA predicate accepts.
  auto split = Split(
      "SELECT time FROM eth0.PKT "
      "WHERE ipVersion = 4 AND protocol = 17 AND len > 100");
  ASSERT_TRUE(split.ok());
  ASSERT_TRUE(split->has_nic_program);
  net::UdpPacketSpec spec;
  spec.payload = std::string(200, 'x');
  ByteBuffer big = net::BuildUdpPacket(spec);
  EXPECT_TRUE(
      bpf::Matches(split->nic_program, ByteSpan(big.data(), big.size())));
  // Small packets also pass the NIC (len check happens in the LFTA).
  spec.payload = "s";
  ByteBuffer small = net::BuildUdpPacket(spec);
  EXPECT_TRUE(
      bpf::Matches(split->nic_program, ByteSpan(small.data(), small.size())));
}

TEST_F(SplitterTest, NoNicProgramWithoutIpVersionGuard) {
  // destPort=80 alone cannot compile to BPF safely without knowing the
  // packet is IPv4/TCP, and no ipVersion conjunct exists.
  auto split = Split("SELECT time FROM eth0.PKT WHERE destPort = 80");
  ASSERT_TRUE(split.ok());
  EXPECT_FALSE(split->has_nic_program);
}

TEST_F(SplitterTest, IpEqualityPushable) {
  auto split = Split(
      "SELECT time FROM eth0.PKT "
      "WHERE ipVersion = 4 AND destIP = 10.0.0.2");
  ASSERT_TRUE(split.ok());
  ASSERT_TRUE(split->has_nic_program);
  net::TcpPacketSpec spec;
  spec.dst_addr = 0x0a000002;
  ByteBuffer match = net::BuildTcpPacket(spec);
  EXPECT_TRUE(bpf::Matches(split->nic_program,
                           ByteSpan(match.data(), match.size())));
  spec.dst_addr = 0x0a000003;
  ByteBuffer no_match = net::BuildTcpPacket(spec);
  EXPECT_FALSE(bpf::Matches(split->nic_program,
                            ByteSpan(no_match.data(), no_match.size())));
}

}  // namespace
}  // namespace gigascope::plan
