#include <gtest/gtest.h>

#include "gsql/parser.h"

namespace gigascope::gsql {
namespace {

Statement MustParse(std::string_view source) {
  auto result = ParseStatement(source);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return result.ok() ? std::move(result).value() : Statement{};
}

TEST(ParserTest, SimpleSelect) {
  Statement stmt = MustParse(
      "SELECT destIP, destPort, time FROM eth0.PKT "
      "WHERE ipVersion = 4 AND protocol = 6");
  auto* select = std::get_if<SelectStmt>(&stmt);
  ASSERT_NE(select, nullptr);
  EXPECT_EQ(select->items.size(), 3u);
  ASSERT_EQ(select->from.size(), 1u);
  EXPECT_EQ(select->from[0].interface_name, "eth0");
  EXPECT_EQ(select->from[0].stream_name, "PKT");
  ASSERT_NE(select->where, nullptr);
  EXPECT_EQ(select->where->ToString(),
            "((ipVersion = 4) AND (protocol = 6))");
}

TEST(ParserTest, DefineBlockBraced) {
  Statement stmt = MustParse(
      "DEFINE { query_name tcpdest0; } SELECT time FROM PKT");
  auto* select = std::get_if<SelectStmt>(&stmt);
  ASSERT_NE(select, nullptr);
  EXPECT_EQ(select->define.query_name, "tcpdest0");
}

TEST(ParserTest, DefinePaperStyle) {
  // The paper writes "DEFINE query name tcpdest0;".
  Statement stmt = MustParse(
      "DEFINE query name tcpdest0; SELECT time FROM PKT");
  auto* select = std::get_if<SelectStmt>(&stmt);
  ASSERT_NE(select, nullptr);
  EXPECT_EQ(select->define.query_name, "tcpdest0");
}

TEST(ParserTest, DefineWithParams) {
  Statement stmt = MustParse(
      "DEFINE { query_name q; param threshold UINT = 100; param label "
      "STRING; } SELECT time FROM PKT WHERE len > $threshold");
  auto* select = std::get_if<SelectStmt>(&stmt);
  ASSERT_NE(select, nullptr);
  ASSERT_EQ(select->define.params.size(), 2u);
  EXPECT_EQ(select->define.params[0].name, "threshold");
  EXPECT_EQ(select->define.params[0].type, DataType::kUint);
  ASSERT_NE(select->define.params[0].default_value, nullptr);
  EXPECT_EQ(select->define.params[1].name, "label");
  EXPECT_EQ(select->define.params[1].default_value, nullptr);
}

TEST(ParserTest, GroupByWithAliases) {
  // The paper's getlpmid example shape.
  Statement stmt = MustParse(
      "SELECT peerid, tb, count(*) FROM tcpdest "
      "GROUP BY time/60 AS tb, getlpmid(destIP, 'peers.tbl') AS peerid");
  auto* select = std::get_if<SelectStmt>(&stmt);
  ASSERT_NE(select, nullptr);
  ASSERT_EQ(select->group_by.size(), 2u);
  EXPECT_EQ(select->group_by[0].alias, "tb");
  EXPECT_EQ(select->group_by[0].expr->ToString(), "(time / 60)");
  EXPECT_EQ(select->group_by[1].alias, "peerid");
  EXPECT_EQ(select->group_by[1].expr->ToString(),
            "getlpmid(destIP, 'peers.tbl')");
}

TEST(ParserTest, CountStar) {
  Statement stmt = MustParse("SELECT count(*) FROM PKT GROUP BY time");
  auto* select = std::get_if<SelectStmt>(&stmt);
  ASSERT_NE(select, nullptr);
  auto* call = std::get_if<CallExpr>(&select->items[0].expr->node);
  ASSERT_NE(call, nullptr);
  EXPECT_EQ(call->function, "count");
  EXPECT_TRUE(call->star);
}

TEST(ParserTest, Having) {
  Statement stmt = MustParse(
      "SELECT destIP, count(*) AS c FROM PKT GROUP BY time, destIP "
      "HAVING count(*) > 100");
  auto* select = std::get_if<SelectStmt>(&stmt);
  ASSERT_NE(select, nullptr);
  ASSERT_NE(select->having, nullptr);
  EXPECT_EQ(select->having->ToString(), "(count(*) > 100)");
}

TEST(ParserTest, TwoStreamJoin) {
  Statement stmt = MustParse(
      "SELECT B.time FROM lhs B, rhs C "
      "WHERE B.time >= C.time - 1 AND B.time <= C.time + 1");
  auto* select = std::get_if<SelectStmt>(&stmt);
  ASSERT_NE(select, nullptr);
  ASSERT_EQ(select->from.size(), 2u);
  EXPECT_EQ(select->from[0].stream_name, "lhs");
  EXPECT_EQ(select->from[0].alias, "B");
  EXPECT_EQ(select->from[1].alias, "C");
}

TEST(ParserTest, ThreeStreamJoinRejected) {
  EXPECT_FALSE(ParseStatement("SELECT x FROM a, b, c").ok());
}

TEST(ParserTest, MergePaperSyntax) {
  Statement stmt = MustParse(
      "DEFINE { query_name tcpdest; } "
      "MERGE tcpdest0.time : tcpdest1.time FROM tcpdest0, tcpdest1");
  auto* merge = std::get_if<MergeStmt>(&stmt);
  ASSERT_NE(merge, nullptr);
  EXPECT_EQ(merge->define.query_name, "tcpdest");
  ASSERT_EQ(merge->merge_columns.size(), 2u);
  EXPECT_EQ(merge->merge_columns[0].stream, "tcpdest0");
  EXPECT_EQ(merge->merge_columns[0].column, "time");
  ASSERT_EQ(merge->from.size(), 2u);
}

TEST(ParserTest, CreateProtocolWithOrdering) {
  Statement stmt = MustParse(
      "CREATE PROTOCOL FLOW ("
      "  endTime UINT INCREASING,"
      "  startTime UINT BANDED INCREASING(30),"
      "  seq UINT STRICTLY INCREASING,"
      "  hash UINT NONREPEATING,"
      "  flowTime UINT INCREASING IN GROUP(srcIP, destIP),"
      "  srcIP IP, destIP IP,"
      "  note STRING)");
  auto* create = std::get_if<CreateStmt>(&stmt);
  ASSERT_NE(create, nullptr);
  const StreamSchema& schema = create->schema;
  EXPECT_EQ(schema.name(), "FLOW");
  EXPECT_EQ(schema.kind(), StreamKind::kProtocol);
  EXPECT_EQ(schema.field(0).order.kind, OrderKind::kIncreasing);
  EXPECT_EQ(schema.field(1).order.kind, OrderKind::kBandedIncreasing);
  EXPECT_EQ(schema.field(1).order.band, 30u);
  EXPECT_EQ(schema.field(2).order.kind, OrderKind::kStrictlyIncreasing);
  EXPECT_EQ(schema.field(3).order.kind, OrderKind::kNonRepeating);
  EXPECT_EQ(schema.field(4).order.kind, OrderKind::kIncreasingInGroup);
  EXPECT_EQ(schema.field(4).order.group_fields,
            (std::vector<std::string>{"srcIP", "destIP"}));
  EXPECT_EQ(schema.field(7).type, DataType::kString);
}

TEST(ParserTest, CreateStream) {
  Statement stmt = MustParse("CREATE STREAM S (t UINT INCREASING, v FLOAT)");
  auto* create = std::get_if<CreateStmt>(&stmt);
  ASSERT_NE(create, nullptr);
  EXPECT_EQ(create->schema.kind(), StreamKind::kStream);
}

TEST(ParserTest, DdlRejectsOrderedString) {
  EXPECT_FALSE(
      ParseStatement("CREATE PROTOCOL P (s STRING INCREASING)").ok());
}

TEST(ParserTest, DdlRejectsDuplicateField) {
  EXPECT_FALSE(ParseStatement("CREATE PROTOCOL P (a INT, a INT)").ok());
}

TEST(ParserTest, ExpressionPrecedence) {
  Statement stmt = MustParse("SELECT a + b * c - d / e FROM PKT");
  auto* select = std::get_if<SelectStmt>(&stmt);
  ASSERT_NE(select, nullptr);
  EXPECT_EQ(select->items[0].expr->ToString(),
            "((a + (b * c)) - (d / e))");
}

TEST(ParserTest, LogicalPrecedence) {
  Statement stmt = MustParse("SELECT x FROM PKT WHERE a = 1 OR b = 2 AND c = 3");
  auto* select = std::get_if<SelectStmt>(&stmt);
  ASSERT_NE(select, nullptr);
  EXPECT_EQ(select->where->ToString(),
            "((a = 1) OR ((b = 2) AND (c = 3)))");
}

TEST(ParserTest, NotAndUnaryMinus) {
  Statement stmt = MustParse("SELECT x FROM PKT WHERE NOT a = -1");
  auto* select = std::get_if<SelectStmt>(&stmt);
  ASSERT_NE(select, nullptr);
  EXPECT_EQ(select->where->ToString(), "NOT (a = -1)");
}

TEST(ParserTest, IpLiteralInPredicate) {
  Statement stmt = MustParse("SELECT x FROM PKT WHERE destIP = 10.0.0.1");
  auto* select = std::get_if<SelectStmt>(&stmt);
  ASSERT_NE(select, nullptr);
  EXPECT_EQ(select->where->ToString(), "(destIP = 10.0.0.1)");
}

TEST(ParserTest, MultiStatementProgram) {
  auto program = Parse(
      "CREATE PROTOCOL A (t UINT INCREASING);"
      "SELECT t FROM A;"
      "SELECT t FROM A");
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  EXPECT_EQ(program->statements.size(), 3u);
}

TEST(ParserTest, EmptyProgramIsError) {
  EXPECT_FALSE(Parse("").ok());
  EXPECT_FALSE(Parse("  -- just a comment").ok());
}

TEST(ParserTest, GarbageIsError) {
  EXPECT_FALSE(ParseStatement("FROBNICATE ALL THE THINGS").ok());
  EXPECT_FALSE(ParseStatement("SELECT FROM").ok());
  EXPECT_FALSE(ParseStatement("SELECT x FROM").ok());
  EXPECT_FALSE(ParseStatement("SELECT x").ok());
}

TEST(ParserTest, ErrorsIncludePosition) {
  auto result = ParseStatement("SELECT x\nFROM ???");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("line 2"), std::string::npos);
}

}  // namespace
}  // namespace gigascope::gsql
