#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>

#include "expr/cost.h"
#include "expr/fold.h"
#include "expr/typecheck.h"
#include "expr/vm.h"
#include "gsql/parser.h"
#include "udf/registry.h"

namespace gigascope::expr {
namespace {

using gsql::DataType;
using gsql::FieldDef;
using gsql::OrderSpec;
using gsql::StreamKind;
using gsql::StreamSchema;

StreamSchema TestSchema() {
  std::vector<FieldDef> fields;
  fields.push_back({"t", DataType::kUint, OrderSpec::Increasing()});
  fields.push_back({"i", DataType::kInt, OrderSpec::None()});
  fields.push_back({"f", DataType::kFloat, OrderSpec::None()});
  fields.push_back({"addr", DataType::kIp, OrderSpec::None()});
  fields.push_back({"s", DataType::kString, OrderSpec::None()});
  fields.push_back({"b", DataType::kBool, OrderSpec::None()});
  return StreamSchema("T", StreamKind::kStream, fields);
}

/// Compiles `expression` over TestSchema with optional params, evaluates it
/// on `row`, and returns the output.
class ExprHarness {
 public:
  explicit ExprHarness(
      std::vector<std::pair<std::string, DataType>> params = {}) {
    catalog_.PutStreamSchema(TestSchema());
    ctx_.params = std::move(params);
    ctx_.resolver = udf::FunctionRegistry::Default();
  }

  Result<IrPtr> ToIr(const std::string& expression) {
    auto stmt = gsql::ParseStatement("SELECT " + expression + " FROM T");
    if (!stmt.ok()) return stmt.status();
    auto* select = std::get_if<gsql::SelectStmt>(&stmt.value());
    resolved_ = gsql::AnalyzeSelect(*select, catalog_);
    if (!resolved_->ok()) return resolved_->status();
    ctx_.inputs = {TestSchema()};
    ctx_.bindings = &(*resolved_)->bindings;
    return TypeCheck((*resolved_)->stmt.items[0].expr, ctx_);
  }

  Result<Value> EvalOn(const std::string& expression,
                       const std::vector<Value>& row,
                       const std::vector<Value>& param_values = {}) {
    GS_ASSIGN_OR_RETURN(IrPtr ir, ToIr(expression));
    ir = FoldConstants(ir);
    GS_ASSIGN_OR_RETURN(CompiledExpr compiled, Compile(ir, param_values));
    EvalContext ctx;
    ctx.row0 = &row;
    ctx.params = &param_values;
    EvalOutput out;
    GS_RETURN_IF_ERROR(Eval(compiled, ctx, &out));
    if (!out.has_value) return Status::NotFound("no value (partial miss)");
    return out.value;
  }

 private:
  gsql::Catalog catalog_;
  TypeCheckContext ctx_;
  std::optional<Result<gsql::ResolvedSelect>> resolved_;
};

std::vector<Value> SampleRow() {
  return {Value::Uint(120), Value::Int(-3), Value::Float(2.5),
          Value::Ip(0x0a000001), Value::String("HTTP/1.1 200 OK"),
          Value::Bool(true)};
}

TEST(ValueTest, CompareAndHash) {
  EXPECT_EQ(Value::Int(3).Compare(Value::Int(5)), -1);
  EXPECT_EQ(Value::Uint(9).Compare(Value::Uint(9)), 0);
  EXPECT_EQ(Value::Float(2.0).Compare(Value::Float(1.0)), 1);
  EXPECT_EQ(Value::String("a").Compare(Value::String("b")), -1);
  EXPECT_EQ(Value::Int(3).Hash(), Value::Int(3).Hash());
  EXPECT_NE(Value::Int(3).Hash(), Value::Int(4).Hash());
}

TEST(ValueTest, ToStringFormats) {
  EXPECT_EQ(Value::Int(-7).ToString(), "-7");
  EXPECT_EQ(Value::Uint(7).ToString(), "7");
  EXPECT_EQ(Value::Bool(true).ToString(), "true");
  EXPECT_EQ(Value::Ip(0x0a000001).ToString(), "10.0.0.1");
  EXPECT_EQ(Value::String("hi").ToString(), "hi");
}

TEST(ValueTest, CastWidenings) {
  auto to_float = CastValue(Value::Int(3), DataType::kFloat);
  ASSERT_TRUE(to_float.ok());
  EXPECT_DOUBLE_EQ(to_float->float_value(), 3.0);
  auto ip_to_uint = CastValue(Value::Ip(0x01020304), DataType::kUint);
  ASSERT_TRUE(ip_to_uint.ok());
  EXPECT_EQ(ip_to_uint->uint_value(), 0x01020304u);
  EXPECT_FALSE(CastValue(Value::String("x"), DataType::kInt).ok());
}

TEST(TypeCheckTest, ArithmeticPromotion) {
  ExprHarness harness;
  auto ir = harness.ToIr("i + f");
  ASSERT_TRUE(ir.ok()) << ir.status().ToString();
  EXPECT_EQ((*ir)->type, DataType::kFloat);
  ir = harness.ToIr("t + i");
  ASSERT_TRUE(ir.ok());
  EXPECT_EQ((*ir)->type, DataType::kUint);
}

TEST(TypeCheckTest, ComparisonsYieldBool) {
  ExprHarness harness;
  auto ir = harness.ToIr("t > 100");
  ASSERT_TRUE(ir.ok());
  EXPECT_EQ((*ir)->type, DataType::kBool);
}

TEST(TypeCheckTest, StringNumericComparisonRejected) {
  ExprHarness harness;
  EXPECT_FALSE(harness.ToIr("s = 5").ok());
}

TEST(TypeCheckTest, LogicRequiresBool) {
  ExprHarness harness;
  EXPECT_FALSE(harness.ToIr("t AND b").ok());
  EXPECT_TRUE(harness.ToIr("b AND t > 5").ok());
}

TEST(TypeCheckTest, ModRequiresIntegers) {
  ExprHarness harness;
  EXPECT_FALSE(harness.ToIr("f % 2").ok());
  EXPECT_TRUE(harness.ToIr("t % 2").ok());
}

TEST(TypeCheckTest, UndeclaredParamRejected) {
  ExprHarness harness;
  EXPECT_FALSE(harness.ToIr("t > $missing").ok());
}

TEST(TypeCheckTest, UnknownFunctionRejected) {
  ExprHarness harness;
  EXPECT_FALSE(harness.ToIr("frobnicate(t)").ok());
}

TEST(EvalTest, Arithmetic) {
  ExprHarness harness;
  auto v = harness.EvalOn("t * 2 + 10", SampleRow());
  ASSERT_TRUE(v.ok()) << v.status().ToString();
  EXPECT_EQ(v->uint_value(), 250u);
}

TEST(EvalTest, IntegerBucketing) {
  ExprHarness harness;
  auto v = harness.EvalOn("t / 60", SampleRow());
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->uint_value(), 2u);  // 120 / 60
}

TEST(EvalTest, SignedArithmetic) {
  ExprHarness harness;
  auto v = harness.EvalOn("i - 4", SampleRow());
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->int_value(), -7);
}

TEST(EvalTest, FloatArithmetic) {
  ExprHarness harness;
  auto v = harness.EvalOn("f * 4", SampleRow());
  ASSERT_TRUE(v.ok());
  EXPECT_DOUBLE_EQ(v->float_value(), 10.0);
}

TEST(EvalTest, DivisionByZeroIsRuntimeError) {
  ExprHarness harness;
  auto v = harness.EvalOn("t / (i + 3)", SampleRow());  // i+3 == 0
  EXPECT_FALSE(v.ok());
}

std::vector<Value> RowWithInt(int64_t i) {
  std::vector<Value> row = SampleRow();
  row[1] = Value::Int(i);
  return row;
}

// Evaluation semantics the native tier's generated C++ must mirror exactly
// (DESIGN.md §15): division edge cases are counted runtime errors, never
// UB, and signed overflow wraps two's-complement.

TEST(EvalTest, ModuloByZeroIsRuntimeError) {
  ExprHarness harness;
  auto v = harness.EvalOn("i % (i + 3)", RowWithInt(-3));
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.status().message(), "modulo by zero");
}

TEST(EvalTest, IntMinDividedByMinusOneIsRuntimeError) {
  // INT64_MIN / -1 overflows (the quotient is INT64_MAX + 1); on most CPUs
  // the raw instruction traps, so the VM must catch it as an eval error.
  ExprHarness harness;
  auto v = harness.EvalOn("i / (0 - 1)", RowWithInt(INT64_MIN));
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.status().message(), "integer division overflow");
  v = harness.EvalOn("i % (0 - 1)", RowWithInt(INT64_MIN));
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.status().message(), "integer modulo overflow");
}

TEST(EvalTest, SignedOverflowWrapsTwosComplement) {
  ExprHarness harness;
  auto v = harness.EvalOn("i + 1", RowWithInt(INT64_MAX));
  ASSERT_TRUE(v.ok()) << v.status().ToString();
  EXPECT_EQ(v->int_value(), INT64_MIN);
  v = harness.EvalOn("i * 2", RowWithInt(INT64_MAX));
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->int_value(), -2);
  v = harness.EvalOn("i - 2", RowWithInt(INT64_MIN));
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->int_value(), INT64_MAX - 1);
  // Negating INT64_MIN wraps back to itself.
  v = harness.EvalOn("0 - i", RowWithInt(INT64_MIN));
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->int_value(), INT64_MIN);
}

TEST(ValueTest, SaturatingFloatToIntCasts) {
  EXPECT_EQ(SaturatingDoubleToInt64(std::nan("")), 0);
  EXPECT_EQ(SaturatingDoubleToInt64(1e300), INT64_MAX);
  EXPECT_EQ(SaturatingDoubleToInt64(-1e300), INT64_MIN);
  EXPECT_EQ(SaturatingDoubleToInt64(9.75), 9);
  EXPECT_EQ(SaturatingDoubleToInt64(-9.75), -9);
  EXPECT_EQ(SaturatingDoubleToUint64(std::nan("")), 0u);
  EXPECT_EQ(SaturatingDoubleToUint64(-1.0), 0u);
  EXPECT_EQ(SaturatingDoubleToUint64(1e300), UINT64_MAX);
  EXPECT_EQ(SaturatingDoubleToUint64(9.75), 9u);
  auto casted = CastValue(Value::Float(1e300), DataType::kInt);
  ASSERT_TRUE(casted.ok());
  EXPECT_EQ(casted->int_value(), INT64_MAX);
  casted = CastValue(Value::Float(-1.0), DataType::kUint);
  ASSERT_TRUE(casted.ok());
  EXPECT_EQ(casted->uint_value(), 0u);
}

TEST(EvalTest, ComparisonAndLogic) {
  ExprHarness harness;
  auto v = harness.EvalOn("t >= 120 AND NOT (i > 0)", SampleRow());
  ASSERT_TRUE(v.ok());
  EXPECT_TRUE(v->bool_value());
  v = harness.EvalOn("t < 120 OR i > 0", SampleRow());
  ASSERT_TRUE(v.ok());
  EXPECT_FALSE(v->bool_value());
}

TEST(EvalTest, BitwiseOps) {
  ExprHarness harness;
  auto v = harness.EvalOn("t & 15", SampleRow());
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->uint_value(), 8u);  // 120 & 15
  v = harness.EvalOn("t | 7", SampleRow());
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->uint_value(), 127u);
}

TEST(EvalTest, IpEquality) {
  ExprHarness harness;
  auto v = harness.EvalOn("addr = 10.0.0.1", SampleRow());
  ASSERT_TRUE(v.ok());
  EXPECT_TRUE(v->bool_value());
  v = harness.EvalOn("addr = 10.0.0.2", SampleRow());
  ASSERT_TRUE(v.ok());
  EXPECT_FALSE(v->bool_value());
}

TEST(EvalTest, StringEquality) {
  ExprHarness harness;
  auto v = harness.EvalOn("s = 'HTTP/1.1 200 OK'", SampleRow());
  ASSERT_TRUE(v.ok());
  EXPECT_TRUE(v->bool_value());
}

TEST(EvalTest, ParamsEvaluate) {
  ExprHarness harness({{"port", DataType::kUint}});
  auto v = harness.EvalOn("t > $port", SampleRow(), {Value::Uint(100)});
  ASSERT_TRUE(v.ok()) << v.status().ToString();
  EXPECT_TRUE(v->bool_value());
  v = harness.EvalOn("t > $port", SampleRow(), {Value::Uint(500)});
  ASSERT_TRUE(v.ok());
  EXPECT_FALSE(v->bool_value());
}

TEST(EvalTest, UdfCall) {
  ExprHarness harness;
  auto v = harness.EvalOn("str_len(s)", SampleRow());
  ASSERT_TRUE(v.ok()) << v.status().ToString();
  EXPECT_EQ(v->uint_value(), 15u);
}

TEST(EvalTest, UdfWithHandleArg) {
  ExprHarness harness;
  auto v = harness.EvalOn("match_regex(s, 'HTTP/1')", SampleRow());
  ASSERT_TRUE(v.ok()) << v.status().ToString();
  EXPECT_TRUE(v->bool_value());
}

TEST(EvalTest, PartialFunctionMissYieldsNoValue) {
  ExprHarness harness;
  // 10.0.0.1 is not covered by the 192.168/16 prefix: getlpmid misses.
  auto v = harness.EvalOn("getlpmid(addr, 'inline:192.168.0.0/16 7')",
                          SampleRow());
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), Status::Code::kNotFound);  // harness marker
}

TEST(EvalTest, PartialFunctionHit) {
  ExprHarness harness;
  auto v = harness.EvalOn("getlpmid(addr, 'inline:10.0.0.0/8 42')",
                          SampleRow());
  ASSERT_TRUE(v.ok()) << v.status().ToString();
  EXPECT_EQ(v->uint_value(), 42u);
}

TEST(FoldTest, FoldsConstantSubtrees) {
  ExprHarness harness;
  auto ir = harness.ToIr("t + (2 * 3 + 4)");
  ASSERT_TRUE(ir.ok());
  IrPtr folded = FoldConstants(*ir);
  // Right child of the top-level + must now be the constant 10.
  ASSERT_EQ(folded->kind, IrKind::kBinary);
  const IrPtr& right = folded->children[1];
  ASSERT_EQ(right->kind, IrKind::kConst);
  EXPECT_EQ(right->constant.uint_value(), 10u);
}

TEST(FoldTest, DoesNotFoldFieldsOrParams) {
  ExprHarness harness({{"p", DataType::kInt}});
  auto ir = harness.ToIr("t + $p");
  ASSERT_TRUE(ir.ok());
  IrPtr folded = FoldConstants(*ir);
  EXPECT_EQ(folded->kind, IrKind::kBinary);
}

TEST(FoldTest, KeepsRuntimeErrorSubtrees) {
  ExprHarness harness;
  auto ir = harness.ToIr("1 / 0");
  ASSERT_TRUE(ir.ok());
  IrPtr folded = FoldConstants(*ir);
  EXPECT_EQ(folded->kind, IrKind::kBinary);  // not folded
}

TEST(CostTest, CheapExpressionIsLftaSafe) {
  ExprHarness harness;
  auto ir = harness.ToIr("t / 60 + 1");
  ASSERT_TRUE(ir.ok());
  EXPECT_TRUE(IsLftaSafe(*ir));
}

TEST(CostTest, RegexIsNotLftaSafe) {
  ExprHarness harness;
  auto ir = harness.ToIr("match_regex(s, 'HTTP/1')");
  ASSERT_TRUE(ir.ok());
  EXPECT_FALSE(IsLftaSafe(*ir));
  EXPECT_GT(EstimateCost(*ir), kLftaCostBudget);
}

TEST(CostTest, LpmIsNotLftaSafe) {
  ExprHarness harness;
  auto ir = harness.ToIr("getlpmid(addr, 'inline:10.0.0.0/8 1')");
  ASSERT_TRUE(ir.ok());
  EXPECT_FALSE(IsLftaSafe(*ir));
}

TEST(CostTest, CheapUdfIsLftaSafe) {
  ExprHarness harness;
  auto ir = harness.ToIr("ip_in_subnet(addr, 10.0.0.0, 8)");
  ASSERT_TRUE(ir.ok()) << ir.status().ToString();
  EXPECT_TRUE(IsLftaSafe(*ir));
}

TEST(CodegenTest, DisassembleShowsInstructions) {
  ExprHarness harness;
  auto ir = harness.ToIr("t / 60");
  ASSERT_TRUE(ir.ok());
  auto compiled = Compile(*ir);
  ASSERT_TRUE(compiled.ok());
  std::string text = compiled->Disassemble();
  EXPECT_NE(text.find("load_field"), std::string::npos);
  EXPECT_NE(text.find("div"), std::string::npos);
}

TEST(CodegenTest, HandleArgMustBeLiteralOrParam) {
  ExprHarness harness;
  // Pattern argument computed from a field: rejected at type check.
  EXPECT_FALSE(harness.ToIr("match_regex(s, s)").ok());
}

}  // namespace
}  // namespace gigascope::expr
