#include <gtest/gtest.h>

#include "gsql/analyzer.h"
#include "gsql/parser.h"

namespace gigascope::gsql {
namespace {

class AnalyzerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(catalog_.AddSchema(Catalog::BuiltinPacketSchema()).ok());
    ASSERT_TRUE(catalog_.AddSchema(Catalog::BuiltinNetflowSchema()).ok());
    catalog_.AddInterface("eth0");
    catalog_.AddInterface("eth1");

    // A derived stream, as if produced by an upstream query.
    std::vector<FieldDef> fields;
    fields.push_back({"time", DataType::kUint, OrderSpec::Increasing()});
    fields.push_back({"destIP", DataType::kIp, OrderSpec::None()});
    fields.push_back({"destPort", DataType::kUint, OrderSpec::None()});
    catalog_.PutStreamSchema(
        StreamSchema("tcpdest0", StreamKind::kStream, fields));
    catalog_.PutStreamSchema(
        StreamSchema("tcpdest1", StreamKind::kStream, fields));
  }

  Result<ResolvedSelect> Analyze(std::string_view query) {
    auto stmt = ParseStatement(query);
    if (!stmt.ok()) return stmt.status();
    auto* select = std::get_if<SelectStmt>(&stmt.value());
    if (select == nullptr) return Status::Internal("not a select");
    return AnalyzeSelect(*select, catalog_);
  }

  Result<ResolvedMerge> AnalyzeM(std::string_view query) {
    auto stmt = ParseStatement(query);
    if (!stmt.ok()) return stmt.status();
    auto* merge = std::get_if<MergeStmt>(&stmt.value());
    if (merge == nullptr) return Status::Internal("not a merge");
    return AnalyzeMerge(*merge, catalog_);
  }

  Catalog catalog_;
};

TEST_F(AnalyzerTest, ResolvesProtocolWithInterface) {
  auto resolved = Analyze("SELECT destIP FROM eth1.PKT");
  ASSERT_TRUE(resolved.ok()) << resolved.status().ToString();
  ASSERT_EQ(resolved->inputs.size(), 1u);
  EXPECT_EQ(resolved->inputs[0].interface_name, "eth1");
}

TEST_F(AnalyzerTest, UnqualifiedProtocolGetsDefaultInterface) {
  auto resolved = Analyze("SELECT destIP FROM PKT");
  ASSERT_TRUE(resolved.ok());
  EXPECT_EQ(resolved->inputs[0].interface_name, "eth0");
}

TEST_F(AnalyzerTest, StreamInputHasNoInterface) {
  auto resolved = Analyze("SELECT destIP FROM tcpdest0");
  ASSERT_TRUE(resolved.ok());
  EXPECT_TRUE(resolved->inputs[0].interface_name.empty());
}

TEST_F(AnalyzerTest, StreamCannotBindInterface) {
  EXPECT_FALSE(Analyze("SELECT destIP FROM eth0.tcpdest0").ok());
}

TEST_F(AnalyzerTest, UnknownStreamIsNotFound) {
  auto resolved = Analyze("SELECT x FROM nonesuch");
  ASSERT_FALSE(resolved.ok());
  EXPECT_EQ(resolved.status().code(), Status::Code::kNotFound);
}

TEST_F(AnalyzerTest, UnknownInterfaceIsNotFound) {
  EXPECT_FALSE(Analyze("SELECT destIP FROM wlan7.PKT").ok());
}

TEST_F(AnalyzerTest, UnknownColumnIsNotFound) {
  auto resolved = Analyze("SELECT frobnitz FROM PKT");
  ASSERT_FALSE(resolved.ok());
  EXPECT_NE(resolved.status().message().find("frobnitz"), std::string::npos);
}

TEST_F(AnalyzerTest, ColumnsBindToFields) {
  auto resolved = Analyze("SELECT destIP, destPort FROM PKT");
  ASSERT_TRUE(resolved.ok());
  EXPECT_EQ(resolved->bindings.size(), 2u);
  for (const auto& [expr, binding] : resolved->bindings) {
    EXPECT_EQ(binding.input, 0u);
  }
}

TEST_F(AnalyzerTest, AmbiguousColumnInJoin) {
  auto resolved = Analyze(
      "SELECT time FROM tcpdest0 A, tcpdest1 B "
      "WHERE A.time = B.time");
  ASSERT_FALSE(resolved.ok());
  EXPECT_NE(resolved.status().message().find("ambiguous"),
            std::string::npos);
}

TEST_F(AnalyzerTest, QualifiedColumnsResolveInJoin) {
  auto resolved = Analyze(
      "SELECT A.time, B.destPort FROM tcpdest0 A, tcpdest1 B "
      "WHERE A.time = B.time");
  ASSERT_TRUE(resolved.ok()) << resolved.status().ToString();
  EXPECT_TRUE(resolved->is_join());
}

TEST_F(AnalyzerTest, SelfJoinNeedsDistinctAliases) {
  EXPECT_FALSE(
      Analyze("SELECT tcpdest0.time FROM tcpdest0, tcpdest0").ok());
}

TEST_F(AnalyzerTest, AggregateDetected) {
  auto resolved =
      Analyze("SELECT time, count(*) FROM PKT GROUP BY time");
  ASSERT_TRUE(resolved.ok());
  EXPECT_TRUE(resolved->has_aggregates);
  EXPECT_TRUE(resolved->is_aggregation());
}

TEST_F(AnalyzerTest, AggregateInWhereRejected) {
  auto resolved = Analyze("SELECT time FROM PKT WHERE count(*) > 5");
  EXPECT_FALSE(resolved.ok());
}

TEST_F(AnalyzerTest, NestedAggregateRejected) {
  EXPECT_FALSE(
      Analyze("SELECT sum(count(*)) FROM PKT GROUP BY time").ok());
}

TEST_F(AnalyzerTest, NonKeySelectItemRejected) {
  auto resolved =
      Analyze("SELECT destIP, count(*) FROM PKT GROUP BY time");
  ASSERT_FALSE(resolved.ok());
  EXPECT_NE(resolved.status().message().find("destIP"), std::string::npos);
}

TEST_F(AnalyzerTest, KeyMatchedByAlias) {
  auto resolved = Analyze(
      "SELECT tb, count(*) FROM PKT GROUP BY time/60 AS tb");
  EXPECT_TRUE(resolved.ok()) << resolved.status().ToString();
}

TEST_F(AnalyzerTest, KeyMatchedByExpressionText) {
  auto resolved = Analyze(
      "SELECT time/60, count(*) FROM PKT GROUP BY time/60");
  EXPECT_TRUE(resolved.ok()) << resolved.status().ToString();
}

TEST_F(AnalyzerTest, HavingWithoutGroupingRejected) {
  EXPECT_FALSE(Analyze("SELECT time FROM PKT HAVING time > 5").ok());
}

TEST_F(AnalyzerTest, MergeResolves) {
  auto resolved = AnalyzeM(
      "MERGE tcpdest0.time : tcpdest1.time FROM tcpdest0, tcpdest1");
  ASSERT_TRUE(resolved.ok()) << resolved.status().ToString();
  EXPECT_EQ(resolved->merge_fields, (std::vector<size_t>{0, 0}));
}

TEST_F(AnalyzerTest, MergeColumnCountMustMatchInputs) {
  EXPECT_FALSE(
      AnalyzeM("MERGE tcpdest0.time FROM tcpdest0, tcpdest1").ok());
}

TEST_F(AnalyzerTest, MergeRequiresIdenticalSchemas) {
  EXPECT_FALSE(AnalyzeM("MERGE time : time FROM tcpdest0, PKT").ok());
}

TEST_F(AnalyzerTest, MergeColumnMustBeOrdered) {
  // destPort has no ordering property.
  EXPECT_FALSE(AnalyzeM(
      "MERGE tcpdest0.destPort : tcpdest1.destPort FROM tcpdest0, tcpdest1")
                   .ok());
}

TEST_F(AnalyzerTest, MergeColumnsMustAgree) {
  // Different attributes in the two inputs.
  EXPECT_FALSE(AnalyzeM(
      "MERGE tcpdest0.time : tcpdest1.destPort FROM tcpdest0, tcpdest1")
                   .ok());
}

TEST_F(AnalyzerTest, MergeQualifierMustMatchPosition) {
  EXPECT_FALSE(AnalyzeM(
      "MERGE tcpdest1.time : tcpdest0.time FROM tcpdest0, tcpdest1")
                   .ok());
}

}  // namespace
}  // namespace gigascope::gsql
