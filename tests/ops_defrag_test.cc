#include <gtest/gtest.h>

#include <string>

#include "core/engine.h"
#include "net/headers.h"
#include "ops/defrag.h"

namespace gigascope::ops {
namespace {

using core::Engine;
using expr::Value;

net::Packet MakePacket(SimTime timestamp, const ByteBuffer& bytes) {
  net::Packet packet;
  packet.bytes = bytes;
  packet.orig_len = static_cast<uint32_t>(bytes.size());
  packet.timestamp = timestamp;
  return packet;
}

ByteBuffer BigUdpDatagram(const std::string& payload, uint16_t ip_id) {
  net::UdpPacketSpec spec;
  spec.src_addr = 0x0a000001;
  spec.dst_addr = 0x0a000002;
  spec.src_port = 1111;
  spec.dst_port = 2222;
  spec.ip_id = ip_id;
  spec.payload = payload;
  return net::BuildUdpPacket(spec);
}

TEST(FragmentTest, SplitsAndTagsFragments) {
  ByteBuffer packet = BigUdpDatagram(std::string(1000, 'x'), 7);
  auto fragments = net::FragmentIpv4Packet(packet, 256);
  ASSERT_TRUE(fragments.ok()) << fragments.status().ToString();
  // 1008 bytes of IP payload (8 UDP header + 1000) in 256-byte chunks.
  ASSERT_EQ(fragments->size(), 4u);
  for (size_t i = 0; i < fragments->size(); ++i) {
    auto decoded = net::DecodePacket(
        ByteSpan((*fragments)[i].data(), (*fragments)[i].size()));
    ASSERT_TRUE(decoded.ok());
    ASSERT_TRUE(decoded->is_ipv4());
    EXPECT_EQ(decoded->ip->identification, 7);
    EXPECT_EQ(decoded->ip->fragment_offset, i * 256 / 8);
    EXPECT_EQ(decoded->ip->more_fragments(), i + 1 < fragments->size());
    // Checksums must be valid per fragment.
    ByteSpan header((*fragments)[i].data() + net::kEthernetHeaderLen,
                    net::kIpv4MinHeaderLen);
    EXPECT_EQ(net::InternetChecksum(header), 0);
  }
}

TEST(FragmentTest, SmallPacketPassesThrough) {
  ByteBuffer packet = BigUdpDatagram("small", 1);
  auto fragments = net::FragmentIpv4Packet(packet, 256);
  ASSERT_TRUE(fragments.ok());
  ASSERT_EQ(fragments->size(), 1u);
  EXPECT_EQ((*fragments)[0], packet);
}

TEST(FragmentTest, RejectsBadMtu) {
  ByteBuffer packet = BigUdpDatagram("x", 1);
  EXPECT_FALSE(net::FragmentIpv4Packet(packet, 0).ok());
  EXPECT_FALSE(net::FragmentIpv4Packet(packet, 100).ok());  // not mult of 8
}

/// End-to-end fixture: engine + defrag node over eth0.PKT.
class DefragTest : public ::testing::Test {
 protected:
  void SetUp() override {
    engine_.AddInterface("eth0");
    // Force the protocol stream into existence with a trivial query.
    ASSERT_TRUE(engine_
                    .AddQuery("DEFINE { query_name probe; } "
                              "SELECT time FROM eth0.PKT")
                    .ok());
    auto input = engine_.registry().Subscribe("eth0.PKT", 4096);
    ASSERT_TRUE(input.ok());
    IpDefragNode::Spec spec;
    spec.name = "defrag0";
    auto schema = engine_.registry().GetSchema("eth0.PKT");
    ASSERT_TRUE(schema.ok());
    spec.input_schema = *schema;
    spec.timeout_seconds = 30;
    auto node = IpDefragNode::Create(std::move(spec), *input,
                                     &engine_.registry());
    ASSERT_TRUE(node.ok()) << node.status().ToString();
    node_ = node->get();
    ASSERT_TRUE(engine_.AddNode(std::move(node).value()).ok());
    auto sub = engine_.Subscribe("defrag0");
    ASSERT_TRUE(sub.ok());
    sub_ = std::move(sub).value();
  }

  void Inject(SimTime timestamp, const ByteBuffer& bytes) {
    ASSERT_TRUE(engine_.InjectPacket("eth0", MakePacket(timestamp, bytes))
                    .ok());
  }

  Engine engine_;
  IpDefragNode* node_ = nullptr;
  std::unique_ptr<core::TupleSubscription> sub_;
};

TEST_F(DefragTest, ReassemblesInOrderFragments) {
  std::string payload(1000, 'a');
  for (size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<char>('a' + i % 26);
  }
  auto fragments =
      net::FragmentIpv4Packet(BigUdpDatagram(payload, 9), 256);
  ASSERT_TRUE(fragments.ok());
  for (const auto& fragment : *fragments) {
    Inject(kNanosPerSecond, fragment);
  }
  engine_.PumpUntilIdle();
  auto row = sub_->NextRow();
  ASSERT_TRUE(row.has_value());
  EXPECT_EQ((*row)[1].ip_value(), 0x0a000001u);
  EXPECT_EQ((*row)[3].uint_value(), net::kIpProtoUdp);
  const std::string& datagram = (*row)[4].string_value();
  ASSERT_EQ(datagram.size(), net::kUdpHeaderLen + payload.size());
  EXPECT_EQ(datagram.substr(net::kUdpHeaderLen), payload);
  EXPECT_EQ(node_->open_assemblies(), 0u);
}

TEST_F(DefragTest, ReassemblesOutOfOrderFragments) {
  auto fragments =
      net::FragmentIpv4Packet(BigUdpDatagram(std::string(900, 'z'), 10),
                              256);
  ASSERT_TRUE(fragments.ok());
  ASSERT_GE(fragments->size(), 3u);
  // Deliver last-first.
  for (auto it = fragments->rbegin(); it != fragments->rend(); ++it) {
    Inject(kNanosPerSecond, *it);
  }
  engine_.PumpUntilIdle();
  EXPECT_TRUE(sub_->NextRow().has_value());
}

TEST_F(DefragTest, UnfragmentedPacketsPassThrough) {
  Inject(kNanosPerSecond, BigUdpDatagram("hello", 11));
  engine_.PumpUntilIdle();
  auto row = sub_->NextRow();
  ASSERT_TRUE(row.has_value());
  // UDP header (8 bytes) then payload.
  EXPECT_EQ((*row)[4].string_value().substr(net::kUdpHeaderLen), "hello");
}

TEST_F(DefragTest, MissingFragmentNeverEmits) {
  auto fragments =
      net::FragmentIpv4Packet(BigUdpDatagram(std::string(900, 'q'), 12),
                              256);
  ASSERT_TRUE(fragments.ok());
  for (size_t i = 0; i < fragments->size(); ++i) {
    if (i == 1) continue;  // drop one middle fragment
    Inject(kNanosPerSecond, (*fragments)[i]);
  }
  engine_.PumpUntilIdle();
  EXPECT_FALSE(sub_->NextRow().has_value());
  EXPECT_EQ(node_->open_assemblies(), 1u);
}

TEST_F(DefragTest, InterleavedDatagramsKeptApart) {
  auto a = net::FragmentIpv4Packet(BigUdpDatagram(std::string(600, 'a'), 21),
                                   256);
  auto b = net::FragmentIpv4Packet(BigUdpDatagram(std::string(600, 'b'), 22),
                                   256);
  ASSERT_TRUE(a.ok() && b.ok());
  for (size_t i = 0; i < a->size(); ++i) {
    Inject(kNanosPerSecond, (*a)[i]);
    if (i < b->size()) Inject(kNanosPerSecond, (*b)[i]);
  }
  engine_.PumpUntilIdle();
  int complete = 0;
  bool saw_a = false, saw_b = false;
  while (auto row = sub_->NextRow()) {
    ++complete;
    const std::string& datagram = (*row)[4].string_value();
    if (datagram.find(std::string(100, 'a')) != std::string::npos)
      saw_a = true;
    if (datagram.find(std::string(100, 'b')) != std::string::npos)
      saw_b = true;
  }
  EXPECT_EQ(complete, 2);
  EXPECT_TRUE(saw_a);
  EXPECT_TRUE(saw_b);
}

TEST_F(DefragTest, StaleAssembliesTimeOut) {
  auto fragments =
      net::FragmentIpv4Packet(BigUdpDatagram(std::string(900, 't'), 30),
                              256);
  ASSERT_TRUE(fragments.ok());
  Inject(kNanosPerSecond, (*fragments)[0]);  // only the first fragment
  engine_.PumpUntilIdle();
  EXPECT_EQ(node_->open_assemblies(), 1u);
  // A much later unrelated packet expires the assembly (timeout 30s).
  Inject(100 * kNanosPerSecond, BigUdpDatagram("later", 31));
  engine_.PumpUntilIdle();
  EXPECT_EQ(node_->open_assemblies(), 0u);
  EXPECT_EQ(node_->timeouts(), 1u);
}

TEST_F(DefragTest, QueryComposesOverDefragOutput) {
  // §3: "we have ... built a query tree using it" — a GSQL query reads the
  // defrag node's output stream like any other.
  auto info = engine_.AddQuery(
      "DEFINE { query_name big; } "
      "SELECT time, srcIP, str_len(datagram) AS sz FROM defrag0 "
      "WHERE str_len(datagram) > 500");
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  auto sub = engine_.Subscribe("big");
  ASSERT_TRUE(sub.ok());

  auto fragments =
      net::FragmentIpv4Packet(BigUdpDatagram(std::string(900, 'c'), 40),
                              256);
  ASSERT_TRUE(fragments.ok());
  for (const auto& fragment : *fragments) {
    Inject(kNanosPerSecond, fragment);
  }
  Inject(2 * kNanosPerSecond, BigUdpDatagram("tiny", 41));
  engine_.PumpUntilIdle();

  auto row = (*sub)->NextRow();
  ASSERT_TRUE(row.has_value());
  EXPECT_EQ((*row)[2].uint_value(), 900u + net::kUdpHeaderLen);
  EXPECT_FALSE((*sub)->NextRow().has_value());  // the tiny one is filtered
}

TEST(DefragCreateTest, RejectsSchemaWithoutFragmentFields) {
  rts::StreamRegistry registry;
  std::vector<gsql::FieldDef> fields;
  fields.push_back({"time", gsql::DataType::kUint,
                    gsql::OrderSpec::Increasing()});
  gsql::StreamSchema schema("thin", gsql::StreamKind::kStream, fields);
  ASSERT_TRUE(registry.DeclareStream(schema).ok());
  auto input = registry.Subscribe("thin", 16);
  ASSERT_TRUE(input.ok());
  IpDefragNode::Spec spec;
  spec.name = "d";
  spec.input_schema = schema;
  auto node = IpDefragNode::Create(std::move(spec), *input, &registry);
  EXPECT_FALSE(node.ok());
}

}  // namespace
}  // namespace gigascope::ops
