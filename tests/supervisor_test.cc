// Fault-tolerance suite for the multi-process HFTA mode: shm ring
// semantics (torn slots, oversize drops, the resync gate), cross-fork
// delivery, and the supervisor's crash/hang/degradation machinery driven
// through deterministic fault injection. Every recovery path the engine
// claims is exercised here rather than trusted.

#include <gtest/gtest.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "core/engine.h"
#include "core/fault.h"
#include "core/supervisor.h"
#include "rts/ring.h"
#include "rts/shm.h"
#include "workload/traffic_gen.h"

namespace gigascope::core {
namespace {

using expr::Value;
using rts::RingChannel;
using rts::ShmRingOptions;
using rts::StreamBatch;
using rts::StreamMessage;

StreamMessage Tuple(uint8_t tag, size_t payload_bytes = 8) {
  StreamMessage m;
  m.kind = StreamMessage::Kind::kTuple;
  m.payload.assign(payload_bytes, tag);
  return m;
}

StreamMessage Punct(uint8_t tag) {
  StreamMessage m;
  m.kind = StreamMessage::Kind::kPunctuation;
  m.payload.assign(8, tag);
  return m;
}

ShmRingOptions SmallShm(size_t max_slots = 64, size_t slot_bytes = 256) {
  ShmRingOptions shm;
  shm.enabled = true;
  shm.max_slots = max_slots;
  shm.slot_bytes = slot_bytes;
  return shm;
}

// -- Shm ring unit tests -----------------------------------------------------

TEST(ShmRingTest, MatchesHeapRingMessageForMessage) {
  // The shm backend must be a drop-in for the heap backend: same messages
  // in, same messages out, same counters — serialization is invisible.
  RingChannel heap(16);
  RingChannel shm(16, SmallShm());
  ASSERT_TRUE(shm.is_shm());
  ASSERT_FALSE(heap.is_shm());

  for (int round = 0; round < 50; ++round) {
    StreamBatch batch;
    for (int i = 0; i < 5; ++i) {
      batch.items.push_back(Tuple(static_cast<uint8_t>(round * 5 + i)));
    }
    batch.items.push_back(Punct(static_cast<uint8_t>(round)));
    StreamBatch copy = batch;
    ASSERT_TRUE(heap.TryPush(std::move(batch)));
    ASSERT_TRUE(shm.TryPush(std::move(copy)));

    StreamBatch from_heap;
    StreamBatch from_shm;
    while (heap.TryPop(&from_heap)) {
    }
    while (shm.TryPop(&from_shm)) {
    }
    ASSERT_EQ(from_heap.size(), from_shm.size());
    for (size_t i = 0; i < from_heap.size(); ++i) {
      EXPECT_EQ(from_heap.items[i].kind, from_shm.items[i].kind);
      EXPECT_EQ(from_heap.items[i].payload, from_shm.items[i].payload);
      EXPECT_EQ(from_heap.items[i].weight, from_shm.items[i].weight);
    }
  }
  EXPECT_EQ(heap.pushed(), shm.pushed());
  EXPECT_EQ(heap.popped(), shm.popped());
  EXPECT_EQ(shm.torn(), 0u);
  EXPECT_EQ(shm.oversize_dropped(), 0u);
}

TEST(ShmRingTest, TraceContextAndWeightSurviveSerialization) {
  RingChannel ring(8, SmallShm());
  StreamMessage m = Tuple(7);
  m.trace_id = 0xdeadbeefcafe;
  m.trace_ns = 123456789;
  m.weight = 64;
  ASSERT_TRUE(ring.TryPush(std::move(m)));
  StreamMessage out;
  ASSERT_TRUE(ring.TryPop(&out));
  EXPECT_EQ(out.trace_id, 0xdeadbeefcafeu);
  EXPECT_EQ(out.trace_ns, 123456789);
  EXPECT_EQ(out.weight, 64u);
}

TEST(ShmRingTest, OversizeMessageDroppedAndCounted) {
  // A single message that cannot fit one slot's payload region can never
  // be delivered; it is dropped at the producer and counted, and the rest
  // of its batch still flows.
  RingChannel ring(8, SmallShm(8, 64));
  StreamBatch batch;
  batch.items.push_back(Tuple(1, 8));
  batch.items.push_back(Tuple(2, 4096));  // > 64-byte slot region
  batch.items.push_back(Tuple(3, 8));
  ASSERT_TRUE(ring.PushOrDrop(std::move(batch)));
  EXPECT_EQ(ring.oversize_dropped(), 1u);
  StreamBatch out;
  ASSERT_TRUE(ring.TryPop(&out));
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out.items[0].payload[0], 1);
  EXPECT_EQ(out.items[1].payload[0], 3);
}

TEST(ShmRingTest, LargeBatchSplitsAcrossSlots) {
  // A batch bigger than one slot's region splits; order is preserved and
  // nothing is lost when enough slots are free.
  RingChannel ring(32, SmallShm(32, 128));
  StreamBatch batch;
  for (int i = 0; i < 40; ++i) {
    batch.items.push_back(Tuple(static_cast<uint8_t>(i), 32));
  }
  batch.items.push_back(Punct(99));
  ASSERT_TRUE(ring.TryPush(std::move(batch)));
  EXPECT_GT(ring.size(), 1u);  // really did span multiple slots

  std::vector<StreamMessage> out;
  StreamBatch popped;
  while (ring.TryPop(&popped)) {
    for (auto& m : popped.items) out.push_back(std::move(m));
    popped.items.clear();
  }
  ASSERT_EQ(out.size(), 41u);
  for (int i = 0; i < 40; ++i) {
    EXPECT_EQ(out[i].payload[0], static_cast<uint8_t>(i));
  }
  EXPECT_EQ(out[40].kind, StreamMessage::Kind::kPunctuation);
}

TEST(ShmRingTest, TornSlotSkippedAndCounted) {
  // ArmTornFault corrupts the Nth published slot's sequence stamp — as a
  // producer dying mid-publish would. The consumer must detect, count,
  // and skip it without delivering garbage or stalling the ring.
  RingChannel ring(16, SmallShm());
  ring.ArmTornFault(2);  // tear the second slot published
  for (uint8_t i = 0; i < 4; ++i) {
    StreamBatch batch;
    batch.items.push_back(Tuple(i));
    ASSERT_TRUE(ring.TryPush(std::move(batch)));
  }
  std::vector<uint8_t> seen;
  StreamBatch out;
  while (ring.TryPop(&out)) {
    for (const auto& m : out.items) seen.push_back(m.payload[0]);
    out.items.clear();
  }
  EXPECT_EQ(ring.torn(), 1u);
  ASSERT_EQ(seen.size(), 3u);  // slot 2 skipped
  EXPECT_EQ(seen, (std::vector<uint8_t>{0, 2, 3}));
}

TEST(ShmRingTest, ResyncGateDropsUntilPunctuation) {
  // After a consumer restart, tuples from the interrupted window must not
  // reach the new incarnation: the gate discards until the first
  // punctuation, delivers it (its bound is still valid), and disarms.
  RingChannel ring(16, SmallShm());
  StreamBatch pre;
  pre.items.push_back(Tuple(1));
  pre.items.push_back(Tuple(2));
  pre.items.push_back(Punct(10));
  ASSERT_TRUE(ring.TryPush(std::move(pre)));
  StreamBatch post;
  post.items.push_back(Tuple(3));
  ASSERT_TRUE(ring.TryPush(std::move(post)));

  ring.BeginResync();
  EXPECT_TRUE(ring.resync_pending());
  std::vector<StreamMessage> seen;
  StreamBatch out;
  while (ring.TryPop(&out)) {
    for (auto& m : out.items) seen.push_back(std::move(m));
    out.items.clear();
  }
  EXPECT_FALSE(ring.resync_pending());
  EXPECT_EQ(ring.resync_dropped(), 2u);
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0].kind, StreamMessage::Kind::kPunctuation);
  EXPECT_EQ(seen[1].kind, StreamMessage::Kind::kTuple);
  EXPECT_EQ(seen[1].payload[0], 3);
}

TEST(ShmRingTest, ResyncGateEndsAtArmingPositionWithoutPunctuation) {
  // A punctuation-free residue must not gate out data pushed after the
  // handoff: the head position at arming bounds the gap, so post-adoption
  // pushes (a seal-time upstream flush, new live data) always deliver.
  RingChannel ring(16, SmallShm());
  StreamBatch residue;
  residue.items.push_back(Tuple(1));
  residue.items.push_back(Tuple(2));
  ASSERT_TRUE(ring.TryPush(std::move(residue)));

  ring.BeginResync();
  StreamBatch after;
  after.items.push_back(Tuple(3));  // pushed after adoption, no punctuation
  ASSERT_TRUE(ring.TryPush(std::move(after)));

  std::vector<uint8_t> seen;
  StreamBatch out;
  while (ring.TryPop(&out)) {
    for (const auto& m : out.items) seen.push_back(m.payload[0]);
    out.items.clear();
  }
  EXPECT_FALSE(ring.resync_pending());
  EXPECT_EQ(ring.resync_dropped(), 2u);  // only the pre-arming residue
  EXPECT_EQ(seen, (std::vector<uint8_t>{3}));
}

TEST(ShmRingTest, CrossForkDelivery) {
  // The whole point of the shm backend: a child-process producer, a
  // parent-process consumer, nothing shared but the segment.
  auto ring = std::make_unique<RingChannel>(64, SmallShm());
  constexpr int kMessages = 200;
  pid_t child = fork();
  ASSERT_GE(child, 0);
  if (child == 0) {
    for (int i = 0; i < kMessages; ++i) {
      StreamBatch batch;
      batch.items.push_back(Tuple(static_cast<uint8_t>(i % 251)));
      while (!ring->TryPush(std::move(batch))) {
        usleep(100);
        batch.items.clear();
        batch.items.push_back(Tuple(static_cast<uint8_t>(i % 251)));
      }
    }
    _exit(0);
  }
  int received = 0;
  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(20);
  StreamBatch out;
  while (received < kMessages &&
         std::chrono::steady_clock::now() < deadline) {
    if (!ring->TryPop(&out)) {
      usleep(100);
      continue;
    }
    for (const auto& m : out.items) {
      EXPECT_EQ(m.payload[0], static_cast<uint8_t>(received % 251));
      ++received;
    }
    out.items.clear();
  }
  int status = 0;
  ASSERT_EQ(waitpid(child, &status, 0), child);
  EXPECT_EQ(received, kMessages);
  EXPECT_EQ(ring->torn(), 0u);
}

// -- Supervisor unit tests ---------------------------------------------------

SupervisorOptions FastSupervision() {
  SupervisorOptions options;
  options.heartbeat_period_ms = 5;
  options.miss_threshold = 4;
  options.restart_budget = 2;
  options.backoff_initial_ms = 5;
  options.backoff_max_ms = 50;
  return options;
}

// A cooperative child loop: heartbeats and serves the mailbox until told
// to exit. Runs in a forked process — no gtest assertions in here.
void ObedientChild(WorkerControl* ctrl) {
  while (true) {
    ctrl->heartbeat.fetch_add(1, std::memory_order_relaxed);
    uint64_t arg = 0;
    uint64_t seq = 0;
    WorkerCommand cmd = Supervisor::PendingCommand(ctrl, &arg, &seq);
    if (cmd == WorkerCommand::kExit) {
      Supervisor::Ack(ctrl, seq, 0);
      _exit(0);
    }
    if (cmd != WorkerCommand::kNone) Supervisor::Ack(ctrl, seq, arg);
    usleep(1000);
  }
}

TEST(SupervisorTest, RestartsKilledWorkerWithinBudget) {
  auto options = FastSupervision();
  Supervisor* self = nullptr;
  Supervisor supervisor(options, 2, [&self](size_t w, uint32_t) {
    ObedientChild(self->control(w));
  });
  self = &supervisor;
  ASSERT_TRUE(supervisor.Start().ok());
  ASSERT_EQ(supervisor.state(0), Supervisor::WorkerState::kRunning);
  pid_t first = supervisor.pid(0);
  ASSERT_GT(first, 0);

  kill(first, SIGKILL);
  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (std::chrono::steady_clock::now() < deadline) {
    if (supervisor.restarts() >= 1 &&
        supervisor.state(0) == Supervisor::WorkerState::kRunning &&
        supervisor.pid(0) != first) {
      break;
    }
    usleep(1000);
  }
  EXPECT_EQ(supervisor.state(0), Supervisor::WorkerState::kRunning);
  EXPECT_NE(supervisor.pid(0), first);
  EXPECT_GE(supervisor.restarts(), 1u);
  EXPECT_EQ(supervisor.control(0)->generation.load(), 2u);
  // The untouched worker was not restarted.
  EXPECT_EQ(supervisor.control(1)->generation.load(), 1u);
  supervisor.StopAll();
  EXPECT_EQ(supervisor.state(0), Supervisor::WorkerState::kStopped);
}

TEST(SupervisorTest, BudgetExhaustionDegrades) {
  // A child that dies instantly every incarnation must burn through the
  // budget and land in kDegraded — and StopAll must still return.
  auto options = FastSupervision();
  Supervisor supervisor(options, 1, [](size_t, uint32_t) { _exit(1); });
  ASSERT_TRUE(supervisor.Start().ok());
  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (supervisor.state(0) != Supervisor::WorkerState::kDegraded &&
         std::chrono::steady_clock::now() < deadline) {
    usleep(1000);
  }
  EXPECT_EQ(supervisor.state(0), Supervisor::WorkerState::kDegraded);
  EXPECT_EQ(supervisor.restarts(), options.restart_budget);
  EXPECT_EQ(supervisor.degraded_count(), 1u);
  supervisor.StopAll();
  EXPECT_EQ(supervisor.state(0), Supervisor::WorkerState::kDegraded);
}

TEST(SupervisorTest, HungWorkerKilledAndRestarted) {
  // A child that stops heartbeating but stays alive must be detected via
  // the shm heartbeat (waitpid never fires for a hang), killed, restarted.
  auto options = FastSupervision();
  Supervisor* self = nullptr;
  Supervisor supervisor(options, 1, [&self](size_t w, uint32_t generation) {
    if (generation == 1) {
      while (true) usleep(10000);  // alive, silent: a hang
    }
    ObedientChild(self->control(w));
  });
  self = &supervisor;
  ASSERT_TRUE(supervisor.Start().ok());
  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (std::chrono::steady_clock::now() < deadline) {
    if (supervisor.restarts() >= 1 &&
        supervisor.state(0) == Supervisor::WorkerState::kRunning) {
      break;
    }
    usleep(1000);
  }
  EXPECT_GE(supervisor.heartbeat_misses(), options.miss_threshold);
  EXPECT_GE(supervisor.restarts(), 1u);
  EXPECT_EQ(supervisor.state(0), Supervisor::WorkerState::kRunning);
  supervisor.StopAll();
}

TEST(SupervisorTest, SendCommandRoundTripsAndFailsOverWhenDegraded) {
  auto options = FastSupervision();
  Supervisor* self = nullptr;
  Supervisor supervisor(options, 1, [&self](size_t w, uint32_t) {
    ObedientChild(self->control(w));
  });
  self = &supervisor;
  ASSERT_TRUE(supervisor.Start().ok());
  uint64_t ack = 0;
  EXPECT_TRUE(supervisor.SendCommand(0, WorkerCommand::kDrain, 42, &ack));
  EXPECT_EQ(ack, 42u);  // ObedientChild echoes the arg

  // Degrade the worker (seal, then kill: sealing forbids restarts), then
  // verify SendCommand reports failure promptly instead of timing out.
  supervisor.BeginSeal();
  kill(supervisor.pid(0), SIGKILL);
  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (supervisor.state(0) != Supervisor::WorkerState::kDegraded &&
         std::chrono::steady_clock::now() < deadline) {
    usleep(1000);
  }
  ASSERT_EQ(supervisor.state(0), Supervisor::WorkerState::kDegraded);
  auto before = std::chrono::steady_clock::now();
  EXPECT_FALSE(supervisor.SendCommand(0, WorkerCommand::kDrain, 0, &ack));
  auto waited = std::chrono::steady_clock::now() - before;
  EXPECT_LT(waited, std::chrono::seconds(5));  // no full-timeout stall
  supervisor.StopAll();
}

// -- Engine multi-process integration ----------------------------------------

constexpr char kAggQuery[] =
    "DEFINE { query_name agg; } "
    "SELECT tb, destIP, count(*), sum(len) FROM eth0.PKT "
    "GROUP BY time AS tb, destIP";

std::vector<net::Packet> MakeBatch(int n, uint32_t seed = 7) {
  gigascope::workload::TrafficConfig config;
  config.seed = seed;
  config.num_flows = 50;
  // Slow the offered load so the batch spans many sim-seconds: time
  // buckets close throughout the run and a steady stream of partials
  // crosses the LFTA->HFTA ring mid-run (what the fault tests trip on),
  // instead of everything landing in one bucket that only closes at seal.
  config.offered_bits_per_sec = 2e6;
  gigascope::workload::TrafficGenerator gen(config);
  std::vector<net::Packet> batch;
  for (int i = 0; i < n; ++i) batch.push_back(gen.Next());
  return batch;
}

// Runs kAggQuery over `batch`; workers=0 means the single-process pump.
// Returns sorted formatted rows.
std::vector<std::string> RunAgg(const std::vector<net::Packet>& batch,
                                size_t workers,
                                const FaultConfig& fault = FaultConfig{},
                                Engine** keep = nullptr) {
  EngineOptions options;
  options.process.enabled = workers > 0;
  options.fault = fault;
  static std::unique_ptr<Engine> engine_keeper;
  engine_keeper = std::make_unique<Engine>(options);
  Engine& engine = *engine_keeper;
  if (keep != nullptr) *keep = &engine;
  engine.AddInterface("eth0");
  auto info = engine.AddQuery(kAggQuery);
  EXPECT_TRUE(info.ok()) << info.status().ToString();
  auto sub = engine.Subscribe("agg", 8192);
  EXPECT_TRUE(sub.ok());
  if (workers > 0) {
    Status started = engine.StartProcesses(workers);
    EXPECT_TRUE(started.ok()) << started.ToString();
    EXPECT_TRUE(engine.processes_running());
  }
  for (const net::Packet& packet : batch) {
    EXPECT_TRUE(engine.InjectPacket("eth0", packet).ok());
  }
  engine.FlushAll();
  EXPECT_FALSE(engine.processes_running());  // FlushAll stopped the workers
  std::vector<std::string> rows;
  while (auto row = (*sub)->NextRow()) {
    std::string text;
    for (const Value& value : *row) text += value.ToString() + "\t";
    rows.push_back(text);
  }
  std::sort(rows.begin(), rows.end());
  return rows;
}

TEST(EngineProcessTest, CleanRunMatchesSingleProcessByteExact) {
  // With no faults, the process split must be invisible: identical rows
  // from the in-process pump and from supervised worker processes.
  std::vector<net::Packet> batch = MakeBatch(4000);
  std::vector<std::string> reference = RunAgg(batch, 0);
  ASSERT_FALSE(reference.empty());
  EXPECT_EQ(RunAgg(batch, 1), reference);
  EXPECT_EQ(RunAgg(batch, 2), reference);
}

TEST(EngineProcessTest, ProcessModeStatsFlow) {
  // Worker-side counters (tuples through the shm rings, node tuples_out)
  // must surface in the parent's gs_stats snapshot: the counters live in
  // shared memory, not the child heap.
  std::vector<net::Packet> batch = MakeBatch(2000);
  Engine* engine = nullptr;
  std::vector<std::string> rows = RunAgg(batch, 2, FaultConfig{}, &engine);
  ASSERT_FALSE(rows.empty());
  std::map<std::string, uint64_t> by_metric;
  for (const auto& sample : engine->telemetry().Snapshot()) {
    by_metric[sample.metric] += sample.value;
  }
  EXPECT_EQ(by_metric["worker_restarts"], 0u);
  EXPECT_EQ(by_metric["workers_degraded"], 0u);
  EXPECT_EQ(by_metric["torn_slots"], 0u);
  EXPECT_GT(by_metric["packets"], 0u);
}

// Parses kAggQuery output rows into (bucket-key -> count) so fault runs
// can be compared bucket-by-bucket against a clean reference.
std::map<std::string, uint64_t> CountsByGroup(
    const std::vector<std::string>& rows) {
  std::map<std::string, uint64_t> counts;
  for (const std::string& row : rows) {
    // Row format: tb \t destIP \t count \t sum \t
    size_t first = row.find('\t');
    size_t second = row.find('\t', first + 1);
    size_t third = row.find('\t', second + 1);
    std::string key = row.substr(0, second);
    counts[key] += std::stoull(row.substr(second + 1, third - second - 1));
  }
  return counts;
}

TEST(EngineProcessTest, WorkerCrashRecoversWithBoundedLoss) {
  // SIGKILL a worker mid-window (deterministic abort fault), let the
  // supervisor restart it while data is still flowing, and verify: the
  // run completes, a resync gap is recorded, and every group's count is
  // <= the clean run's count — the recovery may lose the resync gap, but
  // it must never duplicate or corrupt (no group exceeds the true
  // aggregate, no group appears that the clean run lacks).
  std::vector<net::Packet> batch = MakeBatch(6000);
  std::vector<std::string> reference = RunAgg(batch, 0);
  auto ref_counts = CountsByGroup(reference);

  FaultConfig fault;
  fault.kind = FaultConfig::Kind::kAbort;
  fault.worker = 0;
  fault.after_msgs = 10;
  EngineOptions options;
  options.punctuation_interval = 32;
  options.process.enabled = true;
  options.process.supervisor.heartbeat_period_ms = 5;
  options.fault = fault;
  Engine engine(options);
  engine.AddInterface("eth0");
  ASSERT_TRUE(engine.AddQuery(kAggQuery).ok());
  auto sub = engine.Subscribe("agg", 8192);
  ASSERT_TRUE(sub.ok());
  ASSERT_TRUE(engine.StartProcesses(1).ok());

  // First half: enough traffic to trip the fault (10 messages into the
  // worker), then hold injection until the supervisor has restarted it —
  // the restart must happen mid-run, not be mopped up by the seal.
  size_t half = batch.size() / 2;
  for (size_t i = 0; i < half; ++i) {
    ASSERT_TRUE(engine.InjectPacket("eth0", batch[i]).ok());
  }
  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (engine.supervisor()->restarts() < 1 &&
         std::chrono::steady_clock::now() < deadline) {
    engine.Pump();
    usleep(1000);
  }
  ASSERT_GE(engine.supervisor()->restarts(), 1u) << "no restart observed";
  for (size_t i = half; i < batch.size(); ++i) {
    ASSERT_TRUE(engine.InjectPacket("eth0", batch[i]).ok());
  }
  engine.FlushAll();

  std::map<std::string, uint64_t> by_metric;
  for (const auto& sample : engine.telemetry().Snapshot()) {
    by_metric[sample.metric] += sample.value;
  }
  EXPECT_GE(by_metric["worker_restarts"], 1u);
  EXPECT_GE(by_metric["resync_gaps"], 1u);

  std::vector<std::string> rows;
  while (auto row = (*sub)->NextRow()) {
    std::string text;
    for (const Value& value : *row) text += value.ToString() + "\t";
    rows.push_back(text);
  }
  auto got_counts = CountsByGroup(rows);
  ASSERT_FALSE(got_counts.empty());
  uint64_t ref_total = 0;
  uint64_t got_total = 0;
  for (const auto& [key, count] : got_counts) {
    auto it = ref_counts.find(key);
    ASSERT_NE(it, ref_counts.end()) << "phantom group: " << key;
    EXPECT_LE(count, it->second) << "over-count in group " << key;
    got_total += count;
  }
  for (const auto& [key, count] : ref_counts) ref_total += count;
  EXPECT_LE(got_total, ref_total);
  EXPECT_GT(got_total, 0u);
}

TEST(EngineProcessTest, RestartBudgetExhaustionDegradesButCompletes) {
  // every=1 re-arms the abort in each incarnation: the worker can never
  // survive, the budget burns out mid-run, and the parent must adopt the
  // nodes and still finish — degraded, not hung, not crashed.
  std::vector<net::Packet> batch = MakeBatch(3000);
  FaultConfig fault;
  fault.kind = FaultConfig::Kind::kAbort;
  fault.worker = 0;
  fault.after_msgs = 10;
  fault.every_incarnation = true;
  EngineOptions options;
  options.punctuation_interval = 32;
  options.process.enabled = true;
  options.process.supervisor.heartbeat_period_ms = 5;
  options.process.supervisor.restart_budget = 2;
  options.process.supervisor.backoff_initial_ms = 5;
  options.fault = fault;
  Engine engine(options);
  engine.AddInterface("eth0");
  ASSERT_TRUE(engine.AddQuery(kAggQuery).ok());
  auto sub = engine.Subscribe("agg", 8192);
  ASSERT_TRUE(sub.ok());
  ASSERT_TRUE(engine.StartProcesses(1).ok());

  size_t half = batch.size() / 2;
  for (size_t i = 0; i < half; ++i) {
    ASSERT_TRUE(engine.InjectPacket("eth0", batch[i]).ok());
  }
  // Hold until the budget is spent and the worker is degraded; the
  // remaining traffic then flows through the adopted in-process nodes.
  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (engine.supervisor()->degraded_count() < 1 &&
         std::chrono::steady_clock::now() < deadline) {
    engine.Pump();
    usleep(1000);
  }
  ASSERT_GE(engine.supervisor()->degraded_count(), 1u);
  for (size_t i = half; i < batch.size(); ++i) {
    ASSERT_TRUE(engine.InjectPacket("eth0", batch[i]).ok());
  }
  engine.FlushAll();

  std::map<std::string, uint64_t> by_metric;
  for (const auto& sample : engine.telemetry().Snapshot()) {
    by_metric[sample.metric] += sample.value;
  }
  EXPECT_GE(by_metric["workers_degraded"], 1u);
  EXPECT_EQ(by_metric["worker_restarts"], 2u);  // the whole budget
  EXPECT_GE(by_metric["resync_gaps"], 1u);

  std::vector<std::string> rows;
  while (auto row = (*sub)->NextRow()) {
    std::string text;
    for (const Value& value : *row) text += value.ToString() + "\t";
    rows.push_back(text);
  }
  // Adoption kept the pipeline alive: the run still produced output, and
  // adopted groups never over-count against the clean reference.
  EXPECT_FALSE(rows.empty());
  auto ref_counts = CountsByGroup(RunAgg(batch, 0));
  for (const auto& [key, count] : CountsByGroup(rows)) {
    auto it = ref_counts.find(key);
    ASSERT_NE(it, ref_counts.end());
    EXPECT_LE(count, it->second);
  }
}

TEST(EngineProcessTest, StalledWorkerDetectedByHeartbeat) {
  // A worker that stops heartbeating (but stays alive) must be caught by
  // the heartbeat monitor — stall forever, so only the SIGKILL+restart
  // path can finish the run.
  std::vector<net::Packet> batch = MakeBatch(4000);
  FaultConfig fault;
  fault.kind = FaultConfig::Kind::kStall;
  fault.worker = 0;
  fault.after_msgs = 40;
  fault.stall_ms = 0;  // forever: recovery requires the kill path
  EngineOptions options;
  options.punctuation_interval = 32;
  options.process.enabled = true;
  options.process.supervisor.heartbeat_period_ms = 5;
  options.process.supervisor.miss_threshold = 4;
  options.fault = fault;
  Engine engine(options);
  engine.AddInterface("eth0");
  ASSERT_TRUE(engine.AddQuery(kAggQuery).ok());
  auto sub = engine.Subscribe("agg", 8192);
  ASSERT_TRUE(sub.ok());
  ASSERT_TRUE(engine.StartProcesses(1).ok());

  // First half trips the stall; hold further injection until the monitor
  // has caught it (SIGKILL + restart) so the replacement worker is the
  // one that sees the second half — that is what makes rows recoverable.
  const size_t half = batch.size() / 2;
  for (size_t i = 0; i < half; ++i) {
    ASSERT_TRUE(engine.InjectPacket("eth0", batch[i]).ok());
  }
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (engine.supervisor()->restarts() < 1 &&
         std::chrono::steady_clock::now() < deadline) {
    engine.Pump();
    usleep(1000);
  }
  ASSERT_GE(engine.supervisor()->restarts(), 1u) << "stall never detected";
  for (size_t i = half; i < batch.size(); ++i) {
    ASSERT_TRUE(engine.InjectPacket("eth0", batch[i]).ok());
  }
  engine.FlushAll();
  std::map<std::string, uint64_t> by_metric;
  for (const auto& sample : engine.telemetry().Snapshot()) {
    by_metric[sample.metric] += sample.value;
  }
  EXPECT_GT(by_metric["heartbeat_misses"], 0u);
  EXPECT_GE(by_metric["worker_restarts"] + by_metric["workers_degraded"], 1u);
  int rows = 0;
  while ((*sub)->NextRow()) ++rows;
  EXPECT_GT(rows, 0);
}

TEST(EngineProcessTest, TornSlotFaultSkippedNotDelivered) {
  // Inject a torn slot into the LFTA->HFTA ring: the consumer worker must
  // skip it (counted) and the run must complete without corrupt rows.
  std::vector<net::Packet> batch = MakeBatch(3000);
  std::vector<std::string> reference = RunAgg(batch, 0);
  auto ref_counts = CountsByGroup(reference);

  Engine* engine = nullptr;
  FaultConfig fault;
  fault.kind = FaultConfig::Kind::kTorn;
  fault.stream = "agg_lfta";  // LFTA output stream feeding the HFTA
  fault.nth = 3;
  std::vector<std::string> rows = RunAgg(batch, 1, fault, &engine);

  std::map<std::string, uint64_t> by_metric;
  for (const auto& sample : engine->telemetry().Snapshot()) {
    by_metric[sample.metric] += sample.value;
  }
  // If the stream name matched a real ring, a torn slot was recorded and
  // skipped; either way no group may exceed the clean aggregate.
  for (const auto& [key, count] : CountsByGroup(rows)) {
    auto it = ref_counts.find(key);
    ASSERT_NE(it, ref_counts.end());
    EXPECT_LE(count, it->second);
  }
  EXPECT_FALSE(rows.empty());
}

TEST(EngineProcessTest, StopProcessesWithoutFlushIsSafe) {
  // StopProcesses (no drain) must kill workers, adopt their nodes, and
  // leave the engine in a state where single-process pumping still works.
  std::vector<net::Packet> batch = MakeBatch(2000);
  EngineOptions options;
  options.process.enabled = true;
  Engine engine(options);
  engine.AddInterface("eth0");
  ASSERT_TRUE(engine.AddQuery(kAggQuery).ok());
  auto sub = engine.Subscribe("agg", 8192);
  ASSERT_TRUE(sub.ok());
  ASSERT_TRUE(engine.StartProcesses(2).ok());
  for (const net::Packet& packet : batch) {
    ASSERT_TRUE(engine.InjectPacket("eth0", packet).ok());
  }
  engine.StopProcesses();
  EXPECT_FALSE(engine.processes_running());
  engine.StopProcesses();  // idempotent
  engine.FlushAll();       // drains whatever survived, in-process
  engine.FlushAll();       // idempotent after stop
  int rows = 0;
  while ((*sub)->NextRow()) ++rows;
  EXPECT_GT(rows, 0);
}

// Collects the cumulative (sum-folded) metrics from a snapshot keyed by
// (entity, metric); used to pin monotonicity across worker restarts.
std::map<std::pair<std::string, std::string>, uint64_t> CumulativeByKey(
    const std::vector<telemetry::MetricSample>& samples) {
  static const char* kCumulative[] = {"tuples_in", "tuples_out", "packets",
                                      "ring_pushed", "ring_popped",
                                      "eval_errors"};
  std::map<std::pair<std::string, std::string>, uint64_t> out;
  for (const auto& sample : samples) {
    for (const char* metric : kCumulative) {
      if (sample.metric == metric) out[{sample.entity, sample.metric}] =
          sample.value;
    }
  }
  return out;
}

TEST(EngineProcessTest, StatsMonotoneAcrossWorkerRestart) {
  // Worker counters live in the shm metrics arena and are zeroed by each
  // new incarnation; the parent's fold must bank the dead generation's
  // progress so every aggregated cumulative counter stays monotone across
  // an abort-fault restart — a reader polling gs_stats through the crash
  // must never see a value go backwards.
  std::vector<net::Packet> batch = MakeBatch(6000);
  FaultConfig fault;
  fault.kind = FaultConfig::Kind::kAbort;
  fault.worker = 0;
  fault.after_msgs = 10;
  EngineOptions options;
  options.punctuation_interval = 32;
  options.process.enabled = true;
  options.process.supervisor.heartbeat_period_ms = 5;
  options.fault = fault;
  Engine engine(options);
  engine.AddInterface("eth0");
  ASSERT_TRUE(engine.AddQuery(kAggQuery).ok());
  auto sub = engine.Subscribe("agg", 8192);
  ASSERT_TRUE(sub.ok());
  ASSERT_TRUE(engine.StartProcesses(1).ok());

  size_t half = batch.size() / 2;
  for (size_t i = 0; i < half; ++i) {
    ASSERT_TRUE(engine.InjectPacket("eth0", batch[i]).ok());
  }
  auto before = CumulativeByKey(engine.telemetry().Snapshot());
  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (engine.supervisor()->restarts() < 1 &&
         std::chrono::steady_clock::now() < deadline) {
    engine.Pump();
    usleep(1000);
  }
  ASSERT_GE(engine.supervisor()->restarts(), 1u) << "no restart observed";

  // Right after the restart: the replacement worker's arena slots were
  // reset, so an unfolded read would dip below `before` for every
  // worker-owned entity. The folded snapshot must not.
  auto after_restart = CumulativeByKey(engine.telemetry().Snapshot());
  for (const auto& [key, value] : before) {
    auto it = after_restart.find(key);
    ASSERT_NE(it, after_restart.end()) << key.first << "/" << key.second;
    EXPECT_GE(it->second, value)
        << key.first << "/" << key.second << " went backwards across restart";
  }
  // Mid-run, the HFTA node is still worker-owned: its gs_stats row is
  // tagged with the worker process, not the parent.
  bool saw_worker_proc = false;
  for (const auto& sample : engine.telemetry().Snapshot()) {
    if (sample.entity == "agg" && sample.metric == "tuples_out") {
      EXPECT_EQ(sample.proc, "w0");
      saw_worker_proc = true;
    }
  }
  EXPECT_TRUE(saw_worker_proc);

  for (size_t i = half; i < batch.size(); ++i) {
    ASSERT_TRUE(engine.InjectPacket("eth0", batch[i]).ok());
  }
  engine.FlushAll();
  auto final_counts = CumulativeByKey(engine.telemetry().Snapshot());
  for (const auto& [key, value] : after_restart) {
    auto it = final_counts.find(key);
    ASSERT_NE(it, final_counts.end());
    EXPECT_GE(it->second, value)
        << key.first << "/" << key.second << " went backwards at seal";
  }
  // After the seal adopted the worker's nodes, ownership reverts to the
  // parent and every row reads as proc=rts again.
  for (const auto& sample : engine.telemetry().Snapshot()) {
    EXPECT_EQ(sample.proc, "rts") << sample.entity << "/" << sample.metric;
  }
  std::map<std::string, uint64_t> by_metric;
  for (const auto& sample : engine.telemetry().Snapshot()) {
    by_metric[sample.metric] += sample.value;
  }
  EXPECT_GE(by_metric["worker_restarts"], 1u);
}

TEST(EngineProcessTest, ProcessStatsTotalsMatchSingleProcess) {
  // The acceptance bar for the telemetry plane: under --processes the
  // aggregated per-node tuple counters must equal the single-process
  // run's byte for byte — the process split changes where counters are
  // written (shm arena vs heap), never what they count. Each (entity,
  // metric) also appears exactly once, tagged with its owning process, so
  // the per-proc rows trivially sum to the aggregate.
  std::vector<net::Packet> batch = MakeBatch(4000);
  Engine* single = nullptr;
  ASSERT_FALSE(RunAgg(batch, 0, FaultConfig{}, &single).empty());
  std::map<std::pair<std::string, std::string>, uint64_t> reference;
  for (const auto& sample : single->telemetry().Snapshot()) {
    if (sample.metric == "tuples_in" || sample.metric == "tuples_out") {
      reference[{sample.entity, sample.metric}] = sample.value;
    }
  }
  ASSERT_FALSE(reference.empty());

  Engine* multi = nullptr;
  ASSERT_FALSE(RunAgg(batch, 2, FaultConfig{}, &multi).empty());
  std::map<std::pair<std::string, std::string>, uint64_t> seen;
  for (const auto& sample : multi->telemetry().Snapshot()) {
    if (sample.metric != "tuples_in" && sample.metric != "tuples_out") {
      continue;
    }
    auto [it, inserted] = seen.emplace(
        std::make_pair(sample.entity, sample.metric), sample.value);
    EXPECT_TRUE(inserted) << "duplicate row for " << sample.entity << "/"
                          << sample.metric
                          << ": per-proc rows would double-count";
    (void)it;
  }
  for (const auto& [key, value] : reference) {
    auto it = seen.find(key);
    ASSERT_NE(it, seen.end()) << key.first << "/" << key.second;
    EXPECT_EQ(it->second, value)
        << key.first << "/" << key.second
        << " diverged between single-process and --processes runs";
  }
}

TEST(EngineProcessTest, ThreadsAndProcessesAreExclusive) {
  EngineOptions options;
  options.process.enabled = true;
  Engine engine(options);
  engine.AddInterface("eth0");
  ASSERT_TRUE(engine.AddQuery(kAggQuery).ok());
  ASSERT_TRUE(engine.StartProcesses(1).ok());
  EXPECT_EQ(engine.StartThreads(2).code(),
            Status::Code::kFailedPrecondition);
  EXPECT_EQ(engine.AddQuery("DEFINE { query_name late; } "
                            "SELECT time FROM eth0.PKT")
                .status()
                .code(),
            Status::Code::kFailedPrecondition);
  engine.StopProcesses();
}

}  // namespace
}  // namespace gigascope::core
