// Differential fuzzing of the native compiled-query tier against the
// bytecode VM (DESIGN.md §15): a deterministic corpus of randomly generated
// GSQL expressions is compiled through both tiers and evaluated over random
// rows (including INT64_MIN, wraparound products, zero divisors, NaN and
// overflowing floats). The VM is the oracle; the native kernel must match
// byte for byte — same status, same error message, same has_value, same
// value bits.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "common/logging.h"
#include "common/rng.h"
#include "expr/fold.h"
#include "expr/typecheck.h"
#include "expr/vm.h"
#include "gsql/parser.h"
#include "jit/compiler.h"
#include "jit/engine.h"
#include "udf/registry.h"

namespace gigascope::jit {
namespace {

using expr::CompiledExpr;
using expr::EvalContext;
using expr::EvalOutput;
using expr::Value;
using gsql::DataType;
using gsql::FieldDef;
using gsql::OrderSpec;
using gsql::StreamKind;
using gsql::StreamSchema;

StreamSchema TestSchema() {
  std::vector<FieldDef> fields;
  fields.push_back({"t", DataType::kUint, OrderSpec::Increasing()});
  fields.push_back({"i", DataType::kInt, OrderSpec::None()});
  fields.push_back({"f", DataType::kFloat, OrderSpec::None()});
  fields.push_back({"b", DataType::kBool, OrderSpec::None()});
  return StreamSchema("T", StreamKind::kStream, fields);
}

Result<CompiledExpr> TryCompileExpr(const std::string& expression) {
  gsql::Catalog catalog;
  catalog.PutStreamSchema(TestSchema());
  auto stmt = gsql::ParseStatement("SELECT " + expression + " FROM T");
  GS_RETURN_IF_ERROR(stmt.status());
  auto* select = std::get_if<gsql::SelectStmt>(&stmt.value());
  auto resolved = gsql::AnalyzeSelect(*select, catalog);
  GS_RETURN_IF_ERROR(resolved.status());
  expr::TypeCheckContext ctx;
  ctx.resolver = udf::FunctionRegistry::Default();
  ctx.inputs = {TestSchema()};
  ctx.bindings = &resolved->bindings;
  GS_ASSIGN_OR_RETURN(expr::IrPtr ir,
                      expr::TypeCheck(resolved->stmt.items[0].expr, ctx));
  return expr::Compile(expr::FoldConstants(ir), {});
}

// -- Expression grammar ------------------------------------------------------

/// Random arithmetic expression string. Leaves are the numeric fields and
/// small literals; interior nodes are the five integer/float operators, so
/// the corpus hits promotion casts (t + i, i + f), wraparound, and the
/// division/modulo error paths.
std::string GenNumeric(Rng* rng, int depth) {
  if (depth <= 0 || rng->NextBelow(3) == 0) {
    switch (rng->NextBelow(6)) {
      case 0: return "t";
      case 1: return "i";
      case 2: return "f";
      case 3: return std::to_string(rng->NextBelow(100));
      case 4: return "(0 - " + std::to_string(rng->NextBelow(100)) + ")";
      default: return std::to_string(rng->NextBelow(8)) + ".5";
    }
  }
  static const char* kOps[] = {"+", "-", "*", "/", "%"};
  const char* op = kOps[rng->NextBelow(5)];
  return "(" + GenNumeric(rng, depth - 1) + " " + op + " " +
         GenNumeric(rng, depth - 1) + ")";
}

std::string GenBool(Rng* rng, int depth) {
  if (depth <= 0 || rng->NextBelow(3) == 0) {
    static const char* kCmps[] = {"=", "<>", "<", "<=", ">", ">="};
    const char* cmp = kCmps[rng->NextBelow(6)];
    return "(" + GenNumeric(rng, 1) + " " + cmp + " " + GenNumeric(rng, 1) +
           ")";
  }
  const char* op = rng->NextBool(0.5) ? "AND" : "OR";
  return "(" + GenBool(rng, depth - 1) + " " + op + " " +
         GenBool(rng, depth - 1) + ")";
}

std::string GenExpr(Rng* rng) {
  return rng->NextBool(0.3) ? GenBool(rng, 2) : GenNumeric(rng, 3);
}

// -- Row generation ----------------------------------------------------------

Value GenUint(Rng* rng) {
  switch (rng->NextBelow(5)) {
    case 0: return Value::Uint(0);
    case 1: return Value::Uint(1);
    case 2: return Value::Uint(UINT64_MAX);
    case 3: return Value::Uint(rng->NextBelow(1000));
    default: return Value::Uint(rng->Next());
  }
}

Value GenInt(Rng* rng) {
  switch (rng->NextBelow(6)) {
    case 0: return Value::Int(0);
    case 1: return Value::Int(-1);
    case 2: return Value::Int(INT64_MIN);
    case 3: return Value::Int(INT64_MAX);
    case 4: return Value::Int(int64_t(rng->NextBelow(200)) - 100);
    default: return Value::Int(static_cast<int64_t>(rng->Next()));
  }
}

Value GenFloat(Rng* rng) {
  switch (rng->NextBelow(6)) {
    case 0: return Value::Float(0.0);
    case 1: return Value::Float(-1.5);
    case 2: return Value::Float(1e300);
    case 3: return Value::Float(-1e300);
    case 4: return Value::Float(std::nan(""));
    default: return Value::Float(rng->NextDouble() * 1000.0 - 500.0);
  }
}

std::vector<Value> GenRow(Rng* rng) {
  return {GenUint(rng), GenInt(rng), GenFloat(rng),
          Value::Bool(rng->NextBool(0.5))};
}

/// Bit-exact value equality: floats compare by representation (so both-NaN
/// passes and -0.0 vs 0.0 fails), everything else through Value::Compare.
bool BitEqual(const Value& a, const Value& b) {
  if (a.type() != b.type()) return false;
  if (a.type() == DataType::kFloat) {
    double da = a.float_value(), db = b.float_value();
    return std::memcmp(&da, &db, sizeof(da)) == 0;
  }
  return a.Compare(b) == 0;
}

TEST(JitDiffTest, RandomExpressionsMatchVmExactly) {
  if (!JitCompiler::ToolchainAvailable()) {
    GTEST_SKIP() << "no C++ toolchain in this environment";
  }
  JitOptions options;
  options.mode = JitMode::kSync;
  JitEngine engine(options);
  Rng rng(0x9e3779b97f4a7c15ull);

  constexpr int kExpressions = 160;
  constexpr int kRowsPerExpr = 24;
  size_t native_kernels = 0;
  size_t error_cases = 0;

  std::vector<std::string> texts;
  std::vector<CompiledExpr> exprs;
  texts.reserve(kExpressions);
  exprs.reserve(kExpressions);  // stable addresses for the kernel slots
  for (int n = 0; n < kExpressions; ++n) {
    std::string text = GenExpr(&rng);
    auto compiled = TryCompileExpr(text);
    if (!compiled.ok()) continue;  // e.g. float modulo: rejected at typecheck
    texts.push_back(text);
    exprs.push_back(std::move(compiled).value());
  }
  ASSERT_GE(exprs.size(), 40u) << "grammar generates too few valid exprs";

  // One generated module for the whole corpus: exactly how a query's nodes
  // batch their requests through QueryJit.
  auto batch = engine.BeginQuery();
  for (CompiledExpr& expr : exprs) batch->RequestExpr(&expr);
  engine.Submit(std::move(batch));

  expr::Evaluator evaluator;
  for (size_t k = 0; k < exprs.size(); ++k) {
    const CompiledExpr& expr = exprs[k];
    bool has_kernel =
        expr.native != nullptr && expr.native->kernel.load() != nullptr;
    native_kernels += has_kernel ? 1 : 0;
    for (int r = 0; r < kRowsPerExpr; ++r) {
      std::vector<Value> row = GenRow(&rng);
      EvalContext ctx;
      ctx.row0 = &row;
      EvalOutput vm_out, native_out;
      Status vm_status = expr::Eval(expr, ctx, &vm_out);   // VM oracle
      Status native_status = evaluator.Eval(expr, ctx, &native_out);
      std::string what = texts[k] + " on row {" + row[0].ToString() + ", " +
                         row[1].ToString() + ", " + row[2].ToString() + ", " +
                         row[3].ToString() + "}";
      ASSERT_EQ(vm_status.ok(), native_status.ok()) << what;
      if (!vm_status.ok()) {
        ++error_cases;
        EXPECT_EQ(native_status.message(), vm_status.message()) << what;
        continue;
      }
      ASSERT_EQ(vm_out.has_value, native_out.has_value) << what;
      if (!vm_out.has_value) continue;
      EXPECT_TRUE(BitEqual(vm_out.value, native_out.value))
          << what << ": vm=" << vm_out.value.ToString()
          << " native=" << native_out.value.ToString();
    }
  }

  // The corpus must actually exercise the native tier, not silently fall
  // back everywhere, and must hit the runtime-error paths.
  EXPECT_GE(native_kernels, 30u);
  EXPECT_GE(error_cases, 1u);
  EXPECT_EQ(engine.fallbacks(), 0u);
}

}  // namespace
}  // namespace gigascope::jit
