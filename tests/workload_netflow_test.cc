// The Netflow generator must produce exactly the ordering structure §2.1
// describes: "A stream of Netflow records produced by a router will have
// monotonically increasing end timestamps, and generally (but not
// monotonically) increasing start timestamps. [...] the start attribute is
// banded-increasing(30 sec.)".

#include <gtest/gtest.h>

#include <map>

#include "core/engine.h"
#include "workload/netflow_gen.h"
#include "workload/traffic_gen.h"

namespace gigascope::workload {
namespace {

using expr::Value;

std::vector<FlowRecord> GenerateRecords(int packets, uint64_t dump_interval,
                                        double rate_bps = 2e6) {
  TrafficConfig config;
  config.seed = 31;
  config.num_flows = 40;
  config.offered_bits_per_sec = rate_bps;
  TrafficGenerator packet_gen(config);
  NetflowGenerator flow_gen(dump_interval);
  std::vector<FlowRecord> records;
  for (int i = 0; i < packets; ++i) {
    for (FlowRecord& record : flow_gen.OnPacket(packet_gen.Next())) {
      records.push_back(record);
    }
  }
  for (FlowRecord& record : flow_gen.FlushAll()) {
    records.push_back(record);
  }
  return records;
}

TEST(NetflowGenTest, EndTimesMonotonicallyIncrease) {
  auto records = GenerateRecords(20000, 30);
  ASSERT_GT(records.size(), 10u);
  for (size_t i = 1; i < records.size(); ++i) {
    EXPECT_GE(records[i].end_time, records[i - 1].end_time)
        << "record " << i;
  }
}

TEST(NetflowGenTest, StartTimesAreBandedByDumpInterval) {
  const uint64_t kInterval = 30;
  auto records = GenerateRecords(20000, kInterval);
  uint64_t high_water = 0;
  for (const FlowRecord& record : records) {
    high_water = std::max(high_water, record.start_time);
    // banded-increasing(30): never more than the band below the running
    // maximum.
    EXPECT_GE(record.start_time + kInterval, high_water);
  }
}

TEST(NetflowGenTest, StartTimesAreNotGloballyMonotone) {
  // The whole point of the banded property: plain monotonicity fails. A
  // long-lived flow (started early, still active late) is exported after
  // a short flow that started later but ended earlier.
  auto make_packet = [](SimTime t, uint16_t src_port) {
    net::TcpPacketSpec spec;
    spec.src_addr = 0x0a000001;
    spec.dst_addr = 0x0a000002;
    spec.src_port = src_port;
    spec.dst_port = 80;
    net::Packet packet;
    packet.bytes = net::BuildTcpPacket(spec);
    packet.orig_len = static_cast<uint32_t>(packet.bytes.size());
    packet.timestamp = t;
    return packet;
  };
  NetflowGenerator flow_gen(30);
  // Flow A: starts at 1s, lasts until 25s. Flow B: single packet at 10s.
  std::vector<FlowRecord> records;
  for (const net::Packet& packet :
       {make_packet(1 * kNanosPerSecond, 1000),
        make_packet(10 * kNanosPerSecond, 2000),
        make_packet(25 * kNanosPerSecond, 1000),
        make_packet(40 * kNanosPerSecond, 3000)}) {  // triggers the dump
    for (FlowRecord& record : flow_gen.OnPacket(packet)) {
      records.push_back(record);
    }
  }
  ASSERT_EQ(records.size(), 2u);
  // Export order is by end time: B (end 10, start 10) then A (end 25,
  // start 1) — start times go backwards while staying within the band.
  EXPECT_EQ(records[0].start_time, 10u);
  EXPECT_EQ(records[1].start_time, 1u);
  EXPECT_LE(records[0].end_time, records[1].end_time);
}

TEST(NetflowGenTest, ConservesPacketAndByteCounts) {
  TrafficConfig config;
  config.seed = 32;
  config.num_flows = 20;
  config.offered_bits_per_sec = 2e6;
  TrafficGenerator packet_gen(config);
  NetflowGenerator flow_gen(30);
  uint64_t fed_packets = 0, fed_bytes = 0;
  std::vector<FlowRecord> records;
  for (int i = 0; i < 5000; ++i) {
    net::Packet packet = packet_gen.Next();
    ++fed_packets;
    fed_bytes += packet.orig_len;
    for (FlowRecord& record : flow_gen.OnPacket(packet)) {
      records.push_back(record);
    }
  }
  for (FlowRecord& record : flow_gen.FlushAll()) records.push_back(record);
  uint64_t sum_packets = 0, sum_bytes = 0;
  for (const FlowRecord& record : records) {
    sum_packets += record.packets;
    sum_bytes += record.bytes;
  }
  EXPECT_EQ(sum_packets, fed_packets);
  EXPECT_EQ(sum_bytes, fed_bytes);
}

TEST(NetflowGenTest, FlowsAggregateAcrossPackets) {
  auto records = GenerateRecords(20000, 30);
  bool some_multi_packet = false;
  for (const FlowRecord& record : records) {
    if (record.packets > 1) some_multi_packet = true;
    EXPECT_LE(record.start_time, record.end_time);
  }
  EXPECT_TRUE(some_multi_packet) << "cache never aggregated anything";
}

TEST(NetflowGenTest, CacheEmptiesOnEveryDump) {
  TrafficConfig config;
  config.seed = 33;
  config.num_flows = 10;
  config.offered_bits_per_sec = 1e6;
  TrafficGenerator packet_gen(config);
  NetflowGenerator flow_gen(10);
  for (int i = 0; i < 2000; ++i) {
    net::Packet packet = packet_gen.Next();
    auto dumped = flow_gen.OnPacket(packet);
    if (!dumped.empty()) {
      // Right after a dump only the current packet's flow can be cached.
      EXPECT_LE(flow_gen.active_flows(), 1u);
    }
  }
}

// --- End to end: the banded NETFLOW stream through a GSQL aggregation ---

TEST(NetflowGsqlTest, BandedAggregationOverFlowRecords) {
  core::Engine engine;
  // Declare a NETFLOW-shaped stream (startTime banded, per the built-in
  // protocol schema) and feed generated records into it.
  std::vector<gsql::FieldDef> fields;
  fields.push_back({"endTime", gsql::DataType::kUint,
                    gsql::OrderSpec::Increasing()});
  fields.push_back({"startTime", gsql::DataType::kUint,
                    gsql::OrderSpec::Banded(30)});
  fields.push_back({"destIP", gsql::DataType::kIp, gsql::OrderSpec::None()});
  fields.push_back({"packets", gsql::DataType::kUint,
                    gsql::OrderSpec::None()});
  fields.push_back({"bytes", gsql::DataType::kUint, gsql::OrderSpec::None()});
  ASSERT_TRUE(engine
                  .DeclareStream(gsql::StreamSchema(
                      "flows", gsql::StreamKind::kStream, fields))
                  .ok());

  // Per-minute byte totals keyed by the *banded* start time: the banded
  // group-close rule must keep near-boundary groups open long enough that
  // no late record is lost.
  auto info = engine.AddQuery(
      "DEFINE { query_name permin; } "
      "SELECT tb, sum(bytes) FROM flows GROUP BY startTime/60 AS tb");
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  auto sub = engine.Subscribe("permin", 1 << 16);
  ASSERT_TRUE(sub.ok());

  auto records = GenerateRecords(40000, 30, /*rate_bps=*/0.5e6);
  ASSERT_GT(records.back().end_time, 120u) << "need several minutes of data";
  std::map<uint64_t, uint64_t> reference;
  for (const FlowRecord& record : records) {
    reference[record.start_time / 60] += record.bytes;
    ASSERT_TRUE(engine
                    .InjectRow("flows",
                               {Value::Uint(record.end_time),
                                Value::Uint(record.start_time),
                                Value::Ip(record.dst_addr),
                                Value::Uint(record.packets),
                                Value::Uint(record.bytes)})
                    .ok());
  }
  engine.PumpUntilIdle();
  engine.FlushAll();

  std::map<uint64_t, uint64_t> measured;
  while (auto row = (*sub)->NextRow()) {
    measured[(*row)[0].uint_value()] += (*row)[1].uint_value();
  }
  EXPECT_EQ(measured, reference);
}

}  // namespace
}  // namespace gigascope::workload
