#include <gtest/gtest.h>

#include "expr/typecheck.h"
#include "gsql/parser.h"
#include "plan/ordering.h"
#include "udf/registry.h"

namespace gigascope::plan {
namespace {

using gsql::DataType;
using gsql::FieldDef;
using gsql::StreamKind;
using gsql::StreamSchema;

StreamSchema Schema() {
  std::vector<FieldDef> fields;
  fields.push_back({"ts", DataType::kUint, OrderSpec::Strict()});
  fields.push_back({"t", DataType::kUint, OrderSpec::Increasing()});
  fields.push_back({"bt", DataType::kUint, OrderSpec::Banded(30)});
  fields.push_back({"v", DataType::kUint, OrderSpec::None()});
  return StreamSchema("S", StreamKind::kStream, fields);
}

/// Type-checks an expression over Schema() and imputes its order.
OrderSpec OrderOf(const std::string& expression) {
  gsql::Catalog catalog;
  catalog.PutStreamSchema(Schema());
  auto stmt = gsql::ParseStatement("SELECT " + expression + " FROM S");
  EXPECT_TRUE(stmt.ok()) << stmt.status().ToString();
  auto* select = std::get_if<gsql::SelectStmt>(&stmt.value());
  auto resolved = gsql::AnalyzeSelect(*select, catalog);
  EXPECT_TRUE(resolved.ok()) << resolved.status().ToString();
  expr::TypeCheckContext ctx;
  ctx.inputs = {Schema()};
  ctx.bindings = &resolved->bindings;
  ctx.resolver = udf::FunctionRegistry::Default();
  auto ir = expr::TypeCheck(resolved->stmt.items[0].expr, ctx);
  EXPECT_TRUE(ir.ok()) << ir.status().ToString();
  return ImputeExprOrder(*ir, Schema());
}

TEST(ImputeTest, DirectFieldKeepsOrder) {
  EXPECT_EQ(OrderOf("ts").kind, OrderKind::kStrictlyIncreasing);
  EXPECT_EQ(OrderOf("t").kind, OrderKind::kIncreasing);
  EXPECT_EQ(OrderOf("bt").kind, OrderKind::kBandedIncreasing);
  EXPECT_EQ(OrderOf("bt").band, 30u);
  EXPECT_EQ(OrderOf("v").kind, OrderKind::kNone);
}

TEST(ImputeTest, BucketingLosesStrictness) {
  // The paper's time/60 minute buckets: monotone but not strict.
  OrderSpec order = OrderOf("ts / 60");
  EXPECT_EQ(order.kind, OrderKind::kIncreasing);
}

TEST(ImputeTest, BucketingShrinksBands) {
  OrderSpec order = OrderOf("bt / 30");
  EXPECT_EQ(order.kind, OrderKind::kBandedIncreasing);
  EXPECT_LE(order.band, 2u);
}

TEST(ImputeTest, AddConstantPreservesOrder) {
  EXPECT_EQ(OrderOf("ts + 5").kind, OrderKind::kStrictlyIncreasing);
  EXPECT_EQ(OrderOf("5 + ts").kind, OrderKind::kStrictlyIncreasing);
  EXPECT_EQ(OrderOf("bt - 7").kind, OrderKind::kBandedIncreasing);
  EXPECT_EQ(OrderOf("bt - 7").band, 30u);
}

TEST(ImputeTest, ScalingPreservesOrderAndScalesBands) {
  EXPECT_EQ(OrderOf("ts * 2").kind, OrderKind::kStrictlyIncreasing);
  OrderSpec order = OrderOf("bt * 3");
  EXPECT_EQ(order.kind, OrderKind::kBandedIncreasing);
  EXPECT_EQ(order.band, 90u);
}

TEST(ImputeTest, FieldPlusFieldIsUnknown) {
  EXPECT_EQ(OrderOf("ts + v").kind, OrderKind::kNone);
}

TEST(ImputeTest, DivisionByFieldIsUnknown) {
  EXPECT_EQ(OrderOf("ts / v").kind, OrderKind::kNone);
}

TEST(ImputeTest, HashOfStrictIsNonRepeating) {
  // The paper's §2.1 example: a hash applied to a timestamp.
  EXPECT_EQ(OrderOf("hash64(ts)").kind, OrderKind::kNonRepeating);
  // Hash of a merely-increasing attribute can repeat.
  EXPECT_EQ(OrderOf("hash64(t)").kind, OrderKind::kNone);
}

TEST(WeakestCommonTest, MonotonePairsStayMonotone) {
  OrderSpec strict = OrderSpec::Strict();
  OrderSpec result = WeakestCommonOrder(strict, strict);
  // Interleaving loses strictness.
  EXPECT_EQ(result.kind, OrderKind::kIncreasing);
}

TEST(WeakestCommonTest, BandsWiden) {
  OrderSpec result =
      WeakestCommonOrder(OrderSpec::Banded(10), OrderSpec::Banded(30));
  EXPECT_EQ(result.kind, OrderKind::kBandedIncreasing);
  EXPECT_EQ(result.band, 30u);
  result = WeakestCommonOrder(OrderSpec::Increasing(), OrderSpec::Banded(5));
  EXPECT_EQ(result.band, 5u);
}

TEST(WeakestCommonTest, MixedDirectionsHaveNoOrder) {
  OrderSpec down{OrderKind::kDecreasing, 0, {}};
  EXPECT_EQ(WeakestCommonOrder(OrderSpec::Increasing(), down).kind,
            OrderKind::kNone);
}

TEST(WeakestCommonTest, NoneAbsorbs) {
  EXPECT_EQ(WeakestCommonOrder(OrderSpec::Strict(), OrderSpec::None()).kind,
            OrderKind::kNone);
}

TEST(OrderImpliesTest, Hierarchy) {
  OrderSpec strict = OrderSpec::Strict();
  OrderSpec increasing = OrderSpec::Increasing();
  OrderSpec banded10 = OrderSpec::Banded(10);
  OrderSpec banded30 = OrderSpec::Banded(30);
  OrderSpec nonrep{OrderKind::kNonRepeating, 0, {}};

  EXPECT_TRUE(OrderImplies(strict, increasing));
  EXPECT_TRUE(OrderImplies(strict, banded30));
  EXPECT_TRUE(OrderImplies(strict, nonrep));
  EXPECT_TRUE(OrderImplies(increasing, banded10));
  EXPECT_TRUE(OrderImplies(banded10, banded30));
  EXPECT_FALSE(OrderImplies(banded30, banded10));
  EXPECT_FALSE(OrderImplies(increasing, strict));
  EXPECT_FALSE(OrderImplies(increasing, nonrep));
  // Everything implies "no order".
  EXPECT_TRUE(OrderImplies(OrderSpec::None(), OrderSpec::None()));
}

TEST(AggregateKeyOrderTest, IncreasingKeysYieldMonotoneOutput) {
  EXPECT_EQ(ImputeAggregateKeyOrder(OrderSpec::Strict()).kind,
            OrderKind::kIncreasing);
  EXPECT_EQ(ImputeAggregateKeyOrder(OrderSpec::None()).kind,
            OrderKind::kNone);
  // Banded keys stay banded: eager pre-aggregation may emit partials
  // anywhere within the band (§2.1).
  OrderSpec banded = ImputeAggregateKeyOrder(OrderSpec::Banded(5));
  EXPECT_EQ(banded.kind, OrderKind::kBandedIncreasing);
  EXPECT_EQ(banded.band, 5u);
}

TEST(JoinOrderTest, EqualityWindowKeepsCommonOrder) {
  OrderSpec result = ImputeJoinOrder(OrderSpec::Strict(),
                                     OrderSpec::Strict(), 0, false);
  EXPECT_EQ(result.kind, OrderKind::kIncreasing);
}

TEST(JoinOrderTest, BandWindowDependsOnAlgorithm) {
  // §2.1: "B.ts might be monotonically increasing or banded-increasing(2)
  // depending on the choice of join algorithm".
  OrderSpec eager = ImputeJoinOrder(OrderSpec::Increasing(),
                                    OrderSpec::Increasing(), 2, false);
  EXPECT_EQ(eager.kind, OrderKind::kBandedIncreasing);
  EXPECT_EQ(eager.band, 2u);
  OrderSpec buffered = ImputeJoinOrder(OrderSpec::Increasing(),
                                       OrderSpec::Increasing(), 2, true);
  EXPECT_EQ(buffered.kind, OrderKind::kIncreasing);
}

}  // namespace
}  // namespace gigascope::plan
