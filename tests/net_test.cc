#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "net/headers.h"
#include "net/packet.h"
#include "net/pcap.h"

namespace gigascope::net {
namespace {

TcpPacketSpec SampleTcpSpec() {
  TcpPacketSpec spec;
  spec.src_addr = 0x0a000001;  // 10.0.0.1
  spec.dst_addr = 0x0a000002;  // 10.0.0.2
  spec.src_port = 49152;
  spec.dst_port = 80;
  spec.seq = 1000;
  spec.ack = 2000;
  spec.flags = kTcpFlagAck | kTcpFlagPsh;
  spec.payload = "HTTP/1.1 200 OK\r\n\r\nhello";
  return spec;
}

TEST(HeadersTest, TcpBuildDecodeRoundTrip) {
  ByteBuffer bytes = BuildTcpPacket(SampleTcpSpec());
  auto decoded = DecodePacket(ByteSpan(bytes.data(), bytes.size()));
  ASSERT_TRUE(decoded.ok());
  ASSERT_TRUE(decoded->is_ipv4());
  ASSERT_TRUE(decoded->is_tcp());
  EXPECT_EQ(decoded->ip->src_addr, 0x0a000001u);
  EXPECT_EQ(decoded->ip->dst_addr, 0x0a000002u);
  EXPECT_EQ(decoded->ip->protocol, kIpProtoTcp);
  EXPECT_EQ(decoded->tcp->src_port, 49152);
  EXPECT_EQ(decoded->tcp->dst_port, 80);
  EXPECT_EQ(decoded->tcp->seq, 1000u);
  EXPECT_EQ(decoded->tcp->ack, 2000u);
  EXPECT_EQ(decoded->tcp->flags, kTcpFlagAck | kTcpFlagPsh);
  std::string payload(reinterpret_cast<const char*>(decoded->payload.data()),
                      decoded->payload.size());
  EXPECT_EQ(payload, "HTTP/1.1 200 OK\r\n\r\nhello");
}

TEST(HeadersTest, UdpBuildDecodeRoundTrip) {
  UdpPacketSpec spec;
  spec.src_addr = 0xc0a80101;
  spec.dst_addr = 0xc0a80102;
  spec.src_port = 5353;
  spec.dst_port = 53;
  spec.payload = "dns-ish";
  ByteBuffer bytes = BuildUdpPacket(spec);
  auto decoded = DecodePacket(ByteSpan(bytes.data(), bytes.size()));
  ASSERT_TRUE(decoded.ok());
  ASSERT_TRUE(decoded->is_udp());
  EXPECT_FALSE(decoded->is_tcp());
  EXPECT_EQ(decoded->udp->src_port, 5353);
  EXPECT_EQ(decoded->udp->dst_port, 53);
  EXPECT_EQ(decoded->udp->length, kUdpHeaderLen + spec.payload.size());
}

TEST(HeadersTest, IpChecksumValid) {
  ByteBuffer bytes = BuildTcpPacket(SampleTcpSpec());
  // Recomputing the checksum over the IP header (with the stored checksum
  // in place) must yield zero.
  ByteSpan header(bytes.data() + kEthernetHeaderLen, kIpv4MinHeaderLen);
  EXPECT_EQ(InternetChecksum(header), 0);
}

TEST(HeadersTest, TotalLengthConsistent) {
  TcpPacketSpec spec = SampleTcpSpec();
  ByteBuffer bytes = BuildTcpPacket(spec);
  auto decoded = DecodePacket(ByteSpan(bytes.data(), bytes.size()));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->ip->total_len,
            kIpv4MinHeaderLen + kTcpMinHeaderLen + spec.payload.size());
  EXPECT_EQ(bytes.size(), kEthernetHeaderLen + decoded->ip->total_len);
}

TEST(HeadersTest, TruncatedPacketStopsAtParsedLayer) {
  ByteBuffer bytes = BuildTcpPacket(SampleTcpSpec());
  // Cut inside the TCP header: Ethernet + IP parse, TCP does not.
  ByteSpan truncated(bytes.data(), kEthernetHeaderLen + kIpv4MinHeaderLen + 4);
  auto decoded = DecodePacket(truncated);
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded->is_ipv4());
  EXPECT_FALSE(decoded->is_tcp());
}

TEST(HeadersTest, TooShortForEthernetIsError) {
  ByteBuffer bytes = {1, 2, 3};
  EXPECT_FALSE(DecodePacket(ByteSpan(bytes.data(), bytes.size())).ok());
}

TEST(HeadersTest, NonIpv4EtherTypeYieldsNoIpLayer) {
  ByteBuffer bytes = BuildTcpPacket(SampleTcpSpec());
  bytes[12] = 0x86;  // 0x86dd = IPv6 ethertype
  bytes[13] = 0xdd;
  auto decoded = DecodePacket(ByteSpan(bytes.data(), bytes.size()));
  ASSERT_TRUE(decoded.ok());
  EXPECT_FALSE(decoded->is_ipv4());
}

TEST(HeadersTest, FragmentHasNoTransportHeader) {
  ByteBuffer bytes = BuildTcpPacket(SampleTcpSpec());
  // Set fragment offset to 100 (bytes 20-21 of IP header = offset 34).
  bytes[kEthernetHeaderLen + 6] = 0x00;
  bytes[kEthernetHeaderLen + 7] = 100;
  auto decoded = DecodePacket(ByteSpan(bytes.data(), bytes.size()));
  ASSERT_TRUE(decoded.ok());
  ASSERT_TRUE(decoded->is_ipv4());
  EXPECT_EQ(decoded->ip->fragment_offset, 100);
  EXPECT_FALSE(decoded->is_tcp());
}

TEST(PacketTest, SnapLenTruncates) {
  Packet packet;
  packet.bytes = BuildTcpPacket(SampleTcpSpec());
  packet.orig_len = static_cast<uint32_t>(packet.bytes.size());
  uint32_t original = packet.orig_len;
  ApplySnapLen(&packet, 60);
  EXPECT_EQ(packet.bytes.size(), 60u);
  EXPECT_EQ(packet.orig_len, original);
  // Snap 0 = no truncation.
  Packet full;
  full.bytes = BuildTcpPacket(SampleTcpSpec());
  size_t len = full.bytes.size();
  ApplySnapLen(&full, 0);
  EXPECT_EQ(full.bytes.size(), len);
}

class PcapTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "gs_pcap_test.pcap";
  }
  void TearDown() override { std::remove(path_.c_str()); }
  std::string path_;
};

TEST_F(PcapTest, WriteReadRoundTrip) {
  PcapWriter writer;
  ASSERT_TRUE(writer.Open(path_).ok());
  std::vector<Packet> packets;
  for (int i = 0; i < 10; ++i) {
    Packet packet;
    TcpPacketSpec spec = SampleTcpSpec();
    spec.seq = static_cast<uint32_t>(i);
    packet.bytes = BuildTcpPacket(spec);
    packet.orig_len = static_cast<uint32_t>(packet.bytes.size());
    packet.timestamp = i * kNanosPerSecond + i * 37;
    ASSERT_TRUE(writer.Write(packet).ok());
    packets.push_back(std::move(packet));
  }
  EXPECT_EQ(writer.packets_written(), 10u);
  ASSERT_TRUE(writer.Close().ok());

  PcapReader reader;
  ASSERT_TRUE(reader.Open(path_).ok());
  EXPECT_EQ(reader.link_type(), kLinkTypeEthernet);
  for (int i = 0; i < 10; ++i) {
    Packet packet;
    bool eof = false;
    ASSERT_TRUE(reader.Next(&packet, &eof).ok());
    ASSERT_FALSE(eof);
    EXPECT_EQ(packet.timestamp, packets[i].timestamp);
    EXPECT_EQ(packet.bytes, packets[i].bytes);
    EXPECT_EQ(packet.orig_len, packets[i].orig_len);
  }
  Packet packet;
  bool eof = false;
  ASSERT_TRUE(reader.Next(&packet, &eof).ok());
  EXPECT_TRUE(eof);
}

TEST_F(PcapTest, SnapLenRecordedInCapture) {
  PcapWriter writer;
  ASSERT_TRUE(writer.Open(path_, 60).ok());
  Packet packet;
  packet.bytes = BuildTcpPacket(SampleTcpSpec());
  packet.orig_len = static_cast<uint32_t>(packet.bytes.size());
  ASSERT_GT(packet.orig_len, 60u);
  ApplySnapLen(&packet, 60);
  ASSERT_TRUE(writer.Write(packet).ok());
  ASSERT_TRUE(writer.Close().ok());

  PcapReader reader;
  ASSERT_TRUE(reader.Open(path_).ok());
  EXPECT_EQ(reader.snap_len(), 60u);
  Packet read_back;
  bool eof = false;
  ASSERT_TRUE(reader.Next(&read_back, &eof).ok());
  ASSERT_FALSE(eof);
  EXPECT_EQ(read_back.bytes.size(), 60u);
  EXPECT_GT(read_back.orig_len, 60u);
}

TEST_F(PcapTest, RejectsGarbageFile) {
  std::FILE* f = std::fopen(path_.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  const char garbage[] = "this is not a pcap file at all";
  std::fwrite(garbage, 1, sizeof(garbage), f);
  std::fclose(f);
  PcapReader reader;
  EXPECT_FALSE(reader.Open(path_).ok());
}

TEST_F(PcapTest, MissingFileIsNotFound) {
  PcapReader reader;
  Status status = reader.Open("/nonexistent/definitely/missing.pcap");
  EXPECT_EQ(status.code(), Status::Code::kNotFound);
}

TEST_F(PcapTest, TruncatedRecordIsError) {
  PcapWriter writer;
  ASSERT_TRUE(writer.Open(path_).ok());
  Packet packet;
  packet.bytes = BuildTcpPacket(SampleTcpSpec());
  packet.orig_len = static_cast<uint32_t>(packet.bytes.size());
  ASSERT_TRUE(writer.Write(packet).ok());
  ASSERT_TRUE(writer.Close().ok());

  // Truncate the file mid-record.
  std::FILE* f = std::fopen(path_.c_str(), "rb+");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 0, SEEK_END);
  long size = std::ftell(f);
  std::fclose(f);
  ASSERT_EQ(truncate(path_.c_str(), size - 10), 0);

  PcapReader reader;
  ASSERT_TRUE(reader.Open(path_).ok());
  Packet read_back;
  bool eof = false;
  EXPECT_FALSE(reader.Next(&read_back, &eof).ok());
}

TEST_F(PcapTest, ReadsForeignByteOrder) {
  // Hand-craft a classic (microsecond) pcap whose global header and record
  // headers are big-endian — as if captured on an opposite-endian machine.
  std::FILE* f = std::fopen(path_.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  auto put32be = [f](uint32_t v) {
    uint8_t bytes[4] = {static_cast<uint8_t>(v >> 24),
                        static_cast<uint8_t>(v >> 16),
                        static_cast<uint8_t>(v >> 8),
                        static_cast<uint8_t>(v)};
    std::fwrite(bytes, 1, 4, f);
  };
  auto put16be = [f](uint16_t v) {
    uint8_t bytes[2] = {static_cast<uint8_t>(v >> 8),
                        static_cast<uint8_t>(v)};
    std::fwrite(bytes, 1, 2, f);
  };
  put32be(kPcapMagic);  // on a little-endian reader this arrives swapped
  put16be(2);           // version major
  put16be(4);           // version minor
  put32be(0);           // thiszone
  put32be(0);           // sigfigs
  put32be(65535);       // snaplen
  put32be(kLinkTypeEthernet);
  // One record: ts = 7s + 500us, 4 captured of 60 original bytes.
  put32be(7);
  put32be(500);
  put32be(4);
  put32be(60);
  const uint8_t body[4] = {0xde, 0xad, 0xbe, 0xef};
  std::fwrite(body, 1, 4, f);
  std::fclose(f);

  PcapReader reader;
  ASSERT_TRUE(reader.Open(path_).ok());
  EXPECT_EQ(reader.snap_len(), 65535u);
  Packet packet;
  bool eof = false;
  ASSERT_TRUE(reader.Next(&packet, &eof).ok());
  ASSERT_FALSE(eof);
  EXPECT_EQ(packet.timestamp, 7 * kNanosPerSecond + 500 * kNanosPerMicro);
  EXPECT_EQ(packet.orig_len, 60u);
  EXPECT_EQ(packet.bytes, (ByteBuffer{0xde, 0xad, 0xbe, 0xef}));
}

TEST_F(PcapTest, MicrosecondMagicScalesTimestamps) {
  // Same-endian classic magic: subseconds are microseconds, not nanos.
  std::FILE* f = std::fopen(path_.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  auto put32 = [f](uint32_t v) { std::fwrite(&v, 4, 1, f); };
  auto put16 = [f](uint16_t v) { std::fwrite(&v, 2, 1, f); };
  put32(kPcapMagic);
  put16(2);
  put16(4);
  put32(0);
  put32(0);
  put32(65535);
  put32(kLinkTypeEthernet);
  put32(1);    // 1 second
  put32(250);  // 250 microseconds
  put32(0);    // empty body
  put32(0);
  std::fclose(f);

  PcapReader reader;
  ASSERT_TRUE(reader.Open(path_).ok());
  Packet packet;
  bool eof = false;
  ASSERT_TRUE(reader.Next(&packet, &eof).ok());
  EXPECT_EQ(packet.timestamp, kNanosPerSecond + 250 * kNanosPerMicro);
}

}  // namespace
}  // namespace gigascope::net
