#include <gtest/gtest.h>

#include "common/bytes.h"
#include "common/rng.h"
#include "udf/lpm.h"

namespace gigascope::udf {
namespace {

TEST(LpmTest, EmptyTableMatchesNothing) {
  LpmTable table;
  EXPECT_FALSE(table.Lookup(0x0a000001).has_value());
}

TEST(LpmTest, ExactPrefixMatch) {
  LpmTable table;
  ASSERT_TRUE(table.Add(0x0a000000, 8, 1).ok());  // 10/8
  EXPECT_EQ(table.Lookup(0x0a123456).value(), 1u);
  EXPECT_FALSE(table.Lookup(0x0b000000).has_value());
}

TEST(LpmTest, LongestPrefixWins) {
  LpmTable table;
  ASSERT_TRUE(table.Add(0x0a000000, 8, 1).ok());   // 10/8
  ASSERT_TRUE(table.Add(0x0a010000, 16, 2).ok());  // 10.1/16
  ASSERT_TRUE(table.Add(0x0a010200, 24, 3).ok());  // 10.1.2/24
  EXPECT_EQ(table.Lookup(0x0a010203).value(), 3u);
  EXPECT_EQ(table.Lookup(0x0a01ff00).value(), 2u);
  EXPECT_EQ(table.Lookup(0x0aff0000).value(), 1u);
}

TEST(LpmTest, DefaultRouteCoversEverything) {
  LpmTable table;
  ASSERT_TRUE(table.Add(0, 0, 99).ok());
  EXPECT_EQ(table.Lookup(0xffffffff).value(), 99u);
  EXPECT_EQ(table.Lookup(0).value(), 99u);
}

TEST(LpmTest, HostRoute) {
  LpmTable table;
  ASSERT_TRUE(table.Add(0x0a000001, 32, 7).ok());
  EXPECT_EQ(table.Lookup(0x0a000001).value(), 7u);
  EXPECT_FALSE(table.Lookup(0x0a000002).has_value());
}

TEST(LpmTest, ReAddOverwritesId) {
  LpmTable table;
  ASSERT_TRUE(table.Add(0x0a000000, 8, 1).ok());
  ASSERT_TRUE(table.Add(0x0a000000, 8, 2).ok());
  EXPECT_EQ(table.Lookup(0x0a000001).value(), 2u);
  EXPECT_EQ(table.size(), 1u);
}

TEST(LpmTest, HostBitsNormalized) {
  LpmTable table;
  // 10.1.2.3/16 should behave as 10.1.0.0/16.
  ASSERT_TRUE(table.Add(0x0a010203, 16, 5).ok());
  EXPECT_EQ(table.Lookup(0x0a01ffff).value(), 5u);
}

TEST(LpmTest, RejectsBadPrefixLength) {
  LpmTable table;
  EXPECT_FALSE(table.Add(0, 33, 1).ok());
  EXPECT_FALSE(table.Add(0, -1, 1).ok());
}

TEST(LpmTest, TrieMatchesLinearOnRandomTables) {
  Rng rng(2024);
  LpmTable table;
  for (int i = 0; i < 500; ++i) {
    uint32_t prefix = static_cast<uint32_t>(rng.Next());
    int len = static_cast<int>(rng.NextBelow(33));
    ASSERT_TRUE(table.Add(prefix, len, rng.NextBelow(1000)).ok());
  }
  for (int i = 0; i < 5000; ++i) {
    uint32_t addr = static_cast<uint32_t>(rng.Next());
    EXPECT_EQ(table.Lookup(addr), table.LookupLinear(addr))
        << "mismatch for " << Ipv4ToString(addr);
  }
}

TEST(LpmTest, ParseTableText) {
  auto table = LpmTable::Parse(
      "# AT&T peers\n"
      "10.0.0.0/8 1\n"
      "\n"
      "192.168.0.0/16 2   # office\n"
      "0.0.0.0/0 3\n");
  ASSERT_TRUE(table.ok()) << table.status().ToString();
  EXPECT_EQ(table->size(), 3u);
  EXPECT_EQ(table->Lookup(0x0a000001).value(), 1u);
  EXPECT_EQ(table->Lookup(0xc0a80001).value(), 2u);
  EXPECT_EQ(table->Lookup(0x08080808).value(), 3u);
}

TEST(LpmTest, ParseRejectsMalformed) {
  EXPECT_FALSE(LpmTable::Parse("10.0.0.0 1\n").ok());        // no /len
  EXPECT_FALSE(LpmTable::Parse("10.0.0.0/8\n").ok());        // no id
  EXPECT_FALSE(LpmTable::Parse("10.0.0/8 1\n").ok());        // bad address
  EXPECT_FALSE(LpmTable::Parse("10.0.0.0/99 1\n").ok());     // bad length
}

TEST(LpmTest, LoadFromMissingFileIsNotFound) {
  auto table = LpmTable::LoadFromFile("/no/such/file.tbl");
  ASSERT_FALSE(table.ok());
  EXPECT_EQ(table.status().code(), Status::Code::kNotFound);
}

TEST(LpmTest, LoadFromFileRoundTrip) {
  std::string path = ::testing::TempDir() + "gs_lpm_test.tbl";
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fputs("172.16.0.0/12 11\n10.0.0.0/8 22\n", f);
  std::fclose(f);
  auto table = LpmTable::LoadFromFile(path);
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->Lookup(0xac100101).value(), 11u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace gigascope::udf
