// Golden-file tests for EXPLAIN ANALYZE: a deterministic workload runs
// through the engine, and the annotated plan rendering (actual tuple
// counts, ring health, jit-active tier, process placement) is compared
// byte-for-byte against checked-in goldens with volatile fields (ring
// occupancy, timings) masked. The JSON rendering is checked structurally.
//
// Regenerate after an intentional change:
//   GS_UPDATE_GOLDENS=1 ./build/tests/analyze_test
// then inspect the diff under tests/golden/.

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "core/engine.h"
#include "net/headers.h"

#ifndef GS_GOLDEN_DIR
#error "GS_GOLDEN_DIR must be defined to the tests/golden directory"
#endif

namespace gigascope::core {
namespace {

net::Packet MakeTcpPacket(SimTime timestamp, uint32_t dst_addr,
                          uint16_t dst_port) {
  net::TcpPacketSpec spec;
  spec.src_addr = 0xac100001;
  spec.dst_addr = dst_addr;
  spec.src_port = 40000;
  spec.dst_port = dst_port;
  spec.flags = net::kTcpFlagAck;
  spec.payload = "x";
  net::Packet packet;
  packet.bytes = net::BuildTcpPacket(spec);
  packet.orig_len = static_cast<uint32_t>(packet.bytes.size());
  packet.timestamp = timestamp;
  return packet;
}

net::Packet MakeUdpPacket(SimTime timestamp, uint16_t dst_port) {
  net::UdpPacketSpec spec;
  spec.src_addr = 0xac100001;
  spec.dst_addr = 0x0a000001;
  spec.src_port = 40000;
  spec.dst_port = dst_port;
  spec.payload = "x";
  net::Packet packet;
  packet.bytes = net::BuildUdpPacket(spec);
  packet.orig_len = static_cast<uint32_t>(packet.bytes.size());
  packet.timestamp = timestamp;
  return packet;
}

class AnalyzeTest : public ::testing::Test {
 protected:
  // Runs `query` over 5 TCP + 3 UDP packets (one per second) through a
  // fresh single-process engine; the counts in the golden follow from
  // this fixed workload.
  void RunWorkload(Engine* engine, const std::string& query) {
    engine->AddInterface("eth0");
    auto info = engine->AddQuery(query);
    ASSERT_TRUE(info.ok()) << info.status().ToString();
    auto sub = engine->Subscribe(info->name, 8192);
    ASSERT_TRUE(sub.ok());
    for (int i = 0; i < 5; ++i) {
      ASSERT_TRUE(engine
                      ->InjectPacket("eth0",
                                     MakeTcpPacket((i + 1) * kNanosPerSecond,
                                                   0x0a000001, 80))
                      .ok());
    }
    for (int i = 0; i < 3; ++i) {
      ASSERT_TRUE(
          engine
              ->InjectPacket("eth0",
                             MakeUdpPacket((i + 6) * kNanosPerSecond, 53))
              .ok());
    }
    engine->PumpUntilIdle();
    engine->FlushAll();
  }

  void CheckGolden(const std::string& golden_name, const std::string& text) {
    const std::string path =
        std::string(GS_GOLDEN_DIR) + "/" + golden_name + ".txt";
    if (std::getenv("GS_UPDATE_GOLDENS") != nullptr) {
      std::ofstream out(path);
      ASSERT_TRUE(out.good()) << "cannot write " << path;
      out << text;
      return;
    }
    std::ifstream in(path);
    ASSERT_TRUE(in.good()) << "missing golden " << path
                           << " (run with GS_UPDATE_GOLDENS=1)";
    std::ostringstream expected;
    expected << in.rdbuf();
    EXPECT_EQ(text, expected.str()) << "ANALYZE drifted from " << path;
  }
};

TEST_F(AnalyzeTest, LftaFilterGolden) {
  Engine engine;
  RunWorkload(&engine,
              "DEFINE { query_name tcponly; } "
              "SELECT time, destIP, destPort FROM eth0.PKT "
              "WHERE ipVersion = 4 AND protocol = 6");
  CheckGolden("analyze_lfta_filter",
              engine.AnalyzeText(/*mask_volatile=*/true));
}

TEST_F(AnalyzeTest, SplitAggregateGolden) {
  Engine engine;
  RunWorkload(&engine,
              "DEFINE { query_name counts; } "
              "SELECT tb, destIP, count(*), sum(len) FROM eth0.PKT "
              "WHERE protocol = 6 GROUP BY time/60 AS tb, destIP");
  CheckGolden("analyze_split_aggregate",
              engine.AnalyzeText(/*mask_volatile=*/true));
}

// The JSON rendering: balanced, one entry per query, the analyze summary
// and per-node actuals present, and the actual counts agreeing with the
// text rendering's fixed workload (8 tuples into the filter, 5 out).
TEST_F(AnalyzeTest, JsonShapeAndActuals) {
  Engine engine;
  RunWorkload(&engine,
              "DEFINE { query_name tcponly; } "
              "SELECT time, destIP, destPort FROM eth0.PKT "
              "WHERE ipVersion = 4 AND protocol = 6");
  const std::string json = engine.AnalyzeJson();
  int depth = 0;
  bool in_string = false;
  for (size_t i = 0; i < json.size(); ++i) {
    char c = json[i];
    if (c == '"' && (i == 0 || json[i - 1] != '\\')) in_string = !in_string;
    if (in_string) continue;
    if (c == '{' || c == '[') ++depth;
    if (c == '}' || c == ']') --depth;
  }
  EXPECT_EQ(depth, 0) << "unbalanced JSON: " << json;
  EXPECT_EQ(json.rfind("{\"queries\":[", 0), 0u);
  EXPECT_NE(json.find("\"analyze\":{\"pump\":\"single\""), std::string::npos);
  EXPECT_NE(json.find("\"actual\":{"), std::string::npos);
  EXPECT_NE(json.find("\"tuples_in\":8"), std::string::npos);
  EXPECT_NE(json.find("\"tuples_out\":5"), std::string::npos);
  // Unmasked JSON carries the volatile fields; they must vanish under
  // mask_volatile so goldens and diffable artifacts stay stable.
  EXPECT_NE(json.find("\"timing\":{"), std::string::npos);
  const std::string masked = engine.AnalyzeJson(/*mask_volatile=*/true);
  EXPECT_EQ(masked.find("\"timing\":{"), std::string::npos);
}

}  // namespace
}  // namespace gigascope::core
