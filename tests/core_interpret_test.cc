// Tests for the packet interpretation library (§2.2: "the Gigascope run
// time system interprets the data packets as a collection of fields using
// a library of interpretation functions") and the sampling UDF.

#include <gtest/gtest.h>

#include "core/engine.h"
#include "gsql/catalog.h"
#include "net/headers.h"

namespace gigascope::core {
namespace {

using expr::Value;
using gsql::DataType;

net::Packet SamplePacket() {
  net::TcpPacketSpec spec;
  spec.src_addr = 0x0a000001;
  spec.dst_addr = 0xc0a80102;
  spec.src_port = 49152;
  spec.dst_port = 443;
  spec.seq = 777;
  spec.flags = net::kTcpFlagSyn | net::kTcpFlagAck;
  spec.ip_id = 999;
  spec.payload = "TLS-ish bytes";
  net::Packet packet;
  packet.bytes = net::BuildTcpPacket(spec);
  packet.orig_len = static_cast<uint32_t>(packet.bytes.size());
  packet.timestamp = 5 * kNanosPerSecond + 123;
  return packet;
}

TEST(InterpretPacketTest, AllPktFieldsExtracted) {
  auto schema = gsql::Catalog::BuiltinPacketSchema();
  net::Packet packet = SamplePacket();
  rts::Row row = InterpretPacket(schema, packet);
  ASSERT_EQ(row.size(), schema.num_fields());

  auto get = [&](const char* name) {
    auto index = schema.FieldIndex(name);
    EXPECT_TRUE(index.has_value()) << name;
    return row[*index];
  };
  EXPECT_EQ(get("time").uint_value(), 5u);
  EXPECT_EQ(get("timestamp").uint_value(),
            static_cast<uint64_t>(packet.timestamp));
  EXPECT_EQ(get("srcIP").ip_value(), 0x0a000001u);
  EXPECT_EQ(get("destIP").ip_value(), 0xc0a80102u);
  EXPECT_EQ(get("srcPort").uint_value(), 49152u);
  EXPECT_EQ(get("destPort").uint_value(), 443u);
  EXPECT_EQ(get("protocol").uint_value(), net::kIpProtoTcp);
  EXPECT_EQ(get("ipVersion").uint_value(), 4u);
  EXPECT_EQ(get("len").uint_value(), packet.orig_len);
  EXPECT_EQ(get("tcpFlags").uint_value(),
            uint64_t{net::kTcpFlagSyn | net::kTcpFlagAck});
  EXPECT_EQ(get("tcpSeq").uint_value(), 777u);
  EXPECT_EQ(get("ipId").uint_value(), 999u);
  EXPECT_EQ(get("fragOffset").uint_value(), 0u);
  EXPECT_EQ(get("moreFrags").uint_value(), 0u);
  EXPECT_EQ(get("payload").string_value(), "TLS-ish bytes");
  // ipPayload = TCP header + payload.
  EXPECT_EQ(get("ipPayload").string_value().size(),
            net::kTcpMinHeaderLen + 13);
}

TEST(InterpretPacketTest, FragmentFieldsReflectFragmentation) {
  auto schema = gsql::Catalog::BuiltinPacketSchema();
  net::UdpPacketSpec spec;
  spec.payload = std::string(600, 'f');
  spec.ip_id = 42;
  auto fragments = net::FragmentIpv4Packet(net::BuildUdpPacket(spec), 256);
  ASSERT_TRUE(fragments.ok());
  ASSERT_GE(fragments->size(), 2u);

  net::Packet first;
  first.bytes = (*fragments)[0];
  first.orig_len = static_cast<uint32_t>(first.bytes.size());
  rts::Row row = InterpretPacket(schema, first);
  auto index_of = [&](const char* name) {
    return *schema.FieldIndex(name);
  };
  EXPECT_EQ(row[index_of("ipId")].uint_value(), 42u);
  EXPECT_EQ(row[index_of("fragOffset")].uint_value(), 0u);
  EXPECT_EQ(row[index_of("moreFrags")].uint_value(), 1u);

  net::Packet second;
  second.bytes = (*fragments)[1];
  second.orig_len = static_cast<uint32_t>(second.bytes.size());
  row = InterpretPacket(schema, second);
  EXPECT_EQ(row[index_of("fragOffset")].uint_value(), 256u / 8);
  // Non-first fragments have no transport header: ports default to 0.
  EXPECT_EQ(row[index_of("destPort")].uint_value(), 0u);
}

TEST(InterpretPacketTest, MalformedPacketYieldsDefaults) {
  auto schema = gsql::Catalog::BuiltinPacketSchema();
  net::Packet junk;
  junk.bytes = {1, 2, 3};  // shorter than Ethernet
  junk.orig_len = 3;
  junk.timestamp = kNanosPerSecond;
  rts::Row row = InterpretPacket(schema, junk);
  ASSERT_EQ(row.size(), schema.num_fields());
  EXPECT_EQ(row[*schema.FieldIndex("time")].uint_value(), 1u);
  EXPECT_EQ(row[*schema.FieldIndex("srcIP")].ip_value(), 0u);
  EXPECT_EQ(row[*schema.FieldIndex("payload")].string_value(), "");
}

TEST(InterpretPacketTest, PlannedInterpretationMatchesNameResolved) {
  auto schema = gsql::Catalog::BuiltinPacketSchema();
  InterpretPlan plan = BuildInterpretPlan(schema);
  net::Packet packet = SamplePacket();
  rts::Row by_name = InterpretPacket(schema, packet);
  rts::Row by_plan = InterpretPacket(plan, packet);
  ASSERT_EQ(by_plan.size(), by_name.size());
  for (size_t f = 0; f < by_name.size(); ++f) {
    EXPECT_EQ(by_plan[f].Compare(by_name[f]), 0) << f;
  }
}

TEST(InterpretPacketTest, UnwantedPayloadFieldsInterpretAsDefaults) {
  auto schema = gsql::Catalog::BuiltinPacketSchema();
  InterpretPlan plan = BuildInterpretPlan(schema);
  plan.wanted[*schema.FieldIndex("payload")] = false;
  plan.wanted[*schema.FieldIndex("ipPayload")] = false;
  rts::Row row = InterpretPacket(plan, SamplePacket());
  EXPECT_EQ(row[*schema.FieldIndex("payload")].string_value(), "");
  EXPECT_EQ(row[*schema.FieldIndex("ipPayload")].string_value(), "");
  // Fixed-width fields are never gated.
  EXPECT_EQ(row[*schema.FieldIndex("destPort")].uint_value(), 443u);
  EXPECT_EQ(row[*schema.FieldIndex("srcIP")].ip_value(), 0x0a000001u);
}

TEST(InterpretPacketTest, UnknownFieldsGetTypeDefaults) {
  std::vector<gsql::FieldDef> fields;
  fields.push_back({"time", DataType::kUint, gsql::OrderSpec::Increasing()});
  fields.push_back({"mystery", DataType::kFloat, gsql::OrderSpec::None()});
  fields.push_back({"note", DataType::kString, gsql::OrderSpec::None()});
  gsql::StreamSchema schema("CUSTOM", gsql::StreamKind::kProtocol, fields);
  rts::Row row = InterpretPacket(schema, SamplePacket());
  EXPECT_DOUBLE_EQ(row[1].float_value(), 0.0);
  EXPECT_EQ(row[2].string_value(), "");
}

// --- sample(): §5's analyst-controlled sampling, deterministically ---

TEST(SampleUdfTest, DeterministicAndProportional) {
  Engine engine;
  engine.AddInterface("eth0");
  auto info = engine.AddQuery(
      "DEFINE { query_name sampled; param rate FLOAT = 0.25; } "
      "SELECT time, srcIP FROM eth0.PKT "
      "WHERE sample(srcPort, $rate)");
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  // Hash-based sampling is cheap integer work: LFTA-resident.
  EXPECT_TRUE(info->has_lfta);
  EXPECT_FALSE(info->has_hfta);

  auto sub = engine.Subscribe("sampled", 1 << 18);
  ASSERT_TRUE(sub.ok());
  const int kPackets = 8000;
  for (int i = 0; i < kPackets; ++i) {
    net::TcpPacketSpec spec;
    spec.src_port = static_cast<uint16_t>(i);  // the sampling key
    spec.dst_port = 80;
    net::Packet packet;
    packet.bytes = net::BuildTcpPacket(spec);
    packet.orig_len = static_cast<uint32_t>(packet.bytes.size());
    packet.timestamp = (i + 1) * 1000;
    ASSERT_TRUE(engine.InjectPacket("eth0", packet).ok());
    if (i % 1024 == 0) engine.PumpUntilIdle();
  }
  engine.PumpUntilIdle();
  int kept = 0;
  while ((*sub)->NextRow()) ++kept;
  EXPECT_NEAR(static_cast<double>(kept) / kPackets, 0.25, 0.03);
}

TEST(SampleUdfTest, SameKeyAlwaysSameDecision) {
  auto fn = udf::FunctionRegistry::Default()->Resolve("sample");
  ASSERT_TRUE(fn.ok());
  std::vector<std::shared_ptr<void>> handles(2);
  for (uint64_t key : {0ull, 1ull, 42ull, 1000000ull}) {
    Value first, second;
    bool has_result = true;
    ASSERT_TRUE((*fn)->invoke({Value::Uint(key), Value::Float(0.5)}, handles,
                              &first, &has_result).ok());
    ASSERT_TRUE((*fn)->invoke({Value::Uint(key), Value::Float(0.5)}, handles,
                              &second, &has_result).ok());
    EXPECT_EQ(first.bool_value(), second.bool_value());
  }
}

TEST(SampleUdfTest, BoundaryFractions) {
  auto fn = udf::FunctionRegistry::Default()->Resolve("sample");
  ASSERT_TRUE(fn.ok());
  std::vector<std::shared_ptr<void>> handles(2);
  Value out;
  bool has_result = true;
  int kept_zero = 0, kept_one = 0;
  for (uint64_t key = 0; key < 100; ++key) {
    ASSERT_TRUE((*fn)->invoke({Value::Uint(key), Value::Float(0.0)}, handles,
                              &out, &has_result).ok());
    if (out.bool_value()) ++kept_zero;
    ASSERT_TRUE((*fn)->invoke({Value::Uint(key), Value::Float(1.0)}, handles,
                              &out, &has_result).ok());
    if (out.bool_value()) ++kept_one;
  }
  EXPECT_EQ(kept_zero, 0);
  EXPECT_EQ(kept_one, 100);
  // Out-of-range fraction is a runtime error (dropped tuple, not a crash).
  EXPECT_FALSE((*fn)->invoke({Value::Uint(1), Value::Float(1.5)}, handles,
                             &out, &has_result).ok());
}

}  // namespace
}  // namespace gigascope::core
