#include <gtest/gtest.h>

#include "gsql/lexer.h"

namespace gigascope::gsql {
namespace {

std::vector<Token> MustTokenize(std::string_view source) {
  auto tokens = Tokenize(source);
  EXPECT_TRUE(tokens.ok()) << tokens.status().ToString();
  return tokens.ok() ? *tokens : std::vector<Token>{};
}

TEST(LexerTest, KeywordsCaseInsensitive) {
  auto tokens = MustTokenize("SELECT select SeLeCt");
  ASSERT_EQ(tokens.size(), 4u);  // 3 + EOF
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(tokens[i].kind, TokenKind::kSelect);
  }
  EXPECT_EQ(tokens[3].kind, TokenKind::kEof);
}

TEST(LexerTest, IdentifiersPreserveSpelling) {
  auto tokens = MustTokenize("destIP tcpdest0 _x");
  EXPECT_EQ(tokens[0].kind, TokenKind::kIdentifier);
  EXPECT_EQ(tokens[0].text, "destIP");
  EXPECT_EQ(tokens[1].text, "tcpdest0");
  EXPECT_EQ(tokens[2].text, "_x");
}

TEST(LexerTest, IntAndFloatLiterals) {
  auto tokens = MustTokenize("42 3.5");
  EXPECT_EQ(tokens[0].kind, TokenKind::kIntLiteral);
  EXPECT_EQ(tokens[0].int_value, 42);
  EXPECT_EQ(tokens[1].kind, TokenKind::kFloatLiteral);
  EXPECT_DOUBLE_EQ(tokens[1].float_value, 3.5);
}

TEST(LexerTest, IpLiteral) {
  auto tokens = MustTokenize("10.1.2.3");
  ASSERT_EQ(tokens[0].kind, TokenKind::kIpLiteral);
  EXPECT_EQ(tokens[0].ip_value, 0x0a010203u);
}

TEST(LexerTest, IpLiteralNotConfusedWithFloat) {
  auto tokens = MustTokenize("1.5 1.2.3.4");
  EXPECT_EQ(tokens[0].kind, TokenKind::kFloatLiteral);
  EXPECT_EQ(tokens[1].kind, TokenKind::kIpLiteral);
}

TEST(LexerTest, StringLiteralWithEscape) {
  auto tokens = MustTokenize("'hello ''world'''");
  ASSERT_EQ(tokens[0].kind, TokenKind::kStringLiteral);
  EXPECT_EQ(tokens[0].text, "hello 'world'");
}

TEST(LexerTest, UnterminatedStringIsError) {
  EXPECT_FALSE(Tokenize("'oops").ok());
}

TEST(LexerTest, Param) {
  auto tokens = MustTokenize("$port");
  ASSERT_EQ(tokens[0].kind, TokenKind::kParam);
  EXPECT_EQ(tokens[0].text, "port");
}

TEST(LexerTest, ParamRequiresName) {
  EXPECT_FALSE(Tokenize("$ 5").ok());
}

TEST(LexerTest, Operators) {
  auto tokens = MustTokenize("= <> != < <= > >= + - * / % & | ( ) { } , ; . :");
  std::vector<TokenKind> expected = {
      TokenKind::kEq,     TokenKind::kNeq,     TokenKind::kNeq,
      TokenKind::kLt,     TokenKind::kLe,      TokenKind::kGt,
      TokenKind::kGe,     TokenKind::kPlus,    TokenKind::kMinus,
      TokenKind::kStar,   TokenKind::kSlash,   TokenKind::kPercent,
      TokenKind::kAmp,    TokenKind::kPipe,    TokenKind::kLParen,
      TokenKind::kRParen, TokenKind::kLBrace,  TokenKind::kRBrace,
      TokenKind::kComma,  TokenKind::kSemicolon, TokenKind::kDot,
      TokenKind::kColon,  TokenKind::kEof,
  };
  ASSERT_EQ(tokens.size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(tokens[i].kind, expected[i]) << "token " << i;
  }
}

TEST(LexerTest, LineComments) {
  auto tokens = MustTokenize("SELECT -- a comment\n x");
  EXPECT_EQ(tokens[0].kind, TokenKind::kSelect);
  EXPECT_EQ(tokens[1].text, "x");
}

TEST(LexerTest, BlockComments) {
  auto tokens = MustTokenize("a /* skip\nme */ b");
  EXPECT_EQ(tokens[0].text, "a");
  EXPECT_EQ(tokens[1].text, "b");
}

TEST(LexerTest, UnterminatedBlockCommentIsError) {
  EXPECT_FALSE(Tokenize("a /* never ends").ok());
}

TEST(LexerTest, PositionsTracked) {
  auto tokens = MustTokenize("a\n  b");
  EXPECT_EQ(tokens[0].line, 1);
  EXPECT_EQ(tokens[0].column, 1);
  EXPECT_EQ(tokens[1].line, 2);
  EXPECT_EQ(tokens[1].column, 3);
}

TEST(LexerTest, UnexpectedCharacterIsError) {
  auto result = Tokenize("a @ b");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("'@'"), std::string::npos);
}

TEST(LexerTest, OrderingKeywords) {
  auto tokens = MustTokenize(
      "INCREASING DECREASING STRICTLY NONREPEATING BANDED IN GROUP");
  EXPECT_EQ(tokens[0].kind, TokenKind::kIncreasing);
  EXPECT_EQ(tokens[1].kind, TokenKind::kDecreasing);
  EXPECT_EQ(tokens[2].kind, TokenKind::kStrictly);
  EXPECT_EQ(tokens[3].kind, TokenKind::kNonrepeating);
  EXPECT_EQ(tokens[4].kind, TokenKind::kBanded);
  EXPECT_EQ(tokens[5].kind, TokenKind::kIn);
  EXPECT_EQ(tokens[6].kind, TokenKind::kGroup);
}

TEST(LexerTest, PaperExampleQueryTokenizes) {
  auto tokens = MustTokenize(
      "Select destIP, destPort, time From eth0.tcp "
      "Where IPVersion = 4 and Protocol = 6");
  EXPECT_GT(tokens.size(), 15u);
  EXPECT_EQ(tokens[0].kind, TokenKind::kSelect);
}

}  // namespace
}  // namespace gigascope::gsql
