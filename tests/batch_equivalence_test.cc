// Batch-vs-per-tuple equivalence: the batched data plane is a pure
// transport optimization, so the byte-exact sequence of emitted tuples AND
// the positions of punctuations in every output stream must be identical
// for any batch size, single-threaded or threaded. The baseline is batch
// size 1 (per-tuple flow, the pre-batching data plane).

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/engine.h"
#include "net/headers.h"
#include "workload/traffic_gen.h"

namespace gigascope::core {
namespace {

using expr::Value;

/// One output message rendered for diffing: kind marker + raw payload
/// bytes. Tuple payloads are deterministic encodings, so byte equality is
/// row equality; punctuations keep their position in the sequence.
std::string RenderMessage(const rts::StreamMessage& message) {
  std::string text(message.kind == rts::StreamMessage::Kind::kTuple ? "T:"
                                                                    : "P:");
  text.append(reinterpret_cast<const char*>(message.payload.data()),
              message.payload.size());
  return text;
}

/// Replays a fixed randomized workload through the engine at the given
/// batch size / thread count and returns the full message trace of both
/// query outputs (a stateless filter and a split aggregation).
std::vector<std::string> RunWorkload(size_t batch_size, size_t threads) {
  workload::TrafficConfig config;
  config.seed = 11;
  config.num_flows = 40;
  workload::TrafficGenerator gen(config);

  EngineOptions options;
  options.batch_max_size = batch_size;
  Engine engine(options);
  engine.AddInterface("eth0");
  EXPECT_TRUE(engine
                  .AddQuery("DEFINE { query_name filter; } "
                            "SELECT time, len FROM eth0.PKT "
                            "WHERE protocol = 6")
                  .ok());
  EXPECT_TRUE(engine
                  .AddQuery("DEFINE { query_name agg; } "
                            "SELECT tb, destIP, count(*), sum(len) "
                            "FROM eth0.PKT "
                            "GROUP BY time AS tb, destIP")
                  .ok());
  auto filter_out = engine.registry().Subscribe("filter", 1 << 15);
  auto agg_out = engine.registry().Subscribe("agg", 1 << 15);
  EXPECT_TRUE(filter_out.ok() && agg_out.ok());
  if (threads > 0) {
    Status started = engine.StartThreads(threads);
    EXPECT_TRUE(started.ok()) << started.ToString();
  }

  for (int i = 0; i < 4000; ++i) {
    net::Packet packet = gen.Next();
    EXPECT_TRUE(engine.InjectPacket("eth0", packet).ok());
    // Periodic heartbeats mix explicit punctuations into the stream on top
    // of the source's own every-256-packets ones.
    if ((i + 1) % 500 == 0) {
      EXPECT_TRUE(engine.InjectHeartbeat("eth0", packet.timestamp).ok());
    }
    if ((i + 1) % 256 == 0) engine.PumpUntilIdle();
  }
  engine.FlushAll();

  std::vector<std::string> trace;
  rts::StreamMessage message;
  while ((*filter_out)->TryPop(&message)) {
    trace.push_back("filter/" + RenderMessage(message));
  }
  while ((*agg_out)->TryPop(&message)) {
    trace.push_back("agg/" + RenderMessage(message));
  }
  // No run may have lost anything to backpressure: equivalence is only
  // meaningful when every configuration saw the whole workload.
  EXPECT_EQ(engine.registry().TotalDrops("eth0.PKT"), 0u);
  EXPECT_EQ(engine.registry().TotalDrops("filter"), 0u);
  EXPECT_EQ(engine.registry().TotalDrops("agg"), 0u);
  return trace;
}

TEST(BatchEquivalenceTest, RowsAndPunctuationsMatchAcrossBatchSizes) {
  // Baseline: per-tuple flow, single-threaded.
  std::vector<std::string> baseline = RunWorkload(1, 0);
  ASSERT_FALSE(baseline.empty());

  const size_t kBatchSizes[] = {1, 7, 64, 4096};
  for (size_t batch_size : kBatchSizes) {
    for (size_t threads : {size_t{0}, size_t{2}}) {
      if (batch_size == 1 && threads == 0) continue;  // the baseline itself
      std::vector<std::string> trace = RunWorkload(batch_size, threads);
      EXPECT_EQ(trace, baseline)
          << "batch_size=" << batch_size << " threads=" << threads;
    }
  }
}

net::Packet MakeTcpPacket(SimTime timestamp) {
  net::TcpPacketSpec spec;
  spec.src_addr = 0xac100001;
  spec.dst_addr = 0x0a000001;
  spec.src_port = 40000;
  spec.dst_port = 80;
  spec.flags = net::kTcpFlagAck;
  spec.payload = "x";
  net::Packet packet;
  packet.bytes = net::BuildTcpPacket(spec);
  packet.orig_len = static_cast<uint32_t>(packet.bytes.size());
  packet.timestamp = timestamp;
  return packet;
}

TEST(BatchEquivalenceTest, PunctuationStillClosesWindowWhenRingFills) {
  // Overload must cost tuples, never ordering guarantees: a heartbeat that
  // lands on a full ring parks and is delivered once the ring drains, so
  // the aggregation window still closes without waiting for the seal.
  EngineOptions options;
  options.channel_capacity = 4;
  options.batch_max_size = 1;  // slot == tuple: four packets fill the ring
  Engine engine(options);
  engine.AddInterface("eth0");
  ASSERT_TRUE(engine
                  .AddQuery("DEFINE { query_name agg; } "
                            "SELECT tb, count(*) FROM eth0.PKT "
                            "GROUP BY time AS tb")
                  .ok());
  auto sub = engine.Subscribe("agg", 64);
  ASSERT_TRUE(sub.ok());

  // Flood bucket 0 without pumping: the raw ring fills and drops.
  for (int i = 0; i < 32; ++i) {
    ASSERT_TRUE(engine
                    .InjectPacket("eth0", MakeTcpPacket(
                                              (i + 1) * kNanosPerSecond / 64))
                    .ok());
  }
  EXPECT_GT(engine.registry().TotalDrops("eth0.PKT"), 0u);
  // The window-closing heartbeat hits the still-full ring: its tuples'
  // fate (drop) must not befall the punctuation.
  ASSERT_TRUE(engine.InjectHeartbeat("eth0", 2 * kNanosPerSecond).ok());

  // Ordinary pumping — no FlushAll — must deliver the parked punctuation
  // and close bucket 0.
  engine.PumpUntilIdle();
  auto row = (*sub)->NextRow();
  ASSERT_TRUE(row.has_value());
  EXPECT_EQ((*row)[0].uint_value(), 0u);       // time bucket 0 closed
  EXPECT_GT((*row)[1].uint_value(), 0u);       // with the surviving tuples
  EXPECT_FALSE((*sub)->NextRow().has_value());  // exactly one group
}

}  // namespace
}  // namespace gigascope::core
