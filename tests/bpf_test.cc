#include <gtest/gtest.h>

#include "bpf/interpreter.h"
#include "bpf/program.h"
#include "bpf/verifier.h"
#include "net/headers.h"

namespace gigascope::bpf {
namespace {

ByteBuffer MakeTcpPacket(uint16_t dst_port, uint8_t proto_override = 0) {
  net::TcpPacketSpec spec;
  spec.src_addr = 0x0a000001;
  spec.dst_addr = 0x0a000002;
  spec.src_port = 40000;
  spec.dst_port = dst_port;
  spec.payload = "xyz";
  ByteBuffer bytes = net::BuildTcpPacket(spec);
  if (proto_override != 0) bytes[23] = proto_override;
  return bytes;
}

TEST(ProgramTest, BuildersVerify) {
  EXPECT_TRUE(Verify(BuildTcpDstPortFilter(80, 0)).ok());
  EXPECT_TRUE(Verify(BuildIpProtoFilter(net::kIpProtoUdp, 96)).ok());
  EXPECT_TRUE(Verify(BuildAcceptAll(0)).ok());
}

TEST(VerifierTest, RejectsEmptyProgram) {
  Program program;
  EXPECT_FALSE(Verify(program).ok());
}

TEST(VerifierTest, RejectsOutOfRangeJump) {
  Program program;
  program.instructions.push_back(JEq(1, 10, 10));  // targets out of range
  program.instructions.push_back(Ret(0));
  EXPECT_FALSE(Verify(program).ok());
}

TEST(VerifierTest, RejectsMissingRet) {
  Program program;
  program.instructions.push_back(LdImm(1));
  EXPECT_FALSE(Verify(program).ok());
}

TEST(VerifierTest, RejectsDivByZeroImmediate) {
  Program program;
  program.instructions.push_back(LdImm(4));
  program.instructions.push_back(Alu(OpCode::kDiv, 0));
  program.instructions.push_back(RetA());
  EXPECT_FALSE(Verify(program).ok());
}

TEST(VerifierTest, RejectsOverlongProgram) {
  Program program;
  for (size_t i = 0; i < kMaxProgramLength + 1; ++i) {
    program.instructions.push_back(LdImm(0));
  }
  program.instructions.push_back(Ret(0));
  EXPECT_FALSE(Verify(program).ok());
}

TEST(InterpreterTest, TcpPortFilterMatches) {
  Program program = BuildTcpDstPortFilter(80, 0);
  ByteBuffer match = MakeTcpPacket(80);
  ByteBuffer no_match = MakeTcpPacket(443);
  EXPECT_TRUE(Matches(program, ByteSpan(match.data(), match.size())));
  EXPECT_FALSE(Matches(program, ByteSpan(no_match.data(), no_match.size())));
}

TEST(InterpreterTest, PortFilterRejectsNonTcp) {
  Program program = BuildTcpDstPortFilter(80, 0);
  ByteBuffer udp = MakeTcpPacket(80, net::kIpProtoUdp);
  EXPECT_FALSE(Matches(program, ByteSpan(udp.data(), udp.size())));
}

TEST(InterpreterTest, SnapLenReturnedOnMatch) {
  Program program = BuildTcpDstPortFilter(80, 96);
  ByteBuffer match = MakeTcpPacket(80);
  EXPECT_EQ(gigascope::bpf::Run(program, ByteSpan(match.data(), match.size())), 96u);
}

TEST(InterpreterTest, ShortPacketDrops) {
  Program program = BuildTcpDstPortFilter(80, 0);
  ByteBuffer tiny = {0, 1, 2, 3, 4, 5};
  EXPECT_EQ(gigascope::bpf::Run(program, ByteSpan(tiny.data(), tiny.size())), 0u);
}

TEST(InterpreterTest, ProtoFilter) {
  Program program = BuildIpProtoFilter(net::kIpProtoTcp, 0);
  ByteBuffer tcp = MakeTcpPacket(1234);
  ByteBuffer udp = MakeTcpPacket(1234, net::kIpProtoUdp);
  EXPECT_TRUE(Matches(program, ByteSpan(tcp.data(), tcp.size())));
  EXPECT_FALSE(Matches(program, ByteSpan(udp.data(), udp.size())));
}

TEST(InterpreterTest, AcceptAll) {
  Program program = BuildAcceptAll(0);
  ByteBuffer any = {1, 2, 3};
  EXPECT_EQ(gigascope::bpf::Run(program, ByteSpan(any.data(), any.size())), 0xffffffffu);
}

TEST(InterpreterTest, AluOps) {
  // (((7 + 5) * 3 - 6) / 2) & 0xF | 0x10 == 0x1F... compute: 7+5=12, *3=36,
  // -6=30, /2=15 (0xF), &0xF=15, |0x10=0x1F = 31.
  Program program;
  program.instructions = {
      LdImm(7),
      Alu(OpCode::kAdd, 5),
      Alu(OpCode::kMul, 3),
      Alu(OpCode::kSub, 6),
      Alu(OpCode::kDiv, 2),
      Alu(OpCode::kAnd, 0xF),
      Alu(OpCode::kOr, 0x10),
      RetA(),
  };
  ASSERT_TRUE(Verify(program).ok());
  EXPECT_EQ(gigascope::bpf::Run(program, ByteSpan()), 31u);
}

TEST(InterpreterTest, ShiftOps) {
  Program program;
  program.instructions = {
      LdImm(1),
      Alu(OpCode::kLsh, 10),
      Alu(OpCode::kRsh, 2),
      RetA(),
  };
  EXPECT_EQ(gigascope::bpf::Run(program, ByteSpan()), 256u);
}

TEST(InterpreterTest, RegisterTransfer) {
  Program program;
  program.instructions = {
      LdImm(42), Tax(), LdImm(0), Txa(), RetA(),
  };
  EXPECT_EQ(gigascope::bpf::Run(program, ByteSpan()), 42u);
}

TEST(InterpreterTest, IndirectLoadUsesHeaderLength) {
  // ldxmsh computes 4*(pkt[14]&0x0f): the IP header length idiom.
  ByteBuffer packet = MakeTcpPacket(80);
  Program program;
  program.instructions = {
      LdxMshIp(14),
      Txa(),
      RetA(),
  };
  EXPECT_EQ(gigascope::bpf::Run(program, ByteSpan(packet.data(), packet.size())), 20u);
}

TEST(InterpreterTest, JumpKinds) {
  // JGt / JGe / JSet coverage.
  Program program;
  program.instructions = {
      LdImm(10),
      JGt(9, 0, 3),   // 10 > 9: fall through
      JGe(10, 0, 2),  // 10 >= 10: fall through
      JSet(0x2, 0, 1),  // 10 & 2 != 0: fall through
      Ret(1),
      Ret(0),
  };
  ASSERT_TRUE(Verify(program).ok());
  EXPECT_EQ(gigascope::bpf::Run(program, ByteSpan()), 1u);
}

TEST(InterpreterTest, UnconditionalJump) {
  Program program;
  program.instructions = {
      Jmp(1),
      Ret(0),  // skipped
      Ret(7),
  };
  ASSERT_TRUE(Verify(program).ok());
  EXPECT_EQ(gigascope::bpf::Run(program, ByteSpan()), 7u);
}

TEST(ProgramTest, ToStringListsInstructions) {
  Program program = BuildTcpDstPortFilter(80, 0);
  std::string text = program.ToString();
  EXPECT_NE(text.find("ldh"), std::string::npos);
  EXPECT_NE(text.find("jeq"), std::string::npos);
  EXPECT_NE(text.find("ret"), std::string::npos);
}

}  // namespace
}  // namespace gigascope::bpf
