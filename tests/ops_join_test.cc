#include <gtest/gtest.h>

#include "expr/codegen.h"
#include "ops/join.h"
#include "rts/punctuation.h"

namespace gigascope::ops {
namespace {

using expr::CompiledExpr;
using expr::Value;
using gsql::BinaryOp;
using gsql::DataType;
using gsql::FieldDef;
using gsql::OrderSpec;
using gsql::StreamKind;
using gsql::StreamSchema;

StreamSchema SideSchema(const std::string& name) {
  std::vector<FieldDef> fields;
  fields.push_back({"ts", DataType::kUint, OrderSpec::Increasing()});
  fields.push_back({"v", DataType::kUint, OrderSpec::None()});
  return StreamSchema(name, StreamKind::kStream, fields);
}

StreamSchema JoinedSchema() {
  std::vector<FieldDef> fields;
  fields.push_back({"ts", DataType::kUint, OrderSpec::Increasing()});
  fields.push_back({"v", DataType::kUint, OrderSpec::None()});
  fields.push_back({"r_ts", DataType::kUint, OrderSpec::None()});
  fields.push_back({"r_v", DataType::kUint, OrderSpec::None()});
  return StreamSchema("joined", StreamKind::kStream, fields);
}

class JoinTest : public ::testing::Test {
 protected:
  /// Window: left.ts - right.ts in [lo, hi]; no residual predicate by
  /// default.
  void Init(int64_t lo, int64_t hi, bool with_predicate = false,
            bool order_preserving = false) {
    ASSERT_TRUE(registry_.DeclareStream(SideSchema("l")).ok());
    ASSERT_TRUE(registry_.DeclareStream(SideSchema("r")).ok());
    ASSERT_TRUE(registry_.DeclareStream(JoinedSchema()).ok());
    WindowJoinNode::Spec spec;
    spec.name = "joined";
    spec.left_schema = SideSchema("l");
    spec.right_schema = SideSchema("r");
    spec.output_schema = JoinedSchema();
    spec.left_field = 0;
    spec.right_field = 0;
    spec.lo = lo;
    spec.hi = hi;
    spec.order_preserving = order_preserving;
    if (with_predicate) {
      // l.v = r.v
      auto ir = expr::MakeBinaryIr(
          BinaryOp::kEq, DataType::kBool,
          expr::MakeFieldRef(0, 1, DataType::kUint, "v"),
          expr::MakeFieldRef(1, 1, DataType::kUint, "v"));
      auto compiled = expr::Compile(ir);
      ASSERT_TRUE(compiled.ok());
      spec.predicate = std::move(compiled).value();
    }
    auto in_l = registry_.Subscribe("l", 4096);
    auto in_r = registry_.Subscribe("r", 4096);
    ASSERT_TRUE(in_l.ok() && in_r.ok());
    params_ = std::make_shared<std::vector<Value>>();
    node_ = std::make_unique<WindowJoinNode>(std::move(spec), *in_l, *in_r,
                                             &registry_, params_);
    auto output = registry_.Subscribe("joined", 8192);
    ASSERT_TRUE(output.ok());
    output_ = *output;
    codec_ = std::make_unique<rts::TupleCodec>(JoinedSchema());
  }

  void Send(const std::string& stream, uint64_t ts, uint64_t v) {
    rts::TupleCodec codec(SideSchema(stream));
    rts::StreamMessage message;
    codec.Encode({Value::Uint(ts), Value::Uint(v)}, &message.payload);
    registry_.Publish(stream, message);
  }

  /// Returns (left_ts, right_ts) pairs.
  std::vector<std::pair<uint64_t, uint64_t>> ReceivePairs() {
    std::vector<std::pair<uint64_t, uint64_t>> pairs;
    rts::StreamMessage message;
    while (output_->TryPop(&message)) {
      if (message.kind != rts::StreamMessage::Kind::kTuple) continue;
      auto row = codec_->Decode(
          ByteSpan(message.payload.data(), message.payload.size()));
      if (row.ok()) {
        pairs.emplace_back((*row)[0].uint_value(), (*row)[2].uint_value());
      }
    }
    return pairs;
  }

  rts::StreamRegistry registry_;
  rts::ParamBlock params_;
  std::unique_ptr<WindowJoinNode> node_;
  rts::Subscription output_;
  std::unique_ptr<rts::TupleCodec> codec_;
};

/// Standalone harness for the buffer-cost ablation (no gtest fixture).
size_t JoinScenarioHighWater(bool order_preserving) {
  rts::StreamRegistry registry;
  registry.DeclareStream(SideSchema("l")).ok();
  registry.DeclareStream(SideSchema("r")).ok();
  registry.DeclareStream(JoinedSchema()).ok();
  WindowJoinNode::Spec spec;
  spec.name = "joined";
  spec.left_schema = SideSchema("l");
  spec.right_schema = SideSchema("r");
  spec.output_schema = JoinedSchema();
  spec.lo = -8;
  spec.hi = 8;
  spec.order_preserving = order_preserving;
  auto left = registry.Subscribe("l", 4096);
  auto right = registry.Subscribe("r", 4096);
  auto params = std::make_shared<std::vector<Value>>();
  WindowJoinNode node(std::move(spec), *left, *right, &registry, params);
  rts::TupleCodec codec(SideSchema("l"));
  for (uint64_t t = 1; t <= 400; ++t) {
    for (const char* stream : {"l", "r"}) {
      rts::StreamMessage message;
      codec.Encode({Value::Uint(t), Value::Uint(0)}, &message.payload);
      registry.Publish(stream, message);
    }
    if (t % 16 == 0) node.Poll(1 << 20);
  }
  node.Poll(1 << 20);
  return node.buffer_high_water();
}

TEST_F(JoinTest, EqualityWindowJoinsMatchingTimestamps) {
  Init(0, 0);
  Send("l", 1, 10);
  Send("l", 2, 20);
  Send("r", 2, 200);
  Send("r", 3, 300);
  node_->Poll(100);
  auto pairs = ReceivePairs();
  ASSERT_EQ(pairs.size(), 1u);
  EXPECT_EQ(pairs[0], std::make_pair(uint64_t{2}, uint64_t{2}));
}

TEST_F(JoinTest, BandWindowJoinsNearbyTimestamps) {
  Init(-1, 1);
  Send("l", 5, 0);
  Send("r", 4, 0);
  Send("r", 5, 0);
  Send("r", 6, 0);
  Send("r", 7, 0);  // outside the window
  node_->Poll(100);
  auto pairs = ReceivePairs();
  EXPECT_EQ(pairs.size(), 3u);
}

TEST_F(JoinTest, ResidualPredicateFilters) {
  Init(0, 0, /*with_predicate=*/true);
  Send("l", 1, 10);
  Send("r", 1, 10);  // v matches
  Send("l", 2, 20);
  Send("r", 2, 99);  // v differs
  node_->Poll(100);
  auto pairs = ReceivePairs();
  ASSERT_EQ(pairs.size(), 1u);
  EXPECT_EQ(pairs[0].first, 1u);
}

TEST_F(JoinTest, BothArrivalOrdersProduceSameMatches) {
  Init(0, 0);
  Send("l", 1, 0);
  Send("r", 1, 0);  // right after left
  Send("r", 2, 0);
  Send("l", 2, 0);  // left after right
  node_->Poll(100);
  auto pairs = ReceivePairs();
  EXPECT_EQ(pairs.size(), 2u);
}

TEST_F(JoinTest, NoDuplicateEmission) {
  Init(-2, 2);
  for (uint64_t t = 1; t <= 5; ++t) {
    Send("l", t, 0);
    Send("r", t, 0);
  }
  node_->Poll(1000);
  auto pairs = ReceivePairs();
  // Count of pairs with |l-r| <= 2, l,r in 1..5: for each l, r in
  // [l-2, l+2] ∩ [1,5].
  size_t expected = 0;
  for (int l = 1; l <= 5; ++l) {
    for (int r = 1; r <= 5; ++r) {
      if (std::abs(l - r) <= 2) ++expected;
    }
  }
  EXPECT_EQ(pairs.size(), expected);
}

TEST_F(JoinTest, WatermarksBoundBufferState) {
  Init(0, 0);
  // Streams advance together: purged state stays tiny.
  for (uint64_t t = 1; t <= 1000; ++t) {
    Send("l", t, 0);
    Send("r", t, 0);
    if (t % 10 == 0) node_->Poll(100);
  }
  node_->Poll(1000);
  EXPECT_LE(node_->buffered_left(), 4u);
  EXPECT_LE(node_->buffered_right(), 4u);
}

TEST_F(JoinTest, WiderWindowBuffersMore) {
  Init(-50, 50);
  for (uint64_t t = 1; t <= 500; ++t) {
    Send("l", t, 0);
    Send("r", t, 0);
    if (t % 10 == 0) node_->Poll(100);
  }
  node_->Poll(10000);
  // Window of +/-50 keeps roughly 50 tuples alive per side.
  EXPECT_GE(node_->buffer_high_water(), 50u);
  EXPECT_LE(node_->buffer_high_water(), 250u);
}

TEST_F(JoinTest, PunctuationAdvancesWatermark) {
  Init(0, 0);
  Send("l", 1, 0);
  Send("l", 2, 0);
  node_->Poll(100);
  EXPECT_EQ(node_->buffered_left(), 2u);
  // The right stream is silent; a punctuation r.ts >= 10 proves tuples 1-2
  // can never match and purges them.
  rts::Punctuation punctuation;
  punctuation.bounds.emplace_back(0, Value::Uint(10));
  registry_.Publish("r", rts::MakePunctuationMessage(punctuation,
                                                     SideSchema("r")));
  node_->Poll(100);
  EXPECT_EQ(node_->buffered_left(), 0u);
}

TEST_F(JoinTest, FlushClearsBuffers) {
  Init(-5, 5);
  Send("l", 1, 0);
  Send("r", 100, 0);
  node_->Poll(100);
  node_->Flush();
  EXPECT_EQ(node_->buffered_left(), 0u);
  EXPECT_EQ(node_->buffered_right(), 0u);
}

TEST_F(JoinTest, EagerAlgorithmEmitsOutOfOrderWithinBand) {
  Init(-3, 3);
  // Left 5 arrives and matches right 3..7 as they come; then left 2
  // arrives late-ish and matches right 3, emitting key 2 after key 5.
  Send("l", 5, 0);
  Send("r", 3, 0);
  Send("l", 6, 0);
  node_->Poll(100);
  auto pairs = ReceivePairs();
  ASSERT_GE(pairs.size(), 2u);
  // Eager emission order follows arrival: (5,3) then (6,3) — keys are at
  // most banded, not guaranteed sorted across interleavings.
  EXPECT_EQ(pairs[0].first, 5u);
}

TEST_F(JoinTest, OrderPreservingAlgorithmSortsOutput) {
  Init(-3, 3, /*with_predicate=*/false, /*order_preserving=*/true);
  // Matches complete out of order; releases must come back sorted.
  Send("l", 5, 0);
  Send("r", 5, 0);   // match key 5 completes first
  Send("l", 3, 0);   // within nothing — monotone stream, fine: 3 < 5?
  node_->Poll(100);
  // (Use a fresh setup below with genuinely out-of-order completion.)
  node_->Flush();
  auto pairs = ReceivePairs();
  for (size_t i = 1; i < pairs.size(); ++i) {
    EXPECT_LE(pairs[i - 1].first, pairs[i].first);
  }
}

TEST_F(JoinTest, OrderPreservingHoldsUntilBoundPasses) {
  Init(-2, 2, false, /*order_preserving=*/true);
  Send("l", 10, 0);
  Send("r", 10, 0);
  node_->Poll(100);
  // Match complete but bound = min(L, R+lo) = min(10, 8) = 8 < 10: held.
  EXPECT_TRUE(ReceivePairs().empty());
  EXPECT_EQ(node_->pending_matches(), 1u);
  // Watermarks advance past the hold point.
  Send("l", 20, 0);
  Send("r", 20, 0);
  node_->Poll(100);
  auto pairs = ReceivePairs();
  ASSERT_GE(pairs.size(), 1u);
  EXPECT_EQ(pairs[0].first, 10u);
}

TEST_F(JoinTest, OrderPreservingOutputSortedUnderBandedCompletion) {
  Init(-4, 4, false, /*order_preserving=*/true);
  // Right arrives far ahead; lefts then complete matches newest-first.
  Send("r", 10, 0);
  Send("r", 12, 0);
  Send("l", 12, 0);  // completes (12,10) (12,12)
  Send("l", 9, 0);   // completes (9,10) (9,12) — earlier key, later time
  node_->Poll(100);
  node_->Flush();
  auto pairs = ReceivePairs();
  ASSERT_EQ(pairs.size(), 4u);
  for (size_t i = 1; i < pairs.size(); ++i) {
    EXPECT_LE(pairs[i - 1].first, pairs[i].first)
        << "order-preserving output out of order at " << i;
  }
}

TEST(JoinAblationTest, OrderPreservingCostsMoreBuffer) {
  size_t eager = JoinScenarioHighWater(false);
  size_t preserving = JoinScenarioHighWater(true);
  EXPECT_GT(preserving, eager);  // "requires more buffer space" (§2.1)
}

}  // namespace
}  // namespace gigascope::ops
