#include <gtest/gtest.h>

#include "udf/registry.h"

namespace gigascope::udf {
namespace {

using expr::DataType;
using expr::FunctionInfo;
using expr::Value;

FunctionInfo TrivialFn(const std::string& name) {
  FunctionInfo info;
  info.name = name;
  info.return_type = DataType::kInt;
  info.arg_types = {DataType::kInt};
  info.invoke = [](const std::vector<Value>& args,
                   const std::vector<std::shared_ptr<void>>&, Value* out,
                   bool*) {
    *out = Value::Int(args[0].int_value() + 1);
    return Status::Ok();
  };
  return info;
}

TEST(RegistryTest, RegisterAndResolve) {
  FunctionRegistry registry;
  ASSERT_TRUE(registry.Register(TrivialFn("inc")).ok());
  auto fn = registry.Resolve("inc");
  ASSERT_TRUE(fn.ok());
  EXPECT_EQ((*fn)->name, "inc");
}

TEST(RegistryTest, ResolveIsCaseInsensitive) {
  FunctionRegistry registry;
  ASSERT_TRUE(registry.Register(TrivialFn("MyFunc")).ok());
  EXPECT_TRUE(registry.Resolve("myfunc").ok());
  EXPECT_TRUE(registry.Resolve("MYFUNC").ok());
}

TEST(RegistryTest, DuplicateRejected) {
  FunctionRegistry registry;
  ASSERT_TRUE(registry.Register(TrivialFn("f")).ok());
  Status status = registry.Register(TrivialFn("f"));
  EXPECT_EQ(status.code(), Status::Code::kAlreadyExists);
}

TEST(RegistryTest, AggregateNamesReserved) {
  FunctionRegistry registry;
  for (const char* name : {"count", "sum", "min", "max", "avg"}) {
    EXPECT_FALSE(registry.Register(TrivialFn(name)).ok()) << name;
  }
}

TEST(RegistryTest, MissingImplementationRejected) {
  FunctionRegistry registry;
  FunctionInfo info = TrivialFn("g");
  info.invoke = nullptr;
  EXPECT_FALSE(registry.Register(std::move(info)).ok());
}

TEST(RegistryTest, HandleFlagsMustMatchArity) {
  FunctionRegistry registry;
  FunctionInfo info = TrivialFn("h");
  info.pass_by_handle = {true, false, false};  // arity is 1
  EXPECT_FALSE(registry.Register(std::move(info)).ok());
}

TEST(RegistryTest, UnknownIsNotFound) {
  FunctionRegistry registry;
  auto fn = registry.Resolve("nonesuch");
  ASSERT_FALSE(fn.ok());
  EXPECT_EQ(fn.status().code(), Status::Code::kNotFound);
}

TEST(RegistryTest, DefaultHasBuiltins) {
  FunctionRegistry* registry = FunctionRegistry::Default();
  for (const char* name : {"getlpmid", "match_regex", "str_find", "str_len",
                           "ip_in_subnet", "hash64"}) {
    EXPECT_TRUE(registry->Resolve(name).ok()) << name;
  }
}

TEST(BuiltinsTest, IpInSubnet) {
  auto fn = FunctionRegistry::Default()->Resolve("ip_in_subnet");
  ASSERT_TRUE(fn.ok());
  Value out;
  bool has_result = true;
  std::vector<std::shared_ptr<void>> handles(3);
  ASSERT_TRUE((*fn)->invoke({Value::Ip(0x0a0a0a0a), Value::Ip(0x0a000000),
                             Value::Uint(8)},
                            handles, &out, &has_result)
                  .ok());
  EXPECT_TRUE(out.bool_value());
  ASSERT_TRUE((*fn)->invoke({Value::Ip(0x0b0a0a0a), Value::Ip(0x0a000000),
                             Value::Uint(8)},
                            handles, &out, &has_result)
                  .ok());
  EXPECT_FALSE(out.bool_value());
  // masklen out of range is a runtime error.
  EXPECT_FALSE((*fn)->invoke({Value::Ip(1), Value::Ip(1), Value::Uint(40)},
                             handles, &out, &has_result)
                   .ok());
}

TEST(BuiltinsTest, Hash64IsStable) {
  auto fn = FunctionRegistry::Default()->Resolve("hash64");
  ASSERT_TRUE(fn.ok());
  Value a, b;
  bool has_result = true;
  std::vector<std::shared_ptr<void>> handles(1);
  ASSERT_TRUE(
      (*fn)->invoke({Value::Uint(42)}, handles, &a, &has_result).ok());
  ASSERT_TRUE(
      (*fn)->invoke({Value::Uint(42)}, handles, &b, &has_result).ok());
  EXPECT_EQ(a.uint_value(), b.uint_value());
}

TEST(BuiltinsTest, GetLpmIdHandleFromBadFileFails) {
  auto fn = FunctionRegistry::Default()->Resolve("getlpmid");
  ASSERT_TRUE(fn.ok());
  auto handle = (*fn)->make_handle(Value::String("/missing/file.tbl"));
  EXPECT_FALSE(handle.ok());
}

TEST(BuiltinsTest, MatchRegexHandleFromBadPatternFails) {
  auto fn = FunctionRegistry::Default()->Resolve("match_regex");
  ASSERT_TRUE(fn.ok());
  auto handle = (*fn)->make_handle(Value::String("(unclosed"));
  EXPECT_FALSE(handle.ok());
}

}  // namespace
}  // namespace gigascope::udf
