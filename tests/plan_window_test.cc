#include <gtest/gtest.h>

#include "expr/typecheck.h"
#include "gsql/parser.h"
#include "plan/window.h"

namespace gigascope::plan {
namespace {

using gsql::DataType;
using gsql::FieldDef;
using gsql::OrderSpec;
using gsql::StreamKind;
using gsql::StreamSchema;

StreamSchema LeftSchema() {
  std::vector<FieldDef> fields;
  fields.push_back({"ts", DataType::kUint, OrderSpec::Increasing()});
  fields.push_back({"v", DataType::kUint, OrderSpec::None()});
  return StreamSchema("L", StreamKind::kStream, fields);
}

StreamSchema RightSchema() {
  std::vector<FieldDef> fields;
  fields.push_back({"ts", DataType::kUint, OrderSpec::Increasing()});
  fields.push_back({"w", DataType::kUint, OrderSpec::None()});
  return StreamSchema("R", StreamKind::kStream, fields);
}

class WindowTest : public ::testing::Test {
 protected:
  void SetUp() override {
    catalog_.PutStreamSchema(LeftSchema());
    catalog_.PutStreamSchema(RightSchema());
  }

  Result<expr::IrPtr> Predicate(const std::string& where) {
    auto stmt = gsql::ParseStatement("SELECT B.v FROM L B, R C WHERE " +
                                     where);
    if (!stmt.ok()) return stmt.status();
    auto* select = std::get_if<gsql::SelectStmt>(&stmt.value());
    auto resolved = gsql::AnalyzeSelect(*select, catalog_);
    if (!resolved.ok()) return resolved.status();
    resolved_ = std::move(resolved).value();
    expr::TypeCheckContext ctx;
    ctx.inputs = {LeftSchema(), RightSchema()};
    ctx.bindings = &resolved_.bindings;
    return expr::TypeCheckPredicate(resolved_.stmt.where, ctx);
  }

  Result<JoinWindow> Extract(const std::string& where) {
    auto predicate = Predicate(where);
    if (!predicate.ok()) return predicate.status();
    return ExtractJoinWindow(*predicate, LeftSchema(), RightSchema());
  }

  gsql::Catalog catalog_;
  gsql::ResolvedSelect resolved_;
};

TEST_F(WindowTest, EqualityWindow) {
  auto window = Extract("B.ts = C.ts");
  ASSERT_TRUE(window.ok()) << window.status().ToString();
  EXPECT_EQ(window->lo, 0);
  EXPECT_EQ(window->hi, 0);
  EXPECT_EQ(window->left_field, 0u);
  EXPECT_EQ(window->right_field, 0u);
}

TEST_F(WindowTest, ThePaperBandWindow) {
  // §2.1: "B.ts >= C.ts - 1 and B.ts <= C.ts + 1".
  auto window = Extract("B.ts >= C.ts - 1 AND B.ts <= C.ts + 1");
  ASSERT_TRUE(window.ok()) << window.status().ToString();
  EXPECT_EQ(window->lo, -1);
  EXPECT_EQ(window->hi, 1);
  EXPECT_EQ(window->width(), 2u);
}

TEST_F(WindowTest, ReflectedComparisons) {
  auto window = Extract("C.ts - 1 <= B.ts AND C.ts + 1 >= B.ts");
  ASSERT_TRUE(window.ok()) << window.status().ToString();
  EXPECT_EQ(window->lo, -1);
  EXPECT_EQ(window->hi, 1);
}

TEST_F(WindowTest, StrictInequalitiesTighten) {
  auto window = Extract("B.ts > C.ts - 2 AND B.ts < C.ts + 2");
  ASSERT_TRUE(window.ok());
  EXPECT_EQ(window->lo, -1);
  EXPECT_EQ(window->hi, 1);
}

TEST_F(WindowTest, AsymmetricWindow) {
  auto window = Extract("B.ts >= C.ts AND B.ts <= C.ts + 5");
  ASSERT_TRUE(window.ok());
  EXPECT_EQ(window->lo, 0);
  EXPECT_EQ(window->hi, 5);
}

TEST_F(WindowTest, ExtraConjunctsAreFine) {
  auto window = Extract("B.ts = C.ts AND B.v = C.w AND B.v > 100");
  ASSERT_TRUE(window.ok()) << window.status().ToString();
  EXPECT_EQ(window->lo, 0);
  EXPECT_EQ(window->hi, 0);
}

TEST_F(WindowTest, OnlyLowerBoundIsRejected) {
  auto window = Extract("B.ts >= C.ts - 1");
  EXPECT_FALSE(window.ok());
}

TEST_F(WindowTest, OnlyUpperBoundIsRejected) {
  auto window = Extract("B.ts <= C.ts + 1");
  EXPECT_FALSE(window.ok());
}

TEST_F(WindowTest, UnorderedAttributesRejected) {
  // v and w carry no ordering properties: no window.
  auto window = Extract("B.v = C.w");
  EXPECT_FALSE(window.ok());
}

TEST_F(WindowTest, EmptyWindowRejected) {
  auto window = Extract("B.ts >= C.ts + 5 AND B.ts <= C.ts - 5");
  EXPECT_FALSE(window.ok());
}

TEST(ConjunctsTest, SplitAndRejoin) {
  using expr::MakeConst;
  using expr::Value;
  auto t = MakeConst(Value::Bool(true));
  auto f = MakeConst(Value::Bool(false));
  auto conj = expr::MakeBinaryIr(
      gsql::BinaryOp::kAnd, DataType::kBool,
      expr::MakeBinaryIr(gsql::BinaryOp::kAnd, DataType::kBool, t, f), t);
  std::vector<expr::IrPtr> parts;
  SplitConjuncts(conj, &parts);
  EXPECT_EQ(parts.size(), 3u);
  expr::IrPtr rejoined = AndTogether(parts);
  ASSERT_NE(rejoined, nullptr);
  std::vector<expr::IrPtr> again;
  SplitConjuncts(rejoined, &again);
  EXPECT_EQ(again.size(), 3u);
  EXPECT_EQ(AndTogether({}), nullptr);
}

}  // namespace
}  // namespace gigascope::plan
