#include <gtest/gtest.h>

#include <map>

#include "common/rng.h"
#include "expr/codegen.h"
#include "ops/aggregate.h"
#include "ops/lfta_agg.h"
#include "rts/punctuation.h"

namespace gigascope::ops {
namespace {

using expr::AggFn;
using expr::AggregateSpec;
using expr::CompiledExpr;
using expr::Value;
using gsql::BinaryOp;
using gsql::DataType;
using gsql::FieldDef;
using gsql::OrderSpec;
using gsql::StreamKind;
using gsql::StreamSchema;

StreamSchema InputSchema() {
  std::vector<FieldDef> fields;
  fields.push_back({"t", DataType::kUint, OrderSpec::Increasing()});
  fields.push_back({"key", DataType::kUint, OrderSpec::None()});
  fields.push_back({"len", DataType::kUint, OrderSpec::None()});
  return StreamSchema("in", StreamKind::kStream, fields);
}

StreamSchema AggOutputSchema(const std::string& name) {
  std::vector<FieldDef> fields;
  fields.push_back({"tb", DataType::kUint, OrderSpec::Increasing()});
  fields.push_back({"key", DataType::kUint, OrderSpec::None()});
  fields.push_back({"cnt", DataType::kUint, OrderSpec::None()});
  fields.push_back({"total", DataType::kUint, OrderSpec::None()});
  return StreamSchema(name, StreamKind::kStream, fields);
}

CompiledExpr MustCompile(const expr::IrPtr& ir) {
  auto compiled = expr::Compile(ir);
  EXPECT_TRUE(compiled.ok()) << compiled.status().ToString();
  return std::move(compiled).value();
}

/// SELECT t/10 AS tb, key, count(*), sum(len) GROUP BY tb, key.
OrderedAggregateNode::Spec MakeSpec(const std::string& name) {
  OrderedAggregateNode::Spec spec;
  spec.name = name;
  spec.input_schema = InputSchema();
  spec.output_schema = AggOutputSchema(name);
  spec.keys.push_back(MustCompile(expr::MakeBinaryIr(
      BinaryOp::kDiv, DataType::kUint,
      expr::MakeFieldRef(0, 0, DataType::kUint, "t"),
      expr::MakeConst(Value::Uint(10)))));
  spec.keys.push_back(
      MustCompile(expr::MakeFieldRef(0, 1, DataType::kUint, "key")));
  AggregateSpec count;
  count.fn = AggFn::kCount;
  count.result_type = DataType::kUint;
  spec.agg_specs.push_back(count);
  AggregateSpec sum;
  sum.fn = AggFn::kSum;
  sum.arg = expr::MakeFieldRef(0, 2, DataType::kUint, "len");
  sum.result_type = DataType::kUint;
  spec.agg_specs.push_back(sum);
  spec.agg_args.emplace_back();  // count(*): no arg
  spec.agg_args.emplace_back(
      MustCompile(expr::MakeFieldRef(0, 2, DataType::kUint, "len")));
  spec.ordered_key = 0;
  spec.key_punctuation_source = {0, -1};
  return spec;
}

class AggregateTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(registry_.DeclareStream(InputSchema()).ok());
    ASSERT_TRUE(registry_.DeclareStream(AggOutputSchema("agg")).ok());
    params_ = std::make_shared<std::vector<Value>>();
    auto input = registry_.Subscribe("in", 1024);
    ASSERT_TRUE(input.ok());
    node_ = std::make_unique<OrderedAggregateNode>(MakeSpec("agg"), *input,
                                                   &registry_, params_);
    auto output = registry_.Subscribe("agg", 1024);
    ASSERT_TRUE(output.ok());
    output_ = *output;
    codec_ = std::make_unique<rts::TupleCodec>(AggOutputSchema("agg"));
  }

  void Send(uint64_t t, uint64_t key, uint64_t len) {
    rts::TupleCodec codec(InputSchema());
    rts::StreamMessage message;
    codec.Encode({Value::Uint(t), Value::Uint(key), Value::Uint(len)},
                 &message.payload);
    registry_.Publish("in", message);
  }

  std::vector<rts::Row> ReceiveAll() {
    std::vector<rts::Row> rows;
    rts::StreamMessage message;
    while (output_->TryPop(&message)) {
      if (message.kind != rts::StreamMessage::Kind::kTuple) continue;
      auto row = codec_->Decode(
          ByteSpan(message.payload.data(), message.payload.size()));
      if (row.ok()) rows.push_back(std::move(row).value());
    }
    return rows;
  }

  rts::StreamRegistry registry_;
  rts::ParamBlock params_;
  std::unique_ptr<OrderedAggregateNode> node_;
  rts::Subscription output_;
  std::unique_ptr<rts::TupleCodec> codec_;
};

TEST_F(AggregateTest, GroupsAccumulateUntilEpochCloses) {
  Send(1, 100, 10);
  Send(2, 100, 20);
  Send(3, 200, 5);
  node_->Poll(100);
  // Bucket 0 still open: nothing emitted.
  EXPECT_TRUE(ReceiveAll().empty());
  EXPECT_EQ(node_->open_groups(), 2u);

  // Bucket 1 arrives: bucket-0 groups close and flush.
  Send(12, 100, 1);
  node_->Poll(100);
  auto rows = ReceiveAll();
  ASSERT_EQ(rows.size(), 2u);
  // Sorted by (tb, key): (0,100,cnt=2,sum=30) then (0,200,cnt=1,sum=5).
  EXPECT_EQ(rows[0][0].uint_value(), 0u);
  EXPECT_EQ(rows[0][1].uint_value(), 100u);
  EXPECT_EQ(rows[0][2].uint_value(), 2u);
  EXPECT_EQ(rows[0][3].uint_value(), 30u);
  EXPECT_EQ(rows[1][1].uint_value(), 200u);
  EXPECT_EQ(rows[1][2].uint_value(), 1u);
  EXPECT_EQ(rows[1][3].uint_value(), 5u);
  EXPECT_EQ(node_->open_groups(), 1u);
}

TEST_F(AggregateTest, FlushEmitsOpenGroups) {
  Send(1, 100, 10);
  Send(5, 200, 20);
  node_->Poll(100);
  node_->Flush();
  auto rows = ReceiveAll();
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(node_->open_groups(), 0u);
}

TEST_F(AggregateTest, PunctuationClosesGroups) {
  Send(1, 100, 10);
  Send(3, 200, 20);
  node_->Poll(100);
  ASSERT_TRUE(ReceiveAll().empty());

  // Punctuation: t >= 50, so bucket 5 is the floor; buckets < 5 close.
  rts::Punctuation punctuation;
  punctuation.bounds.emplace_back(0, Value::Uint(50));
  registry_.Publish("in", rts::MakePunctuationMessage(punctuation,
                                                      InputSchema()));
  node_->Poll(100);
  auto rows = ReceiveAll();
  EXPECT_EQ(rows.size(), 2u);
  EXPECT_EQ(node_->open_groups(), 0u);
}

TEST_F(AggregateTest, EmitsPunctuationDownstreamOnEpochAdvance) {
  Send(1, 100, 10);
  Send(12, 100, 10);
  node_->Poll(100);
  // Look for a punctuation on the output stream bounding tb.
  bool saw_punctuation = false;
  rts::StreamMessage message;
  auto sub = registry_.Subscribe("agg", 64);
  // (Subscribe happened after publish; pull again through a new round.)
  Send(25, 100, 1);
  node_->Poll(100);
  while ((*sub)->TryPop(&message)) {
    if (message.kind == rts::StreamMessage::Kind::kPunctuation) {
      auto punctuation = rts::DecodePunctuation(
          ByteSpan(message.payload.data(), message.payload.size()),
          AggOutputSchema("agg"));
      ASSERT_TRUE(punctuation.ok());
      auto bound = punctuation->BoundFor(0);
      ASSERT_TRUE(bound.has_value());
      EXPECT_EQ(bound->uint_value(), 2u);  // 25/10
      saw_punctuation = true;
    }
  }
  EXPECT_TRUE(saw_punctuation);
}

TEST_F(AggregateTest, MinMaxAggregates) {
  OrderedAggregateNode::Spec spec;
  spec.name = "mm";
  spec.input_schema = InputSchema();
  std::vector<FieldDef> fields;
  fields.push_back({"tb", DataType::kUint, OrderSpec::Increasing()});
  fields.push_back({"lo", DataType::kUint, OrderSpec::None()});
  fields.push_back({"hi", DataType::kUint, OrderSpec::None()});
  spec.output_schema = StreamSchema("mm", StreamKind::kStream, fields);
  spec.keys.push_back(MustCompile(expr::MakeBinaryIr(
      BinaryOp::kDiv, DataType::kUint,
      expr::MakeFieldRef(0, 0, DataType::kUint, "t"),
      expr::MakeConst(Value::Uint(10)))));
  AggregateSpec min_spec;
  min_spec.fn = AggFn::kMin;
  min_spec.result_type = DataType::kUint;
  AggregateSpec max_spec;
  max_spec.fn = AggFn::kMax;
  max_spec.result_type = DataType::kUint;
  spec.agg_specs = {min_spec, max_spec};
  spec.agg_args.emplace_back(
      MustCompile(expr::MakeFieldRef(0, 2, DataType::kUint, "len")));
  spec.agg_args.emplace_back(
      MustCompile(expr::MakeFieldRef(0, 2, DataType::kUint, "len")));
  spec.ordered_key = 0;
  spec.key_punctuation_source = {0};

  ASSERT_TRUE(registry_.DeclareStream(spec.output_schema).ok());
  auto input = registry_.Subscribe("in", 64);
  ASSERT_TRUE(input.ok());
  OrderedAggregateNode node(std::move(spec), *input, &registry_, params_);
  auto output = registry_.Subscribe("mm", 64);

  Send(1, 0, 50);
  Send(2, 0, 10);
  Send(3, 0, 90);
  node.Poll(100);
  node.Flush();
  rts::TupleCodec codec(StreamSchema("mm", StreamKind::kStream, fields));
  rts::StreamMessage message;
  rts::Row row;
  bool got = false;
  while ((*output)->TryPop(&message)) {
    if (message.kind != rts::StreamMessage::Kind::kTuple) continue;
    auto decoded = codec.Decode(
        ByteSpan(message.payload.data(), message.payload.size()));
    ASSERT_TRUE(decoded.ok());
    row = *decoded;
    got = true;
  }
  ASSERT_TRUE(got);
  EXPECT_EQ(row[1].uint_value(), 10u);
  EXPECT_EQ(row[2].uint_value(), 90u);
}

// --- Direct-mapped LFTA table ---

TEST(DirectMappedTableTest, UpsertAndDrain) {
  std::vector<AggregateSpec> specs;
  AggregateSpec count;
  count.fn = AggFn::kCount;
  count.result_type = DataType::kUint;
  specs.push_back(count);
  DirectMappedAggTable table(4, &specs);  // 16 slots

  std::vector<std::optional<Value>> args(1);
  for (int i = 0; i < 3; ++i) {
    auto ejected = table.Upsert({Value::Uint(7)}, args);
    EXPECT_FALSE(ejected.has_value());
  }
  EXPECT_EQ(table.occupied(), 1u);
  auto drained = table.DrainAll();
  ASSERT_EQ(drained.size(), 1u);
  EXPECT_EQ(drained[0].first[0].uint_value(), 7u);
  EXPECT_EQ(drained[0].second[0].uint_value(), 3u);
  EXPECT_EQ(table.occupied(), 0u);
}

TEST(DirectMappedTableTest, CollisionEjectsIncumbent) {
  std::vector<AggregateSpec> specs;
  AggregateSpec count;
  count.fn = AggFn::kCount;
  count.result_type = DataType::kUint;
  specs.push_back(count);
  DirectMappedAggTable table(0, &specs);  // 1 slot: every new key collides

  std::vector<std::optional<Value>> args(1);
  EXPECT_FALSE(table.Upsert({Value::Uint(1)}, args).has_value());
  auto ejected = table.Upsert({Value::Uint(2)}, args);
  ASSERT_TRUE(ejected.has_value());
  EXPECT_EQ(ejected->first[0].uint_value(), 1u);
  EXPECT_EQ(ejected->second[0].uint_value(), 1u);
  EXPECT_EQ(table.evictions(), 1u);
}

TEST(DirectMappedTableTest, EvictionRateDropsWithTableSize) {
  std::vector<AggregateSpec> specs;
  AggregateSpec count;
  count.fn = AggFn::kCount;
  count.result_type = DataType::kUint;
  specs.push_back(count);

  auto run = [&specs](int log2_slots) {
    DirectMappedAggTable table(log2_slots, &specs);
    std::vector<std::optional<Value>> args(1);
    Rng rng(5);
    for (int i = 0; i < 20000; ++i) {
      table.Upsert({Value::Uint(rng.NextBelow(256))}, args);
    }
    return table.evictions();
  };
  uint64_t small = run(3);
  uint64_t large = run(10);
  EXPECT_GT(small, large * 2);
}

// --- Banded ordered keys (§2.1: Netflow start times are
// banded-increasing(30); groups must survive the band) ---

StreamSchema BandedInputSchema() {
  std::vector<FieldDef> fields;
  fields.push_back({"bt", DataType::kUint, OrderSpec::Banded(10)});
  fields.push_back({"v", DataType::kUint, OrderSpec::None()});
  return StreamSchema("bin", StreamKind::kStream, fields);
}

class BandedAggregateTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(registry_.DeclareStream(BandedInputSchema()).ok());
    OrderedAggregateNode::Spec spec;
    spec.name = "bagg";
    spec.input_schema = BandedInputSchema();
    std::vector<FieldDef> out_fields;
    out_fields.push_back({"bt", DataType::kUint, OrderSpec::Banded(10)});
    out_fields.push_back({"cnt", DataType::kUint, OrderSpec::None()});
    spec.output_schema = StreamSchema("bagg", StreamKind::kStream,
                                      out_fields);
    spec.keys.push_back(
        MustCompile(expr::MakeFieldRef(0, 0, DataType::kUint, "bt")));
    AggregateSpec count;
    count.fn = AggFn::kCount;
    count.result_type = DataType::kUint;
    spec.agg_specs.push_back(count);
    spec.agg_args.emplace_back();
    spec.ordered_key = 0;
    spec.ordered_key_band = 10;
    spec.key_punctuation_source = {0};
    ASSERT_TRUE(registry_.DeclareStream(spec.output_schema).ok());
    auto input = registry_.Subscribe("bin", 1024);
    ASSERT_TRUE(input.ok());
    params_ = std::make_shared<std::vector<Value>>();
    node_ = std::make_unique<OrderedAggregateNode>(std::move(spec), *input,
                                                   &registry_, params_);
    auto output = registry_.Subscribe("bagg", 1024);
    ASSERT_TRUE(output.ok());
    output_ = *output;
  }

  void Send(uint64_t bt) {
    rts::TupleCodec codec(BandedInputSchema());
    rts::StreamMessage message;
    codec.Encode({Value::Uint(bt), Value::Uint(1)}, &message.payload);
    registry_.Publish("bin", message);
  }

  std::vector<std::pair<uint64_t, uint64_t>> ReceiveGroups() {
    std::vector<std::pair<uint64_t, uint64_t>> groups;
    rts::TupleCodec codec(registry_.GetSchema("bagg").value());
    rts::StreamMessage message;
    while (output_->TryPop(&message)) {
      if (message.kind != rts::StreamMessage::Kind::kTuple) continue;
      auto row = codec.Decode(
          ByteSpan(message.payload.data(), message.payload.size()));
      if (row.ok()) {
        groups.emplace_back((*row)[0].uint_value(), (*row)[1].uint_value());
      }
    }
    return groups;
  }

  rts::StreamRegistry registry_;
  rts::ParamBlock params_;
  std::unique_ptr<OrderedAggregateNode> node_;
  rts::Subscription output_;
};

TEST_F(BandedAggregateTest, GroupsWithinBandStayOpen) {
  Send(15);
  Send(20);  // advance by 5 < band: nothing may close
  node_->Poll(100);
  EXPECT_TRUE(ReceiveGroups().empty());
  EXPECT_EQ(node_->open_groups(), 2u);
}

TEST_F(BandedAggregateTest, LateTupleWithinBandJoinsItsGroup) {
  Send(15);
  Send(20);
  Send(12);  // late, within band 10 of the max (20)
  Send(12);
  node_->Poll(100);
  EXPECT_EQ(node_->open_groups(), 3u);
  // Advance far enough to close everything below 35-10=25.
  Send(35);
  node_->Poll(100);
  auto groups = ReceiveGroups();
  ASSERT_EQ(groups.size(), 3u);
  EXPECT_EQ(groups[0], (std::pair<uint64_t, uint64_t>{12, 2}));
  EXPECT_EQ(groups[1], (std::pair<uint64_t, uint64_t>{15, 1}));
  EXPECT_EQ(groups[2], (std::pair<uint64_t, uint64_t>{20, 1}));
}

TEST_F(BandedAggregateTest, CloseBoundTrailsByBand) {
  Send(100);
  Send(109);
  Send(111);  // close bound = 101: flushes only the group at 100
  node_->Poll(100);
  auto groups = ReceiveGroups();
  ASSERT_EQ(groups.size(), 1u);
  EXPECT_EQ(groups[0].first, 100u);
  EXPECT_EQ(node_->open_groups(), 2u);
}

TEST_F(BandedAggregateTest, PunctuationIsAuthoritativeDespiteBand) {
  Send(100);
  Send(105);
  node_->Poll(100);
  // An upstream punctuation is a hard guarantee (not band-relative).
  rts::Punctuation punctuation;
  punctuation.bounds.emplace_back(0, Value::Uint(200));
  registry_.Publish("bin", rts::MakePunctuationMessage(
                               punctuation, BandedInputSchema()));
  node_->Poll(100);
  EXPECT_EQ(ReceiveGroups().size(), 2u);
  EXPECT_EQ(node_->open_groups(), 0u);
}

}  // namespace
}  // namespace gigascope::ops
