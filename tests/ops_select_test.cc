#include <gtest/gtest.h>

#include "expr/codegen.h"
#include "ops/select_project.h"
#include "rts/punctuation.h"

namespace gigascope::ops {
namespace {

using expr::CompiledExpr;
using expr::Value;
using gsql::BinaryOp;
using gsql::DataType;
using gsql::FieldDef;
using gsql::OrderSpec;
using gsql::StreamKind;
using gsql::StreamSchema;

StreamSchema InputSchema() {
  std::vector<FieldDef> fields;
  fields.push_back({"t", DataType::kUint, OrderSpec::Increasing()});
  fields.push_back({"v", DataType::kUint, OrderSpec::None()});
  return StreamSchema("in", StreamKind::kStream, fields);
}

StreamSchema OutputSchema() {
  std::vector<FieldDef> fields;
  fields.push_back({"tb", DataType::kUint, OrderSpec::Increasing()});
  fields.push_back({"v2", DataType::kUint, OrderSpec::None()});
  return StreamSchema("out", StreamKind::kStream, fields);
}

CompiledExpr MustCompile(const expr::IrPtr& ir) {
  auto compiled = expr::Compile(ir);
  EXPECT_TRUE(compiled.ok()) << compiled.status().ToString();
  return std::move(compiled).value();
}

class SelectProjectTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(registry_.DeclareStream(InputSchema()).ok());
    ASSERT_TRUE(registry_.DeclareStream(OutputSchema()).ok());

    SelectProjectNode::Spec spec;
    spec.name = "out";
    spec.input_schema = InputSchema();
    spec.output_schema = OutputSchema();
    // WHERE v > 10
    spec.predicate = MustCompile(expr::MakeBinaryIr(
        BinaryOp::kGt, DataType::kBool,
        expr::MakeFieldRef(0, 1, DataType::kUint, "v"),
        expr::MakeConst(Value::Uint(10))));
    // SELECT t/60 AS tb, v*2 AS v2
    spec.projections.push_back(MustCompile(expr::MakeBinaryIr(
        BinaryOp::kDiv, DataType::kUint,
        expr::MakeFieldRef(0, 0, DataType::kUint, "t"),
        expr::MakeConst(Value::Uint(60)))));
    spec.projections.push_back(MustCompile(expr::MakeBinaryIr(
        BinaryOp::kMul, DataType::kUint,
        expr::MakeFieldRef(0, 1, DataType::kUint, "v"),
        expr::MakeConst(Value::Uint(2)))));
    spec.punctuation_source = {0, -1};  // tb maps from field t

    auto input = registry_.Subscribe("in", 64);
    ASSERT_TRUE(input.ok());
    params_ = std::make_shared<std::vector<Value>>();
    node_ = std::make_unique<SelectProjectNode>(std::move(spec), *input,
                                                &registry_, params_);
    auto output = registry_.Subscribe("out", 64);
    ASSERT_TRUE(output.ok());
    output_ = *output;
    codec_ = std::make_unique<rts::TupleCodec>(OutputSchema());
  }

  void Send(uint64_t t, uint64_t v) {
    rts::TupleCodec codec(InputSchema());
    rts::StreamMessage message;
    codec.Encode({Value::Uint(t), Value::Uint(v)}, &message.payload);
    registry_.Publish("in", message);
  }

  std::optional<rts::Row> Receive() {
    rts::StreamMessage message;
    while (output_->TryPop(&message)) {
      if (message.kind != rts::StreamMessage::Kind::kTuple) continue;
      auto row = codec_->Decode(
          ByteSpan(message.payload.data(), message.payload.size()));
      if (row.ok()) return std::move(row).value();
    }
    return std::nullopt;
  }

  std::optional<rts::Punctuation> ReceivePunctuation() {
    rts::StreamMessage message;
    while (output_->TryPop(&message)) {
      if (message.kind != rts::StreamMessage::Kind::kPunctuation) continue;
      auto punctuation = rts::DecodePunctuation(
          ByteSpan(message.payload.data(), message.payload.size()),
          OutputSchema());
      if (punctuation.ok()) return std::move(punctuation).value();
    }
    return std::nullopt;
  }

  rts::StreamRegistry registry_;
  rts::ParamBlock params_;
  std::unique_ptr<SelectProjectNode> node_;
  rts::Subscription output_;
  std::unique_ptr<rts::TupleCodec> codec_;
};

TEST_F(SelectProjectTest, FiltersAndProjects) {
  Send(120, 50);
  Send(130, 5);  // filtered out: v <= 10
  Send(240, 11);
  EXPECT_EQ(node_->Poll(100), 3u);

  auto row1 = Receive();
  ASSERT_TRUE(row1.has_value());
  EXPECT_EQ((*row1)[0].uint_value(), 2u);    // 120/60
  EXPECT_EQ((*row1)[1].uint_value(), 100u);  // 50*2
  auto row2 = Receive();
  ASSERT_TRUE(row2.has_value());
  EXPECT_EQ((*row2)[0].uint_value(), 4u);
  EXPECT_FALSE(Receive().has_value());
  EXPECT_EQ(node_->tuples_in(), 3u);
  EXPECT_EQ(node_->tuples_out(), 2u);
}

TEST_F(SelectProjectTest, PollRespectsBudget) {
  for (int i = 0; i < 10; ++i) Send(100, 100);
  EXPECT_EQ(node_->Poll(4), 4u);
  EXPECT_EQ(node_->Poll(100), 6u);
  EXPECT_EQ(node_->Poll(100), 0u);
}

TEST_F(SelectProjectTest, PunctuationMapsThroughProjection) {
  rts::Punctuation punctuation;
  punctuation.bounds.emplace_back(0, Value::Uint(600));
  registry_.Publish("in", rts::MakePunctuationMessage(punctuation,
                                                      InputSchema()));
  node_->Poll(10);
  auto out = ReceivePunctuation();
  ASSERT_TRUE(out.has_value());
  // Bound on t=600 becomes bound tb = 600/60 = 10 on output field 0.
  ASSERT_TRUE(out->BoundFor(0).has_value());
  EXPECT_EQ(out->BoundFor(0)->uint_value(), 10u);
  EXPECT_FALSE(out->BoundFor(1).has_value());
}

TEST_F(SelectProjectTest, MalformedTupleCountsEvalError) {
  rts::StreamMessage junk;
  junk.kind = rts::StreamMessage::Kind::kTuple;
  junk.payload = {1, 2, 3};  // not a valid encoding
  registry_.Publish("in", junk);
  node_->Poll(10);
  EXPECT_EQ(node_->eval_errors(), 1u);
  EXPECT_EQ(node_->tuples_out(), 0u);
}

TEST_F(SelectProjectTest, ParamChangeTakesEffectImmediately) {
  // Rebuild a node whose predicate uses a parameter: v > $threshold.
  SelectProjectNode::Spec spec;
  spec.name = "pout";
  spec.input_schema = InputSchema();
  std::vector<FieldDef> out_fields;
  out_fields.push_back({"v", DataType::kUint, OrderSpec::None()});
  spec.output_schema = StreamSchema("pout", StreamKind::kStream, out_fields);
  auto predicate_ir = expr::MakeBinaryIr(
      BinaryOp::kGt, DataType::kBool,
      expr::MakeFieldRef(0, 1, DataType::kUint, "v"),
      expr::MakeParamRef(0, DataType::kUint, "threshold"));
  spec.predicate = MustCompile(predicate_ir);
  spec.projections.push_back(
      MustCompile(expr::MakeFieldRef(0, 1, DataType::kUint, "v")));
  spec.punctuation_source = {-1};

  auto params = std::make_shared<std::vector<Value>>(
      std::vector<Value>{Value::Uint(100)});
  ASSERT_TRUE(registry_.DeclareStream(spec.output_schema).ok());
  auto input = registry_.Subscribe("in", 64);
  ASSERT_TRUE(input.ok());
  SelectProjectNode node(std::move(spec), *input, &registry_, params);
  auto output = registry_.Subscribe("pout", 64);

  Send(1, 50);
  node.Poll(10);
  EXPECT_EQ(node.tuples_out(), 0u);  // 50 <= 100

  (*params)[0] = Value::Uint(10);  // change the parameter on the fly (§3)
  Send(2, 50);
  node.Poll(10);
  EXPECT_EQ(node.tuples_out(), 1u);  // 50 > 10
}

}  // namespace
}  // namespace gigascope::ops
