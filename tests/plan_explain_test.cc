// Golden-file tests for EXPLAIN: the stable text rendering of the
// post-split plan is compared byte-for-byte against checked-in goldens for
// the four operator shapes (pure-LFTA filter, split aggregate, join,
// merge). A splitter or ordering-imputation regression shows up as a
// placement or `[order]` diff in the golden.
//
// Regenerate after an intentional plan change:
//   GS_UPDATE_GOLDENS=1 ./build/tests/plan_explain_test
// then inspect the diff under tests/golden/.

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "gsql/analyzer.h"
#include "gsql/parser.h"
#include "plan/explain.h"
#include "plan/planner.h"
#include "plan/splitter.h"
#include "udf/registry.h"

#ifndef GS_GOLDEN_DIR
#error "GS_GOLDEN_DIR must be defined to the tests/golden directory"
#endif

namespace gigascope::plan {
namespace {

using gsql::DataType;

class ExplainTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(
        catalog_.AddSchema(gsql::Catalog::BuiltinPacketSchema()).ok());
    catalog_.AddInterface("eth0");
    options_.resolver = udf::FunctionRegistry::Default();
  }

  void AddDerivedStream(const std::string& name) {
    std::vector<gsql::FieldDef> fields;
    fields.push_back({"ts", DataType::kUint, gsql::OrderSpec::Increasing()});
    fields.push_back({"v", DataType::kUint, gsql::OrderSpec::None()});
    catalog_.PutStreamSchema(
        gsql::StreamSchema(name, gsql::StreamKind::kStream, fields));
  }

  Result<PlannedQuery> Plan(std::string_view query) {
    auto stmt = gsql::ParseStatement(query);
    if (!stmt.ok()) return stmt.status();
    if (auto* select = std::get_if<gsql::SelectStmt>(&stmt.value())) {
      auto resolved = gsql::AnalyzeSelect(*select, catalog_);
      if (!resolved.ok()) return resolved.status();
      return PlanSelect(*resolved, options_);
    }
    auto* merge = std::get_if<gsql::MergeStmt>(&stmt.value());
    auto resolved = gsql::AnalyzeMerge(*merge, catalog_);
    if (!resolved.ok()) return resolved.status();
    return PlanMerge(*resolved, options_);
  }

  // Renders the query and compares against (or regenerates) the golden.
  void CheckGolden(const std::string& golden_name, std::string_view query,
                   const ExplainOptions& opts = {}) {
    auto planned = Plan(query);
    ASSERT_TRUE(planned.ok()) << planned.status().ToString();
    auto split = SplitPlan(*planned);
    ASSERT_TRUE(split.ok()) << split.status().ToString();
    std::string text = ExplainText(*planned, *split, opts);

    const std::string path =
        std::string(GS_GOLDEN_DIR) + "/" + golden_name + ".txt";
    if (std::getenv("GS_UPDATE_GOLDENS") != nullptr) {
      std::ofstream out(path);
      ASSERT_TRUE(out.good()) << "cannot write " << path;
      out << text;
      return;
    }
    std::ifstream in(path);
    ASSERT_TRUE(in.good()) << "missing golden " << path
                           << " (run with GS_UPDATE_GOLDENS=1)";
    std::ostringstream expected;
    expected << in.rdbuf();
    EXPECT_EQ(text, expected.str()) << "EXPLAIN drifted from " << path;

    // The JSON rendering must at least stay balanced and carry the same
    // placement verdict; its full shape is covered by the text golden.
    std::string json = ExplainJson(*planned, *split, opts);
    int depth = 0;
    bool in_string = false;
    for (size_t i = 0; i < json.size(); ++i) {
      char c = json[i];
      if (c == '"' && (i == 0 || json[i - 1] != '\\')) in_string = !in_string;
      if (in_string) continue;
      if (c == '{' || c == '[') ++depth;
      if (c == '}' || c == ']') --depth;
    }
    EXPECT_EQ(depth, 0) << "unbalanced JSON: " << json;
    std::string placement_line;
    std::istringstream text_in(text);
    std::getline(text_in, placement_line);  // "query: ..."
    std::getline(text_in, placement_line);  // "placement: ..."
    std::string placement = placement_line.substr(sizeof("placement: ") - 1);
    EXPECT_NE(json.find("\"placement\":\"" + placement + "\""),
              std::string::npos);
  }

  gsql::Catalog catalog_;
  PlannerOptions options_;
};

TEST_F(ExplainTest, PureLftaFilter) {
  CheckGolden("explain_lfta_filter",
              "DEFINE { query_name tcponly; } "
              "SELECT time, destIP, destPort FROM eth0.PKT "
              "WHERE ipVersion = 4 AND protocol = 6");
}

TEST_F(ExplainTest, SplitAggregate) {
  CheckGolden("explain_split_aggregate",
              "DEFINE { query_name counts; } "
              "SELECT tb, destIP, count(*), sum(len) FROM eth0.PKT "
              "WHERE protocol = 6 GROUP BY time/60 AS tb, destIP");
}

TEST_F(ExplainTest, Join) {
  AddDerivedStream("A");
  AddDerivedStream("B");
  CheckGolden("explain_join",
              "DEFINE { query_name joined; } "
              "SELECT l.ts, l.v, r.v FROM A l, B r "
              "WHERE l.ts = r.ts AND l.v > r.v");
}

// --jit EXPLAIN annotation (DESIGN.md §15): every expression-bearing
// operator gets a `tier:` line predicting the evaluation tier. Arithmetic
// filters and aggregates compile natively; a UDF call-site is an emission
// gap that pins its node to the VM.
TEST_F(ExplainTest, JitTierNative) {
  ExplainOptions opts;
  opts.jit = true;
  CheckGolden("explain_jit_native",
              "DEFINE { query_name shaped; } "
              "SELECT tb, destIP, count(*), sum(len) FROM eth0.PKT "
              "WHERE protocol = 6 AND destPort > 1024 "
              "GROUP BY time/60 AS tb, destIP",
              opts);
}

TEST_F(ExplainTest, JitTierVmFallbackOnUdf) {
  ExplainOptions opts;
  opts.jit = true;
  CheckGolden("explain_jit_udf_vm",
              "DEFINE { query_name hashed; } "
              "SELECT time, hash64(len) FROM eth0.PKT "
              "WHERE hash64(destPort) > 100",
              opts);
}

TEST_F(ExplainTest, Merge) {
  AddDerivedStream("t0");
  AddDerivedStream("t1");
  CheckGolden("explain_merge",
              "DEFINE { query_name both; } "
              "MERGE t0.ts : t1.ts FROM t0, t1");
}

}  // namespace
}  // namespace gigascope::plan
