// Closed-loop overload management (§3 graceful degradation): the controller
// walks the shedding ladder under pressure and back down with hysteresis;
// the engine keeps closing windows while shedding and its scaled aggregates
// stay near the offered load. The threaded case exercises the actuation
// atomics under TSan (scripts in build-tsan with -DGS_SANITIZE=thread).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <string>

#include "core/engine.h"
#include "core/shedding.h"
#include "net/headers.h"
#include "rts/shed_state.h"
#include "telemetry/metric_names.h"

namespace gigascope::core {
namespace {

net::Packet MakePacket(SimTime timestamp, uint16_t dst_port) {
  net::TcpPacketSpec spec;
  spec.src_addr = 0xac100001;
  spec.dst_addr = 0x0a000001;
  spec.src_port = 40000;
  spec.dst_port = dst_port;
  spec.payload = "x";
  net::Packet packet;
  packet.bytes = net::BuildTcpPacket(spec);
  packet.orig_len = static_cast<uint32_t>(packet.bytes.size());
  packet.timestamp = timestamp;
  return packet;
}

uint64_t Metric(const Engine& engine, const std::string& entity,
                const std::string& metric) {
  for (const auto& sample : engine.telemetry().Snapshot()) {
    if (sample.entity == entity && sample.metric == metric) {
      return sample.value;
    }
  }
  return 0;
}

// -- Controller unit behavior -----------------------------------------------

TEST(OverloadControllerTest, LadderEscalatesOneRungPerPressuredCheck) {
  ShedConfig config;
  config.enabled = true;
  config.hold_checks = 2;
  rts::ShedState state;
  OverloadController controller(config, &state);

  EXPECT_EQ(state.Level(), 0u);
  EXPECT_EQ(state.SampleK(), 1u);
  EXPECT_EQ(state.EpochCoarsen(), 1u);
  EXPECT_EQ(state.TableCapPct(), 100u);

  PressureSignals hot;
  hot.max_ring_occupancy = 0.9;  // over the 0.5 default

  EXPECT_EQ(controller.Check(hot), 1u);
  EXPECT_EQ(state.SampleK(), config.sample_k);
  EXPECT_EQ(state.EpochCoarsen(), 1u);  // L2 knob not yet engaged
  EXPECT_EQ(controller.shed_rate_pct(), 75u);  // 1-in-4 kept

  EXPECT_EQ(controller.Check(hot), 2u);
  EXPECT_EQ(state.EpochCoarsen(), config.epoch_coarsen);
  EXPECT_EQ(state.TableCapPct(), 100u);

  EXPECT_EQ(controller.Check(hot), 3u);
  EXPECT_EQ(state.TableCapPct(), config.table_cap_pct);

  // max_level caps the ladder.
  EXPECT_EQ(controller.Check(hot), 3u);
  EXPECT_EQ(controller.checks(), 4u);
}

TEST(OverloadControllerTest, EachSignalAloneTriggersEscalation) {
  ShedConfig config;
  config.enabled = true;
  rts::ShedState state;

  {
    OverloadController controller(config, &state);
    PressureSignals s;
    s.max_punct_lag = config.punct_lag + 1;
    EXPECT_EQ(controller.Check(s), 1u);
  }
  {
    OverloadController controller(config, &state);
    PressureSignals s;
    s.max_lfta_occupancy = 0.95;
    EXPECT_EQ(controller.Check(s), 1u);
  }
  {
    OverloadController controller(config, &state);
    PressureSignals s;
    s.total_drops = 10;  // 10 new drops since the (implicit) zero baseline
    EXPECT_EQ(controller.Check(s), 1u);
    // The drop signal is a delta: the same cumulative total is calm.
    PressureSignals same;
    same.total_drops = 10;
    EXPECT_EQ(controller.Check(same), 1u);  // calm, but hysteresis holds
  }
}

TEST(OverloadControllerTest, StepsDownOnlyAfterHoldChecksCalm) {
  ShedConfig config;
  config.enabled = true;
  config.hold_checks = 3;
  rts::ShedState state;
  OverloadController controller(config, &state);

  PressureSignals hot;
  hot.max_ring_occupancy = 1.0;
  controller.Check(hot);
  controller.Check(hot);
  ASSERT_EQ(state.Level(), 2u);

  PressureSignals calm;  // all signals zero: below every recover band
  EXPECT_EQ(controller.Check(calm), 2u);  // calm 1
  EXPECT_EQ(controller.Check(calm), 2u);  // calm 2
  EXPECT_EQ(controller.Check(calm), 1u);  // calm 3: step down one rung
  EXPECT_EQ(state.SampleK(), config.sample_k);  // still L1

  // A pressured check resets the calm streak.
  EXPECT_EQ(controller.Check(calm), 1u);
  EXPECT_EQ(controller.Check(hot), 2u);
  EXPECT_EQ(controller.Check(calm), 2u);
  EXPECT_EQ(controller.Check(calm), 2u);
  EXPECT_EQ(controller.Check(calm), 1u);

  // Middle band (over recover_fraction, under threshold) holds the level
  // without descending.
  PressureSignals middling;
  middling.max_ring_occupancy = config.ring_occupancy * 0.8;
  EXPECT_EQ(controller.Check(calm), 1u);
  EXPECT_EQ(controller.Check(calm), 1u);
  EXPECT_EQ(controller.Check(middling), 1u);  // streak reset
  EXPECT_EQ(controller.Check(calm), 1u);
  EXPECT_EQ(controller.Check(calm), 1u);
  EXPECT_EQ(controller.Check(calm), 0u);  // full hold_checks again
  EXPECT_EQ(state.SampleK(), 1u);  // exact processing restored
  EXPECT_EQ(state.TableCapPct(), 100u);
}

// -- Engine closed loop ------------------------------------------------------

/// Burst -> overload -> calm: the engine escalates to max level during an
/// unserviced burst, keeps accounting for shed tuples, then steps all the
/// way back to exact processing once the load is serviced again.
TEST(ShedEngineTest, BurstEscalatesThenRecoversToExact) {
  EngineOptions options;
  options.channel_capacity = 16;
  options.batch_max_size = 4;
  options.punctuation_interval = 8;
  options.shed.enabled = true;
  options.shed.check_period = kNanosPerSecond / 10;
  options.shed.ring_occupancy = 0.25;
  options.shed.hold_checks = 2;
  Engine engine(options);
  engine.AddInterface("eth0");
  ASSERT_TRUE(engine
                  .AddQuery("DEFINE { query_name shed0; } "
                            "SELECT tb, count(*) FROM eth0.PKT "
                            "GROUP BY time AS tb")
                  .ok());
  auto sub = engine.Subscribe("shed0", 8192);
  ASSERT_TRUE(sub.ok());

  const SimTime kMs = kNanosPerSecond / 1000;

  // Phase 1 — burst: inject 1500 packets over 1.5s of stream time without
  // ever pumping. Rings fill, drops mount, and every pressure check
  // escalates one rung until the ladder tops out.
  SimTime now = 0;
  for (int i = 1; i <= 1500; ++i) {
    now = i * kMs;
    ASSERT_TRUE(engine.InjectPacket("eth0", MakePacket(now, 80)).ok());
  }
  EXPECT_EQ(Metric(engine, "engine", telemetry::metric::kShedLevel), 3u);
  EXPECT_EQ(Metric(engine, "engine", telemetry::metric::kShedRate), 75u);
  EXPECT_GT(Metric(engine, "engine", telemetry::metric::kShedTuples), 0u);
  EXPECT_GT(Metric(engine, "engine", telemetry::metric::kShedChecks), 2u);

  // Phase 2 — calm: the same stream, now fully serviced after every
  // packet. Pressure vanishes; hysteresis walks the ladder back down.
  for (int i = 1501; i <= 4999; ++i) {
    now = i * kMs;
    ASSERT_TRUE(engine.InjectPacket("eth0", MakePacket(now, 80)).ok());
    engine.PumpUntilIdle();
    while ((*sub)->NextRow()) {
    }
  }
  EXPECT_EQ(Metric(engine, "engine", telemetry::metric::kShedLevel), 0u);
  EXPECT_EQ(Metric(engine, "engine", telemetry::metric::kShedRate), 0u);

  // Phase 3 — exact results resume at level 0: a fresh bucket counts
  // every packet, unscaled. Stream time stays within the punctuation-lag
  // threshold of phase 2 so the quiet gap itself reads as calm, not as a
  // stalled source.
  for (int j = 1; j <= 40; ++j) {
    ASSERT_TRUE(
        engine
            .InjectPacket("eth0", MakePacket(6 * kNanosPerSecond + j * kMs,
                                             80))
            .ok());
  }
  engine.FlushAll();
  uint64_t bucket6 = 0;
  while (auto row = (*sub)->NextRow()) {
    if ((*row)[0].uint_value() == 6) bucket6 += (*row)[1].uint_value();
  }
  EXPECT_EQ(bucket6, 40u);
}

/// Horvitz-Thompson accounting: with pressure that never loses tuples
/// (occupancy, not drops), the scaled COUNT over the whole run stays within
/// a few percent of the offered packet count even though 3 in 4 packets
/// were shed at the source.
TEST(ShedEngineTest, SampledCountsScaleToOfferedLoad) {
  EngineOptions options;
  options.channel_capacity = 64;
  options.batch_max_size = 4;
  options.punctuation_interval = 16;
  options.shed.enabled = true;
  options.shed.check_period = kNanosPerSecond / 10;
  options.shed.ring_occupancy = 0.1;
  options.shed.max_level = 1;  // L1 sampling only
  options.shed.drops_per_check = 0;  // occupancy is the only signal
  options.shed.hold_checks = 1000000;  // never step down during the run
  Engine engine(options);
  engine.AddInterface("eth0");
  ASSERT_TRUE(engine
                  .AddQuery("DEFINE { query_name scaled; } "
                            "SELECT tb, count(*) FROM eth0.PKT "
                            "GROUP BY time AS tb")
                  .ok());
  auto sub = engine.Subscribe("scaled", 65536);
  ASSERT_TRUE(sub.ok());

  const SimTime kMs = kNanosPerSecond / 1000;
  const int kOffered = 20000;
  // Pump on an offset so pressure checks (every 100 packets of stream
  // time) land mid-cycle and see a part-full ring, never a just-drained
  // one.
  for (int i = 1; i <= kOffered; ++i) {
    ASSERT_TRUE(engine.InjectPacket("eth0", MakePacket(i * kMs, 80)).ok());
    if (i % 100 == 50) engine.PumpUntilIdle();
  }
  engine.FlushAll();

  // No ring ever dropped: every offered packet was either folded (with
  // its Horvitz-Thompson weight) or deliberately shed and covered by a
  // surviving packet's weight.
  EXPECT_EQ(engine.registry().TotalDropsAll(), 0u);
  EXPECT_EQ(Metric(engine, "engine", telemetry::metric::kShedLevel), 1u);
  const uint64_t shed = Metric(engine, "engine",
                               telemetry::metric::kShedTuples);
  EXPECT_GT(shed, static_cast<uint64_t>(kOffered) / 2);  // mostly shedding

  uint64_t total = 0;
  while (auto row = (*sub)->NextRow()) total += (*row)[1].uint_value();
  // Declared error: weights are stamped per message at the sampling
  // decision, so the only slack is the 1-in-k phase at the escalation
  // boundary — a handful of tuples, far under 5% at this run length.
  const double error =
      std::abs(static_cast<double>(total) - kOffered) / kOffered;
  EXPECT_LT(error, 0.05) << "total=" << total << " offered=" << kOffered;
}

/// Threaded pump under overload: the inject thread actuates the ladder
/// while workers read the shed state and fold with its weights. The value
/// of this test is TSan (build-tsan runs it): no locks on the hot path,
/// only the ShedState atomics.
TEST(ShedEngineTest, ThreadedBurstWithSheddingStaysCoherent) {
  EngineOptions options;
  options.channel_capacity = 16;
  options.batch_max_size = 4;
  options.punctuation_interval = 8;
  options.shed.enabled = true;
  options.shed.check_period = kNanosPerSecond / 20;
  options.shed.ring_occupancy = 0.25;
  options.shed.hold_checks = 2;
  Engine engine(options);
  engine.AddInterface("eth0");
  ASSERT_TRUE(engine
                  .AddQuery("DEFINE { query_name threaded; } "
                            "SELECT tb, count(*) FROM eth0.PKT "
                            "GROUP BY time AS tb")
                  .ok());
  auto sub = engine.Subscribe("threaded", 8192);
  ASSERT_TRUE(sub.ok());
  ASSERT_TRUE(engine.StartThreads(2).ok());

  const SimTime kHalfMs = kNanosPerSecond / 2000;
  for (int i = 1; i <= 4000; ++i) {
    ASSERT_TRUE(engine.InjectPacket("eth0", MakePacket(i * kHalfMs, 80)).ok());
  }
  engine.StopThreads();
  engine.FlushAll();

  EXPECT_GT(Metric(engine, "engine", telemetry::metric::kShedChecks), 0u);
  uint64_t total = 0;
  uint64_t rows = 0;
  while (auto row = (*sub)->NextRow()) {
    ++rows;
    total += (*row)[1].uint_value();
  }
  EXPECT_GT(rows, 0u);   // windows kept closing under overload
  EXPECT_GT(total, 0u);  // and carried (possibly scaled) counts
}

}  // namespace
}  // namespace gigascope::core
