#!/usr/bin/env bash
# Builds the tree with AddressSanitizer + UndefinedBehaviorSanitizer and
# runs the test suite (everything by default; pass a ctest -L label like
# `robustness` to narrow). The malformed-input and shedding suites are
# written to be ASan/UBSan-clean — hostile bytes must never read out of
# bounds, and the overload path must never overflow its arithmetic.
#
# Usage: scripts/check_asan.sh [label]
#   scripts/check_asan.sh             # full suite under ASan+UBSan
#   scripts/check_asan.sh robustness  # just the hostile-input suites
#
# A TSan pass over the threaded suites is the same recipe with a different
# flag: cmake -B build-tsan -DGS_SANITIZE=thread && ctest -L concurrency.
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR=build-asan
LABEL="${1:-}"

cmake -B "${BUILD_DIR}" -S . -DGS_SANITIZE=address,undefined \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "${BUILD_DIR}" -j"$(nproc)"

# halt_on_error: fail the test, not just print; detect_leaks off — the
# engine tears down at process exit and gtest mains are leak-noisy.
export ASAN_OPTIONS="halt_on_error=1:detect_leaks=0"
export UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1"

cd "${BUILD_DIR}"
if [[ -n "${LABEL}" ]]; then
  ctest -L "${LABEL}" --output-on-failure
else
  ctest --output-on-failure
fi
