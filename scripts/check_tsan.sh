#!/usr/bin/env bash
# Builds the tree with ThreadSanitizer and runs the concurrency-labelled
# suites (pass a different ctest -L label to narrow further, or "all" for
# the whole suite). The threaded pump mode and the supervisor's monitor
# thread — which races worker death, heartbeat publication, and shm ring
# handoff — are written to be TSan-clean.
#
# Usage: scripts/check_tsan.sh [label|all]
#   scripts/check_tsan.sh              # concurrency-labelled suites
#   scripts/check_tsan.sh robustness   # the fault/hostile-input suites
#   scripts/check_tsan.sh all          # entire test suite under TSan
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR=build-tsan
LABEL="${1:-concurrency}"

cmake -B "${BUILD_DIR}" -S . -DGS_SANITIZE=thread \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "${BUILD_DIR}" -j"$(nproc)"

# halt_on_error: fail the test, not just print the race report.
export TSAN_OPTIONS="halt_on_error=1:second_deadlock_stack=1"

cd "${BUILD_DIR}"
if [[ "${LABEL}" == "all" ]]; then
  ctest --output-on-failure
else
  ctest -L "${LABEL}" --output-on-failure
fi
