// flow_report — the paper's §2.2 getlpmid example:
//
//   Select peerid, tb, count(*) FROM tcpdest
//   Group by time/60 as tb, getlpmid(destIP, 'peerid.tbl') as peerid
//
// getlpmid performs longest-prefix matching of the destination address
// against a routing table loaded once at query instantiation (the
// pass-by-handle parameter). Unmatched addresses produce no result — the
// partial function acts as a foreign-key join and the tuple is discarded.

#include <cstdio>

#include "core/engine.h"
#include "workload/traffic_gen.h"

int main() {
  using gigascope::core::Engine;

  Engine engine;
  engine.AddInterface("eth0");

  // The intermediate stream, as in the paper (tcpdest feeds the report).
  auto tcpdest = engine.AddQuery(
      "DEFINE { query_name tcpdest; } "
      "SELECT time, destIP, len FROM eth0.PKT WHERE protocol = 6");
  if (!tcpdest.ok()) {
    std::fprintf(stderr, "%s\n", tcpdest.status().ToString().c_str());
    return 1;
  }

  // Peer table: in a deployment this is a file derived from BGP; here an
  // inline literal with three AT&T-style peers covering 10/8's subnets.
  auto report = engine.AddQuery(
      "DEFINE { query_name peer_report; } "
      "SELECT peerid, tb, count(*), sum(len) FROM tcpdest "
      "GROUP BY time/60 AS tb, "
      "getlpmid(destIP, 'inline:"
      "10.0.0.0/14 101\n"
      "10.4.0.0/14 102\n"
      "10.8.0.0/13 103\n"
      "10.8.0.0/14 104') AS peerid");
  if (!report.ok()) {
    std::fprintf(stderr, "%s\n", report.status().ToString().c_str());
    return 1;
  }

  auto subscription = engine.Subscribe("peer_report");
  if (!subscription.ok()) return 1;

  gigascope::workload::TrafficConfig config;
  config.seed = 4;
  config.num_flows = 500;
  config.tcp_fraction = 1.0;
  config.offered_bits_per_sec = 10e6;
  config.dst_network = 0x0a000000;  // destinations in 10/8
  gigascope::workload::TrafficGenerator generator(config);

  for (int i = 0; i < 30000; ++i) {
    engine.InjectPacket("eth0", generator.Next()).ok();
    if (i % 1000 == 999) engine.PumpUntilIdle();
  }
  engine.PumpUntilIdle();
  engine.FlushAll();

  std::printf("%-8s %-8s %-10s %-12s\n", "peerid", "minute", "packets",
              "bytes");
  while (auto row = (*subscription)->NextRow()) {
    std::printf("%-8llu %-8llu %-10llu %-12llu\n",
                static_cast<unsigned long long>((*row)[0].uint_value()),
                static_cast<unsigned long long>((*row)[1].uint_value()),
                static_cast<unsigned long long>((*row)[2].uint_value()),
                static_cast<unsigned long long>((*row)[3].uint_value()));
  }
  std::printf(
      "-- note: peer 104's /14 nests inside peer 103's /13; longest prefix "
      "wins.\n");
  return 0;
}
