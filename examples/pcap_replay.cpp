// pcap_replay — offline analysis of a capture file, the "post-facto" half
// of the paper's story: most network analysis before Gigascope was "ad-hoc
// tools on network trace dumps". Here the same GSQL query that runs live
// also runs over a pcap file, using this repository's own pcap writer and
// reader (tcpdump/wireshark compatible).

#include <cstdio>
#include <string>

#include "core/engine.h"
#include "net/pcap.h"
#include "workload/traffic_gen.h"

int main() {
  const std::string path = "/tmp/gigascope_replay.pcap";

  // --- 1. Record a trace (what a dump-to-disk monitor would do). ---
  {
    gigascope::net::PcapWriter writer;
    if (!writer.Open(path).ok()) {
      std::fprintf(stderr, "cannot write %s\n", path.c_str());
      return 1;
    }
    gigascope::workload::TrafficConfig config;
    config.seed = 12;
    config.num_flows = 100;
    config.port80_fraction = 0.4;
    config.http_fraction = 0.7;
    config.offered_bits_per_sec = 8e6;
    gigascope::workload::TrafficGenerator generator(config);
    for (int i = 0; i < 5000; ++i) {
      if (!writer.Write(generator.Next()).ok()) return 1;
    }
    writer.Close().ok();
    std::printf("wrote %llu packets to %s\n",
                static_cast<unsigned long long>(writer.packets_written()),
                path.c_str());
  }

  // --- 2. Replay it through the engine. ---
  gigascope::core::Engine engine;
  engine.AddInterface("replay0");
  auto info = engine.AddQuery(
      "DEFINE { query_name per_second; } "
      "SELECT time, count(*), sum(len) FROM replay0.PKT "
      "WHERE protocol = 6 AND destPort = 80 GROUP BY time");
  if (!info.ok()) {
    std::fprintf(stderr, "%s\n", info.status().ToString().c_str());
    return 1;
  }
  auto subscription = engine.Subscribe("per_second");
  if (!subscription.ok()) return 1;

  gigascope::net::PcapReader reader;
  if (!reader.Open(path).ok()) return 1;
  gigascope::net::Packet packet;
  bool eof = false;
  uint64_t replayed = 0;
  while (reader.Next(&packet, &eof).ok() && !eof) {
    engine.InjectPacket("replay0", packet).ok();
    ++replayed;
    if (replayed % 512 == 0) engine.PumpUntilIdle();
  }
  reader.Close().ok();
  engine.PumpUntilIdle();
  engine.FlushAll();

  std::printf("replayed %llu packets\n\n",
              static_cast<unsigned long long>(replayed));
  std::printf("%-8s %-10s %-12s\n", "second", "pkts:80", "bytes");
  while (auto row = (*subscription)->NextRow()) {
    std::printf("%-8llu %-10llu %-12llu\n",
                static_cast<unsigned long long>((*row)[0].uint_value()),
                static_cast<unsigned long long>((*row)[1].uint_value()),
                static_cast<unsigned long long>((*row)[2].uint_value()));
  }
  std::remove(path.c_str());
  return 0;
}
