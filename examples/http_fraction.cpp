// http_fraction — the §4 experiment's query set: what fraction of port-80
// traffic is actually HTTP? (Port 80 is used to tunnel through firewalls.)
//
// Two per-second aggregations composed over the packet stream:
//   all80:  count of TCP packets to port 80
//   http80: count of those whose payload matches ^[^\n]*HTTP/1.*
// The regex is too expensive for an LFTA, so the planner splits http80
// into an LFTA port filter and an HFTA regex stage — exactly the §4 plan.

#include <cstdio>
#include <map>

#include "core/engine.h"
#include "workload/traffic_gen.h"

int main() {
  using gigascope::core::Engine;

  Engine engine;
  engine.AddInterface("eth0");

  auto all80 = engine.AddQuery(
      "DEFINE { query_name all80; } "
      "SELECT time, count(*) FROM eth0.PKT "
      "WHERE protocol = 6 AND destPort = 80 GROUP BY time");
  auto http80 = engine.AddQuery(
      "DEFINE { query_name http80; } "
      "SELECT time, count(*) FROM eth0.PKT "
      "WHERE protocol = 6 AND destPort = 80 "
      "AND match_regex(payload, '^[^\\n]*HTTP/1.*') GROUP BY time");
  if (!all80.ok() || !http80.ok()) {
    std::fprintf(stderr, "compile error: %s\n",
                 (!all80.ok() ? all80 : http80).status().ToString().c_str());
    return 1;
  }
  std::printf("query http80: lfta=%s hfta=%s (regex runs in the HFTA)\n\n",
              http80->has_lfta ? "yes" : "no",
              http80->has_hfta ? "yes" : "no");

  auto sub_all = engine.Subscribe("all80");
  auto sub_http = engine.Subscribe("http80");
  if (!sub_all.ok() || !sub_http.ok()) return 1;

  // 60% of port-80 packets carry genuine HTTP; the rest is tunneled.
  gigascope::workload::TrafficConfig config;
  config.seed = 7;
  config.num_flows = 400;
  config.flow_skew = 0.2;  // near-uniform flows: packet fraction ~= flow fraction
  config.port80_fraction = 0.5;
  config.http_fraction = 0.6;
  config.offered_bits_per_sec = 20e6;
  gigascope::workload::TrafficGenerator generator(config);

  for (int i = 0; i < 20000; ++i) {
    engine.InjectPacket("eth0", generator.Next()).ok();
    if (i % 1000 == 999) engine.PumpUntilIdle();
  }
  engine.PumpUntilIdle();
  engine.FlushAll();

  std::map<uint64_t, uint64_t> all_counts, http_counts;
  while (auto row = (*sub_all)->NextRow()) {
    all_counts[(*row)[0].uint_value()] = (*row)[1].uint_value();
  }
  while (auto row = (*sub_http)->NextRow()) {
    http_counts[(*row)[0].uint_value()] = (*row)[1].uint_value();
  }

  std::printf("%-8s %-10s %-10s %-10s\n", "second", "port80", "http",
              "fraction");
  uint64_t total80 = 0, total_http = 0;
  for (const auto& [second, count] : all_counts) {
    uint64_t http = http_counts.count(second) ? http_counts[second] : 0;
    std::printf("%-8llu %-10llu %-10llu %-10.2f\n",
                static_cast<unsigned long long>(second),
                static_cast<unsigned long long>(count),
                static_cast<unsigned long long>(http),
                count > 0 ? static_cast<double>(http) / count : 0.0);
    total80 += count;
    total_http += http;
  }
  std::printf("-- overall HTTP fraction: %.3f (configured 0.6)\n",
              total80 ? static_cast<double>(total_http) / total80 : 0.0);
  return 0;
}
