// link_merge — the paper's motivating MERGE scenario (§2.2): optical links
// are simplex, so observing a full-duplex logical link means monitoring two
// interfaces and merging the two tuple streams while preserving the time
// order. "This operator is surprisingly important — we implemented it
// before the join operator."

#include <cstdio>

#include "core/engine.h"
#include "workload/traffic_gen.h"

int main() {
  using gigascope::core::Engine;

  Engine engine;
  engine.AddInterface("eth0");  // eastbound fiber
  engine.AddInterface("eth1");  // westbound fiber

  const char* queries[] = {
      "DEFINE { query_name tcpdest0; } "
      "SELECT time, destIP, destPort, len FROM eth0.PKT WHERE protocol = 6",
      "DEFINE { query_name tcpdest1; } "
      "SELECT time, destIP, destPort, len FROM eth1.PKT WHERE protocol = 6",
      // The paper's merge, verbatim structure:
      //   Merge tcpdest0.time : tcpdest1.time From tcpdest0, tcpdest1
      "DEFINE { query_name tcpdest; } "
      "MERGE tcpdest0.time : tcpdest1.time FROM tcpdest0, tcpdest1",
  };
  for (const char* query : queries) {
    auto info = engine.AddQuery(query);
    if (!info.ok()) {
      std::fprintf(stderr, "compile error: %s\n",
                   info.status().ToString().c_str());
      return 1;
    }
  }

  auto subscription = engine.Subscribe("tcpdest");
  if (!subscription.ok()) return 1;

  // Two directions with different rates (traffic is rarely symmetric).
  gigascope::workload::TrafficConfig east;
  east.seed = 10;
  east.num_flows = 10;
  east.tcp_fraction = 1.0;
  east.offered_bits_per_sec = 4e6;
  gigascope::workload::TrafficConfig west = east;
  west.seed = 20;
  west.offered_bits_per_sec = 1e6;

  gigascope::workload::TrafficGenerator east_gen(east);
  gigascope::workload::TrafficGenerator west_gen(west);

  // Feed packets in global timestamp order, as two capture cards would.
  for (int i = 0; i < 120; ++i) {
    if (east_gen.NextArrivalTime() <= west_gen.NextArrivalTime()) {
      engine.InjectPacket("eth0", east_gen.Next()).ok();
    } else {
      engine.InjectPacket("eth1", west_gen.Next()).ok();
    }
  }
  // Heartbeats release any tuples parked behind the slower direction.
  engine.InjectHeartbeat("eth0", 3600 * gigascope::kNanosPerSecond).ok();
  engine.InjectHeartbeat("eth1", 3600 * gigascope::kNanosPerSecond).ok();
  engine.PumpUntilIdle();

  std::printf("%-6s %-18s %-10s %-8s\n", "time", "destIP", "destPort",
              "len");
  uint64_t last_time = 0;
  bool sorted = true;
  int rows = 0;
  while (auto row = (*subscription)->NextRow()) {
    if (rows < 15) {
      std::printf("%-6llu %-18s %-10llu %-8llu\n",
                  static_cast<unsigned long long>((*row)[0].uint_value()),
                  (*row)[1].ToString().c_str(),
                  static_cast<unsigned long long>((*row)[2].uint_value()),
                  static_cast<unsigned long long>((*row)[3].uint_value()));
    }
    sorted = sorted && (*row)[0].uint_value() >= last_time;
    last_time = (*row)[0].uint_value();
    ++rows;
  }
  std::printf("-- merged %d tuples from 2 simplex links; time-ordered: %s\n",
              rows, sorted ? "yes" : "NO (bug!)");
  return sorted ? 0 : 1;
}
