// netflow_report — the §2.1 scenario end to end: a router's flow cache
// exports Netflow records whose endTime is monotone but whose startTime is
// only banded-increasing(30); "most queries on Netflow data will refer to
// the start timestamp rather than the end timestamp". The banded ordering
// property is what lets the aggregation below stay a stream operator
// without losing late records.

#include <cstdio>

#include "core/engine.h"
#include "workload/netflow_gen.h"
#include "workload/traffic_gen.h"

int main() {
  using gigascope::core::Engine;
  using gigascope::expr::Value;
  using gigascope::gsql::DataType;
  using gigascope::gsql::FieldDef;
  using gigascope::gsql::OrderSpec;

  Engine engine;
  std::vector<FieldDef> fields;
  fields.push_back({"endTime", DataType::kUint, OrderSpec::Increasing()});
  fields.push_back({"startTime", DataType::kUint, OrderSpec::Banded(30)});
  fields.push_back({"srcIP", DataType::kIp, OrderSpec::None()});
  fields.push_back({"destIP", DataType::kIp, OrderSpec::None()});
  fields.push_back({"packets", DataType::kUint, OrderSpec::None()});
  fields.push_back({"bytes", DataType::kUint, OrderSpec::None()});
  if (!engine
           .DeclareStream(gigascope::gsql::StreamSchema(
               "netflow", gigascope::gsql::StreamKind::kStream, fields))
           .ok()) {
    return 1;
  }

  // Per-minute traffic report keyed on the flows' *start* minute.
  auto info = engine.AddQuery(
      "DEFINE { query_name start_minutes; } "
      "SELECT tb, count(*), sum(packets), sum(bytes) FROM netflow "
      "GROUP BY startTime/60 AS tb");
  if (!info.ok()) {
    std::fprintf(stderr, "%s\n", info.status().ToString().c_str());
    return 1;
  }
  auto subscription = engine.Subscribe("start_minutes");
  if (!subscription.ok()) return 1;

  // A simulated router: packets in, Netflow records out every 30 seconds.
  gigascope::workload::TrafficConfig config;
  config.seed = 8;
  config.num_flows = 60;
  config.offered_bits_per_sec = 1e6;
  gigascope::workload::TrafficGenerator packets(config);
  gigascope::workload::NetflowGenerator router(30);

  uint64_t exported = 0;
  for (int i = 0; i < 60000; ++i) {
    for (const auto& record : router.OnPacket(packets.Next())) {
      engine.InjectRow("netflow",
                       {Value::Uint(record.end_time),
                        Value::Uint(record.start_time),
                        Value::Ip(record.src_addr),
                        Value::Ip(record.dst_addr),
                        Value::Uint(record.packets),
                        Value::Uint(record.bytes)})
          .ok();
      ++exported;
    }
    if (i % 2048 == 2047) engine.PumpUntilIdle();
  }
  for (const auto& record : router.FlushAll()) {
    engine.InjectRow("netflow",
                     {Value::Uint(record.end_time),
                      Value::Uint(record.start_time),
                      Value::Ip(record.src_addr), Value::Ip(record.dst_addr),
                      Value::Uint(record.packets),
                      Value::Uint(record.bytes)})
        .ok();
    ++exported;
  }
  engine.PumpUntilIdle();
  engine.FlushAll();

  std::printf("router exported %llu flow records (30s dumps)\n\n",
              static_cast<unsigned long long>(exported));
  std::printf("%-12s %-8s %-10s %-12s\n", "start min", "flows", "packets",
              "bytes");
  while (auto row = (*subscription)->NextRow()) {
    std::printf("%-12llu %-8llu %-10llu %-12llu\n",
                static_cast<unsigned long long>((*row)[0].uint_value()),
                static_cast<unsigned long long>((*row)[1].uint_value()),
                static_cast<unsigned long long>((*row)[2].uint_value()),
                static_cast<unsigned long long>((*row)[3].uint_value()));
  }
  return 0;
}
