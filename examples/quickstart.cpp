// Quickstart — the paper's §2.2 example query, end to end:
//
//   DEFINE query name tcpdest0;
//   Select destIP, destPort, time From eth0.tcp
//   Where IPVersion = 4 and Protocol = 6
//
// We compile the query, feed synthetic packets into the simulated eth0
// interface, and print the resulting tuple stream.

#include <cstdio>

#include "core/engine.h"
#include "workload/traffic_gen.h"

int main() {
  using gigascope::core::Engine;

  Engine engine;
  engine.AddInterface("eth0");

  auto info = engine.AddQuery(
      "DEFINE { query_name tcpdest0; } "
      "SELECT destIP, destPort, time FROM eth0.PKT "
      "WHERE ipVersion = 4 AND protocol = 6");
  if (!info.ok()) {
    std::fprintf(stderr, "compile error: %s\n",
                 info.status().ToString().c_str());
    return 1;
  }
  std::printf("compiled query 'tcpdest0'\n%s\n", info->plan_text.c_str());

  auto subscription = engine.Subscribe("tcpdest0");
  if (!subscription.ok()) {
    std::fprintf(stderr, "%s\n", subscription.status().ToString().c_str());
    return 1;
  }

  // Synthetic traffic on eth0: mixed TCP/UDP flows.
  gigascope::workload::TrafficConfig config;
  config.seed = 1;
  config.num_flows = 20;
  config.tcp_fraction = 0.7;
  config.offered_bits_per_sec = 1e6;
  gigascope::workload::TrafficGenerator generator(config);

  for (int i = 0; i < 40; ++i) {
    engine.InjectPacket("eth0", generator.Next()).ok();
  }
  engine.PumpUntilIdle();

  std::printf("%-18s %-10s %-6s\n", "destIP", "destPort", "time");
  int rows = 0;
  while (auto row = (*subscription)->NextRow()) {
    std::printf("%-18s %-10llu %-6llu\n", (*row)[0].ToString().c_str(),
                static_cast<unsigned long long>((*row)[1].uint_value()),
                static_cast<unsigned long long>((*row)[2].uint_value()));
    ++rows;
  }
  std::printf("-- %d TCP packets matched (UDP filtered out by the LFTA)\n",
              rows);
  return 0;
}
