// intrusion_sketch — a SYN-flood detector in GSQL, showing query
// composition (§2.2) and on-the-fly parameters (§3): count TCP SYNs per
// destination per second, then alert on destinations whose SYN rate
// exceeds a tunable threshold.

#include <cstdio>

#include "core/engine.h"
#include "net/headers.h"
#include "workload/traffic_gen.h"

int main() {
  using gigascope::core::Engine;
  using gigascope::expr::Value;

  Engine engine;
  engine.AddInterface("eth0");

  // Stage 1 (LFTA-friendly): SYN packets only. tcpFlags & 2 selects SYN;
  // excluding ACKs (flag 16) keeps only connection attempts.
  auto syns = engine.AddQuery(
      "DEFINE { query_name syns; } "
      "SELECT time, destIP FROM eth0.PKT "
      "WHERE protocol = 6 AND tcpFlags & 2 = 2 AND tcpFlags & 16 = 0");
  // Stage 2: per-second per-destination SYN counts with a HAVING alert
  // threshold as a query parameter.
  auto alerts = engine.AddQuery(
      "DEFINE { query_name syn_alerts; param threshold UINT = 20; } "
      "SELECT time, destIP, count(*) AS syn_count FROM syns "
      "GROUP BY time, destIP HAVING count(*) > $threshold");
  if (!syns.ok() || !alerts.ok()) {
    std::fprintf(stderr, "compile error: %s\n",
                 (!syns.ok() ? syns : alerts).status().ToString().c_str());
    return 1;
  }

  auto subscription = engine.Subscribe("syn_alerts");
  if (!subscription.ok()) return 1;

  // Background traffic plus an attack burst against one victim.
  gigascope::workload::TrafficConfig config;
  config.seed = 2;
  config.num_flows = 100;
  config.tcp_fraction = 1.0;
  config.offered_bits_per_sec = 5e6;
  gigascope::workload::TrafficGenerator generator(config);

  auto make_syn = [](gigascope::SimTime when, uint32_t src, uint32_t dst) {
    gigascope::net::TcpPacketSpec spec;
    spec.src_addr = src;
    spec.dst_addr = dst;
    spec.src_port = static_cast<uint16_t>(1024 + (src & 0x3fff));
    spec.dst_port = 80;
    spec.flags = gigascope::net::kTcpFlagSyn;
    gigascope::net::Packet packet;
    packet.bytes = gigascope::net::BuildTcpPacket(spec);
    packet.orig_len = static_cast<uint32_t>(packet.bytes.size());
    packet.timestamp = when;
    return packet;
  };

  const uint32_t kVictim = 0x0a00002a;  // 10.0.0.42
  for (int second = 0; second < 8; ++second) {
    // Normal traffic.
    while (generator.NextArrivalTime() <
           (second + 1) * gigascope::kNanosPerSecond) {
      engine.InjectPacket("eth0", generator.Next()).ok();
    }
    // Attack: 60 spoofed SYNs per second during seconds 3-5.
    if (second >= 3 && second <= 5) {
      for (int i = 0; i < 60; ++i) {
        engine.InjectPacket(
            "eth0", make_syn(second * gigascope::kNanosPerSecond + i * 1000,
                             0xc6000000 + static_cast<uint32_t>(i), kVictim))
            .ok();
      }
    }
    engine.PumpUntilIdle();
  }
  engine.InjectHeartbeat("eth0", 10 * gigascope::kNanosPerSecond).ok();
  engine.PumpUntilIdle();

  std::printf("alerts with threshold=20:\n");
  std::printf("%-8s %-18s %-10s\n", "second", "destIP", "syn_count");
  while (auto row = (*subscription)->NextRow()) {
    std::printf("%-8llu %-18s %-10llu\n",
                static_cast<unsigned long long>((*row)[0].uint_value()),
                (*row)[1].ToString().c_str(),
                static_cast<unsigned long long>((*row)[2].uint_value()));
  }

  // Operators can tighten the threshold live, without recompiling (§3).
  engine.SetParam("syn_alerts", "threshold", Value::Uint(1000)).ok();
  std::printf(
      "\nthreshold raised to 1000 on the fly; later alerts now require a\n"
      "much larger flood (no query restart needed).\n");
  return 0;
}
