# Empty dependencies file for gs_udf.
# This may be replaced when dependencies are built.
