file(REMOVE_RECURSE
  "CMakeFiles/gs_udf.dir/udf/builtins.cc.o"
  "CMakeFiles/gs_udf.dir/udf/builtins.cc.o.d"
  "CMakeFiles/gs_udf.dir/udf/lpm.cc.o"
  "CMakeFiles/gs_udf.dir/udf/lpm.cc.o.d"
  "CMakeFiles/gs_udf.dir/udf/regex.cc.o"
  "CMakeFiles/gs_udf.dir/udf/regex.cc.o.d"
  "CMakeFiles/gs_udf.dir/udf/registry.cc.o"
  "CMakeFiles/gs_udf.dir/udf/registry.cc.o.d"
  "libgs_udf.a"
  "libgs_udf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gs_udf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
