file(REMOVE_RECURSE
  "libgs_udf.a"
)
