
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/udf/builtins.cc" "src/CMakeFiles/gs_udf.dir/udf/builtins.cc.o" "gcc" "src/CMakeFiles/gs_udf.dir/udf/builtins.cc.o.d"
  "/root/repo/src/udf/lpm.cc" "src/CMakeFiles/gs_udf.dir/udf/lpm.cc.o" "gcc" "src/CMakeFiles/gs_udf.dir/udf/lpm.cc.o.d"
  "/root/repo/src/udf/regex.cc" "src/CMakeFiles/gs_udf.dir/udf/regex.cc.o" "gcc" "src/CMakeFiles/gs_udf.dir/udf/regex.cc.o.d"
  "/root/repo/src/udf/registry.cc" "src/CMakeFiles/gs_udf.dir/udf/registry.cc.o" "gcc" "src/CMakeFiles/gs_udf.dir/udf/registry.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/gs_expr.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gs_gsql.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
