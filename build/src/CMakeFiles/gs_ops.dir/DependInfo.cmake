
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ops/aggregate.cc" "src/CMakeFiles/gs_ops.dir/ops/aggregate.cc.o" "gcc" "src/CMakeFiles/gs_ops.dir/ops/aggregate.cc.o.d"
  "/root/repo/src/ops/defrag.cc" "src/CMakeFiles/gs_ops.dir/ops/defrag.cc.o" "gcc" "src/CMakeFiles/gs_ops.dir/ops/defrag.cc.o.d"
  "/root/repo/src/ops/join.cc" "src/CMakeFiles/gs_ops.dir/ops/join.cc.o" "gcc" "src/CMakeFiles/gs_ops.dir/ops/join.cc.o.d"
  "/root/repo/src/ops/lfta_agg.cc" "src/CMakeFiles/gs_ops.dir/ops/lfta_agg.cc.o" "gcc" "src/CMakeFiles/gs_ops.dir/ops/lfta_agg.cc.o.d"
  "/root/repo/src/ops/merge.cc" "src/CMakeFiles/gs_ops.dir/ops/merge.cc.o" "gcc" "src/CMakeFiles/gs_ops.dir/ops/merge.cc.o.d"
  "/root/repo/src/ops/select_project.cc" "src/CMakeFiles/gs_ops.dir/ops/select_project.cc.o" "gcc" "src/CMakeFiles/gs_ops.dir/ops/select_project.cc.o.d"
  "/root/repo/src/ops/tcp_session.cc" "src/CMakeFiles/gs_ops.dir/ops/tcp_session.cc.o" "gcc" "src/CMakeFiles/gs_ops.dir/ops/tcp_session.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/gs_rts.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gs_plan.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gs_udf.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gs_expr.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gs_gsql.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gs_bpf.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gs_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
