file(REMOVE_RECURSE
  "libgs_ops.a"
)
