file(REMOVE_RECURSE
  "CMakeFiles/gs_ops.dir/ops/aggregate.cc.o"
  "CMakeFiles/gs_ops.dir/ops/aggregate.cc.o.d"
  "CMakeFiles/gs_ops.dir/ops/defrag.cc.o"
  "CMakeFiles/gs_ops.dir/ops/defrag.cc.o.d"
  "CMakeFiles/gs_ops.dir/ops/join.cc.o"
  "CMakeFiles/gs_ops.dir/ops/join.cc.o.d"
  "CMakeFiles/gs_ops.dir/ops/lfta_agg.cc.o"
  "CMakeFiles/gs_ops.dir/ops/lfta_agg.cc.o.d"
  "CMakeFiles/gs_ops.dir/ops/merge.cc.o"
  "CMakeFiles/gs_ops.dir/ops/merge.cc.o.d"
  "CMakeFiles/gs_ops.dir/ops/select_project.cc.o"
  "CMakeFiles/gs_ops.dir/ops/select_project.cc.o.d"
  "CMakeFiles/gs_ops.dir/ops/tcp_session.cc.o"
  "CMakeFiles/gs_ops.dir/ops/tcp_session.cc.o.d"
  "libgs_ops.a"
  "libgs_ops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gs_ops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
