# Empty dependencies file for gs_ops.
# This may be replaced when dependencies are built.
