file(REMOVE_RECURSE
  "libgs_common.a"
)
