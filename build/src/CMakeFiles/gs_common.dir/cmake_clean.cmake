file(REMOVE_RECURSE
  "CMakeFiles/gs_common.dir/common/bytes.cc.o"
  "CMakeFiles/gs_common.dir/common/bytes.cc.o.d"
  "CMakeFiles/gs_common.dir/common/clock.cc.o"
  "CMakeFiles/gs_common.dir/common/clock.cc.o.d"
  "CMakeFiles/gs_common.dir/common/logging.cc.o"
  "CMakeFiles/gs_common.dir/common/logging.cc.o.d"
  "CMakeFiles/gs_common.dir/common/rng.cc.o"
  "CMakeFiles/gs_common.dir/common/rng.cc.o.d"
  "CMakeFiles/gs_common.dir/common/status.cc.o"
  "CMakeFiles/gs_common.dir/common/status.cc.o.d"
  "libgs_common.a"
  "libgs_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gs_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
