
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/headers.cc" "src/CMakeFiles/gs_net.dir/net/headers.cc.o" "gcc" "src/CMakeFiles/gs_net.dir/net/headers.cc.o.d"
  "/root/repo/src/net/packet.cc" "src/CMakeFiles/gs_net.dir/net/packet.cc.o" "gcc" "src/CMakeFiles/gs_net.dir/net/packet.cc.o.d"
  "/root/repo/src/net/pcap.cc" "src/CMakeFiles/gs_net.dir/net/pcap.cc.o" "gcc" "src/CMakeFiles/gs_net.dir/net/pcap.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/gs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
