file(REMOVE_RECURSE
  "libgs_net.a"
)
