file(REMOVE_RECURSE
  "libgs_rts.a"
)
