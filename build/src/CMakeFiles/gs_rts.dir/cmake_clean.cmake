file(REMOVE_RECURSE
  "CMakeFiles/gs_rts.dir/rts/node.cc.o"
  "CMakeFiles/gs_rts.dir/rts/node.cc.o.d"
  "CMakeFiles/gs_rts.dir/rts/punctuation.cc.o"
  "CMakeFiles/gs_rts.dir/rts/punctuation.cc.o.d"
  "CMakeFiles/gs_rts.dir/rts/registry.cc.o"
  "CMakeFiles/gs_rts.dir/rts/registry.cc.o.d"
  "CMakeFiles/gs_rts.dir/rts/ring.cc.o"
  "CMakeFiles/gs_rts.dir/rts/ring.cc.o.d"
  "CMakeFiles/gs_rts.dir/rts/tuple.cc.o"
  "CMakeFiles/gs_rts.dir/rts/tuple.cc.o.d"
  "libgs_rts.a"
  "libgs_rts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gs_rts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
