# Empty dependencies file for gs_rts.
# This may be replaced when dependencies are built.
