
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rts/node.cc" "src/CMakeFiles/gs_rts.dir/rts/node.cc.o" "gcc" "src/CMakeFiles/gs_rts.dir/rts/node.cc.o.d"
  "/root/repo/src/rts/punctuation.cc" "src/CMakeFiles/gs_rts.dir/rts/punctuation.cc.o" "gcc" "src/CMakeFiles/gs_rts.dir/rts/punctuation.cc.o.d"
  "/root/repo/src/rts/registry.cc" "src/CMakeFiles/gs_rts.dir/rts/registry.cc.o" "gcc" "src/CMakeFiles/gs_rts.dir/rts/registry.cc.o.d"
  "/root/repo/src/rts/ring.cc" "src/CMakeFiles/gs_rts.dir/rts/ring.cc.o" "gcc" "src/CMakeFiles/gs_rts.dir/rts/ring.cc.o.d"
  "/root/repo/src/rts/tuple.cc" "src/CMakeFiles/gs_rts.dir/rts/tuple.cc.o" "gcc" "src/CMakeFiles/gs_rts.dir/rts/tuple.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/gs_plan.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gs_udf.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gs_expr.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gs_gsql.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gs_bpf.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gs_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
