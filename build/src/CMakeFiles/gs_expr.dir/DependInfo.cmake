
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/expr/codegen.cc" "src/CMakeFiles/gs_expr.dir/expr/codegen.cc.o" "gcc" "src/CMakeFiles/gs_expr.dir/expr/codegen.cc.o.d"
  "/root/repo/src/expr/cost.cc" "src/CMakeFiles/gs_expr.dir/expr/cost.cc.o" "gcc" "src/CMakeFiles/gs_expr.dir/expr/cost.cc.o.d"
  "/root/repo/src/expr/fold.cc" "src/CMakeFiles/gs_expr.dir/expr/fold.cc.o" "gcc" "src/CMakeFiles/gs_expr.dir/expr/fold.cc.o.d"
  "/root/repo/src/expr/ir.cc" "src/CMakeFiles/gs_expr.dir/expr/ir.cc.o" "gcc" "src/CMakeFiles/gs_expr.dir/expr/ir.cc.o.d"
  "/root/repo/src/expr/type.cc" "src/CMakeFiles/gs_expr.dir/expr/type.cc.o" "gcc" "src/CMakeFiles/gs_expr.dir/expr/type.cc.o.d"
  "/root/repo/src/expr/typecheck.cc" "src/CMakeFiles/gs_expr.dir/expr/typecheck.cc.o" "gcc" "src/CMakeFiles/gs_expr.dir/expr/typecheck.cc.o.d"
  "/root/repo/src/expr/vm.cc" "src/CMakeFiles/gs_expr.dir/expr/vm.cc.o" "gcc" "src/CMakeFiles/gs_expr.dir/expr/vm.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/gs_gsql.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
