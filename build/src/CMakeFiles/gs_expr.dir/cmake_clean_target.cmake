file(REMOVE_RECURSE
  "libgs_expr.a"
)
