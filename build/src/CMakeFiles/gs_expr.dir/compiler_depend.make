# Empty compiler generated dependencies file for gs_expr.
# This may be replaced when dependencies are built.
