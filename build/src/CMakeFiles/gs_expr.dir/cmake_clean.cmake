file(REMOVE_RECURSE
  "CMakeFiles/gs_expr.dir/expr/codegen.cc.o"
  "CMakeFiles/gs_expr.dir/expr/codegen.cc.o.d"
  "CMakeFiles/gs_expr.dir/expr/cost.cc.o"
  "CMakeFiles/gs_expr.dir/expr/cost.cc.o.d"
  "CMakeFiles/gs_expr.dir/expr/fold.cc.o"
  "CMakeFiles/gs_expr.dir/expr/fold.cc.o.d"
  "CMakeFiles/gs_expr.dir/expr/ir.cc.o"
  "CMakeFiles/gs_expr.dir/expr/ir.cc.o.d"
  "CMakeFiles/gs_expr.dir/expr/type.cc.o"
  "CMakeFiles/gs_expr.dir/expr/type.cc.o.d"
  "CMakeFiles/gs_expr.dir/expr/typecheck.cc.o"
  "CMakeFiles/gs_expr.dir/expr/typecheck.cc.o.d"
  "CMakeFiles/gs_expr.dir/expr/vm.cc.o"
  "CMakeFiles/gs_expr.dir/expr/vm.cc.o.d"
  "libgs_expr.a"
  "libgs_expr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gs_expr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
