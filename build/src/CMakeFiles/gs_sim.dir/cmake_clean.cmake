file(REMOVE_RECURSE
  "CMakeFiles/gs_sim.dir/sim/capture_pipeline.cc.o"
  "CMakeFiles/gs_sim.dir/sim/capture_pipeline.cc.o.d"
  "CMakeFiles/gs_sim.dir/sim/disk.cc.o"
  "CMakeFiles/gs_sim.dir/sim/disk.cc.o.d"
  "CMakeFiles/gs_sim.dir/sim/event_sim.cc.o"
  "CMakeFiles/gs_sim.dir/sim/event_sim.cc.o.d"
  "CMakeFiles/gs_sim.dir/sim/host.cc.o"
  "CMakeFiles/gs_sim.dir/sim/host.cc.o.d"
  "CMakeFiles/gs_sim.dir/sim/nic.cc.o"
  "CMakeFiles/gs_sim.dir/sim/nic.cc.o.d"
  "libgs_sim.a"
  "libgs_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gs_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
