
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/capture_pipeline.cc" "src/CMakeFiles/gs_sim.dir/sim/capture_pipeline.cc.o" "gcc" "src/CMakeFiles/gs_sim.dir/sim/capture_pipeline.cc.o.d"
  "/root/repo/src/sim/disk.cc" "src/CMakeFiles/gs_sim.dir/sim/disk.cc.o" "gcc" "src/CMakeFiles/gs_sim.dir/sim/disk.cc.o.d"
  "/root/repo/src/sim/event_sim.cc" "src/CMakeFiles/gs_sim.dir/sim/event_sim.cc.o" "gcc" "src/CMakeFiles/gs_sim.dir/sim/event_sim.cc.o.d"
  "/root/repo/src/sim/host.cc" "src/CMakeFiles/gs_sim.dir/sim/host.cc.o" "gcc" "src/CMakeFiles/gs_sim.dir/sim/host.cc.o.d"
  "/root/repo/src/sim/nic.cc" "src/CMakeFiles/gs_sim.dir/sim/nic.cc.o" "gcc" "src/CMakeFiles/gs_sim.dir/sim/nic.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/gs_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gs_bpf.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gs_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
