# Empty compiler generated dependencies file for gs_plan.
# This may be replaced when dependencies are built.
