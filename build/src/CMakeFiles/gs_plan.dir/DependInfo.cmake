
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/plan/logical_plan.cc" "src/CMakeFiles/gs_plan.dir/plan/logical_plan.cc.o" "gcc" "src/CMakeFiles/gs_plan.dir/plan/logical_plan.cc.o.d"
  "/root/repo/src/plan/ordering.cc" "src/CMakeFiles/gs_plan.dir/plan/ordering.cc.o" "gcc" "src/CMakeFiles/gs_plan.dir/plan/ordering.cc.o.d"
  "/root/repo/src/plan/planner.cc" "src/CMakeFiles/gs_plan.dir/plan/planner.cc.o" "gcc" "src/CMakeFiles/gs_plan.dir/plan/planner.cc.o.d"
  "/root/repo/src/plan/splitter.cc" "src/CMakeFiles/gs_plan.dir/plan/splitter.cc.o" "gcc" "src/CMakeFiles/gs_plan.dir/plan/splitter.cc.o.d"
  "/root/repo/src/plan/window.cc" "src/CMakeFiles/gs_plan.dir/plan/window.cc.o" "gcc" "src/CMakeFiles/gs_plan.dir/plan/window.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/gs_expr.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gs_udf.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gs_bpf.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gs_gsql.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gs_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
