file(REMOVE_RECURSE
  "libgs_plan.a"
)
