file(REMOVE_RECURSE
  "CMakeFiles/gs_plan.dir/plan/logical_plan.cc.o"
  "CMakeFiles/gs_plan.dir/plan/logical_plan.cc.o.d"
  "CMakeFiles/gs_plan.dir/plan/ordering.cc.o"
  "CMakeFiles/gs_plan.dir/plan/ordering.cc.o.d"
  "CMakeFiles/gs_plan.dir/plan/planner.cc.o"
  "CMakeFiles/gs_plan.dir/plan/planner.cc.o.d"
  "CMakeFiles/gs_plan.dir/plan/splitter.cc.o"
  "CMakeFiles/gs_plan.dir/plan/splitter.cc.o.d"
  "CMakeFiles/gs_plan.dir/plan/window.cc.o"
  "CMakeFiles/gs_plan.dir/plan/window.cc.o.d"
  "libgs_plan.a"
  "libgs_plan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gs_plan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
