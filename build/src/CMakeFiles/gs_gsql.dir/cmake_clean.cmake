file(REMOVE_RECURSE
  "CMakeFiles/gs_gsql.dir/gsql/analyzer.cc.o"
  "CMakeFiles/gs_gsql.dir/gsql/analyzer.cc.o.d"
  "CMakeFiles/gs_gsql.dir/gsql/ast.cc.o"
  "CMakeFiles/gs_gsql.dir/gsql/ast.cc.o.d"
  "CMakeFiles/gs_gsql.dir/gsql/catalog.cc.o"
  "CMakeFiles/gs_gsql.dir/gsql/catalog.cc.o.d"
  "CMakeFiles/gs_gsql.dir/gsql/lexer.cc.o"
  "CMakeFiles/gs_gsql.dir/gsql/lexer.cc.o.d"
  "CMakeFiles/gs_gsql.dir/gsql/parser.cc.o"
  "CMakeFiles/gs_gsql.dir/gsql/parser.cc.o.d"
  "CMakeFiles/gs_gsql.dir/gsql/schema.cc.o"
  "CMakeFiles/gs_gsql.dir/gsql/schema.cc.o.d"
  "CMakeFiles/gs_gsql.dir/gsql/token.cc.o"
  "CMakeFiles/gs_gsql.dir/gsql/token.cc.o.d"
  "libgs_gsql.a"
  "libgs_gsql.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gs_gsql.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
