file(REMOVE_RECURSE
  "libgs_gsql.a"
)
