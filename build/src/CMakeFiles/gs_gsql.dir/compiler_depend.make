# Empty compiler generated dependencies file for gs_gsql.
# This may be replaced when dependencies are built.
