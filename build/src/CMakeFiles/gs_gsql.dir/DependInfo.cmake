
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gsql/analyzer.cc" "src/CMakeFiles/gs_gsql.dir/gsql/analyzer.cc.o" "gcc" "src/CMakeFiles/gs_gsql.dir/gsql/analyzer.cc.o.d"
  "/root/repo/src/gsql/ast.cc" "src/CMakeFiles/gs_gsql.dir/gsql/ast.cc.o" "gcc" "src/CMakeFiles/gs_gsql.dir/gsql/ast.cc.o.d"
  "/root/repo/src/gsql/catalog.cc" "src/CMakeFiles/gs_gsql.dir/gsql/catalog.cc.o" "gcc" "src/CMakeFiles/gs_gsql.dir/gsql/catalog.cc.o.d"
  "/root/repo/src/gsql/lexer.cc" "src/CMakeFiles/gs_gsql.dir/gsql/lexer.cc.o" "gcc" "src/CMakeFiles/gs_gsql.dir/gsql/lexer.cc.o.d"
  "/root/repo/src/gsql/parser.cc" "src/CMakeFiles/gs_gsql.dir/gsql/parser.cc.o" "gcc" "src/CMakeFiles/gs_gsql.dir/gsql/parser.cc.o.d"
  "/root/repo/src/gsql/schema.cc" "src/CMakeFiles/gs_gsql.dir/gsql/schema.cc.o" "gcc" "src/CMakeFiles/gs_gsql.dir/gsql/schema.cc.o.d"
  "/root/repo/src/gsql/token.cc" "src/CMakeFiles/gs_gsql.dir/gsql/token.cc.o" "gcc" "src/CMakeFiles/gs_gsql.dir/gsql/token.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/gs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
