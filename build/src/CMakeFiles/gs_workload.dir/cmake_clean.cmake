file(REMOVE_RECURSE
  "CMakeFiles/gs_workload.dir/workload/netflow_gen.cc.o"
  "CMakeFiles/gs_workload.dir/workload/netflow_gen.cc.o.d"
  "CMakeFiles/gs_workload.dir/workload/traffic_gen.cc.o"
  "CMakeFiles/gs_workload.dir/workload/traffic_gen.cc.o.d"
  "libgs_workload.a"
  "libgs_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gs_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
