
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/netflow_gen.cc" "src/CMakeFiles/gs_workload.dir/workload/netflow_gen.cc.o" "gcc" "src/CMakeFiles/gs_workload.dir/workload/netflow_gen.cc.o.d"
  "/root/repo/src/workload/traffic_gen.cc" "src/CMakeFiles/gs_workload.dir/workload/traffic_gen.cc.o" "gcc" "src/CMakeFiles/gs_workload.dir/workload/traffic_gen.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/gs_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
