# Empty compiler generated dependencies file for gs_workload.
# This may be replaced when dependencies are built.
