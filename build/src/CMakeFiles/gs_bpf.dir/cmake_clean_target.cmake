file(REMOVE_RECURSE
  "libgs_bpf.a"
)
