# Empty compiler generated dependencies file for gs_bpf.
# This may be replaced when dependencies are built.
