
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bpf/interpreter.cc" "src/CMakeFiles/gs_bpf.dir/bpf/interpreter.cc.o" "gcc" "src/CMakeFiles/gs_bpf.dir/bpf/interpreter.cc.o.d"
  "/root/repo/src/bpf/program.cc" "src/CMakeFiles/gs_bpf.dir/bpf/program.cc.o" "gcc" "src/CMakeFiles/gs_bpf.dir/bpf/program.cc.o.d"
  "/root/repo/src/bpf/verifier.cc" "src/CMakeFiles/gs_bpf.dir/bpf/verifier.cc.o" "gcc" "src/CMakeFiles/gs_bpf.dir/bpf/verifier.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/gs_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
