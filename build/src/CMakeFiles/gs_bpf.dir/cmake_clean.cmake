file(REMOVE_RECURSE
  "CMakeFiles/gs_bpf.dir/bpf/interpreter.cc.o"
  "CMakeFiles/gs_bpf.dir/bpf/interpreter.cc.o.d"
  "CMakeFiles/gs_bpf.dir/bpf/program.cc.o"
  "CMakeFiles/gs_bpf.dir/bpf/program.cc.o.d"
  "CMakeFiles/gs_bpf.dir/bpf/verifier.cc.o"
  "CMakeFiles/gs_bpf.dir/bpf/verifier.cc.o.d"
  "libgs_bpf.a"
  "libgs_bpf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gs_bpf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
