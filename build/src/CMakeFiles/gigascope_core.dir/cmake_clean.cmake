file(REMOVE_RECURSE
  "CMakeFiles/gigascope_core.dir/core/compiled_query.cc.o"
  "CMakeFiles/gigascope_core.dir/core/compiled_query.cc.o.d"
  "CMakeFiles/gigascope_core.dir/core/engine.cc.o"
  "CMakeFiles/gigascope_core.dir/core/engine.cc.o.d"
  "libgigascope_core.a"
  "libgigascope_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gigascope_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
