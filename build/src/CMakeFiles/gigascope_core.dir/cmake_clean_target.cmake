file(REMOVE_RECURSE
  "libgigascope_core.a"
)
