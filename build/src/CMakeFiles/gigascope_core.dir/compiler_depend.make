# Empty compiler generated dependencies file for gigascope_core.
# This may be replaced when dependencies are built.
