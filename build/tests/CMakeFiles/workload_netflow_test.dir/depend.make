# Empty dependencies file for workload_netflow_test.
# This may be replaced when dependencies are built.
