file(REMOVE_RECURSE
  "CMakeFiles/workload_netflow_test.dir/workload_netflow_test.cc.o"
  "CMakeFiles/workload_netflow_test.dir/workload_netflow_test.cc.o.d"
  "workload_netflow_test"
  "workload_netflow_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workload_netflow_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
