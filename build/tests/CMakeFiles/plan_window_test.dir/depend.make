# Empty dependencies file for plan_window_test.
# This may be replaced when dependencies are built.
