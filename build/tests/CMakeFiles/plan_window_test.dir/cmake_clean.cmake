file(REMOVE_RECURSE
  "CMakeFiles/plan_window_test.dir/plan_window_test.cc.o"
  "CMakeFiles/plan_window_test.dir/plan_window_test.cc.o.d"
  "plan_window_test"
  "plan_window_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plan_window_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
