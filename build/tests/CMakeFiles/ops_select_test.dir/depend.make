# Empty dependencies file for ops_select_test.
# This may be replaced when dependencies are built.
