file(REMOVE_RECURSE
  "CMakeFiles/ops_select_test.dir/ops_select_test.cc.o"
  "CMakeFiles/ops_select_test.dir/ops_select_test.cc.o.d"
  "ops_select_test"
  "ops_select_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ops_select_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
