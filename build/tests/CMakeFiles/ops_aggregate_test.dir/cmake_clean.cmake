file(REMOVE_RECURSE
  "CMakeFiles/ops_aggregate_test.dir/ops_aggregate_test.cc.o"
  "CMakeFiles/ops_aggregate_test.dir/ops_aggregate_test.cc.o.d"
  "ops_aggregate_test"
  "ops_aggregate_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ops_aggregate_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
