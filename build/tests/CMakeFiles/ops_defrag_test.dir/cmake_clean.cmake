file(REMOVE_RECURSE
  "CMakeFiles/ops_defrag_test.dir/ops_defrag_test.cc.o"
  "CMakeFiles/ops_defrag_test.dir/ops_defrag_test.cc.o.d"
  "ops_defrag_test"
  "ops_defrag_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ops_defrag_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
