# Empty dependencies file for ops_defrag_test.
# This may be replaced when dependencies are built.
