file(REMOVE_RECURSE
  "CMakeFiles/ops_join_test.dir/ops_join_test.cc.o"
  "CMakeFiles/ops_join_test.dir/ops_join_test.cc.o.d"
  "ops_join_test"
  "ops_join_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ops_join_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
