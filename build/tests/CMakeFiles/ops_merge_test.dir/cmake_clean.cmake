file(REMOVE_RECURSE
  "CMakeFiles/ops_merge_test.dir/ops_merge_test.cc.o"
  "CMakeFiles/ops_merge_test.dir/ops_merge_test.cc.o.d"
  "ops_merge_test"
  "ops_merge_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ops_merge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
