file(REMOVE_RECURSE
  "CMakeFiles/udf_registry_test.dir/udf_registry_test.cc.o"
  "CMakeFiles/udf_registry_test.dir/udf_registry_test.cc.o.d"
  "udf_registry_test"
  "udf_registry_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/udf_registry_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
