file(REMOVE_RECURSE
  "CMakeFiles/plan_ordering_test.dir/plan_ordering_test.cc.o"
  "CMakeFiles/plan_ordering_test.dir/plan_ordering_test.cc.o.d"
  "plan_ordering_test"
  "plan_ordering_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plan_ordering_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
