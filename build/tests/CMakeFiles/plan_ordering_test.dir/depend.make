# Empty dependencies file for plan_ordering_test.
# This may be replaced when dependencies are built.
