# Empty dependencies file for gsql_lexer_test.
# This may be replaced when dependencies are built.
