file(REMOVE_RECURSE
  "CMakeFiles/gsql_lexer_test.dir/gsql_lexer_test.cc.o"
  "CMakeFiles/gsql_lexer_test.dir/gsql_lexer_test.cc.o.d"
  "gsql_lexer_test"
  "gsql_lexer_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gsql_lexer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
