# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for ops_tcp_session_test.
