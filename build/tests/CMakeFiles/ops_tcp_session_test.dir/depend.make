# Empty dependencies file for ops_tcp_session_test.
# This may be replaced when dependencies are built.
