file(REMOVE_RECURSE
  "CMakeFiles/ops_tcp_session_test.dir/ops_tcp_session_test.cc.o"
  "CMakeFiles/ops_tcp_session_test.dir/ops_tcp_session_test.cc.o.d"
  "ops_tcp_session_test"
  "ops_tcp_session_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ops_tcp_session_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
