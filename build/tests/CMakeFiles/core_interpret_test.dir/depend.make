# Empty dependencies file for core_interpret_test.
# This may be replaced when dependencies are built.
