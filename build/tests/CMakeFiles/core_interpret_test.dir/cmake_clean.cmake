file(REMOVE_RECURSE
  "CMakeFiles/core_interpret_test.dir/core_interpret_test.cc.o"
  "CMakeFiles/core_interpret_test.dir/core_interpret_test.cc.o.d"
  "core_interpret_test"
  "core_interpret_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_interpret_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
