file(REMOVE_RECURSE
  "CMakeFiles/gsql_parser_test.dir/gsql_parser_test.cc.o"
  "CMakeFiles/gsql_parser_test.dir/gsql_parser_test.cc.o.d"
  "gsql_parser_test"
  "gsql_parser_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gsql_parser_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
