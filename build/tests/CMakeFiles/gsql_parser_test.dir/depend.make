# Empty dependencies file for gsql_parser_test.
# This may be replaced when dependencies are built.
