# Empty dependencies file for udf_regex_test.
# This may be replaced when dependencies are built.
