file(REMOVE_RECURSE
  "CMakeFiles/udf_regex_test.dir/udf_regex_test.cc.o"
  "CMakeFiles/udf_regex_test.dir/udf_regex_test.cc.o.d"
  "udf_regex_test"
  "udf_regex_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/udf_regex_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
