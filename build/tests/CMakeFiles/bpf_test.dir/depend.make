# Empty dependencies file for bpf_test.
# This may be replaced when dependencies are built.
