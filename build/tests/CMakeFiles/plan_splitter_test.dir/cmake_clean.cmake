file(REMOVE_RECURSE
  "CMakeFiles/plan_splitter_test.dir/plan_splitter_test.cc.o"
  "CMakeFiles/plan_splitter_test.dir/plan_splitter_test.cc.o.d"
  "plan_splitter_test"
  "plan_splitter_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plan_splitter_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
