# Empty dependencies file for plan_splitter_test.
# This may be replaced when dependencies are built.
