# Empty compiler generated dependencies file for udf_lpm_test.
# This may be replaced when dependencies are built.
