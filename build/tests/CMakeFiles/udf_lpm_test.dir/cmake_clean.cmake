file(REMOVE_RECURSE
  "CMakeFiles/udf_lpm_test.dir/udf_lpm_test.cc.o"
  "CMakeFiles/udf_lpm_test.dir/udf_lpm_test.cc.o.d"
  "udf_lpm_test"
  "udf_lpm_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/udf_lpm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
