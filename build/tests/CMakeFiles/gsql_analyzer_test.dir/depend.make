# Empty dependencies file for gsql_analyzer_test.
# This may be replaced when dependencies are built.
