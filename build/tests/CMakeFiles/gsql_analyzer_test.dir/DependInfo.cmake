
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/gsql_analyzer_test.cc" "tests/CMakeFiles/gsql_analyzer_test.dir/gsql_analyzer_test.cc.o" "gcc" "tests/CMakeFiles/gsql_analyzer_test.dir/gsql_analyzer_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/gigascope_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gs_ops.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gs_rts.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gs_plan.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gs_udf.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gs_expr.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gs_gsql.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gs_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gs_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gs_bpf.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gs_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
