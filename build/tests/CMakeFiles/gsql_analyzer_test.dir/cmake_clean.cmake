file(REMOVE_RECURSE
  "CMakeFiles/gsql_analyzer_test.dir/gsql_analyzer_test.cc.o"
  "CMakeFiles/gsql_analyzer_test.dir/gsql_analyzer_test.cc.o.d"
  "gsql_analyzer_test"
  "gsql_analyzer_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gsql_analyzer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
