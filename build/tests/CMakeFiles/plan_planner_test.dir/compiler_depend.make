# Empty compiler generated dependencies file for plan_planner_test.
# This may be replaced when dependencies are built.
