file(REMOVE_RECURSE
  "CMakeFiles/plan_planner_test.dir/plan_planner_test.cc.o"
  "CMakeFiles/plan_planner_test.dir/plan_planner_test.cc.o.d"
  "plan_planner_test"
  "plan_planner_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plan_planner_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
