file(REMOVE_RECURSE
  "../bench/e9_join_window"
  "../bench/e9_join_window.pdb"
  "CMakeFiles/e9_join_window.dir/e9_join_window.cc.o"
  "CMakeFiles/e9_join_window.dir/e9_join_window.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e9_join_window.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
