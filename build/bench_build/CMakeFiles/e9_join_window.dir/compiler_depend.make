# Empty compiler generated dependencies file for e9_join_window.
# This may be replaced when dependencies are built.
