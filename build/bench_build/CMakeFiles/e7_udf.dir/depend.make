# Empty dependencies file for e7_udf.
# This may be replaced when dependencies are built.
