file(REMOVE_RECURSE
  "../bench/e7_udf"
  "../bench/e7_udf.pdb"
  "CMakeFiles/e7_udf.dir/e7_udf.cc.o"
  "CMakeFiles/e7_udf.dir/e7_udf.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e7_udf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
