file(REMOVE_RECURSE
  "../bench/e4_heartbeats"
  "../bench/e4_heartbeats.pdb"
  "CMakeFiles/e4_heartbeats.dir/e4_heartbeats.cc.o"
  "CMakeFiles/e4_heartbeats.dir/e4_heartbeats.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e4_heartbeats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
