# Empty compiler generated dependencies file for e4_heartbeats.
# This may be replaced when dependencies are built.
