# Empty compiler generated dependencies file for e1_capture_architectures.
# This may be replaced when dependencies are built.
