file(REMOVE_RECURSE
  "../bench/e1_capture_architectures"
  "../bench/e1_capture_architectures.pdb"
  "CMakeFiles/e1_capture_architectures.dir/e1_capture_architectures.cc.o"
  "CMakeFiles/e1_capture_architectures.dir/e1_capture_architectures.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e1_capture_architectures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
