# Empty dependencies file for micro_bpf.
# This may be replaced when dependencies are built.
