file(REMOVE_RECURSE
  "../bench/micro_bpf"
  "../bench/micro_bpf.pdb"
  "CMakeFiles/micro_bpf.dir/micro_bpf.cc.o"
  "CMakeFiles/micro_bpf.dir/micro_bpf.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_bpf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
