file(REMOVE_RECURSE
  "../bench/e5_agg_split"
  "../bench/e5_agg_split.pdb"
  "CMakeFiles/e5_agg_split.dir/e5_agg_split.cc.o"
  "CMakeFiles/e5_agg_split.dir/e5_agg_split.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e5_agg_split.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
