# Empty compiler generated dependencies file for e5_agg_split.
# This may be replaced when dependencies are built.
