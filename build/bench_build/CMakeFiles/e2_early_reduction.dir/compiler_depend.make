# Empty compiler generated dependencies file for e2_early_reduction.
# This may be replaced when dependencies are built.
