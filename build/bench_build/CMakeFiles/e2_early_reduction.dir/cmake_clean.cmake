file(REMOVE_RECURSE
  "../bench/e2_early_reduction"
  "../bench/e2_early_reduction.pdb"
  "CMakeFiles/e2_early_reduction.dir/e2_early_reduction.cc.o"
  "CMakeFiles/e2_early_reduction.dir/e2_early_reduction.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e2_early_reduction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
