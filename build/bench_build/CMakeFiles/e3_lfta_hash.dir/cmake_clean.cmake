file(REMOVE_RECURSE
  "../bench/e3_lfta_hash"
  "../bench/e3_lfta_hash.pdb"
  "CMakeFiles/e3_lfta_hash.dir/e3_lfta_hash.cc.o"
  "CMakeFiles/e3_lfta_hash.dir/e3_lfta_hash.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e3_lfta_hash.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
