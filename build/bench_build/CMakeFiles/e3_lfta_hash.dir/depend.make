# Empty dependencies file for e3_lfta_hash.
# This may be replaced when dependencies are built.
