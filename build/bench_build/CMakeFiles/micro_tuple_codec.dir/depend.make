# Empty dependencies file for micro_tuple_codec.
# This may be replaced when dependencies are built.
