file(REMOVE_RECURSE
  "../bench/micro_tuple_codec"
  "../bench/micro_tuple_codec.pdb"
  "CMakeFiles/micro_tuple_codec.dir/micro_tuple_codec.cc.o"
  "CMakeFiles/micro_tuple_codec.dir/micro_tuple_codec.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_tuple_codec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
