file(REMOVE_RECURSE
  "../bench/micro_packet_parse"
  "../bench/micro_packet_parse.pdb"
  "CMakeFiles/micro_packet_parse.dir/micro_packet_parse.cc.o"
  "CMakeFiles/micro_packet_parse.dir/micro_packet_parse.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_packet_parse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
