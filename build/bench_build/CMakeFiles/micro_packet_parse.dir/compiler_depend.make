# Empty compiler generated dependencies file for micro_packet_parse.
# This may be replaced when dependencies are built.
