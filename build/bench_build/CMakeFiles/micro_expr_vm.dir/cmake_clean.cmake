file(REMOVE_RECURSE
  "../bench/micro_expr_vm"
  "../bench/micro_expr_vm.pdb"
  "CMakeFiles/micro_expr_vm.dir/micro_expr_vm.cc.o"
  "CMakeFiles/micro_expr_vm.dir/micro_expr_vm.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_expr_vm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
