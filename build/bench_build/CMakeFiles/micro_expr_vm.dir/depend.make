# Empty dependencies file for micro_expr_vm.
# This may be replaced when dependencies are built.
