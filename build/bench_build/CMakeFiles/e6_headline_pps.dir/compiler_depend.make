# Empty compiler generated dependencies file for e6_headline_pps.
# This may be replaced when dependencies are built.
