file(REMOVE_RECURSE
  "../bench/e6_headline_pps"
  "../bench/e6_headline_pps.pdb"
  "CMakeFiles/e6_headline_pps.dir/e6_headline_pps.cc.o"
  "CMakeFiles/e6_headline_pps.dir/e6_headline_pps.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e6_headline_pps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
