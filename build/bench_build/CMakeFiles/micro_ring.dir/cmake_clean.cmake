file(REMOVE_RECURSE
  "../bench/micro_ring"
  "../bench/micro_ring.pdb"
  "CMakeFiles/micro_ring.dir/micro_ring.cc.o"
  "CMakeFiles/micro_ring.dir/micro_ring.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_ring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
