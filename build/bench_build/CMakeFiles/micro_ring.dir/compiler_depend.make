# Empty compiler generated dependencies file for micro_ring.
# This may be replaced when dependencies are built.
