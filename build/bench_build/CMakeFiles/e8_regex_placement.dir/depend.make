# Empty dependencies file for e8_regex_placement.
# This may be replaced when dependencies are built.
