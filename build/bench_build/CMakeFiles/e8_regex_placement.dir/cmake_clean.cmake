file(REMOVE_RECURSE
  "../bench/e8_regex_placement"
  "../bench/e8_regex_placement.pdb"
  "CMakeFiles/e8_regex_placement.dir/e8_regex_placement.cc.o"
  "CMakeFiles/e8_regex_placement.dir/e8_regex_placement.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e8_regex_placement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
