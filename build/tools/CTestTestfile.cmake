# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(gsqlc_smoke "sh" "-c" "echo 'SELECT destIP, time FROM eth0.PKT WHERE ipVersion = 4 AND protocol = 6 AND destPort = 80' | /root/repo/build/tools/gsqlc")
set_tests_properties(gsqlc_smoke PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;9;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(gsrun_usage "/root/repo/build/tools/gsrun")
set_tests_properties(gsrun_usage PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;11;add_test;/root/repo/tools/CMakeLists.txt;0;")
