# Empty compiler generated dependencies file for gsqlc.
# This may be replaced when dependencies are built.
