file(REMOVE_RECURSE
  "CMakeFiles/gsqlc.dir/gsqlc.cc.o"
  "CMakeFiles/gsqlc.dir/gsqlc.cc.o.d"
  "gsqlc"
  "gsqlc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gsqlc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
