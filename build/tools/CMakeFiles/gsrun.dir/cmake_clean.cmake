file(REMOVE_RECURSE
  "CMakeFiles/gsrun.dir/gsrun.cc.o"
  "CMakeFiles/gsrun.dir/gsrun.cc.o.d"
  "gsrun"
  "gsrun.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gsrun.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
