# Empty compiler generated dependencies file for gsrun.
# This may be replaced when dependencies are built.
