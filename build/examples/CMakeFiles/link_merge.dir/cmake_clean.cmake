file(REMOVE_RECURSE
  "CMakeFiles/link_merge.dir/link_merge.cpp.o"
  "CMakeFiles/link_merge.dir/link_merge.cpp.o.d"
  "link_merge"
  "link_merge.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/link_merge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
