# Empty dependencies file for link_merge.
# This may be replaced when dependencies are built.
