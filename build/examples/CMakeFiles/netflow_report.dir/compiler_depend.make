# Empty compiler generated dependencies file for netflow_report.
# This may be replaced when dependencies are built.
