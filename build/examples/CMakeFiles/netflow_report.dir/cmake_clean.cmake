file(REMOVE_RECURSE
  "CMakeFiles/netflow_report.dir/netflow_report.cpp.o"
  "CMakeFiles/netflow_report.dir/netflow_report.cpp.o.d"
  "netflow_report"
  "netflow_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netflow_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
