file(REMOVE_RECURSE
  "CMakeFiles/intrusion_sketch.dir/intrusion_sketch.cpp.o"
  "CMakeFiles/intrusion_sketch.dir/intrusion_sketch.cpp.o.d"
  "intrusion_sketch"
  "intrusion_sketch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/intrusion_sketch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
