# Empty compiler generated dependencies file for intrusion_sketch.
# This may be replaced when dependencies are built.
