# Empty dependencies file for flow_report.
# This may be replaced when dependencies are built.
