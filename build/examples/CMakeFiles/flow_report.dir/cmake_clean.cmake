file(REMOVE_RECURSE
  "CMakeFiles/flow_report.dir/flow_report.cpp.o"
  "CMakeFiles/flow_report.dir/flow_report.cpp.o.d"
  "flow_report"
  "flow_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flow_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
