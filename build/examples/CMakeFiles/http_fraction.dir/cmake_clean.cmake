file(REMOVE_RECURSE
  "CMakeFiles/http_fraction.dir/http_fraction.cpp.o"
  "CMakeFiles/http_fraction.dir/http_fraction.cpp.o.d"
  "http_fraction"
  "http_fraction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/http_fraction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
