# Empty compiler generated dependencies file for http_fraction.
# This may be replaced when dependencies are built.
