#include "rts/registry.h"

namespace gigascope::rts {

Status StreamRegistry::DeclareStream(const gsql::StreamSchema& schema) {
  GS_RETURN_IF_ERROR(schema.Validate());
  auto it = streams_.find(schema.name());
  if (it != streams_.end()) {
    // Re-declaration keeps existing subscribers (query recompilation).
    it->second.schema = schema;
    return Status::Ok();
  }
  StreamEntry entry;
  entry.schema = schema;
  streams_.emplace(schema.name(), std::move(entry));
  return Status::Ok();
}

bool StreamRegistry::HasStream(const std::string& name) const {
  return streams_.count(name) > 0;
}

Result<gsql::StreamSchema> StreamRegistry::GetSchema(
    const std::string& name) const {
  auto it = streams_.find(name);
  if (it == streams_.end()) {
    return Status::NotFound("no stream named '" + name + "' in the registry");
  }
  return it->second.schema;
}

Result<Subscription> StreamRegistry::Subscribe(const std::string& name,
                                               size_t capacity, bool local) {
  auto it = streams_.find(name);
  if (it == streams_.end()) {
    return Status::NotFound("cannot subscribe: no stream named '" + name +
                            "'");
  }
  auto channel = std::make_shared<RingChannel>(
      capacity, local ? ShmRingOptions{} : channel_options_);
  it->second.subscribers.push_back(channel);
  return channel;
}

size_t StreamRegistry::Publish(const std::string& name,
                               const StreamMessage& message) {
  auto it = streams_.find(name);
  if (it == streams_.end()) return 0;
  size_t accepted = 0;
  for (const Subscription& subscriber : it->second.subscribers) {
    if (subscriber->PushOrDrop(message)) ++accepted;
  }
  return accepted;
}

size_t StreamRegistry::PublishBatch(const std::string& name,
                                    StreamBatch&& batch) {
  auto it = streams_.find(name);
  if (it == streams_.end() || batch.items.empty()) return 0;
  auto& subscribers = it->second.subscribers;
  if (subscribers.empty()) return 0;
  size_t accepted = 0;
  for (size_t s = 0; s + 1 < subscribers.size(); ++s) {
    StreamBatch copy = batch;
    if (subscribers[s]->PushOrDrop(std::move(copy))) ++accepted;
  }
  if (subscribers.back()->PushOrDrop(std::move(batch))) ++accepted;
  return accepted;
}

size_t StreamRegistry::FlushParkedPunctuations() {
  size_t flushed = 0;
  for (auto& [name, entry] : streams_) {
    for (const Subscription& subscriber : entry.subscribers) {
      if (subscriber->has_parked() && subscriber->FlushParked()) ++flushed;
    }
  }
  return flushed;
}

size_t StreamRegistry::FlushParkedPunctuations(const std::string& name) {
  auto it = streams_.find(name);
  if (it == streams_.end()) return 0;
  size_t flushed = 0;
  for (const Subscription& subscriber : it->second.subscribers) {
    if (subscriber->has_parked() && subscriber->FlushParked()) ++flushed;
  }
  return flushed;
}

std::vector<Subscription> StreamRegistry::Subscribers(
    const std::string& name) const {
  auto it = streams_.find(name);
  if (it == streams_.end()) return {};
  return it->second.subscribers;
}

std::vector<std::string> StreamRegistry::StreamNames() const {
  std::vector<std::string> names;
  names.reserve(streams_.size());
  for (const auto& [name, entry] : streams_) names.push_back(name);
  return names;
}

uint64_t StreamRegistry::TotalDrops(const std::string& name) const {
  auto it = streams_.find(name);
  if (it == streams_.end()) return 0;
  uint64_t drops = 0;
  for (const Subscription& subscriber : it->second.subscribers) {
    drops += subscriber->dropped();
  }
  return drops;
}

uint64_t StreamRegistry::TotalDropsAll() const {
  uint64_t drops = 0;
  for (const auto& [name, entry] : streams_) {
    for (const Subscription& subscriber : entry.subscribers) {
      drops += subscriber->dropped();
    }
  }
  return drops;
}

uint64_t StreamRegistry::TotalTornAll() const {
  uint64_t torn = 0;
  for (const auto& [name, entry] : streams_) {
    for (const Subscription& subscriber : entry.subscribers) {
      torn += subscriber->torn();
    }
  }
  return torn;
}

uint64_t StreamRegistry::TotalResyncDroppedAll() const {
  uint64_t dropped = 0;
  for (const auto& [name, entry] : streams_) {
    for (const Subscription& subscriber : entry.subscribers) {
      dropped += subscriber->resync_dropped();
    }
  }
  return dropped;
}

uint64_t StreamRegistry::TotalOversizeDroppedAll() const {
  uint64_t dropped = 0;
  for (const auto& [name, entry] : streams_) {
    for (const Subscription& subscriber : entry.subscribers) {
      dropped += subscriber->oversize_dropped();
    }
  }
  return dropped;
}

double StreamRegistry::MaxOccupancyFraction() const {
  double max_fraction = 0;
  for (const auto& [name, entry] : streams_) {
    for (const Subscription& subscriber : entry.subscribers) {
      if (subscriber->capacity() == 0) continue;
      double fraction = static_cast<double>(subscriber->size()) /
                        static_cast<double>(subscriber->capacity());
      if (fraction > max_fraction) max_fraction = fraction;
    }
  }
  return max_fraction;
}

}  // namespace gigascope::rts
