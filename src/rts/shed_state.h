#ifndef GIGASCOPE_RTS_SHED_STATE_H_
#define GIGASCOPE_RTS_SHED_STATE_H_

#include <atomic>
#include <cstdint>

namespace gigascope::rts {

/// Shared actuator state of the overload controller (core/shedding.h).
///
/// The controller (running on the inject thread) writes the knobs; the
/// inject path and LFTA-stage operators read them per tuple. All fields
/// are relaxed atomics: a reader acting on a knob one tuple late is
/// harmless — the ladder only changes fidelity, never correctness — and
/// the hot path must not pay for ordering it does not need. Lives in the
/// rts layer so gs_ops can read it without a link dependency on core.
struct ShedState {
  /// Current rung of the shedding ladder (0 = exact processing).
  std::atomic<uint32_t> level{0};

  /// L1: deterministic 1-in-k source sampling. 1 = keep every packet.
  /// LFTA aggregates scale COUNT/SUM by the k in force at fold time
  /// (Horvitz-Thompson), so estimates stay unbiased while sampling holds.
  std::atomic<uint32_t> sample_k{1};

  /// L2: LFTA epoch coarsening — drain the pre-aggregation table only
  /// every this many ordered-key advances (wider windows, fewer flushes).
  /// 1 = drain on every advance (exact behaviour).
  std::atomic<uint32_t> epoch_coarsen{1};

  /// L3: LFTA table occupancy cap, in percent of slots; beyond it the
  /// coldest groups are force-evicted as partials. 100 = uncapped.
  std::atomic<uint32_t> table_cap_pct{100};

  uint32_t Level() const { return level.load(std::memory_order_relaxed); }
  uint32_t SampleK() const {
    return sample_k.load(std::memory_order_relaxed);
  }
  uint32_t EpochCoarsen() const {
    return epoch_coarsen.load(std::memory_order_relaxed);
  }
  uint32_t TableCapPct() const {
    return table_cap_pct.load(std::memory_order_relaxed);
  }
};

}  // namespace gigascope::rts

#endif  // GIGASCOPE_RTS_SHED_STATE_H_
