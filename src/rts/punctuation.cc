#include "rts/punctuation.h"

#include <algorithm>

#include "common/logging.h"

namespace gigascope::rts {

using expr::Value;
using gsql::DataType;

std::optional<Value> Punctuation::BoundFor(size_t field) const {
  for (const auto& [bound_field, value] : bounds) {
    if (bound_field == field) return value;
  }
  return std::nullopt;
}

void Punctuation::CombineMax(const Punctuation& other) {
  for (const auto& [field, value] : other.bounds) {
    bool found = false;
    for (auto& [existing_field, existing] : bounds) {
      if (existing_field == field) {
        if (existing.Compare(value) < 0) existing = value;
        found = true;
        break;
      }
    }
    if (!found) bounds.emplace_back(field, value);
  }
  std::sort(bounds.begin(), bounds.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
}

namespace {

uint64_t ValueToRaw(const Value& value) {
  switch (value.type()) {
    case DataType::kInt:
      return static_cast<uint64_t>(value.int_value());
    case DataType::kUint:
      return value.uint_value();
    case DataType::kIp:
      return value.ip_value();
    case DataType::kFloat: {
      uint64_t bits;
      double d = value.float_value();
      std::memcpy(&bits, &d, sizeof(bits));
      return bits;
    }
    default:
      GS_CHECK(false && "punctuation bound must be numeric");
      return 0;
  }
}

Value RawToValue(uint64_t raw, DataType type) {
  switch (type) {
    case DataType::kInt:
      return Value::Int(static_cast<int64_t>(raw));
    case DataType::kUint:
      return Value::Uint(raw);
    case DataType::kIp:
      return Value::Ip(static_cast<uint32_t>(raw));
    case DataType::kFloat: {
      double d;
      std::memcpy(&d, &raw, sizeof(d));
      return Value::Float(d);
    }
    default:
      return Value::Uint(raw);
  }
}

}  // namespace

void EncodePunctuation(const Punctuation& punctuation,
                       const gsql::StreamSchema& schema, ByteBuffer* out) {
  ByteWriter writer(out);
  writer.PutU32Le(static_cast<uint32_t>(punctuation.bounds.size()));
  for (const auto& [field, value] : punctuation.bounds) {
    GS_CHECK(field < schema.num_fields());
    GS_CHECK(value.type() == schema.field(field).type);
    writer.PutU32Le(static_cast<uint32_t>(field));
    writer.PutU64Le(ValueToRaw(value));
  }
}

Result<Punctuation> DecodePunctuation(ByteSpan bytes,
                                      const gsql::StreamSchema& schema) {
  ByteReader reader(bytes);
  uint32_t count;
  if (!reader.GetU32Le(&count)) {
    return Status::ParseError("truncated punctuation header");
  }
  Punctuation punctuation;
  for (uint32_t i = 0; i < count; ++i) {
    uint32_t field;
    uint64_t raw;
    if (!reader.GetU32Le(&field) || !reader.GetU64Le(&raw)) {
      return Status::ParseError("truncated punctuation bound");
    }
    if (field >= schema.num_fields()) {
      return Status::ParseError("punctuation bound field out of range");
    }
    punctuation.bounds.emplace_back(
        field, RawToValue(raw, schema.field(field).type));
  }
  return punctuation;
}

StreamMessage MakePunctuationMessage(const Punctuation& punctuation,
                                     const gsql::StreamSchema& schema) {
  StreamMessage message;
  message.kind = StreamMessage::Kind::kPunctuation;
  EncodePunctuation(punctuation, schema, &message.payload);
  return message;
}

}  // namespace gigascope::rts
