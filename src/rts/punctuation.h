#ifndef GIGASCOPE_RTS_PUNCTUATION_H_
#define GIGASCOPE_RTS_PUNCTUATION_H_

#include <optional>
#include <utility>
#include <vector>

#include "rts/tuple.h"

namespace gigascope::rts {

/// An ordering-update token (§3 "Unblocking Operators", after Tucker &
/// Maier's punctuation): a set of lower bounds on ordered attributes of the
/// stream. All future tuples on the stream have attribute values >= the
/// bound. Merge and join use punctuations to advance their windows when a
/// slow stream provides no tuples.
struct Punctuation {
  /// (field index, lower bound). Sorted by field index.
  std::vector<std::pair<size_t, expr::Value>> bounds;

  /// Bound for `field`, if present.
  std::optional<expr::Value> BoundFor(size_t field) const;

  /// Merges another punctuation in, keeping the larger (later) bound per
  /// field.
  void CombineMax(const Punctuation& other);
};

/// Serializes a punctuation: u32 count, then (u32 field, u64 raw bits) per
/// bound. Only numeric ordered attributes can carry bounds.
void EncodePunctuation(const Punctuation& punctuation,
                       const gsql::StreamSchema& schema, ByteBuffer* out);

Result<Punctuation> DecodePunctuation(ByteSpan bytes,
                                      const gsql::StreamSchema& schema);

/// Wraps a punctuation into a channel message.
StreamMessage MakePunctuationMessage(const Punctuation& punctuation,
                                     const gsql::StreamSchema& schema);

}  // namespace gigascope::rts

#endif  // GIGASCOPE_RTS_PUNCTUATION_H_
