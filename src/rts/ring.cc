#include "rts/ring.h"

#include <algorithm>

#include "common/logging.h"

namespace gigascope::rts {

RingChannel::RingChannel(size_t capacity) : capacity_(capacity) {
  GS_CHECK(capacity > 0);
}

bool RingChannel::TryPush(StreamMessage message) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (queue_.size() >= capacity_) return false;
  queue_.push_back(std::move(message));
  ++pushed_;
  high_water_ = std::max(high_water_, queue_.size());
  return true;
}

bool RingChannel::PushOrDrop(StreamMessage message) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (queue_.size() >= capacity_) {
    ++dropped_;
    return false;
  }
  queue_.push_back(std::move(message));
  ++pushed_;
  high_water_ = std::max(high_water_, queue_.size());
  return true;
}

bool RingChannel::TryPop(StreamMessage* out) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (queue_.empty()) return false;
  *out = std::move(queue_.front());
  queue_.pop_front();
  ++popped_;
  return true;
}

size_t RingChannel::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

uint64_t RingChannel::pushed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return pushed_;
}

uint64_t RingChannel::popped() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return popped_;
}

uint64_t RingChannel::dropped() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return dropped_;
}

size_t RingChannel::high_water_mark() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return high_water_;
}

}  // namespace gigascope::rts
