#include "rts/ring.h"

#include "common/logging.h"

namespace gigascope::rts {

void ConsumerWaker::Park(std::chrono::microseconds timeout) {
  std::unique_lock<std::mutex> lock(mutex_);
  if (signal_.exchange(false, std::memory_order_acq_rel)) return;
  parked_.store(true, std::memory_order_release);
  cv_.wait_for(lock, timeout, [this] {
    return signal_.load(std::memory_order_acquire);
  });
  parked_.store(false, std::memory_order_relaxed);
  signal_.store(false, std::memory_order_relaxed);
}

void ConsumerWaker::Wake() {
  signal_.store(true, std::memory_order_release);
  if (parked_.load(std::memory_order_acquire)) {
    // Lock/unlock pairs the notify with the consumer's predicate check so
    // the wait cannot sleep through it; only taken while a consumer parks.
    { std::lock_guard<std::mutex> lock(mutex_); }
    cv_.notify_one();
  }
}

namespace {

size_t NextPowerOfTwo(size_t n) {
  size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

RingChannel::RingChannel(size_t capacity)
    : capacity_(capacity),
      mask_(NextPowerOfTwo(capacity == 0 ? 1 : capacity) - 1),
      slots_(mask_ + 1) {
  GS_CHECK(capacity > 0);
}

bool RingChannel::TryPush(StreamMessage message) {
  const uint64_t head = head_.load(std::memory_order_relaxed);
  if (head - cached_tail_ >= capacity_) {
    // Refresh the cached tail; acquire pairs with the consumer's release
    // store so the slot we are about to overwrite is truly vacated.
    cached_tail_ = tail_.load(std::memory_order_acquire);
    if (head - cached_tail_ >= capacity_) return false;
  }
  slots_[head & mask_] = std::move(message);
  head_.store(head + 1, std::memory_order_release);
  ++pushed_;
  const size_t occupancy = static_cast<size_t>(
      head + 1 - tail_.load(std::memory_order_relaxed));
  high_water_.Max(occupancy);
  occupancy_.Record(occupancy);
  if (ConsumerWaker* waker = waker_.get()) waker->Wake();
  return true;
}

bool RingChannel::PushOrDrop(StreamMessage message) {
  if (TryPush(std::move(message))) return true;
  ++dropped_;
  return false;
}

bool RingChannel::TryPop(StreamMessage* out) {
  const uint64_t tail = tail_.load(std::memory_order_relaxed);
  if (tail == cached_head_) {
    // Acquire pairs with the producer's release store: the slot contents
    // written before head_ advanced are visible here.
    cached_head_ = head_.load(std::memory_order_acquire);
    if (tail == cached_head_) return false;
  }
  *out = std::move(slots_[tail & mask_]);
  tail_.store(tail + 1, std::memory_order_release);
  ++popped_;
  return true;
}

size_t RingChannel::size() const {
  // Load tail first: head can only grow afterwards, so the difference is
  // never negative.
  const uint64_t tail = tail_.load(std::memory_order_acquire);
  const uint64_t head = head_.load(std::memory_order_acquire);
  return static_cast<size_t>(head - tail);
}

}  // namespace gigascope::rts
