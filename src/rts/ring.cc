#include "rts/ring.h"

#include "common/logging.h"

namespace gigascope::rts {

void ConsumerWaker::Park(std::chrono::microseconds timeout) {
  std::unique_lock<std::mutex> lock(mutex_);
  if (signal_.exchange(false, std::memory_order_acq_rel)) return;
  parked_.store(true, std::memory_order_release);
  cv_.wait_for(lock, timeout, [this] {
    return signal_.load(std::memory_order_acquire);
  });
  parked_.store(false, std::memory_order_relaxed);
  signal_.store(false, std::memory_order_relaxed);
}

void ConsumerWaker::Wake() {
  signal_.store(true, std::memory_order_release);
  if (parked_.load(std::memory_order_acquire)) {
    // Lock/unlock pairs the notify with the consumer's predicate check so
    // the wait cannot sleep through it; only taken while a consumer parks.
    { std::lock_guard<std::mutex> lock(mutex_); }
    cv_.notify_one();
  }
}

namespace {

size_t NextPowerOfTwo(size_t n) {
  size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

RingChannel::RingChannel(size_t capacity)
    : capacity_(capacity),
      mask_(NextPowerOfTwo(capacity == 0 ? 1 : capacity) - 1),
      slots_(mask_ + 1) {
  GS_CHECK(capacity > 0);
}

bool RingChannel::TryPush(StreamBatch&& batch) {
  if (batch.items.empty()) return true;  // nothing to enqueue
  const uint64_t head = head_.load(std::memory_order_relaxed);
  if (head - cached_tail_ >= capacity_) {
    // Refresh the cached tail; acquire pairs with the consumer's release
    // store so the slot we are about to overwrite is truly vacated.
    cached_tail_ = tail_.load(std::memory_order_acquire);
    // The batch has not been touched: the caller keeps ownership and can
    // retry with the very same object (the old by-value API consumed the
    // message even on failure, which made retry loops re-send a
    // moved-from shell).
    if (head - cached_tail_ >= capacity_) return false;
  }
  const size_t messages = batch.items.size();
  slots_[head & mask_] = std::move(batch);
  head_.store(head + 1, std::memory_order_release);
  pushed_.Add(messages);
  batch_size_.Record(messages);
  const size_t occupancy = static_cast<size_t>(
      head + 1 - tail_.load(std::memory_order_relaxed));
  high_water_.Max(occupancy);
  occupancy_.Record(occupancy);
  if (ConsumerWaker* waker = waker_.get()) waker->Wake();
  return true;
}

bool RingChannel::TryPush(StreamMessage&& message) {
  StreamBatch batch;
  batch.items.push_back(std::move(message));
  if (TryPush(std::move(batch))) return true;
  message = std::move(batch.items.front());  // restore: no-consume contract
  return false;
}

bool RingChannel::TryPush(const StreamMessage& message) {
  StreamBatch batch;
  batch.items.push_back(message);
  return TryPush(std::move(batch));
}

bool RingChannel::PushOrDrop(StreamBatch&& batch) {
  if (parked_punct_.has_value()) {
    if (batch.has_punctuation()) {
      // The batch's own punctuation carries a bound at least as new as the
      // parked one (bounds are non-decreasing on a stream), so the parked
      // punctuation is superseded — dropping it loses no information.
      parked_punct_.reset();
    } else {
      // Ride the parked punctuation at the tail of this batch. It now
      // follows tuples that were produced after it, which is safe: its
      // bound ("no future tuple below v") still holds after any later
      // tuple.
      batch.items.push_back(std::move(*parked_punct_));
      parked_punct_.reset();
    }
  }
  if (batch.items.empty()) return true;
  if (TryPush(std::move(batch))) return true;
  // Full ring: the tuples drop here — as early in the chain as possible,
  // per §4/§5 — but the punctuation must not, or downstream group-close
  // stalls until the next one happens to arrive. Park it for the next
  // push.
  size_t tuples = batch.items.size();
  if (batch.has_punctuation()) {
    --tuples;
    parked_punct_ = std::move(batch.items.back());
  }
  dropped_.Add(tuples);
  batch.items.clear();
  return false;
}

bool RingChannel::PushOrDrop(StreamMessage message) {
  StreamBatch batch;
  batch.items.push_back(std::move(message));
  return PushOrDrop(std::move(batch));
}

bool RingChannel::FlushParked() {
  if (!parked_punct_.has_value()) return true;
  StreamBatch batch;
  batch.items.push_back(std::move(*parked_punct_));
  parked_punct_.reset();
  if (TryPush(std::move(batch))) return true;
  parked_punct_ = std::move(batch.items.back());  // still full: re-park
  return false;
}

bool RingChannel::PopSlot(StreamBatch* out) {
  const uint64_t tail = tail_.load(std::memory_order_relaxed);
  if (tail == cached_head_) {
    // Acquire pairs with the producer's release store: the slot contents
    // written before head_ advanced are visible here.
    cached_head_ = head_.load(std::memory_order_acquire);
    if (tail == cached_head_) return false;
  }
  *out = std::move(slots_[tail & mask_]);
  tail_.store(tail + 1, std::memory_order_release);
  popped_.Add(out->items.size());
  return true;
}

bool RingChannel::TryPop(StreamBatch* out) {
  if (staged_index_ < staged_.items.size()) {
    // Hand over the remainder of a partially drained batch first so the
    // batch- and message-level pop APIs interleave in FIFO order.
    out->items.assign(
        std::make_move_iterator(staged_.items.begin() + staged_index_),
        std::make_move_iterator(staged_.items.end()));
    staged_.items.clear();
    staged_index_ = 0;
    return true;
  }
  out->items.clear();
  return PopSlot(out);
}

bool RingChannel::TryPop(StreamMessage* out) {
  while (staged_index_ >= staged_.items.size()) {
    staged_.items.clear();
    staged_index_ = 0;
    if (!PopSlot(&staged_)) return false;
  }
  *out = std::move(staged_.items[staged_index_++]);
  return true;
}

size_t RingChannel::size() const {
  // Load tail first: head can only grow afterwards, so the difference is
  // never negative.
  const uint64_t tail = tail_.load(std::memory_order_acquire);
  const uint64_t head = head_.load(std::memory_order_acquire);
  return static_cast<size_t>(head - tail);
}

}  // namespace gigascope::rts
