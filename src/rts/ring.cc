#include "rts/ring.h"

#include <cstring>

#include "common/logging.h"

namespace gigascope::rts {

void ConsumerWaker::Park(std::chrono::microseconds timeout) {
  std::unique_lock<std::mutex> lock(mutex_);
  if (signal_.exchange(false, std::memory_order_acq_rel)) return;
  parked_.store(true, std::memory_order_release);
  cv_.wait_for(lock, timeout, [this] {
    return signal_.load(std::memory_order_acquire);
  });
  parked_.store(false, std::memory_order_relaxed);
  signal_.store(false, std::memory_order_relaxed);
}

void ConsumerWaker::Wake() {
  signal_.store(true, std::memory_order_release);
  if (parked_.load(std::memory_order_acquire)) {
    // Lock/unlock pairs the notify with the consumer's predicate check so
    // the wait cannot sleep through it; only taken while a consumer parks.
    { std::lock_guard<std::mutex> lock(mutex_); }
    cv_.notify_one();
  }
}

namespace {

size_t NextPowerOfTwo(size_t n) {
  size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

size_t ClampedCapacity(size_t capacity, const ShmRingOptions& shm) {
  if (!shm.enabled) return capacity;
  // Shm slots carry a fixed payload region each, so unbounded capacities
  // (tests subscribe with 1<<20) clamp to the configured ceiling. Lazy
  // page allocation makes even the ceiling cheap until slots are used.
  const size_t ceiling = shm.max_slots == 0 ? 1 : shm.max_slots;
  return capacity < ceiling ? capacity : ceiling;
}

/// Minimum per-slot payload region: headers plus any punctuation must
/// always fit in a single slot (punctuations are never dropped).
constexpr size_t kMinSlotBytes = 512;

/// Single-writer increment for a cross-process counter (the shm analogue
/// of telemetry::Counter::Add — no RMW needed, each counter has exactly
/// one writing process).
inline void CounterAdd(std::atomic<uint64_t>* counter, uint64_t n) {
  counter->store(counter->load(std::memory_order_relaxed) + n,
                 std::memory_order_relaxed);
}

}  // namespace

RingChannel::RingChannel(size_t capacity, const ShmRingOptions& shm)
    : capacity_(ClampedCapacity(capacity, shm)),
      mask_(NextPowerOfTwo(capacity_ == 0 ? 1 : capacity_) - 1),
      slots_(shm.enabled ? 0 : mask_ + 1) {
  GS_CHECK(capacity > 0);
  if (!shm.enabled) return;
  shm_slot_bytes_ =
      shm.slot_bytes < kMinSlotBytes ? kMinSlotBytes : shm.slot_bytes;
  const size_t slot_count = mask_ + 1;
  arena_base_ = sizeof(ShmRingControl) + slot_count * sizeof(ShmSlot);
  shm_ = ShmSegment::Create(arena_base_ + slot_count * shm_slot_bytes_);
  ctrl_ = new (shm_->data()) ShmRingControl();
  ctrl_->slot_count = slot_count;
  ctrl_->slot_bytes = shm_slot_bytes_;
  shm_slots_ = shm_->As<ShmSlot>(sizeof(ShmRingControl));
  for (size_t s = 0; s < slot_count; ++s) new (&shm_slots_[s]) ShmSlot();
}

void RingChannel::RecordPush(size_t messages, size_t occupancy) {
  if (ctrl_ != nullptr) {
    CounterAdd(&ctrl_->pushed, messages);
    if (occupancy > ctrl_->high_water.load(std::memory_order_relaxed)) {
      ctrl_->high_water.store(occupancy, std::memory_order_relaxed);
    }
  } else {
    pushed_.Add(messages);
    high_water_.Max(occupancy);
  }
  batch_size_.Record(messages);
  occupancy_.Record(occupancy);
  if (ConsumerWaker* waker = waker_.get()) waker->Wake();
}

void RingChannel::CountDropped(size_t messages) {
  if (messages == 0) return;
  if (ctrl_ != nullptr) {
    CounterAdd(&ctrl_->dropped, messages);
  } else {
    dropped_.Add(messages);
  }
}

bool RingChannel::TryPush(StreamBatch&& batch) {
  if (batch.items.empty()) return true;  // nothing to enqueue
  if (ctrl_ != nullptr) return ShmTryPush(std::move(batch));
  const uint64_t head = head_.load(std::memory_order_relaxed);
  if (head - cached_tail_ >= capacity_) {
    // Refresh the cached tail; acquire pairs with the consumer's release
    // store so the slot we are about to overwrite is truly vacated.
    cached_tail_ = tail_.load(std::memory_order_acquire);
    // The batch has not been touched: the caller keeps ownership and can
    // retry with the very same object (the old by-value API consumed the
    // message even on failure, which made retry loops re-send a
    // moved-from shell).
    if (head - cached_tail_ >= capacity_) return false;
  }
  const size_t messages = batch.items.size();
  slots_[head & mask_] = std::move(batch);
  head_.store(head + 1, std::memory_order_release);
  RecordPush(messages, static_cast<size_t>(
                           head + 1 - tail_.load(std::memory_order_relaxed)));
  return true;
}

bool RingChannel::ShmTryPush(StreamBatch&& batch) {
  // Chunk the batch into runs whose serialized forms share one slot.
  // Chunking happens before the space check so a batch needing N slots
  // fails atomically (no-consume contract) when fewer than N are free.
  struct Chunk {
    size_t begin;
    size_t end;
  };
  std::vector<Chunk> chunks;
  std::vector<char> oversize(batch.items.size(), 0);
  size_t oversize_count = 0;
  const size_t none = batch.items.size();
  size_t run_begin = none;
  size_t run_bytes = 0;
  for (size_t i = 0; i < batch.items.size(); ++i) {
    const size_t need = ShmEncodedMessageSize(batch.items[i]);
    if (need > shm_slot_bytes_) {
      // Could never be delivered at any occupancy: dropped on the success
      // path below, counted separately from ring-full drops.
      oversize[i] = 1;
      ++oversize_count;
      continue;
    }
    if (run_begin == none) {
      run_begin = i;
      run_bytes = 0;
    } else if (run_bytes + need > shm_slot_bytes_) {
      chunks.push_back({run_begin, i});
      run_begin = i;
      run_bytes = 0;
    }
    run_bytes += need;
  }
  if (run_begin != none) chunks.push_back({run_begin, none});
  if (chunks.empty()) {
    // Every message was oversize; nothing deliverable remains.
    CounterAdd(&ctrl_->oversize_dropped, oversize_count);
    batch.items.clear();
    return true;
  }
  const uint64_t head = ctrl_->head.load(std::memory_order_relaxed);
  if (head - cached_tail_ + chunks.size() > capacity_) {
    cached_tail_ = ctrl_->tail.load(std::memory_order_acquire);
    if (head - cached_tail_ + chunks.size() > capacity_) return false;
  }
  size_t delivered = 0;
  for (size_t c = 0; c < chunks.size(); ++c) {
    const uint64_t index = head + c;
    const size_t s = index & mask_;
    push_scratch_.clear();
    uint32_t count = 0;
    for (size_t i = chunks[c].begin; i < chunks[c].end; ++i) {
      if (oversize[i]) continue;
      ShmEncodeMessage(batch.items[i], &push_scratch_);
      ++count;
    }
    ShmSlot& slot = shm_slots_[s];
    slot.offset = ArenaOffset(s);
    slot.len = static_cast<uint32_t>(push_scratch_.size());
    slot.msg_count = count;
    std::memcpy(shm_->As<uint8_t>(slot.offset), push_scratch_.data(),
                push_scratch_.size());
    // Publication stamp: written (release) only after the payload bytes
    // are complete, validated by the consumer before it touches them.
    uint64_t seq = index + 1;
    if (torn_arm_ != 0 && ++slot_pubs_ >= torn_arm_) {
      seq = 0;  // fault injection: a stamp no consumer position accepts
      torn_arm_ = 0;
    }
    slot.seq.store(seq, std::memory_order_release);
    delivered += count;
  }
  ctrl_->head.store(head + chunks.size(), std::memory_order_release);
  if (oversize_count > 0) {
    CounterAdd(&ctrl_->oversize_dropped, oversize_count);
  }
  RecordPush(delivered,
             static_cast<size_t>(head + chunks.size() -
                                 ctrl_->tail.load(std::memory_order_relaxed)));
  batch.items.clear();
  return true;
}

bool RingChannel::TryPush(StreamMessage&& message) {
  StreamBatch batch;
  batch.items.push_back(std::move(message));
  if (TryPush(std::move(batch))) return true;
  message = std::move(batch.items.front());  // restore: no-consume contract
  return false;
}

bool RingChannel::TryPush(const StreamMessage& message) {
  StreamBatch batch;
  batch.items.push_back(message);
  return TryPush(std::move(batch));
}

bool RingChannel::PushOrDrop(StreamBatch&& batch) {
  if (parked_punct_.has_value()) {
    if (batch.has_punctuation()) {
      // The batch's own punctuation carries a bound at least as new as the
      // parked one (bounds are non-decreasing on a stream), so the parked
      // punctuation is superseded — dropping it loses no information.
      parked_punct_.reset();
    } else {
      // Ride the parked punctuation at the tail of this batch. It now
      // follows tuples that were produced after it, which is safe: its
      // bound ("no future tuple below v") still holds after any later
      // tuple.
      batch.items.push_back(std::move(*parked_punct_));
      parked_punct_.reset();
    }
  }
  if (batch.items.empty()) return true;
  if (TryPush(std::move(batch))) return true;
  // Full ring: the tuples drop here — as early in the chain as possible,
  // per §4/§5 — but the punctuation must not, or downstream group-close
  // stalls until the next one happens to arrive. Park it for the next
  // push.
  size_t tuples = batch.items.size();
  if (batch.has_punctuation()) {
    --tuples;
    parked_punct_ = std::move(batch.items.back());
  }
  CountDropped(tuples);
  batch.items.clear();
  return false;
}

bool RingChannel::PushOrDrop(StreamMessage message) {
  StreamBatch batch;
  batch.items.push_back(std::move(message));
  return PushOrDrop(std::move(batch));
}

bool RingChannel::FlushParked() {
  if (!parked_punct_.has_value()) return true;
  StreamBatch batch;
  batch.items.push_back(std::move(*parked_punct_));
  parked_punct_.reset();
  if (TryPush(std::move(batch))) return true;
  parked_punct_ = std::move(batch.items.back());  // still full: re-park
  return false;
}

bool RingChannel::HeapPopSlotRaw(StreamBatch* out) {
  const uint64_t tail = tail_.load(std::memory_order_relaxed);
  if (tail == cached_head_) {
    // Acquire pairs with the producer's release store: the slot contents
    // written before head_ advanced are visible here.
    cached_head_ = head_.load(std::memory_order_acquire);
    if (tail == cached_head_) return false;
  }
  *out = std::move(slots_[tail & mask_]);
  tail_.store(tail + 1, std::memory_order_release);
  popped_.Add(out->items.size());
  return true;
}

bool RingChannel::ShmPopSlotRaw(StreamBatch* out) {
  for (;;) {
    const uint64_t tail = ctrl_->tail.load(std::memory_order_relaxed);
    // The head cache is process-local while tail is shared: after a fork
    // handoff (adoption, or a restarted child) this process's cache can
    // lag the tail another process advanced. Trust it only when it is
    // strictly ahead of the tail; `<=` (not `==`) is what makes the
    // emptiness check safe across the handoff — otherwise a stale cache
    // reads unpublished slots and walks the tail past the head forever.
    if (cached_head_ <= tail) {
      cached_head_ = ctrl_->head.load(std::memory_order_acquire);
      if (cached_head_ <= tail) return false;
    }
    ShmSlot& slot = shm_slots_[tail & mask_];
    // Validate before touching the payload: the stamp proves the producer
    // finished writing this lap's bytes, and the bounds prove the header
    // itself is sane. A producer that died mid-write (or fault injection)
    // fails here; the slot is torn — skipped, never delivered as garbage.
    const uint64_t seq = slot.seq.load(std::memory_order_acquire);
    bool ok = seq == tail + 1 && slot.offset == ArenaOffset(tail & mask_) &&
              slot.len <= shm_slot_bytes_;
    if (ok) {
      ByteSpan bytes(shm_->As<uint8_t>(slot.offset), slot.len);
      ok = ShmDecodeBatch(bytes, slot.msg_count, out);
      if (!ok) out->items.clear();
    }
    ctrl_->tail.store(tail + 1, std::memory_order_release);
    if (!ok) {
      CounterAdd(&ctrl_->torn, 1);
      continue;  // torn slot skipped; try the next one
    }
    CounterAdd(&ctrl_->popped, out->items.size());
    return true;
  }
}

bool RingChannel::PopSlot(StreamBatch* out) {
  for (;;) {
    out->items.clear();
    const uint64_t pos = ctrl_ != nullptr
                             ? ctrl_->tail.load(std::memory_order_relaxed)
                             : tail_.load(std::memory_order_relaxed);
    const bool got =
        ctrl_ != nullptr ? ShmPopSlotRaw(out) : HeapPopSlotRaw(out);
    if (!got) return false;
    // Past the arming position: this slot was pushed after the handoff,
    // so the lost prefix cannot extend into it — the gap ends here even
    // without a punctuation (see BeginResync).
    if (resync_ && pos >= resync_end_) resync_ = false;
    if (!resync_) return true;
    ApplyResyncGate(out);
    if (!out->items.empty()) return true;
    // Whole slot discarded by the gate; keep popping toward the
    // punctuation boundary.
  }
}

void RingChannel::ApplyResyncGate(StreamBatch* out) {
  size_t drop = 0;
  while (drop < out->items.size() &&
         out->items[drop].kind != StreamMessage::Kind::kPunctuation) {
    ++drop;
  }
  const bool punctuation = drop < out->items.size();
  if (drop > 0) {
    if (ctrl_ != nullptr) {
      CounterAdd(&ctrl_->resync_dropped, drop);
    } else {
      resync_dropped_.Add(drop);
    }
    out->items.erase(out->items.begin(),
                     out->items.begin() + static_cast<ptrdiff_t>(drop));
  }
  // The punctuation re-establishes ordering for everything that follows:
  // the new consumer incarnation starts clean at a window boundary.
  if (punctuation) resync_ = false;
}

void RingChannel::BeginResync() {
  resync_ = true;
  // Everything already pushed belongs to the dead incarnation's in-flight
  // span; everything after this head position post-dates the handoff.
  resync_end_ = ctrl_ != nullptr ? ctrl_->head.load(std::memory_order_acquire)
                                 : head_.load(std::memory_order_acquire);
  // Any staged remainder belonged to the dead incarnation's batch.
  size_t staged_tuples = 0;
  for (size_t i = staged_index_; i < staged_.items.size(); ++i) {
    if (staged_.items[i].kind == StreamMessage::Kind::kTuple) {
      ++staged_tuples;
    }
  }
  if (staged_tuples > 0) {
    if (ctrl_ != nullptr) {
      CounterAdd(&ctrl_->resync_dropped, staged_tuples);
    } else {
      resync_dropped_.Add(staged_tuples);
    }
  }
  staged_.items.clear();
  staged_index_ = 0;
}

void RingChannel::ArmTornFault(uint64_t nth) {
  GS_CHECK(ctrl_ != nullptr);  // the heap backend has no serialized form
  torn_arm_ = nth == 0 ? 1 : nth;
  slot_pubs_ = 0;
}

bool RingChannel::TryPop(StreamBatch* out) {
  if (staged_index_ < staged_.items.size()) {
    // Hand over the remainder of a partially drained batch first so the
    // batch- and message-level pop APIs interleave in FIFO order.
    out->items.assign(
        std::make_move_iterator(staged_.items.begin() + staged_index_),
        std::make_move_iterator(staged_.items.end()));
    staged_.items.clear();
    staged_index_ = 0;
    return true;
  }
  return PopSlot(out);
}

bool RingChannel::TryPop(StreamMessage* out) {
  while (staged_index_ >= staged_.items.size()) {
    staged_.items.clear();
    staged_index_ = 0;
    if (!PopSlot(&staged_)) return false;
  }
  *out = std::move(staged_.items[staged_index_++]);
  return true;
}

size_t RingChannel::size() const {
  // Load tail first: head can only grow afterwards, so the difference is
  // never negative.
  if (ctrl_ != nullptr) {
    const uint64_t tail = ctrl_->tail.load(std::memory_order_acquire);
    const uint64_t head = ctrl_->head.load(std::memory_order_acquire);
    return static_cast<size_t>(head - tail);
  }
  const uint64_t tail = tail_.load(std::memory_order_acquire);
  const uint64_t head = head_.load(std::memory_order_acquire);
  return static_cast<size_t>(head - tail);
}

}  // namespace gigascope::rts
