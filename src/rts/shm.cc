#include "rts/shm.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstring>

#include "common/bytes.h"
#include "common/logging.h"

namespace gigascope::rts {

namespace {

/// Process-wide suffix so two engines in one process never collide on a
/// segment name (the name only exists for the instant between shm_open
/// and shm_unlink, but uniqueness keeps even that instant race-free).
std::atomic<uint64_t> segment_seq{0};

void* MapSharedAnonymousFallback(size_t bytes) {
  void* mem = mmap(nullptr, bytes, PROT_READ | PROT_WRITE,
                   MAP_SHARED | MAP_ANONYMOUS, -1, 0);
  return mem == MAP_FAILED ? nullptr : mem;
}

}  // namespace

std::unique_ptr<ShmSegment> ShmSegment::Create(size_t bytes) {
  GS_CHECK(bytes > 0);
  char name[64];
  std::snprintf(name, sizeof(name), "/gigascope.%d.%llu",
                static_cast<int>(getpid()),
                static_cast<unsigned long long>(
                    segment_seq.fetch_add(1, std::memory_order_relaxed)));
  void* mem = nullptr;
  int fd = shm_open(name, O_CREAT | O_EXCL | O_RDWR, 0600);
  if (fd >= 0) {
    // Unlink immediately: the mapping below is the only reference, so the
    // kernel reclaims the segment when the last process exits — crash
    // included. Nothing ever lingers in /dev/shm.
    shm_unlink(name);
    if (ftruncate(fd, static_cast<off_t>(bytes)) == 0) {
      void* mapped = mmap(nullptr, bytes, PROT_READ | PROT_WRITE, MAP_SHARED,
                          fd, 0);
      if (mapped != MAP_FAILED) mem = mapped;
    }
    close(fd);
  }
  if (mem == nullptr) {
    // Hosts without a POSIX shm mount: an anonymous MAP_SHARED mapping is
    // equally fork-inheritable, it just cannot be named (we never need the
    // name after setup anyway).
    mem = MapSharedAnonymousFallback(bytes);
  }
  GS_CHECK(mem != nullptr);
  return std::unique_ptr<ShmSegment>(new ShmSegment(mem, bytes));
}

ShmSegment::~ShmSegment() { munmap(data_, size_); }

size_t ShmEncodedMessageSize(const StreamMessage& message) {
  return 1 + 4 + 8 + 8 + 4 + message.payload.size();
}

void ShmEncodeMessage(const StreamMessage& message, ByteBuffer* out) {
  ByteWriter writer(out);
  writer.PutU8(static_cast<uint8_t>(message.kind));
  writer.PutU32Le(message.weight);
  writer.PutU64Le(message.trace_id);
  writer.PutU64Le(static_cast<uint64_t>(message.trace_ns));
  writer.PutU32Le(static_cast<uint32_t>(message.payload.size()));
  writer.PutBytes(message.payload.data(), message.payload.size());
}

bool ShmDecodeBatch(ByteSpan bytes, uint32_t count, StreamBatch* out) {
  ByteReader reader(bytes);
  for (uint32_t i = 0; i < count; ++i) {
    StreamMessage message;
    uint8_t kind = 0;
    uint32_t len = 0;
    uint64_t trace_ns_bits = 0;
    if (!reader.GetU8(&kind) || kind > 1) return false;
    message.kind = static_cast<StreamMessage::Kind>(kind);
    if (!reader.GetU32Le(&message.weight)) return false;
    if (!reader.GetU64Le(&message.trace_id)) return false;
    if (!reader.GetU64Le(&trace_ns_bits)) return false;
    message.trace_ns = static_cast<int64_t>(trace_ns_bits);
    if (!reader.GetU32Le(&len)) return false;
    if (reader.remaining() < len) return false;
    message.payload.assign(reader.Rest().data(), reader.Rest().data() + len);
    reader.Skip(len);
    out->items.push_back(std::move(message));
  }
  // Trailing garbage means the header lied about the chunk; torn.
  return reader.remaining() == 0;
}

size_t ShmRingSegmentSize(size_t slot_count, size_t slot_bytes) {
  return sizeof(ShmRingControl) + slot_count * sizeof(ShmSlot) +
         slot_count * slot_bytes;
}

}  // namespace gigascope::rts
