#ifndef GIGASCOPE_RTS_TUPLE_H_
#define GIGASCOPE_RTS_TUPLE_H_

#include <optional>
#include <vector>

#include "common/bytes.h"
#include "expr/type.h"
#include "gsql/schema.h"

namespace gigascope::rts {

/// A decoded tuple: one Value per schema field.
using Row = std::vector<expr::Value>;

/// Packs and unpacks tuples of one schema ("the fields of its tuples are
/// packed in a standard fashion", §2.2). The packed form is what crosses
/// the shared-memory channels between query nodes.
///
/// Layout: fields in schema order. BOOL = 1 byte; INT/UINT/FLOAT = 8 bytes
/// little-endian; IP = 4 bytes; STRING = u32 length + bytes.
class TupleCodec {
 public:
  explicit TupleCodec(const gsql::StreamSchema& schema);

  const gsql::StreamSchema& schema() const { return schema_; }

  /// Serializes `row` (must match the schema arity and field types).
  void Encode(const Row& row, ByteBuffer* out) const;

  /// Deserializes a packed tuple; fails on truncation or overrun.
  Result<Row> Decode(ByteSpan bytes) const;

  /// Encoded size of `row` in bytes.
  size_t EncodedSize(const Row& row) const;

  /// Byte offset of field `field` in every encoded tuple of this schema,
  /// when all preceding fields are fixed-width (no strings); nullopt when
  /// the offset varies per row or `field` is out of range. Lets a filter
  /// read one field straight out of the packed bytes without decoding the
  /// whole row (the columnar fast path in ops/select_project).
  std::optional<size_t> FixedFieldOffset(size_t field) const;

  /// Encoded width in bytes of a fixed-width type; nullopt for strings.
  static std::optional<size_t> FixedTypeWidth(gsql::DataType type);

 private:
  gsql::StreamSchema schema_;
};

/// A message flowing on a stream channel: a tuple or a punctuation
/// (ordering-update token, §3 "Unblocking Operators").
///
/// The trace context piggybacks on the message: when the inject thread
/// samples a packet (telemetry::Tracer), every message derived from it —
/// through LFTA pre-aggregation, the rings, and the HFTA operators —
/// carries the originating trace id and inject timestamp, so operators can
/// record per-hop spans and the terminal node the inject→emit latency.
/// trace_id 0 (the default) means untraced; the hot path only ever
/// copies the two words.
struct StreamMessage {
  enum class Kind : uint8_t { kTuple, kPunctuation };
  Kind kind = Kind::kTuple;
  ByteBuffer payload;
  uint64_t trace_id = 0;
  int64_t trace_ns = 0;  // inject time, in the tracer's epoch
  /// How many offered tuples this message stands for. 1 normally; under
  /// L1 load shedding a surviving source tuple carries the sampling rate
  /// in force when it was injected (its Horvitz-Thompson weight), and
  /// aggregation folds COUNT/SUM with it. Stamped at the sampling
  /// decision — not read at fold time — so a backlog of pre-shed tuples
  /// is never retroactively scaled.
  uint32_t weight = 1;
};

/// The unit a ring slot carries: zero or more tuples followed by at most
/// one punctuation, in stream order. Batching amortizes the per-message
/// ring handoff and operator dispatch over many tuples while preserving
/// the paper's §2 ordering semantics — everything inside a batch stays in
/// the order it was produced, and a punctuation always closes its batch
/// (nothing in this batch follows it, so its ordering guarantee covers
/// exactly the tuples that preceded it on the stream).
struct StreamBatch {
  std::vector<StreamMessage> items;

  size_t size() const { return items.size(); }
  bool empty() const { return items.empty(); }

  /// True when the batch ends in a punctuation. Producers maintain the
  /// invariant that a punctuation can only be the last item.
  bool has_punctuation() const {
    return !items.empty() &&
           items.back().kind == StreamMessage::Kind::kPunctuation;
  }
};

}  // namespace gigascope::rts

#endif  // GIGASCOPE_RTS_TUPLE_H_
