#ifndef GIGASCOPE_RTS_TUPLE_H_
#define GIGASCOPE_RTS_TUPLE_H_

#include <vector>

#include "common/bytes.h"
#include "expr/type.h"
#include "gsql/schema.h"

namespace gigascope::rts {

/// A decoded tuple: one Value per schema field.
using Row = std::vector<expr::Value>;

/// Packs and unpacks tuples of one schema ("the fields of its tuples are
/// packed in a standard fashion", §2.2). The packed form is what crosses
/// the shared-memory channels between query nodes.
///
/// Layout: fields in schema order. BOOL = 1 byte; INT/UINT/FLOAT = 8 bytes
/// little-endian; IP = 4 bytes; STRING = u32 length + bytes.
class TupleCodec {
 public:
  explicit TupleCodec(const gsql::StreamSchema& schema);

  const gsql::StreamSchema& schema() const { return schema_; }

  /// Serializes `row` (must match the schema arity and field types).
  void Encode(const Row& row, ByteBuffer* out) const;

  /// Deserializes a packed tuple; fails on truncation or overrun.
  Result<Row> Decode(ByteSpan bytes) const;

  /// Encoded size of `row` in bytes.
  size_t EncodedSize(const Row& row) const;

 private:
  gsql::StreamSchema schema_;
};

/// A message flowing on a stream channel: a tuple or a punctuation
/// (ordering-update token, §3 "Unblocking Operators").
///
/// The trace context piggybacks on the message: when the inject thread
/// samples a packet (telemetry::Tracer), every message derived from it —
/// through LFTA pre-aggregation, the rings, and the HFTA operators —
/// carries the originating trace id and inject timestamp, so operators can
/// record per-hop spans and the terminal node the inject→emit latency.
/// trace_id 0 (the default) means untraced; the hot path only ever
/// copies the two words.
struct StreamMessage {
  enum class Kind : uint8_t { kTuple, kPunctuation };
  Kind kind = Kind::kTuple;
  ByteBuffer payload;
  uint64_t trace_id = 0;
  int64_t trace_ns = 0;  // inject time, in the tracer's epoch
};

}  // namespace gigascope::rts

#endif  // GIGASCOPE_RTS_TUPLE_H_
