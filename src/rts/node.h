#ifndef GIGASCOPE_RTS_NODE_H_
#define GIGASCOPE_RTS_NODE_H_

#include <memory>
#include <string>
#include <vector>

#include "expr/type.h"
#include "rts/registry.h"

namespace gigascope::rts {

/// The mutable query-parameter block shared between the engine (which
/// changes parameters on the fly, §3) and the nodes evaluating expressions
/// against it.
using ParamBlock = std::shared_ptr<std::vector<expr::Value>>;

/// A query node: one operator instance in the running query network.
///
/// In the paper query nodes are processes; here they are objects driven by
/// the engine's pump loop (or by caller-owned threads). Each node reads
/// from its input subscriptions and publishes to its output stream via the
/// registry.
class QueryNode {
 public:
  explicit QueryNode(std::string name) : name_(std::move(name)) {}
  virtual ~QueryNode() = default;
  QueryNode(const QueryNode&) = delete;
  QueryNode& operator=(const QueryNode&) = delete;

  const std::string& name() const { return name_; }

  /// Processes up to `budget` pending input messages; returns how many were
  /// consumed (0 = idle).
  virtual size_t Poll(size_t budget) = 0;

  /// End-of-stream: emits any buffered state (open aggregate groups, join
  /// buffers). Idempotent.
  virtual void Flush() {}

  /// Tuples this node has emitted.
  uint64_t tuples_out() const { return tuples_out_; }
  /// Tuples this node has consumed.
  uint64_t tuples_in() const { return tuples_in_; }
  /// Input tuples that failed evaluation (runtime errors) and were dropped.
  uint64_t eval_errors() const { return eval_errors_; }

  /// The input channels this node consumes (registered by subclasses at
  /// construction). The threaded engine uses these to wire consumer
  /// wake-ups and to honor the single-consumer rule: a node — and thus
  /// every channel listed here — is polled by exactly one thread.
  const std::vector<Subscription>& inputs() const { return inputs_; }

 protected:
  /// Subclasses call this once per input subscription.
  void RegisterInput(Subscription input) {
    inputs_.push_back(std::move(input));
  }

  uint64_t tuples_in_ = 0;
  uint64_t tuples_out_ = 0;
  uint64_t eval_errors_ = 0;

 private:
  std::string name_;
  std::vector<Subscription> inputs_;
};

}  // namespace gigascope::rts

#endif  // GIGASCOPE_RTS_NODE_H_
