#ifndef GIGASCOPE_RTS_NODE_H_
#define GIGASCOPE_RTS_NODE_H_

#include <memory>
#include <string>
#include <vector>

#include "expr/type.h"
#include "rts/registry.h"
#include "telemetry/registry.h"

namespace gigascope::rts {

/// The mutable query-parameter block shared between the engine (which
/// changes parameters on the fly, §3) and the nodes evaluating expressions
/// against it.
using ParamBlock = std::shared_ptr<std::vector<expr::Value>>;

/// A query node: one operator instance in the running query network.
///
/// In the paper query nodes are processes; here they are objects driven by
/// the engine's pump loop (or by caller-owned threads). Each node reads
/// from its input subscriptions and publishes to its output stream via the
/// registry.
class QueryNode {
 public:
  explicit QueryNode(std::string name) : name_(std::move(name)) {}
  virtual ~QueryNode() = default;
  QueryNode(const QueryNode&) = delete;
  QueryNode& operator=(const QueryNode&) = delete;

  const std::string& name() const { return name_; }

  /// Processes up to `budget` pending input messages; returns how many were
  /// consumed (0 = idle).
  virtual size_t Poll(size_t budget) = 0;

  /// Poll + busy accounting: counts the polls that did work, the node's
  /// cheap busy-time proxy (no clock reads on the hot path). All pump
  /// loops go through this; the owning thread is the single writer.
  size_t PollCounted(size_t budget) {
    size_t processed = Poll(budget);
    if (processed > 0) ++busy_polls_;
    return processed;
  }

  /// End-of-stream: emits any buffered state (open aggregate groups, join
  /// buffers). Idempotent.
  virtual void Flush() {}

  /// Tuples this node has emitted.
  uint64_t tuples_out() const { return tuples_out_.value(); }
  /// Tuples this node has consumed.
  uint64_t tuples_in() const { return tuples_in_.value(); }
  /// Input tuples that failed evaluation (runtime errors) and were dropped.
  uint64_t eval_errors() const { return eval_errors_.value(); }
  /// Polls that consumed at least one message (busy-time proxy).
  uint64_t busy_polls() const { return busy_polls_.value(); }

  /// Registers this node's counters with the telemetry registry under the
  /// node's name: the base tuples_in/tuples_out/eval_errors, plus the
  /// pushed/popped/dropped/size/high-water counters of every input channel
  /// (prefix "ring", or "ring<i>" with several inputs). Subclasses override
  /// to add operator-specific metrics and must call the base version.
  /// Counters stay readable from any thread while the node is polled; the
  /// registry entries must not outlive the node.
  virtual void RegisterTelemetry(telemetry::Registry* metrics) const;

  /// The input channels this node consumes (registered by subclasses at
  /// construction). The threaded engine uses these to wire consumer
  /// wake-ups and to honor the single-consumer rule: a node — and thus
  /// every channel listed here — is polled by exactly one thread.
  const std::vector<Subscription>& inputs() const { return inputs_; }

 protected:
  /// Subclasses call this once per input subscription.
  void RegisterInput(Subscription input) {
    inputs_.push_back(std::move(input));
  }

  // Single-writer (the polling thread); readable from any thread, which is
  // what makes Engine::GetNodeStats safe while workers are pumping.
  telemetry::Counter tuples_in_;
  telemetry::Counter tuples_out_;
  telemetry::Counter eval_errors_;
  telemetry::Counter busy_polls_;

 private:
  std::string name_;
  std::vector<Subscription> inputs_;
};

}  // namespace gigascope::rts

#endif  // GIGASCOPE_RTS_NODE_H_
