#ifndef GIGASCOPE_RTS_NODE_H_
#define GIGASCOPE_RTS_NODE_H_

#include <memory>
#include <string>
#include <vector>

#include "expr/type.h"
#include "rts/registry.h"
#include "rts/tuple.h"
#include "telemetry/histogram.h"
#include "telemetry/registry.h"
#include "telemetry/tracer.h"

namespace gigascope::jit {
class QueryJit;  // jit/engine.h
}

namespace gigascope::rts {

/// The mutable query-parameter block shared between the engine (which
/// changes parameters on the fly, §3) and the nodes evaluating expressions
/// against it.
using ParamBlock = std::shared_ptr<std::vector<expr::Value>>;

/// A query node: one operator instance in the running query network.
///
/// In the paper query nodes are processes; here they are objects driven by
/// the engine's pump loop (or by caller-owned threads). Each node reads
/// from its input subscriptions and publishes to its output stream via the
/// registry.
class QueryNode {
 public:
  explicit QueryNode(std::string name) : name_(std::move(name)) {}
  virtual ~QueryNode() = default;
  QueryNode(const QueryNode&) = delete;
  QueryNode& operator=(const QueryNode&) = delete;

  const std::string& name() const { return name_; }

  /// Processes up to `budget` pending input messages; returns how many were
  /// consumed (0 = idle).
  virtual size_t Poll(size_t budget) = 0;

  /// Poll + busy accounting: counts the polls that did work and feeds the
  /// poll-duration and per-tuple latency histograms (two clock reads per
  /// busy poll, one per idle poll). All pump loops go through this; the
  /// owning thread is the single writer.
  size_t PollCounted(size_t budget);

  /// End-of-stream: emits any buffered state (open aggregate groups, join
  /// buffers). Idempotent.
  virtual void Flush() {}

  /// Tuples this node has emitted.
  uint64_t tuples_out() const { return tuples_out_.value(); }
  /// Tuples this node has consumed.
  uint64_t tuples_in() const { return tuples_in_.value(); }
  /// Input tuples that failed evaluation (runtime errors) and were dropped.
  uint64_t eval_errors() const { return eval_errors_.value(); }
  /// Polls that consumed at least one message (busy-time proxy).
  uint64_t busy_polls() const { return busy_polls_.value(); }
  /// Sampled (traced) messages that reached this node with no tracer
  /// attached — their span is lost here. Nonzero on worker-process nodes:
  /// the trace context crosses the shm ring but the worker records no
  /// spans, so the truncation is counted instead of silent.
  uint64_t trace_truncated() const { return trace_truncated_.value(); }

  /// Registers this node's counters with the telemetry registry under the
  /// node's name: the base tuples_in/tuples_out/eval_errors, plus the
  /// pushed/popped/dropped/size/high-water counters of every input channel
  /// (prefix "ring", or "ring<i>" with several inputs). Subclasses override
  /// to add operator-specific metrics and must call the base version.
  /// Counters stay readable from any thread while the node is polled; the
  /// registry entries must not outlive the node.
  virtual void RegisterTelemetry(telemetry::Registry* metrics) const;

  /// Lets the node request native-tier kernels for its compiled
  /// expressions (one QueryJit batch per query; see jit/engine.h). Called
  /// on the control plane right after instantiation — requests are
  /// collected here, compiled once per query, and hot-swapped into the
  /// expressions' kernel slots later. Default: nothing to compile.
  virtual void AttachJit(jit::QueryJit* jit) { (void)jit; }

  /// Reports the JIT tier actually active right now (for EXPLAIN ANALYZE,
  /// vs the predicted `tier:`): `native` += kernel slots holding a
  /// hot-swapped native kernel, `total` += compilable expression slots.
  /// Default: no expressions. Safe from any thread (atomic slot loads).
  virtual void CountJitKernels(size_t* native, size_t* total) const {
    (void)native;
    (void)total;
  }

  /// The input channels this node consumes (registered by subclasses at
  /// construction). The threaded engine uses these to wire consumer
  /// wake-ups and to honor the single-consumer rule: a node — and thus
  /// every channel listed here — is polled by exactly one thread.
  const std::vector<Subscription>& inputs() const { return inputs_; }

  /// Attaches the engine's tracer and this node's viewer track. Setup only
  /// (before the node is polled); a null tracer disables span recording.
  void SetTracer(telemetry::Tracer* tracer, uint32_t track_id) {
    tracer_ = tracer;
    track_id_ = track_id;
  }

  /// Marks this node as a query's terminal (public-output) node: tuples it
  /// emits while processing a traced message record the inject→emit
  /// latency. Setup only.
  void set_terminal(bool terminal) { terminal_ = terminal; }
  bool terminal() const { return terminal_; }

  /// Inject→emit latency of traced tuples; populated only on terminal
  /// nodes while a tracer with sampling is attached.
  const telemetry::Histogram& e2e_histogram() const { return e2e_ns_; }
  /// Busy-poll duration / per-message latency distributions (wall ns).
  const telemetry::Histogram& poll_histogram() const { return poll_ns_; }
  const telemetry::Histogram& tuple_histogram() const { return tuple_ns_; }

 protected:
  /// Subclasses call this once per input subscription.
  void RegisterInput(Subscription input) {
    inputs_.push_back(std::move(input));
  }

  // -- Trace hooks, called from the polling thread only. -------------------
  // Operators bracket each dequeued message with BeginMessage/EndMessage
  // (a span per traced message on this node's track) and stamp every
  // output derived from it with StampOutput, which propagates the trace
  // context downstream. Outputs emitted while a traced message is active
  // inherit its context even when triggered indirectly (a group close, a
  // join match against buffered state) — that convention is what makes the
  // terminal e2e histogram measure inject→group-close latency. All three
  // are no-ops (two predictable branches) when untraced.

  /// Starts the span for a dequeued message, if it carries a trace.
  void BeginMessage(const StreamMessage& message) {
    active_trace_id_ = message.trace_id;
    active_weight_ = message.weight;
    if (tracer_ == nullptr) {
      if (message.trace_id != 0) ++trace_truncated_;
      return;
    }
    if (message.trace_id == 0) return;
    active_trace_ns_ = message.trace_ns;
    span_start_ns_ = tracer_->NowNs();
  }

  /// Ends the active span (records it) and clears the trace context.
  void EndMessage() {
    if (tracer_ != nullptr && active_trace_id_ != 0) {
      tracer_->RecordSpan(name_, track_id_, active_trace_id_, span_start_ns_,
                          tracer_->NowNs());
    }
    active_trace_id_ = 0;
    active_weight_ = 1;
  }

  /// Horvitz-Thompson weight of the message being processed. Row-passthrough
  /// operators (select/project, merge) copy it onto each output derived 1:1
  /// from the input so sampling weights survive to a downstream aggregate.
  /// Aggregates must NOT stamp it on their own emissions — group totals and
  /// ejected partials are already scaled.
  uint32_t active_weight() const { return active_weight_; }

  /// Propagates the active trace context onto an outgoing message; on a
  /// terminal node, additionally records the inject→emit latency and an
  /// emit instant for traced tuples.
  void StampOutput(StreamMessage* out) {
    StampOutputWithContext(out, active_trace_id_, active_trace_ns_);
  }

  /// Same, with an explicit context — for operators that buffer tuples
  /// (merge) and emit them under a different active message than the one
  /// that delivered them.
  void StampOutputWithContext(StreamMessage* out, uint64_t trace_id,
                              int64_t trace_ns) {
    if (trace_id == 0 || tracer_ == nullptr) return;
    out->trace_id = trace_id;
    out->trace_ns = trace_ns;
    if (terminal_ && out->kind == StreamMessage::Kind::kTuple) {
      const int64_t now = tracer_->NowNs();
      if (now > trace_ns) {
        e2e_ns_.Record(static_cast<uint64_t>(now - trace_ns));
      }
      tracer_->RecordInstant(name_ + ":emit", track_id_, trace_id, now);
    }
  }

  // Single-writer (the polling thread); readable from any thread, which is
  // what makes Engine::GetNodeStats safe while workers are pumping.
  telemetry::Counter tuples_in_;
  telemetry::Counter tuples_out_;
  telemetry::Counter eval_errors_;
  telemetry::Counter busy_polls_;
  telemetry::Counter trace_truncated_;

 private:
  std::string name_;
  std::vector<Subscription> inputs_;

  // Latency histograms, single-writer like the counters above.
  telemetry::Histogram poll_ns_;
  telemetry::Histogram tuple_ns_;
  telemetry::Histogram e2e_ns_;

  telemetry::Tracer* tracer_ = nullptr;  // engine-owned, outlives the node
  uint32_t track_id_ = 0;
  bool terminal_ = false;
  // Trace context of the message currently being processed.
  uint64_t active_trace_id_ = 0;
  int64_t active_trace_ns_ = 0;
  int64_t span_start_ns_ = 0;
  // Sampling weight of the message currently being processed.
  uint32_t active_weight_ = 1;
};

}  // namespace gigascope::rts

#endif  // GIGASCOPE_RTS_NODE_H_
