#ifndef GIGASCOPE_RTS_SHM_H_
#define GIGASCOPE_RTS_SHM_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>

#include "rts/tuple.h"

namespace gigascope::rts {

/// An anonymous POSIX shared-memory mapping that survives fork(): the
/// parent maps it before spawning workers and every child inherits the
/// same physical pages (MAP_SHARED), so atomics placed inside are the
/// cross-process synchronization primitive — the paper's §4 shared-memory
/// ring substrate.
///
/// The segment is created with shm_open under a unique private name and
/// immediately shm_unlink'ed: the mapping keeps it alive, nothing leaks
/// into /dev/shm past process death (crash included), and no other process
/// can race on the name. Pages are allocated lazily by the kernel, so a
/// generously sized segment costs only what is actually touched.
class ShmSegment {
 public:
  /// Maps `bytes` of zero-initialized shared memory. Dies (GS_CHECK) when
  /// the kernel refuses both shm_open and the MAP_ANONYMOUS fallback —
  /// both failing means the host cannot run multi-process mode at all.
  static std::unique_ptr<ShmSegment> Create(size_t bytes);

  ~ShmSegment();
  ShmSegment(const ShmSegment&) = delete;
  ShmSegment& operator=(const ShmSegment&) = delete;

  void* data() const { return data_; }
  size_t size() const { return size_; }

  template <typename T>
  T* As(size_t byte_offset = 0) const {
    return reinterpret_cast<T*>(static_cast<uint8_t*>(data_) + byte_offset);
  }

 private:
  ShmSegment(void* data, size_t size) : data_(data), size_(size) {}
  void* data_;
  size_t size_;
};

/// Sizing knobs for shm-backed ring channels (EngineOptions::process maps
/// onto this). Every channel the registry creates while `enabled` carries
/// its slots in a ShmSegment instead of a heap vector.
struct ShmRingOptions {
  bool enabled = false;
  /// Upper bound on slot count per shm ring: heap rings accept any
  /// capacity (tests subscribe with 1<<20), but shm slots carry a fixed
  /// payload region each, so the registry clamps. Lazily allocated pages
  /// keep even this bound cheap until slots are actually used.
  size_t max_slots = 32768;
  /// Fixed serialized-payload bytes per slot. Batches larger than this
  /// split across slots; a single message that cannot fit is dropped and
  /// counted (oversize_dropped) — it could never be delivered.
  size_t slot_bytes = 16 * 1024;
};

/// Control block at the head of a shm ring segment. All fields are written
/// through atomics with the same acquire/release protocol as the heap
/// ring; counters that the heap ring keeps in telemetry::Counter live here
/// instead so the parent's gs_stats snapshot sees child-side progress.
struct ShmRingControl {
  alignas(64) std::atomic<uint64_t> head{0};  // producer: next slot to fill
  alignas(64) std::atomic<uint64_t> tail{0};  // consumer: next slot to take
  // Message-granular counters (single writer each, relaxed).
  alignas(64) std::atomic<uint64_t> pushed{0};   // producer
  std::atomic<uint64_t> dropped{0};              // producer
  std::atomic<uint64_t> oversize_dropped{0};     // producer
  alignas(64) std::atomic<uint64_t> popped{0};   // consumer
  std::atomic<uint64_t> high_water{0};           // producer, slot-granular
  /// Slots whose sequence stamp or bounds failed consumer-side validation
  /// (a producer died mid-write, or fault injection tore one); skipped,
  /// never delivered.
  std::atomic<uint64_t> torn{0};                 // consumer
  /// Tuples discarded by the post-restart resync gate (consumer side).
  std::atomic<uint64_t> resync_dropped{0};       // consumer
  uint64_t slot_count = 0;
  uint64_t slot_bytes = 0;
};

/// Per-slot header. The payload lives in the segment's arena at
/// `offset` — slot i owns the fixed region [i * slot_bytes, (i+1) *
/// slot_bytes) — and `seq` is the publication stamp: the producer stores
/// seq = head_index + 1 (release) only after the payload bytes are
/// complete, and the consumer validates it before touching the bytes. A
/// mismatch means the slot is torn (half-written at producer death).
struct ShmSlot {
  std::atomic<uint64_t> seq{0};
  uint64_t offset = 0;     // payload start, bytes from segment base
  uint32_t len = 0;        // serialized payload length
  uint32_t msg_count = 0;  // messages in this batch chunk
};

/// Serialized size of one StreamMessage in the slot wire format
/// (kind u8 + weight u32 + trace_id u64 + trace_ns u64 + len u32 + bytes).
size_t ShmEncodedMessageSize(const StreamMessage& message);

/// Appends `message` to `out` in the slot wire format.
void ShmEncodeMessage(const StreamMessage& message, ByteBuffer* out);

/// Decodes `count` messages from `bytes` into `out->items` (appending).
/// Bounds-checked everywhere: returns false on any truncation or overrun,
/// which the ring treats as a torn slot. Never crashes on garbage.
bool ShmDecodeBatch(ByteSpan bytes, uint32_t count, StreamBatch* out);

/// Total segment bytes for a ring of `slot_count` slots.
size_t ShmRingSegmentSize(size_t slot_count, size_t slot_bytes);

}  // namespace gigascope::rts

#endif  // GIGASCOPE_RTS_SHM_H_
