#include "rts/node.h"

namespace gigascope::rts {

// QueryNode is an abstract base; concrete operators live in src/ops.

}  // namespace gigascope::rts
