#include "rts/node.h"

#include "telemetry/metric_names.h"

namespace gigascope::rts {

namespace metric = telemetry::metric;

size_t QueryNode::PollCounted(size_t budget) {
  const int64_t start_ns = telemetry::MonotonicNowNs();
  size_t processed = Poll(budget);
  if (processed > 0) {
    ++busy_polls_;
    const int64_t dur_ns = telemetry::MonotonicNowNs() - start_ns;
    if (dur_ns > 0) {
      poll_ns_.Record(static_cast<uint64_t>(dur_ns));
      tuple_ns_.Record(static_cast<uint64_t>(dur_ns) / processed);
    }
  }
  return processed;
}

void QueryNode::RegisterTelemetry(telemetry::Registry* metrics) const {
  metrics->Register(name_, metric::kTuplesIn, &tuples_in_);
  metrics->Register(name_, metric::kTuplesOut, &tuples_out_);
  metrics->Register(name_, metric::kEvalErrors, &eval_errors_);
  metrics->Register(name_, metric::kBusyPolls, &busy_polls_);
  metrics->Register(name_, metric::kTraceTruncated, &trace_truncated_);
  metrics->RegisterHistogram(name_, metric::kPollNs, &poll_ns_);
  metrics->RegisterHistogram(name_, metric::kTupleNs, &tuple_ns_);
  if (terminal_) {
    metrics->RegisterHistogram(name_, metric::kE2eLatencyNs, &e2e_ns_);
  }
  for (size_t i = 0; i < inputs_.size(); ++i) {
    std::string prefix = inputs_.size() == 1
                             ? metric::kRingPrefix
                             : metric::kRingPrefix + std::to_string(i);
    // The closures share ownership of the channel: a registry snapshot
    // stays safe even if the subscription is dropped before the registry.
    Subscription channel = inputs_[i];
    metrics->RegisterReader(name_, prefix + metric::kRingPushedSuffix,
                            [channel] { return channel->pushed(); });
    metrics->RegisterReader(name_, prefix + metric::kRingPoppedSuffix,
                            [channel] { return channel->popped(); });
    metrics->RegisterReader(name_, prefix + metric::kRingDroppedSuffix,
                            [channel] { return channel->dropped(); });
    metrics->RegisterReader(name_, prefix + metric::kRingSizeSuffix,
                            [channel] {
                              return static_cast<uint64_t>(channel->size());
                            });
    metrics->RegisterReader(
        name_, prefix + metric::kRingHighWaterSuffix, [channel] {
          return static_cast<uint64_t>(channel->high_water_mark());
        });
    metrics->RegisterHistogram(
        name_, prefix + metric::kRingOccupancySuffix,
        [channel] { return channel->occupancy_histogram().Snapshot(); });
    metrics->RegisterHistogram(
        name_, prefix + metric::kRingBatchSizeSuffix,
        [channel] { return channel->batch_size_histogram().Snapshot(); });
  }
}

}  // namespace gigascope::rts
