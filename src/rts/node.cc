#include "rts/node.h"

namespace gigascope::rts {

void QueryNode::RegisterTelemetry(telemetry::Registry* metrics) const {
  metrics->Register(name_, "tuples_in", &tuples_in_);
  metrics->Register(name_, "tuples_out", &tuples_out_);
  metrics->Register(name_, "eval_errors", &eval_errors_);
  metrics->Register(name_, "busy_polls", &busy_polls_);
  for (size_t i = 0; i < inputs_.size(); ++i) {
    std::string prefix =
        inputs_.size() == 1 ? "ring" : "ring" + std::to_string(i);
    // The closures share ownership of the channel: a registry snapshot
    // stays safe even if the subscription is dropped before the registry.
    Subscription channel = inputs_[i];
    metrics->RegisterReader(name_, prefix + "_pushed",
                            [channel] { return channel->pushed(); });
    metrics->RegisterReader(name_, prefix + "_popped",
                            [channel] { return channel->popped(); });
    metrics->RegisterReader(name_, prefix + "_dropped",
                            [channel] { return channel->dropped(); });
    metrics->RegisterReader(name_, prefix + "_size", [channel] {
      return static_cast<uint64_t>(channel->size());
    });
    metrics->RegisterReader(name_, prefix + "_high_water", [channel] {
      return static_cast<uint64_t>(channel->high_water_mark());
    });
  }
}

}  // namespace gigascope::rts
