#ifndef GIGASCOPE_RTS_RING_H_
#define GIGASCOPE_RTS_RING_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "rts/shm.h"
#include "rts/tuple.h"
#include "telemetry/counter.h"
#include "telemetry/histogram.h"

namespace gigascope::rts {

/// Wakes a parked consumer thread when a producer pushes work into one of
/// the consumer's channels. A `signal` flag latches wake-ups that arrive
/// between the consumer's last poll and its park, so no wake-up is lost;
/// Park additionally bounds the sleep with a timeout, so even a missed
/// notification only delays the consumer, never deadlocks it.
class ConsumerWaker {
 public:
  /// Consumer side: sleep until Wake() or `timeout`. Returns immediately
  /// if a wake-up arrived since the previous Park.
  void Park(std::chrono::microseconds timeout);

  /// Producer side: wake the parked (or about-to-park) consumer.
  void Wake();

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  std::atomic<bool> signal_{false};  // latched wake-up
  std::atomic<bool> parked_{false};  // consumer is inside Park
};

/// A bounded channel between query nodes, standing in for the paper's
/// shared-memory segments. Pushing to a full channel fails; the producer
/// decides whether to drop (and the channel counts it) — per §4/§5, lightly
/// processed tuples drop before highly processed ones, so drops happen as
/// early in the chain as possible. Punctuations are the exception: they
/// carry ordering guarantees downstream operators block on, so PushOrDrop
/// never discards one — it parks the punctuation producer-side and rides it
/// on the next push that fits (safe because a punctuation's bound still
/// holds after later tuples, and a newer punctuation supersedes an older
/// one: bounds are non-decreasing).
///
/// Each slot carries a StreamBatch — tuples plus at most one trailing
/// punctuation — so one push/pop pair amortizes the synchronization cost
/// over the whole batch. Message-level TryPush/TryPop overloads wrap the
/// batch API (singleton batches in; a consumer-side staging batch out) for
/// callers that still speak one message at a time.
///
/// Lock-free single-producer/single-consumer ring: a fixed power-of-two
/// slot array indexed by free-running head (producer) and tail (consumer)
/// counters with acquire/release ordering. The engine guarantees the SPSC
/// contract by giving every channel exactly one publishing node (or the
/// inject thread, for source streams) and exactly one consuming node, each
/// owned by a single thread. Counters are exact in any quiesced state:
/// pushed == popped + queued messages, and drops are counted on this
/// channel only. pushed/popped/dropped count messages; size(), capacity()
/// and the high-water mark count slots (batches).
///
/// Two slot backends share the protocol:
///
///  - Heap (default): slots are a std::vector<StreamBatch>; batches move
///    through without serialization. Producer and consumer must share an
///    address space (threads of one process).
///  - Shared memory (ShmRingOptions::enabled): head/tail/counters and the
///    slots live in a fork-inherited ShmSegment; batches serialize into a
///    fixed per-slot payload region of the segment's arena (offset-based,
///    nothing heap-pointed crosses the boundary). This is the paper's §4
///    process split: producer and consumer may be different processes.
///    Each slot carries a publication sequence stamp that the consumer
///    validates before touching the payload, so a slot half-written at
///    producer death is detected (counted `torn`) and skipped instead of
///    delivered as garbage. Batches larger than one slot's region split
///    across slots; a single message too big for a slot is dropped and
///    counted (`oversize_dropped`).
///
/// Crash recovery: after a consumer process is restarted (or its nodes are
/// adopted by another process), BeginResync() arms a consumer-side gate
/// that discards tuples until the next punctuation — the restarted
/// operator must not fold tuples from a window whose prefix died with the
/// old incarnation. The discarded span is counted (`resync_dropped`) and
/// ends, by construction, at a punctuation boundary.
class RingChannel {
 public:
  explicit RingChannel(size_t capacity)
      : RingChannel(capacity, ShmRingOptions{}) {}
  RingChannel(size_t capacity, const ShmRingOptions& shm);
  RingChannel(const RingChannel&) = delete;
  RingChannel& operator=(const RingChannel&) = delete;

  /// Enqueues a batch; false when full. Producer-side only. On failure the
  /// batch is NOT consumed — the caller still owns its contents and may
  /// retry with the same object (no re-send of a moved-from shell). An
  /// empty batch is accepted as a no-op. (Shm backend: a batch needing N
  /// slots fails atomically when fewer than N are free.)
  bool TryPush(StreamBatch&& batch);

  /// Message-level compatibility: enqueues a singleton batch. Same
  /// no-consume contract — on failure `message` still holds its payload.
  bool TryPush(StreamMessage&& message);
  bool TryPush(const StreamMessage& message);

  /// Enqueues, or drops the batch's tuples and records them as drops;
  /// returns whether the batch was enqueued. A trailing punctuation is
  /// never dropped: on failure it is parked and attached to the next
  /// push (see class comment). Consumes the batch either way.
  /// Producer-side only.
  bool PushOrDrop(StreamBatch&& batch);
  bool PushOrDrop(StreamMessage message);

  /// Retries a parked punctuation (pushes it as its own batch). Returns
  /// true when nothing remains parked. Producer-side only.
  bool FlushParked();

  /// Whether a punctuation is parked waiting for ring space. Producer-side
  /// only (the parked message lives outside the slots).
  bool has_parked() const { return parked_punct_.has_value(); }

  /// Dequeues a whole batch; false when empty. Consumer-side only. If a
  /// previous message-level TryPop left part of a batch staged, the staged
  /// remainder is returned first so the two pop APIs interleave in FIFO
  /// order.
  bool TryPop(StreamBatch* out);

  /// Message-level compatibility: dequeues the next message, staging the
  /// rest of its batch for subsequent calls. Consumer-side only.
  bool TryPop(StreamMessage* out);

  /// Arms the post-restart resync gate: subsequent pops discard tuples
  /// (counting them as resync_dropped) until the first punctuation, which
  /// is delivered and disarms the gate. The gap is also bounded by
  /// position: the head at arming marks the end of the dead incarnation's
  /// in-flight span, and the gate disarms there even if that span carried
  /// no punctuation — anything pushed after adoption (a seal-time upstream
  /// flush, new live data) is beyond the lost prefix and must be
  /// delivered, or a punctuation-free residue would gate out the entire
  /// remaining output. Consumer-side only; call before the new consumer
  /// incarnation starts polling. Also discards any staged remainder (it
  /// belonged to the dead incarnation's batch).
  void BeginResync();
  bool resync_pending() const { return resync_; }

  /// Fault injection (tests, gsrun --fault=torn:...): corrupt the sequence
  /// stamp of the `nth` slot this producer publishes from now on (1-based),
  /// once. Shm backend only (the heap backend hands over objects, there is
  /// no serialized form to tear). Producer-side only, arm before the
  /// producer starts.
  void ArmTornFault(uint64_t nth);

  /// Occupied slots (batches). Exact when quiesced; a point-in-time
  /// estimate while the producer and consumer are running. Does not count
  /// the consumer's staged remainder.
  size_t size() const;
  size_t capacity() const { return capacity_; }
  uint64_t pushed() const {
    return ctrl_ != nullptr ? ctrl_->pushed.load(std::memory_order_relaxed)
                            : pushed_.value();
  }
  uint64_t popped() const {
    return ctrl_ != nullptr ? ctrl_->popped.load(std::memory_order_relaxed)
                            : popped_.value();
  }
  uint64_t dropped() const {
    return ctrl_ != nullptr ? ctrl_->dropped.load(std::memory_order_relaxed)
                            : dropped_.value();
  }
  /// Slots that failed consumer-side validation (half-written at producer
  /// death, or torn by fault injection); skipped, never delivered.
  uint64_t torn() const {
    return ctrl_ != nullptr ? ctrl_->torn.load(std::memory_order_relaxed) : 0;
  }
  /// Tuples discarded by the resync gate since construction.
  uint64_t resync_dropped() const {
    return ctrl_ != nullptr
               ? ctrl_->resync_dropped.load(std::memory_order_relaxed)
               : resync_dropped_.value();
  }
  /// Messages too large for a shm slot, dropped at push.
  uint64_t oversize_dropped() const {
    return ctrl_ != nullptr
               ? ctrl_->oversize_dropped.load(std::memory_order_relaxed)
               : 0;
  }

  /// Whether the slots live in fork-inherited shared memory.
  bool is_shm() const { return ctrl_ != nullptr; }

  /// Highest slot occupancy observed (for the E4 heartbeat experiment).
  size_t high_water_mark() const {
    return ctrl_ != nullptr
               ? static_cast<size_t>(
                     ctrl_->high_water.load(std::memory_order_relaxed))
               : static_cast<size_t>(high_water_.value());
  }

  /// Occupancy distribution, one sample per successful push (so the
  /// histogram shows how deep the queue usually runs, not just the
  /// high-water spike). Producer is the single writer; snapshot from any
  /// thread. (Histograms are per-process heap state: with a child-process
  /// producer they reflect only this process's pushes.)
  const telemetry::Histogram& occupancy_histogram() const {
    return occupancy_;
  }

  /// Messages per pushed batch — how well the data plane is amortizing
  /// the per-slot handoff. Producer-written; snapshot from any thread.
  const telemetry::Histogram& batch_size_histogram() const {
    return batch_size_;
  }

  /// Installs the consumer's waker: successful pushes call Wake() so a
  /// parked consumer resumes promptly (tuples and punctuations alike —
  /// punctuations are what un-idle blocked operators, §3). Must be called
  /// while no producer is running (the engine wires wakers before starting
  /// its worker pool). Same-process pump modes only — a cross-process
  /// consumer polls instead (the waker's mutex cannot cross fork).
  void SetWaker(std::shared_ptr<ConsumerWaker> waker) {
    waker_ = std::move(waker);
  }

 private:
  /// Pops the next slot into `out` (bypassing the staging batch), applying
  /// the resync gate; loops past torn or fully-discarded slots.
  bool PopSlot(StreamBatch* out);
  /// Backend slot pops without the resync gate; `out` must arrive empty.
  bool HeapPopSlotRaw(StreamBatch* out);
  bool ShmPopSlotRaw(StreamBatch* out);
  bool ShmTryPush(StreamBatch&& batch);
  /// Drops leading tuples until the first punctuation while the resync
  /// gate is armed; disarms on the punctuation.
  void ApplyResyncGate(StreamBatch* out);
  void CountDropped(size_t messages);
  /// Producer-side accounting shared by both backends.
  void RecordPush(size_t messages, size_t occupancy);
  size_t ArenaOffset(size_t slot_index) const {
    return arena_base_ + slot_index * shm_slot_bytes_;
  }

  const size_t capacity_;  // logical capacity (exact, any value >= 1)
  const size_t mask_;      // slot_count - 1; slot_count is a power of 2
  std::vector<StreamBatch> slots_;  // heap backend only

  // Shm backend: the segment holds [ShmRingControl][ShmSlot...][arena].
  std::unique_ptr<ShmSegment> shm_;
  ShmRingControl* ctrl_ = nullptr;
  ShmSlot* shm_slots_ = nullptr;
  size_t shm_slot_bytes_ = 0;
  size_t arena_base_ = 0;
  ByteBuffer push_scratch_;  // producer-side serialization buffer

  // Free-running counters; slot index is counter & mask_. The shm backend
  // uses ctrl_->head/tail instead (shared across processes).
  alignas(64) std::atomic<uint64_t> head_{0};  // next slot to push
  alignas(64) std::atomic<uint64_t> tail_{0};  // next slot to pop
  // Producer-local cache of tail (avoids loading the consumer's cache
  // line until the ring looks full); consumer-local cache of head.
  alignas(64) uint64_t cached_tail_ = 0;
  alignas(64) uint64_t cached_head_ = 0;

  // Producer-side only: a punctuation whose batch could not be pushed,
  // waiting to ride the next successful push (never dropped). Heap state:
  // a producer process that dies loses its parked punctuation — the gap
  // closes at the next punctuation (bounds supersede), within the same
  // resync window the crash already opened.
  std::optional<StreamMessage> parked_punct_;

  // Consumer-side only: remainder of a batch being drained one message at
  // a time by the message-level TryPop.
  StreamBatch staged_;
  size_t staged_index_ = 0;
  // Consumer-side: the post-restart resync gate (see BeginResync).
  // resync_end_ is the head position at arming: slots at or past it were
  // pushed after the handoff and end the gap unconditionally.
  bool resync_ = false;
  uint64_t resync_end_ = 0;

  // Producer-side: fault injection. slot_pubs_ counts slots published;
  // when it reaches torn_arm_ the slot's seq stamp is corrupted.
  uint64_t torn_arm_ = 0;
  uint64_t slot_pubs_ = 0;

  // Stats: telemetry counters so `micro_ring`, the engine's `gs_stats`
  // stream, and direct accessors all report from one source of truth.
  // Each counter has a single writer (producer or consumer). The shm
  // backend keeps these in ShmRingControl instead, so a parent-side
  // gs_stats snapshot sees child-side progress; the accessors branch.
  telemetry::Counter pushed_;
  telemetry::Counter popped_;
  telemetry::Counter dropped_;
  telemetry::Counter high_water_;
  telemetry::Counter resync_dropped_;
  telemetry::Histogram occupancy_;   // producer-written, see TryPush
  telemetry::Histogram batch_size_;  // producer-written, messages per push

  std::shared_ptr<ConsumerWaker> waker_;
};

}  // namespace gigascope::rts

#endif  // GIGASCOPE_RTS_RING_H_
