#ifndef GIGASCOPE_RTS_RING_H_
#define GIGASCOPE_RTS_RING_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "rts/tuple.h"
#include "telemetry/counter.h"
#include "telemetry/histogram.h"

namespace gigascope::rts {

/// Wakes a parked consumer thread when a producer pushes work into one of
/// the consumer's channels. A `signal` flag latches wake-ups that arrive
/// between the consumer's last poll and its park, so no wake-up is lost;
/// Park additionally bounds the sleep with a timeout, so even a missed
/// notification only delays the consumer, never deadlocks it.
class ConsumerWaker {
 public:
  /// Consumer side: sleep until Wake() or `timeout`. Returns immediately
  /// if a wake-up arrived since the previous Park.
  void Park(std::chrono::microseconds timeout);

  /// Producer side: wake the parked (or about-to-park) consumer.
  void Wake();

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  std::atomic<bool> signal_{false};  // latched wake-up
  std::atomic<bool> parked_{false};  // consumer is inside Park
};

/// A bounded channel between query nodes, standing in for the paper's
/// shared-memory segments. Pushing to a full channel fails; the producer
/// decides whether to drop (and the channel counts it) — per §4/§5, lightly
/// processed tuples drop before highly processed ones, so drops happen as
/// early in the chain as possible.
///
/// Lock-free single-producer/single-consumer ring: a fixed power-of-two
/// slot array indexed by free-running head (producer) and tail (consumer)
/// counters with acquire/release ordering. The engine guarantees the SPSC
/// contract by giving every channel exactly one publishing node (or the
/// inject thread, for source streams) and exactly one consuming node, each
/// owned by a single thread. Counters are exact in any quiesced state:
/// pushed == popped + size, and drops are counted on this channel only.
class RingChannel {
 public:
  explicit RingChannel(size_t capacity);
  RingChannel(const RingChannel&) = delete;
  RingChannel& operator=(const RingChannel&) = delete;

  /// Enqueues; false when full. Producer-side only. The by-value argument
  /// is consumed even on failure — retry loops must pass a copy.
  bool TryPush(StreamMessage message);

  /// Enqueues or records a drop; returns whether it was enqueued.
  /// Producer-side only.
  bool PushOrDrop(StreamMessage message);

  /// Dequeues; false when empty. Consumer-side only.
  bool TryPop(StreamMessage* out);

  /// Occupancy. Exact when quiesced; a point-in-time estimate while the
  /// producer and consumer are running.
  size_t size() const;
  size_t capacity() const { return capacity_; }
  uint64_t pushed() const { return pushed_.value(); }
  uint64_t popped() const { return popped_.value(); }
  uint64_t dropped() const { return dropped_.value(); }

  /// Highest occupancy observed (for the E4 heartbeat experiment).
  size_t high_water_mark() const {
    return static_cast<size_t>(high_water_.value());
  }

  /// Occupancy distribution, one sample per successful push (so the
  /// histogram shows how deep the queue usually runs, not just the
  /// high-water spike). Producer is the single writer; snapshot from any
  /// thread.
  const telemetry::Histogram& occupancy_histogram() const {
    return occupancy_;
  }

  /// Installs the consumer's waker: successful pushes call Wake() so a
  /// parked consumer resumes promptly (tuples and punctuations alike —
  /// punctuations are what un-idle blocked operators, §3). Must be called
  /// while no producer is running (the engine wires wakers before starting
  /// its worker pool).
  void SetWaker(std::shared_ptr<ConsumerWaker> waker) {
    waker_ = std::move(waker);
  }

 private:
  const size_t capacity_;  // logical capacity (exact, any value >= 1)
  const size_t mask_;      // slots_.size() - 1; slots_.size() is a power of 2
  std::vector<StreamMessage> slots_;

  // Free-running counters; slot index is counter & mask_.
  alignas(64) std::atomic<uint64_t> head_{0};  // next slot to push
  alignas(64) std::atomic<uint64_t> tail_{0};  // next slot to pop
  // Producer-local cache of tail_ (avoids loading the consumer's cache
  // line until the ring looks full); consumer-local cache of head_.
  alignas(64) uint64_t cached_tail_ = 0;
  alignas(64) uint64_t cached_head_ = 0;

  // Stats: telemetry counters so `micro_ring`, the engine's `gs_stats`
  // stream, and direct accessors all report from one source of truth.
  // Each counter has a single writer (producer or consumer).
  telemetry::Counter pushed_;
  telemetry::Counter popped_;
  telemetry::Counter dropped_;
  telemetry::Counter high_water_;
  telemetry::Histogram occupancy_;  // producer-written, see TryPush

  std::shared_ptr<ConsumerWaker> waker_;
};

}  // namespace gigascope::rts

#endif  // GIGASCOPE_RTS_RING_H_
