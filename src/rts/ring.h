#ifndef GIGASCOPE_RTS_RING_H_
#define GIGASCOPE_RTS_RING_H_

#include <cstdint>
#include <deque>
#include <mutex>

#include "rts/tuple.h"

namespace gigascope::rts {

/// A bounded channel between query nodes, standing in for the paper's
/// shared-memory segments. Pushing to a full channel fails; the producer
/// decides whether to drop (and the channel counts it) — per §4/§5, lightly
/// processed tuples drop before highly processed ones, so drops happen as
/// early in the chain as possible.
///
/// Thread-safe (coarse mutex); the default engine drives all nodes from one
/// pump loop, but benchmarks and applications may pump from worker threads.
class RingChannel {
 public:
  explicit RingChannel(size_t capacity);
  RingChannel(const RingChannel&) = delete;
  RingChannel& operator=(const RingChannel&) = delete;

  /// Enqueues; false when full (message untouched).
  bool TryPush(StreamMessage message);

  /// Enqueues or records a drop; returns whether it was enqueued.
  bool PushOrDrop(StreamMessage message);

  /// Dequeues; false when empty.
  bool TryPop(StreamMessage* out);

  size_t size() const;
  size_t capacity() const { return capacity_; }
  uint64_t pushed() const;
  uint64_t popped() const;
  uint64_t dropped() const;

  /// Highest occupancy observed (for the E4 heartbeat experiment).
  size_t high_water_mark() const;

 private:
  const size_t capacity_;
  mutable std::mutex mutex_;
  std::deque<StreamMessage> queue_;
  uint64_t pushed_ = 0;
  uint64_t popped_ = 0;
  uint64_t dropped_ = 0;
  size_t high_water_ = 0;
};

}  // namespace gigascope::rts

#endif  // GIGASCOPE_RTS_RING_H_
