#include "rts/tuple.h"

#include "common/logging.h"

namespace gigascope::rts {

using expr::Value;
using gsql::DataType;

TupleCodec::TupleCodec(const gsql::StreamSchema& schema) : schema_(schema) {}

void TupleCodec::Encode(const Row& row, ByteBuffer* out) const {
  GS_CHECK(row.size() == schema_.num_fields());
  ByteWriter writer(out);
  for (size_t f = 0; f < row.size(); ++f) {
    const Value& value = row[f];
    GS_CHECK(value.type() == schema_.field(f).type);
    switch (value.type()) {
      case DataType::kBool:
        writer.PutU8(value.bool_value() ? 1 : 0);
        break;
      case DataType::kInt:
        writer.PutU64Le(static_cast<uint64_t>(value.int_value()));
        break;
      case DataType::kUint:
        writer.PutU64Le(value.uint_value());
        break;
      case DataType::kFloat: {
        uint64_t bits;
        double d = value.float_value();
        std::memcpy(&bits, &d, sizeof(bits));
        writer.PutU64Le(bits);
        break;
      }
      case DataType::kIp:
        writer.PutU32Le(value.ip_value());
        break;
      case DataType::kString: {
        const std::string& s = value.string_value();
        writer.PutU32Le(static_cast<uint32_t>(s.size()));
        writer.PutBytes(s.data(), s.size());
        break;
      }
    }
  }
}

Result<Row> TupleCodec::Decode(ByteSpan bytes) const {
  ByteReader reader(bytes);
  Row row;
  row.reserve(schema_.num_fields());
  for (size_t f = 0; f < schema_.num_fields(); ++f) {
    switch (schema_.field(f).type) {
      case DataType::kBool: {
        uint8_t v;
        if (!reader.GetU8(&v)) {
          return Status::ParseError("truncated tuple (bool field)");
        }
        row.push_back(Value::Bool(v != 0));
        break;
      }
      case DataType::kInt: {
        uint64_t v;
        if (!reader.GetU64Le(&v)) {
          return Status::ParseError("truncated tuple (int field)");
        }
        row.push_back(Value::Int(static_cast<int64_t>(v)));
        break;
      }
      case DataType::kUint: {
        uint64_t v;
        if (!reader.GetU64Le(&v)) {
          return Status::ParseError("truncated tuple (uint field)");
        }
        row.push_back(Value::Uint(v));
        break;
      }
      case DataType::kFloat: {
        uint64_t bits;
        if (!reader.GetU64Le(&bits)) {
          return Status::ParseError("truncated tuple (float field)");
        }
        double d;
        std::memcpy(&d, &bits, sizeof(d));
        row.push_back(Value::Float(d));
        break;
      }
      case DataType::kIp: {
        uint32_t v;
        if (!reader.GetU32Le(&v)) {
          return Status::ParseError("truncated tuple (ip field)");
        }
        row.push_back(Value::Ip(v));
        break;
      }
      case DataType::kString: {
        uint32_t len;
        if (!reader.GetU32Le(&len) || reader.remaining() < len) {
          return Status::ParseError("truncated tuple (string field)");
        }
        std::string s(reinterpret_cast<const char*>(reader.Rest().data()),
                      len);
        reader.Skip(len);
        row.push_back(Value::String(std::move(s)));
        break;
      }
    }
  }
  if (reader.remaining() != 0) {
    return Status::ParseError("tuple has trailing bytes");
  }
  return row;
}

std::optional<size_t> TupleCodec::FixedTypeWidth(gsql::DataType type) {
  switch (type) {
    case DataType::kBool: return 1;
    case DataType::kInt:
    case DataType::kUint:
    case DataType::kFloat: return 8;
    case DataType::kIp: return 4;
    case DataType::kString: return std::nullopt;
  }
  return std::nullopt;
}

std::optional<size_t> TupleCodec::FixedFieldOffset(size_t field) const {
  if (field >= schema_.num_fields()) return std::nullopt;
  size_t offset = 0;
  for (size_t f = 0; f < field; ++f) {
    std::optional<size_t> width = FixedTypeWidth(schema_.field(f).type);
    if (!width.has_value()) return std::nullopt;  // variable-width prefix
    offset += *width;
  }
  return offset;
}

size_t TupleCodec::EncodedSize(const Row& row) const {
  size_t size = 0;
  for (size_t f = 0; f < row.size(); ++f) {
    switch (schema_.field(f).type) {
      case DataType::kBool: size += 1; break;
      case DataType::kInt:
      case DataType::kUint:
      case DataType::kFloat: size += 8; break;
      case DataType::kIp: size += 4; break;
      case DataType::kString:
        size += 4 + row[f].string_value().size();
        break;
    }
  }
  return size;
}

}  // namespace gigascope::rts
