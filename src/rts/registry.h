#ifndef GIGASCOPE_RTS_REGISTRY_H_
#define GIGASCOPE_RTS_REGISTRY_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "gsql/schema.h"
#include "rts/ring.h"

namespace gigascope::rts {

/// A subscriber's end of a stream: its private bounded channel.
using Subscription = std::shared_ptr<RingChannel>;

/// The stream manager's registry (§3): query nodes register the streams
/// they produce; consumers subscribe by name and receive a channel handle.
/// Publication fans out to every subscriber's channel; a slow subscriber
/// drops on its own channel without affecting others (the stream manager
/// "does not track the connection further").
class StreamRegistry {
 public:
  StreamRegistry() = default;

  /// Channel backend for every subscription created after this call: with
  /// options.enabled, Subscribe hands out shm-backed rings whose slots
  /// live in fork-inherited shared memory (multi-process HFTA mode). Set
  /// once, before queries are added — rings created earlier keep their
  /// backend.
  void SetChannelOptions(const ShmRingOptions& options) {
    channel_options_ = options;
  }
  const ShmRingOptions& channel_options() const { return channel_options_; }

  /// Declares (or re-declares) a stream and its schema.
  Status DeclareStream(const gsql::StreamSchema& schema);

  bool HasStream(const std::string& name) const;

  Result<gsql::StreamSchema> GetSchema(const std::string& name) const;

  /// Subscribes to a stream; the returned channel receives every message
  /// published after this call. `capacity` bounds the subscriber's buffer.
  /// `local` forces a heap-backed ring even when SetChannelOptions chose
  /// shm — for subscriptions whose producer and consumer provably share
  /// the parent process (e.g. source→LFTA rings in multi-process mode),
  /// which would otherwise pay serialization for a boundary never crossed.
  Result<Subscription> Subscribe(const std::string& name, size_t capacity,
                                 bool local = false);

  /// Publishes a message to all subscribers. Returns the number of
  /// subscribers that accepted it (others counted drops).
  size_t Publish(const std::string& name, const StreamMessage& message);

  /// Publishes a whole batch to all subscribers (copied per subscriber,
  /// moved to the last). Returns the number of subscribers that accepted
  /// it; the ring parks a trailing punctuation instead of dropping it.
  size_t PublishBatch(const std::string& name, StreamBatch&& batch);

  /// Retries every parked punctuation across all subscriber channels.
  /// Returns how many were delivered by this call — callers loop
  /// `while (FlushParkedPunctuations() > 0) <drain consumers>;` which
  /// terminates once no further progress is possible (e.g. a full channel
  /// nobody is consuming). Must run on the publishing thread (the parked
  /// message is producer-side state), i.e. single-threaded pump only.
  size_t FlushParkedPunctuations();

  /// Same, restricted to the subscriber channels of one stream — the
  /// multi-process engine uses this so each process only retries parked
  /// punctuations on rings it produces into (parked messages are
  /// producer-side heap state; touching another process's rings would
  /// add a second producer).
  size_t FlushParkedPunctuations(const std::string& name);

  /// The subscriber channels of `name` (empty when unknown). Setup-time
  /// and fault-injection plumbing; the channels themselves remain
  /// single-producer/single-consumer.
  std::vector<Subscription> Subscribers(const std::string& name) const;

  std::vector<std::string> StreamNames() const;

  /// Total drops across all subscriber channels of `name`.
  uint64_t TotalDrops(const std::string& name) const;

  /// Total drops across every subscriber channel of every stream. Safe to
  /// call concurrently with publishes (reads atomic ring counters; streams
  /// themselves are only added during setup).
  uint64_t TotalDropsAll() const;

  /// Occupancy (size/capacity) of the fullest subscriber channel across all
  /// streams, in [0, 1]. The overload controller's ring-pressure signal.
  double MaxOccupancyFraction() const;

  /// Shm-ring health counters summed across every subscriber channel
  /// (all zero for heap rings). Safe concurrent with pushes, like
  /// TotalDropsAll.
  uint64_t TotalTornAll() const;
  uint64_t TotalResyncDroppedAll() const;
  uint64_t TotalOversizeDroppedAll() const;

 private:
  struct StreamEntry {
    gsql::StreamSchema schema;
    std::vector<Subscription> subscribers;
  };
  std::map<std::string, StreamEntry> streams_;
  ShmRingOptions channel_options_;
};

/// Producer-side accumulator for a node's output stream: operators append
/// messages and the writer publishes them as batches. A batch flushes when
/// it reaches `max_batch` messages or when a punctuation closes it (the
/// batch invariant: punctuation only at the tail); the owning operator
/// calls Flush() at the end of every Poll so no output outlives the poll
/// round that produced it.
class BatchWriter {
 public:
  BatchWriter(StreamRegistry* registry, std::string stream, size_t max_batch)
      : registry_(registry),
        stream_(std::move(stream)),
        max_batch_(max_batch == 0 ? 1 : max_batch) {}

  void Write(StreamMessage&& message) {
    const bool punctuation =
        message.kind == StreamMessage::Kind::kPunctuation;
    open_.items.push_back(std::move(message));
    if (punctuation || open_.items.size() >= max_batch_) Flush();
  }

  void Flush() {
    if (open_.items.empty()) return;
    registry_->PublishBatch(stream_, std::move(open_));
    open_.items.clear();
  }

 private:
  StreamRegistry* registry_;
  std::string stream_;
  size_t max_batch_;
  StreamBatch open_;
};

}  // namespace gigascope::rts

#endif  // GIGASCOPE_RTS_REGISTRY_H_
