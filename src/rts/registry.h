#ifndef GIGASCOPE_RTS_REGISTRY_H_
#define GIGASCOPE_RTS_REGISTRY_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "gsql/schema.h"
#include "rts/ring.h"

namespace gigascope::rts {

/// A subscriber's end of a stream: its private bounded channel.
using Subscription = std::shared_ptr<RingChannel>;

/// The stream manager's registry (§3): query nodes register the streams
/// they produce; consumers subscribe by name and receive a channel handle.
/// Publication fans out to every subscriber's channel; a slow subscriber
/// drops on its own channel without affecting others (the stream manager
/// "does not track the connection further").
class StreamRegistry {
 public:
  StreamRegistry() = default;

  /// Declares (or re-declares) a stream and its schema.
  Status DeclareStream(const gsql::StreamSchema& schema);

  bool HasStream(const std::string& name) const;

  Result<gsql::StreamSchema> GetSchema(const std::string& name) const;

  /// Subscribes to a stream; the returned channel receives every message
  /// published after this call. `capacity` bounds the subscriber's buffer.
  Result<Subscription> Subscribe(const std::string& name, size_t capacity);

  /// Publishes a message to all subscribers. Returns the number of
  /// subscribers that accepted it (others counted drops).
  size_t Publish(const std::string& name, const StreamMessage& message);

  std::vector<std::string> StreamNames() const;

  /// Total drops across all subscriber channels of `name`.
  uint64_t TotalDrops(const std::string& name) const;

 private:
  struct StreamEntry {
    gsql::StreamSchema schema;
    std::vector<Subscription> subscribers;
  };
  std::map<std::string, StreamEntry> streams_;
};

}  // namespace gigascope::rts

#endif  // GIGASCOPE_RTS_REGISTRY_H_
