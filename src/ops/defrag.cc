#include "ops/defrag.h"

#include <algorithm>

#include "common/logging.h"
#include "telemetry/metric_names.h"

namespace gigascope::ops {

using expr::Value;
using gsql::DataType;
using gsql::FieldDef;
using gsql::OrderSpec;
using gsql::StreamKind;
using gsql::StreamSchema;

StreamSchema IpDefragNode::OutputSchema(const std::string& name) {
  std::vector<FieldDef> fields;
  fields.push_back({"time", DataType::kUint, OrderSpec::Increasing()});
  fields.push_back({"srcIP", DataType::kIp, OrderSpec::None()});
  fields.push_back({"destIP", DataType::kIp, OrderSpec::None()});
  fields.push_back({"protocol", DataType::kUint, OrderSpec::None()});
  fields.push_back({"datagram", DataType::kString, OrderSpec::None()});
  return StreamSchema(name, StreamKind::kStream, fields);
}

Result<std::unique_ptr<IpDefragNode>> IpDefragNode::Create(
    Spec spec, rts::Subscription input, rts::StreamRegistry* registry) {
  FieldSlots slots;
  struct Need {
    const char* name;
    size_t* slot;
  };
  const Need needs[] = {
      {"time", &slots.time},           {"srcIP", &slots.src},
      {"destIP", &slots.dst},          {"protocol", &slots.proto},
      {"ipId", &slots.ip_id},          {"fragOffset", &slots.frag_offset},
      {"moreFrags", &slots.more_frags}, {"ipPayload", &slots.payload},
  };
  for (const Need& need : needs) {
    auto index = spec.input_schema.FieldIndex(need.name);
    if (!index.has_value()) {
      return Status::InvalidArgument(
          std::string("defrag input schema lacks required field '") +
          need.name + "'");
    }
    *need.slot = *index;
  }
  GS_RETURN_IF_ERROR(registry->DeclareStream(OutputSchema(spec.name)));
  return std::unique_ptr<IpDefragNode>(
      new IpDefragNode(std::move(spec), slots, std::move(input), registry));
}

IpDefragNode::IpDefragNode(Spec spec, FieldSlots slots,
                           rts::Subscription input,
                           rts::StreamRegistry* registry)
    : QueryNode(spec.name),
      spec_(std::move(spec)),
      slots_(slots),
      input_(std::move(input)),
      registry_(registry),
      input_codec_(spec_.input_schema),
      output_codec_(OutputSchema(spec_.name)) {
  RegisterInput(input_);
}

size_t IpDefragNode::Poll(size_t budget) {
  size_t processed = 0;
  rts::StreamBatch batch;
  while (processed < budget && input_->TryPop(&batch)) {
    for (rts::StreamMessage& message : batch.items) {
      ++processed;
      // Punctuations carry no fragment data; reassembly state is bounded by
      // the timeout instead.
      if (message.kind != rts::StreamMessage::Kind::kTuple) continue;
      ProcessTuple(message.payload);
    }
  }
  return processed;
}

void IpDefragNode::ProcessTuple(const ByteBuffer& payload) {
  ++tuples_in_;
  auto row = input_codec_.Decode(ByteSpan(payload.data(), payload.size()));
  if (!row.ok()) {
    ++eval_errors_;
    return;
  }
  const rts::Row& tuple = *row;
  uint64_t time_now = tuple[slots_.time].uint_value();
  uint64_t frag_offset = tuple[slots_.frag_offset].uint_value();
  uint64_t more_frags = tuple[slots_.more_frags].uint_value();

  ExpireOld(time_now);

  AssemblyKey key;
  key.src = tuple[slots_.src].ip_value();
  key.dst = tuple[slots_.dst].ip_value();
  key.proto = tuple[slots_.proto].uint_value();
  key.ip_id = tuple[slots_.ip_id].uint_value();

  if (frag_offset == 0 && more_frags == 0) {
    // Unfragmented: pass straight through.
    Emit(time_now, key, tuple[slots_.payload].string_value());
    return;
  }

  // IPv4 bounds, enforced before any state is touched: the wire format
  // cannot produce an offset beyond 13 bits, and no fragment may carry
  // data past the 64 KiB datagram limit. Rows arriving through InjectRow
  // are not wire-constrained, so a header that lies is dropped and
  // counted, never trusted into the reassembly arithmetic.
  if (frag_offset > kMaxFragOffsetUnits) {
    ++parse_errors_;
    return;
  }
  const uint64_t byte_offset = frag_offset * 8;
  const std::string& frag_bytes = tuple[slots_.payload].string_value();
  if (byte_offset + frag_bytes.size() > kMaxDatagramLen) {
    ++parse_errors_;
    return;
  }

  Assembly& assembly = assemblies_[key];
  if (assembly.fragments.empty()) assembly.first_seen_time = time_now;
  if (assembly.fragments.size() >= kMaxFragmentsPerAssembly) {
    // Fragment flood on one key: abandon the assembly rather than grow it.
    ++parse_errors_;
    assemblies_.erase(key);
    return;
  }
  Fragment fragment;
  fragment.offset = byte_offset;  // the IP field counts 8-byte units
  fragment.bytes = frag_bytes;
  if (more_frags == 0) {
    assembly.have_last = true;
    assembly.total_len = fragment.offset + fragment.bytes.size();
  }
  assembly.fragments.push_back(std::move(fragment));

  if (TryComplete(key, assembly, time_now)) {
    assemblies_.erase(key);
  } else if (assemblies_.size() > spec_.max_assemblies) {
    // Reassembly cache overflow: evict the oldest partial.
    auto oldest = assemblies_.begin();
    for (auto it = assemblies_.begin(); it != assemblies_.end(); ++it) {
      if (it->second.first_seen_time < oldest->second.first_seen_time) {
        oldest = it;
      }
    }
    assemblies_.erase(oldest);
    ++timeouts_;
  }
}

bool IpDefragNode::TryComplete(const AssemblyKey& key, Assembly& assembly,
                               uint64_t time_now) {
  if (!assembly.have_last) return false;
  std::sort(assembly.fragments.begin(), assembly.fragments.end(),
            [](const Fragment& a, const Fragment& b) {
              return a.offset < b.offset;
            });
  // Contiguity check (overlaps tolerated, truncated to the expected span —
  // hostile overlapping fragments must not confuse the monitor).
  uint64_t covered = 0;
  for (const Fragment& fragment : assembly.fragments) {
    if (fragment.offset > covered) return false;  // hole
    covered = std::max(covered, fragment.offset + fragment.bytes.size());
  }
  if (covered < assembly.total_len) return false;

  std::string datagram(assembly.total_len, '\0');
  for (const Fragment& fragment : assembly.fragments) {
    // Fragments lying beyond total_len exist when a fragment after the
    // MF=0 one claimed a larger span than the declared end: their bytes
    // fall outside the datagram and are dropped (replace would throw on
    // an offset past the string end).
    if (fragment.offset >= assembly.total_len) continue;
    size_t copy_len = std::min<uint64_t>(
        fragment.bytes.size(), assembly.total_len - fragment.offset);
    datagram.replace(fragment.offset, copy_len, fragment.bytes, 0, copy_len);
  }
  Emit(time_now, key, datagram);
  return true;
}

void IpDefragNode::Emit(uint64_t time_now, const AssemblyKey& key,
                        const std::string& datagram) {
  rts::Row out;
  out.push_back(Value::Uint(time_now));
  out.push_back(Value::Ip(key.src));
  out.push_back(Value::Ip(key.dst));
  out.push_back(Value::Uint(key.proto));
  out.push_back(Value::String(datagram));
  rts::StreamMessage message;
  message.kind = rts::StreamMessage::Kind::kTuple;
  output_codec_.Encode(out, &message.payload);
  registry_->Publish(name(), message);
  ++tuples_out_;
}

void IpDefragNode::ExpireOld(uint64_t time_now) {
  for (auto it = assemblies_.begin(); it != assemblies_.end();) {
    if (time_now >= it->second.first_seen_time &&
        time_now - it->second.first_seen_time > spec_.timeout_seconds) {
      it = assemblies_.erase(it);
      ++timeouts_;
    } else {
      ++it;
    }
  }
}

void IpDefragNode::Flush() {
  // Incomplete assemblies cannot produce correct datagrams; drop them.
  timeouts_ += assemblies_.size();
  assemblies_.clear();
}

void IpDefragNode::RegisterTelemetry(telemetry::Registry* metrics) const {
  QueryNode::RegisterTelemetry(metrics);
  metrics->Register(name(), telemetry::metric::kParseErrors, &parse_errors_);
}

}  // namespace gigascope::ops
