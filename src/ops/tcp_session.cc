#include "ops/tcp_session.h"

#include <algorithm>

#include "common/logging.h"
#include "net/headers.h"

namespace gigascope::ops {

using expr::Value;
using gsql::DataType;
using gsql::FieldDef;
using gsql::OrderSpec;
using gsql::StreamKind;
using gsql::StreamSchema;

StreamSchema TcpSessionNode::OutputSchema(const std::string& name) {
  std::vector<FieldDef> fields;
  fields.push_back({"time", DataType::kUint, OrderSpec::Increasing()});
  fields.push_back({"srcIP", DataType::kIp, OrderSpec::None()});
  fields.push_back({"destIP", DataType::kIp, OrderSpec::None()});
  fields.push_back({"srcPort", DataType::kUint, OrderSpec::None()});
  fields.push_back({"destPort", DataType::kUint, OrderSpec::None()});
  fields.push_back({"packets", DataType::kUint, OrderSpec::None()});
  fields.push_back({"bytes", DataType::kUint, OrderSpec::None()});
  fields.push_back({"duration", DataType::kUint, OrderSpec::None()});
  fields.push_back({"state", DataType::kString, OrderSpec::None()});
  return StreamSchema(name, StreamKind::kStream, fields);
}

Result<std::unique_ptr<TcpSessionNode>> TcpSessionNode::Create(
    Spec spec, rts::Subscription input, rts::StreamRegistry* registry) {
  FieldSlots slots;
  struct Need {
    const char* name;
    size_t* slot;
  };
  const Need needs[] = {
      {"time", &slots.time},        {"srcIP", &slots.src},
      {"destIP", &slots.dst},       {"srcPort", &slots.sport},
      {"destPort", &slots.dport},   {"protocol", &slots.proto},
      {"tcpFlags", &slots.flags},   {"len", &slots.len},
  };
  for (const Need& need : needs) {
    auto index = spec.input_schema.FieldIndex(need.name);
    if (!index.has_value()) {
      return Status::InvalidArgument(
          std::string("tcp session input schema lacks required field '") +
          need.name + "'");
    }
    *need.slot = *index;
  }
  GS_RETURN_IF_ERROR(registry->DeclareStream(OutputSchema(spec.name)));
  return std::unique_ptr<TcpSessionNode>(
      new TcpSessionNode(std::move(spec), slots, std::move(input), registry));
}

TcpSessionNode::TcpSessionNode(Spec spec, FieldSlots slots,
                               rts::Subscription input,
                               rts::StreamRegistry* registry)
    : QueryNode(spec.name),
      spec_(std::move(spec)),
      slots_(slots),
      input_(std::move(input)),
      registry_(registry),
      input_codec_(spec_.input_schema),
      output_codec_(OutputSchema(spec_.name)) {
  RegisterInput(input_);
}

size_t TcpSessionNode::Poll(size_t budget) {
  size_t processed = 0;
  rts::StreamBatch batch;
  while (processed < budget && input_->TryPop(&batch)) {
    for (rts::StreamMessage& message : batch.items) {
      ++processed;
      if (message.kind != rts::StreamMessage::Kind::kTuple) continue;
      ProcessTuple(message.payload);
    }
  }
  return processed;
}

void TcpSessionNode::ProcessTuple(const ByteBuffer& payload) {
  ++tuples_in_;
  auto row = input_codec_.Decode(ByteSpan(payload.data(), payload.size()));
  if (!row.ok()) {
    ++eval_errors_;
    return;
  }
  const rts::Row& tuple = *row;
  if (tuple[slots_.proto].uint_value() != net::kIpProtoTcp) return;

  uint64_t now = tuple[slots_.time].uint_value();
  ExpireOld(now);

  uint32_t src = tuple[slots_.src].ip_value();
  uint32_t dst = tuple[slots_.dst].ip_value();
  uint16_t sport = static_cast<uint16_t>(tuple[slots_.sport].uint_value());
  uint16_t dport = static_cast<uint16_t>(tuple[slots_.dport].uint_value());
  uint64_t flags = tuple[slots_.flags].uint_value();
  uint64_t len = tuple[slots_.len].uint_value();

  SessionKey key;
  // Normalize so both directions map to the same session.
  if (std::tie(src, sport) < std::tie(dst, dport)) {
    key = {src, dst, sport, dport};
  } else {
    key = {dst, src, dport, sport};
  }

  auto it = sessions_.find(key);
  bool is_syn = (flags & net::kTcpFlagSyn) != 0 &&
                (flags & net::kTcpFlagAck) == 0;
  if (it == sessions_.end()) {
    // Only SYN-initiated sessions are tracked: the monitor cannot account
    // a connection it never saw open.
    if (!is_syn) return;
    Session session;
    session.initiator_addr = src;
    session.responder_addr = dst;
    session.initiator_port = sport;
    session.responder_port = dport;
    session.start_time = now;
    session.last_time = now;
    session.packets = 1;
    session.bytes = len;
    sessions_.emplace(key, session);
    if (sessions_.size() > spec_.max_sessions) {
      // Evict the stalest session as a timeout.
      auto oldest = sessions_.begin();
      for (auto scan = sessions_.begin(); scan != sessions_.end(); ++scan) {
        if (scan->second.last_time < oldest->second.last_time) oldest = scan;
      }
      Emit(oldest->second.last_time, oldest->second, "timeout");
      ++timed_out_;
      sessions_.erase(oldest);
    }
    return;
  }

  Session& session = it->second;
  session.last_time = now;
  session.packets += 1;
  session.bytes += len;

  if (flags & net::kTcpFlagRst) {
    Emit(now, session, "reset");
    ++reset_;
    sessions_.erase(it);
    return;
  }
  if (flags & net::kTcpFlagFin) {
    bool from_initiator =
        src == session.initiator_addr && sport == session.initiator_port;
    if (from_initiator) {
      session.fin_from_initiator = true;
    } else {
      session.fin_from_responder = true;
    }
    if (session.fin_from_initiator && session.fin_from_responder) {
      Emit(now, session, "closed");
      ++closed_;
      sessions_.erase(it);
    }
  }
}

void TcpSessionNode::Emit(uint64_t end_time, const Session& session,
                          const char* state) {
  // Keep the output's declared INCREASING property even when a timeout
  // surfaces an old last_time: clamp to the emission high-water mark.
  end_time = std::max(end_time, last_emit_time_);
  last_emit_time_ = end_time;

  rts::Row out;
  out.push_back(Value::Uint(end_time));
  out.push_back(Value::Ip(session.initiator_addr));
  out.push_back(Value::Ip(session.responder_addr));
  out.push_back(Value::Uint(session.initiator_port));
  out.push_back(Value::Uint(session.responder_port));
  out.push_back(Value::Uint(session.packets));
  out.push_back(Value::Uint(session.bytes));
  out.push_back(Value::Uint(end_time > session.start_time
                                ? end_time - session.start_time
                                : 0));
  out.push_back(Value::String(state));
  rts::StreamMessage message;
  message.kind = rts::StreamMessage::Kind::kTuple;
  output_codec_.Encode(out, &message.payload);
  registry_->Publish(name(), message);
  ++tuples_out_;
}

void TcpSessionNode::ExpireOld(uint64_t time_now) {
  for (auto it = sessions_.begin(); it != sessions_.end();) {
    if (time_now >= it->second.last_time &&
        time_now - it->second.last_time > spec_.timeout_seconds) {
      Emit(it->second.last_time, it->second, "timeout");
      ++timed_out_;
      it = sessions_.erase(it);
    } else {
      ++it;
    }
  }
}

void TcpSessionNode::Flush() {
  for (const auto& [key, session] : sessions_) {
    Emit(session.last_time, session, "timeout");
    ++timed_out_;
  }
  sessions_.clear();
}

}  // namespace gigascope::ops
