#ifndef GIGASCOPE_OPS_AGGREGATE_H_
#define GIGASCOPE_OPS_AGGREGATE_H_

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "expr/codegen.h"
#include "expr/vm.h"
#include "rts/node.h"
#include "rts/punctuation.h"
#include "rts/tuple.h"

namespace gigascope::ops {

/// Running state of one group's aggregates (COUNT/SUM/MIN/MAX; AVG is
/// decomposed by the planner).
class GroupAccumulator {
 public:
  explicit GroupAccumulator(const std::vector<expr::AggregateSpec>* specs);

  /// Folds one input tuple in. `args[i]` is the evaluated argument of
  /// spec i (nullopt for COUNT(*)). `weight` is the number of input tuples
  /// this one stands for (Horvitz-Thompson): under 1-in-k source sampling
  /// the LFTA folds survivors with weight k, so COUNT adds k and SUM adds
  /// k*v — unbiased estimates of the unsampled aggregate. MIN/MAX are
  /// order statistics and take the value unweighted.
  void Update(const std::vector<std::optional<expr::Value>>& args,
              uint64_t weight = 1);

  /// Merges another accumulator of the same spec list (superaggregation).
  void Merge(const GroupAccumulator& other);

  /// Produces the aggregate values in spec order.
  rts::Row Finalize() const;

  uint64_t rows() const { return rows_; }

 private:
  const std::vector<expr::AggregateSpec>* specs_;
  uint64_t rows_ = 0;
  struct Cell {
    uint64_t count = 0;
    int64_t sum_int = 0;
    uint64_t sum_uint = 0;
    double sum_float = 0;
    std::optional<expr::Value> extremum;
  };
  std::vector<Cell> cells_;
};

/// Lowers a numeric bound by `band` (saturating for unsigned types):
/// on a banded-increasing stream, a value v only guarantees that no future
/// value falls below v - band.
expr::Value ReduceByBand(const expr::Value& value, uint64_t band);

/// Hash/equality over key rows, for group maps.
struct RowHash {
  size_t operator()(const rts::Row& row) const;
};
struct RowEq {
  bool operator()(const rts::Row& a, const rts::Row& b) const;
};

/// Ordered group-by/aggregation (§2.1): the group key contains an ordered
/// attribute; when a tuple arrives whose ordered key exceeds every open
/// group, all open groups are closed and flushed to the output. With no
/// ordered key (ordered_key = -1) the state is unbounded and emits only on
/// Flush() — permitted but warned about, as in the paper.
///
/// This node serves both as the HFTA-side full aggregation and as the
/// superaggregate of a split aggregation (the specs then re-aggregate the
/// LFTA's subaggregate columns).
class OrderedAggregateNode : public rts::QueryNode {
 public:
  struct Spec {
    std::string name;
    gsql::StreamSchema input_schema;
    gsql::StreamSchema output_schema;  // keys then aggregates
    std::vector<expr::CompiledExpr> keys;
    std::vector<expr::AggregateSpec> agg_specs;
    std::vector<std::optional<expr::CompiledExpr>> agg_args;  // per spec
    int ordered_key = -1;
    /// Band width of the ordered key: groups close only once the key's
    /// running maximum exceeds them by more than the band (0 = monotone).
    uint64_t ordered_key_band = 0;
    /// The single input field each key depends on (for punctuation), -1
    /// otherwise.
    std::vector<int> key_punctuation_source;
    /// Upper bound on messages per published output batch.
    size_t output_batch = 64;
  };

  OrderedAggregateNode(Spec spec, rts::Subscription input,
                       rts::StreamRegistry* registry, rts::ParamBlock params);

  size_t Poll(size_t budget) override;
  void Flush() override;
  void RegisterTelemetry(telemetry::Registry* metrics) const override;
  void AttachJit(jit::QueryJit* jit) override;
  void CountJitKernels(size_t* native, size_t* total) const override;

  size_t open_groups() const { return groups_.size(); }
  uint64_t groups_flushed() const { return groups_flushed_.value(); }

 private:
  void ProcessTuple(const ByteBuffer& payload, uint32_t weight);
  void ProcessPunctuation(const ByteBuffer& payload);
  /// Flushes groups whose ordered key is strictly below `bound` (all groups
  /// when bound is nullopt), in key order.
  void FlushGroups(const std::optional<expr::Value>& bound);
  void EmitGroup(const rts::Row& keys, const GroupAccumulator& acc);

  Spec spec_;
  rts::Subscription input_;
  rts::StreamRegistry* registry_;
  rts::ParamBlock params_;
  rts::TupleCodec input_codec_;
  rts::TupleCodec output_codec_;
  rts::BatchWriter writer_;
  expr::Evaluator vm_;
  std::unordered_map<rts::Row, GroupAccumulator, RowHash, RowEq> groups_;
  std::optional<expr::Value> epoch_;  // max ordered-key value seen
  telemetry::Counter groups_flushed_;
  /// Mirrors groups_.size() so other threads can read the gauge without
  /// touching the (unsynchronized) group map.
  telemetry::Counter open_groups_;
};

/// Requests native kernels for an aggregation Spec's group-key and
/// aggregate-argument expressions — the per-tuple hot loop of both the
/// ordered (HFTA) and direct-mapped (LFTA) aggregates.
void RequestAggKernels(OrderedAggregateNode::Spec* spec, jit::QueryJit* jit);

}  // namespace gigascope::ops

#endif  // GIGASCOPE_OPS_AGGREGATE_H_
