#ifndef GIGASCOPE_OPS_MERGE_H_
#define GIGASCOPE_OPS_MERGE_H_

#include <deque>
#include <optional>
#include <vector>

#include "rts/node.h"
#include "rts/punctuation.h"
#include "rts/tuple.h"

namespace gigascope::ops {

/// Order-preserving union (§2.2's MERGE) — "this operator is surprisingly
/// important": monitoring a full-duplex optical link means merging the two
/// simplex directions into one stream.
///
/// Each input buffers tuples until the merge attribute's global low
/// watermark passes them. A slow (or silent) input would block the merge
/// forever; punctuations (ordering-update tokens) advance that input's
/// watermark without tuples — the §3 unblocking mechanism, ablated by
/// bench/e4_heartbeats.
class MergeNode : public rts::QueryNode {
 public:
  struct Spec {
    std::string name;
    gsql::StreamSchema schema;  // shared by all inputs and the output
    size_t merge_field = 0;
    /// Band width of the merge attribute when it is banded-increasing: a
    /// tuple with key k only guarantees that no future tuple is below
    /// k - band, so tuple-derived watermarks are slackened by this much.
    uint64_t band = 0;
    /// Upper bound on messages per published output batch.
    size_t output_batch = 64;
  };

  MergeNode(Spec spec, std::vector<rts::Subscription> inputs,
            rts::StreamRegistry* registry);

  size_t Poll(size_t budget) override;
  void Flush() override;

  /// Total tuples currently buffered (for the E4 experiment).
  size_t buffered() const;
  size_t buffer_high_water() const { return buffer_high_water_; }

 private:
  /// A decoded tuple parked until the watermark passes it, keeping its
  /// trace context so sampled traces survive the buffering delay.
  struct BufferedRow {
    rts::Row row;
    uint64_t trace_id = 0;
    int64_t trace_ns = 0;
    uint32_t weight = 1;  // sampling weight carried through the buffer
  };

  struct InputState {
    rts::Subscription channel;
    std::deque<BufferedRow> buffer;
    std::optional<expr::Value> watermark;  // all future tuples >= this
    bool saw_any = false;
  };

  /// Folds one input message into the input's buffer and watermark.
  void Absorb(InputState& input, rts::StreamMessage& message);
  /// Drains ready tuples to the output in merge order.
  void EmitReady();
  void EmitRow(const BufferedRow& buffered);

  Spec spec_;
  rts::StreamRegistry* registry_;
  rts::TupleCodec codec_;
  rts::BatchWriter writer_;
  std::vector<InputState> inputs_;
  size_t buffer_high_water_ = 0;
};

}  // namespace gigascope::ops

#endif  // GIGASCOPE_OPS_MERGE_H_
