#ifndef GIGASCOPE_OPS_LFTA_AGG_H_
#define GIGASCOPE_OPS_LFTA_AGG_H_

#include <optional>
#include <utility>
#include <vector>

#include "ops/aggregate.h"

namespace gigascope::ops {

/// The LFTA's small direct-mapped aggregation hash table (§3).
///
/// No chaining: a hash collision ejects the incumbent group, which is
/// written to the output stream as a partial (sub)aggregate; the HFTA
/// superaggregate re-merges partials. Because of temporal locality,
/// aggregation is effective at early data reduction even with a small
/// table — the property ablated by bench/e3_lfta_hash.
class DirectMappedAggTable {
 public:
  /// `log2_slots` gives 2^log2_slots slots.
  DirectMappedAggTable(int log2_slots,
                       const std::vector<expr::AggregateSpec>* specs);

  /// Folds a tuple into the group with `keys`. When a different group
  /// occupies the slot, returns the ejected (keys, accumulator-finalized
  /// values) pair.
  std::optional<std::pair<rts::Row, rts::Row>> Upsert(
      rts::Row keys, const std::vector<std::optional<expr::Value>>& args);

  /// Removes and returns all occupied groups (epoch close), in slot order.
  std::vector<std::pair<rts::Row, rts::Row>> DrainAll();

  size_t num_slots() const { return slots_.size(); }
  size_t occupied() const { return static_cast<size_t>(occupied_.value()); }
  uint64_t updates() const { return updates_.value(); }
  uint64_t evictions() const { return evictions_.value(); }

 private:
  struct Slot {
    bool used = false;
    rts::Row keys;
    std::optional<GroupAccumulator> acc;
  };

  const std::vector<expr::AggregateSpec>* specs_;
  std::vector<Slot> slots_;
  size_t mask_;
  // Telemetry counters: written by the owning LFTA thread only, readable
  // from any thread via the engine's stats snapshots.
  telemetry::Counter occupied_;
  telemetry::Counter updates_;
  telemetry::Counter evictions_;
};

/// LFTA-side pre-aggregation node: evaluates group keys and aggregate
/// arguments, folds into the direct-mapped table, emits ejected partials
/// immediately, and drains the table when the ordered key advances (epoch
/// close) — feeding the HFTA superaggregate.
class LftaAggregateNode : public rts::QueryNode {
 public:
  using Spec = OrderedAggregateNode::Spec;

  LftaAggregateNode(Spec spec, int log2_slots, rts::Subscription input,
                    rts::StreamRegistry* registry, rts::ParamBlock params);

  size_t Poll(size_t budget) override;
  void Flush() override;
  void RegisterTelemetry(telemetry::Registry* metrics) const override;

  const DirectMappedAggTable& table() const { return table_; }

 private:
  void ProcessTuple(const ByteBuffer& payload);
  void ProcessPunctuation(const ByteBuffer& payload);
  void EmitPartial(const rts::Row& keys, const rts::Row& aggs);
  void DrainEpoch(const expr::Value& new_epoch);

  Spec spec_;
  rts::Subscription input_;
  rts::StreamRegistry* registry_;
  rts::ParamBlock params_;
  rts::TupleCodec input_codec_;
  rts::TupleCodec output_codec_;
  rts::BatchWriter writer_;
  expr::Evaluator vm_;
  DirectMappedAggTable table_;
  std::optional<expr::Value> epoch_;
};

}  // namespace gigascope::ops

#endif  // GIGASCOPE_OPS_LFTA_AGG_H_
