#ifndef GIGASCOPE_OPS_LFTA_AGG_H_
#define GIGASCOPE_OPS_LFTA_AGG_H_

#include <optional>
#include <utility>
#include <vector>

#include "ops/aggregate.h"
#include "rts/shed_state.h"

namespace gigascope::ops {

/// The LFTA's small direct-mapped aggregation hash table (§3).
///
/// No chaining: a hash collision ejects the incumbent group, which is
/// written to the output stream as a partial (sub)aggregate; the HFTA
/// superaggregate re-merges partials. Because of temporal locality,
/// aggregation is effective at early data reduction even with a small
/// table — the property ablated by bench/e3_lfta_hash.
class DirectMappedAggTable {
 public:
  /// `log2_slots` gives 2^log2_slots slots.
  DirectMappedAggTable(int log2_slots,
                       const std::vector<expr::AggregateSpec>* specs);

  /// Folds a tuple into the group with `keys`, weighted by `weight`
  /// (Horvitz-Thompson scaling under source sampling). When a different
  /// group occupies the slot, returns the ejected (keys,
  /// accumulator-finalized values) pair.
  std::optional<std::pair<rts::Row, rts::Row>> Upsert(
      rts::Row keys, const std::vector<std::optional<expr::Value>>& args,
      uint64_t weight = 1);

  /// Removes and returns all occupied groups (epoch close), in slot order.
  std::vector<std::pair<rts::Row, rts::Row>> DrainAll();

  /// Force-evicts the least-recently-touched groups until at most `target`
  /// remain (L3 shedding). Evictees are partials — always safe, the HFTA
  /// re-merges them — returned coldest first.
  std::vector<std::pair<rts::Row, rts::Row>> EvictColdest(size_t target);

  size_t num_slots() const { return slots_.size(); }
  size_t occupied() const { return static_cast<size_t>(occupied_.value()); }
  uint64_t updates() const { return updates_.value(); }
  uint64_t evictions() const { return evictions_.value(); }
  uint64_t shed_evictions() const { return shed_evictions_.value(); }

 private:
  struct Slot {
    bool used = false;
    uint64_t last_touch = 0;  // tick of the last Upsert into this slot
    rts::Row keys;
    std::optional<GroupAccumulator> acc;
  };

  const std::vector<expr::AggregateSpec>* specs_;
  std::vector<Slot> slots_;
  size_t mask_;
  uint64_t tick_ = 0;  // advances once per Upsert; orders slot coldness
  // Telemetry counters: written by the owning LFTA thread only, readable
  // from any thread via the engine's stats snapshots.
  telemetry::Counter occupied_;
  telemetry::Counter updates_;
  telemetry::Counter evictions_;
  telemetry::Counter shed_evictions_;
};

/// LFTA-side pre-aggregation node: evaluates group keys and aggregate
/// arguments, folds into the direct-mapped table, emits ejected partials
/// immediately, and drains the table when the ordered key advances (epoch
/// close) — feeding the HFTA superaggregate.
class LftaAggregateNode : public rts::QueryNode {
 public:
  using Spec = OrderedAggregateNode::Spec;

  /// `shed` (optional) is the engine's shared shedding state: the node
  /// reads the sampling weight, epoch coarsening factor, and table cap from
  /// it on the fly. Reads are relaxed atomics; the node runs on the same
  /// thread as the controller that writes them (the inject thread).
  LftaAggregateNode(Spec spec, int log2_slots, rts::Subscription input,
                    rts::StreamRegistry* registry, rts::ParamBlock params,
                    const rts::ShedState* shed = nullptr);

  size_t Poll(size_t budget) override;
  void Flush() override;
  void RegisterTelemetry(telemetry::Registry* metrics) const override;
  void AttachJit(jit::QueryJit* jit) override;
  void CountJitKernels(size_t* native, size_t* total) const override;

  const DirectMappedAggTable& table() const { return table_; }

 private:
  void ProcessTuple(const ByteBuffer& payload, uint32_t weight);
  void ProcessPunctuation(const ByteBuffer& payload);
  void EmitPartial(const rts::Row& keys, const rts::Row& aggs);
  void DrainEpoch(const expr::Value& new_epoch);
  /// Counts an ordered-key advance to `new_epoch` and drains once every
  /// `epoch_coarsen` advances (L2 shedding; factor 1 = drain every time).
  void MaybeDrainEpoch(const expr::Value& new_epoch);
  /// Applies the L3 occupancy cap, force-evicting coldest groups.
  void EnforceTableCap();

  Spec spec_;
  rts::Subscription input_;
  rts::StreamRegistry* registry_;
  rts::ParamBlock params_;
  rts::TupleCodec input_codec_;
  rts::TupleCodec output_codec_;
  rts::BatchWriter writer_;
  expr::Evaluator vm_;
  DirectMappedAggTable table_;
  std::optional<expr::Value> epoch_;
  const rts::ShedState* shed_;
  uint32_t epoch_advances_ = 0;  // ordered-key advances since last drain
};

}  // namespace gigascope::ops

#endif  // GIGASCOPE_OPS_LFTA_AGG_H_
