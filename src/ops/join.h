#ifndef GIGASCOPE_OPS_JOIN_H_
#define GIGASCOPE_OPS_JOIN_H_

#include <deque>
#include <map>
#include <optional>
#include <string>

#include "expr/codegen.h"
#include "expr/vm.h"
#include "rts/node.h"
#include "rts/punctuation.h"
#include "rts/tuple.h"

namespace gigascope::ops {

/// Two-stream window join (§2.2): "the join predicate must include a
/// constraint which defines a window on ordered attributes from both
/// streams". The window `left_ts - right_ts ∈ [lo, hi]` bounds the state:
/// a buffered tuple is purged once the opposite stream's watermark proves
/// no future partner can exist.
class WindowJoinNode : public rts::QueryNode {
 public:
  struct Spec {
    std::string name;
    gsql::StreamSchema left_schema;
    gsql::StreamSchema right_schema;
    gsql::StreamSchema output_schema;  // left fields then right fields
    /// Residual predicate evaluated with (row0 = left, row1 = right);
    /// includes the window constraints (re-checking them is cheap and keeps
    /// the operator honest).
    std::optional<expr::CompiledExpr> predicate;
    size_t left_field = 0;   // ordered attribute, left input
    size_t right_field = 0;  // ordered attribute, right input
    int64_t lo = 0;          // window: left_ts - right_ts >= lo
    int64_t hi = 0;          //         left_ts - right_ts <= hi
    /// Band slack of each input's ordered attribute (0 for monotone).
    uint64_t left_band = 0;
    uint64_t right_band = 0;
    /// Join algorithm choice (§2.1): the eager algorithm (false) emits
    /// matches as found — the output's window attribute is only
    /// banded-increasing by the window width; the order-preserving
    /// algorithm (true) buffers completed matches and releases them in
    /// window-attribute order once the watermarks pass — monotone output,
    /// "more buffer space".
    bool order_preserving = false;
    /// Upper bound on messages per published output batch.
    size_t output_batch = 64;
  };

  WindowJoinNode(Spec spec, rts::Subscription left, rts::Subscription right,
                 rts::StreamRegistry* registry, rts::ParamBlock params);

  size_t Poll(size_t budget) override;
  void Flush() override;
  void AttachJit(jit::QueryJit* jit) override;
  void CountJitKernels(size_t* native, size_t* total) const override;

  size_t buffered_left() const { return left_buffer_.size(); }
  size_t buffered_right() const { return right_buffer_.size(); }
  size_t buffer_high_water() const { return buffer_high_water_; }
  /// Completed matches awaiting ordered release (order-preserving mode).
  size_t pending_matches() const { return pending_.size(); }

 private:
  void ProcessSide(bool is_left, const rts::StreamMessage& message);
  void ProbeAndEmit(bool from_left, const rts::Row& row);
  void Purge();
  void EmitJoined(const rts::Row& left, const rts::Row& right);
  /// Publishes one joined row downstream.
  void Publish(const rts::Row& out);
  /// Releases buffered matches whose key has passed `bound`, in order.
  void ReleasePending(int64_t bound);
  int64_t KeyOf(const rts::Row& row, bool is_left) const;

  Spec spec_;
  rts::Subscription left_;
  rts::Subscription right_;
  rts::StreamRegistry* registry_;
  rts::ParamBlock params_;
  rts::TupleCodec left_codec_;
  rts::TupleCodec right_codec_;
  rts::TupleCodec output_codec_;
  rts::BatchWriter writer_;
  expr::Evaluator vm_;

  std::deque<rts::Row> left_buffer_;
  std::deque<rts::Row> right_buffer_;
  std::optional<int64_t> left_watermark_;   // no future left key below this
  std::optional<int64_t> right_watermark_;
  std::optional<int64_t> last_published_bound_;
  /// Order-preserving mode: completed matches keyed by the output's left
  /// window attribute, released once the output bound passes them.
  std::multimap<int64_t, rts::Row> pending_;
  size_t buffer_high_water_ = 0;
};

}  // namespace gigascope::ops

#endif  // GIGASCOPE_OPS_JOIN_H_
