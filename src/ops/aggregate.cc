#include "ops/aggregate.h"

#include <algorithm>

#include "common/logging.h"
#include "expr/vm.h"
#include "jit/engine.h"
#include "telemetry/metric_names.h"

namespace gigascope::ops {

using expr::AggFn;
using expr::AggregateSpec;
using expr::Value;
using gsql::DataType;

GroupAccumulator::GroupAccumulator(const std::vector<AggregateSpec>* specs)
    : specs_(specs), cells_(specs->size()) {}

void GroupAccumulator::Update(
    const std::vector<std::optional<Value>>& args, uint64_t weight) {
  rows_ += weight;
  for (size_t i = 0; i < specs_->size(); ++i) {
    const AggregateSpec& spec = (*specs_)[i];
    Cell& cell = cells_[i];
    switch (spec.fn) {
      case AggFn::kCount:
        cell.count += weight;
        break;
      case AggFn::kSum: {
        GS_CHECK(args[i].has_value());
        const Value& v = *args[i];
        switch (v.type()) {
          case DataType::kInt:
            cell.sum_int += v.int_value() * static_cast<int64_t>(weight);
            break;
          case DataType::kUint:
            cell.sum_uint += v.uint_value() * weight;
            break;
          case DataType::kFloat:
            cell.sum_float += v.float_value() * static_cast<double>(weight);
            break;
          default:
            cell.sum_uint += v.uint_value() * weight;
            break;
        }
        break;
      }
      case AggFn::kMin:
      case AggFn::kMax: {
        GS_CHECK(args[i].has_value());
        const Value& v = *args[i];
        if (!cell.extremum.has_value()) {
          cell.extremum = v;
        } else {
          int cmp = v.Compare(*cell.extremum);
          if ((spec.fn == AggFn::kMin && cmp < 0) ||
              (spec.fn == AggFn::kMax && cmp > 0)) {
            cell.extremum = v;
          }
        }
        break;
      }
      case AggFn::kAvg:
        GS_CHECK(false && "AVG must be decomposed by the planner");
        break;
    }
  }
}

void GroupAccumulator::Merge(const GroupAccumulator& other) {
  GS_CHECK(specs_ == other.specs_ || specs_->size() == other.specs_->size());
  rows_ += other.rows_;
  for (size_t i = 0; i < cells_.size(); ++i) {
    const AggregateSpec& spec = (*specs_)[i];
    Cell& cell = cells_[i];
    const Cell& in = other.cells_[i];
    switch (spec.fn) {
      case AggFn::kCount:
        cell.count += in.count;
        break;
      case AggFn::kSum:
        cell.sum_int += in.sum_int;
        cell.sum_uint += in.sum_uint;
        cell.sum_float += in.sum_float;
        break;
      case AggFn::kMin:
      case AggFn::kMax:
        if (in.extremum.has_value()) {
          if (!cell.extremum.has_value()) {
            cell.extremum = in.extremum;
          } else {
            int cmp = in.extremum->Compare(*cell.extremum);
            if ((spec.fn == AggFn::kMin && cmp < 0) ||
                (spec.fn == AggFn::kMax && cmp > 0)) {
              cell.extremum = in.extremum;
            }
          }
        }
        break;
      case AggFn::kAvg:
        break;
    }
  }
}

rts::Row GroupAccumulator::Finalize() const {
  rts::Row out;
  out.reserve(specs_->size());
  for (size_t i = 0; i < specs_->size(); ++i) {
    const AggregateSpec& spec = (*specs_)[i];
    const Cell& cell = cells_[i];
    switch (spec.fn) {
      case AggFn::kCount:
        out.push_back(Value::Uint(cell.count));
        break;
      case AggFn::kSum:
        switch (spec.result_type) {
          case DataType::kInt: out.push_back(Value::Int(cell.sum_int)); break;
          case DataType::kFloat:
            out.push_back(Value::Float(cell.sum_float));
            break;
          default:
            out.push_back(Value::Uint(cell.sum_uint));
            break;
        }
        break;
      case AggFn::kMin:
      case AggFn::kMax:
        out.push_back(cell.extremum.value_or(
            Value::Default(spec.result_type)));
        break;
      case AggFn::kAvg:
        out.push_back(Value::Float(0));
        break;
    }
  }
  return out;
}

expr::Value ReduceByBand(const expr::Value& value, uint64_t band) {
  if (band == 0) return value;
  switch (value.type()) {
    case DataType::kUint:
      return Value::Uint(value.uint_value() >= band
                             ? value.uint_value() - band
                             : 0);
    case DataType::kInt:
      return Value::Int(value.int_value() - static_cast<int64_t>(band));
    case DataType::kFloat:
      return Value::Float(value.float_value() - static_cast<double>(band));
    default:
      return value;
  }
}

size_t RowHash::operator()(const rts::Row& row) const {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (const Value& value : row) {
    h ^= value.Hash();
    h *= 0x100000001b3ULL;
  }
  return static_cast<size_t>(h);
}

bool RowEq::operator()(const rts::Row& a, const rts::Row& b) const {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].type() != b[i].type() || a[i].Compare(b[i]) != 0) return false;
  }
  return true;
}

OrderedAggregateNode::OrderedAggregateNode(Spec spec, rts::Subscription input,
                                           rts::StreamRegistry* registry,
                                           rts::ParamBlock params)
    : QueryNode(spec.name),
      spec_(std::move(spec)),
      input_(std::move(input)),
      registry_(registry),
      params_(std::move(params)),
      input_codec_(spec_.input_schema),
      output_codec_(spec_.output_schema),
      writer_(registry, spec_.name, spec_.output_batch) {
  RegisterInput(input_);
}

size_t OrderedAggregateNode::Poll(size_t budget) {
  size_t processed = 0;
  rts::StreamBatch batch;
  // Batch-at-a-time: one pop per ring slot, then a tight loop over its
  // messages (the budget may overshoot by at most one batch).
  while (processed < budget && input_->TryPop(&batch)) {
    for (rts::StreamMessage& message : batch.items) {
      ++processed;
      BeginMessage(message);
      if (message.kind == rts::StreamMessage::Kind::kTuple) {
        ProcessTuple(message.payload, message.weight);
      } else {
        ProcessPunctuation(message.payload);
      }
      EndMessage();
    }
  }
  writer_.Flush();
  return processed;
}

void OrderedAggregateNode::ProcessTuple(const ByteBuffer& payload,
                                        uint32_t weight) {
  ++tuples_in_;
  auto row = input_codec_.Decode(ByteSpan(payload.data(), payload.size()));
  if (!row.ok()) {
    ++eval_errors_;
    return;
  }
  expr::EvalContext ctx;
  ctx.row0 = &row.value();
  ctx.params = params_.get();

  rts::Row keys;
  keys.reserve(spec_.keys.size());
  for (const expr::CompiledExpr& key : spec_.keys) {
    expr::EvalOutput out;
    if (!vm_.Eval(key, ctx, &out).ok()) {
      ++eval_errors_;
      return;
    }
    if (!out.has_value) return;  // partial miss discards the tuple
    keys.push_back(std::move(out.value));
  }

  // Group closing: a tuple whose ordered key exceeds all open groups
  // closes and flushes them (§2.1). For a banded key the guarantee is
  // weaker — late tuples up to `band` below the running maximum may still
  // arrive — so only groups below (key - band) close.
  if (spec_.ordered_key >= 0) {
    const Value& ordered = keys[static_cast<size_t>(spec_.ordered_key)];
    if (epoch_.has_value() && ordered.Compare(*epoch_) > 0) {
      Value close_bound = ReduceByBand(ordered, spec_.ordered_key_band);
      FlushGroups(close_bound);
      rts::Punctuation punctuation;
      punctuation.bounds.emplace_back(
          static_cast<size_t>(spec_.ordered_key), close_bound);
      rts::StreamMessage punct_message = rts::MakePunctuationMessage(
          punctuation, spec_.output_schema);
      StampOutput(&punct_message);
      writer_.Write(std::move(punct_message));
    }
    if (!epoch_.has_value() || ordered.Compare(*epoch_) > 0) {
      epoch_ = ordered;
    }
  }

  std::vector<std::optional<Value>> args(spec_.agg_specs.size());
  for (size_t i = 0; i < spec_.agg_args.size(); ++i) {
    if (!spec_.agg_args[i].has_value()) continue;
    expr::EvalOutput out;
    if (!vm_.Eval(*spec_.agg_args[i], ctx, &out).ok()) {
      ++eval_errors_;
      return;
    }
    if (!out.has_value) return;
    args[i] = std::move(out.value);
  }

  auto it = groups_.find(keys);
  if (it == groups_.end()) {
    it = groups_.emplace(std::move(keys),
                         GroupAccumulator(&spec_.agg_specs)).first;
    open_groups_.Set(groups_.size());
  }
  // HFTA inputs are LFTA partials or operator output (weight 1); only a
  // raw source stream under L1 sampling carries a larger weight, and a
  // non-split aggregate must scale by it just like the LFTA table does.
  it->second.Update(args, weight);
}

void OrderedAggregateNode::ProcessPunctuation(const ByteBuffer& payload) {
  if (spec_.ordered_key < 0) return;
  auto punctuation = rts::DecodePunctuation(
      ByteSpan(payload.data(), payload.size()), spec_.input_schema);
  if (!punctuation.ok()) return;
  int source = spec_.key_punctuation_source[
      static_cast<size_t>(spec_.ordered_key)];
  if (source < 0) return;
  auto bound = punctuation->BoundFor(static_cast<size_t>(source));
  if (!bound.has_value()) return;

  // Translate the input-field bound through the key expression.
  rts::Row synthetic;
  synthetic.reserve(spec_.input_schema.num_fields());
  for (size_t f = 0; f < spec_.input_schema.num_fields(); ++f) {
    synthetic.push_back(Value::Default(spec_.input_schema.field(f).type));
  }
  synthetic[static_cast<size_t>(source)] = *bound;
  expr::EvalContext ctx;
  ctx.row0 = &synthetic;
  ctx.params = params_.get();
  expr::EvalOutput out;
  if (!vm_.Eval(spec_.keys[static_cast<size_t>(spec_.ordered_key)], ctx,
                &out).ok() ||
      !out.has_value) {
    return;
  }
  FlushGroups(out.value);
  rts::Punctuation forward;
  forward.bounds.emplace_back(static_cast<size_t>(spec_.ordered_key),
                              out.value);
  rts::StreamMessage forward_message =
      rts::MakePunctuationMessage(forward, spec_.output_schema);
  StampOutput(&forward_message);
  writer_.Write(std::move(forward_message));
}

void OrderedAggregateNode::FlushGroups(const std::optional<Value>& bound) {
  std::vector<const rts::Row*> to_flush;
  for (const auto& [keys, acc] : groups_) {
    if (!bound.has_value() || spec_.ordered_key < 0 ||
        keys[static_cast<size_t>(spec_.ordered_key)].Compare(*bound) < 0) {
      to_flush.push_back(&keys);
    }
  }
  // Deterministic output order.
  std::sort(to_flush.begin(), to_flush.end(),
            [](const rts::Row* a, const rts::Row* b) {
              for (size_t i = 0; i < a->size() && i < b->size(); ++i) {
                if ((*a)[i].type() != (*b)[i].type()) continue;
                int cmp = (*a)[i].Compare((*b)[i]);
                if (cmp != 0) return cmp < 0;
              }
              return a->size() < b->size();
            });
  for (const rts::Row* keys : to_flush) {
    auto it = groups_.find(*keys);
    EmitGroup(it->first, it->second);
    groups_.erase(it);
  }
  open_groups_.Set(groups_.size());
}

void OrderedAggregateNode::EmitGroup(const rts::Row& keys,
                                     const GroupAccumulator& acc) {
  rts::Row out = keys;
  rts::Row aggs = acc.Finalize();
  out.insert(out.end(), aggs.begin(), aggs.end());
  rts::StreamMessage message;
  message.kind = rts::StreamMessage::Kind::kTuple;
  output_codec_.Encode(out, &message.payload);
  // Flushed groups inherit the trace context of the message that closed
  // them, so a traced tuple's e2e latency spans inject → group close.
  StampOutput(&message);
  writer_.Write(std::move(message));
  ++tuples_out_;
  ++groups_flushed_;
}

void OrderedAggregateNode::Flush() {
  FlushGroups(std::nullopt);
  writer_.Flush();  // Flush may run outside a Poll round
}

void OrderedAggregateNode::RegisterTelemetry(
    telemetry::Registry* metrics) const {
  QueryNode::RegisterTelemetry(metrics);
  metrics->Register(name(), telemetry::metric::kOpenGroups, &open_groups_);
  metrics->Register(name(), telemetry::metric::kGroupsFlushed,
                    &groups_flushed_);
}

void OrderedAggregateNode::AttachJit(jit::QueryJit* jit) {
  RequestAggKernels(&spec_, jit);
}

void OrderedAggregateNode::CountJitKernels(size_t* native,
                                           size_t* total) const {
  for (const expr::CompiledExpr& key : spec_.keys) {
    expr::CountKernelSlot(key, native, total);
  }
  for (const std::optional<expr::CompiledExpr>& arg : spec_.agg_args) {
    if (arg.has_value()) expr::CountKernelSlot(*arg, native, total);
  }
}

void RequestAggKernels(OrderedAggregateNode::Spec* spec, jit::QueryJit* jit) {
  for (expr::CompiledExpr& key : spec->keys) {
    jit->RequestExpr(&key);
  }
  for (std::optional<expr::CompiledExpr>& arg : spec->agg_args) {
    if (arg.has_value()) jit->RequestExpr(&*arg);
  }
}

}  // namespace gigascope::ops
