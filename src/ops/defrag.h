#ifndef GIGASCOPE_OPS_DEFRAG_H_
#define GIGASCOPE_OPS_DEFRAG_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "rts/node.h"
#include "rts/tuple.h"

namespace gigascope::ops {

/// IP defragmentation as a user-written query node (§3):
///
///   "Users can write their own query nodes to implement special operators
///    by following this API. For example, we have implemented a special IP
///    defragmentation operator in this manner and have built a query tree
///    using it. The ability to bypass the existing query system when
///    necessary is a critical flexibility in our application domain."
///
/// The node consumes a packet Protocol stream (it needs the srcIP, destIP,
/// protocol, ipId, fragOffset, moreFrags, ipPayload, and time attributes of
/// the built-in PKT schema) and produces one tuple per *reassembled IP
/// datagram*:
///
///   (time UINT INCREASING, srcIP IP, destIP IP, protocol UINT,
///    datagram STRING)
///
/// where `datagram` is the full reassembled IP payload (transport header
/// included). Unfragmented packets pass straight through. Partial
/// assemblies are abandoned after `timeout_seconds` without completion
/// (counted in `timeouts()`), exactly like a router's reassembly cache.
class IpDefragNode : public rts::QueryNode {
 public:
  struct Spec {
    std::string name;                 // output stream name
    gsql::StreamSchema input_schema;  // a PKT-shaped protocol stream
    uint64_t timeout_seconds = 30;
    /// Maximum distinct in-flight assemblies; beyond this the oldest is
    /// dropped (counted as a timeout).
    size_t max_assemblies = 4096;
  };

  /// Output schema this node produces (given the stream name).
  static gsql::StreamSchema OutputSchema(const std::string& name);

  /// Builds the node; fails if the input schema lacks a required field.
  static Result<std::unique_ptr<IpDefragNode>> Create(
      Spec spec, rts::Subscription input, rts::StreamRegistry* registry);

  size_t Poll(size_t budget) override;
  void Flush() override;
  void RegisterTelemetry(telemetry::Registry* metrics) const override;

  uint64_t datagrams_out() const { return tuples_out(); }
  uint64_t timeouts() const { return timeouts_; }
  /// Fragments rejected as impossible under IPv4 (offset beyond the 13-bit
  /// field, data past the 64 KiB datagram bound, fragment-flood assemblies)
  /// — header-lying input dropped instead of trusted.
  uint64_t parse_errors() const { return parse_errors_.value(); }
  size_t open_assemblies() const { return assemblies_.size(); }

  /// IPv4 bounds enforced on every fragment: the fragment-offset field is
  /// 13 bits of 8-byte units and a datagram never exceeds 64 KiB.
  static constexpr uint64_t kMaxFragOffsetUnits = 0x1FFF;
  static constexpr uint64_t kMaxDatagramLen = 65535;
  /// Fragments one assembly may hold (a legitimate 64 KiB datagram of
  /// minimal 8-byte fragments); beyond this the assembly is a flood.
  static constexpr size_t kMaxFragmentsPerAssembly = 8192;

 private:
  struct FieldSlots {
    size_t time, src, dst, proto, ip_id, frag_offset, more_frags, payload;
  };
  struct AssemblyKey {
    uint32_t src;
    uint32_t dst;
    uint64_t proto;
    uint64_t ip_id;
    bool operator<(const AssemblyKey& other) const {
      return std::tie(src, dst, proto, ip_id) <
             std::tie(other.src, other.dst, other.proto, other.ip_id);
    }
  };
  struct Fragment {
    uint64_t offset;  // bytes
    std::string bytes;
  };
  struct Assembly {
    std::vector<Fragment> fragments;
    uint64_t total_len = 0;       // known once the MF=0 fragment arrives
    bool have_last = false;
    uint64_t first_seen_time = 0;  // seconds
  };

  IpDefragNode(Spec spec, FieldSlots slots, rts::Subscription input,
               rts::StreamRegistry* registry);

  void ProcessTuple(const ByteBuffer& payload);
  /// Emits the datagram if the assembly is complete; returns true then.
  bool TryComplete(const AssemblyKey& key, Assembly& assembly,
                   uint64_t time_now);
  void Emit(uint64_t time_now, const AssemblyKey& key,
            const std::string& datagram);
  void ExpireOld(uint64_t time_now);

  Spec spec_;
  FieldSlots slots_;
  rts::Subscription input_;
  rts::StreamRegistry* registry_;
  rts::TupleCodec input_codec_;
  rts::TupleCodec output_codec_;
  std::map<AssemblyKey, Assembly> assemblies_;
  uint64_t timeouts_ = 0;
  telemetry::Counter parse_errors_;
};

}  // namespace gigascope::ops

#endif  // GIGASCOPE_OPS_DEFRAG_H_
