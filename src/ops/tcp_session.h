#ifndef GIGASCOPE_OPS_TCP_SESSION_H_
#define GIGASCOPE_OPS_TCP_SESSION_H_

#include <cstdint>
#include <map>
#include <string>

#include "rts/node.h"
#include "rts/tuple.h"

namespace gigascope::ops {

/// TCP session extraction — the paper's §5 research direction:
///
///   "While GSQL suffices for a large class of tasks, many network analysis
///    queries find and aggregate subsequences of the data stream (i.e.,
///    extract the TCP/IP sessions)."
///
/// GSQL's per-tuple operators cannot express a stateful protocol machine,
/// so this is a user-written query node (the same §3 API as the IP
/// defragmenter): it consumes a PKT-shaped stream and emits one tuple per
/// *finished* TCP session:
///
///   (time UINT INCREASING,   -- when the session finished (seconds)
///    srcIP IP, destIP IP, srcPort UINT, destPort UINT,  -- initiator view
///    packets UINT, bytes UINT,
///    duration UINT,          -- seconds from SYN to finish
///    state STRING)           -- "closed" | "reset" | "timeout"
///
/// Sessions begin at a SYN (mid-stream traffic without a visible SYN is
/// ignored — a monitor can only account sessions it saw open); both
/// directions of the connection accumulate into one session. A session
/// finishes when FINs have been seen from both endpoints, when either side
/// sends RST, or when it idles past `timeout_seconds`.
class TcpSessionNode : public rts::QueryNode {
 public:
  struct Spec {
    std::string name;                 // output stream name
    gsql::StreamSchema input_schema;  // PKT-shaped protocol stream
    uint64_t timeout_seconds = 300;
    size_t max_sessions = 65536;      // cache bound; oldest evicted as timeout
  };

  static gsql::StreamSchema OutputSchema(const std::string& name);

  static Result<std::unique_ptr<TcpSessionNode>> Create(
      Spec spec, rts::Subscription input, rts::StreamRegistry* registry);

  size_t Poll(size_t budget) override;
  void Flush() override;

  size_t open_sessions() const { return sessions_.size(); }
  uint64_t sessions_closed() const { return closed_; }
  uint64_t sessions_reset() const { return reset_; }
  uint64_t sessions_timed_out() const { return timed_out_; }

 private:
  struct FieldSlots {
    size_t time, src, dst, sport, dport, proto, flags, len;
  };
  /// Direction-insensitive connection key: the initiator's view is kept in
  /// the session record itself.
  struct SessionKey {
    uint32_t addr_a, addr_b;
    uint16_t port_a, port_b;
    bool operator<(const SessionKey& other) const {
      return std::tie(addr_a, addr_b, port_a, port_b) <
             std::tie(other.addr_a, other.addr_b, other.port_a,
                      other.port_b);
    }
  };
  struct Session {
    uint32_t initiator_addr, responder_addr;
    uint16_t initiator_port, responder_port;
    uint64_t start_time, last_time;
    uint64_t packets = 0, bytes = 0;
    bool fin_from_initiator = false;
    bool fin_from_responder = false;
  };

  TcpSessionNode(Spec spec, FieldSlots slots, rts::Subscription input,
                 rts::StreamRegistry* registry);

  void ProcessTuple(const ByteBuffer& payload);
  void Emit(uint64_t end_time, const Session& session, const char* state);
  void ExpireOld(uint64_t time_now);

  Spec spec_;
  FieldSlots slots_;
  rts::Subscription input_;
  rts::StreamRegistry* registry_;
  rts::TupleCodec input_codec_;
  rts::TupleCodec output_codec_;
  std::map<SessionKey, Session> sessions_;
  uint64_t closed_ = 0;
  uint64_t reset_ = 0;
  uint64_t timed_out_ = 0;
  uint64_t last_emit_time_ = 0;
};

}  // namespace gigascope::ops

#endif  // GIGASCOPE_OPS_TCP_SESSION_H_
