#include "ops/join.h"

#include <algorithm>

#include "common/logging.h"
#include "expr/vm.h"
#include "jit/engine.h"

namespace gigascope::ops {

using expr::Value;

WindowJoinNode::WindowJoinNode(Spec spec, rts::Subscription left,
                               rts::Subscription right,
                               rts::StreamRegistry* registry,
                               rts::ParamBlock params)
    : QueryNode(spec.name),
      spec_(std::move(spec)),
      left_(std::move(left)),
      right_(std::move(right)),
      registry_(registry),
      params_(std::move(params)),
      left_codec_(spec_.left_schema),
      right_codec_(spec_.right_schema),
      output_codec_(spec_.output_schema),
      writer_(registry, spec_.name, spec_.output_batch) {
  RegisterInput(left_);
  RegisterInput(right_);
}

int64_t WindowJoinNode::KeyOf(const rts::Row& row, bool is_left) const {
  const Value& value =
      row[is_left ? spec_.left_field : spec_.right_field];
  switch (value.type()) {
    case gsql::DataType::kInt:
      return value.int_value();
    case gsql::DataType::kUint:
    case gsql::DataType::kIp:
      return static_cast<int64_t>(value.uint_value());
    case gsql::DataType::kFloat:
      return static_cast<int64_t>(value.float_value());
    default:
      return 0;
  }
}

size_t WindowJoinNode::Poll(size_t budget) {
  size_t processed = 0;
  rts::StreamBatch batch;
  // Alternate whole batches between the sides so neither input starves;
  // the budget may overshoot by at most one batch per side.
  while (processed < budget) {
    bool any = false;
    if (left_->TryPop(&batch)) {
      for (rts::StreamMessage& message : batch.items) {
        BeginMessage(message);
        ProcessSide(/*is_left=*/true, message);
        EndMessage();
        ++processed;
      }
      any = true;
    }
    if (processed < budget && right_->TryPop(&batch)) {
      for (rts::StreamMessage& message : batch.items) {
        BeginMessage(message);
        ProcessSide(/*is_left=*/false, message);
        EndMessage();
        ++processed;
      }
      any = true;
    }
    if (!any) break;
  }
  Purge();
  // Measured after purging: the state the window genuinely requires, not
  // the transient batch parked between polls.
  buffer_high_water_ = std::max(
      buffer_high_water_,
      left_buffer_.size() + right_buffer_.size() + pending_.size());
  writer_.Flush();
  return processed;
}

void WindowJoinNode::ProcessSide(bool is_left,
                                 const rts::StreamMessage& message) {
  const gsql::StreamSchema& schema =
      is_left ? spec_.left_schema : spec_.right_schema;
  rts::TupleCodec& codec = is_left ? left_codec_ : right_codec_;
  std::optional<int64_t>& watermark =
      is_left ? left_watermark_ : right_watermark_;
  uint64_t band = is_left ? spec_.left_band : spec_.right_band;

  if (message.kind == rts::StreamMessage::Kind::kPunctuation) {
    auto punctuation = rts::DecodePunctuation(
        ByteSpan(message.payload.data(), message.payload.size()), schema);
    if (!punctuation.ok()) return;
    auto bound = punctuation->BoundFor(
        is_left ? spec_.left_field : spec_.right_field);
    if (!bound.has_value()) return;
    int64_t key;
    switch (bound->type()) {
      case gsql::DataType::kInt: key = bound->int_value(); break;
      case gsql::DataType::kUint:
        key = static_cast<int64_t>(bound->uint_value());
        break;
      case gsql::DataType::kFloat:
        key = static_cast<int64_t>(bound->float_value());
        break;
      default:
        return;
    }
    if (!watermark.has_value() || key > *watermark) watermark = key;
    return;
  }

  ++tuples_in_;
  auto row = codec.Decode(
      ByteSpan(message.payload.data(), message.payload.size()));
  if (!row.ok()) {
    ++eval_errors_;
    return;
  }
  int64_t key = KeyOf(row.value(), is_left);
  int64_t guarantee = key - static_cast<int64_t>(band);
  if (!watermark.has_value() || guarantee > *watermark) {
    watermark = guarantee;
  }

  ProbeAndEmit(is_left, row.value());

  // Buffer for future partners, kept sorted on the window key so purging
  // can pop from the front.
  std::deque<rts::Row>& buffer = is_left ? left_buffer_ : right_buffer_;
  if (!buffer.empty() && KeyOf(buffer.back(), is_left) > key) {
    auto pos = std::upper_bound(
        buffer.begin(), buffer.end(), key,
        [this, is_left](int64_t k, const rts::Row& r) {
          return k < KeyOf(r, is_left);
        });
    buffer.insert(pos, std::move(row).value());
  } else {
    buffer.push_back(std::move(row).value());
  }
}

void WindowJoinNode::ProbeAndEmit(bool from_left, const rts::Row& row) {
  const std::deque<rts::Row>& other =
      from_left ? right_buffer_ : left_buffer_;
  int64_t key = KeyOf(row, from_left);
  for (const rts::Row& partner : other) {
    int64_t partner_key = KeyOf(partner, !from_left);
    int64_t delta = from_left ? key - partner_key : partner_key - key;
    if (delta < spec_.lo || delta > spec_.hi) continue;
    const rts::Row& left_row = from_left ? row : partner;
    const rts::Row& right_row = from_left ? partner : row;
    if (spec_.predicate.has_value()) {
      expr::EvalContext ctx;
      ctx.row0 = &left_row;
      ctx.row1 = &right_row;
      ctx.params = params_.get();
      if (!vm_.EvalPredicate(*spec_.predicate, ctx)) continue;
    }
    EmitJoined(left_row, right_row);
  }
}

void WindowJoinNode::Purge() {
  // A right tuple r can still match a future left l >= left_watermark iff
  // left_watermark - r.key <= hi, i.e. r.key >= left_watermark - hi.
  if (left_watermark_.has_value()) {
    int64_t cutoff = *left_watermark_ - spec_.hi;
    while (!right_buffer_.empty() &&
           KeyOf(right_buffer_.front(), false) < cutoff) {
      right_buffer_.pop_front();
    }
  }
  // A left tuple l can still match a future right r >= right_watermark iff
  // l.key - right_watermark >= lo, i.e. l.key >= right_watermark + lo.
  if (right_watermark_.has_value()) {
    int64_t cutoff = *right_watermark_ + spec_.lo;
    while (!left_buffer_.empty() &&
           KeyOf(left_buffer_.front(), true) < cutoff) {
      left_buffer_.pop_front();
    }
  }

  // Downstream ordering guarantee on the output's left-ts field (only
  // published when it advances). A future output comes either from a new
  // left tuple (key >= left watermark) or from a surviving buffered left
  // tuple joined with a future right (key >= right watermark + lo, the
  // purge cutoff) — so the bound is the smaller of the two.
  if (left_watermark_.has_value() && right_watermark_.has_value()) {
    int64_t bound =
        std::min(*left_watermark_, *right_watermark_ + spec_.lo);
    if (last_published_bound_.has_value() &&
        bound <= *last_published_bound_) {
      return;
    }
    last_published_bound_ = bound;
    if (spec_.order_preserving) ReleasePending(bound);
    rts::Punctuation punctuation;
    const gsql::DataType type =
        spec_.output_schema.field(spec_.left_field).type;
    Value value = type == gsql::DataType::kInt
                      ? Value::Int(bound)
                      : Value::Uint(bound < 0 ? 0
                                              : static_cast<uint64_t>(bound));
    punctuation.bounds.emplace_back(spec_.left_field, std::move(value));
    writer_.Write(
        rts::MakePunctuationMessage(punctuation, spec_.output_schema));
  }
}

void WindowJoinNode::EmitJoined(const rts::Row& left, const rts::Row& right) {
  rts::Row out = left;
  out.insert(out.end(), right.begin(), right.end());
  if (spec_.order_preserving) {
    // Hold the match until the output bound proves nothing earlier can
    // still be produced ("monotonically increasing requires more buffer
    // space", §2.1).
    int64_t key = KeyOf(out, /*is_left=*/true);
    pending_.emplace(key, std::move(out));
    return;
  }
  Publish(out);
}

void WindowJoinNode::Publish(const rts::Row& out) {
  rts::StreamMessage message;
  message.kind = rts::StreamMessage::Kind::kTuple;
  output_codec_.Encode(out, &message.payload);
  // A match against buffered state inherits the trace of the probing
  // message; order-preserving holds released later lose it (no active
  // message), which is fine for sampled tracing.
  StampOutput(&message);
  writer_.Write(std::move(message));
  ++tuples_out_;
}

void WindowJoinNode::ReleasePending(int64_t bound) {
  auto end = pending_.upper_bound(bound);
  for (auto it = pending_.begin(); it != end; ++it) {
    Publish(it->second);
  }
  pending_.erase(pending_.begin(), end);
}

void WindowJoinNode::Flush() {
  // Remaining buffered tuples have already emitted every match that both
  // buffers contain (probes run on arrival); only order-preserving holds
  // remain to be released.
  left_buffer_.clear();
  right_buffer_.clear();
  for (const auto& [key, row] : pending_) Publish(row);
  pending_.clear();
  writer_.Flush();  // Flush runs outside any Poll round
}

void WindowJoinNode::AttachJit(jit::QueryJit* jit) {
  if (spec_.predicate.has_value()) jit->RequestExpr(&*spec_.predicate);
}

void WindowJoinNode::CountJitKernels(size_t* native, size_t* total) const {
  if (spec_.predicate.has_value()) {
    expr::CountKernelSlot(*spec_.predicate, native, total);
  }
}

}  // namespace gigascope::ops
