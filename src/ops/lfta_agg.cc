#include "ops/lfta_agg.h"

#include <algorithm>

#include "common/logging.h"
#include "expr/vm.h"
#include "telemetry/metric_names.h"

namespace gigascope::ops {

using expr::Value;

DirectMappedAggTable::DirectMappedAggTable(
    int log2_slots, const std::vector<expr::AggregateSpec>* specs)
    : specs_(specs) {
  GS_CHECK(log2_slots >= 0 && log2_slots <= 24);
  slots_.resize(size_t{1} << log2_slots);
  mask_ = slots_.size() - 1;
}

std::optional<std::pair<rts::Row, rts::Row>> DirectMappedAggTable::Upsert(
    rts::Row keys, const std::vector<std::optional<Value>>& args,
    uint64_t weight) {
  ++updates_;
  size_t slot_index = RowHash{}(keys) & mask_;
  Slot& slot = slots_[slot_index];
  std::optional<std::pair<rts::Row, rts::Row>> ejected;

  if (slot.used && !RowEq{}(slot.keys, keys)) {
    // Collision: eject the incumbent as a partial aggregate (§3).
    ++evictions_;
    ejected.emplace(std::move(slot.keys), slot.acc->Finalize());
    slot.used = false;
    --occupied_;
  }
  if (!slot.used) {
    slot.used = true;
    slot.keys = std::move(keys);
    slot.acc.emplace(specs_);
    ++occupied_;
  }
  slot.last_touch = ++tick_;
  slot.acc->Update(args, weight);
  return ejected;
}

std::vector<std::pair<rts::Row, rts::Row>> DirectMappedAggTable::DrainAll() {
  std::vector<std::pair<rts::Row, rts::Row>> out;
  out.reserve(occupied());
  for (Slot& slot : slots_) {
    if (!slot.used) continue;
    out.emplace_back(std::move(slot.keys), slot.acc->Finalize());
    slot.used = false;
    slot.acc.reset();
  }
  occupied_.Set(0);
  return out;
}

std::vector<std::pair<rts::Row, rts::Row>> DirectMappedAggTable::EvictColdest(
    size_t target) {
  std::vector<std::pair<rts::Row, rts::Row>> out;
  if (occupied() <= target) return out;
  size_t to_evict = occupied() - target;
  // Collect used slots ordered by last_touch and evict the oldest. The scan
  // is O(slots); callers amortize it by evicting a chunk below the cap.
  std::vector<size_t> used;
  used.reserve(occupied());
  for (size_t i = 0; i < slots_.size(); ++i) {
    if (slots_[i].used) used.push_back(i);
  }
  std::partial_sort(used.begin(), used.begin() + to_evict, used.end(),
                    [this](size_t a, size_t b) {
                      return slots_[a].last_touch < slots_[b].last_touch;
                    });
  out.reserve(to_evict);
  for (size_t i = 0; i < to_evict; ++i) {
    Slot& slot = slots_[used[i]];
    out.emplace_back(std::move(slot.keys), slot.acc->Finalize());
    slot.used = false;
    slot.acc.reset();
    ++evictions_;
    ++shed_evictions_;
    --occupied_;
  }
  return out;
}

LftaAggregateNode::LftaAggregateNode(Spec spec, int log2_slots,
                                     rts::Subscription input,
                                     rts::StreamRegistry* registry,
                                     rts::ParamBlock params,
                                     const rts::ShedState* shed)
    : QueryNode(spec.name),
      spec_(std::move(spec)),
      input_(std::move(input)),
      registry_(registry),
      params_(std::move(params)),
      input_codec_(spec_.input_schema),
      output_codec_(spec_.output_schema),
      writer_(registry, spec_.name, spec_.output_batch),
      table_(log2_slots, &spec_.agg_specs),
      shed_(shed) {
  RegisterInput(input_);
}

size_t LftaAggregateNode::Poll(size_t budget) {
  size_t processed = 0;
  rts::StreamBatch batch;
  // Batch-at-a-time: one pop per ring slot, then a tight loop over its
  // messages (the budget may overshoot by at most one batch).
  while (processed < budget && input_->TryPop(&batch)) {
    for (rts::StreamMessage& message : batch.items) {
      ++processed;
      BeginMessage(message);
      if (message.kind == rts::StreamMessage::Kind::kTuple) {
        ProcessTuple(message.payload, message.weight);
      } else {
        ProcessPunctuation(message.payload);
      }
      EndMessage();
    }
  }
  writer_.Flush();
  return processed;
}

void LftaAggregateNode::ProcessTuple(const ByteBuffer& payload,
                                     uint32_t weight) {
  ++tuples_in_;
  auto row = input_codec_.Decode(ByteSpan(payload.data(), payload.size()));
  if (!row.ok()) {
    ++eval_errors_;
    return;
  }
  expr::EvalContext ctx;
  ctx.row0 = &row.value();
  ctx.params = params_.get();

  rts::Row keys;
  keys.reserve(spec_.keys.size());
  for (const expr::CompiledExpr& key : spec_.keys) {
    expr::EvalOutput out;
    if (!vm_.Eval(key, ctx, &out).ok()) {
      ++eval_errors_;
      return;
    }
    if (!out.has_value) return;
    keys.push_back(std::move(out.value));
  }

  if (spec_.ordered_key >= 0) {
    const Value& ordered = keys[static_cast<size_t>(spec_.ordered_key)];
    if (epoch_.has_value() && ordered.Compare(*epoch_) > 0) {
      MaybeDrainEpoch(ordered);
    }
    if (!epoch_.has_value() || ordered.Compare(*epoch_) > 0) {
      epoch_ = ordered;
    }
  }

  std::vector<std::optional<Value>> args(spec_.agg_specs.size());
  for (size_t i = 0; i < spec_.agg_args.size(); ++i) {
    if (!spec_.agg_args[i].has_value()) continue;
    expr::EvalOutput out;
    if (!vm_.Eval(*spec_.agg_args[i], ctx, &out).ok()) {
      ++eval_errors_;
      return;
    }
    if (!out.has_value) return;
    args[i] = std::move(out.value);
  }

  // Under L1 sampling each surviving tuple stands for `weight` offered
  // ones (stamped on the message at the sampling decision); fold with it
  // so COUNT/SUM stay unbiased.
  auto ejected = table_.Upsert(std::move(keys), args, weight);
  if (ejected.has_value()) {
    EmitPartial(ejected->first, ejected->second);
  }
  EnforceTableCap();
}

void LftaAggregateNode::ProcessPunctuation(const ByteBuffer& payload) {
  if (spec_.ordered_key < 0) return;
  auto punctuation = rts::DecodePunctuation(
      ByteSpan(payload.data(), payload.size()), spec_.input_schema);
  if (!punctuation.ok()) return;
  int source = spec_.key_punctuation_source[
      static_cast<size_t>(spec_.ordered_key)];
  if (source < 0) return;
  auto bound = punctuation->BoundFor(static_cast<size_t>(source));
  if (!bound.has_value()) return;

  rts::Row synthetic;
  synthetic.reserve(spec_.input_schema.num_fields());
  for (size_t f = 0; f < spec_.input_schema.num_fields(); ++f) {
    synthetic.push_back(Value::Default(spec_.input_schema.field(f).type));
  }
  synthetic[static_cast<size_t>(source)] = *bound;
  expr::EvalContext ctx;
  ctx.row0 = &synthetic;
  ctx.params = params_.get();
  expr::EvalOutput out;
  if (!vm_.Eval(spec_.keys[static_cast<size_t>(spec_.ordered_key)], ctx,
                &out).ok() ||
      !out.has_value) {
    return;
  }
  if (!epoch_.has_value() || out.value.Compare(*epoch_) > 0) {
    MaybeDrainEpoch(out.value);
    epoch_ = out.value;
  }
}

void LftaAggregateNode::MaybeDrainEpoch(const Value& new_epoch) {
  // L2 shedding: batch several ordered-key advances into one drain, cutting
  // per-epoch drain + punctuation cost. Coarsening delays window closes but
  // never loses them — every coarsen-th advance still drains everything and
  // emits the punctuation for the newest bound.
  uint32_t coarsen = shed_ ? shed_->EpochCoarsen() : 1;
  if (coarsen > 1 && ++epoch_advances_ < coarsen) return;
  epoch_advances_ = 0;
  DrainEpoch(new_epoch);
}

void LftaAggregateNode::EnforceTableCap() {
  uint32_t cap_pct = shed_ ? shed_->TableCapPct() : 100;
  if (cap_pct >= 100) return;
  size_t cap = table_.num_slots() * cap_pct / 100;
  if (table_.occupied() <= cap) return;
  // Evict a chunk below the cap (not just one) so the O(slots) coldness
  // scan amortizes over many upserts.
  size_t target = cap - cap / 8;
  for (const auto& [keys, aggs] : table_.EvictColdest(target)) {
    EmitPartial(keys, aggs);
  }
}

void LftaAggregateNode::EmitPartial(const rts::Row& keys,
                                    const rts::Row& aggs) {
  rts::Row out = keys;
  out.insert(out.end(), aggs.begin(), aggs.end());
  rts::StreamMessage message;
  message.kind = rts::StreamMessage::Kind::kTuple;
  output_codec_.Encode(out, &message.payload);
  // Ejected/drained partials carry the trace of the packet that triggered
  // them, keeping the sampled span chain unbroken across the LFTA table.
  StampOutput(&message);
  writer_.Write(std::move(message));
  ++tuples_out_;
}

void LftaAggregateNode::DrainEpoch(const Value& new_epoch) {
  // Draining everything is always safe — ejected groups are partial
  // aggregates the HFTA re-merges — but the ordering promise must honour
  // the band: late arrivals within it will re-open groups below new_epoch.
  for (const auto& [keys, aggs] : table_.DrainAll()) {
    EmitPartial(keys, aggs);
  }
  rts::Punctuation punctuation;
  punctuation.bounds.emplace_back(
      static_cast<size_t>(spec_.ordered_key),
      ReduceByBand(new_epoch, spec_.ordered_key_band));
  rts::StreamMessage punct_message =
      rts::MakePunctuationMessage(punctuation, spec_.output_schema);
  StampOutput(&punct_message);
  writer_.Write(std::move(punct_message));
}

void LftaAggregateNode::Flush() {
  for (const auto& [keys, aggs] : table_.DrainAll()) {
    EmitPartial(keys, aggs);
  }
  writer_.Flush();  // Flush may run outside a Poll round
}

void LftaAggregateNode::RegisterTelemetry(
    telemetry::Registry* metrics) const {
  QueryNode::RegisterTelemetry(metrics);
  metrics->RegisterReader(name(), telemetry::metric::kLftaUpdates,
                          [this] { return table_.updates(); });
  metrics->RegisterReader(name(), telemetry::metric::kLftaEvictions,
                          [this] { return table_.evictions(); });
  metrics->RegisterReader(name(), telemetry::metric::kLftaOccupied, [this] {
    return static_cast<uint64_t>(table_.occupied());
  });
  metrics->RegisterReader(name(), telemetry::metric::kLftaShedEvictions,
                          [this] { return table_.shed_evictions(); });
}

void LftaAggregateNode::AttachJit(jit::QueryJit* jit) {
  RequestAggKernels(&spec_, jit);
}

void LftaAggregateNode::CountJitKernels(size_t* native, size_t* total) const {
  for (const expr::CompiledExpr& key : spec_.keys) {
    expr::CountKernelSlot(key, native, total);
  }
  for (const std::optional<expr::CompiledExpr>& arg : spec_.agg_args) {
    if (arg.has_value()) expr::CountKernelSlot(*arg, native, total);
  }
}

}  // namespace gigascope::ops
