#ifndef GIGASCOPE_OPS_SELECT_PROJECT_H_
#define GIGASCOPE_OPS_SELECT_PROJECT_H_

#include <optional>
#include <string>
#include <vector>

#include "expr/codegen.h"
#include "rts/node.h"
#include "rts/punctuation.h"
#include "rts/tuple.h"

namespace gigascope::ops {

/// Selection + projection: the stateless workhorse of both LFTAs and HFTAs.
///
/// Drops tuples that fail the predicate, fail evaluation (runtime error),
/// or hit a partial-function miss; computes one output field per compiled
/// projection. Punctuations pass through: a bound on an input field maps to
/// a bound on every output field whose projection is an order-preserving
/// function of exactly that field (e.g. `time/60`).
class SelectProjectNode : public rts::QueryNode {
 public:
  struct Spec {
    std::string name;                       // node/output stream name
    gsql::StreamSchema input_schema;
    gsql::StreamSchema output_schema;
    std::optional<expr::CompiledExpr> predicate;
    std::vector<expr::CompiledExpr> projections;
    /// For punctuation mapping: the single input field each projection
    /// depends on, or -1 when it depends on zero or several fields or is
    /// not order-preserving.
    std::vector<int> punctuation_source;
  };

  SelectProjectNode(Spec spec, rts::Subscription input,
                    rts::StreamRegistry* registry, rts::ParamBlock params);

  size_t Poll(size_t budget) override;

 private:
  void ProcessTuple(const ByteBuffer& payload);
  void ProcessPunctuation(const ByteBuffer& payload);

  Spec spec_;
  rts::Subscription input_;
  rts::StreamRegistry* registry_;
  rts::ParamBlock params_;
  rts::TupleCodec input_codec_;
  rts::TupleCodec output_codec_;
};

}  // namespace gigascope::ops

#endif  // GIGASCOPE_OPS_SELECT_PROJECT_H_
