#ifndef GIGASCOPE_OPS_SELECT_PROJECT_H_
#define GIGASCOPE_OPS_SELECT_PROJECT_H_

#include <optional>
#include <string>
#include <vector>

#include "expr/codegen.h"
#include "expr/native.h"
#include "expr/vm.h"
#include "rts/node.h"
#include "rts/punctuation.h"
#include "rts/tuple.h"

namespace gigascope::ops {

/// Selection + projection: the stateless workhorse of both LFTAs and HFTAs.
///
/// Drops tuples that fail the predicate, fail evaluation (runtime error),
/// or hit a partial-function miss; computes one output field per compiled
/// projection. Punctuations pass through: a bound on an input field maps to
/// a bound on every output field whose projection is an order-preserving
/// function of exactly that field (e.g. `time/60`).
///
/// Polls a whole StreamBatch at a time and emits through a BatchWriter.
/// When the predicate is a conjunction of `field <cmp> constant` terms over
/// fixed-offset fields (the dominant LFTA filter shape), it is evaluated
/// columnar-style straight off the packed tuple bytes: rejected tuples —
/// the vast majority on a selective filter — never get decoded.
class SelectProjectNode : public rts::QueryNode {
 public:
  struct Spec {
    std::string name;                       // node/output stream name
    gsql::StreamSchema input_schema;
    gsql::StreamSchema output_schema;
    std::optional<expr::CompiledExpr> predicate;
    std::vector<expr::CompiledExpr> projections;
    /// For punctuation mapping: the single input field each projection
    /// depends on, or -1 when it depends on zero or several fields or is
    /// not order-preserving.
    std::vector<int> punctuation_source;
    /// Upper bound on messages per published output batch.
    size_t output_batch = 64;
  };

  SelectProjectNode(Spec spec, rts::Subscription input,
                    rts::StreamRegistry* registry, rts::ParamBlock params);

  size_t Poll(size_t budget) override;

  /// Requests native kernels: the raw byte filter as one baked-constant
  /// FilterFn (or the general predicate when the raw path didn't match),
  /// plus each projection.
  void AttachJit(jit::QueryJit* jit) override;

  /// Whether the predicate compiled to the raw byte-comparing fast path
  /// (introspection for tests and EXPLAIN).
  bool has_raw_filter() const { return !raw_terms_.empty(); }

  void CountJitKernels(size_t* native, size_t* total) const override;

 private:
  /// One predicate conjunct evaluated on packed bytes: the field at a
  /// fixed offset compared against a pre-extracted constant.
  struct RawTerm {
    size_t offset = 0;
    gsql::DataType type = gsql::DataType::kUint;
    expr::ByteOp cmp = expr::ByteOp::kCmpEq;
    uint64_t u = 0;  // kUint/kIp/kBool constant
    int64_t i = 0;   // kInt constant
    double f = 0;    // kFloat constant
  };

  void BuildRawFilter();
  bool RawFilterPass(const ByteBuffer& payload) const;
  void ProcessTuple(const ByteBuffer& payload, bool predicate_checked);
  void ProcessPunctuation(const ByteBuffer& payload);

  Spec spec_;
  rts::Subscription input_;
  rts::StreamRegistry* registry_;
  rts::ParamBlock params_;
  rts::TupleCodec input_codec_;
  rts::TupleCodec output_codec_;
  rts::BatchWriter writer_;
  expr::Evaluator vm_;
  std::vector<RawTerm> raw_terms_;  // empty: use the general VM
  size_t raw_min_payload_ = 0;      // shorter payloads take the slow path
  /// Native byte-filter slot; null until AttachJit ran with the tier on.
  std::shared_ptr<expr::ByteFilterSlot> raw_filter_slot_;
};

}  // namespace gigascope::ops

#endif  // GIGASCOPE_OPS_SELECT_PROJECT_H_
