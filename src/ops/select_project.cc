#include "ops/select_project.h"

#include "expr/vm.h"

namespace gigascope::ops {

using expr::Value;

SelectProjectNode::SelectProjectNode(Spec spec, rts::Subscription input,
                                     rts::StreamRegistry* registry,
                                     rts::ParamBlock params)
    : QueryNode(spec.name),
      spec_(std::move(spec)),
      input_(std::move(input)),
      registry_(registry),
      params_(std::move(params)),
      input_codec_(spec_.input_schema),
      output_codec_(spec_.output_schema) {
  RegisterInput(input_);
}

size_t SelectProjectNode::Poll(size_t budget) {
  size_t processed = 0;
  rts::StreamMessage message;
  while (processed < budget && input_->TryPop(&message)) {
    ++processed;
    BeginMessage(message);
    if (message.kind == rts::StreamMessage::Kind::kTuple) {
      ProcessTuple(message.payload);
    } else {
      ProcessPunctuation(message.payload);
    }
    EndMessage();
  }
  return processed;
}

void SelectProjectNode::ProcessTuple(const ByteBuffer& payload) {
  ++tuples_in_;
  auto row = input_codec_.Decode(ByteSpan(payload.data(), payload.size()));
  if (!row.ok()) {
    ++eval_errors_;
    return;
  }
  expr::EvalContext ctx;
  ctx.row0 = &row.value();
  ctx.params = params_.get();

  if (spec_.predicate.has_value()) {
    expr::EvalOutput predicate_result;
    Status status = expr::Eval(*spec_.predicate, ctx, &predicate_result);
    if (!status.ok()) {
      ++eval_errors_;
      return;
    }
    // Partial-function miss or false: tuple discarded (§2.2).
    if (!predicate_result.has_value ||
        !predicate_result.value.bool_value()) {
      return;
    }
  }

  rts::Row out_row;
  out_row.reserve(spec_.projections.size());
  for (const expr::CompiledExpr& projection : spec_.projections) {
    expr::EvalOutput out;
    Status status = expr::Eval(projection, ctx, &out);
    if (!status.ok()) {
      ++eval_errors_;
      return;
    }
    if (!out.has_value) return;  // partial miss anywhere discards the tuple
    out_row.push_back(std::move(out.value));
  }

  rts::StreamMessage out_message;
  out_message.kind = rts::StreamMessage::Kind::kTuple;
  output_codec_.Encode(out_row, &out_message.payload);
  StampOutput(&out_message);
  registry_->Publish(name(), out_message);
  ++tuples_out_;
}

void SelectProjectNode::ProcessPunctuation(const ByteBuffer& payload) {
  auto punctuation = rts::DecodePunctuation(
      ByteSpan(payload.data(), payload.size()), spec_.input_schema);
  if (!punctuation.ok()) return;

  rts::Punctuation out;
  for (size_t i = 0; i < spec_.projections.size(); ++i) {
    int source = spec_.punctuation_source[i];
    if (source < 0) continue;
    auto bound = punctuation->BoundFor(static_cast<size_t>(source));
    if (!bound.has_value()) continue;
    // Evaluate the projection on a synthetic row whose only meaningful
    // field is the bounded one; the projection provably depends on it
    // alone and preserves order, so the result bounds the output field.
    rts::Row synthetic;
    synthetic.reserve(spec_.input_schema.num_fields());
    for (size_t f = 0; f < spec_.input_schema.num_fields(); ++f) {
      synthetic.push_back(Value::Default(spec_.input_schema.field(f).type));
    }
    synthetic[static_cast<size_t>(source)] = *bound;
    expr::EvalContext ctx;
    ctx.row0 = &synthetic;
    ctx.params = params_.get();
    expr::EvalOutput result;
    if (expr::Eval(spec_.projections[i], ctx, &result).ok() &&
        result.has_value) {
      out.bounds.emplace_back(i, std::move(result.value));
    }
  }
  if (out.bounds.empty()) return;
  rts::StreamMessage out_message =
      rts::MakePunctuationMessage(out, spec_.output_schema);
  // Forwarded punctuation keeps the trace context so downstream
  // punctuation-driven group closes stay attributed to the traced packet.
  StampOutput(&out_message);
  registry_->Publish(name(), out_message);
}

}  // namespace gigascope::ops
