#include "ops/select_project.h"

#include <cstring>

#include "expr/vm.h"
#include "jit/engine.h"

namespace gigascope::ops {

using expr::Value;
using gsql::DataType;

namespace {

uint64_t ReadU64Le(const uint8_t* p) {
  uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

uint32_t ReadU32Le(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
         (static_cast<uint32_t>(p[2]) << 16) |
         (static_cast<uint32_t>(p[3]) << 24);
}

/// Mirrors CompareOp over Value::Compare's three-way result.
bool ApplyCompare(expr::ByteOp op, int cmp) {
  switch (op) {
    case expr::ByteOp::kCmpEq: return cmp == 0;
    case expr::ByteOp::kCmpNe: return cmp != 0;
    case expr::ByteOp::kCmpLt: return cmp < 0;
    case expr::ByteOp::kCmpLe: return cmp <= 0;
    case expr::ByteOp::kCmpGt: return cmp > 0;
    case expr::ByteOp::kCmpGe: return cmp >= 0;
    default: return false;
  }
}

template <typename T>
int ThreeWay(T a, T b) {
  // Identical to Value::Compare's cmp3 (NaN compares "equal" for floats).
  return a < b ? -1 : (a > b ? 1 : 0);
}

}  // namespace

SelectProjectNode::SelectProjectNode(Spec spec, rts::Subscription input,
                                     rts::StreamRegistry* registry,
                                     rts::ParamBlock params)
    : QueryNode(spec.name),
      spec_(std::move(spec)),
      input_(std::move(input)),
      registry_(registry),
      params_(std::move(params)),
      input_codec_(spec_.input_schema),
      output_codec_(spec_.output_schema),
      writer_(registry, spec_.name, spec_.output_batch) {
  RegisterInput(input_);
  BuildRawFilter();
}

void SelectProjectNode::BuildRawFilter() {
  if (!spec_.predicate.has_value()) return;
  auto terms = expr::MatchFilterTerms(*spec_.predicate);
  if (!terms.has_value()) return;
  std::vector<RawTerm> raw;
  size_t min_payload = 0;
  for (const expr::FilterTerm& term : *terms) {
    if (term.field >= spec_.input_schema.num_fields()) return;
    const DataType type = spec_.input_schema.field(term.field).type;
    // Same-type comparison only: that is what the VM executes (compiled
    // predicates insert casts otherwise, and those bytecodes don't match).
    if (term.constant.type() != type) return;
    std::optional<size_t> offset = input_codec_.FixedFieldOffset(term.field);
    std::optional<size_t> width = rts::TupleCodec::FixedTypeWidth(type);
    if (!offset.has_value() || !width.has_value()) return;
    RawTerm rt;
    rt.offset = *offset;
    rt.type = type;
    rt.cmp = term.cmp;
    switch (type) {
      case DataType::kUint: rt.u = term.constant.uint_value(); break;
      case DataType::kIp: rt.u = term.constant.ip_value(); break;
      case DataType::kBool: rt.u = term.constant.bool_value() ? 1 : 0; break;
      case DataType::kInt: rt.i = term.constant.int_value(); break;
      case DataType::kFloat: rt.f = term.constant.float_value(); break;
      case DataType::kString: return;  // unreachable (no fixed width)
    }
    min_payload = std::max(min_payload, *offset + *width);
    raw.push_back(rt);
  }
  raw_terms_ = std::move(raw);
  raw_min_payload_ = min_payload;
}

void SelectProjectNode::AttachJit(jit::QueryJit* jit) {
  if (!raw_terms_.empty()) {
    // The raw fast path already covers the whole predicate; compile it as
    // one FilterFn with the offsets and constants baked in.
    std::vector<jit::RawFilterTerm> terms;
    terms.reserve(raw_terms_.size());
    for (const RawTerm& term : raw_terms_) {
      jit::RawFilterTerm out;
      out.offset = term.offset;
      out.type = term.type;
      out.cmp = term.cmp;
      out.u = term.u;
      out.i = term.i;
      out.f = term.f;
      terms.push_back(out);
    }
    raw_filter_slot_ = jit->RequestFilter(terms);
  } else if (spec_.predicate.has_value()) {
    jit->RequestExpr(&*spec_.predicate);
  }
  for (expr::CompiledExpr& projection : spec_.projections) {
    jit->RequestExpr(&projection);
  }
}

void SelectProjectNode::CountJitKernels(size_t* native, size_t* total) const {
  if (raw_filter_slot_ != nullptr) {
    ++*total;
    if (raw_filter_slot_->fn.load(std::memory_order_acquire) != nullptr) {
      ++*native;
    }
  } else if (spec_.predicate.has_value()) {
    expr::CountKernelSlot(*spec_.predicate, native, total);
  }
  for (const expr::CompiledExpr& projection : spec_.projections) {
    expr::CountKernelSlot(projection, native, total);
  }
}

bool SelectProjectNode::RawFilterPass(const ByteBuffer& payload) const {
  const uint8_t* data = payload.data();
  if (raw_filter_slot_ != nullptr) {
    expr::ByteFilterFn fn =
        raw_filter_slot_->fn.load(std::memory_order_acquire);
    if (fn != nullptr) return fn(data, payload.size()) != 0;
  }
  for (const RawTerm& term : raw_terms_) {
    int cmp = 0;
    switch (term.type) {
      case DataType::kUint:
        cmp = ThreeWay(ReadU64Le(data + term.offset), term.u);
        break;
      case DataType::kIp:
        cmp = ThreeWay<uint64_t>(ReadU32Le(data + term.offset), term.u);
        break;
      case DataType::kBool:
        cmp = ThreeWay<uint64_t>(data[term.offset] != 0 ? 1 : 0, term.u);
        break;
      case DataType::kInt:
        cmp = ThreeWay(static_cast<int64_t>(ReadU64Le(data + term.offset)),
                       term.i);
        break;
      case DataType::kFloat: {
        uint64_t bits = ReadU64Le(data + term.offset);
        double v;
        std::memcpy(&v, &bits, sizeof(v));
        cmp = ThreeWay(v, term.f);
        break;
      }
      case DataType::kString:
        return false;  // never built
    }
    if (!ApplyCompare(term.cmp, cmp)) return false;
  }
  return true;
}

size_t SelectProjectNode::Poll(size_t budget) {
  size_t processed = 0;
  rts::StreamBatch batch;
  // Batch-at-a-time: one pop per ring slot, then a tight loop over its
  // messages. The budget may overshoot by at most one batch (a batch is
  // never split across polls).
  while (processed < budget && input_->TryPop(&batch)) {
    for (rts::StreamMessage& message : batch.items) {
      ++processed;
      if (message.kind == rts::StreamMessage::Kind::kTuple) {
        if (!raw_terms_.empty() &&
            message.payload.size() >= raw_min_payload_) {
          // Columnar fast path: the whole predicate runs on packed bytes;
          // rejected tuples are never decoded.
          if (!RawFilterPass(message.payload)) {
            ++tuples_in_;
            if (message.trace_id != 0) {
              BeginMessage(message);
              EndMessage();
            }
            continue;
          }
          BeginMessage(message);
          ProcessTuple(message.payload, /*predicate_checked=*/true);
          EndMessage();
          continue;
        }
        BeginMessage(message);
        ProcessTuple(message.payload, /*predicate_checked=*/false);
        EndMessage();
      } else {
        BeginMessage(message);
        ProcessPunctuation(message.payload);
        EndMessage();
      }
    }
  }
  writer_.Flush();
  return processed;
}

void SelectProjectNode::ProcessTuple(const ByteBuffer& payload,
                                     bool predicate_checked) {
  ++tuples_in_;
  auto row = input_codec_.Decode(ByteSpan(payload.data(), payload.size()));
  if (!row.ok()) {
    ++eval_errors_;
    return;
  }
  expr::EvalContext ctx;
  ctx.row0 = &row.value();
  ctx.params = params_.get();

  if (!predicate_checked && spec_.predicate.has_value()) {
    expr::EvalOutput predicate_result;
    Status status = vm_.Eval(*spec_.predicate, ctx, &predicate_result);
    if (!status.ok()) {
      ++eval_errors_;
      return;
    }
    // Partial-function miss or false: tuple discarded (§2.2).
    if (!predicate_result.has_value ||
        !predicate_result.value.bool_value()) {
      return;
    }
  }

  rts::Row out_row;
  out_row.reserve(spec_.projections.size());
  for (const expr::CompiledExpr& projection : spec_.projections) {
    expr::EvalOutput out;
    Status status = vm_.Eval(projection, ctx, &out);
    if (!status.ok()) {
      ++eval_errors_;
      return;
    }
    if (!out.has_value) return;  // partial miss anywhere discards the tuple
    out_row.push_back(std::move(out.value));
  }

  rts::StreamMessage out_message;
  out_message.kind = rts::StreamMessage::Kind::kTuple;
  out_message.weight = active_weight();  // sampling weight rides through
  output_codec_.Encode(out_row, &out_message.payload);
  StampOutput(&out_message);
  writer_.Write(std::move(out_message));
  ++tuples_out_;
}

void SelectProjectNode::ProcessPunctuation(const ByteBuffer& payload) {
  auto punctuation = rts::DecodePunctuation(
      ByteSpan(payload.data(), payload.size()), spec_.input_schema);
  if (!punctuation.ok()) return;

  rts::Punctuation out;
  for (size_t i = 0; i < spec_.projections.size(); ++i) {
    int source = spec_.punctuation_source[i];
    if (source < 0) continue;
    auto bound = punctuation->BoundFor(static_cast<size_t>(source));
    if (!bound.has_value()) continue;
    // Evaluate the projection on a synthetic row whose only meaningful
    // field is the bounded one; the projection provably depends on it
    // alone and preserves order, so the result bounds the output field.
    rts::Row synthetic;
    synthetic.reserve(spec_.input_schema.num_fields());
    for (size_t f = 0; f < spec_.input_schema.num_fields(); ++f) {
      synthetic.push_back(Value::Default(spec_.input_schema.field(f).type));
    }
    synthetic[static_cast<size_t>(source)] = *bound;
    expr::EvalContext ctx;
    ctx.row0 = &synthetic;
    ctx.params = params_.get();
    expr::EvalOutput result;
    if (vm_.Eval(spec_.projections[i], ctx, &result).ok() &&
        result.has_value) {
      out.bounds.emplace_back(i, std::move(result.value));
    }
  }
  if (out.bounds.empty()) return;
  rts::StreamMessage out_message =
      rts::MakePunctuationMessage(out, spec_.output_schema);
  // Forwarded punctuation keeps the trace context so downstream
  // punctuation-driven group closes stay attributed to the traced packet.
  StampOutput(&out_message);
  writer_.Write(std::move(out_message));
}

}  // namespace gigascope::ops
