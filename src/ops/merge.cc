#include "ops/merge.h"

#include <algorithm>

#include "common/logging.h"

namespace gigascope::ops {

using expr::Value;

MergeNode::MergeNode(Spec spec, std::vector<rts::Subscription> inputs,
                     rts::StreamRegistry* registry)
    : QueryNode(spec.name),
      spec_(std::move(spec)),
      registry_(registry),
      codec_(spec_.schema),
      writer_(registry, spec_.name, spec_.output_batch) {
  GS_CHECK(inputs.size() >= 2);
  for (rts::Subscription& input : inputs) {
    InputState state;
    state.channel = std::move(input);
    RegisterInput(state.channel);
    inputs_.push_back(std::move(state));
  }
}

size_t MergeNode::Poll(size_t budget) {
  size_t processed = 0;
  rts::StreamBatch batch;
  // Batch-at-a-time: drain whole ring slots per input; the budget may
  // overshoot by at most one batch (a batch is never split across polls).
  for (InputState& input : inputs_) {
    while (processed < budget && input.channel->TryPop(&batch)) {
      for (rts::StreamMessage& message : batch.items) {
        ++processed;
        BeginMessage(message);
        Absorb(input, message);
        EndMessage();
      }
    }
  }
  size_t total = buffered();
  buffer_high_water_ = std::max(buffer_high_water_, total);
  EmitReady();
  writer_.Flush();
  return processed;
}

void MergeNode::Absorb(InputState& input, rts::StreamMessage& message) {
  if (message.kind == rts::StreamMessage::Kind::kTuple) {
    ++tuples_in_;
    auto row = codec_.Decode(
        ByteSpan(message.payload.data(), message.payload.size()));
    if (!row.ok()) {
      ++eval_errors_;
      return;
    }
    const Value& key = row.value()[spec_.merge_field];
    // A tuple also carries ordering information: on a
    // (banded-)increasing stream no future tuple can fall more than
    // `band` below it, so it advances the watermark like a punctuation
    // would (slackened by the band).
    Value guarantee = key;
    if (spec_.band > 0) {
      switch (key.type()) {
        case gsql::DataType::kUint:
          guarantee = Value::Uint(key.uint_value() >= spec_.band
                                      ? key.uint_value() - spec_.band
                                      : 0);
          break;
        case gsql::DataType::kInt:
          guarantee =
              Value::Int(key.int_value() - static_cast<int64_t>(spec_.band));
          break;
        case gsql::DataType::kFloat:
          guarantee = Value::Float(key.float_value() -
                                   static_cast<double>(spec_.band));
          break;
        default:
          break;
      }
    }
    if (!input.watermark.has_value() ||
        guarantee.Compare(*input.watermark) > 0) {
      input.watermark = guarantee;
    }
    // Banded inputs arrive slightly out of order; keep the buffer
    // sorted on the merge key so the head is always the minimum.
    BufferedRow decoded{std::move(row).value(), message.trace_id,
                        message.trace_ns, message.weight};
    if (spec_.band > 0 && !input.buffer.empty() &&
        input.buffer.back().row[spec_.merge_field].Compare(
            decoded.row[spec_.merge_field]) > 0) {
      auto pos = std::upper_bound(
          input.buffer.begin(), input.buffer.end(), decoded,
          [this](const BufferedRow& a, const BufferedRow& b) {
            return a.row[spec_.merge_field].Compare(
                       b.row[spec_.merge_field]) < 0;
          });
      input.buffer.insert(pos, std::move(decoded));
    } else {
      input.buffer.push_back(std::move(decoded));
    }
    input.saw_any = true;
  } else {
    auto punctuation = rts::DecodePunctuation(
        ByteSpan(message.payload.data(), message.payload.size()),
        spec_.schema);
    // Undecodable punctuations fall through to the caller's EndMessage: an
    // early return that skipped it used to leak the message's trace
    // context into whatever the node processed next.
    if (!punctuation.ok()) return;
    auto bound = punctuation->BoundFor(spec_.merge_field);
    if (bound.has_value() &&
        (!input.watermark.has_value() ||
         bound->Compare(*input.watermark) > 0)) {
      input.watermark = *bound;
    }
  }
}

void MergeNode::EmitReady() {
  while (true) {
    // Find the input whose head tuple has the smallest merge key; emission
    // is safe only if every *other* input guarantees (via watermark) that
    // it will never produce a smaller key.
    int best = -1;
    for (size_t i = 0; i < inputs_.size(); ++i) {
      if (inputs_[i].buffer.empty()) continue;
      const Value& key = inputs_[i].buffer.front().row[spec_.merge_field];
      if (best < 0 ||
          key.Compare(
              inputs_[static_cast<size_t>(best)].buffer.front().row
                  [spec_.merge_field]) < 0) {
        best = static_cast<int>(i);
      }
    }
    if (best < 0) return;
    const Value& candidate = inputs_[static_cast<size_t>(best)]
                                 .buffer.front().row[spec_.merge_field];
    for (size_t i = 0; i < inputs_.size(); ++i) {
      if (static_cast<int>(i) == best) continue;
      if (!inputs_[i].buffer.empty()) continue;  // its head already compared
      if (!inputs_[i].watermark.has_value() ||
          inputs_[i].watermark->Compare(candidate) < 0) {
        return;  // input i might still produce something smaller: blocked
      }
    }
    EmitRow(inputs_[static_cast<size_t>(best)].buffer.front());
    inputs_[static_cast<size_t>(best)].buffer.pop_front();
  }
}

void MergeNode::EmitRow(const BufferedRow& buffered) {
  rts::StreamMessage message;
  message.kind = rts::StreamMessage::Kind::kTuple;
  message.weight = buffered.weight;
  codec_.Encode(buffered.row, &message.payload);
  // Restore the context carried through the buffer: the merged tuple keeps
  // the trace of the input message it came from, not whichever message the
  // poll loop happens to be processing.
  StampOutputWithContext(&message, buffered.trace_id, buffered.trace_ns);
  writer_.Write(std::move(message));
  ++tuples_out_;

  // Downstream watermark: the smallest guarantee across inputs.
  std::optional<Value> low;
  for (const InputState& input : inputs_) {
    if (!input.watermark.has_value()) return;
    if (!low.has_value() || input.watermark->Compare(*low) < 0) {
      low = input.watermark;
    }
  }
  if (low.has_value()) {
    rts::Punctuation punctuation;
    punctuation.bounds.emplace_back(spec_.merge_field, *low);
    writer_.Write(rts::MakePunctuationMessage(punctuation, spec_.schema));
  }
}

void MergeNode::Flush() {
  // End of all streams: emit everything in merge order.
  while (true) {
    int best = -1;
    for (size_t i = 0; i < inputs_.size(); ++i) {
      if (inputs_[i].buffer.empty()) continue;
      if (best < 0 ||
          inputs_[i].buffer.front().row[spec_.merge_field].Compare(
              inputs_[static_cast<size_t>(best)].buffer.front().row
                  [spec_.merge_field]) < 0) {
        best = static_cast<int>(i);
      }
    }
    if (best < 0) break;
    EmitRow(inputs_[static_cast<size_t>(best)].buffer.front());
    inputs_[static_cast<size_t>(best)].buffer.pop_front();
  }
  writer_.Flush();  // Flush runs outside any Poll round
}

size_t MergeNode::buffered() const {
  size_t total = 0;
  for (const InputState& input : inputs_) total += input.buffer.size();
  return total;
}

}  // namespace gigascope::ops
