#ifndef GIGASCOPE_JIT_ABI_H_
#define GIGASCOPE_JIT_ABI_H_

#include <cstdint>

namespace gigascope::jit {

/// ABI between the engine and generated shared objects. The generated
/// translation unit is self-contained (no repo headers), so this union is
/// *textually duplicated* in the module preamble (emit.cc) — bump
/// kAbiVersion whenever either side changes. The version is baked into both
/// the entry-symbol names and the content hash, so a stale cached .so from
/// an older ABI can never be dlopen'd into a newer engine.
union AbiValue {
  long long i;           // DataType::kInt
  unsigned long long u;  // DataType::kUint / kIp (kIp stores the u32 value)
  double f;              // DataType::kFloat
  unsigned char b;       // DataType::kBool (0 or 1)
};
static_assert(sizeof(AbiValue) == 8, "generated code assumes 8-byte slots");

/// Row-expression kernel: `r0`/`r1`/`pp` are dense arrays indexed by
/// field/param slot (only the slots the kernel reads need to be valid).
/// Returns 0 on success with `*out` set, or a JitEvalError code.
using EvalFn = int (*)(const AbiValue* r0, const AbiValue* r1,
                       const AbiValue* pp, AbiValue* out);

/// Packed-byte filter kernel (mirror of select_project's RawFilterPass):
/// nonzero return means the tuple passes. The caller enforces the
/// minimum-payload-length precondition.
using FilterFn = int (*)(const unsigned char* data, unsigned long long len);

/// Nonzero EvalFn returns; the wrapper maps these to the exact Status the
/// VM would have produced (see MapEvalError in engine.cc).
enum JitEvalError : int {
  kErrDivByZero = 1,
  kErrModByZero = 2,
  kErrDivOverflow = 3,
  kErrModOverflow = 4,
};

inline constexpr int kAbiVersion = 1;

}  // namespace gigascope::jit

#endif  // GIGASCOPE_JIT_ABI_H_
