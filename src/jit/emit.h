#ifndef GIGASCOPE_JIT_EMIT_H_
#define GIGASCOPE_JIT_EMIT_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "expr/codegen.h"
#include "expr/ir.h"

namespace gigascope::jit {

/// Per-kernel metadata the runtime wrapper needs: result type plus the
/// field/param slots the generated code actually reads (the wrapper
/// converts only those, and bounds-checks their maxima eagerly — which is
/// equivalent to the VM's lazy per-load check because bytecode is
/// straight-line).
struct KernelMeta {
  std::string symbol;
  gsql::DataType result_type = gsql::DataType::kInt;
  std::vector<uint16_t> fields0;  // distinct row0 field indices, ascending
  std::vector<uint16_t> fields1;  // distinct row1 field indices, ascending
  std::vector<uint16_t> params;   // distinct param slots, ascending
};

/// One conjunct of a packed-byte filter; mirror of select_project's
/// RawTerm (that one is private to the node, so ops copy into this).
struct RawFilterTerm {
  size_t offset = 0;
  gsql::DataType type = gsql::DataType::kUint;
  expr::ByteOp cmp = expr::ByteOp::kCmpEq;
  uint64_t u = 0;
  int64_t i = 0;
  double f = 0;
};

/// Shared helpers + the textual AbiValue definition every module needs;
/// emitted once per generated translation unit.
std::string ModulePreamble();

/// Transpiles a compiled expression to a C++ function definition named
/// `symbol` with the abi.h EvalFn signature, mirroring the VM's semantics
/// instruction for instruction (including wrap-around integer arithmetic,
/// counted division errors, NaN-compares-equal, and saturating casts).
/// Returns nullopt on an emission gap — UDF call-sites, string operands, or
/// any op/type pairing the VM itself would reject at runtime — in which
/// case the expression stays on the VM.
std::optional<std::string> EmitExprKernel(const expr::CompiledExpr& expr,
                                          const std::string& symbol,
                                          KernelMeta* meta);

/// Emits a packed-byte filter kernel (abi.h FilterFn) with the comparison
/// constants baked in. Filter terms are always emittable.
std::string EmitFilterKernel(const std::vector<RawFilterTerm>& terms,
                             const std::string& symbol);

/// IR-level emittability check, used by the planner's EXPLAIN tier
/// annotation before bytecode even exists. Mirrors EmitExprKernel's gaps:
/// false on any call site or string-typed node.
bool CanEmitIr(const expr::IrPtr& ir);

}  // namespace gigascope::jit

#endif  // GIGASCOPE_JIT_EMIT_H_
