#ifndef GIGASCOPE_JIT_COMPILER_H_
#define GIGASCOPE_JIT_COMPILER_H_

#include <cstdint>
#include <memory>
#include <string>

#include "common/status.h"

namespace gigascope::jit {

/// A dlopen'd generated module. Closes the handle on destruction, so every
/// kernel pointer resolved from it must be unpublished (or its readers
/// gone) first — the JitEngine keeps modules alive for its own lifetime.
class LoadedModule {
 public:
  ~LoadedModule();
  LoadedModule(const LoadedModule&) = delete;
  LoadedModule& operator=(const LoadedModule&) = delete;

  /// Resolves an entry symbol; nullptr when absent.
  void* Resolve(const std::string& symbol) const;

 private:
  friend class JitCompiler;
  explicit LoadedModule(void* handle) : handle_(handle) {}
  void* handle_;
};

struct CompileStats {
  bool cache_hit = false;   // dlopen'd a previously compiled .so
  uint64_t compile_ns = 0;  // toolchain wall time (0 on a cache hit)
};

/// Drives the system toolchain: content-hashes generated source into the
/// on-disk cache (`gs_mod_<hash>.{cc,so}`), fork/execs the compiler on a
/// miss, and dlopens the result. The hash covers the full translation unit
/// plus the ABI version and compile flags, so a cache entry is valid iff
/// its file exists.
class JitCompiler {
 public:
  explicit JitCompiler(std::string cache_dir);

  /// Probes for a usable C++ compiler exactly once per process (honors
  /// GS_JIT_CXX, else tries c++ / g++ / clang++). All compiles fail fast
  /// when none is found — the caller logs once and stays on the VM.
  static bool ToolchainAvailable();

  /// Compiles (or cache-loads) one generated translation unit.
  Result<std::unique_ptr<LoadedModule>> CompileModule(
      const std::string& source, CompileStats* stats);

  const std::string& cache_dir() const { return cache_dir_; }

 private:
  /// dlopens a built shared object (cache hit or fresh compile).
  static Result<std::unique_ptr<LoadedModule>> OpenModule(
      const std::string& so_path);

  std::string cache_dir_;
};

/// Creates a fresh private cache directory under TMPDIR (mkdtemp).
Result<std::string> MakeEphemeralCacheDir();

/// Removes a cache directory and the regular files directly inside it
/// (generated sources, shared objects, compiler logs). Non-recursive past
/// one level by design — cache dirs have a flat layout.
void RemoveCacheDir(const std::string& dir);

}  // namespace gigascope::jit

#endif  // GIGASCOPE_JIT_COMPILER_H_
