#ifndef GIGASCOPE_JIT_ENGINE_H_
#define GIGASCOPE_JIT_ENGINE_H_

#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "expr/codegen.h"
#include "expr/native.h"
#include "jit/compiler.h"
#include "jit/emit.h"
#include "telemetry/counter.h"
#include "telemetry/registry.h"

namespace gigascope::jit {

enum class JitMode : uint8_t {
  kOff,    // VM only (default)
  kSync,   // compile during query setup; queries start native
  kAsync,  // start on the VM, hot-swap when the compile lands
};

/// Parses "off" / "sync" / "async"; nullopt otherwise.
std::optional<JitMode> ParseJitMode(const std::string& text);
const char* JitModeName(JitMode mode);

struct JitOptions {
  JitMode mode = JitMode::kOff;
  /// On-disk cache directory for generated sources and shared objects.
  /// Empty: a private mkdtemp directory, removed when the engine dies.
  /// Set it to persist modules across restarts — a warm start dlopens the
  /// content-addressed .so without ever invoking the compiler.
  std::string cache_dir;
};

class JitEngine;

/// Kernel requests for one query, collected across its nodes via
/// rts::QueryNode::AttachJit so the whole query becomes a single generated
/// translation unit and one compiler invocation. Obtained from
/// JitEngine::BeginQuery and handed back to JitEngine::Submit.
class QueryJit {
 public:
  /// Below this bytecode length the VM's dispatch cost is already trivial
  /// and the wrapper's row conversion would eat the win, so e.g. a bare
  /// field-load projection stays on the VM. Three instructions — load,
  /// constant, compare — is the smallest filter term worth compiling.
  /// EXPLAIN's tier annotation mirrors this as an IR cost >= 2
  /// (plan/explain.cc); keep the two in sync.
  static constexpr size_t kMinInstrs = 3;

  /// Requests a native kernel for `*expr`, which must stay alive (at a
  /// stable address for the slot attach, though the slot itself is shared
  /// through copies) until the engine shuts down. Emission gaps — UDF
  /// calls, string operands — are counted as jit_fallbacks and leave the
  /// expression on the VM; sub-kMinInstrs expressions are skipped silently.
  void RequestExpr(expr::CompiledExpr* expr);

  /// Requests a packed-byte filter kernel (select_project's raw conjunct
  /// pass); always emittable. The caller keeps the returned slot and calls
  /// through it once the kernel is published.
  std::shared_ptr<expr::ByteFilterSlot> RequestFilter(
      const std::vector<RawFilterTerm>& terms);

  /// Number of kernels requested so far (introspection for tests).
  size_t num_requests() const { return exprs_.size() + filters_.size(); }

 private:
  friend class JitEngine;

  struct ExprRequest {
    std::shared_ptr<expr::KernelSlot> slot;
    KernelMeta meta;
  };
  struct FilterRequest {
    std::shared_ptr<expr::ByteFilterSlot> slot;
    std::string symbol;
  };

  explicit QueryJit(JitEngine* engine) : engine_(engine) {}

  JitEngine* engine_;
  std::string kernels_source_;  // emitted definitions, preamble excluded
  std::vector<ExprRequest> exprs_;
  std::vector<FilterRequest> filters_;
  size_t next_symbol_ = 0;
};

/// The native-tier driver owned by the engine: emits per-query modules,
/// compiles them (inline in sync mode, on a background thread in async
/// mode), keeps every loaded module and kernel wrapper alive, and publishes
/// kernels into the expression slots with release stores. Destroy it only
/// after every node that might evaluate through a published slot is gone.
class JitEngine {
 public:
  explicit JitEngine(JitOptions options);
  ~JitEngine();

  JitMode mode() const { return options_.mode; }
  bool enabled() const { return options_.mode != JitMode::kOff; }
  const std::string& cache_dir() const { return cache_dir_; }

  std::unique_ptr<QueryJit> BeginQuery();

  /// Hands a query's requests to the tier. Sync mode compiles before
  /// returning (queries start native); async mode enqueues and returns —
  /// operators run on the VM until the swap. Never fails: any error is a
  /// counted fallback to the VM.
  void Submit(std::unique_ptr<QueryJit> batch);

  /// Blocks until the async queue is drained. Called before fork
  /// (StartProcesses) so worker processes inherit the dlopen'd kernels
  /// rather than racing a post-fork swap, and by tests.
  void WaitIdle();

  /// Registers the tier's counters under entity "jit" (gs_stats catalog:
  /// jit_compiles, jit_compile_ns, jit_cache_hits, jit_fallbacks,
  /// jit_active_kernels).
  void RegisterTelemetry(telemetry::Registry* registry);

  // Introspection (tests, logs).
  uint64_t compiles() const { return compiles_.value(); }
  uint64_t cache_hits() const { return cache_hits_.value(); }
  uint64_t active_kernels() const { return active_kernels_.value(); }
  uint64_t fallbacks() const {
    return request_fallbacks_.value() + compile_fallbacks_.value();
  }

 private:
  friend class QueryJit;

  /// expr::NativeKernel implementation wrapping one resolved EvalFn.
  class ModuleKernel;

  void ProcessBatch(QueryJit* batch);
  void WorkerLoop();

  JitOptions options_;
  std::string cache_dir_;
  bool ephemeral_cache_ = false;
  bool toolchain_logged_ = false;  // "no compiler" is logged exactly once
  JitCompiler compiler_;

  // Loaded modules and kernel wrappers live as long as the engine: a
  // published kernel pointer must stay valid for every operator that might
  // still read its slot.
  std::vector<std::unique_ptr<LoadedModule>> modules_;
  std::vector<std::unique_ptr<ModuleKernel>> kernels_;
  std::vector<std::shared_ptr<expr::KernelSlot>> expr_slots_;
  std::vector<std::shared_ptr<expr::ByteFilterSlot>> filter_slots_;

  // Async compile queue.
  std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<std::unique_ptr<QueryJit>> queue_;
  size_t in_flight_ = 0;
  bool stop_ = false;
  std::thread worker_;

  // Counters. Single-writer each: request_fallbacks_ on the setup thread
  // (emission gaps), the rest on whichever thread runs ProcessBatch (fixed
  // per mode). Telemetry exposes the two fallback counters summed.
  telemetry::Counter compiles_;
  telemetry::Counter compile_ns_;
  telemetry::Counter cache_hits_;
  telemetry::Counter active_kernels_;
  telemetry::Counter request_fallbacks_;
  telemetry::Counter compile_fallbacks_;
};

}  // namespace gigascope::jit

#endif  // GIGASCOPE_JIT_ENGINE_H_
