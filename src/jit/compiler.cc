#include "jit/compiler.h"

#include <dirent.h>
#include <dlfcn.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <time.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "common/bytes.h"
#include "jit/abi.h"

namespace gigascope::jit {

namespace {

int64_t MonotonicNs() {
  timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<int64_t>(ts.tv_sec) * 1000000000 + ts.tv_nsec;
}

/// Flags handed to the toolchain; part of the cache key.
const char* const kCompileFlags[] = {"-std=c++17", "-O2", "-fPIC", "-shared"};

/// fork/execvp with stdout+stderr sent to `log_path` (or /dev/null).
/// Returns the child's exit code, or -1 when it did not exit normally.
int RunCommand(const std::vector<std::string>& args,
               const std::string& log_path) {
  std::vector<char*> argv;
  argv.reserve(args.size() + 1);
  for (const std::string& arg : args) {
    argv.push_back(const_cast<char*>(arg.c_str()));
  }
  argv.push_back(nullptr);

  pid_t pid = fork();
  if (pid < 0) return -1;
  if (pid == 0) {
    const char* sink = log_path.empty() ? "/dev/null" : log_path.c_str();
    int fd = open(sink, O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd >= 0) {
      dup2(fd, STDOUT_FILENO);
      dup2(fd, STDERR_FILENO);
      close(fd);
    }
    execvp(argv[0], argv.data());
    _exit(127);
  }
  int status = 0;
  while (waitpid(pid, &status, 0) < 0) {
    if (errno != EINTR) return -1;
  }
  return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

/// The probed compiler command, empty when no toolchain is usable.
const std::string& DetectedCompiler() {
  static const std::string detected = [] {
    std::vector<std::string> candidates;
    const char* forced = std::getenv("GS_JIT_CXX");
    if (forced != nullptr && forced[0] != '\0') {
      candidates.push_back(forced);
    } else {
      candidates = {"c++", "g++", "clang++"};
    }
    for (const std::string& candidate : candidates) {
      if (RunCommand({candidate, "--version"}, "") == 0) return candidate;
    }
    return std::string();
  }();
  return detected;
}

bool FileExists(const std::string& path) {
  struct stat st;
  return stat(path.c_str(), &st) == 0 && S_ISREG(st.st_mode);
}

Status WriteFileAtomic(const std::string& path, const std::string& content) {
  std::string tmp = path + ".tmp." + std::to_string(getpid());
  FILE* f = std::fopen(tmp.c_str(), "w");
  if (f == nullptr) {
    return Status::Internal("jit: cannot write " + tmp);
  }
  size_t written = std::fwrite(content.data(), 1, content.size(), f);
  int close_err = std::fclose(f);
  if (written != content.size() || close_err != 0) {
    std::remove(tmp.c_str());
    return Status::Internal("jit: short write to " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::Internal("jit: cannot rename into " + path);
  }
  return Status::Ok();
}

}  // namespace

Result<std::unique_ptr<LoadedModule>> JitCompiler::OpenModule(
    const std::string& so_path) {
  void* handle = dlopen(so_path.c_str(), RTLD_NOW | RTLD_LOCAL);
  if (handle == nullptr) {
    const char* err = dlerror();
    return Status::Internal("jit: dlopen(" + so_path +
                            ") failed: " + (err != nullptr ? err : "?"));
  }
  return std::unique_ptr<LoadedModule>(new LoadedModule(handle));
}

LoadedModule::~LoadedModule() {
  if (handle_ != nullptr) dlclose(handle_);
}

void* LoadedModule::Resolve(const std::string& symbol) const {
  return dlsym(handle_, symbol.c_str());
}

JitCompiler::JitCompiler(std::string cache_dir)
    : cache_dir_(std::move(cache_dir)) {}

bool JitCompiler::ToolchainAvailable() { return !DetectedCompiler().empty(); }

Result<std::unique_ptr<LoadedModule>> JitCompiler::CompileModule(
    const std::string& source, CompileStats* stats) {
  *stats = CompileStats();

  // Content hash over the TU plus everything else that shapes the binary.
  uint64_t hash = Fnv1a64(source.data(), source.size());
  hash ^= static_cast<uint64_t>(kAbiVersion) * 0x9e3779b97f4a7c15ULL;
  for (const char* flag : kCompileFlags) {
    hash = hash * 1099511628211ULL ^ Fnv1a64(flag, std::strlen(flag));
  }
  char hex[17];
  std::snprintf(hex, sizeof(hex), "%016llx",
                static_cast<unsigned long long>(hash));
  std::string base = cache_dir_ + "/gs_mod_" + hex;
  std::string so_path = base + ".so";

  if (FileExists(so_path)) {
    auto cached = OpenModule(so_path);
    if (cached.ok()) {
      stats->cache_hit = true;
      return cached;
    }
    // A stale or corrupt cache entry falls through to a fresh compile.
  }

  if (!ToolchainAvailable()) {
    return Status::FailedPrecondition("jit: no usable C++ compiler found");
  }

  std::string cc_path = base + ".cc";
  GS_RETURN_IF_ERROR(WriteFileAtomic(cc_path, source));

  std::vector<std::string> args = {DetectedCompiler()};
  for (const char* flag : kCompileFlags) args.push_back(flag);
  std::string so_tmp = so_path + ".tmp." + std::to_string(getpid());
  args.push_back("-o");
  args.push_back(so_tmp);
  args.push_back(cc_path);

  std::string log_path = base + ".err";
  int64_t start = MonotonicNs();
  int exit_code = RunCommand(args, log_path);
  stats->compile_ns = static_cast<uint64_t>(MonotonicNs() - start);
  if (exit_code != 0) {
    std::remove(so_tmp.c_str());
    return Status::Internal("jit: compile failed (exit " +
                            std::to_string(exit_code) + "), see " + log_path);
  }
  if (std::rename(so_tmp.c_str(), so_path.c_str()) != 0) {
    std::remove(so_tmp.c_str());
    return Status::Internal("jit: cannot rename module into " + so_path);
  }
  std::remove(log_path.c_str());
  return OpenModule(so_path);
}

Result<std::string> MakeEphemeralCacheDir() {
  const char* tmp = std::getenv("TMPDIR");
  std::string pattern =
      std::string(tmp != nullptr && tmp[0] != '\0' ? tmp : "/tmp") +
      "/gs-jit-XXXXXX";
  std::vector<char> buf(pattern.begin(), pattern.end());
  buf.push_back('\0');
  if (mkdtemp(buf.data()) == nullptr) {
    return Status::Internal("jit: mkdtemp failed for " + pattern);
  }
  return std::string(buf.data());
}

void RemoveCacheDir(const std::string& dir) {
  if (dir.empty()) return;
  DIR* d = opendir(dir.c_str());
  if (d != nullptr) {
    while (dirent* entry = readdir(d)) {
      if (std::strcmp(entry->d_name, ".") == 0 ||
          std::strcmp(entry->d_name, "..") == 0) {
        continue;
      }
      std::string path = dir + "/" + entry->d_name;
      struct stat st;
      if (stat(path.c_str(), &st) == 0 && S_ISREG(st.st_mode)) {
        std::remove(path.c_str());
      }
    }
    closedir(d);
  }
  rmdir(dir.c_str());
}

}  // namespace gigascope::jit
