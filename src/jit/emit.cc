#include "jit/emit.h"

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <limits>
#include <set>

namespace gigascope::jit {

namespace {

using expr::ByteOp;
using expr::CompiledExpr;
using expr::Instr;
using expr::IrKind;
using expr::IrPtr;
using expr::Value;
using gsql::DataType;

/// C++ spelling of a stack slot of this type; null for unsupported types.
const char* CType(DataType type) {
  switch (type) {
    case DataType::kBool: return "bool";
    case DataType::kInt: return "long long";
    case DataType::kUint:
    case DataType::kIp: return "unsigned long long";
    case DataType::kFloat: return "double";
    case DataType::kString: return nullptr;
  }
  return nullptr;
}

std::string IntLiteral(int64_t v) {
  // INT64_MIN has no literal of its own type.
  if (v == std::numeric_limits<int64_t>::min()) {
    return "(-9223372036854775807LL - 1)";
  }
  return std::to_string(v) + "LL";
}

std::string UintLiteral(uint64_t v) { return std::to_string(v) + "ULL"; }

std::string FloatLiteral(double v) {
  if (v != v) return "__builtin_nan(\"\")";
  if (v == std::numeric_limits<double>::infinity()) return "__builtin_inf()";
  if (v == -std::numeric_limits<double>::infinity()) {
    return "(-__builtin_inf())";
  }
  // Hexfloat round-trips every finite double exactly.
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%a", v);
  return buf;
}

/// `<cmp3 result> <suffix>` forms the boolean, e.g. `gs_cmp3_u(a,b) <= 0`.
const char* CmpSuffix(ByteOp op) {
  switch (op) {
    case ByteOp::kCmpEq: return "== 0";
    case ByteOp::kCmpNe: return "!= 0";
    case ByteOp::kCmpLt: return "< 0";
    case ByteOp::kCmpLe: return "<= 0";
    case ByteOp::kCmpGt: return "> 0";
    case ByteOp::kCmpGe: return ">= 0";
    default: return nullptr;
  }
}

const char* Cmp3Fn(DataType type) {
  switch (type) {
    case DataType::kBool:  // compared as 0/1 ints, like Value::Compare
    case DataType::kInt: return "gs_cmp3_i";
    case DataType::kUint:
    case DataType::kIp: return "gs_cmp3_u";
    case DataType::kFloat: return "gs_cmp3_f";
    case DataType::kString: return nullptr;
  }
  return nullptr;
}

/// Walks the bytecode with a symbolic stack of typed C++ temporaries and
/// emits one statement per instruction, so the division / modulo guards can
/// `return <error>` mid-function exactly where the VM would fail. Stack
/// discipline guarantees each temp is consumed once, keeping output linear.
class ExprEmitter {
 public:
  explicit ExprEmitter(const CompiledExpr& expr) : expr_(expr) {}

  std::optional<std::string> Run(const std::string& symbol, KernelMeta* meta) {
    // load_types must cover every load in `code`; older or hand-built
    // bytecode without the side table cannot be transpiled.
    size_t loads = 0;
    for (const Instr& instr : expr_.code) {
      if (instr.op == ByteOp::kLoadField || instr.op == ByteOp::kLoadParam) {
        ++loads;
      }
    }
    if (loads != expr_.load_types.size()) return std::nullopt;

    for (const Instr& instr : expr_.code) {
      if (!Emit(instr)) return std::nullopt;
    }
    if (stack_.size() != 1) return std::nullopt;
    const Slot& top = stack_.back();
    if (top.type != expr_.result_type) return std::nullopt;

    std::string out;
    out += "extern \"C\" int " + symbol +
           "(const gs_value* r0, const gs_value* r1, const gs_value* pp, "
           "gs_value* out) {\n";
    out += "  (void)r0; (void)r1; (void)pp;\n";
    out += body_;
    switch (top.type) {
      case DataType::kBool:
        out += "  out->b = (unsigned char)(" + top.name + " ? 1 : 0);\n";
        break;
      case DataType::kInt:
        out += "  out->i = " + top.name + ";\n";
        break;
      case DataType::kUint:
      case DataType::kIp:
        out += "  out->u = " + top.name + ";\n";
        break;
      case DataType::kFloat:
        out += "  out->f = " + top.name + ";\n";
        break;
      case DataType::kString:
        return std::nullopt;
    }
    out += "  return 0;\n}\n";

    meta->symbol = symbol;
    meta->result_type = expr_.result_type;
    meta->fields0.assign(fields0_.begin(), fields0_.end());
    meta->fields1.assign(fields1_.begin(), fields1_.end());
    meta->params.assign(params_.begin(), params_.end());
    return out;
  }

 private:
  struct Slot {
    DataType type;
    std::string name;
  };

  /// Emits `const <T> t<N> = <init>;` and pushes the temp.
  bool PushTemp(DataType type, const std::string& init) {
    const char* ctype = CType(type);
    if (ctype == nullptr) return false;
    std::string name = "t" + std::to_string(next_temp_++);
    body_ += "  const " + std::string(ctype) + " " + name + " = " + init +
             ";\n";
    stack_.push_back({type, name});
    return true;
  }

  bool Pop(Slot* slot) {
    if (stack_.empty()) return false;
    *slot = std::move(stack_.back());
    stack_.pop_back();
    return true;
  }

  bool Emit(const Instr& instr) {
    switch (instr.op) {
      case ByteOp::kPushConst: {
        if (instr.a >= expr_.constants.size()) return false;
        const Value& c = expr_.constants[instr.a];
        switch (c.type()) {
          case DataType::kBool:
            return PushTemp(c.type(), c.bool_value() ? "true" : "false");
          case DataType::kInt:
            return PushTemp(c.type(), IntLiteral(c.int_value()));
          case DataType::kUint:
          case DataType::kIp:
            return PushTemp(c.type(), UintLiteral(c.uint_value()));
          case DataType::kFloat:
            return PushTemp(c.type(), FloatLiteral(c.float_value()));
          case DataType::kString:
            return false;
        }
        return false;
      }

      case ByteOp::kLoadField:
      case ByteOp::kLoadParam: {
        DataType type = expr_.load_types[load_cursor_++];
        std::string base;
        if (instr.op == ByteOp::kLoadParam) {
          base = "pp[" + std::to_string(instr.a) + "]";
          params_.insert(instr.a);
        } else if (instr.a == 0) {
          base = "r0[" + std::to_string(instr.b) + "]";
          fields0_.insert(instr.b);
        } else {
          base = "r1[" + std::to_string(instr.b) + "]";
          fields1_.insert(instr.b);
        }
        switch (type) {
          case DataType::kBool:
            return PushTemp(type, "(" + base + ".b != 0)");
          case DataType::kInt:
            return PushTemp(type, base + ".i");
          case DataType::kUint:
          case DataType::kIp:
            return PushTemp(type, base + ".u");
          case DataType::kFloat:
            return PushTemp(type, base + ".f");
          case DataType::kString:
            return false;
        }
        return false;
      }

      case ByteOp::kCall:
        return false;  // UDF call sites stay on the VM

      case ByteOp::kNeg: {
        Slot a;
        if (!Pop(&a)) return false;
        if (a.type == DataType::kInt) {
          // Wrapping negation, mirroring the hardened VM.
          return PushTemp(a.type, "(long long)(0ULL - (unsigned long long)" +
                                      a.name + ")");
        }
        if (a.type == DataType::kFloat) {
          return PushTemp(a.type, "(-" + a.name + ")");
        }
        return false;
      }

      case ByteOp::kNot: {
        Slot a;
        if (!Pop(&a)) return false;
        if (a.type != DataType::kBool) return false;
        return PushTemp(a.type, "(!" + a.name + ")");
      }

      case ByteOp::kAnd:
      case ByteOp::kOr: {
        Slot b, a;
        if (!Pop(&b) || !Pop(&a)) return false;
        if (a.type != DataType::kBool || b.type != DataType::kBool) {
          return false;
        }
        // Both operands are already-computed temps, so && / || here cannot
        // short-circuit anything — matching the VM, which always executes
        // both subexpressions (and surfaces their errors) before the logic
        // op.
        const char* op = instr.op == ByteOp::kAnd ? " && " : " || ";
        return PushTemp(DataType::kBool,
                        "(" + a.name + op + b.name + ")");
      }

      case ByteOp::kCmpEq:
      case ByteOp::kCmpNe:
      case ByteOp::kCmpLt:
      case ByteOp::kCmpLe:
      case ByteOp::kCmpGt:
      case ByteOp::kCmpGe: {
        Slot b, a;
        if (!Pop(&b) || !Pop(&a)) return false;
        if (a.type != b.type) return false;
        const char* cmp3 = Cmp3Fn(a.type);
        if (cmp3 == nullptr) return false;
        std::string lhs = a.name;
        std::string rhs = b.name;
        if (a.type == DataType::kBool) {
          lhs = "(long long)" + lhs;
          rhs = "(long long)" + rhs;
        }
        return PushTemp(DataType::kBool, "(" + std::string(cmp3) + "(" + lhs +
                                             ", " + rhs + ") " +
                                             CmpSuffix(instr.op) + ")");
      }

      case ByteOp::kCast:
        return EmitCast(static_cast<DataType>(instr.a));

      case ByteOp::kAdd:
      case ByteOp::kSub:
      case ByteOp::kMul:
      case ByteOp::kDiv:
      case ByteOp::kMod:
      case ByteOp::kBitAnd:
      case ByteOp::kBitOr:
        return EmitArithmetic(instr.op);
    }
    return false;
  }

  bool EmitArithmetic(ByteOp op) {
    Slot b, a;
    if (!Pop(&b) || !Pop(&a)) return false;
    if (a.type != b.type) return false;
    switch (a.type) {
      case DataType::kInt:
        switch (op) {
          // Signed add/sub/mul wrap via the uint64 round-trip, exactly like
          // the hardened ArithmeticOp in expr/vm.cc.
          case ByteOp::kAdd:
          case ByteOp::kSub:
          case ByteOp::kMul: {
            const char* sym = op == ByteOp::kAdd   ? " + "
                              : op == ByteOp::kSub ? " - "
                                                   : " * ";
            return PushTemp(a.type, "(long long)((unsigned long long)" +
                                        a.name + sym +
                                        "(unsigned long long)" + b.name +
                                        ")");
          }
          case ByteOp::kDiv:
            body_ += "  if (" + b.name + " == 0) return 1;\n";
            body_ += "  if (" + a.name +
                     " == (-9223372036854775807LL - 1) && " + b.name +
                     " == -1) return 3;\n";
            return PushTemp(a.type, a.name + " / " + b.name);
          case ByteOp::kMod:
            body_ += "  if (" + b.name + " == 0) return 2;\n";
            body_ += "  if (" + a.name +
                     " == (-9223372036854775807LL - 1) && " + b.name +
                     " == -1) return 4;\n";
            return PushTemp(a.type, a.name + " % " + b.name);
          case ByteOp::kBitAnd:
            return PushTemp(a.type, "(" + a.name + " & " + b.name + ")");
          case ByteOp::kBitOr:
            return PushTemp(a.type, "(" + a.name + " | " + b.name + ")");
          default:
            return false;
        }
      case DataType::kUint:
        switch (op) {
          case ByteOp::kAdd:
            return PushTemp(a.type, "(" + a.name + " + " + b.name + ")");
          case ByteOp::kSub:
            return PushTemp(a.type, "(" + a.name + " - " + b.name + ")");
          case ByteOp::kMul:
            return PushTemp(a.type, "(" + a.name + " * " + b.name + ")");
          case ByteOp::kDiv:
            body_ += "  if (" + b.name + " == 0ULL) return 1;\n";
            return PushTemp(a.type, a.name + " / " + b.name);
          case ByteOp::kMod:
            body_ += "  if (" + b.name + " == 0ULL) return 2;\n";
            return PushTemp(a.type, a.name + " % " + b.name);
          case ByteOp::kBitAnd:
            return PushTemp(a.type, "(" + a.name + " & " + b.name + ")");
          case ByteOp::kBitOr:
            return PushTemp(a.type, "(" + a.name + " | " + b.name + ")");
          default:
            return false;
        }
      case DataType::kFloat:
        switch (op) {
          case ByteOp::kAdd:
            return PushTemp(a.type, "(" + a.name + " + " + b.name + ")");
          case ByteOp::kSub:
            return PushTemp(a.type, "(" + a.name + " - " + b.name + ")");
          case ByteOp::kMul:
            return PushTemp(a.type, "(" + a.name + " * " + b.name + ")");
          case ByteOp::kDiv:
            // The VM rejects float division by (either-signed) zero too.
            body_ += "  if (" + b.name + " == 0.0) return 1;\n";
            return PushTemp(a.type, a.name + " / " + b.name);
          default:
            return false;  // float mod / bit ops are VM runtime errors
        }
      default:
        return false;  // bool/ip/string arithmetic is a VM runtime error
    }
  }

  bool EmitCast(DataType target) {
    Slot a;
    if (!Pop(&a)) return false;
    if (a.type == target) {
      stack_.push_back(std::move(a));  // CastValue is the identity here
      return true;
    }
    switch (target) {
      case DataType::kInt:
        switch (a.type) {
          case DataType::kUint:
          case DataType::kIp:
            return PushTemp(target, "(long long)" + a.name);
          case DataType::kFloat:
            return PushTemp(target, "gs_d2i(" + a.name + ")");
          case DataType::kBool:
            return PushTemp(target, "(" + a.name + " ? 1LL : 0LL)");
          default:
            return false;
        }
      case DataType::kUint:
        switch (a.type) {
          case DataType::kInt:
            return PushTemp(target, "(unsigned long long)" + a.name);
          case DataType::kIp:
            return PushTemp(target, a.name);  // same 64-bit storage
          case DataType::kFloat:
            return PushTemp(target, "gs_d2u(" + a.name + ")");
          case DataType::kBool:
            return PushTemp(target, "(" + a.name + " ? 1ULL : 0ULL)");
          default:
            return false;
        }
      case DataType::kFloat:
        switch (a.type) {
          case DataType::kBool:
            return PushTemp(target, "(" + a.name + " ? 1.0 : 0.0)");
          case DataType::kInt:
          case DataType::kUint:
          case DataType::kIp:
            return PushTemp(target, "(double)" + a.name);
          default:
            return false;
        }
      case DataType::kIp:
        switch (a.type) {
          case DataType::kUint:
          case DataType::kInt:
            // CastValue truncates to u32 (defined modulo-2^32 wrap).
            return PushTemp(target,
                            "(unsigned long long)(unsigned int)" + a.name);
          default:
            return false;
        }
      case DataType::kBool:
        // CastValue: numeric-to-bool goes through AsDouble() != 0; NaN is
        // truthy. Mirror the double round-trip literally.
        switch (a.type) {
          case DataType::kFloat:
            return PushTemp(target, "(" + a.name + " != 0.0)");
          case DataType::kInt:
          case DataType::kUint:
          case DataType::kIp:
            return PushTemp(target, "((double)" + a.name + " != 0.0)");
          default:
            return false;
        }
      case DataType::kString:
        return false;
    }
    return false;
  }

  const CompiledExpr& expr_;
  std::string body_;
  std::vector<Slot> stack_;
  std::set<uint16_t> fields0_, fields1_, params_;
  size_t load_cursor_ = 0;
  int next_temp_ = 0;
};

bool CanEmitCast(DataType from, DataType to) {
  if (from == to) return true;
  if (from == DataType::kString || to == DataType::kString) return false;
  switch (to) {
    case DataType::kIp:
      return from == DataType::kUint || from == DataType::kInt;
    default:
      return true;
  }
}

}  // namespace

std::string ModulePreamble() {
  return R"(// Generated by the gigascope native query tier. Do not edit.
// abi v1 -- layout and helper semantics must match src/jit/abi.h and the
// expression VM (src/expr/vm.cc) exactly; see DESIGN.md section 15.
typedef union {
  long long i;
  unsigned long long u;
  double f;
  unsigned char b;
} gs_value;
static_assert(sizeof(gs_value) == 8, "abi slot size");

namespace {
inline int gs_cmp3_i(long long a, long long b) {
  return a < b ? -1 : (a > b ? 1 : 0);
}
inline int gs_cmp3_u(unsigned long long a, unsigned long long b) {
  return a < b ? -1 : (a > b ? 1 : 0);
}
// NaN compares "equal" to everything -- identical to Value::Compare.
inline int gs_cmp3_f(double a, double b) {
  return a < b ? -1 : (a > b ? 1 : 0);
}
inline long long gs_d2i(double v) {
  if (v != v) return 0;
  if (v >= 9223372036854775808.0) return 9223372036854775807LL;
  if (v < -9223372036854775808.0) return -9223372036854775807LL - 1;
  return (long long)v;
}
inline unsigned long long gs_d2u(double v) {
  if (v != v) return 0;
  if (v >= 18446744073709551616.0) return 18446744073709551615ULL;
  if (v < 0) return 0;
  return (unsigned long long)v;
}
// Little-endian packed-tuple reads, identical to ops/select_project.
inline unsigned long long gs_rd64(const unsigned char* p) {
  unsigned long long v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}
inline unsigned long long gs_rd32(const unsigned char* p) {
  return (unsigned long long)p[0] | ((unsigned long long)p[1] << 8) |
         ((unsigned long long)p[2] << 16) | ((unsigned long long)p[3] << 24);
}
inline double gs_rdf(const unsigned char* p) {
  unsigned long long u = gs_rd64(p);
  double d;
  __builtin_memcpy(&d, &u, 8);
  return d;
}
}  // namespace
)";
}

std::optional<std::string> EmitExprKernel(const CompiledExpr& expr,
                                          const std::string& symbol,
                                          KernelMeta* meta) {
  ExprEmitter emitter(expr);
  return emitter.Run(symbol, meta);
}

std::string EmitFilterKernel(const std::vector<RawFilterTerm>& terms,
                             const std::string& symbol) {
  std::string out = "extern \"C\" int " + symbol +
                    "(const unsigned char* p, unsigned long long len) {\n"
                    "  (void)len;\n";
  for (const RawFilterTerm& term : terms) {
    std::string lhs;
    std::string rhs;
    const char* cmp3 = "gs_cmp3_u";
    std::string off = std::to_string(term.offset);
    switch (term.type) {
      case DataType::kUint:
        lhs = "gs_rd64(p + " + off + ")";
        rhs = UintLiteral(term.u);
        break;
      case DataType::kIp:
        lhs = "gs_rd32(p + " + off + ")";
        rhs = UintLiteral(term.u);
        break;
      case DataType::kBool:
        lhs = "(unsigned long long)(p[" + off + "] != 0 ? 1 : 0)";
        rhs = UintLiteral(term.u);
        break;
      case DataType::kInt:
        lhs = "(long long)gs_rd64(p + " + off + ")";
        rhs = IntLiteral(term.i);
        cmp3 = "gs_cmp3_i";
        break;
      case DataType::kFloat:
        lhs = "gs_rdf(p + " + off + ")";
        rhs = FloatLiteral(term.f);
        cmp3 = "gs_cmp3_f";
        break;
      case DataType::kString:
        // Never built by BuildRawFilter; keep the kernel well-defined.
        out += "  return 0;\n}\n";
        return out;
    }
    out += "  if (!(" + std::string(cmp3) + "(" + lhs + ", " + rhs + ") " +
           CmpSuffix(term.cmp) + ")) return 0;\n";
  }
  out += "  return 1;\n}\n";
  return out;
}

bool CanEmitIr(const IrPtr& ir) {
  if (ir == nullptr) return false;
  if (ir->type == DataType::kString) return false;
  switch (ir->kind) {
    case IrKind::kCall:
      return false;
    case IrKind::kConst:
    case IrKind::kField:
    case IrKind::kParam:
      return true;
    case IrKind::kCast:
      if (!CanEmitCast(ir->children[0]->type, ir->type)) return false;
      break;
    case IrKind::kUnary:
      if (ir->unary_op == gsql::UnaryOp::kNeg
              ? (ir->type != DataType::kInt && ir->type != DataType::kFloat)
              : ir->type != DataType::kBool) {
        return false;
      }
      break;
    case IrKind::kBinary: {
      DataType child = ir->children[0]->type;
      switch (ir->binary_op) {
        case gsql::BinaryOp::kMod:
        case gsql::BinaryOp::kBitAnd:
        case gsql::BinaryOp::kBitOr:
          if (child == DataType::kFloat) return false;
          break;
        default:
          break;
      }
      break;
    }
  }
  for (const IrPtr& child : ir->children) {
    if (!CanEmitIr(child)) return false;
  }
  return true;
}

}  // namespace gigascope::jit
