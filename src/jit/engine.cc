#include "jit/engine.h"

#include <sys/stat.h>

#include "common/logging.h"
#include "jit/abi.h"
#include "telemetry/metric_names.h"

namespace gigascope::jit {

using expr::Value;
using gsql::DataType;

namespace {

Status MapEvalError(int code) {
  // Exactly the Status the VM's ArithmeticOp would have produced — the
  // differential suite compares error outcomes, not just values.
  switch (code) {
    case kErrDivByZero:
      return Status::InvalidArgument("division by zero");
    case kErrModByZero:
      return Status::InvalidArgument("modulo by zero");
    case kErrDivOverflow:
      return Status::InvalidArgument("integer division overflow");
    case kErrModOverflow:
      return Status::InvalidArgument("integer modulo overflow");
    default:
      return Status::Internal("jit kernel returned unknown error " +
                              std::to_string(code));
  }
}

}  // namespace

std::optional<JitMode> ParseJitMode(const std::string& text) {
  if (text == "off") return JitMode::kOff;
  if (text == "sync") return JitMode::kSync;
  if (text == "async") return JitMode::kAsync;
  return std::nullopt;
}

const char* JitModeName(JitMode mode) {
  switch (mode) {
    case JitMode::kOff: return "off";
    case JitMode::kSync: return "sync";
    case JitMode::kAsync: return "async";
  }
  return "?";
}

/// Bridges one resolved EvalFn to the expr::NativeKernel contract: converts
/// the referenced field/param slots into ABI scratch arrays, calls through,
/// and maps the result (or error code) back. The eager bounds checks on the
/// maximum referenced indices are equivalent to the VM's per-load check
/// because bytecode is straight-line: the VM would hit the same load before
/// producing any result.
class JitEngine::ModuleKernel : public expr::NativeKernel {
 public:
  ModuleKernel(EvalFn fn, KernelMeta meta) : fn_(fn), meta_(std::move(meta)) {
    row0_.resize(meta_.fields0.empty() ? 0 : meta_.fields0.back() + 1);
    row1_.resize(meta_.fields1.empty() ? 0 : meta_.fields1.back() + 1);
    params_.resize(meta_.params.empty() ? 0 : meta_.params.back() + 1);
  }

  Status Eval(const expr::EvalContext& ctx, expr::EvalOutput* out) override {
    if (!meta_.fields0.empty()) {
      if (ctx.row0 == nullptr || meta_.fields0.back() >= ctx.row0->size()) {
        return Status::Internal("field load outside the input row");
      }
      Convert(*ctx.row0, meta_.fields0, row0_.data());
    }
    if (!meta_.fields1.empty()) {
      if (ctx.row1 == nullptr || meta_.fields1.back() >= ctx.row1->size()) {
        return Status::Internal("field load outside the input row");
      }
      Convert(*ctx.row1, meta_.fields1, row1_.data());
    }
    if (!meta_.params.empty()) {
      if (ctx.params == nullptr || meta_.params.back() >= ctx.params->size()) {
        return Status::Internal("parameter slot out of range");
      }
      Convert(*ctx.params, meta_.params, params_.data());
    }
    AbiValue result;
    result.u = 0;
    int rc = fn_(row0_.data(), row1_.data(), params_.data(), &result);
    if (rc != 0) return MapEvalError(rc);
    // Kernels contain no partial-function calls (those are emission gaps),
    // so a successful return always carries a value.
    out->has_value = true;
    switch (meta_.result_type) {
      case DataType::kBool:
        out->value = Value::Bool(result.b != 0);
        break;
      case DataType::kInt:
        out->value = Value::Int(result.i);
        break;
      case DataType::kUint:
        out->value = Value::Uint(result.u);
        break;
      case DataType::kFloat:
        out->value = Value::Float(result.f);
        break;
      case DataType::kIp:
        out->value = Value::Ip(static_cast<uint32_t>(result.u));
        break;
      case DataType::kString:
        return Status::Internal("jit kernel with string result");
    }
    return Status::Ok();
  }

 private:
  static void Convert(const std::vector<Value>& src,
                      const std::vector<uint16_t>& slots, AbiValue* dst) {
    for (uint16_t idx : slots) {
      const Value& v = src[idx];
      switch (v.type()) {
        case DataType::kBool:
          dst[idx].b = v.bool_value() ? 1 : 0;
          break;
        case DataType::kInt:
          dst[idx].i = v.int_value();
          break;
        case DataType::kUint:
        case DataType::kIp:
          dst[idx].u = v.uint_value();
          break;
        case DataType::kFloat:
          dst[idx].f = v.float_value();
          break;
        case DataType::kString:
          dst[idx].u = 0;  // unreachable: string loads are emission gaps
          break;
      }
    }
  }

  EvalFn fn_;
  KernelMeta meta_;
  // Scratch conversion buffers: a kernel belongs to one operator polled by
  // one thread (same contract as expr::Evaluator).
  std::vector<AbiValue> row0_, row1_, params_;
};

void QueryJit::RequestExpr(expr::CompiledExpr* expr) {
  if (engine_ == nullptr || !engine_->enabled()) return;
  if (expr == nullptr || expr->code.size() < kMinInstrs) return;
  std::string symbol = "gs_jit_v" + std::to_string(kAbiVersion) + "_k" +
                       std::to_string(next_symbol_);
  KernelMeta meta;
  std::optional<std::string> body = EmitExprKernel(*expr, symbol, &meta);
  if (!body.has_value()) {
    engine_->request_fallbacks_.Add(1);
    return;
  }
  ++next_symbol_;
  kernels_source_ += "\n" + *body;
  ExprRequest request;
  request.slot = std::make_shared<expr::KernelSlot>();
  request.meta = std::move(meta);
  expr->native = request.slot;
  exprs_.push_back(std::move(request));
}

std::shared_ptr<expr::ByteFilterSlot> QueryJit::RequestFilter(
    const std::vector<RawFilterTerm>& terms) {
  if (engine_ == nullptr || !engine_->enabled() || terms.empty()) {
    return nullptr;
  }
  std::string symbol = "gs_jit_v" + std::to_string(kAbiVersion) + "_k" +
                       std::to_string(next_symbol_);
  ++next_symbol_;
  kernels_source_ += "\n" + EmitFilterKernel(terms, symbol);
  FilterRequest request;
  request.slot = std::make_shared<expr::ByteFilterSlot>();
  request.symbol = std::move(symbol);
  filters_.push_back(request);
  return request.slot;
}

JitEngine::JitEngine(JitOptions options)
    : options_(std::move(options)), compiler_("") {
  if (!enabled()) return;
  if (options_.cache_dir.empty()) {
    Result<std::string> dir = MakeEphemeralCacheDir();
    if (!dir.ok()) {
      GS_LOG(Warning) << "jit: disabled, " << dir.status().message();
      options_.mode = JitMode::kOff;
      return;
    }
    cache_dir_ = std::move(dir.value());
    ephemeral_cache_ = true;
  } else {
    cache_dir_ = options_.cache_dir;
    mkdir(cache_dir_.c_str(), 0755);  // best effort; may already exist
  }
  compiler_ = JitCompiler(cache_dir_);
  if (options_.mode == JitMode::kAsync) {
    worker_ = std::thread(&JitEngine::WorkerLoop, this);
  }
}

JitEngine::~JitEngine() {
  if (worker_.joinable()) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      stop_ = true;
    }
    cv_.notify_all();
    worker_.join();
  }
  // Unpublish before dlclose. Defensive: operators reading these slots must
  // already be gone (the core engine destroys nodes first).
  for (const auto& slot : expr_slots_) {
    slot->kernel.store(nullptr, std::memory_order_release);
  }
  for (const auto& slot : filter_slots_) {
    slot->fn.store(nullptr, std::memory_order_release);
  }
  kernels_.clear();
  modules_.clear();
  if (ephemeral_cache_) RemoveCacheDir(cache_dir_);
}

std::unique_ptr<QueryJit> JitEngine::BeginQuery() {
  return std::unique_ptr<QueryJit>(new QueryJit(this));
}

void JitEngine::Submit(std::unique_ptr<QueryJit> batch) {
  if (batch == nullptr || !enabled()) return;
  if (batch->exprs_.empty() && batch->filters_.empty()) return;
  if (options_.mode == JitMode::kSync) {
    ProcessBatch(batch.get());
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(batch));
    ++in_flight_;
  }
  cv_.notify_all();
}

void JitEngine::WaitIdle() {
  if (options_.mode != JitMode::kAsync) return;
  std::unique_lock<std::mutex> lock(mutex_);
  cv_.wait(lock, [this] { return in_flight_ == 0 || stop_; });
}

void JitEngine::WorkerLoop() {
  std::unique_lock<std::mutex> lock(mutex_);
  while (true) {
    cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
    if (stop_) return;  // shutdown abandons whatever is still queued
    std::unique_ptr<QueryJit> batch = std::move(queue_.front());
    queue_.pop_front();
    lock.unlock();
    ProcessBatch(batch.get());
    lock.lock();
    --in_flight_;
    cv_.notify_all();
  }
}

void JitEngine::ProcessBatch(QueryJit* batch) {
  const size_t requested = batch->exprs_.size() + batch->filters_.size();
  if (!JitCompiler::ToolchainAvailable()) {
    if (!toolchain_logged_) {
      toolchain_logged_ = true;
      GS_LOG(Warning)
          << "jit: no usable C++ compiler (set GS_JIT_CXX?); all queries "
             "stay on the bytecode VM";
    }
    compile_fallbacks_.Add(requested);
    return;
  }

  std::string source = ModulePreamble() + batch->kernels_source_;
  CompileStats stats;
  Result<std::unique_ptr<LoadedModule>> module =
      compiler_.CompileModule(source, &stats);
  if (!module.ok()) {
    GS_LOG(Warning) << "jit: " << module.status().message()
                    << "; falling back to the VM";
    compile_fallbacks_.Add(requested);
    return;
  }
  if (stats.cache_hit) {
    cache_hits_.Add(1);
  } else {
    compiles_.Add(1);
    compile_ns_.Add(stats.compile_ns);
  }

  size_t published = 0;
  std::lock_guard<std::mutex> lock(mutex_);
  for (QueryJit::ExprRequest& request : batch->exprs_) {
    void* sym = module.value()->Resolve(request.meta.symbol);
    if (sym == nullptr) {
      compile_fallbacks_.Add(1);
      continue;
    }
    auto kernel = std::make_unique<ModuleKernel>(
        reinterpret_cast<EvalFn>(sym), std::move(request.meta));
    // The release store publishes the fully constructed kernel; operators
    // pick it up with an acquire load mid-run (async hot swap).
    request.slot->kernel.store(kernel.get(), std::memory_order_release);
    kernels_.push_back(std::move(kernel));
    expr_slots_.push_back(std::move(request.slot));
    ++published;
  }
  for (QueryJit::FilterRequest& request : batch->filters_) {
    void* sym = module.value()->Resolve(request.symbol);
    if (sym == nullptr) {
      compile_fallbacks_.Add(1);
      continue;
    }
    request.slot->fn.store(reinterpret_cast<FilterFn>(sym),
                           std::memory_order_release);
    filter_slots_.push_back(std::move(request.slot));
    ++published;
  }
  active_kernels_.Add(published);
  modules_.push_back(std::move(module.value()));
}

void JitEngine::RegisterTelemetry(telemetry::Registry* registry) {
  if (!enabled()) return;
  namespace metric = telemetry::metric;
  registry->Register("jit", metric::kJitCompiles, &compiles_);
  registry->Register("jit", metric::kJitCompileNs, &compile_ns_);
  registry->Register("jit", metric::kJitCacheHits, &cache_hits_);
  registry->RegisterReader("jit", metric::kJitFallbacks,
                           [this] { return fallbacks(); });
  registry->Register("jit", metric::kJitActiveKernels, &active_kernels_);
}

}  // namespace gigascope::jit
