#include "plan/logical_plan.h"

namespace gigascope::plan {

const char* PlanKindName(PlanKind kind) {
  switch (kind) {
    case PlanKind::kSource: return "Source";
    case PlanKind::kSelectProject: return "SelectProject";
    case PlanKind::kAggregate: return "Aggregate";
    case PlanKind::kJoin: return "Join";
    case PlanKind::kMerge: return "Merge";
  }
  return "?";
}

std::string PlanNode::ToString(int indent) const {
  std::string pad(static_cast<size_t>(indent) * 2, ' ');
  std::string out = pad + PlanKindName(kind);
  switch (kind) {
    case PlanKind::kSource:
      out += " " + source_stream;
      if (!interface_name.empty()) out += " @" + interface_name;
      break;
    case PlanKind::kSelectProject:
      if (predicate != nullptr) out += " where " + predicate->ToString();
      out += " -> [";
      for (size_t i = 0; i < projections.size(); ++i) {
        if (i > 0) out += ", ";
        out += projections[i]->ToString();
      }
      out += "]";
      break;
    case PlanKind::kAggregate: {
      out += " by [";
      for (size_t i = 0; i < group_keys.size(); ++i) {
        if (i > 0) out += ", ";
        out += group_keys[i]->ToString();
      }
      out += "] agg [";
      for (size_t i = 0; i < aggregates.size(); ++i) {
        if (i > 0) out += ", ";
        out += aggregates[i].ToString();
      }
      out += "]";
      if (ordered_key >= 0) {
        out += " ordered_key=" + std::to_string(ordered_key);
      } else {
        out += " UNBOUNDED";
      }
      break;
    }
    case PlanKind::kJoin:
      out += " window[" + std::to_string(window_lo) + "," +
             std::to_string(window_hi) + "]";
      if (join_predicate != nullptr) {
        out += " on " + join_predicate->ToString();
      }
      break;
    case PlanKind::kMerge:
      out += " on field " + std::to_string(merge_field);
      break;
  }
  out += "  :: " + output_schema.ToString() + "\n";
  for (const PlanPtr& child : children) {
    out += child->ToString(indent + 1);
  }
  return out;
}

PlanPtr MakeSourceNode(const gsql::StreamSchema& schema,
                       const std::string& interface_name) {
  auto node = std::make_shared<PlanNode>();
  node->kind = PlanKind::kSource;
  node->output_schema = schema;
  node->source_stream = schema.name();
  node->interface_name = interface_name;
  node->source_is_protocol = schema.kind() == gsql::StreamKind::kProtocol;
  return node;
}

PlanPtr MakeSelectProjectNode(PlanPtr child, expr::IrPtr predicate,
                              std::vector<expr::IrPtr> projections,
                              gsql::StreamSchema output_schema) {
  auto node = std::make_shared<PlanNode>();
  node->kind = PlanKind::kSelectProject;
  node->children.push_back(std::move(child));
  node->predicate = std::move(predicate);
  node->projections = std::move(projections);
  node->output_schema = std::move(output_schema);
  return node;
}

size_t PlanSize(const PlanPtr& plan) {
  if (plan == nullptr) return 0;
  size_t size = 1;
  for (const PlanPtr& child : plan->children) size += PlanSize(child);
  return size;
}

}  // namespace gigascope::plan
