#ifndef GIGASCOPE_PLAN_EXPLAIN_H_
#define GIGASCOPE_PLAN_EXPLAIN_H_

#include <cstdint>
#include <functional>
#include <string>

#include "plan/planner.h"
#include "plan/splitter.h"

namespace gigascope::plan {

/// EXPLAIN introspection of a compiled query: renders the post-split plan
/// — which operators landed in the LFTA next to the packet source and
/// which in the HFTA, the ordering properties the planner imputed on every
/// intermediate schema, window bounds, and per-operator expression cost
/// against the LFTA budget — without instantiating anything.
///
/// Both renderings are stable (no pointers, timestamps, or hash-order
/// iteration), so they serve as golden-test surfaces for the planner and
/// splitter: a split regression shows up as a placement diff, a lost
/// ordering property as an `order:` diff.

struct ExplainOptions {
  /// Annotates each expression-bearing operator with the evaluation tier
  /// the native compiled-query layer would choose for it (`tier: native`
  /// when at least one of its expressions is emittable as C++ and clears
  /// the minimum-size threshold, else `tier: vm`; DESIGN.md §15). Off by
  /// default so the pre-existing golden surfaces are byte-identical.
  bool jit = false;
};

/// Human-readable form, used by `gsqlc --explain`.
std::string ExplainText(const PlannedQuery& planned, const SplitQuery& split,
                        const ExplainOptions& opts = {});

/// Machine-readable form (one JSON object), used by `gsqlc --explain=json`.
std::string ExplainJson(const PlannedQuery& planned, const SplitQuery& split,
                        const ExplainOptions& opts = {});

// -- EXPLAIN ANALYZE (gsrun --analyze) ---------------------------------------
//
// The same plan rendering annotated with live runtime counters: the engine
// resolves each plan operator to its instantiated node (root = the
// query/LFTA output name; child i of a node named N publishes N + "#i")
// and supplies its counters through AnalyzeLookup. Source leaves resolve
// to their stream names; the lookup may return null for any name it has no
// stats for, which just suppresses the actual-value lines.

/// Live counters of one instantiated operator node.
struct AnalyzeNodeStats {
  /// Owning process: "rts" (the parent) or a worker "w0", "w1", ....
  std::string proc = "rts";
  /// Restarts the owning worker process has consumed (0 for "rts").
  uint32_t restarts = 0;
  uint64_t tuples_in = 0;
  uint64_t tuples_out = 0;
  uint64_t eval_errors = 0;
  /// Busy-poll duration / per-message latency percentiles, wall ns
  /// (volatile: masked under AnalyzeOptions::mask_volatile).
  uint64_t poll_ns_p50 = 0;
  uint64_t poll_ns_p99 = 0;
  uint64_t tuple_ns_p50 = 0;
  uint64_t tuple_ns_p99 = 0;
  /// Input ring health, summed over the node's input channels.
  uint64_t ring_pushed = 0;
  uint64_t ring_popped = 0;
  uint64_t ring_dropped = 0;
  uint64_t ring_size = 0;        // volatile
  uint64_t ring_high_water = 0;  // volatile
  /// JIT tier actually active right now: expression slots holding a
  /// hot-swapped native kernel vs. total compilable slots (compare with the
  /// predicted `tier:` annotation).
  uint64_t jit_native = 0;
  uint64_t jit_total = 0;
};

/// Engine-level header values for one ANALYZE rendering.
struct AnalyzeSummary {
  std::string pump_mode = "single";  // "single" | "threads" | "processes"
  uint64_t shed_level = 0;
  uint64_t worker_restarts = 0;
  uint64_t workers_degraded = 0;
  /// Traced tuples whose span was lost at an operator with no tracer
  /// attached (worker-process nodes run untraced).
  uint64_t trace_truncated = 0;
};

struct AnalyzeOptions {
  /// Omits wall-clock and occupancy fields (timing percentiles, ring
  /// size/high-water) so the rendering is run-to-run stable and can serve
  /// as a golden-test surface like plain EXPLAIN.
  bool mask_volatile = false;
};

/// Resolves an instantiated node's runtime name to its live stats; null =
/// no stats known for that name.
using AnalyzeLookup =
    std::function<const AnalyzeNodeStats*(const std::string& runtime_name)>;

/// Human-readable EXPLAIN ANALYZE (`gsrun --analyze`): plain EXPLAIN with
/// the jit tier prediction on, plus an `analyze:` header line and
/// actual/proc/jit-active/ring/timing lines per resolved operator.
std::string ExplainAnalyzeText(const PlannedQuery& planned,
                               const SplitQuery& split,
                               const AnalyzeLookup& lookup,
                               const AnalyzeSummary& summary,
                               const AnalyzeOptions& opts = {});

/// Machine-readable form: the ExplainJson object with a top-level
/// "analyze" summary and an "actual" object per resolved operator.
std::string ExplainAnalyzeJson(const PlannedQuery& planned,
                               const SplitQuery& split,
                               const AnalyzeLookup& lookup,
                               const AnalyzeSummary& summary,
                               const AnalyzeOptions& opts = {});

}  // namespace gigascope::plan

#endif  // GIGASCOPE_PLAN_EXPLAIN_H_
