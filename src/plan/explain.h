#ifndef GIGASCOPE_PLAN_EXPLAIN_H_
#define GIGASCOPE_PLAN_EXPLAIN_H_

#include <string>

#include "plan/planner.h"
#include "plan/splitter.h"

namespace gigascope::plan {

/// EXPLAIN introspection of a compiled query: renders the post-split plan
/// — which operators landed in the LFTA next to the packet source and
/// which in the HFTA, the ordering properties the planner imputed on every
/// intermediate schema, window bounds, and per-operator expression cost
/// against the LFTA budget — without instantiating anything.
///
/// Both renderings are stable (no pointers, timestamps, or hash-order
/// iteration), so they serve as golden-test surfaces for the planner and
/// splitter: a split regression shows up as a placement diff, a lost
/// ordering property as an `order:` diff.

struct ExplainOptions {
  /// Annotates each expression-bearing operator with the evaluation tier
  /// the native compiled-query layer would choose for it (`tier: native`
  /// when at least one of its expressions is emittable as C++ and clears
  /// the minimum-size threshold, else `tier: vm`; DESIGN.md §15). Off by
  /// default so the pre-existing golden surfaces are byte-identical.
  bool jit = false;
};

/// Human-readable form, used by `gsqlc --explain`.
std::string ExplainText(const PlannedQuery& planned, const SplitQuery& split,
                        const ExplainOptions& opts = {});

/// Machine-readable form (one JSON object), used by `gsqlc --explain=json`.
std::string ExplainJson(const PlannedQuery& planned, const SplitQuery& split,
                        const ExplainOptions& opts = {});

}  // namespace gigascope::plan

#endif  // GIGASCOPE_PLAN_EXPLAIN_H_
