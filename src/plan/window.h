#ifndef GIGASCOPE_PLAN_WINDOW_H_
#define GIGASCOPE_PLAN_WINDOW_H_

#include <cstdint>
#include <vector>

#include "expr/ir.h"
#include "gsql/schema.h"

namespace gigascope::plan {

/// A join window extracted from the join predicate (§2.2): the constraint
/// `left_ts - right_ts ∈ [lo, hi]`, where both attributes carry increasing
/// ordering properties. GSQL rejects joins for which no window can be
/// determined — that is what bounds the join state.
struct JoinWindow {
  size_t left_field = 0;   // attribute index in the left input
  size_t right_field = 0;  // attribute index in the right input
  int64_t lo = 0;
  int64_t hi = 0;

  uint64_t width() const { return static_cast<uint64_t>(hi - lo); }

  /// Conjuncts of the join predicate that the window subsumes (the join
  /// operator enforces [lo, hi] directly, in signed arithmetic, so these
  /// must not be re-evaluated — unsigned re-evaluation of `ts >= ts2 - c`
  /// would underflow near zero). The planner keeps only the rest as the
  /// residual predicate.
  std::vector<expr::IrPtr> residual;
};

/// Splits a predicate into its top-level conjuncts.
void SplitConjuncts(const expr::IrPtr& predicate,
                    std::vector<expr::IrPtr>* out);

/// Rebuilds a conjunction from parts (null when `parts` is empty).
expr::IrPtr AndTogether(const std::vector<expr::IrPtr>& parts);

/// Scans the predicate's conjuncts for window constraints between ordered
/// attributes of the two inputs. Recognized shapes (and all their
/// reflections):
///   L.ts =  R.ts            -> [0, 0]
///   L.ts >= R.ts - c        -> lo = -c
///   L.ts <= R.ts + c        -> hi = +c
///   L.ts >  R.ts - c        -> lo = -c + 1
///   L.ts <  R.ts + c        -> hi = +c - 1
/// Returns PlanError when no finite window exists ("the join predicate must
/// include a constraint which defines a window").
Result<JoinWindow> ExtractJoinWindow(const expr::IrPtr& predicate,
                                     const gsql::StreamSchema& left,
                                     const gsql::StreamSchema& right);

}  // namespace gigascope::plan

#endif  // GIGASCOPE_PLAN_WINDOW_H_
