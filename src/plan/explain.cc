#include "plan/explain.h"

#include <cstdio>
#include <string_view>
#include <vector>

#include "expr/cost.h"
#include "jit/emit.h"

namespace gigascope::plan {
namespace {

// Costs print via %g so integral estimates stay short ("5", not "5.000000")
// and the text is stable across platforms.
std::string FormatCost(double cost) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%g", cost);
  return buf;
}

std::string JsonEscape(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out += "\"";
  return out;
}

/// Per-evaluation expression cost of one operator (arithmetic-op units,
/// the same scale as expr::kLftaCostBudget).
double NodeCost(const PlanNode& node) {
  double cost = 0;
  switch (node.kind) {
    case PlanKind::kSelectProject:
      if (node.predicate != nullptr) cost += expr::EstimateCost(node.predicate);
      for (const expr::IrPtr& p : node.projections) {
        cost += expr::EstimateCost(p);
      }
      break;
    case PlanKind::kAggregate:
      for (const expr::IrPtr& k : node.group_keys) {
        cost += expr::EstimateCost(k);
      }
      for (const expr::AggregateSpec& agg : node.aggregates) {
        if (agg.arg != nullptr) cost += expr::EstimateCost(agg.arg);
      }
      break;
    case PlanKind::kJoin:
      if (node.join_predicate != nullptr) {
        cost += expr::EstimateCost(node.join_predicate);
      }
      break;
    case PlanKind::kSource:
    case PlanKind::kMerge:
      break;
  }
  return cost;
}

/// Whether the native tier would compile at least one of this node's
/// expressions: emittable C++ (no UDF calls, no string operands) and past
/// the minimum-size threshold — trivial expressions stay on the VM, whose
/// dispatch they cannot outrun (the IR-cost cutoff mirrors the runtime's
/// bytecode-length cutoff QueryJit::kMinInstrs).
bool NodeTierNative(const PlanNode& node) {
  auto eligible = [](const expr::IrPtr& ir) {
    return ir != nullptr && jit::CanEmitIr(ir) && expr::EstimateCost(ir) >= 2;
  };
  switch (node.kind) {
    case PlanKind::kSelectProject:
      if (eligible(node.predicate)) return true;
      for (const expr::IrPtr& p : node.projections) {
        if (eligible(p)) return true;
      }
      return false;
    case PlanKind::kAggregate:
      for (const expr::IrPtr& k : node.group_keys) {
        if (eligible(k)) return true;
      }
      for (const expr::AggregateSpec& agg : node.aggregates) {
        if (eligible(agg.arg)) return true;
      }
      return false;
    case PlanKind::kJoin:
      return eligible(node.join_predicate);
    case PlanKind::kSource:
    case PlanKind::kMerge:
      return false;
  }
  return false;
}

/// Expression-bearing operators get a tier line; sources and merges
/// evaluate nothing, so the annotation would be noise.
bool NodeHasExprs(const PlanNode& node) {
  return node.kind == PlanKind::kSelectProject ||
         node.kind == PlanKind::kAggregate || node.kind == PlanKind::kJoin;
}

std::string PlacementName(const SplitQuery& split) {
  if (split.lfta != nullptr && split.hfta != nullptr) return "split";
  if (split.lfta != nullptr) return "lfta-only";
  return "hfta-only";
}

/// Which OS process each half executes in under the paper's §4 process
/// model: the LFTA runs inside the RTS next to the capture loop, the HFTA
/// in a supervised worker process (engine --processes mode; a worker
/// thread or the inject thread stand in for it in the other pump modes).
std::string ProcessLine(const SplitQuery& split) {
  std::string out;
  if (split.lfta != nullptr) out += "lfta=rts";
  if (split.hfta != nullptr) {
    if (!out.empty()) out += " ";
    out += "hfta=worker-process";
  }
  return out;
}

std::string OrderingLine(const gsql::StreamSchema& schema) {
  std::string out;
  for (size_t i = 0; i < schema.num_fields(); ++i) {
    const gsql::FieldDef& field = schema.field(i);
    if (i > 0) out += ", ";
    out += field.name;
    out += " ";
    out += gsql::DataTypeName(field.type);
    if (field.order.kind != gsql::OrderKind::kNone) {
      out += " [" + field.order.ToString() + "]";
    }
  }
  return out;
}

/// Shedding-ladder knobs that can act on this node when the overload
/// controller escalates (DESIGN.md §13): packet sources feel L1 1-in-k
/// sampling; LFTA-table aggregates feel L2 epoch coarsening and the L3
/// occupancy cap. Empty for HFTA-placed nodes — shedding happens at the
/// low layer, where data reduction is cheapest.
std::vector<const char*> ShedEligible(const PlanNode& node,
                                      const char* placement,
                                      bool lfta_table) {
  std::vector<const char*> knobs;
  if (std::string_view(placement) != "lfta") return knobs;
  if (node.kind == PlanKind::kSource) knobs.push_back("source-sampling");
  if (node.kind == PlanKind::kAggregate && lfta_table) {
    knobs.push_back("epoch-coarsen");
    knobs.push_back("table-cap");
  }
  return knobs;
}

/// ANALYZE rendering state: the lookup resolving runtime node names to live
/// stats, and the masking options. Null when rendering plain EXPLAIN.
struct AnalyzeContext {
  const AnalyzeLookup* lookup;
  const AnalyzeOptions* opts;
};

/// The stream name a Source leaf reads at runtime (mirrors the engine's
/// ProtocolStreamName convention).
std::string SourceRuntimeName(const PlanNode& node) {
  if (node.source_is_protocol && !node.interface_name.empty()) {
    return node.interface_name + "." + node.source_stream;
  }
  return node.source_stream;
}

void AnalyzeNodeText(const AnalyzeContext& analyze,
                     const std::string& runtime_name, const std::string& pad2,
                     std::string* out) {
  const AnalyzeNodeStats* stats = (*analyze.lookup)(runtime_name);
  if (stats == nullptr) return;
  *out += pad2 + "actual: in=" + std::to_string(stats->tuples_in) +
          " out=" + std::to_string(stats->tuples_out) +
          " errors=" + std::to_string(stats->eval_errors) + "\n";
  *out += pad2 + "proc: " + stats->proc;
  if (stats->restarts > 0) {
    *out += " (restarts " + std::to_string(stats->restarts) + ")";
  }
  *out += "\n";
  *out += pad2 + "jit-active: ";
  if (stats->jit_total == 0) {
    *out += "none";
  } else {
    *out += std::to_string(stats->jit_native) + "/" +
            std::to_string(stats->jit_total) + " native";
  }
  *out += "\n";
  *out += pad2 + "ring: pushed=" + std::to_string(stats->ring_pushed) +
          " popped=" + std::to_string(stats->ring_popped) +
          " dropped=" + std::to_string(stats->ring_dropped);
  if (!analyze.opts->mask_volatile) {
    *out += " size=" + std::to_string(stats->ring_size) +
            " high-water=" + std::to_string(stats->ring_high_water);
  }
  *out += "\n";
  if (!analyze.opts->mask_volatile) {
    *out += pad2 + "timing: poll p50=" + std::to_string(stats->poll_ns_p50) +
            "ns p99=" + std::to_string(stats->poll_ns_p99) +
            "ns, per-tuple p50=" + std::to_string(stats->tuple_ns_p50) +
            "ns p99=" + std::to_string(stats->tuple_ns_p99) + "ns\n";
  }
}

void ExplainNodeText(const PlanNode& node, const char* placement,
                     bool lfta_table, const ExplainOptions& opts,
                     const std::string& runtime_name,
                     const AnalyzeContext* analyze, int indent,
                     std::string* out) {
  const std::string pad(static_cast<size_t>(indent) * 2, ' ');
  const std::string pad2 = pad + "  ";
  *out += pad;
  *out += PlanKindName(node.kind);
  *out += " @";
  *out += placement;
  *out += "\n";
  switch (node.kind) {
    case PlanKind::kSource:
      *out += pad2 + "stream: " + node.source_stream;
      if (!node.interface_name.empty()) {
        *out += " (interface " + node.interface_name + ")";
      }
      *out += "\n";
      break;
    case PlanKind::kSelectProject: {
      if (node.predicate != nullptr) {
        *out += pad2 + "where: " + node.predicate->ToString() + " (cost " +
                FormatCost(expr::EstimateCost(node.predicate)) + ")\n";
      }
      std::string projections;
      for (size_t i = 0; i < node.projections.size(); ++i) {
        if (i > 0) projections += ", ";
        projections += node.projections[i]->ToString();
      }
      *out += pad2 + "project: [" + projections + "]\n";
      break;
    }
    case PlanKind::kAggregate: {
      std::string keys;
      for (size_t i = 0; i < node.group_keys.size(); ++i) {
        if (i > 0) keys += ", ";
        keys += node.group_keys[i]->ToString();
      }
      *out += pad2 + "group-by: [" + keys + "]\n";
      std::string aggs;
      for (size_t i = 0; i < node.aggregates.size(); ++i) {
        if (i > 0) aggs += ", ";
        aggs += node.aggregates[i].ToString();
      }
      *out += pad2 + "aggregates: [" + aggs + "]\n";
      if (node.ordered_key >= 0) {
        *out += pad2 + "ordered-key: group key " +
                std::to_string(node.ordered_key);
        if (node.ordered_key_band > 0) {
          *out += " (band " + std::to_string(node.ordered_key_band) + ")";
        }
        *out += "\n";
      } else {
        *out += pad2 + "ordered-key: none (unbounded state)\n";
      }
      break;
    }
    case PlanKind::kJoin:
      *out += pad2 + "window: left[" +
              std::to_string(node.left_window_field) + "] - right[" +
              std::to_string(node.right_window_field) + "] in [" +
              std::to_string(node.window_lo) + ", " +
              std::to_string(node.window_hi) + "]\n";
      if (node.join_predicate != nullptr) {
        *out += pad2 + "on: " + node.join_predicate->ToString() + "\n";
      }
      *out += pad2 + "algorithm: ";
      *out += node.join_order_preserving ? "order-preserving" : "eager";
      *out += "\n";
      break;
    case PlanKind::kMerge:
      *out += pad2 + "merge-field: " + std::to_string(node.merge_field) +
              "\n";
      break;
  }
  if (node.kind != PlanKind::kSource) {
    *out += pad2 + "cost: " + FormatCost(NodeCost(node)) + " (lfta budget " +
            FormatCost(expr::kLftaCostBudget) + ")\n";
  }
  if (opts.jit && NodeHasExprs(node)) {
    *out += pad2 + "tier: ";
    *out += NodeTierNative(node) ? "native" : "vm";
    *out += "\n";
  }
  const std::vector<const char*> shed =
      ShedEligible(node, placement, lfta_table);
  if (!shed.empty()) {
    *out += pad2 + "shed-eligible: ";
    for (size_t i = 0; i < shed.size(); ++i) {
      if (i > 0) *out += ", ";
      *out += shed[i];
    }
    *out += "\n";
  }
  *out += pad2 + "output: " + OrderingLine(node.output_schema) + "\n";
  if (analyze != nullptr) {
    AnalyzeNodeText(*analyze, runtime_name, pad2, out);
  }
  for (size_t i = 0; i < node.children.size(); ++i) {
    const PlanPtr& child = node.children[i];
    const std::string child_name =
        child->kind == PlanKind::kSource
            ? SourceRuntimeName(*child)
            : runtime_name + "#" + std::to_string(i);
    ExplainNodeText(*child, placement, lfta_table, opts, child_name, analyze,
                    indent + 1, out);
  }
}

void AnalyzeNodeJson(const AnalyzeContext& analyze,
                     const std::string& runtime_name, std::string* out) {
  const AnalyzeNodeStats* stats = (*analyze.lookup)(runtime_name);
  if (stats == nullptr) return;
  *out += ",\"actual\":{\"node\":" + JsonEscape(runtime_name);
  *out += ",\"proc\":" + JsonEscape(stats->proc);
  *out += ",\"restarts\":" + std::to_string(stats->restarts);
  *out += ",\"tuples_in\":" + std::to_string(stats->tuples_in);
  *out += ",\"tuples_out\":" + std::to_string(stats->tuples_out);
  *out += ",\"eval_errors\":" + std::to_string(stats->eval_errors);
  *out += ",\"jit_native\":" + std::to_string(stats->jit_native);
  *out += ",\"jit_total\":" + std::to_string(stats->jit_total);
  *out += ",\"ring\":{\"pushed\":" + std::to_string(stats->ring_pushed) +
          ",\"popped\":" + std::to_string(stats->ring_popped) +
          ",\"dropped\":" + std::to_string(stats->ring_dropped);
  if (!analyze.opts->mask_volatile) {
    *out += ",\"size\":" + std::to_string(stats->ring_size) +
            ",\"high_water\":" + std::to_string(stats->ring_high_water);
  }
  *out += "}";
  if (!analyze.opts->mask_volatile) {
    *out += ",\"timing\":{\"poll_ns_p50\":" +
            std::to_string(stats->poll_ns_p50) + ",\"poll_ns_p99\":" +
            std::to_string(stats->poll_ns_p99) + ",\"tuple_ns_p50\":" +
            std::to_string(stats->tuple_ns_p50) + ",\"tuple_ns_p99\":" +
            std::to_string(stats->tuple_ns_p99) + "}";
  }
  *out += "}";
}

void ExplainNodeJson(const PlanNode& node, const char* placement,
                     bool lfta_table, const ExplainOptions& opts,
                     const std::string& runtime_name,
                     const AnalyzeContext* analyze, std::string* out) {
  *out += "{\"op\":";
  *out += JsonEscape(PlanKindName(node.kind));
  *out += ",\"placement\":";
  *out += JsonEscape(placement);
  switch (node.kind) {
    case PlanKind::kSource:
      *out += ",\"stream\":" + JsonEscape(node.source_stream);
      if (!node.interface_name.empty()) {
        *out += ",\"interface\":" + JsonEscape(node.interface_name);
      }
      break;
    case PlanKind::kSelectProject: {
      if (node.predicate != nullptr) {
        *out += ",\"where\":" + JsonEscape(node.predicate->ToString());
      }
      *out += ",\"projections\":[";
      for (size_t i = 0; i < node.projections.size(); ++i) {
        if (i > 0) *out += ",";
        *out += JsonEscape(node.projections[i]->ToString());
      }
      *out += "]";
      break;
    }
    case PlanKind::kAggregate: {
      *out += ",\"group_keys\":[";
      for (size_t i = 0; i < node.group_keys.size(); ++i) {
        if (i > 0) *out += ",";
        *out += JsonEscape(node.group_keys[i]->ToString());
      }
      *out += "],\"aggregates\":[";
      for (size_t i = 0; i < node.aggregates.size(); ++i) {
        if (i > 0) *out += ",";
        *out += JsonEscape(node.aggregates[i].ToString());
      }
      *out += "],\"ordered_key\":" + std::to_string(node.ordered_key);
      *out += ",\"ordered_key_band\":" +
              std::to_string(node.ordered_key_band);
      break;
    }
    case PlanKind::kJoin:
      *out += ",\"window\":{\"left_field\":" +
              std::to_string(node.left_window_field) + ",\"right_field\":" +
              std::to_string(node.right_window_field) + ",\"lo\":" +
              std::to_string(node.window_lo) + ",\"hi\":" +
              std::to_string(node.window_hi) + "}";
      if (node.join_predicate != nullptr) {
        *out += ",\"on\":" + JsonEscape(node.join_predicate->ToString());
      }
      *out += ",\"algorithm\":";
      *out += node.join_order_preserving ? "\"order-preserving\""
                                         : "\"eager\"";
      break;
    case PlanKind::kMerge:
      *out += ",\"merge_field\":" + std::to_string(node.merge_field);
      break;
  }
  *out += ",\"cost\":" + FormatCost(NodeCost(node));
  if (opts.jit && NodeHasExprs(node)) {
    *out += ",\"tier\":";
    *out += NodeTierNative(node) ? "\"native\"" : "\"vm\"";
  }
  const std::vector<const char*> shed =
      ShedEligible(node, placement, lfta_table);
  if (!shed.empty()) {
    *out += ",\"shed_eligible\":[";
    for (size_t i = 0; i < shed.size(); ++i) {
      if (i > 0) *out += ",";
      *out += JsonEscape(shed[i]);
    }
    *out += "]";
  }
  *out += ",\"output\":[";
  for (size_t i = 0; i < node.output_schema.num_fields(); ++i) {
    const gsql::FieldDef& field = node.output_schema.field(i);
    if (i > 0) *out += ",";
    *out += "{\"name\":" + JsonEscape(field.name) + ",\"type\":" +
            JsonEscape(gsql::DataTypeName(field.type)) + ",\"order\":" +
            JsonEscape(field.order.ToString()) + "}";
  }
  *out += "]";
  if (analyze != nullptr) {
    AnalyzeNodeJson(*analyze, runtime_name, out);
  }
  *out += ",\"children\":[";
  for (size_t i = 0; i < node.children.size(); ++i) {
    if (i > 0) *out += ",";
    const PlanPtr& child = node.children[i];
    const std::string child_name =
        child->kind == PlanKind::kSource
            ? SourceRuntimeName(*child)
            : runtime_name + "#" + std::to_string(i);
    ExplainNodeJson(*child, placement, lfta_table, opts, child_name, analyze,
                    out);
  }
  *out += "]}";
}

/// The runtime name of the LFTA plan's root node: the query's public name
/// when the whole query is the LFTA, else the mangled LFTA stream name.
std::string LftaRootName(const SplitQuery& split) {
  return split.hfta != nullptr ? split.lfta_name : split.name;
}

std::string ExplainTextImpl(const PlannedQuery& planned,
                            const SplitQuery& split,
                            const ExplainOptions& opts,
                            const AnalyzeContext* analyze,
                            const AnalyzeSummary* summary) {
  std::string out;
  out += "query: " + split.name + "\n";
  out += "placement: " + PlacementName(split) + "\n";
  out += "process: " + ProcessLine(split) + "\n";
  out += std::string("split-aggregation: ") +
         (split.split_aggregation ? "yes" : "no") + "\n";
  out += std::string("unbounded-aggregation: ") +
         (planned.unbounded_aggregation ? "yes" : "no") + "\n";
  if (split.has_nic_program) {
    out += "nic-filter: yes (snap_len " + std::to_string(split.snap_len) +
           ")\n";
  } else {
    out += "nic-filter: no\n";
  }
  if (summary != nullptr) {
    out += "analyze: pump=" + summary->pump_mode +
           " shed-level=" + std::to_string(summary->shed_level) +
           " worker-restarts=" + std::to_string(summary->worker_restarts) +
           " workers-degraded=" + std::to_string(summary->workers_degraded) +
           " trace-truncated=" + std::to_string(summary->trace_truncated) +
           "\n";
  }
  if (split.hfta != nullptr) {
    out += "hfta:\n";
    ExplainNodeText(*split.hfta, "hfta", false, opts, split.name, analyze, 1,
                    &out);
  }
  if (split.lfta != nullptr) {
    if (split.hfta != nullptr) {
      out += "lfta (publishes " + split.lfta_name + "):\n";
    } else {
      out += "lfta:\n";
    }
    ExplainNodeText(*split.lfta, "lfta", split.split_aggregation, opts,
                    LftaRootName(split), analyze, 1, &out);
  }
  return out;
}

std::string ExplainJsonImpl(const PlannedQuery& planned,
                            const SplitQuery& split,
                            const ExplainOptions& opts,
                            const AnalyzeContext* analyze,
                            const AnalyzeSummary* summary) {
  std::string out = "{\"query\":" + JsonEscape(split.name);
  out += ",\"placement\":" + JsonEscape(PlacementName(split));
  out += ",\"process\":{\"lfta\":";
  out += split.lfta != nullptr ? "\"rts\"" : "null";
  out += ",\"hfta\":";
  out += split.hfta != nullptr ? "\"worker-process\"" : "null";
  out += "}";
  out += std::string(",\"split_aggregation\":") +
         (split.split_aggregation ? "true" : "false");
  out += std::string(",\"unbounded_aggregation\":") +
         (planned.unbounded_aggregation ? "true" : "false");
  out += std::string(",\"nic_filter\":") +
         (split.has_nic_program ? "true" : "false");
  out += ",\"snap_len\":" + std::to_string(split.snap_len);
  if (summary != nullptr) {
    out += ",\"analyze\":{\"pump\":" + JsonEscape(summary->pump_mode);
    out += ",\"shed_level\":" + std::to_string(summary->shed_level);
    out += ",\"worker_restarts\":" + std::to_string(summary->worker_restarts);
    out +=
        ",\"workers_degraded\":" + std::to_string(summary->workers_degraded);
    out += ",\"trace_truncated\":" + std::to_string(summary->trace_truncated);
    out += "}";
  }
  if (split.hfta != nullptr) {
    out += ",\"hfta\":";
    ExplainNodeJson(*split.hfta, "hfta", false, opts, split.name, analyze,
                    &out);
  } else {
    out += ",\"hfta\":null";
  }
  if (split.lfta != nullptr) {
    out += ",\"lfta_stream\":" +
           JsonEscape(split.hfta != nullptr ? split.lfta_name : split.name);
    out += ",\"lfta\":";
    ExplainNodeJson(*split.lfta, "lfta", split.split_aggregation, opts,
                    LftaRootName(split), analyze, &out);
  } else {
    out += ",\"lfta\":null";
  }
  out += "}";
  return out;
}

}  // namespace

std::string ExplainText(const PlannedQuery& planned, const SplitQuery& split,
                        const ExplainOptions& opts) {
  return ExplainTextImpl(planned, split, opts, nullptr, nullptr);
}

std::string ExplainJson(const PlannedQuery& planned, const SplitQuery& split,
                        const ExplainOptions& opts) {
  return ExplainJsonImpl(planned, split, opts, nullptr, nullptr);
}

std::string ExplainAnalyzeText(const PlannedQuery& planned,
                               const SplitQuery& split,
                               const AnalyzeLookup& lookup,
                               const AnalyzeSummary& summary,
                               const AnalyzeOptions& opts) {
  ExplainOptions explain_opts;
  explain_opts.jit = true;  // render predicted tier next to jit-active
  AnalyzeContext analyze{&lookup, &opts};
  return ExplainTextImpl(planned, split, explain_opts, &analyze, &summary);
}

std::string ExplainAnalyzeJson(const PlannedQuery& planned,
                               const SplitQuery& split,
                               const AnalyzeLookup& lookup,
                               const AnalyzeSummary& summary,
                               const AnalyzeOptions& opts) {
  ExplainOptions explain_opts;
  explain_opts.jit = true;
  AnalyzeContext analyze{&lookup, &opts};
  return ExplainJsonImpl(planned, split, explain_opts, &analyze, &summary);
}

}  // namespace gigascope::plan
