#ifndef GIGASCOPE_PLAN_PLANNER_H_
#define GIGASCOPE_PLAN_PLANNER_H_

#include <string>
#include <utility>
#include <vector>

#include "expr/typecheck.h"
#include "gsql/analyzer.h"
#include "plan/logical_plan.h"

namespace gigascope::plan {

/// Inputs shared by all planning entry points.
struct PlannerOptions {
  /// UDF registry; may be null for queries without function calls.
  const expr::FunctionResolver* resolver = nullptr;

  /// Declared query parameters in slot order (name, type).
  std::vector<std::pair<std::string, expr::DataType>> params;

  /// Join algorithm choice (§2.1, revisited as a research direction in
  /// §5): the order-preserving algorithm yields a monotone window
  /// attribute downstream at the cost of buffering completed matches;
  /// the eager algorithm emits immediately with banded output order.
  bool order_preserving_join = true;
};

/// A compiled logical plan for one GSQL query.
struct PlannedQuery {
  std::string name;          // from DEFINE, or synthesized
  PlanPtr root;
  /// The query's output schema, registered in the catalog under `name` so
  /// downstream queries can read it (§2.2 query composition).
  gsql::StreamSchema output_schema;

  /// True when an aggregation has no increasing-like group key: its state
  /// is unbounded and output appears only on flush. The paper permits but
  /// warns about such queries.
  bool unbounded_aggregation = false;
};

/// Plans a resolved SELECT: scan, aggregation, two-stream window join, or
/// GROUP BY over a join (aggregation of the join's flattened output).
///
/// Aggregation plans have the shape
///   Source -> [SelectProject(where)] -> Aggregate -> SelectProject(final)
/// with AVG already decomposed into SUM/COUNT and recombined in the final
/// projection — the normalization that makes every aggregate decomposable
/// for the LFTA/HFTA split.
Result<PlannedQuery> PlanSelect(const gsql::ResolvedSelect& resolved,
                                const PlannerOptions& options);

/// Plans a resolved MERGE into Source* -> Merge.
Result<PlannedQuery> PlanMerge(const gsql::ResolvedMerge& resolved,
                               const PlannerOptions& options);

}  // namespace gigascope::plan

#endif  // GIGASCOPE_PLAN_PLANNER_H_
