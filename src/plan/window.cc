#include "plan/window.h"

#include <algorithm>
#include <limits>
#include <map>

namespace gigascope::plan {

namespace {

using expr::IrKind;
using expr::IrPtr;
using gsql::BinaryOp;

/// A side of a comparison normalized to `field_of_input + offset`.
struct LinearTerm {
  size_t input = 0;
  size_t field = 0;
  int64_t offset = 0;
  bool valid = false;
};

const IrPtr& StripCasts(const IrPtr& ir) {
  const IrPtr* node = &ir;
  while ((*node)->kind == IrKind::kCast) node = &(*node)->children[0];
  return *node;
}

bool ConstInt(const IrPtr& ir, int64_t* out) {
  const IrPtr& node = StripCasts(ir);
  if (node->kind != IrKind::kConst) return false;
  const expr::Value& v = node->constant;
  switch (v.type()) {
    case gsql::DataType::kInt:
      *out = v.int_value();
      return true;
    case gsql::DataType::kUint:
      if (v.uint_value() >
          static_cast<uint64_t>(std::numeric_limits<int64_t>::max())) {
        return false;
      }
      *out = static_cast<int64_t>(v.uint_value());
      return true;
    default:
      return false;
  }
}

/// Normalizes `f`, `f + c`, `f - c`, `c + f` into a LinearTerm.
LinearTerm ParseTerm(const IrPtr& ir) {
  LinearTerm term;
  const IrPtr& node = StripCasts(ir);
  if (node->kind == IrKind::kField) {
    term.input = node->input;
    term.field = node->field;
    term.valid = true;
    return term;
  }
  if (node->kind == IrKind::kBinary &&
      (node->binary_op == BinaryOp::kAdd ||
       node->binary_op == BinaryOp::kSub)) {
    const IrPtr& left = StripCasts(node->children[0]);
    const IrPtr& right = StripCasts(node->children[1]);
    int64_t c;
    if (left->kind == IrKind::kField && ConstInt(right, &c)) {
      term.input = left->input;
      term.field = left->field;
      term.offset = node->binary_op == BinaryOp::kAdd ? c : -c;
      term.valid = true;
      return term;
    }
    if (node->binary_op == BinaryOp::kAdd && right->kind == IrKind::kField &&
        ConstInt(left, &c)) {
      term.input = right->input;
      term.field = right->field;
      term.offset = c;
      term.valid = true;
      return term;
    }
  }
  return term;
}

/// Accumulates window bounds per (left_field, right_field) pair.
struct Bounds {
  int64_t lo = std::numeric_limits<int64_t>::min();
  int64_t hi = std::numeric_limits<int64_t>::max();
};

bool FieldIsIncreasing(const gsql::StreamSchema& schema, size_t field) {
  return field < schema.num_fields() &&
         schema.field(field).order.IsIncreasingLike();
}

}  // namespace

void SplitConjuncts(const expr::IrPtr& predicate,
                    std::vector<expr::IrPtr>* out) {
  if (predicate == nullptr) return;
  if (predicate->kind == IrKind::kBinary &&
      predicate->binary_op == BinaryOp::kAnd) {
    SplitConjuncts(predicate->children[0], out);
    SplitConjuncts(predicate->children[1], out);
    return;
  }
  out->push_back(predicate);
}

expr::IrPtr AndTogether(const std::vector<expr::IrPtr>& parts) {
  if (parts.empty()) return nullptr;
  expr::IrPtr result = parts[0];
  for (size_t i = 1; i < parts.size(); ++i) {
    result = expr::MakeBinaryIr(BinaryOp::kAnd, gsql::DataType::kBool, result,
                                parts[i]);
  }
  return result;
}

Result<JoinWindow> ExtractJoinWindow(const expr::IrPtr& predicate,
                                     const gsql::StreamSchema& left,
                                     const gsql::StreamSchema& right) {
  if (predicate == nullptr) {
    return Status::PlanError(
        "join requires a predicate defining a window on ordered attributes");
  }
  std::vector<expr::IrPtr> conjuncts;
  SplitConjuncts(predicate, &conjuncts);

  // Accumulate constraints per attribute pair; the first pair to produce a
  // finite window wins (queries in practice constrain exactly one pair).
  std::map<std::pair<size_t, size_t>, Bounds> bounds;
  std::map<std::pair<size_t, size_t>, std::vector<size_t>> consumed;

  for (size_t index = 0; index < conjuncts.size(); ++index) {
    const expr::IrPtr& conjunct = conjuncts[index];
    if (conjunct->kind != IrKind::kBinary) continue;
    BinaryOp op = conjunct->binary_op;
    if (op != BinaryOp::kEq && op != BinaryOp::kLe && op != BinaryOp::kLt &&
        op != BinaryOp::kGe && op != BinaryOp::kGt) {
      continue;
    }
    LinearTerm a = ParseTerm(conjunct->children[0]);
    LinearTerm b = ParseTerm(conjunct->children[1]);
    if (!a.valid || !b.valid || a.input == b.input) continue;

    // Normalize to left-input term on the left side.
    if (a.input == 1) {
      std::swap(a, b);
      switch (op) {
        case BinaryOp::kLe: op = BinaryOp::kGe; break;
        case BinaryOp::kLt: op = BinaryOp::kGt; break;
        case BinaryOp::kGe: op = BinaryOp::kLe; break;
        case BinaryOp::kGt: op = BinaryOp::kLt; break;
        default: break;
      }
    }
    if (!FieldIsIncreasing(left, a.field) ||
        !FieldIsIncreasing(right, b.field)) {
      continue;
    }

    // Constraint: L + a.offset  op  R + b.offset
    //   =>  L - R  op  (b.offset - a.offset)
    int64_t c = b.offset - a.offset;
    consumed[{a.field, b.field}].push_back(index);
    Bounds& bound = bounds[{a.field, b.field}];
    switch (op) {
      case BinaryOp::kEq:
        bound.lo = std::max(bound.lo, c);
        bound.hi = std::min(bound.hi, c);
        break;
      case BinaryOp::kLe:
        bound.hi = std::min(bound.hi, c);
        break;
      case BinaryOp::kLt:
        bound.hi = std::min(bound.hi, c - 1);
        break;
      case BinaryOp::kGe:
        bound.lo = std::max(bound.lo, c);
        break;
      case BinaryOp::kGt:
        bound.lo = std::max(bound.lo, c + 1);
        break;
      default:
        break;
    }
  }

  for (const auto& [fields, bound] : bounds) {
    if (bound.lo != std::numeric_limits<int64_t>::min() &&
        bound.hi != std::numeric_limits<int64_t>::max() &&
        bound.lo <= bound.hi) {
      JoinWindow window;
      window.left_field = fields.first;
      window.right_field = fields.second;
      window.lo = bound.lo;
      window.hi = bound.hi;
      // Everything the window did not consume stays as residual predicate.
      const std::vector<size_t>& used = consumed[fields];
      for (size_t index = 0; index < conjuncts.size(); ++index) {
        if (std::find(used.begin(), used.end(), index) == used.end()) {
          window.residual.push_back(conjuncts[index]);
        }
      }
      return window;
    }
  }
  return Status::PlanError(
      "join predicate does not define a finite window on ordered attributes "
      "of both streams (e.g. B.ts >= C.ts - 1 AND B.ts <= C.ts + 1)");
}

}  // namespace gigascope::plan
