#include "plan/splitter.h"

#include <algorithm>
#include <map>
#include <optional>
#include <set>

#include "expr/cost.h"
#include "net/headers.h"
#include "plan/ordering.h"
#include "plan/window.h"

namespace gigascope::plan {

namespace {

using expr::AggFn;
using expr::AggregateSpec;
using expr::IrKind;
using expr::IrPtr;
using gsql::DataType;
using gsql::FieldDef;
using gsql::OrderSpec;
using gsql::StreamKind;
using gsql::StreamSchema;

/// Bytes that cover Ethernet + maximal IPv4 + maximal TCP headers; the
/// snap length used when no projection needs the payload.
constexpr uint32_t kHeaderSnapLen = 134;

/// Collects the set of source fields a set of expressions touches.
void CollectNeeded(const IrPtr& ir, std::set<size_t>* needed) {
  std::vector<std::pair<size_t, size_t>> refs;
  expr::CollectFieldRefs(ir, &refs);
  for (auto [input, field] : refs) {
    if (input == 0) needed->insert(field);
  }
}

/// Builds the LFTA's pass-through schema and identity projections for a
/// set of needed source fields, and the remap function HFTA expressions
/// use to address them.
struct Passthrough {
  std::vector<IrPtr> projections;
  StreamSchema schema;
  std::map<size_t, size_t> position;  // source field -> lfta output slot
};

Passthrough BuildPassthrough(const StreamSchema& source,
                             const std::set<size_t>& needed,
                             const std::string& schema_name) {
  Passthrough result;
  std::vector<FieldDef> fields;
  for (size_t field : needed) {
    const FieldDef& def = source.field(field);
    result.position[field] = fields.size();
    result.projections.push_back(
        expr::MakeFieldRef(0, field, def.type, def.name));
    fields.push_back(def);  // keeps name, type, and ordering property
  }
  result.schema = StreamSchema(schema_name, StreamKind::kStream,
                               std::move(fields));
  return result;
}

/// Rewrites field references through the LFTA pass-through mapping.
IrPtr RemapIr(const IrPtr& ir, const std::map<size_t, size_t>& position) {
  return expr::CloneIr(ir, [&position](size_t input, size_t field) {
    (void)input;
    auto it = position.find(field);
    size_t slot = it != position.end() ? it->second : field;
    return std::make_pair(size_t{0}, slot);
  });
}

/// The super-aggregate of each sub-aggregate (data-cube style): COUNT
/// re-aggregates by SUM; SUM/MIN/MAX by themselves.
AggFn SuperAggFn(AggFn sub) {
  switch (sub) {
    case AggFn::kCount:
      return AggFn::kSum;
    case AggFn::kSum:
    case AggFn::kMin:
    case AggFn::kMax:
      return sub;
    case AggFn::kAvg:
      break;  // decomposed by the planner; never stored
  }
  return AggFn::kSum;
}

Result<SplitQuery> NoSplit(const PlannedQuery& planned) {
  SplitQuery split;
  split.name = planned.name;
  split.lfta_name = planned.name + "_lfta";
  split.hfta = planned.root;
  return split;
}

/// Splits a scan query: SelectProject over a Protocol source.
Result<SplitQuery> SplitScan(const PlannedQuery& planned,
                             const PlanPtr& select, const PlanPtr& source) {
  SplitQuery split;
  split.name = planned.name;
  split.lfta_name = planned.name + "_lfta";

  std::vector<IrPtr> conjuncts;
  SplitConjuncts(select->predicate, &conjuncts);
  std::vector<IrPtr> cheap, costly;
  for (const IrPtr& conjunct : conjuncts) {
    (expr::IsLftaSafe(conjunct) ? cheap : costly).push_back(conjunct);
  }
  bool projections_safe = std::all_of(
      select->projections.begin(), select->projections.end(),
      [](const IrPtr& p) { return expr::IsLftaSafe(p); });

  std::set<size_t> needed;
  for (const IrPtr& conjunct : costly) CollectNeeded(conjunct, &needed);
  for (const IrPtr& projection : select->projections) {
    CollectNeeded(projection, &needed);
  }
  bool needs_payload = false;
  if (auto payload = source->output_schema.FieldIndex("payload")) {
    needs_payload = needed.count(*payload) > 0;
    // The cheap (LFTA) conjuncts also execute before truncation matters.
    std::set<size_t> cheap_needed;
    for (const IrPtr& conjunct : cheap) CollectNeeded(conjunct, &cheap_needed);
    needs_payload = needs_payload || cheap_needed.count(*payload) > 0;
  }
  split.snap_len = needs_payload ? 0 : kHeaderSnapLen;
  split.has_nic_program =
      CompileNicFilter(AndTogether(cheap), source->output_schema,
                       split.snap_len, &split.nic_program);

  if (costly.empty() && projections_safe) {
    // The whole query runs as an LFTA.
    split.lfta = select;
    split.hfta = nullptr;
    split.lfta_schema = select->output_schema;
    return split;
  }

  Passthrough pass =
      BuildPassthrough(source->output_schema, needed, split.lfta_name);
  split.lfta = MakeSelectProjectNode(source, AndTogether(cheap),
                                     std::move(pass.projections),
                                     pass.schema);
  split.lfta_schema = pass.schema;

  // HFTA reads the LFTA stream.
  PlanPtr hfta_source = MakeSourceNode(pass.schema, "");
  std::vector<IrPtr> hfta_conjuncts;
  for (const IrPtr& conjunct : costly) {
    hfta_conjuncts.push_back(RemapIr(conjunct, pass.position));
  }
  std::vector<IrPtr> hfta_projections;
  for (const IrPtr& projection : select->projections) {
    hfta_projections.push_back(RemapIr(projection, pass.position));
  }
  split.hfta = MakeSelectProjectNode(
      hfta_source, AndTogether(hfta_conjuncts), std::move(hfta_projections),
      select->output_schema);
  return split;
}

/// Splits an aggregation query:
///   final(SelectProject) -> Aggregate -> [SelectProject(where)] -> Source.
Result<SplitQuery> SplitAggregation(const PlannedQuery& planned,
                                    const PlanPtr& final_project,
                                    const PlanPtr& agg, const PlanPtr& below,
                                    const PlanPtr& source) {
  SplitQuery split;
  split.name = planned.name;
  split.lfta_name = planned.name + "_lfta";

  // Split the WHERE conjuncts.
  std::vector<IrPtr> cheap, costly;
  if (below->kind == PlanKind::kSelectProject &&
      below->predicate != nullptr) {
    std::vector<IrPtr> conjuncts;
    SplitConjuncts(below->predicate, &conjuncts);
    for (const IrPtr& conjunct : conjuncts) {
      (expr::IsLftaSafe(conjunct) ? cheap : costly).push_back(conjunct);
    }
  }

  bool keys_safe = std::all_of(
      agg->group_keys.begin(), agg->group_keys.end(),
      [](const IrPtr& k) { return expr::IsLftaSafe(k); });
  bool args_safe = std::all_of(
      agg->aggregates.begin(), agg->aggregates.end(),
      [](const AggregateSpec& a) {
        return a.arg == nullptr || expr::IsLftaSafe(a.arg);
      });

  // Which source fields does anything above the LFTA need?
  std::set<size_t> needed;
  for (const IrPtr& conjunct : costly) CollectNeeded(conjunct, &needed);
  for (const IrPtr& key : agg->group_keys) CollectNeeded(key, &needed);
  for (const AggregateSpec& spec : agg->aggregates) {
    if (spec.arg != nullptr) CollectNeeded(spec.arg, &needed);
  }
  bool needs_payload = false;
  if (auto payload = source->output_schema.FieldIndex("payload")) {
    needs_payload = needed.count(*payload) > 0;
    std::set<size_t> cheap_needed;
    for (const IrPtr& conjunct : cheap) CollectNeeded(conjunct, &cheap_needed);
    needs_payload = needs_payload || cheap_needed.count(*payload) > 0;
  }
  split.snap_len = needs_payload ? 0 : kHeaderSnapLen;
  split.has_nic_program =
      CompileNicFilter(AndTogether(cheap), source->output_schema,
                       split.snap_len, &split.nic_program);

  if (keys_safe && args_safe && costly.empty()) {
    // Full aggregate splitting: LFTA subaggregates, HFTA superaggregates.
    split.split_aggregation = true;

    PlanPtr lfta_below = source;
    if (!cheap.empty()) {
      std::vector<IrPtr> identity;
      const StreamSchema& schema = source->output_schema;
      for (size_t f = 0; f < schema.num_fields(); ++f) {
        identity.push_back(expr::MakeFieldRef(0, f, schema.field(f).type,
                                              schema.field(f).name));
      }
      lfta_below = MakeSelectProjectNode(source, AndTogether(cheap),
                                         std::move(identity), schema);
    }

    auto sub = std::make_shared<PlanNode>();
    sub->kind = PlanKind::kAggregate;
    sub->children.push_back(lfta_below);
    sub->group_keys = agg->group_keys;
    sub->aggregates = agg->aggregates;
    sub->ordered_key = agg->ordered_key;
    sub->ordered_key_band = agg->ordered_key_band;
    // The LFTA stream layout mirrors the Aggregate node's: keys, then
    // aggregates — so the HFTA super-aggregate sees the same shape.
    std::vector<FieldDef> fields = agg->output_schema.fields();
    sub->output_schema =
        StreamSchema(split.lfta_name, StreamKind::kStream, fields);
    split.lfta = sub;
    split.lfta_schema = sub->output_schema;

    // HFTA: re-aggregate. Keys are now plain field refs 0..K-1.
    PlanPtr hfta_source = MakeSourceNode(sub->output_schema, "");
    auto super = std::make_shared<PlanNode>();
    super->kind = PlanKind::kAggregate;
    super->children.push_back(hfta_source);
    size_t num_keys = agg->group_keys.size();
    for (size_t k = 0; k < num_keys; ++k) {
      const FieldDef& key = sub->output_schema.field(k);
      super->group_keys.push_back(
          expr::MakeFieldRef(0, k, key.type, key.name));
    }
    super->ordered_key = agg->ordered_key;
    // The LFTA's eager drains emit partials anywhere within the band, so
    // the superaggregate inherits the same slack.
    super->ordered_key_band = agg->ordered_key_band;
    for (size_t a = 0; a < agg->aggregates.size(); ++a) {
      const AggregateSpec& spec = agg->aggregates[a];
      const FieldDef& field = sub->output_schema.field(num_keys + a);
      AggregateSpec super_spec;
      super_spec.fn = SuperAggFn(spec.fn);
      super_spec.arg =
          expr::MakeFieldRef(0, num_keys + a, field.type, field.name);
      super_spec.result_type = spec.result_type;
      super->aggregates.push_back(std::move(super_spec));
    }
    super->output_schema = agg->output_schema;

    // The final projection applies unchanged: layouts and types match.
    split.hfta = MakeSelectProjectNode(super, final_project->predicate,
                                       final_project->projections,
                                       final_project->output_schema);
    return split;
  }

  // Partial split: LFTA filters/projects, HFTA does all aggregation.
  Passthrough pass =
      BuildPassthrough(source->output_schema, needed, split.lfta_name);
  split.lfta = MakeSelectProjectNode(source, AndTogether(cheap),
                                     std::move(pass.projections),
                                     pass.schema);
  split.lfta_schema = pass.schema;

  PlanPtr hfta_chain = MakeSourceNode(pass.schema, "");
  if (!costly.empty()) {
    std::vector<IrPtr> remapped;
    for (const IrPtr& conjunct : costly) {
      remapped.push_back(RemapIr(conjunct, pass.position));
    }
    std::vector<IrPtr> identity;
    for (size_t f = 0; f < pass.schema.num_fields(); ++f) {
      identity.push_back(expr::MakeFieldRef(0, f, pass.schema.field(f).type,
                                            pass.schema.field(f).name));
    }
    hfta_chain = MakeSelectProjectNode(hfta_chain, AndTogether(remapped),
                                       std::move(identity), pass.schema);
  }
  auto hfta_agg = std::make_shared<PlanNode>();
  hfta_agg->kind = PlanKind::kAggregate;
  hfta_agg->children.push_back(hfta_chain);
  for (const IrPtr& key : agg->group_keys) {
    hfta_agg->group_keys.push_back(RemapIr(key, pass.position));
  }
  for (const AggregateSpec& spec : agg->aggregates) {
    AggregateSpec remapped = spec;
    if (remapped.arg != nullptr) {
      remapped.arg = RemapIr(remapped.arg, pass.position);
    }
    hfta_agg->aggregates.push_back(std::move(remapped));
  }
  hfta_agg->ordered_key = agg->ordered_key;
  hfta_agg->ordered_key_band = agg->ordered_key_band;
  hfta_agg->output_schema = agg->output_schema;
  split.hfta = MakeSelectProjectNode(hfta_agg, final_project->predicate,
                                     final_project->projections,
                                     final_project->output_schema);
  return split;
}

}  // namespace

Result<SplitQuery> SplitPlan(const PlannedQuery& planned) {
  const PlanPtr& root = planned.root;
  if (root == nullptr) return Status::Internal("cannot split a null plan");

  // Scan shape: SelectProject -> Source(protocol).
  if (root->kind == PlanKind::kSelectProject &&
      root->children[0]->kind == PlanKind::kSource &&
      root->children[0]->source_is_protocol) {
    return SplitScan(planned, root, root->children[0]);
  }

  // Aggregation shape: SelectProject -> Aggregate -> [...] -> Source.
  if (root->kind == PlanKind::kSelectProject &&
      root->children[0]->kind == PlanKind::kAggregate) {
    const PlanPtr& agg = root->children[0];
    const PlanPtr& below = agg->children[0];
    PlanPtr source;
    if (below->kind == PlanKind::kSource) {
      source = below;
    } else if (below->kind == PlanKind::kSelectProject &&
               below->children[0]->kind == PlanKind::kSource) {
      source = below->children[0];
    }
    if (source != nullptr && source->source_is_protocol) {
      return SplitAggregation(planned, root, agg, below, source);
    }
  }

  // Everything else (joins, merges, Stream scans) runs as an HFTA.
  return NoSplit(planned);
}

bool CompileNicFilter(const expr::IrPtr& predicate,
                      const gsql::StreamSchema& schema, uint32_t snap_len,
                      bpf::Program* out) {
  if (predicate == nullptr) return false;

  // Gather `field = const` equality conjuncts by field name.
  std::vector<IrPtr> conjuncts;
  SplitConjuncts(predicate, &conjuncts);
  std::map<std::string, uint64_t> equalities;
  for (const IrPtr& conjunct : conjuncts) {
    if (conjunct->kind != IrKind::kBinary ||
        conjunct->binary_op != gsql::BinaryOp::kEq) {
      continue;
    }
    const IrPtr* field = &conjunct->children[0];
    const IrPtr* constant = &conjunct->children[1];
    // Strip casts on both sides; allow const = field too.
    auto strip = [](const IrPtr* node) {
      while ((*node)->kind == IrKind::kCast) node = &(*node)->children[0];
      return node;
    };
    field = strip(field);
    constant = strip(constant);
    if ((*field)->kind != IrKind::kField) std::swap(field, constant);
    if ((*field)->kind != IrKind::kField ||
        (*constant)->kind != IrKind::kConst) {
      continue;
    }
    const expr::Value& value = (*constant)->constant;
    uint64_t raw;
    switch (value.type()) {
      case DataType::kInt:
        if (value.int_value() < 0) continue;
        raw = static_cast<uint64_t>(value.int_value());
        break;
      case DataType::kUint:
      case DataType::kIp:
        raw = value.uint_value();
        break;
      default:
        continue;
    }
    if ((*field)->field < schema.num_fields()) {
      equalities[schema.field((*field)->field).name] = raw;
    }
  }

  auto has = [&equalities](const char* name) {
    return equalities.count(name) > 0;
  };
  bool ipv4 = has("ipVersion") && equalities["ipVersion"] == 4;
  uint32_t ret_len = snap_len == 0 ? 0xffffffff : snap_len;

  std::vector<bpf::Instruction> code;
  // Each check appends a test whose failing branch jumps to the final
  // reject RET; displacements are patched at the end.
  std::vector<size_t> reject_patches;

  auto emit_check = [&code, &reject_patches](bpf::Instruction load,
                                             uint32_t expected) {
    code.push_back(load);
    code.push_back(bpf::JEq(expected, 0, 0));
    reject_patches.push_back(code.size() - 1);
  };

  bool emitted = false;
  if (ipv4) {
    emit_check(bpf::LdHalfAbs(12), net::kEtherTypeIpv4);
    // Version nibble: ldb 14; rsh 4 is not in our ISA; use and 0xf0 == 0x40.
    code.push_back(bpf::LdByteAbs(14));
    code.push_back(bpf::Alu(bpf::OpCode::kAnd, 0xf0));
    code.push_back(bpf::JEq(0x40, 0, 0));
    reject_patches.push_back(code.size() - 1);
    emitted = true;

    if (has("protocol")) {
      emit_check(bpf::LdByteAbs(23),
                 static_cast<uint32_t>(equalities["protocol"]));
    }
    if (has("srcIP")) {
      emit_check(bpf::LdWordAbs(26),
                 static_cast<uint32_t>(equalities["srcIP"]));
    }
    if (has("destIP")) {
      emit_check(bpf::LdWordAbs(30),
                 static_cast<uint32_t>(equalities["destIP"]));
    }
    bool proto_is_transport =
        has("protocol") && (equalities["protocol"] == net::kIpProtoTcp ||
                            equalities["protocol"] == net::kIpProtoUdp);
    if (proto_is_transport && (has("srcPort") || has("destPort"))) {
      // Ports exist only in unfragmented first fragments.
      code.push_back(bpf::LdHalfAbs(20));
      code.push_back(bpf::JSet(0x1fff, 0, 0));
      // JSet true (fragmented) must reject: swap branch roles by patching
      // jt to reject instead of jf.
      reject_patches.push_back(code.size() - 1);
      code.push_back(bpf::LdxMshIp(14));
      if (has("srcPort")) {
        code.push_back(bpf::LdHalfInd(14));
        code.push_back(
            bpf::JEq(static_cast<uint32_t>(equalities["srcPort"]), 0, 0));
        reject_patches.push_back(code.size() - 1);
      }
      if (has("destPort")) {
        code.push_back(bpf::LdHalfInd(16));
        code.push_back(
            bpf::JEq(static_cast<uint32_t>(equalities["destPort"]), 0, 0));
        reject_patches.push_back(code.size() - 1);
      }
    }
  }

  if (!emitted) return false;

  size_t accept_index = code.size();
  code.push_back(bpf::Ret(ret_len));
  size_t reject_index = code.size();
  code.push_back(bpf::Ret(0));

  // Patch: every pending check falls through (branch displacement 0) on
  // success and jumps to the reject RET on failure. The fragment JSet is
  // inverted: set bits (fragment) jump to reject.
  for (size_t index : reject_patches) {
    bpf::Instruction& instr = code[index];
    size_t base = index + 1;
    uint8_t to_reject = static_cast<uint8_t>(reject_index - base);
    if (instr.op == bpf::OpCode::kJSet) {
      instr.jt = to_reject;
      instr.jf = 0;
    } else {
      instr.jt = 0;
      instr.jf = to_reject;
    }
  }
  (void)accept_index;

  out->instructions = std::move(code);
  return true;
}

}  // namespace gigascope::plan
