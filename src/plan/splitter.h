#ifndef GIGASCOPE_PLAN_SPLITTER_H_
#define GIGASCOPE_PLAN_SPLITTER_H_

#include <string>

#include "bpf/program.h"
#include "plan/planner.h"

namespace gigascope::plan {

/// The two-level compilation result (§3).
///
/// The splitter pushes as much of the query as possible down the processing
/// stack: cheap selection/projection and decomposable pre-aggregation into
/// the LFTA (linked into the runtime next to the packet source), a BPF
/// pre-filter and snap length into the NIC when the predicate allows, and
/// everything expensive into the HFTA.
struct SplitQuery {
  std::string name;        // the query's public name
  std::string lfta_name;   // mangled LFTA stream name (name + "_lfta")

  /// Low-level plan over the Protocol source; null when the query reads
  /// only Streams (LFTAs accept only Protocol input).
  PlanPtr lfta;

  /// High-level plan whose Source is the LFTA's output stream; null when
  /// "a simple query can execute entirely as an LFTA".
  PlanPtr hfta;

  /// Schema of the LFTA→HFTA stream (only meaningful when both parts
  /// exist). Registered under `lfta_name`; §3: "both streams are available
  /// to the application, though the LFTA query will have a mangled name".
  gsql::StreamSchema lfta_schema;

  /// True when the LFTA performs pre-aggregation (the aggregate query
  /// splitting optimization).
  bool split_aggregation = false;

  /// NIC pushdown: a BPF pre-filter (superset of the LFTA predicate) plus
  /// the snap length for qualifying packets. has_nic_program is false when
  /// nothing could be pushed.
  bool has_nic_program = false;
  bpf::Program nic_program;
  uint32_t snap_len = 0;  // 0 = deliver whole packets
};

/// Splits a planned query. Join and merge plans, and plans over Stream
/// sources, run entirely as HFTAs.
Result<SplitQuery> SplitPlan(const PlannedQuery& planned);

/// Compiles the BPF pre-filter for an LFTA predicate over a packet
/// Protocol schema. Only conjuncts that are provably implied supersets
/// compile: `ipVersion = 4`, `protocol = c`, `srcIP/destIP = c` (requires
/// ipVersion=4 present), `srcPort/destPort = c` (requires ipVersion=4 and
/// protocol present). Returns false when no conjunct is pushable.
bool CompileNicFilter(const expr::IrPtr& predicate,
                      const gsql::StreamSchema& schema, uint32_t snap_len,
                      bpf::Program* out);

}  // namespace gigascope::plan

#endif  // GIGASCOPE_PLAN_SPLITTER_H_
