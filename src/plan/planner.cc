#include "plan/planner.h"

#include <algorithm>

#include "expr/fold.h"
#include "plan/ordering.h"
#include "plan/window.h"

namespace gigascope::plan {

namespace {

using expr::AggFn;
using expr::AggregateSpec;
using expr::IrKind;
using expr::IrPtr;
using gsql::DataType;
using gsql::FieldDef;
using gsql::OrderSpec;
using gsql::SelectItem;
using gsql::StreamKind;
using gsql::StreamSchema;

std::string DefaultFieldName(const gsql::ExprPtr& expr, size_t index) {
  if (auto* ref = std::get_if<gsql::ColumnRefExpr>(&expr->node)) {
    return ref->column;
  }
  // Unaliased aggregates read better as count/sum_len/... than fN.
  if (auto* call = std::get_if<gsql::CallExpr>(&expr->node)) {
    if (call->star || call->args.empty()) return call->function;
    if (auto* arg =
            std::get_if<gsql::ColumnRefExpr>(&call->args[0]->node)) {
      return call->function + "_" + arg->column;
    }
    return call->function;
  }
  return "f" + std::to_string(index);
}

std::string ItemName(const SelectItem& item, size_t index) {
  return item.alias.empty() ? DefaultFieldName(item.expr, index) : item.alias;
}

/// Output field names must be unique; `SELECT s.time, f.time` derives
/// "time" twice, so later duplicates get a positional suffix.
void UniquifyFieldNames(std::vector<FieldDef>* fields) {
  for (size_t i = 0; i < fields->size(); ++i) {
    bool duplicate = false;
    for (size_t j = 0; j < i; ++j) {
      if ((*fields)[j].name == (*fields)[i].name) {
        duplicate = true;
        break;
      }
    }
    if (duplicate) {
      (*fields)[i].name += "_" + std::to_string(i);
    }
  }
}

Result<AggFn> ParseAggFn(const std::string& name) {
  if (name == "count") return AggFn::kCount;
  if (name == "sum") return AggFn::kSum;
  if (name == "min") return AggFn::kMin;
  if (name == "max") return AggFn::kMax;
  if (name == "avg") return AggFn::kAvg;
  return Status::Internal("not an aggregate: " + name);
}

DataType AggResultType(AggFn fn, DataType arg_type) {
  switch (fn) {
    case AggFn::kCount:
      return DataType::kUint;
    case AggFn::kSum:
      return arg_type == DataType::kFloat ? DataType::kFloat
             : arg_type == DataType::kInt ? DataType::kInt
                                          : DataType::kUint;
    case AggFn::kMin:
    case AggFn::kMax:
      return arg_type;
    case AggFn::kAvg:
      return DataType::kFloat;
  }
  return DataType::kUint;
}

/// Builds the query's plan above the (possibly filtered) source for an
/// aggregation query. Shared with the splitter via the plan structure.
class AggregationBuilder {
 public:
  AggregationBuilder(const gsql::ResolvedSelect& resolved,
                     const expr::TypeCheckContext& input_ctx)
      : resolved_(resolved), input_ctx_(input_ctx) {}

  Result<PlanPtr> Build(PlanPtr input);

 private:
  /// Adds an aggregate spec, deduplicating structurally identical ones.
  /// Returns its index in specs_.
  Result<size_t> AddAggregate(AggFn fn, const gsql::CallExpr& call);

  /// Lowers a post-aggregation AST expression (a SELECT item or HAVING)
  /// into IR over the Aggregate node's output schema. Supported shapes:
  /// group keys (by alias or identical text), aggregate calls, literals,
  /// parameters, and arithmetic/comparison/logic over those.
  Result<IrPtr> LowerPostAgg(const gsql::ExprPtr& expr);

  std::optional<size_t> MatchGroupKey(const gsql::ExprPtr& expr) const;

  const gsql::ResolvedSelect& resolved_;
  const expr::TypeCheckContext& input_ctx_;

  std::vector<IrPtr> key_irs_;
  std::vector<std::string> key_names_;
  std::vector<AggregateSpec> specs_;
  std::vector<std::string> spec_texts_;  // for dedup
  StreamSchema agg_schema_;              // keys then aggregates
};

std::optional<size_t> AggregationBuilder::MatchGroupKey(
    const gsql::ExprPtr& expr) const {
  const auto& keys = resolved_.stmt.group_by;
  // By alias: a bare column ref naming a key's alias.
  if (auto* ref = std::get_if<gsql::ColumnRefExpr>(&expr->node)) {
    if (ref->stream.empty()) {
      for (size_t k = 0; k < keys.size(); ++k) {
        if (!keys[k].alias.empty() && keys[k].alias == ref->column) return k;
      }
    }
  }
  // By identical expression text.
  std::string text = expr->ToString();
  for (size_t k = 0; k < keys.size(); ++k) {
    if (keys[k].expr->ToString() == text) return k;
  }
  return std::nullopt;
}

Result<size_t> AggregationBuilder::AddAggregate(AggFn fn,
                                                const gsql::CallExpr& call) {
  AggregateSpec spec;
  spec.fn = fn;
  if (call.star || call.args.empty()) {
    if (fn != AggFn::kCount) {
      return Status::PlanError(std::string(expr::AggFnName(fn)) +
                               " requires an argument");
    }
    spec.arg = nullptr;
    spec.result_type = DataType::kUint;
  } else {
    if (call.args.size() != 1) {
      return Status::PlanError("aggregates take exactly one argument");
    }
    GS_ASSIGN_OR_RETURN(spec.arg, expr::TypeCheck(call.args[0], input_ctx_));
    spec.arg = expr::FoldConstants(spec.arg);
    if (fn != AggFn::kCount && fn != AggFn::kMin && fn != AggFn::kMax &&
        !expr::IsNumericType(spec.arg->type)) {
      return Status::TypeError(std::string(expr::AggFnName(fn)) +
                               " requires a numeric argument");
    }
    spec.result_type = AggResultType(fn, spec.arg->type);
  }
  std::string text = spec.ToString();
  for (size_t i = 0; i < spec_texts_.size(); ++i) {
    if (spec_texts_[i] == text) return i;
  }
  specs_.push_back(std::move(spec));
  spec_texts_.push_back(std::move(text));
  return specs_.size() - 1;
}

Result<IrPtr> AggregationBuilder::LowerPostAgg(const gsql::ExprPtr& expr) {
  // Group key?
  if (auto key = MatchGroupKey(expr)) {
    return expr::MakeFieldRef(0, *key, key_irs_[*key]->type,
                              key_names_[*key]);
  }
  // Aggregate call?
  if (auto* call = std::get_if<gsql::CallExpr>(&expr->node)) {
    if (gsql::IsAggregateFunction(call->function)) {
      GS_ASSIGN_OR_RETURN(AggFn fn, ParseAggFn(call->function));
      if (fn == AggFn::kAvg) {
        // AVG(x) == SUM(x) / COUNT(*) — decompose so every stored
        // aggregate is decomposable for the LFTA/HFTA split.
        GS_ASSIGN_OR_RETURN(size_t sum_index, AddAggregate(AggFn::kSum, *call));
        gsql::CallExpr count_call;
        count_call.function = "count";
        count_call.star = true;
        GS_ASSIGN_OR_RETURN(size_t count_index,
                            AddAggregate(AggFn::kCount, count_call));
        IrPtr sum_ref = expr::MakeFieldRef(
            0, key_irs_.size() + sum_index, specs_[sum_index].result_type,
            "sum" + std::to_string(sum_index));
        IrPtr count_ref = expr::MakeFieldRef(
            0, key_irs_.size() + count_index, DataType::kUint,
            "cnt" + std::to_string(count_index));
        return expr::MakeBinaryIr(
            gsql::BinaryOp::kDiv, DataType::kFloat,
            expr::MakeCastIr(std::move(sum_ref), DataType::kFloat),
            expr::MakeCastIr(std::move(count_ref), DataType::kFloat));
      }
      GS_ASSIGN_OR_RETURN(size_t index, AddAggregate(fn, *call));
      return expr::MakeFieldRef(0, key_irs_.size() + index,
                                specs_[index].result_type,
                                "agg" + std::to_string(index));
    }
    return Status::PlanError(
        "scalar function '" + call->function +
        "' over aggregate results is not supported; compose a downstream "
        "query instead");
  }
  // Literals / params.
  if (std::get_if<gsql::LiteralExpr>(&expr->node) != nullptr ||
      std::get_if<gsql::ParamExpr>(&expr->node) != nullptr) {
    expr::TypeCheckContext empty_ctx;
    empty_ctx.params = input_ctx_.params;
    return expr::TypeCheck(expr, empty_ctx);
  }
  // Operators over lowered children.
  if (auto* unary = std::get_if<gsql::UnaryExpr>(&expr->node)) {
    GS_ASSIGN_OR_RETURN(IrPtr child, LowerPostAgg(unary->operand));
    if (unary->op == gsql::UnaryOp::kNot) {
      if (child->type != DataType::kBool) {
        return Status::TypeError("NOT requires a BOOL operand");
      }
      return expr::MakeUnaryIr(unary->op, DataType::kBool, std::move(child));
    }
    DataType type =
        child->type == DataType::kUint ? DataType::kInt : child->type;
    return expr::MakeUnaryIr(unary->op, type,
                             expr::MakeCastIr(std::move(child), type));
  }
  if (auto* binary = std::get_if<gsql::BinaryExpr>(&expr->node)) {
    GS_ASSIGN_OR_RETURN(IrPtr left, LowerPostAgg(binary->left));
    GS_ASSIGN_OR_RETURN(IrPtr right, LowerPostAgg(binary->right));
    using gsql::BinaryOp;
    BinaryOp op = binary->op;
    if (op == BinaryOp::kAnd || op == BinaryOp::kOr) {
      if (left->type != DataType::kBool || right->type != DataType::kBool) {
        return Status::TypeError("logical operators require BOOL operands");
      }
      return expr::MakeBinaryIr(op, DataType::kBool, std::move(left),
                                std::move(right));
    }
    bool comparison = op == BinaryOp::kEq || op == BinaryOp::kNeq ||
                      op == BinaryOp::kLt || op == BinaryOp::kLe ||
                      op == BinaryOp::kGt || op == BinaryOp::kGe;
    GS_ASSIGN_OR_RETURN(DataType common,
                        expr::PromoteNumeric(left->type, right->type));
    left = expr::MakeCastIr(std::move(left), common);
    right = expr::MakeCastIr(std::move(right), common);
    return expr::MakeBinaryIr(op, comparison ? DataType::kBool : common,
                              std::move(left), std::move(right));
  }
  return Status::PlanError("unsupported expression over aggregate output: " +
                           expr->ToString());
}

Result<PlanPtr> AggregationBuilder::Build(PlanPtr input) {
  const gsql::SelectStmt& stmt = resolved_.stmt;
  const StreamSchema& input_schema = input->output_schema;

  // 1. Group keys.
  for (size_t k = 0; k < stmt.group_by.size(); ++k) {
    GS_ASSIGN_OR_RETURN(IrPtr key,
                        expr::TypeCheck(stmt.group_by[k].expr, input_ctx_));
    key = expr::FoldConstants(key);
    key_irs_.push_back(key);
    key_names_.push_back(ItemName(stmt.group_by[k], k));
  }

  // 2. Lower SELECT items and HAVING; this also collects aggregate specs.
  std::vector<IrPtr> final_projections;
  for (const SelectItem& item : stmt.items) {
    GS_ASSIGN_OR_RETURN(IrPtr projection, LowerPostAgg(item.expr));
    final_projections.push_back(std::move(projection));
  }
  IrPtr having;
  if (stmt.having != nullptr) {
    GS_ASSIGN_OR_RETURN(having, LowerPostAgg(stmt.having));
    if (having->type != DataType::kBool) {
      return Status::TypeError("HAVING must be a BOOL expression");
    }
  }
  if (specs_.empty()) {
    // Pure GROUP BY with no aggregates: count(*) keeps the operator
    // meaningful (every group emits once on close).
    AggregateSpec spec;
    spec.fn = AggFn::kCount;
    spec.result_type = DataType::kUint;
    specs_.push_back(spec);
    spec_texts_.push_back(spec.ToString());
  }

  // 3. The Aggregate node and its output schema: keys then aggregates.
  auto agg = std::make_shared<PlanNode>();
  agg->kind = PlanKind::kAggregate;
  agg->children.push_back(std::move(input));
  agg->group_keys = key_irs_;
  agg->aggregates = specs_;
  std::vector<FieldDef> agg_fields;
  for (size_t k = 0; k < key_irs_.size(); ++k) {
    OrderSpec order = ImputeAggregateKeyOrder(
        ImputeExprOrder(key_irs_[k], input_schema));
    agg_fields.push_back({key_names_[k], key_irs_[k]->type, order});
    if (agg->ordered_key < 0 && order.IsIncreasingLike()) {
      agg->ordered_key = static_cast<int>(k);
    }
  }
  // Re-derive the ordered key from the *input* ordering: group closing is
  // driven by the key expression's order over arriving tuples.
  agg->ordered_key = -1;
  for (size_t k = 0; k < key_irs_.size(); ++k) {
    OrderSpec key_order = ImputeExprOrder(key_irs_[k], input_schema);
    if (key_order.IsIncreasingLike()) {
      agg->ordered_key = static_cast<int>(k);
      agg->ordered_key_band =
          key_order.kind == gsql::OrderKind::kBandedIncreasing
              ? key_order.band
              : 0;
      break;
    }
  }
  for (size_t a = 0; a < specs_.size(); ++a) {
    agg_fields.push_back({"agg" + std::to_string(a), specs_[a].result_type,
                          OrderSpec::None()});
  }
  agg->output_schema = StreamSchema("", StreamKind::kStream,
                                    std::move(agg_fields));

  // 4. Final projection (+ HAVING) over the aggregate output.
  std::vector<FieldDef> out_fields;
  for (size_t i = 0; i < stmt.items.size(); ++i) {
    OrderSpec order =
        ImputeExprOrder(final_projections[i], agg->output_schema);
    out_fields.push_back(
        {ItemName(stmt.items[i], i), final_projections[i]->type, order});
  }
  UniquifyFieldNames(&out_fields);
  return MakeSelectProjectNode(
      agg, std::move(having), std::move(final_projections),
      StreamSchema("", StreamKind::kStream, std::move(out_fields)));
}

/// Builds Source -> [SelectProject(where)] for one input, evaluating the
/// WHERE filter as early as possible.
PlanPtr BuildFilteredSource(const gsql::ResolvedInput& input) {
  return MakeSourceNode(input.schema, input.interface_name);
}

}  // namespace

Result<PlannedQuery> PlanSelect(const gsql::ResolvedSelect& resolved,
                                const PlannerOptions& options) {
  const gsql::SelectStmt& stmt = resolved.stmt;

  expr::TypeCheckContext ctx;
  for (const gsql::ResolvedInput& input : resolved.inputs) {
    ctx.inputs.push_back(input.schema);
  }
  ctx.bindings = &resolved.bindings;
  ctx.resolver = options.resolver;
  ctx.params = options.params;

  PlannedQuery planned;
  planned.name = stmt.define.query_name.empty() ? "query"
                                                : stmt.define.query_name;

  if (resolved.is_join()) {
    if (stmt.where == nullptr) {
      return Status::PlanError("a join requires a WHERE clause with a window "
                               "constraint on ordered attributes");
    }
    GS_ASSIGN_OR_RETURN(IrPtr predicate,
                        expr::TypeCheckPredicate(stmt.where, ctx));
    predicate = expr::FoldConstants(predicate);
    GS_ASSIGN_OR_RETURN(
        JoinWindow window,
        ExtractJoinWindow(predicate, resolved.inputs[0].schema,
                          resolved.inputs[1].schema));

    auto join = std::make_shared<PlanNode>();
    join->kind = PlanKind::kJoin;
    join->children.push_back(BuildFilteredSource(resolved.inputs[0]));
    join->children.push_back(BuildFilteredSource(resolved.inputs[1]));
    // Only the residual conjuncts are re-evaluated per pair; the window
    // constraints themselves are enforced by the join operator in signed
    // arithmetic (unsigned re-evaluation would underflow near zero).
    join->join_predicate = AndTogether(window.residual);
    join->left_window_field = window.left_field;
    join->right_window_field = window.right_field;
    join->window_lo = window.lo;
    join->window_hi = window.hi;
    join->join_order_preserving = options.order_preserving_join;

    // Join output: left fields then right fields, prefixed on collision.
    const StreamSchema& left = resolved.inputs[0].schema;
    const StreamSchema& right = resolved.inputs[1].schema;
    std::vector<FieldDef> joined;
    OrderSpec joined_order = ImputeJoinOrder(
        left.field(window.left_field).order,
        right.field(window.right_field).order, window.width(),
        options.order_preserving_join);
    for (size_t f = 0; f < left.num_fields(); ++f) {
      FieldDef field = left.field(f);
      field.order =
          f == window.left_field ? joined_order : OrderSpec::None();
      joined.push_back(std::move(field));
    }
    for (size_t f = 0; f < right.num_fields(); ++f) {
      FieldDef field = right.field(f);
      if (left.FieldIndex(field.name).has_value()) {
        field.name = resolved.inputs[1].ref.effective_name() + "_" +
                     field.name;
      }
      field.order = OrderSpec::None();
      joined.push_back(std::move(field));
    }
    join->output_schema =
        StreamSchema("", StreamKind::kStream, std::move(joined));

    // Remap two-input references to the concatenated join row.
    size_t left_count = left.num_fields();
    auto remap = [left_count](size_t input, size_t field) {
      return std::make_pair<size_t, size_t>(
          0, input == 0 ? field : left_count + field);
    };

    if (resolved.is_aggregation()) {
      // GROUP BY over a join: aggregate the join's flattened output. The
      // builder type-checks keys/arguments against the two inputs; remap
      // them onto the joined row afterwards, then re-derive the ordered
      // key (the join result's window attribute drives group closing).
      AggregationBuilder builder(resolved, ctx);
      GS_ASSIGN_OR_RETURN(planned.root, builder.Build(join));
      PlanNode& agg = *planned.root->children[0];
      for (IrPtr& key : agg.group_keys) {
        key = expr::CloneIr(key, remap);
      }
      for (expr::AggregateSpec& spec : agg.aggregates) {
        if (spec.arg != nullptr) spec.arg = expr::CloneIr(spec.arg, remap);
      }
      agg.ordered_key = -1;
      agg.ordered_key_band = 0;
      std::vector<FieldDef> agg_fields = agg.output_schema.fields();
      for (size_t k = 0; k < agg.group_keys.size(); ++k) {
        OrderSpec key_order =
            ImputeExprOrder(agg.group_keys[k], join->output_schema);
        agg_fields[k].order = ImputeAggregateKeyOrder(key_order);
        if (agg.ordered_key < 0 && key_order.IsIncreasingLike()) {
          agg.ordered_key = static_cast<int>(k);
          agg.ordered_key_band =
              key_order.kind == gsql::OrderKind::kBandedIncreasing
                  ? key_order.band
                  : 0;
        }
      }
      agg.output_schema = StreamSchema(
          agg.output_schema.name(), StreamKind::kStream, agg_fields);
      // The final projection's key-field orders follow the recomputed agg
      // schema (field refs into it impute directly).
      std::vector<FieldDef> final_fields =
          planned.root->output_schema.fields();
      for (size_t i = 0; i < planned.root->projections.size(); ++i) {
        final_fields[i].order = ImputeExprOrder(
            planned.root->projections[i], agg.output_schema);
      }
      planned.unbounded_aggregation = agg.ordered_key < 0;
      planned.output_schema = StreamSchema(planned.name, StreamKind::kStream,
                                           std::move(final_fields));
      planned.root->output_schema = planned.output_schema;
      return planned;
    }

    std::vector<IrPtr> projections;
    std::vector<FieldDef> out_fields;
    for (size_t i = 0; i < stmt.items.size(); ++i) {
      GS_ASSIGN_OR_RETURN(IrPtr item,
                          expr::TypeCheck(stmt.items[i].expr, ctx));
      item = expr::FoldConstants(item);
      IrPtr remapped = expr::CloneIr(item, remap);
      OrderSpec order = ImputeExprOrder(remapped, join->output_schema);
      out_fields.push_back({ItemName(stmt.items[i], i), remapped->type,
                            order});
      projections.push_back(std::move(remapped));
    }
    UniquifyFieldNames(&out_fields);
    planned.root = MakeSelectProjectNode(
        join, nullptr, std::move(projections),
        StreamSchema(planned.name, StreamKind::kStream,
                     std::move(out_fields)));
    planned.output_schema = planned.root->output_schema;
    return planned;
  }

  // Single-input queries.
  PlanPtr source = BuildFilteredSource(resolved.inputs[0]);

  if (resolved.is_aggregation()) {
    PlanPtr below = source;
    if (stmt.where != nullptr) {
      GS_ASSIGN_OR_RETURN(IrPtr where,
                          expr::TypeCheckPredicate(stmt.where, ctx));
      where = expr::FoldConstants(where);
      // Pass-through filter node keeping the full input schema.
      std::vector<IrPtr> identity;
      const StreamSchema& schema = source->output_schema;
      for (size_t f = 0; f < schema.num_fields(); ++f) {
        identity.push_back(expr::MakeFieldRef(0, f, schema.field(f).type,
                                              schema.field(f).name));
      }
      below = MakeSelectProjectNode(source, std::move(where),
                                    std::move(identity), schema);
    }
    AggregationBuilder builder(resolved, ctx);
    GS_ASSIGN_OR_RETURN(planned.root, builder.Build(below));
    const PlanNode& agg = *planned.root->children[0];
    planned.unbounded_aggregation = agg.ordered_key < 0;
  } else {
    IrPtr where;
    if (stmt.where != nullptr) {
      GS_ASSIGN_OR_RETURN(where, expr::TypeCheckPredicate(stmt.where, ctx));
      where = expr::FoldConstants(where);
    }
    std::vector<IrPtr> projections;
    std::vector<FieldDef> out_fields;
    for (size_t i = 0; i < stmt.items.size(); ++i) {
      GS_ASSIGN_OR_RETURN(IrPtr item,
                          expr::TypeCheck(stmt.items[i].expr, ctx));
      item = expr::FoldConstants(item);
      OrderSpec order = ImputeExprOrder(item, source->output_schema);
      out_fields.push_back({ItemName(stmt.items[i], i), item->type, order});
      projections.push_back(std::move(item));
    }
    UniquifyFieldNames(&out_fields);
    planned.root = MakeSelectProjectNode(
        source, std::move(where), std::move(projections),
        StreamSchema("", StreamKind::kStream, std::move(out_fields)));
  }

  // Name the output schema after the query.
  {
    std::vector<FieldDef> fields = planned.root->output_schema.fields();
    planned.output_schema =
        StreamSchema(planned.name, StreamKind::kStream, std::move(fields));
    planned.root->output_schema = planned.output_schema;
  }
  return planned;
}

Result<PlannedQuery> PlanMerge(const gsql::ResolvedMerge& resolved,
                               const PlannerOptions& options) {
  (void)options;
  PlannedQuery planned;
  planned.name = resolved.stmt.define.query_name.empty()
                     ? "merge"
                     : resolved.stmt.define.query_name;

  auto merge = std::make_shared<PlanNode>();
  merge->kind = PlanKind::kMerge;
  merge->merge_field = resolved.merge_fields[0];

  OrderSpec order = resolved.inputs[0]
                        .schema.field(resolved.merge_fields[0])
                        .order;
  for (const gsql::ResolvedInput& input : resolved.inputs) {
    merge->children.push_back(
        MakeSourceNode(input.schema, input.interface_name));
    order = WeakestCommonOrder(
        order, input.schema.field(resolved.merge_fields[0]).order);
  }

  std::vector<FieldDef> fields = resolved.inputs[0].schema.fields();
  for (size_t f = 0; f < fields.size(); ++f) {
    fields[f].order = f == merge->merge_field ? order : OrderSpec::None();
  }
  merge->output_schema =
      StreamSchema(planned.name, StreamKind::kStream, std::move(fields));
  planned.root = merge;
  planned.output_schema = merge->output_schema;
  return planned;
}

}  // namespace gigascope::plan
