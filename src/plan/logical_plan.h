#ifndef GIGASCOPE_PLAN_LOGICAL_PLAN_H_
#define GIGASCOPE_PLAN_LOGICAL_PLAN_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "expr/ir.h"
#include "gsql/schema.h"

namespace gigascope::plan {

enum class PlanKind : uint8_t {
  kSource,         // a Protocol bound to an interface, or a named Stream
  kSelectProject,  // filter + compute output fields
  kAggregate,      // group-by + decomposable aggregates
  kJoin,           // two-stream window join
  kMerge,          // order-preserving union
};

const char* PlanKindName(PlanKind kind);

struct PlanNode;
using PlanPtr = std::shared_ptr<PlanNode>;

/// One logical plan operator.
///
/// A flat tagged struct (one node type, kind-specific members) rather than
/// a class hierarchy: the planner, splitter, and executor all pattern-match
/// on kind, and keeping the plan a passive value makes rewrites (the
/// LFTA/HFTA split clones and edits subtrees) straightforward.
struct PlanNode {
  PlanKind kind = PlanKind::kSource;

  /// Schema of this operator's output, including imputed ordering
  /// properties on every field.
  gsql::StreamSchema output_schema;

  std::vector<PlanPtr> children;

  // --- kSource ---
  std::string source_stream;    // Protocol or Stream name
  std::string interface_name;   // non-empty for Protocol sources
  bool source_is_protocol = false;

  // --- kSelectProject ---
  expr::IrPtr predicate;                  // may be null (no filter)
  std::vector<expr::IrPtr> projections;   // one per output field

  // --- kAggregate ---
  std::vector<expr::IrPtr> group_keys;    // evaluated over the input
  std::vector<expr::AggregateSpec> aggregates;
  /// Index into group_keys of the ordered key that closes groups, or -1
  /// when no key is increasing-like (unbounded state; §2.2 "not enforced").
  int ordered_key = -1;
  /// Band width of the ordered key (0 for monotone keys). A banded key
  /// only closes groups more than `band` below the running maximum —
  /// flushing eagerly would lose the band's late arrivals (§2.1).
  uint64_t ordered_key_band = 0;
  /// Output layout: group keys first (in group_keys order), then aggregates
  /// (in aggregates order). output_schema matches this layout.

  // --- kJoin ---
  expr::IrPtr join_predicate;   // full residual predicate, over inputs 0/1
  size_t left_window_field = 0;   // ordered attribute of child 0
  size_t right_window_field = 0;  // ordered attribute of child 1
  /// Window constraint: left_ts - right_ts in [window_lo, window_hi].
  int64_t window_lo = 0;
  int64_t window_hi = 0;
  /// Join algorithm (§2.1): order-preserving (monotone output, more buffer
  /// space) or eager (banded output).
  bool join_order_preserving = false;

  // --- kMerge ---
  size_t merge_field = 0;  // shared attribute index in every child

  std::string ToString(int indent = 0) const;
};

PlanPtr MakeSourceNode(const gsql::StreamSchema& schema,
                       const std::string& interface_name);
PlanPtr MakeSelectProjectNode(PlanPtr child, expr::IrPtr predicate,
                              std::vector<expr::IrPtr> projections,
                              gsql::StreamSchema output_schema);

/// Total number of nodes in the plan tree.
size_t PlanSize(const PlanPtr& plan);

}  // namespace gigascope::plan

#endif  // GIGASCOPE_PLAN_LOGICAL_PLAN_H_
