#ifndef GIGASCOPE_PLAN_ORDERING_H_
#define GIGASCOPE_PLAN_ORDERING_H_

#include "expr/ir.h"
#include "gsql/schema.h"

namespace gigascope::plan {

using gsql::OrderKind;
using gsql::OrderSpec;

/// Ordering-property imputation (§2.1).
///
/// The query processor "imputes ordering properties of the output of query
/// operators": e.g. projecting a monotone attribute keeps it monotone;
/// `ts/60` of a monotone `ts` is monotone; a hash of a strictly-increasing
/// attribute is monotone nonrepeating. These rules let the planner turn
/// blocking operators into stream operators.

/// Ordering of expression `ir` evaluated over tuples of `schema` (input 0).
/// Conservative: returns kNone whenever a rule does not apply.
OrderSpec ImputeExprOrder(const expr::IrPtr& ir,
                          const gsql::StreamSchema& schema);

/// Weakest ordering implied by both specs — the property of an interleaved
/// (merged) stream whose inputs have orders `a` and `b` on the same
/// attribute. Strictness never survives interleaving (ties across streams);
/// bands widen to the larger band.
OrderSpec WeakestCommonOrder(const OrderSpec& a, const OrderSpec& b);

/// Whether `weaker` is implied by `stronger` (the weakening hierarchy):
/// e.g. strictly increasing implies increasing implies banded(B) for any B.
bool OrderImplies(const OrderSpec& stronger, const OrderSpec& weaker);

/// Ordering of a group-by key expression in the *output* of an ordered
/// aggregation. Group closing emits groups in non-decreasing key order, so
/// an increasing-like key is monotone increasing in the output.
OrderSpec ImputeAggregateKeyOrder(const OrderSpec& input_order);

/// Ordering of the shared window attribute in the output of a band join
/// (§2.1's example): with a strict merge-style algorithm the output is
/// monotone; with the cheaper buffer-eager algorithm it is banded by the
/// window width.
OrderSpec ImputeJoinOrder(const OrderSpec& left, const OrderSpec& right,
                          uint64_t band_width, bool order_preserving_algo);

}  // namespace gigascope::plan

#endif  // GIGASCOPE_PLAN_ORDERING_H_
