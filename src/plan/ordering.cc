#include "plan/ordering.h"

#include <algorithm>

namespace gigascope::plan {

namespace {

using expr::IrKind;
using expr::IrPtr;
using gsql::BinaryOp;

bool IsIncreasingKind(OrderKind kind) {
  return kind == OrderKind::kStrictlyIncreasing ||
         kind == OrderKind::kIncreasing ||
         kind == OrderKind::kBandedIncreasing;
}

bool IsDecreasingKind(OrderKind kind) {
  return kind == OrderKind::kStrictlyDecreasing ||
         kind == OrderKind::kDecreasing;
}

/// Extracts a positive integer constant from a kConst node (after casts).
bool PositiveConst(const IrPtr& ir, uint64_t* out) {
  const IrPtr* node = &ir;
  while ((*node)->kind == IrKind::kCast) node = &(*node)->children[0];
  if ((*node)->kind != IrKind::kConst) return false;
  const expr::Value& v = (*node)->constant;
  switch (v.type()) {
    case gsql::DataType::kInt:
      if (v.int_value() <= 0) return false;
      *out = static_cast<uint64_t>(v.int_value());
      return true;
    case gsql::DataType::kUint:
      if (v.uint_value() == 0) return false;
      *out = v.uint_value();
      return true;
    default:
      return false;
  }
}

bool IsAnyConst(const IrPtr& ir) {
  const IrPtr* node = &ir;
  while ((*node)->kind == IrKind::kCast) node = &(*node)->children[0];
  return (*node)->kind == IrKind::kConst;
}

}  // namespace

OrderSpec ImputeExprOrder(const expr::IrPtr& ir,
                          const gsql::StreamSchema& schema) {
  if (ir == nullptr) return OrderSpec::None();
  switch (ir->kind) {
    case IrKind::kField:
      if (ir->input == 0 && ir->field < schema.num_fields()) {
        return schema.field(ir->field).order;
      }
      return OrderSpec::None();

    case IrKind::kCast:
      // Numeric widening preserves order; anything else is conservative.
      if (ir->type == gsql::DataType::kUint ||
          ir->type == gsql::DataType::kInt ||
          ir->type == gsql::DataType::kFloat) {
        return ImputeExprOrder(ir->children[0], schema);
      }
      return OrderSpec::None();

    case IrKind::kBinary: {
      OrderSpec left = ImputeExprOrder(ir->children[0], schema);
      switch (ir->binary_op) {
        case BinaryOp::kAdd:
        case BinaryOp::kSub: {
          // ordered ± constant keeps the ordering untouched.
          if (left.kind != OrderKind::kNone && IsAnyConst(ir->children[1])) {
            return left;
          }
          // constant + ordered, symmetric for addition.
          if (ir->binary_op == BinaryOp::kAdd &&
              IsAnyConst(ir->children[0])) {
            return ImputeExprOrder(ir->children[1], schema);
          }
          return OrderSpec::None();
        }
        case BinaryOp::kDiv: {
          // ordered / positive-constant: bucketing. Strictness is lost
          // (distinct values can land in one bucket); bands shrink.
          uint64_t divisor;
          if (!PositiveConst(ir->children[1], &divisor)) {
            return OrderSpec::None();
          }
          if (left.kind == OrderKind::kStrictlyIncreasing ||
              left.kind == OrderKind::kIncreasing) {
            return OrderSpec::Increasing();
          }
          if (left.kind == OrderKind::kBandedIncreasing) {
            // A band of B in the source becomes at most ceil(B/d)+... one
            // extra bucket of slack covers alignment.
            return OrderSpec::Banded(left.band / divisor + 1);
          }
          if (left.kind == OrderKind::kStrictlyDecreasing ||
              left.kind == OrderKind::kDecreasing) {
            return OrderSpec{OrderKind::kDecreasing, 0, {}};
          }
          return OrderSpec::None();
        }
        case BinaryOp::kMul: {
          uint64_t factor;
          if (!PositiveConst(ir->children[1], &factor) &&
              !PositiveConst(ir->children[0], &factor)) {
            return OrderSpec::None();
          }
          if (left.kind == OrderKind::kNone && IsAnyConst(ir->children[0])) {
            left = ImputeExprOrder(ir->children[1], schema);
          }
          if (left.kind == OrderKind::kBandedIncreasing) {
            return OrderSpec::Banded(left.band * factor);
          }
          // Scaling by a positive constant preserves all other kinds.
          return left;
        }
        default:
          return OrderSpec::None();
      }
    }

    case IrKind::kCall:
      // A hash of a strictly increasing / nonrepeating attribute never
      // repeats (collisions aside — the paper makes the same idealization
      // for its Q2 example).
      if (ir->name == "hash64" && !ir->children.empty()) {
        OrderSpec child = ImputeExprOrder(ir->children[0], schema);
        if (child.kind == OrderKind::kStrictlyIncreasing ||
            child.kind == OrderKind::kStrictlyDecreasing ||
            child.kind == OrderKind::kNonRepeating) {
          return OrderSpec{OrderKind::kNonRepeating, 0, {}};
        }
      }
      return OrderSpec::None();

    default:
      return OrderSpec::None();
  }
}

OrderSpec WeakestCommonOrder(const OrderSpec& a, const OrderSpec& b) {
  if (a.kind == OrderKind::kNone || b.kind == OrderKind::kNone) {
    return OrderSpec::None();
  }
  if (IsIncreasingKind(a.kind) && IsIncreasingKind(b.kind)) {
    uint64_t band = std::max(
        a.kind == OrderKind::kBandedIncreasing ? a.band : 0,
        b.kind == OrderKind::kBandedIncreasing ? b.band : 0);
    if (band > 0) return OrderSpec::Banded(band);
    // Interleaving two monotone streams stays monotone but loses
    // strictness (equal values may arrive from both sides).
    return OrderSpec::Increasing();
  }
  if (IsDecreasingKind(a.kind) && IsDecreasingKind(b.kind)) {
    return OrderSpec{OrderKind::kDecreasing, 0, {}};
  }
  // NonRepeating does not survive interleaving (the other stream may
  // repeat a value), and mixed directions have no common order.
  return OrderSpec::None();
}

bool OrderImplies(const OrderSpec& stronger, const OrderSpec& weaker) {
  if (weaker.kind == OrderKind::kNone) return true;
  if (stronger.kind == weaker.kind) {
    if (stronger.kind == OrderKind::kBandedIncreasing) {
      return stronger.band <= weaker.band;
    }
    if (stronger.kind == OrderKind::kIncreasingInGroup) {
      return stronger.group_fields == weaker.group_fields;
    }
    return true;
  }
  switch (weaker.kind) {
    case OrderKind::kIncreasing:
      return stronger.kind == OrderKind::kStrictlyIncreasing;
    case OrderKind::kDecreasing:
      return stronger.kind == OrderKind::kStrictlyDecreasing;
    case OrderKind::kBandedIncreasing:
      return stronger.kind == OrderKind::kStrictlyIncreasing ||
             stronger.kind == OrderKind::kIncreasing;
    case OrderKind::kNonRepeating:
      return stronger.kind == OrderKind::kStrictlyIncreasing ||
             stronger.kind == OrderKind::kStrictlyDecreasing;
    case OrderKind::kIncreasingInGroup:
      // Globally increasing implies increasing within every group.
      return stronger.kind == OrderKind::kStrictlyIncreasing ||
             stronger.kind == OrderKind::kIncreasing;
    default:
      return false;
  }
}

OrderSpec ImputeAggregateKeyOrder(const OrderSpec& input_order) {
  // Groups close in key order, and a closing flush emits every group with
  // that key at once, so the output key is monotone increasing. A banded
  // key stays banded: eager implementations (the LFTA's direct-mapped
  // table) may emit partials anywhere within the band.
  if (input_order.kind == OrderKind::kBandedIncreasing) {
    return OrderSpec::Banded(input_order.band);
  }
  if (input_order.IsIncreasingLike()) return OrderSpec::Increasing();
  if (input_order.kind == OrderKind::kStrictlyDecreasing ||
      input_order.kind == OrderKind::kDecreasing) {
    return OrderSpec{OrderKind::kDecreasing, 0, {}};
  }
  return OrderSpec::None();
}

OrderSpec ImputeJoinOrder(const OrderSpec& left, const OrderSpec& right,
                          uint64_t band_width, bool order_preserving_algo) {
  OrderSpec common = WeakestCommonOrder(left, right);
  if (common.kind == OrderKind::kNone) return common;
  if (band_width == 0) return common;  // equality window keeps the order
  if (order_preserving_algo) {
    // The buffering algorithm re-sorts within the window (more buffer
    // space, §2.1) and emits monotone output.
    return common.kind == OrderKind::kBandedIncreasing
               ? OrderSpec::Increasing()
               : common;
  }
  // The eager algorithm emits as matches are found: banded by the window.
  if (common.IsIncreasingLike()) {
    uint64_t band = common.kind == OrderKind::kBandedIncreasing
                        ? common.band + band_width
                        : band_width;
    return OrderSpec::Banded(band);
  }
  return OrderSpec::None();
}

}  // namespace gigascope::plan
