#include "telemetry/registry.h"

#include <algorithm>
#include <cstdio>

#include "telemetry/metric_names.h"

namespace gigascope::telemetry {

void Registry::Register(const std::string& entity, const std::string& metric,
                        const Counter* counter) {
  RegisterReader(entity, metric, [counter] { return counter->value(); });
}

void Registry::RegisterReader(const std::string& entity,
                              const std::string& metric, Reader reader) {
  std::lock_guard<std::mutex> lock(mutex_);
  entries_.push_back({entity, metric, std::move(reader)});
}

void Registry::RegisterHistogram(const std::string& entity,
                                 const std::string& base,
                                 HistogramReader read) {
  RegisterReader(entity, base + metric::kP50Suffix,
                 [read] { return read().Percentile(0.50); });
  RegisterReader(entity, base + metric::kP90Suffix,
                 [read] { return read().Percentile(0.90); });
  RegisterReader(entity, base + metric::kP99Suffix,
                 [read] { return read().Percentile(0.99); });
  RegisterReader(entity, base + metric::kMaxSuffix,
                 [read] { return read().max; });
  RegisterReader(entity, base + metric::kCountSuffix,
                 [read] { return read().TotalInBuckets(); });
}

void Registry::RegisterHistogram(const std::string& entity,
                                 const std::string& base,
                                 const Histogram* histogram) {
  RegisterHistogram(entity, base,
                    [histogram] { return histogram->Snapshot(); });
}

std::vector<MetricSample> Registry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<MetricSample> samples;
  samples.reserve(entries_.size());
  for (const Entry& entry : entries_) {
    samples.push_back({entry.entity, entry.metric, entry.read()});
  }
  return samples;
}

size_t Registry::num_metrics() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

std::string FormatMetricsTable(const std::vector<MetricSample>& samples) {
  std::vector<const MetricSample*> sorted;
  sorted.reserve(samples.size());
  for (const MetricSample& sample : samples) sorted.push_back(&sample);
  std::sort(sorted.begin(), sorted.end(),
            [](const MetricSample* a, const MetricSample* b) {
              if (a->entity != b->entity) return a->entity < b->entity;
              return a->metric < b->metric;
            });
  size_t entity_width = 6, metric_width = 6;
  for (const MetricSample* sample : sorted) {
    entity_width = std::max(entity_width, sample->entity.size());
    metric_width = std::max(metric_width, sample->metric.size());
  }
  std::string out;
  char line[512];
  std::snprintf(line, sizeof(line), "%-*s %-*s %20s\n",
                static_cast<int>(entity_width), "entity",
                static_cast<int>(metric_width), "metric", "value");
  out += line;
  for (const MetricSample* sample : sorted) {
    std::snprintf(line, sizeof(line), "%-*s %-*s %20llu\n",
                  static_cast<int>(entity_width), sample->entity.c_str(),
                  static_cast<int>(metric_width), sample->metric.c_str(),
                  static_cast<unsigned long long>(sample->value));
    out += line;
  }
  return out;
}

}  // namespace gigascope::telemetry
