#include "telemetry/registry.h"

#include <algorithm>
#include <cstdio>

#include "telemetry/metric_names.h"

namespace gigascope::telemetry {

void Registry::Register(const std::string& entity, const std::string& metric,
                        const Counter* counter) {
  std::lock_guard<std::mutex> lock(mutex_);
  Entry entry;
  entry.entity = entity;
  entry.metric = metric;
  entry.read = [counter] { return counter->value(); };
  entry.counter = counter;
  entries_.push_back(std::move(entry));
}

void Registry::RegisterReader(const std::string& entity,
                              const std::string& metric, Reader reader) {
  std::lock_guard<std::mutex> lock(mutex_);
  Entry entry;
  entry.entity = entity;
  entry.metric = metric;
  entry.read = std::move(reader);
  entries_.push_back(std::move(entry));
}

void Registry::AddHistogramEntries(const std::string& entity,
                                   const std::string& base,
                                   HistogramReader read, int hist_group) {
  struct Stat {
    const char* suffix;
    uint64_t (*get)(const HistogramSnapshot&);
  };
  static const Stat kStats[] = {
      {metric::kP50Suffix,
       [](const HistogramSnapshot& s) { return s.Percentile(0.50); }},
      {metric::kP90Suffix,
       [](const HistogramSnapshot& s) { return s.Percentile(0.90); }},
      {metric::kP99Suffix,
       [](const HistogramSnapshot& s) { return s.Percentile(0.99); }},
      {metric::kMaxSuffix, [](const HistogramSnapshot& s) { return s.max; }},
      {metric::kCountSuffix,
       [](const HistogramSnapshot& s) { return s.TotalInBuckets(); }},
  };
  std::lock_guard<std::mutex> lock(mutex_);
  for (int stat = 0; stat < 5; ++stat) {
    Entry entry;
    entry.entity = entity;
    entry.metric = base + kStats[stat].suffix;
    auto get = kStats[stat].get;
    entry.read = [read, get] { return get(read()); };
    entry.hist_group = hist_group;
    entry.hist_stat = stat;
    entries_.push_back(std::move(entry));
  }
}

void Registry::RegisterHistogram(const std::string& entity,
                                 const std::string& base,
                                 HistogramReader read) {
  AddHistogramEntries(entity, base, std::move(read), -1);
}

void Registry::RegisterHistogram(const std::string& entity,
                                 const std::string& base,
                                 const Histogram* histogram) {
  int group;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    group = static_cast<int>(hist_groups_.size());
    hist_groups_.push_back({entity, histogram});
  }
  AddHistogramEntries(entity, base,
                      [histogram] { return histogram->Snapshot(); }, group);
}

size_t Registry::BindEntityToArena(const std::string& entity,
                                   MetricsArena* arena,
                                   const std::string& proc) {
  std::lock_guard<std::mutex> lock(mutex_);
  // Bind the entity's histograms first: one kHistogramSlots range each, in
  // group order, so entity slot ranges stay contiguous and restart resets
  // can zero [begin, end) wholesale.
  std::vector<size_t> group_base(hist_groups_.size(),
                                 MetricsArena::kInvalidIndex);
  size_t bound = 0;
  for (size_t g = 0; g < hist_groups_.size(); ++g) {
    if (hist_groups_[g].entity != entity) continue;
    const size_t base = arena->Allocate(MetricsArena::kHistogramSlots);
    if (base == MetricsArena::kInvalidIndex) continue;
    hist_groups_[g].histogram->BindCells(&arena->slot(base)->value,
                                         sizeof(MetricSlot));
    group_base[g] = base;
  }
  for (Entry& entry : entries_) {
    if (entry.entity != entity) continue;
    entry.proc = proc;
    ++bound;
    if (entry.hist_group >= 0) {
      const size_t base = group_base[static_cast<size_t>(entry.hist_group)];
      if (base == MetricsArena::kInvalidIndex) continue;
      const int stat = entry.hist_stat;
      entry.read = [arena, base, stat] {
        const HistogramSnapshot s = arena->FoldHistogram(base);
        switch (stat) {
          case 0: return s.Percentile(0.50);
          case 1: return s.Percentile(0.90);
          case 2: return s.Percentile(0.99);
          case 3: return s.max;
          default: return s.TotalInBuckets();
        }
      };
    } else if (entry.counter != nullptr) {
      const size_t index = arena->Allocate(1);
      if (index == MetricsArena::kInvalidIndex) continue;
      entry.counter->BindCell(&arena->slot(index)->value);
      const FoldKind kind = FoldKindForMetric(entry.metric);
      entry.read = [arena, index, kind] {
        return arena->FoldValue(index, kind);
      };
    }
  }
  return bound;
}

size_t Registry::SetEntityProc(const std::string& entity,
                               const std::string& proc) {
  std::lock_guard<std::mutex> lock(mutex_);
  size_t tagged = 0;
  for (Entry& entry : entries_) {
    if (entry.entity != entity) continue;
    entry.proc = proc;
    ++tagged;
  }
  return tagged;
}

std::string Registry::EntityProc(const std::string& entity) const {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const Entry& entry : entries_) {
    if (entry.entity == entity) return entry.proc;
  }
  return kProcRts;
}

std::vector<MetricSample> Registry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<MetricSample> samples;
  samples.reserve(entries_.size());
  for (const Entry& entry : entries_) {
    samples.push_back({entry.entity, entry.metric, entry.read(), entry.proc});
  }
  return samples;
}

size_t Registry::num_metrics() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

namespace {

std::vector<const MetricSample*> SortedByKey(
    const std::vector<MetricSample>& samples) {
  std::vector<const MetricSample*> sorted;
  sorted.reserve(samples.size());
  for (const MetricSample& sample : samples) sorted.push_back(&sample);
  std::sort(sorted.begin(), sorted.end(),
            [](const MetricSample* a, const MetricSample* b) {
              if (a->entity != b->entity) return a->entity < b->entity;
              if (a->metric != b->metric) return a->metric < b->metric;
              return a->proc < b->proc;
            });
  return sorted;
}

void AppendJsonString(const std::string& value, std::string* out) {
  out->push_back('"');
  for (char c : value) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      case '\r': *out += "\\r"; break;
      case '\t': *out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

}  // namespace

std::string FormatMetricsTable(const std::vector<MetricSample>& samples) {
  std::vector<const MetricSample*> sorted = SortedByKey(samples);
  size_t entity_width = 6, metric_width = 6, proc_width = 4;
  for (const MetricSample* sample : sorted) {
    entity_width = std::max(entity_width, sample->entity.size());
    metric_width = std::max(metric_width, sample->metric.size());
    proc_width = std::max(proc_width, sample->proc.size());
  }
  std::string out;
  char line[512];
  std::snprintf(line, sizeof(line), "%-*s %-*s %-*s %20s\n",
                static_cast<int>(entity_width), "entity",
                static_cast<int>(metric_width), "metric",
                static_cast<int>(proc_width), "proc", "value");
  out += line;
  for (const MetricSample* sample : sorted) {
    std::snprintf(line, sizeof(line), "%-*s %-*s %-*s %20llu\n",
                  static_cast<int>(entity_width), sample->entity.c_str(),
                  static_cast<int>(metric_width), sample->metric.c_str(),
                  static_cast<int>(proc_width), sample->proc.c_str(),
                  static_cast<unsigned long long>(sample->value));
    out += line;
  }
  return out;
}

std::string FormatMetricsNdjson(const std::vector<MetricSample>& samples) {
  std::vector<const MetricSample*> sorted = SortedByKey(samples);
  std::string out;
  char buf[32];
  for (const MetricSample* sample : sorted) {
    out += "{\"entity\":";
    AppendJsonString(sample->entity, &out);
    out += ",\"metric\":";
    AppendJsonString(sample->metric, &out);
    out += ",\"proc\":";
    AppendJsonString(sample->proc, &out);
    std::snprintf(buf, sizeof(buf), ",\"value\":%llu}\n",
                  static_cast<unsigned long long>(sample->value));
    out += buf;
  }
  return out;
}

}  // namespace gigascope::telemetry
