#include "telemetry/tracer.h"

#include <algorithm>
#include <cstdio>

namespace gigascope::telemetry {
namespace {

// Chrome trace-event JSON string escaping: names are ASCII identifiers in
// practice, but quote/backslash/control bytes must not break the file.
void AppendJsonString(std::string* out, const std::string& s) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      case '\t': *out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

}  // namespace

Tracer::Tracer(uint64_t sample_period, uint64_t seed, size_t max_events)
    : sample_period_(sample_period == 0 ? 1 : sample_period),
      max_events_(max_events),
      rng_(seed),
      epoch_ns_(MonotonicNowNs()) {}

uint64_t Tracer::SampleInject() {
  if (rng_.NextBelow(sample_period_) != 0) return 0;
  sampled_.Add(1);
  return next_trace_id_++;
}

int64_t Tracer::NowNs() const { return MonotonicNowNs() - epoch_ns_; }

void Tracer::SetTrackName(uint32_t tid, std::string name) {
  std::lock_guard<std::mutex> lock(mutex_);
  track_names_[tid] = std::move(name);
}

void Tracer::RecordInstant(const std::string& name, uint32_t tid,
                           uint64_t trace_id, int64_t ts_ns) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (events_.size() >= max_events_) {
    dropped_events_.Add(1);
    return;
  }
  events_.push_back({name, 'i', ts_ns, 0, tid, trace_id});
}

void Tracer::RecordSpan(const std::string& name, uint32_t tid,
                        uint64_t trace_id, int64_t start_ns, int64_t end_ns) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (events_.size() >= max_events_) {
    dropped_events_.Add(1);
    return;
  }
  if (end_ns < start_ns) end_ns = start_ns;
  events_.push_back({name, 'X', start_ns, end_ns - start_ns, tid, trace_id});
}

std::vector<TraceEvent> Tracer::events() const {
  std::vector<TraceEvent> sorted;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    sorted = events_;
  }
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     if (a.tid != b.tid) return a.tid < b.tid;
                     return a.ts_ns < b.ts_ns;
                   });
  return sorted;
}

void Tracer::WriteJson(std::ostream& out) const {
  std::vector<TraceEvent> sorted = events();
  std::map<uint32_t, std::string> tracks;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    tracks = track_names_;
  }
  out << "{\"traceEvents\":[\n";
  bool first = true;
  char buf[160];
  // Thread-name metadata first: Perfetto uses it to label the per-node rows.
  for (const auto& [tid, name] : tracks) {
    if (!first) out << ",\n";
    first = false;
    std::string line =
        "{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":1,\"tid\":";
    std::snprintf(buf, sizeof(buf), "%u", tid);
    line += buf;
    line += ",\"ts\":0,\"args\":{\"name\":";
    AppendJsonString(&line, name);
    line += "}}";
    out << line;
  }
  for (const TraceEvent& event : sorted) {
    if (!first) out << ",\n";
    first = false;
    std::string line = "{\"ph\":\"";
    line.push_back(event.ph);
    line += "\",\"name\":";
    AppendJsonString(&line, event.name);
    // The trace-event format counts ts/dur in microseconds; emit fractional
    // µs so nanosecond-scale spans stay distinguishable.
    std::snprintf(buf, sizeof(buf), ",\"pid\":1,\"tid\":%u,\"ts\":%.3f",
                  event.tid, static_cast<double>(event.ts_ns) / 1000.0);
    line += buf;
    if (event.ph == 'X') {
      std::snprintf(buf, sizeof(buf), ",\"dur\":%.3f",
                    static_cast<double>(event.dur_ns) / 1000.0);
      line += buf;
    }
    if (event.ph == 'i') line += ",\"s\":\"t\"";
    if (event.trace_id != 0) {
      std::snprintf(buf, sizeof(buf), ",\"args\":{\"trace_id\":%llu}",
                    static_cast<unsigned long long>(event.trace_id));
      line += buf;
    }
    line += "}";
    out << line;
  }
  out << "\n]}\n";
}

}  // namespace gigascope::telemetry
