#include "telemetry/histogram.h"

#include <limits>

namespace gigascope::telemetry {

uint64_t HistogramSnapshot::TotalInBuckets() const {
  uint64_t total = 0;
  for (uint64_t bucket : buckets) total += bucket;
  return total;
}

uint64_t HistogramSnapshot::Percentile(double p) const {
  uint64_t total = TotalInBuckets();
  if (total == 0) return 0;
  if (p < 0) p = 0;
  if (p > 1) p = 1;
  // Rank of the target event, 1-based; ceil so p=0.5 of 2 events is the
  // first, matching the "value at or below which p of the mass sits" read.
  uint64_t rank = static_cast<uint64_t>(p * static_cast<double>(total));
  if (static_cast<double>(rank) < p * static_cast<double>(total)) ++rank;
  if (rank == 0) rank = 1;
  uint64_t cumulative = 0;
  for (int i = 0; i < kBuckets; ++i) {
    cumulative += buckets[i];
    if (cumulative >= rank) return Histogram::BucketUpperBound(i);
  }
  return Histogram::BucketUpperBound(kBuckets - 1);
}

double HistogramSnapshot::Mean() const {
  uint64_t total = TotalInBuckets();
  if (total == 0) return 0;
  return static_cast<double>(sum) / static_cast<double>(total);
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot snapshot;
  for (int i = 0; i < kBuckets; ++i) {
    snapshot.buckets[i] = buckets_[i].value();
  }
  snapshot.count = count_.value();
  snapshot.sum = sum_.value();
  snapshot.max = max_.value();
  return snapshot;
}

void Histogram::BindCells(std::atomic<uint64_t>* first_cell,
                          size_t stride_bytes) const {
  auto cell_at = [&](size_t i) {
    return reinterpret_cast<std::atomic<uint64_t>*>(
        reinterpret_cast<char*>(first_cell) + i * stride_bytes);
  };
  for (int i = 0; i < kBuckets; ++i) {
    buckets_[i].BindCell(cell_at(static_cast<size_t>(i)));
  }
  count_.BindCell(cell_at(kBuckets));
  sum_.BindCell(cell_at(kBuckets + 1));
  max_.BindCell(cell_at(kBuckets + 2));
}

uint64_t Histogram::BucketUpperBound(int index) {
  if (index <= 0) return 0;
  if (index >= kBuckets - 1) return std::numeric_limits<uint64_t>::max();
  return (uint64_t{1} << index) - 1;
}

}  // namespace gigascope::telemetry
