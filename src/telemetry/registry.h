#ifndef GIGASCOPE_TELEMETRY_REGISTRY_H_
#define GIGASCOPE_TELEMETRY_REGISTRY_H_

#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "telemetry/counter.h"
#include "telemetry/histogram.h"
#include "telemetry/shm_arena.h"

namespace gigascope::telemetry {

/// The process that owns a metric's writer. "rts" is the parent process
/// (the runtime system the LFTAs are linked into); forked HFTA workers are
/// "w0", "w1", ... A worker's metrics keep flowing under its name after
/// the parent adopts the nodes (SetEntityProc retags them to "rts").
inline constexpr char kProcRts[] = "rts";

/// One metric reading: the owning entity (a query node, a channel, a packet
/// source, the engine itself), the metric name, the counter value at
/// snapshot time, and the owning process (`proc` — appended last so
/// {entity, metric, value} aggregate initialization keeps working).
struct MetricSample {
  std::string entity;
  std::string metric;
  uint64_t value = 0;
  std::string proc = kProcRts;
};

/// The engine's metric registry: a catalog of per-node and per-channel
/// counters/gauges, snapshotted by the `gs_stats` stream source.
///
/// The hot path — counter updates — never touches the registry: writers
/// update their own relaxed-atomic `Counter`s (see counter.h) and the
/// registry merely remembers how to read them. Registration happens on the
/// control plane (query setup; the engine rejects setup calls while worker
/// threads run), and Snapshot only performs atomic loads, so snapshotting
/// is safe while workers are pumping. The internal entry list is guarded by
/// a mutex purely so registration and snapshots from different control
/// threads cannot race on the vector itself.
///
/// For multi-process mode the registry can rebind an entity's storage into
/// a shared-memory MetricsArena (BindEntityToArena): counters registered by
/// pointer move their cells into arena slots the forked worker writes, and
/// the parent-side readers switch to the arena's restart-monotone folds —
/// so one registry keeps serving the aggregated view while workers come,
/// crash, and come back (DESIGN.md §16).
class Registry {
 public:
  /// Reads one metric value; must be callable from any thread (atomic
  /// loads only — never dereference state mutated without atomics).
  using Reader = std::function<uint64_t()>;

  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Registers a counter owned elsewhere; the counter must outlive every
  /// subsequent Snapshot call. Pointer-registered counters are the ones
  /// BindEntityToArena can move into shared memory.
  void Register(const std::string& entity, const std::string& metric,
                const Counter* counter);

  /// Registers a reader-backed gauge. Capture shared ownership (e.g. a
  /// `rts::Subscription`) in the closure when the underlying object can
  /// otherwise die before the registry. Reader-backed entries are never
  /// arena-bound; shm-ring counters read through such closures are already
  /// cross-process (their control block lives in the ring's segment).
  void RegisterReader(const std::string& entity, const std::string& metric,
                      Reader reader);

  /// Takes one histogram snapshot; must be callable from any thread.
  using HistogramReader = std::function<HistogramSnapshot()>;

  /// Registers the derived stats of a histogram as five gauges named
  /// `<base>_p50`, `<base>_p90`, `<base>_p99`, `<base>_max`, and
  /// `<base>_count` (see metric_names.h). Each reading snapshots through
  /// `read`, so like RegisterReader this is safe while the single writer
  /// keeps recording.
  void RegisterHistogram(const std::string& entity, const std::string& base,
                         HistogramReader read);

  /// Raw-pointer convenience; the histogram must outlive every Snapshot.
  /// Pointer-registered histograms are arena-bindable.
  void RegisterHistogram(const std::string& entity, const std::string& base,
                         const Histogram* histogram);

  /// Moves every bindable metric of `entity` into `arena` slots and tags
  /// the entity's samples with `proc`: counters get one slot each,
  /// histograms a kHistogramSlots range; parent-side readers switch to the
  /// arena's folded (restart-monotone) reads. Control plane only, pre-fork
  /// — no writer may be running on the entity's counters. Slots are
  /// allocated contiguously in registration order, so the caller can
  /// record [arena->allocated() before, after) as the entity range for
  /// restart resets. When the arena runs out of slots the remaining
  /// metrics silently stay heap-backed (arena->exhausted() counts it).
  /// Returns the number of entries retagged (0 when the entity is
  /// unknown).
  size_t BindEntityToArena(const std::string& entity, MetricsArena* arena,
                           const std::string& proc);

  /// Retags every entry of `entity` with `proc` without rebinding storage
  /// (worker adoption: the parent takes over the writer role but the
  /// cells stay where they are).
  size_t SetEntityProc(const std::string& entity, const std::string& proc);

  /// The proc tag of `entity` (its first entry's), or kProcRts when the
  /// entity has no entries.
  std::string EntityProc(const std::string& entity) const;

  /// Point-in-time reading of every registered metric, in registration
  /// order. Values are per-counter atomic reads, not a global atomic cut.
  std::vector<MetricSample> Snapshot() const;

  size_t num_metrics() const;

 private:
  /// A histogram registered by pointer: remembered so BindEntityToArena
  /// can move its cells and switch its five stat entries to folded reads.
  struct HistGroup {
    std::string entity;
    const Histogram* histogram;
  };

  struct Entry {
    std::string entity;
    std::string metric;
    Reader read;
    std::string proc = kProcRts;
    const Counter* counter = nullptr;  // set for pointer-registered counters
    int hist_group = -1;               // index into hist_groups_, -1 if none
    int hist_stat = 0;                 // 0=p50 1=p90 2=p99 3=max 4=count
  };

  void AddHistogramEntries(const std::string& entity, const std::string& base,
                           HistogramReader read, int hist_group);

  mutable std::mutex mutex_;
  std::vector<Entry> entries_;
  std::vector<HistGroup> hist_groups_;
};

/// Renders samples as an aligned human-readable table (sorted by entity
/// then metric).
std::string FormatMetricsTable(const std::vector<MetricSample>& samples);

/// Renders samples as newline-delimited JSON, one metric per line with
/// stable key order {"entity","metric","proc","value"}, sorted by entity
/// then metric then proc — gsrun's --stats-dump format (DESIGN.md §11).
std::string FormatMetricsNdjson(const std::vector<MetricSample>& samples);

}  // namespace gigascope::telemetry

#endif  // GIGASCOPE_TELEMETRY_REGISTRY_H_
