#ifndef GIGASCOPE_TELEMETRY_REGISTRY_H_
#define GIGASCOPE_TELEMETRY_REGISTRY_H_

#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "telemetry/counter.h"
#include "telemetry/histogram.h"

namespace gigascope::telemetry {

/// One metric reading: the owning entity (a query node, a channel, a packet
/// source, the engine itself), the metric name, and the counter value at
/// snapshot time.
struct MetricSample {
  std::string entity;
  std::string metric;
  uint64_t value = 0;
};

/// The engine's metric registry: a catalog of per-node and per-channel
/// counters/gauges, snapshotted by the `gs_stats` stream source.
///
/// The hot path — counter updates — never touches the registry: writers
/// update their own relaxed-atomic `Counter`s (see counter.h) and the
/// registry merely remembers how to read them. Registration happens on the
/// control plane (query setup; the engine rejects setup calls while worker
/// threads run), and Snapshot only performs atomic loads, so snapshotting
/// is safe while workers are pumping. The internal entry list is guarded by
/// a mutex purely so registration and snapshots from different control
/// threads cannot race on the vector itself.
class Registry {
 public:
  /// Reads one metric value; must be callable from any thread (atomic
  /// loads only — never dereference state mutated without atomics).
  using Reader = std::function<uint64_t()>;

  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Registers a counter owned elsewhere; the counter must outlive every
  /// subsequent Snapshot call.
  void Register(const std::string& entity, const std::string& metric,
                const Counter* counter);

  /// Registers a reader-backed gauge. Capture shared ownership (e.g. a
  /// `rts::Subscription`) in the closure when the underlying object can
  /// otherwise die before the registry.
  void RegisterReader(const std::string& entity, const std::string& metric,
                      Reader reader);

  /// Takes one histogram snapshot; must be callable from any thread.
  using HistogramReader = std::function<HistogramSnapshot()>;

  /// Registers the derived stats of a histogram as five gauges named
  /// `<base>_p50`, `<base>_p90`, `<base>_p99`, `<base>_max`, and
  /// `<base>_count` (see metric_names.h). Each reading snapshots through
  /// `read`, so like RegisterReader this is safe while the single writer
  /// keeps recording.
  void RegisterHistogram(const std::string& entity, const std::string& base,
                         HistogramReader read);

  /// Raw-pointer convenience; the histogram must outlive every Snapshot.
  void RegisterHistogram(const std::string& entity, const std::string& base,
                         const Histogram* histogram);

  /// Point-in-time reading of every registered metric, in registration
  /// order. Values are per-counter atomic reads, not a global atomic cut.
  std::vector<MetricSample> Snapshot() const;

  size_t num_metrics() const;

 private:
  struct Entry {
    std::string entity;
    std::string metric;
    Reader read;
  };

  mutable std::mutex mutex_;
  std::vector<Entry> entries_;
};

/// Renders samples as an aligned human-readable table (sorted by entity
/// then metric), for gsrun's --stats-dump.
std::string FormatMetricsTable(const std::vector<MetricSample>& samples);

}  // namespace gigascope::telemetry

#endif  // GIGASCOPE_TELEMETRY_REGISTRY_H_
