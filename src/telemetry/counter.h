#ifndef GIGASCOPE_TELEMETRY_COUNTER_H_
#define GIGASCOPE_TELEMETRY_COUNTER_H_

#include <atomic>
#include <cstdint>

namespace gigascope::telemetry {

/// A single-writer statistics counter (per Prasaad et al.'s shared-memory
/// scaling argument: per-core statistics want uncontended writes).
///
/// Exactly one thread may write (the owning node's polling thread, or a
/// ring's producer/consumer side); any thread may read. Because of the
/// single-writer contract the increment is a relaxed load + relaxed store —
/// no RMW, so the hot path pays one plain store and never a bus-locked
/// instruction. Readers see a possibly slightly stale but torn-free value.
///
/// The backing cell is indirect: it defaults to the counter's own storage,
/// but `BindCell` can redirect it — e.g. into a shared-memory metrics
/// arena slot (telemetry/shm_arena.h), so a forked worker's updates land
/// where the parent process can read them. Binding is a control-plane
/// operation: it must happen while no thread is writing the counter.
class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  /// Writer side. Single writer only — concurrent Add calls lose updates.
  void Add(uint64_t n) {
    std::atomic<uint64_t>* cell = cell_.load(std::memory_order_relaxed);
    cell->store(cell->load(std::memory_order_relaxed) + n,
                std::memory_order_relaxed);
  }
  void Sub(uint64_t n) {
    std::atomic<uint64_t>* cell = cell_.load(std::memory_order_relaxed);
    cell->store(cell->load(std::memory_order_relaxed) - n,
                std::memory_order_relaxed);
  }
  /// Writer side: gauge semantics (last value wins).
  void Set(uint64_t v) {
    cell_.load(std::memory_order_relaxed)
        ->store(v, std::memory_order_relaxed);
  }
  /// Writer side: monotone running maximum (high-water marks).
  void Max(uint64_t v) {
    std::atomic<uint64_t>* cell = cell_.load(std::memory_order_relaxed);
    if (v > cell->load(std::memory_order_relaxed)) {
      cell->store(v, std::memory_order_relaxed);
    }
  }

  Counter& operator++() {
    Add(1);
    return *this;
  }
  Counter& operator--() {
    Sub(1);
    return *this;
  }
  Counter& operator+=(uint64_t n) {
    Add(n);
    return *this;
  }

  /// Reader side: any thread.
  uint64_t value() const {
    return cell_.load(std::memory_order_relaxed)
        ->load(std::memory_order_relaxed);
  }

  /// Redirects the backing storage to `cell`, carrying the current value
  /// over so the reading is continuous. Control plane only: no concurrent
  /// writer may be running. `cell` must outlive the counter (or the next
  /// rebind). Const because registries hold `const Counter*` — binding
  /// moves storage, it does not change the observable value.
  void BindCell(std::atomic<uint64_t>* cell) const {
    cell->store(value(), std::memory_order_relaxed);
    cell_.store(cell, std::memory_order_relaxed);
  }

 private:
  std::atomic<uint64_t> value_{0};
  mutable std::atomic<std::atomic<uint64_t>*> cell_{&value_};
};

}  // namespace gigascope::telemetry

#endif  // GIGASCOPE_TELEMETRY_COUNTER_H_
