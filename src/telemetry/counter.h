#ifndef GIGASCOPE_TELEMETRY_COUNTER_H_
#define GIGASCOPE_TELEMETRY_COUNTER_H_

#include <atomic>
#include <cstdint>

namespace gigascope::telemetry {

/// A single-writer statistics counter (per Prasaad et al.'s shared-memory
/// scaling argument: per-core statistics want uncontended writes).
///
/// Exactly one thread may write (the owning node's polling thread, or a
/// ring's producer/consumer side); any thread may read. Because of the
/// single-writer contract the increment is a relaxed load + relaxed store —
/// no RMW, so the hot path pays one plain store and never a bus-locked
/// instruction. Readers see a possibly slightly stale but torn-free value.
class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  /// Writer side. Single writer only — concurrent Add calls lose updates.
  void Add(uint64_t n) {
    value_.store(value_.load(std::memory_order_relaxed) + n,
                 std::memory_order_relaxed);
  }
  void Sub(uint64_t n) {
    value_.store(value_.load(std::memory_order_relaxed) - n,
                 std::memory_order_relaxed);
  }
  /// Writer side: gauge semantics (last value wins).
  void Set(uint64_t v) { value_.store(v, std::memory_order_relaxed); }
  /// Writer side: monotone running maximum (high-water marks).
  void Max(uint64_t v) {
    if (v > value_.load(std::memory_order_relaxed)) {
      value_.store(v, std::memory_order_relaxed);
    }
  }

  Counter& operator++() {
    Add(1);
    return *this;
  }
  Counter& operator--() {
    Sub(1);
    return *this;
  }
  Counter& operator+=(uint64_t n) {
    Add(n);
    return *this;
  }

  /// Reader side: any thread.
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

}  // namespace gigascope::telemetry

#endif  // GIGASCOPE_TELEMETRY_COUNTER_H_
