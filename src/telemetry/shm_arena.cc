#include "telemetry/shm_arena.h"

#include <algorithm>
#include <cstring>

#include "common/logging.h"
#include "telemetry/metric_names.h"

namespace gigascope::telemetry {

namespace {

bool EndsWith(const std::string& s, const char* suffix) {
  const size_t n = std::strlen(suffix);
  return s.size() >= n && s.compare(s.size() - n, n, suffix) == 0;
}

}  // namespace

FoldKind FoldKindForMetric(const std::string& metric) {
  if (metric == metric::kOpenGroups || metric == metric::kLftaOccupied ||
      metric == metric::kShedLevel || metric == metric::kShedRate ||
      metric == metric::kLastPunctSec ||
      EndsWith(metric, metric::kRingSizeSuffix)) {
    return FoldKind::kGauge;
  }
  if (EndsWith(metric, metric::kRingHighWaterSuffix) ||
      EndsWith(metric, metric::kMaxSuffix)) {
    return FoldKind::kMax;
  }
  return FoldKind::kSum;
}

MetricsArena::MetricsArena(void* base, size_t bytes)
    : slots_(static_cast<MetricSlot*>(base)),
      capacity_(bytes / sizeof(MetricSlot)) {
  GS_CHECK(base != nullptr || capacity_ == 0);
  folds_.resize(capacity_);
}

size_t MetricsArena::Allocate(size_t count) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (count == 0) return kInvalidIndex;
  if (capacity_ - allocated_ < count) {
    exhausted_.Add(1);
    return kInvalidIndex;
  }
  const size_t begin = allocated_;
  allocated_ += count;
  return begin;
}

void MetricsArena::ResetRange(size_t begin, size_t count, uint64_t epoch) {
  GS_CHECK(begin + count <= capacity_);
  // Zero first, then publish the epoch with release order: a reader that
  // observes the new epoch (acquire) is guaranteed to observe the zeroed
  // value too, so a fresh incarnation can never replay the dead one's
  // totals under its own epoch.
  for (size_t i = begin; i < begin + count; ++i) {
    slots_[i].value.store(0, std::memory_order_relaxed);
  }
  for (size_t i = begin; i < begin + count; ++i) {
    slots_[i].epoch.store(epoch, std::memory_order_release);
  }
}

uint64_t MetricsArena::FoldValueLocked(size_t index, FoldKind kind) const {
  const MetricSlot& slot = slots_[index];
  const uint64_t epoch = slot.epoch.load(std::memory_order_acquire);
  const uint64_t value = slot.value.load(std::memory_order_relaxed);
  SlotFold& fold = folds_[index];
  if (kind == FoldKind::kGauge) return value;
  if (epoch != fold.epoch) {
    // The incarnation changed: bank the previous one's contribution.
    if (kind == FoldKind::kSum) {
      fold.base += fold.last;
    } else {
      fold.base = std::max(fold.base, fold.last);
    }
    fold.last = 0;
    fold.epoch = epoch;
  }
  // Within one incarnation a counter only grows; taking the max guards the
  // one-read transient where a stale epoch pairs with a freshly zeroed
  // value, keeping every read monotone.
  fold.last = std::max(fold.last, value);
  return kind == FoldKind::kSum ? fold.base + fold.last
                                : std::max(fold.base, fold.last);
}

uint64_t MetricsArena::FoldValue(size_t index, FoldKind kind) const {
  GS_CHECK(index < capacity_);
  std::lock_guard<std::mutex> lock(mutex_);
  return FoldValueLocked(index, kind);
}

HistogramSnapshot MetricsArena::FoldHistogram(size_t base_index) const {
  GS_CHECK(base_index + kHistogramSlots <= capacity_);
  std::lock_guard<std::mutex> lock(mutex_);
  HistogramSnapshot snapshot;
  for (int b = 0; b < HistogramSnapshot::kBuckets; ++b) {
    snapshot.buckets[b] = FoldValueLocked(base_index + b, FoldKind::kSum);
  }
  snapshot.count =
      FoldValueLocked(base_index + Histogram::kBuckets, FoldKind::kSum);
  snapshot.sum =
      FoldValueLocked(base_index + Histogram::kBuckets + 1, FoldKind::kSum);
  snapshot.max =
      FoldValueLocked(base_index + Histogram::kBuckets + 2, FoldKind::kMax);
  return snapshot;
}

size_t MetricsArena::allocated() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return allocated_;
}

}  // namespace gigascope::telemetry
