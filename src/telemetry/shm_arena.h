#ifndef GIGASCOPE_TELEMETRY_SHM_ARENA_H_
#define GIGASCOPE_TELEMETRY_SHM_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "telemetry/histogram.h"

namespace gigascope::telemetry {

/// One metric cell in the cross-process arena. The writer side keeps the
/// Counter discipline (exactly one writer, relaxed load+store, no RMW);
/// `epoch` tags which worker incarnation the value belongs to so the
/// parent's folded reads stay monotone across restarts: a restarted worker
/// zeroes its values and then publishes the new epoch with release order,
/// so an acquire reader that observes the new epoch also observes the
/// zeroed value.
struct MetricSlot {
  std::atomic<uint64_t> value{0};
  std::atomic<uint64_t> epoch{0};
};

/// How a slot's per-incarnation values combine into the aggregate the
/// parent reports.
enum class FoldKind {
  kSum,    // cumulative counter: sum over incarnations
  kMax,    // running maximum: max over incarnations
  kGauge,  // instantaneous value: current incarnation wins
};

/// Picks the fold for a metric name: gauges (open_groups, lfta_occupied,
/// shed_level/rate, *_size) report the live incarnation, high-water marks
/// fold as max, everything else is a cumulative sum.
FoldKind FoldKindForMetric(const std::string& metric);

/// A fixed-slot metrics arena over caller-provided memory — the Engine
/// hands it a `rts::ShmSegment` mapping so forked workers write metrics
/// the parent registry reads live (DESIGN.md §16).
///
/// Memory-agnostic by design: the telemetry layer sits below rts in the
/// library graph, so the arena never touches shm APIs itself; it only
/// requires the region to be zero-initialized and, for cross-process use,
/// MAP_SHARED.
///
/// Roles:
///  - Allocation (parent, control plane, pre-fork): `Allocate` hands out
///    contiguous slot ranges; `Counter::BindCell` / `Histogram::BindCells`
///    then redirect the owners' storage into the slots.
///  - Writing (one worker per slot): through the bound Counter — the
///    arena itself is never on the write path.
///  - Restart reset (the new child, before pumping): `ResetRange` zeroes
///    the range and publishes the child's generation as the new epoch.
///  - Folded reads (parent, any control thread): `FoldValue` /
///    `FoldHistogram` merge incarnations so aggregated counters never go
///    backwards when a restarted worker's zeroed cells come online.
///
/// The residual race: a reader can pair a not-yet-updated (stale) epoch
/// with a new incarnation's value for one read. The fold treats that as
/// more progress in the old incarnation — a bounded transient overcount,
/// never a regression; the next read with the new epoch visible folds
/// correctly. Monotonicity of kSum/kMax reads is unconditional.
class MetricsArena {
 public:
  static constexpr size_t kInvalidIndex = static_cast<size_t>(-1);
  /// Slots per bound histogram: 64 buckets, count, sum, max — in order.
  static constexpr size_t kHistogramSlots = Histogram::kBuckets + 3;

  /// Bytes a `slots`-slot arena needs from the caller.
  static size_t BytesForSlots(size_t slots) {
    return slots * sizeof(MetricSlot);
  }

  /// Attaches over `bytes` of zero-initialized memory at `base`. The
  /// memory must outlive the arena.
  MetricsArena(void* base, size_t bytes);
  MetricsArena(const MetricsArena&) = delete;
  MetricsArena& operator=(const MetricsArena&) = delete;

  /// Control plane (parent, pre-fork): allocates `count` contiguous slots
  /// and returns the first index, or kInvalidIndex when the arena is full
  /// (the caller keeps its heap counters; `exhausted()` counts the misses).
  size_t Allocate(size_t count);

  MetricSlot* slot(size_t index) { return &slots_[index]; }

  /// Restarted-worker reset: zeroes values in [begin, begin+count) with
  /// relaxed stores, then publishes `epoch` per slot with release order.
  /// Called by the new child before it pumps; the old writer is dead, so
  /// the single-writer contract holds.
  void ResetRange(size_t begin, size_t count, uint64_t epoch);

  /// Parent-side folded read of one slot (see FoldKind). Thread-safe; the
  /// per-slot fold state is guarded by the arena mutex. Workers never call
  /// this — they only write through bound cells — so fork-while-locked
  /// cannot wedge a child.
  uint64_t FoldValue(size_t index, FoldKind kind) const;

  /// Parent-side folded snapshot of a histogram bound at `base_index`
  /// (kHistogramSlots consecutive slots): buckets/count/sum fold as sums,
  /// max folds as max.
  HistogramSnapshot FoldHistogram(size_t base_index) const;

  size_t allocated() const;
  size_t capacity() const { return capacity_; }
  /// Allocation requests refused because the arena was full.
  uint64_t exhausted() const { return exhausted_.value(); }
  const Counter* exhausted_counter() const { return &exhausted_; }

 private:
  /// Fold memory for one slot: `base` holds the contribution of finished
  /// incarnations, `last` the largest value seen from the current one
  /// (the max guards the stale-epoch/new-value transient).
  struct SlotFold {
    uint64_t epoch = 0;
    uint64_t base = 0;
    uint64_t last = 0;
  };

  uint64_t FoldValueLocked(size_t index, FoldKind kind) const;

  MetricSlot* slots_;
  size_t capacity_;
  mutable std::mutex mutex_;
  size_t allocated_ = 0;          // guarded by mutex_
  mutable std::vector<SlotFold> folds_;  // guarded by mutex_
  Counter exhausted_;
};

}  // namespace gigascope::telemetry

#endif  // GIGASCOPE_TELEMETRY_SHM_ARENA_H_
