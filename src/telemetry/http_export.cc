#include "telemetry/http_export.h"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <map>

#include "telemetry/metric_names.h"
#include "telemetry/shm_arena.h"

namespace gigascope::telemetry {

namespace {

/// Prometheus metric names: [a-zA-Z_:][a-zA-Z0-9_:]*. Everything else
/// becomes '_'.
std::string SanitizeMetricName(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  for (size_t i = 0; i < name.size(); ++i) {
    char c = name[i];
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    c == '_' || c == ':' || (i > 0 && c >= '0' && c <= '9');
    out.push_back(ok ? c : '_');
  }
  return out;
}

/// Label values escape backslash, double-quote, and newline.
std::string EscapeLabelValue(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

bool EndsWith(const std::string& s, const char* suffix) {
  const size_t n = std::strlen(suffix);
  return s.size() >= n && s.compare(s.size() - n, n, suffix) == 0;
}

/// Counter vs gauge for the `# TYPE` line: histogram-derived stats and
/// instantaneous readings are gauges, cumulative totals are counters.
const char* PrometheusType(const std::string& metric) {
  if (EndsWith(metric, metric::kP50Suffix) ||
      EndsWith(metric, metric::kP90Suffix) ||
      EndsWith(metric, metric::kP99Suffix) ||
      EndsWith(metric, metric::kMaxSuffix)) {
    return "gauge";
  }
  return FoldKindForMetric(metric) == FoldKind::kGauge ? "gauge" : "counter";
}

void WriteAll(int fd, const std::string& data) {
  size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = write(fd, data.data() + off, data.size() - off);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return;  // peer went away; nothing to do for a scrape endpoint
    }
    off += static_cast<size_t>(n);
  }
}

std::string HttpResponse(int code, const char* reason,
                         const char* content_type, const std::string& body) {
  char header[256];
  std::snprintf(header, sizeof(header),
                "HTTP/1.1 %d %s\r\n"
                "Content-Type: %s\r\n"
                "Content-Length: %zu\r\n"
                "Connection: close\r\n"
                "\r\n",
                code, reason, content_type, body.size());
  return std::string(header) + body;
}

}  // namespace

std::string FormatPrometheus(const std::vector<MetricSample>& samples) {
  // Group samples by (sanitized) family name: the exposition format wants
  // one `# TYPE` line with every sample of the family directly under it.
  std::map<std::string, std::vector<const MetricSample*>> families;
  for (const MetricSample& sample : samples) {
    families["gigascope_" + SanitizeMetricName(sample.metric)].push_back(
        &sample);
  }
  std::string out;
  char buf[64];
  for (const auto& [family, members] : families) {
    out += "# TYPE " + family + " " + PrometheusType(members[0]->metric) +
           "\n";
    for (const MetricSample* sample : members) {
      out += family;
      out += "{node=\"" + EscapeLabelValue(sample->entity) + "\",proc=\"" +
             EscapeLabelValue(sample->proc) + "\"}";
      std::snprintf(buf, sizeof(buf), " %llu\n",
                    static_cast<unsigned long long>(sample->value));
      out += buf;
    }
  }
  return out;
}

MetricsHttpServer::~MetricsHttpServer() { Stop(); }

Status MetricsHttpServer::Start(uint16_t port, Handlers handlers) {
  if (listen_fd_ >= 0) {
    return Status::FailedPrecondition("MetricsHttpServer already started");
  }
  handlers_ = std::move(handlers);
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Internal(std::string("socket: ") + std::strerror(errno));
  }
  const int one = 1;
  setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);  // never exposed beyond lo
  addr.sin_port = htons(port);
  if (bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    const std::string msg = std::string("bind 127.0.0.1:") +
                            std::to_string(port) + ": " +
                            std::strerror(errno);
    close(fd);
    return Status::Internal(msg);
  }
  if (listen(fd, 8) < 0) {
    const std::string msg = std::string("listen: ") + std::strerror(errno);
    close(fd);
    return Status::Internal(msg);
  }
  socklen_t len = sizeof(addr);
  if (getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) == 0) {
    port_ = ntohs(addr.sin_port);
  }
  listen_fd_ = fd;
  stop_.store(false, std::memory_order_relaxed);
  thread_ = std::thread([this] { Serve(); });
  return Status::Ok();
}

void MetricsHttpServer::Stop() {
  if (listen_fd_ < 0) return;
  stop_.store(true, std::memory_order_relaxed);
  if (thread_.joinable()) thread_.join();
  close(listen_fd_);
  listen_fd_ = -1;
  port_ = 0;
}

void MetricsHttpServer::Serve() {
  while (!stop_.load(std::memory_order_relaxed)) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int ready = poll(&pfd, 1, /*timeout_ms=*/100);
    if (ready <= 0) continue;  // timeout or EINTR: re-check stop_
    const int conn = accept(listen_fd_, nullptr, nullptr);
    if (conn < 0) continue;
    // Read until the end of the request head. A scrape request is tiny;
    // cap at 8 KiB and give a slow client one second total.
    std::string request;
    char buf[1024];
    pollfd cpfd{conn, POLLIN, 0};
    for (int rounds = 0; rounds < 10; ++rounds) {
      if (poll(&cpfd, 1, 100) <= 0) continue;
      const ssize_t n = read(conn, buf, sizeof(buf));
      if (n <= 0) break;
      request.append(buf, static_cast<size_t>(n));
      if (request.find("\r\n\r\n") != std::string::npos ||
          request.size() > 8192) {
        break;
      }
    }
    // "GET <path> HTTP/1.x" — anything else is a 400/404/405.
    std::string method, path;
    const size_t sp1 = request.find(' ');
    if (sp1 != std::string::npos) {
      method = request.substr(0, sp1);
      const size_t sp2 = request.find(' ', sp1 + 1);
      if (sp2 != std::string::npos) {
        path = request.substr(sp1 + 1, sp2 - sp1 - 1);
      }
    }
    const size_t query = path.find('?');
    if (query != std::string::npos) path.resize(query);
    std::string response;
    if (method != "GET") {
      response = HttpResponse(405, "Method Not Allowed", "text/plain",
                              "only GET is supported\n");
    } else if (path == "/metrics" && handlers_.metrics) {
      response = HttpResponse(200, "OK",
                              "text/plain; version=0.0.4; charset=utf-8",
                              handlers_.metrics());
    } else if (path == "/analyze" && handlers_.analyze) {
      response = HttpResponse(200, "OK", "application/json",
                              handlers_.analyze());
    } else {
      response = HttpResponse(404, "Not Found", "text/plain",
                              "try /metrics or /analyze\n");
    }
    WriteAll(conn, response);
    close(conn);
  }
}

}  // namespace gigascope::telemetry
