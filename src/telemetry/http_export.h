#ifndef GIGASCOPE_TELEMETRY_HTTP_EXPORT_H_
#define GIGASCOPE_TELEMETRY_HTTP_EXPORT_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "telemetry/registry.h"

namespace gigascope::telemetry {

/// Renders samples in the Prometheus text exposition format (version
/// 0.0.4): metric names prefixed `gigascope_`, the owning entity and
/// process as `node`/`proc` labels, samples grouped under one `# TYPE`
/// line per metric family. Histogram-derived stats (`*_p50` ... `*_max`)
/// and instantaneous values expose as gauges, cumulative metrics as
/// counters.
std::string FormatPrometheus(const std::vector<MetricSample>& samples);

/// A minimal dependency-free HTTP/1.1 listener serving the engine's
/// observability plane (gsrun --metrics-port=N, DESIGN.md §16):
///
///   GET /metrics   Prometheus text exposition of the aggregated registry
///   GET /analyze   EXPLAIN ANALYZE as JSON
///
/// One accept thread handles requests serially — a scrape every few
/// seconds, not a web server. Handlers run on that thread and must be
/// safe against the engine's data plane (the registry and analyze paths
/// are: atomic counter reads plus control-plane mutexes).
class MetricsHttpServer {
 public:
  struct Handlers {
    std::function<std::string()> metrics;  // body for GET /metrics
    std::function<std::string()> analyze;  // body for GET /analyze
  };

  MetricsHttpServer() = default;
  ~MetricsHttpServer();
  MetricsHttpServer(const MetricsHttpServer&) = delete;
  MetricsHttpServer& operator=(const MetricsHttpServer&) = delete;

  /// Binds 127.0.0.1:`port` (0 picks an ephemeral port — see port()) and
  /// starts the accept thread.
  Status Start(uint16_t port, Handlers handlers);

  /// Stops the accept thread and closes the socket. Idempotent; the
  /// destructor calls it.
  void Stop();

  /// The actually bound port (resolves port 0), 0 before Start.
  uint16_t port() const { return port_; }

 private:
  void Serve();

  Handlers handlers_;
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::atomic<bool> stop_{false};
  std::thread thread_;
};

}  // namespace gigascope::telemetry

#endif  // GIGASCOPE_TELEMETRY_HTTP_EXPORT_H_
