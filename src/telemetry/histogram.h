#ifndef GIGASCOPE_TELEMETRY_HISTOGRAM_H_
#define GIGASCOPE_TELEMETRY_HISTOGRAM_H_

#include <atomic>
#include <bit>
#include <chrono>
#include <cstddef>
#include <cstdint>

#include "telemetry/counter.h"

namespace gigascope::telemetry {

/// A point-in-time reading of a Histogram, safe to take from any thread.
///
/// Per-bucket values are individually torn-free (relaxed atomic loads), not
/// a global atomic cut: while the writer runs, `count`/`sum` may lag the
/// buckets by a few events. Percentile() therefore derives its total from
/// the buckets themselves, so a snapshot is always self-consistent.
struct HistogramSnapshot {
  static constexpr int kBuckets = 64;
  uint64_t buckets[kBuckets] = {};
  uint64_t count = 0;
  uint64_t sum = 0;
  uint64_t max = 0;

  /// Total events according to the buckets (the percentile base).
  uint64_t TotalInBuckets() const;

  /// Value at quantile `p` in [0, 1]: the inclusive upper bound of the
  /// bucket where the cumulative count crosses ceil(p * total), so the
  /// answer is conservative (never under-reports). 0 when empty. Exact
  /// when every recorded value sits on a bucket upper bound (0, 1, 3, 7,
  /// ..., 2^k - 1).
  uint64_t Percentile(double p) const;

  /// Mean of recorded values (0 when empty).
  double Mean() const;
};

/// A lock-free latency/size histogram with logarithmic (power-of-two)
/// buckets: bucket 0 holds the value 0, bucket i (1 <= i <= 62) holds
/// [2^(i-1), 2^i - 1], and bucket 63 holds everything >= 2^62.
///
/// Same contract as Counter: exactly one thread records (the owning node's
/// polling thread, a ring's producer, the inject thread); any thread may
/// snapshot. Record is a handful of relaxed load+store pairs and one
/// bit_width — no RMW, no bus-locked instruction — so it is safe on the
/// per-tuple hot path (bench/micro_histogram measures the cost against a
/// plain Counter).
class Histogram {
 public:
  static constexpr int kBuckets = HistogramSnapshot::kBuckets;

  Histogram() = default;
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  /// Writer side. Single writer only.
  void Record(uint64_t value) {
    buckets_[BucketIndex(value)].Add(1);
    count_.Add(1);
    sum_.Add(value);
    max_.Max(value);
  }

  /// Reader side: any thread.
  HistogramSnapshot Snapshot() const;

  uint64_t count() const { return count_.value(); }
  uint64_t max() const { return max_.value(); }

  /// Cells a bound histogram occupies: 64 buckets, count, sum, max.
  static constexpr size_t kCells = kBuckets + 3;

  /// Redirects all kCells internal counters into caller-provided atomic
  /// storage (cell i at `first_cell + i * stride_bytes` — the stride lets
  /// the cells live inside larger structs, e.g. shm-arena MetricSlots).
  /// Same contract as Counter::BindCell: control plane only, current
  /// values carry over.
  void BindCells(std::atomic<uint64_t>* first_cell,
                 size_t stride_bytes) const;

  /// Bucket index of `value` (0..63).
  static int BucketIndex(uint64_t value) {
    int width = std::bit_width(value);  // 0 for value 0
    return width < kBuckets ? width : kBuckets - 1;
  }

  /// Inclusive upper bound of bucket `index`; the value Percentile reports.
  static uint64_t BucketUpperBound(int index);

 private:
  Counter buckets_[kBuckets];
  Counter count_;
  Counter sum_;
  Counter max_;
};

/// Nanoseconds on the monotonic clock — span timing and latency histograms
/// measure real elapsed time, unlike the sim-time driving query semantics.
inline int64_t MonotonicNowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace gigascope::telemetry

#endif  // GIGASCOPE_TELEMETRY_HISTOGRAM_H_
