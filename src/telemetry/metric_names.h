#ifndef GIGASCOPE_TELEMETRY_METRIC_NAMES_H_
#define GIGASCOPE_TELEMETRY_METRIC_NAMES_H_

namespace gigascope::telemetry::metric {

/// The engine's metric catalog: every name that can appear in the `metric`
/// column of the `gs_stats` stream, in one place. GSQL queries filter on
/// these strings (`WHERE metric = 'tuples_out'`), so ad-hoc literals at
/// call sites would make a typo fail silently — register and query through
/// these constants only. The full catalog (name, unit, writer) is
/// documented in DESIGN.md §11.

// -- Per-node counters (writer: the node's polling thread) -------------------
inline constexpr char kTuplesIn[] = "tuples_in";
inline constexpr char kTuplesOut[] = "tuples_out";
inline constexpr char kEvalErrors[] = "eval_errors";
inline constexpr char kBusyPolls[] = "busy_polls";

// -- Per-input-ring counters (prefix "ring" or "ring<i>") --------------------
inline constexpr char kRingPrefix[] = "ring";
inline constexpr char kRingPushedSuffix[] = "_pushed";
inline constexpr char kRingPoppedSuffix[] = "_popped";
inline constexpr char kRingDroppedSuffix[] = "_dropped";
inline constexpr char kRingSizeSuffix[] = "_size";
inline constexpr char kRingHighWaterSuffix[] = "_high_water";
/// Ring occupancy histogram (batches queued, sampled at each push).
inline constexpr char kRingOccupancySuffix[] = "_occupancy";
/// Messages per pushed batch (how well the data plane amortizes pushes).
inline constexpr char kRingBatchSizeSuffix[] = "_batch_size";

// -- Aggregation operators ---------------------------------------------------
inline constexpr char kOpenGroups[] = "open_groups";
inline constexpr char kGroupsFlushed[] = "groups_flushed";
inline constexpr char kLftaUpdates[] = "lfta_updates";
inline constexpr char kLftaEvictions[] = "lfta_evictions";
inline constexpr char kLftaOccupied[] = "lfta_occupied";

// -- Packet sources (writer: the inject thread) ------------------------------
inline constexpr char kPackets[] = "packets";
inline constexpr char kLastPunctSec[] = "last_punct_sec";
/// Sim-time gap between a packet and the last punctuation on its source.
inline constexpr char kPunctLagNs[] = "punct_lag_ns";
/// Packets whose bytes could not be decoded even at the Ethernet layer
/// (truncated/corrupt captures); interpreted as type defaults, never
/// crashed on.
inline constexpr char kParseErrors[] = "parse_errors";
/// Packets whose timestamp regressed behind the source's last emitted
/// punctuation; clamped to the punctuation bound instead of violating it.
inline constexpr char kTimeRegressions[] = "time_regressions";

// -- Overload controller (writer: the inject thread) -------------------------
/// Current rung of the shedding ladder (0 = exact processing).
inline constexpr char kShedLevel[] = "shed_level";
/// Percent of offered packets currently being shed by L1 sampling
/// ((k-1)*100/k; 0 when not sampling).
inline constexpr char kShedRate[] = "shed_rate";
/// Packets deterministically shed at the source (accounted, not lost:
/// surviving tuples are scaled to cover them).
inline constexpr char kShedTuples[] = "shed_tuples";
/// Pressure evaluations the controller has run.
inline constexpr char kShedChecks[] = "shed_checks";
/// LFTA groups force-evicted by the L3 occupancy cap (also counted in
/// lfta_evictions; partials, re-merged by the HFTA).
inline constexpr char kLftaShedEvictions[] = "lfta_shed_evictions";

// -- Multi-process supervision (writer: supervisor monitor thread) -----------
/// Worker processes re-forked after a crash or a hung-heartbeat kill.
inline constexpr char kWorkerRestarts[] = "worker_restarts";
/// Monitor ticks that found a live worker's heartbeat counter unchanged.
inline constexpr char kHeartbeatMisses[] = "heartbeat_misses";
/// Workers whose restart budget is exhausted (their nodes run in-process).
inline constexpr char kWorkersDegraded[] = "workers_degraded";
/// Punctuation-bounded recovery gaps: every worker restart plus every
/// degraded-worker adoption begins one (tuples inside it are discarded and
/// counted in resync_dropped).
inline constexpr char kResyncGaps[] = "resync_gaps";
/// Shm ring slots whose sequence/bounds validation failed at the consumer
/// (torn writes — injected or from a producer dying mid-publish).
inline constexpr char kTornSlots[] = "torn_slots";
/// Tuples discarded while a resynchronizing consumer waited for the next
/// punctuation boundary.
inline constexpr char kResyncDropped[] = "resync_dropped";
/// Messages too large for one shm ring slot, dropped at the producer.
inline constexpr char kOversizeDropped[] = "oversize_dropped";

// -- Native compiled-query tier (entity "jit"; writers: see jit/engine.h) ----
/// Generated modules actually run through the toolchain (cache misses).
inline constexpr char kJitCompiles[] = "jit_compiles";
/// Cumulative toolchain wall time in ns (divide by jit_compiles for mean).
inline constexpr char kJitCompileNs[] = "jit_compile_ns";
/// Modules dlopen'd straight from the on-disk content-hash cache.
inline constexpr char kJitCacheHits[] = "jit_cache_hits";
/// Kernel requests that stayed on the VM: emission gaps (UDF call sites,
/// string operands), compile failures, or no usable toolchain.
inline constexpr char kJitFallbacks[] = "jit_fallbacks";
/// Kernels currently published into operator slots.
inline constexpr char kJitActiveKernels[] = "jit_active_kernels";

// -- Engine-level ------------------------------------------------------------
inline constexpr char kHeartbeats[] = "heartbeats";
inline constexpr char kStatsSnapshots[] = "stats_snapshots";
/// Sampled packets tagged by the tracer (0 unless --trace-sample).
inline constexpr char kTraceSampled[] = "trace_sampled";
/// Trace events discarded once the tracer's event cap filled.
inline constexpr char kTraceDroppedEvents[] = "trace_dropped_events";
/// Sampled tuples that reached an operator with no tracer attached — in
/// process mode the trace context crosses the shm ring but worker-side
/// spans are not recorded, so the trace is explicitly marked truncated
/// rather than silently thinner.
inline constexpr char kTraceTruncated[] = "trace_truncated";
/// Metric-arena allocation requests refused because the fixed-slot shm
/// arena was full (the metrics stay heap-backed and parent-stale).
inline constexpr char kMetricsArenaExhausted[] = "metrics_arena_exhausted";

// -- Latency histogram bases (wall-clock ns unless noted) --------------------
// A histogram named <base> surfaces as <base>_p50/_p90/_p99/_max/_count.
/// Duration of one busy poll round of a node.
inline constexpr char kPollNs[] = "poll_ns";
/// Per-message share of a busy poll (poll duration / messages consumed).
inline constexpr char kTupleNs[] = "tuple_ns";
/// Inject→emit latency of traced tuples at a query's terminal node.
inline constexpr char kE2eLatencyNs[] = "e2e_latency_ns";
/// Time a worker spent parked waiting for input (one sample per park).
inline constexpr char kParkNs[] = "park_ns";

// -- Histogram stat suffixes -------------------------------------------------
inline constexpr char kP50Suffix[] = "_p50";
inline constexpr char kP90Suffix[] = "_p90";
inline constexpr char kP99Suffix[] = "_p99";
inline constexpr char kMaxSuffix[] = "_max";
inline constexpr char kCountSuffix[] = "_count";

}  // namespace gigascope::telemetry::metric

#endif  // GIGASCOPE_TELEMETRY_METRIC_NAMES_H_
