#ifndef GIGASCOPE_TELEMETRY_TRACER_H_
#define GIGASCOPE_TELEMETRY_TRACER_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

#include "common/rng.h"
#include "telemetry/counter.h"
#include "telemetry/histogram.h"

namespace gigascope::telemetry {

/// One recorded trace event, in Chrome trace-event terms: a complete span
/// ('X', with duration), an instant ('i'), or thread-name metadata ('M',
/// synthesized at write time from the track names).
struct TraceEvent {
  std::string name;
  char ph = 'X';
  int64_t ts_ns = 0;   // nanoseconds since the tracer's epoch
  int64_t dur_ns = 0;  // 'X' only
  uint32_t tid = 0;    // track: 0 = packet sources, 1+N = node N
  uint64_t trace_id = 0;
};

/// Sampled per-tuple tracing (the profiling face of "use Gigascope to
/// monitor Gigascope"): the inject thread tags 1-in-N packets with a trace
/// id; the trace context rides on every StreamMessage derived from a
/// tagged one through LFTA pre-aggregation, the rings, and the HFTA
/// operators, and each operator records a span per traced message it
/// processes. The result serializes as Chrome trace-event JSON, loadable
/// in Perfetto (or chrome://tracing): one track per operator node, so a
/// DAG stall shows up as a gap on a timeline instead of a counter delta.
///
/// Sampling is deterministic under the seed — replaying the same injection
/// sequence tags the same packets — which keeps traces reproducible and
/// lets tests assert exact sample counts. Span recording takes a mutex;
/// that is fine for 1-in-N sampled traffic and keeps multi-worker writes
/// simple (the hot, untraced path never touches the tracer).
class Tracer {
 public:
  /// Tag roughly 1 in `sample_period` injections (>= 1; 1 traces all).
  /// Event storage is capped at `max_events`; past it, events drop and are
  /// counted (dropped_events) rather than growing without bound.
  explicit Tracer(uint64_t sample_period, uint64_t seed = 42,
                  size_t max_events = size_t{1} << 20);

  /// Inject-thread side: decides whether this injection is traced.
  /// Returns the assigned trace id (>= 1), or 0 to skip.
  uint64_t SampleInject();

  /// Nanoseconds since the tracer's construction (monotonic clock).
  int64_t NowNs() const;

  /// Names a track for the trace viewer (engine: node names). Setup only.
  void SetTrackName(uint32_t tid, std::string name);

  /// Any thread.
  void RecordInstant(const std::string& name, uint32_t tid,
                     uint64_t trace_id, int64_t ts_ns);
  void RecordSpan(const std::string& name, uint32_t tid, uint64_t trace_id,
                  int64_t start_ns, int64_t end_ns);

  /// Events recorded so far, sorted by (tid, ts) — the order WriteJson
  /// emits, with ts monotone within each track.
  std::vector<TraceEvent> events() const;

  /// Serializes the Chrome trace-event JSON object format:
  /// `{"traceEvents":[...]}` with one event per line, each carrying the
  /// required ph/ts/pid/tid/name keys (ts in microseconds, the unit the
  /// format specifies). Includes one thread_name metadata event per named
  /// track so Perfetto labels the rows.
  void WriteJson(std::ostream& out) const;

  uint64_t sampled() const { return sampled_.value(); }
  const Counter* sampled_counter() const { return &sampled_; }
  uint64_t dropped_events() const { return dropped_events_.value(); }
  const Counter* dropped_events_counter() const { return &dropped_events_; }
  uint64_t sample_period() const { return sample_period_; }

 private:
  const uint64_t sample_period_;
  const size_t max_events_;
  Rng rng_;                 // inject thread only
  uint64_t next_trace_id_ = 1;
  Counter sampled_;         // written by the inject thread
  Counter dropped_events_;  // written under mutex_
  const int64_t epoch_ns_;

  mutable std::mutex mutex_;
  std::vector<TraceEvent> events_;
  std::map<uint32_t, std::string> track_names_;
};

}  // namespace gigascope::telemetry

#endif  // GIGASCOPE_TELEMETRY_TRACER_H_
