#include "telemetry/stats_source.h"

#include "rts/punctuation.h"

namespace gigascope::telemetry {

using expr::Value;

StatsSource::StatsSource(const Registry* metrics,
                         rts::StreamRegistry* streams)
    : metrics_(metrics),
      streams_(streams),
      schema_(gsql::Catalog::BuiltinStatsSchema()),
      codec_(schema_) {}

void StatsSource::EmitSnapshot(SimTime now) {
  if (now < last_ts_) now = last_ts_;
  last_ts_ = now;
  const uint64_t seconds = static_cast<uint64_t>(SimTimeToSeconds(now));
  const uint64_t nanos = static_cast<uint64_t>(now);
  const std::string& stream = schema_.name();

  rts::Row row(6);
  row[0] = Value::Uint(seconds);
  row[1] = Value::Uint(nanos);
  // One snapshot is one batch (plus the closing punctuation at its tail);
  // a snapshot has a few dozen rows, comfortably within one ring slot.
  rts::StreamBatch batch;
  for (const MetricSample& sample : metrics_->Snapshot()) {
    row[2] = Value::String(sample.entity);
    row[3] = Value::String(sample.metric);
    row[4] = Value::Uint(sample.value);
    row[5] = Value::String(sample.proc);
    rts::StreamMessage message;
    message.kind = rts::StreamMessage::Kind::kTuple;
    codec_.Encode(row, &message.payload);
    batch.items.push_back(std::move(message));
  }

  // No tuple of a later snapshot will carry smaller time attributes, so
  // downstream ordered aggregations can close groups up to this bound.
  rts::Punctuation punctuation;
  punctuation.bounds.emplace_back(0, Value::Uint(seconds));
  punctuation.bounds.emplace_back(1, Value::Uint(nanos));
  batch.items.push_back(rts::MakePunctuationMessage(punctuation, schema_));
  streams_->PublishBatch(stream, std::move(batch));
  ++snapshots_;
}

}  // namespace gigascope::telemetry
