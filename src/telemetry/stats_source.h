#ifndef GIGASCOPE_TELEMETRY_STATS_SOURCE_H_
#define GIGASCOPE_TELEMETRY_STATS_SOURCE_H_

#include "common/clock.h"
#include "gsql/catalog.h"
#include "rts/registry.h"
#include "rts/tuple.h"
#include "telemetry/registry.h"

namespace gigascope::telemetry {

/// The built-in `gs_stats` stream source: snapshots the metric registry and
/// publishes one tuple per (entity, metric) onto the `gs_stats` stream,
/// followed by a punctuation advancing the snapshot-time attributes.
///
/// This is how the engine "monitors itself" in the paper's spirit: the
/// stats feed is an ordinary ordered stream, so any GSQL query can select,
/// aggregate, or join the engine's own health data through the normal
/// planner path (e.g. max ring occupancy per node per second).
///
/// Like the packet sources, the stats source is driven by the inject
/// thread (sim-time from packets and heartbeats), never by workers, so the
/// single-producer contract of every `gs_stats` subscriber channel holds.
class StatsSource {
 public:
  /// `metrics` and `streams` must outlive the source. The `gs_stats`
  /// stream must already be declared in `streams` with BuiltinStatsSchema.
  StatsSource(const Registry* metrics, rts::StreamRegistry* streams);

  /// Emits one snapshot stamped `now` (clamped to be non-decreasing across
  /// calls, so `time`/`ts` honor their INCREASING ordering property), then
  /// a punctuation bounding both time attributes.
  void EmitSnapshot(SimTime now);

  uint64_t snapshots() const { return snapshots_.value(); }
  const Counter* snapshots_counter() const { return &snapshots_; }

 private:
  const Registry* metrics_;
  rts::StreamRegistry* streams_;
  gsql::StreamSchema schema_;
  rts::TupleCodec codec_;
  Counter snapshots_;
  SimTime last_ts_ = 0;
};

}  // namespace gigascope::telemetry

#endif  // GIGASCOPE_TELEMETRY_STATS_SOURCE_H_
