#ifndef GIGASCOPE_UDF_REGISTRY_H_
#define GIGASCOPE_UDF_REGISTRY_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "expr/ir.h"

namespace gigascope::udf {

/// The function registry (§2.2): users make new functions available by
/// adding code to the function library and registering the prototype here.
/// Functions can be marked partial (no result ⇒ tuple discarded, acting as
/// a foreign-key join) and arguments can be pass-by-handle.
class FunctionRegistry : public expr::FunctionResolver {
 public:
  FunctionRegistry() = default;
  FunctionRegistry(const FunctionRegistry&) = delete;
  FunctionRegistry& operator=(const FunctionRegistry&) = delete;

  /// Registers a function prototype; names are case-insensitive and must
  /// not collide with aggregate names or an existing registration.
  Status Register(expr::FunctionInfo info);

  Result<const expr::FunctionInfo*> Resolve(
      const std::string& name) const override;

  std::vector<std::string> Names() const;

  /// Process-wide registry pre-loaded with the built-in function library.
  static FunctionRegistry* Default();

 private:
  std::map<std::string, std::unique_ptr<expr::FunctionInfo>> functions_;
};

/// Registers the built-in function library into `registry`:
///   getlpmid(destIP IP, 'prefixes' STRING^handle) -> UINT, partial
///   match_regex(payload STRING, 'pattern' STRING^handle) -> BOOL
///   str_find(haystack STRING, needle STRING) -> BOOL
///   str_len(s STRING) -> UINT
///   ip_in_subnet(addr IP, subnet IP, masklen UINT) -> BOOL
///   hash64(x UINT) -> UINT
///   sample(key UINT, fraction FLOAT) -> BOOL   (deterministic sampling)
void RegisterBuiltins(FunctionRegistry* registry);

}  // namespace gigascope::udf

#endif  // GIGASCOPE_UDF_REGISTRY_H_
