#ifndef GIGASCOPE_UDF_LPM_H_
#define GIGASCOPE_UDF_LPM_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace gigascope::udf {

/// Longest-prefix-match table over IPv4 prefixes — the fast special-purpose
/// algorithm behind the paper's `getlpmid` example (§2.2): it identifies
/// which peer/AS subnet an address belongs to.
///
/// Implemented as a binary trie (one bit per level). Lookup cost is at most
/// 32 node visits regardless of table size; `LookupLinear` provides the
/// naive scan baseline used by bench/e7_udf.
class LpmTable {
 public:
  LpmTable();

  /// Adds a prefix (`prefix_len` in [0,32]) mapped to `id`. Re-adding the
  /// same prefix overwrites its id.
  Status Add(uint32_t prefix, int prefix_len, uint64_t id);

  /// Longest-prefix match; nullopt when no prefix covers `addr`.
  std::optional<uint64_t> Lookup(uint32_t addr) const;

  /// Reference implementation: scans all prefixes. Same results as Lookup.
  std::optional<uint64_t> LookupLinear(uint32_t addr) const;

  /// Number of prefixes in the table.
  size_t size() const { return entries_.size(); }

  /// Parses a table from text: one `a.b.c.d/len id` entry per line;
  /// blank lines and `#` comments allowed.
  static Result<LpmTable> Parse(std::string_view text);

  /// Loads a table from a file in Parse() format (the pass-by-handle file
  /// the paper's example reads at query instantiation).
  static Result<LpmTable> LoadFromFile(const std::string& path);

 private:
  struct Node {
    int32_t child[2] = {-1, -1};
    int32_t entry = -1;  // index into entries_, -1 if none
  };
  struct Entry {
    uint32_t prefix;
    int prefix_len;
    uint64_t id;
  };

  std::vector<Node> nodes_;
  std::vector<Entry> entries_;
};

}  // namespace gigascope::udf

#endif  // GIGASCOPE_UDF_LPM_H_
