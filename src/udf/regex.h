#ifndef GIGASCOPE_UDF_REGEX_H_
#define GIGASCOPE_UDF_REGEX_H_

#include <bitset>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace gigascope::udf {

/// From-scratch regular-expression engine (Thompson NFA / Pike VM).
///
/// This is the expensive pass-by-handle UDF of the paper's §4 experiment
/// (pattern ^[^\n]*HTTP/1.*). The pattern is compiled once, at query
/// instantiation, into an NFA; matching simulates the NFA in O(states ×
/// text) with no backtracking, so hostile payloads cannot blow up matching
/// time — a property a network monitor needs.
///
/// Supported syntax: literals, '.', '|', '*', '+', '?', '(...)' grouping,
/// character classes [abc], [a-z], [^...], anchors '^' and '$', and escapes
/// \n \t \r \d \D \w \W \s \S and escaped metacharacters.
class Regex {
 public:
  /// Compiles a pattern; fails with ParseError on malformed syntax.
  static Result<Regex> Compile(std::string_view pattern);

  /// Unanchored search: does any substring of `text` match? A leading '^'
  /// or trailing '$' in the pattern constrains as usual.
  bool Matches(std::string_view text) const;

  /// Anchored match of the entire text.
  bool FullMatch(std::string_view text) const;

  /// Number of NFA states (size/cost introspection for the planner).
  size_t num_states() const { return states_.size(); }

  const std::string& pattern() const { return pattern_; }

 private:
  struct State {
    enum class Kind : uint8_t {
      kClass,        // consume one byte in `cls`, go to next
      kSplit,        // epsilon to next and next2
      kAssertStart,  // epsilon to next iff at text start
      kAssertEnd,    // epsilon to next iff at text end
      kMatch,        // accept
    };
    Kind kind = Kind::kMatch;
    std::bitset<256> cls;
    int next = -1;
    int next2 = -1;
  };

  Regex() = default;

  bool Run(std::string_view text, bool anchored_start,
           bool require_full) const;

  void AddState(int state, size_t pos, size_t len,
                std::vector<int>* list, std::vector<uint32_t>* seen,
                uint32_t gen) const;

  std::string pattern_;
  std::vector<State> states_;
  int start_ = -1;

  friend class RegexCompiler;
};

}  // namespace gigascope::udf

#endif  // GIGASCOPE_UDF_REGEX_H_
