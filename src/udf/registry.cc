#include "udf/registry.h"

#include <cctype>

#include "gsql/analyzer.h"

namespace gigascope::udf {

namespace {

std::string Lower(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) out += static_cast<char>(std::tolower(c));
  return out;
}

}  // namespace

Status FunctionRegistry::Register(expr::FunctionInfo info) {
  std::string key = Lower(info.name);
  if (key.empty()) {
    return Status::InvalidArgument("function must have a name");
  }
  if (gsql::IsAggregateFunction(key)) {
    return Status::InvalidArgument("'" + key +
                                   "' is a reserved aggregate name");
  }
  if (info.invoke == nullptr) {
    return Status::InvalidArgument("function '" + key +
                                   "' has no implementation");
  }
  if (!info.pass_by_handle.empty() &&
      info.pass_by_handle.size() != info.arg_types.size()) {
    return Status::InvalidArgument(
        "function '" + key +
        "': pass_by_handle must be empty or match the argument count");
  }
  info.name = key;
  auto [it, inserted] =
      functions_.emplace(key, std::make_unique<expr::FunctionInfo>(
                                  std::move(info)));
  if (!inserted) {
    return Status::AlreadyExists("function '" + key +
                                 "' is already registered");
  }
  (void)it;
  return Status::Ok();
}

Result<const expr::FunctionInfo*> FunctionRegistry::Resolve(
    const std::string& name) const {
  auto it = functions_.find(Lower(name));
  if (it == functions_.end()) {
    return Status::NotFound("unknown function '" + name + "'");
  }
  return it->second.get();
}

std::vector<std::string> FunctionRegistry::Names() const {
  std::vector<std::string> names;
  names.reserve(functions_.size());
  for (const auto& [name, fn] : functions_) names.push_back(name);
  return names;
}

FunctionRegistry* FunctionRegistry::Default() {
  static FunctionRegistry* registry = [] {
    auto* r = new FunctionRegistry();
    RegisterBuiltins(r);
    return r;
  }();
  return registry;
}

}  // namespace gigascope::udf
