#include "udf/regex.h"

namespace gigascope::udf {

namespace {

/// NFA fragment under construction: a start state plus the dangling "out"
/// slots that the next fragment will be patched into. Each dangling slot is
/// (state index, which-out): 0 = next, 1 = next2.
struct Fragment {
  int start;
  std::vector<std::pair<int, int>> dangling;
};

}  // namespace

/// Recursive-descent pattern parser that emits NFA states directly
/// (Thompson's construction).
class RegexCompiler {
 public:
  explicit RegexCompiler(std::string_view pattern) : pattern_(pattern) {}

  Result<Regex> Run() {
    GS_ASSIGN_OR_RETURN(Fragment frag, ParseAlt());
    if (!AtEnd()) {
      return Status::ParseError("regex: unexpected ')' at position " +
                                std::to_string(pos_));
    }
    int match = AddState(Regex::State::Kind::kMatch);
    Patch(frag.dangling, match);
    Regex regex;
    regex.pattern_ = std::string(pattern_);
    regex.states_ = std::move(states_);
    regex.start_ = frag.start;
    return regex;
  }

 private:
  bool AtEnd() const { return pos_ >= pattern_.size(); }
  char Peek() const { return AtEnd() ? '\0' : pattern_[pos_]; }
  char Advance() { return pattern_[pos_++]; }

  int AddState(Regex::State::Kind kind) {
    Regex::State state;
    state.kind = kind;
    states_.push_back(std::move(state));
    return static_cast<int>(states_.size() - 1);
  }

  void Patch(const std::vector<std::pair<int, int>>& dangling, int target) {
    for (auto [state, which] : dangling) {
      if (which == 0) {
        states_[state].next = target;
      } else {
        states_[state].next2 = target;
      }
    }
  }

  // alt := concat ('|' concat)*
  Result<Fragment> ParseAlt() {
    GS_ASSIGN_OR_RETURN(Fragment left, ParseConcat());
    while (Peek() == '|') {
      Advance();
      GS_ASSIGN_OR_RETURN(Fragment right, ParseConcat());
      int split = AddState(Regex::State::Kind::kSplit);
      states_[split].next = left.start;
      states_[split].next2 = right.start;
      Fragment merged;
      merged.start = split;
      merged.dangling = left.dangling;
      merged.dangling.insert(merged.dangling.end(), right.dangling.begin(),
                             right.dangling.end());
      left = std::move(merged);
    }
    return left;
  }

  // concat := repeat*   (empty concat = epsilon)
  Result<Fragment> ParseConcat() {
    Fragment result;
    bool have_any = false;
    while (!AtEnd() && Peek() != '|' && Peek() != ')') {
      GS_ASSIGN_OR_RETURN(Fragment next, ParseRepeat());
      if (!have_any) {
        result = std::move(next);
        have_any = true;
      } else {
        Patch(result.dangling, next.start);
        result.dangling = std::move(next.dangling);
      }
    }
    if (!have_any) {
      // Epsilon: a split whose both arms dangle to the same target.
      int split = AddState(Regex::State::Kind::kSplit);
      result.start = split;
      result.dangling = {{split, 0}, {split, 1}};
    }
    return result;
  }

  /// Concatenates two fragments (a then b).
  Fragment Concat(Fragment a, Fragment b) {
    Patch(a.dangling, b.start);
    a.dangling = std::move(b.dangling);
    return a;
  }

  /// Re-emits a fresh copy of the atom spanning [begin, end) by re-parsing
  /// that slice of the pattern (Thompson fragments cannot be cloned in
  /// place, but the source text can be compiled again).
  Result<Fragment> ReparseAtom(size_t begin, size_t end) {
    size_t saved = pos_;
    pos_ = begin;
    Result<Fragment> copy = ParseAtom();
    if (copy.ok() && pos_ != end) {
      return Status::ParseError("regex: internal atom re-parse mismatch");
    }
    pos_ = saved;
    return copy;
  }

  /// Builds atom{m,n} (n == SIZE_MAX for unbounded): m required copies,
  /// then either a star (unbounded) or a chain of nested optionals.
  Result<Fragment> BuildCounted(Fragment first, size_t begin, size_t end,
                                size_t m, size_t n) {
    constexpr size_t kMaxCount = 1000;
    if (m > kMaxCount || (n != SIZE_MAX && n > kMaxCount)) {
      return Status::ParseError("regex: repetition count too large");
    }
    if (n != SIZE_MAX && n < m) {
      return Status::ParseError("regex: repetition range {m,n} with n < m");
    }

    // Required part: m copies (the first already parsed).
    std::optional<Fragment> required;
    if (m >= 1) required = first;
    for (size_t i = 1; i < m; ++i) {
      GS_ASSIGN_OR_RETURN(Fragment copy, ReparseAtom(begin, end));
      required = Concat(std::move(*required), std::move(copy));
    }

    // Optional tail.
    std::optional<Fragment> tail;
    if (n == SIZE_MAX) {
      // atom* over a fresh copy (or over `first` when m == 0).
      Fragment copy = first;
      if (m >= 1) {
        GS_ASSIGN_OR_RETURN(copy, ReparseAtom(begin, end));
      }
      int split = AddState(Regex::State::Kind::kSplit);
      states_[split].next = copy.start;
      Patch(copy.dangling, split);
      Fragment star;
      star.start = split;
      star.dangling = {{split, 1}};
      tail = star;
    } else {
      // Nested optionals, built right-to-left: a{2,4} = aa(a(a)?)?.
      for (size_t i = 0; i < n - m; ++i) {
        // Reuse `first` only for the innermost copy when m == 0 left it
        // unconsumed; every other copy is re-emitted from the source text.
        Fragment copy = first;
        if (m >= 1 || tail.has_value() || i > 0) {
          GS_ASSIGN_OR_RETURN(copy, ReparseAtom(begin, end));
        }
        if (tail.has_value()) {
          copy = Concat(std::move(copy), std::move(*tail));
        }
        int split = AddState(Regex::State::Kind::kSplit);
        states_[split].next = copy.start;
        Fragment optional;
        optional.start = split;
        optional.dangling = std::move(copy.dangling);
        optional.dangling.push_back({split, 1});
        tail = optional;
      }
    }

    if (required.has_value() && tail.has_value()) {
      return Concat(std::move(*required), std::move(*tail));
    }
    if (required.has_value()) return *required;
    if (tail.has_value()) return *tail;
    // {0,0}: epsilon.
    int split = AddState(Regex::State::Kind::kSplit);
    Fragment epsilon;
    epsilon.start = split;
    epsilon.dangling = {{split, 0}, {split, 1}};
    return epsilon;
  }

  // repeat := atom ('*' | '+' | '?' | '{m}' | '{m,}' | '{m,n}')*
  Result<Fragment> ParseRepeat() {
    size_t atom_begin = pos_;
    GS_ASSIGN_OR_RETURN(Fragment frag, ParseAtom());
    size_t atom_end = pos_;
    while (!AtEnd()) {
      char c = Peek();
      if (c == '*') {
        Advance();
        int split = AddState(Regex::State::Kind::kSplit);
        states_[split].next = frag.start;
        Patch(frag.dangling, split);
        frag.start = split;
        frag.dangling = {{split, 1}};
      } else if (c == '+') {
        Advance();
        int split = AddState(Regex::State::Kind::kSplit);
        states_[split].next = frag.start;
        Patch(frag.dangling, split);
        frag.dangling = {{split, 1}};
        // start unchanged: must pass through the atom at least once
      } else if (c == '?') {
        Advance();
        int split = AddState(Regex::State::Kind::kSplit);
        states_[split].next = frag.start;
        Fragment opt;
        opt.start = split;
        opt.dangling = std::move(frag.dangling);
        opt.dangling.push_back({split, 1});
        frag = std::move(opt);
      } else if (c == '{' && pos_ + 1 < pattern_.size() &&
                 pattern_[pos_ + 1] >= '0' && pattern_[pos_ + 1] <= '9') {
        Advance();  // '{'
        size_t m = 0;
        while (!AtEnd() && Peek() >= '0' && Peek() <= '9') {
          m = m * 10 + static_cast<size_t>(Advance() - '0');
          if (m > 100000) return Status::ParseError("regex: count overflow");
        }
        size_t n = m;
        if (Peek() == ',') {
          Advance();
          if (Peek() == '}') {
            n = SIZE_MAX;  // {m,}
          } else {
            n = 0;
            while (!AtEnd() && Peek() >= '0' && Peek() <= '9') {
              n = n * 10 + static_cast<size_t>(Advance() - '0');
              if (n > 100000) {
                return Status::ParseError("regex: count overflow");
              }
            }
          }
        }
        if (Peek() != '}') {
          return Status::ParseError("regex: expected '}' in repetition");
        }
        Advance();
        GS_ASSIGN_OR_RETURN(
            frag, BuildCounted(std::move(frag), atom_begin, atom_end, m, n));
        // Further quantifiers apply to the counted construct, whose source
        // span can no longer be re-parsed; only * + ? are meaningful next.
        atom_begin = atom_end;  // make a second '{' an internal error guard
      } else {
        break;
      }
    }
    return frag;
  }

  Result<Fragment> ParseAtom() {
    if (AtEnd()) return Status::ParseError("regex: pattern ended unexpectedly");
    char c = Advance();
    switch (c) {
      case '(': {
        GS_ASSIGN_OR_RETURN(Fragment inner, ParseAlt());
        if (Peek() != ')') {
          return Status::ParseError("regex: missing ')'");
        }
        Advance();
        return inner;
      }
      case '[':
        return ParseClass();
      case '.': {
        int state = AddState(Regex::State::Kind::kClass);
        states_[state].cls.set();
        states_[state].cls.reset('\n');
        Fragment frag;
        frag.start = state;
        frag.dangling = {{state, 0}};
        return frag;
      }
      case '^': {
        int state = AddState(Regex::State::Kind::kAssertStart);
        Fragment frag;
        frag.start = state;
        frag.dangling = {{state, 0}};
        return frag;
      }
      case '$': {
        int state = AddState(Regex::State::Kind::kAssertEnd);
        Fragment frag;
        frag.start = state;
        frag.dangling = {{state, 0}};
        return frag;
      }
      case '*':
      case '+':
      case '?':
        return Status::ParseError(
            std::string("regex: dangling repetition '") + c + "'");
      case '\\': {
        std::bitset<256> cls;
        GS_RETURN_IF_ERROR(ParseEscape(&cls));
        int state = AddState(Regex::State::Kind::kClass);
        states_[state].cls = cls;
        Fragment frag;
        frag.start = state;
        frag.dangling = {{state, 0}};
        return frag;
      }
      default: {
        int state = AddState(Regex::State::Kind::kClass);
        states_[state].cls.set(static_cast<unsigned char>(c));
        Fragment frag;
        frag.start = state;
        frag.dangling = {{state, 0}};
        return frag;
      }
    }
  }

  Status ParseEscape(std::bitset<256>* cls) {
    if (AtEnd()) return Status::ParseError("regex: trailing backslash");
    char c = Advance();
    switch (c) {
      case 'n': cls->set('\n'); return Status::Ok();
      case 't': cls->set('\t'); return Status::Ok();
      case 'r': cls->set('\r'); return Status::Ok();
      case '0': cls->set(0); return Status::Ok();
      case 'd':
        for (char d = '0'; d <= '9'; ++d) cls->set(static_cast<unsigned char>(d));
        return Status::Ok();
      case 'D':
        cls->set();
        for (char d = '0'; d <= '9'; ++d)
          cls->reset(static_cast<unsigned char>(d));
        return Status::Ok();
      case 'w':
        for (char d = '0'; d <= '9'; ++d) cls->set(static_cast<unsigned char>(d));
        for (char d = 'a'; d <= 'z'; ++d) cls->set(static_cast<unsigned char>(d));
        for (char d = 'A'; d <= 'Z'; ++d) cls->set(static_cast<unsigned char>(d));
        cls->set('_');
        return Status::Ok();
      case 'W': {
        std::bitset<256> word;
        for (char d = '0'; d <= '9'; ++d) word.set(static_cast<unsigned char>(d));
        for (char d = 'a'; d <= 'z'; ++d) word.set(static_cast<unsigned char>(d));
        for (char d = 'A'; d <= 'Z'; ++d) word.set(static_cast<unsigned char>(d));
        word.set('_');
        *cls = ~word;
        return Status::Ok();
      }
      case 's':
        cls->set(' ');
        cls->set('\t');
        cls->set('\n');
        cls->set('\r');
        cls->set('\f');
        cls->set('\v');
        return Status::Ok();
      case 'S': {
        std::bitset<256> space;
        space.set(' ');
        space.set('\t');
        space.set('\n');
        space.set('\r');
        space.set('\f');
        space.set('\v');
        *cls = ~space;
        return Status::Ok();
      }
      default:
        // Escaped metacharacter or literal.
        cls->set(static_cast<unsigned char>(c));
        return Status::Ok();
    }
  }

  Result<Fragment> ParseClass() {
    std::bitset<256> cls;
    bool negate = false;
    if (Peek() == '^') {
      negate = true;
      Advance();
    }
    bool first = true;
    while (true) {
      if (AtEnd()) return Status::ParseError("regex: unterminated '['");
      char c = Advance();
      if (c == ']' && !first) break;
      first = false;
      unsigned char lo;
      if (c == '\\') {
        std::bitset<256> escaped;
        GS_RETURN_IF_ERROR(ParseEscape(&escaped));
        cls |= escaped;
        continue;
      }
      lo = static_cast<unsigned char>(c);
      if (Peek() == '-' && pos_ + 1 < pattern_.size() &&
          pattern_[pos_ + 1] != ']') {
        Advance();  // '-'
        unsigned char hi = static_cast<unsigned char>(Advance());
        if (hi < lo) return Status::ParseError("regex: inverted range");
        for (int b = lo; b <= hi; ++b) cls.set(static_cast<size_t>(b));
      } else {
        cls.set(lo);
      }
    }
    if (negate) cls = ~cls;
    int state = AddState(Regex::State::Kind::kClass);
    states_[state].cls = cls;
    Fragment frag;
    frag.start = state;
    frag.dangling = {{state, 0}};
    return frag;
  }

  std::string_view pattern_;
  size_t pos_ = 0;
  std::vector<Regex::State> states_;
};

Result<Regex> Regex::Compile(std::string_view pattern) {
  RegexCompiler compiler(pattern);
  return compiler.Run();
}

void Regex::AddState(int state, size_t pos, size_t len, std::vector<int>* list,
                     std::vector<uint32_t>* seen, uint32_t gen) const {
  if (state < 0) return;
  if ((*seen)[state] == gen) return;
  (*seen)[state] = gen;
  const State& s = states_[state];
  switch (s.kind) {
    case State::Kind::kSplit:
      AddState(s.next, pos, len, list, seen, gen);
      AddState(s.next2, pos, len, list, seen, gen);
      return;
    case State::Kind::kAssertStart:
      if (pos == 0) AddState(s.next, pos, len, list, seen, gen);
      return;
    case State::Kind::kAssertEnd:
      if (pos == len) AddState(s.next, pos, len, list, seen, gen);
      return;
    case State::Kind::kClass:
    case State::Kind::kMatch:
      list->push_back(state);
      return;
  }
}

bool Regex::Run(std::string_view text, bool anchored_start,
                bool require_full) const {
  std::vector<int> current, next;
  std::vector<uint32_t> seen(states_.size(), 0);
  uint32_t gen = 0;
  const size_t len = text.size();

  for (size_t pos = 0; pos <= len; ++pos) {
    ++gen;
    // Re-seed the start state at every position for unanchored search.
    // Re-seeding uses the same generation as this step's propagation so
    // duplicate states collapse.
    std::vector<int> stepped = std::move(next);
    next.clear();
    current.clear();
    for (int state : stepped) {
      AddState(state, pos, len, &current, &seen, gen);
    }
    if (!anchored_start || pos == 0) {
      AddState(start_, pos, len, &current, &seen, gen);
    }
    for (int state : current) {
      const State& s = states_[state];
      if (s.kind == State::Kind::kMatch) {
        if (!require_full || pos == len) return true;
      } else if (s.kind == State::Kind::kClass && pos < len &&
                 s.cls.test(static_cast<unsigned char>(text[pos]))) {
        next.push_back(s.next);
      }
    }
    // Anchored matching cannot re-seed, so an empty frontier is terminal.
    if (anchored_start && next.empty()) return false;
  }
  return false;
}

bool Regex::Matches(std::string_view text) const {
  return Run(text, /*anchored_start=*/false, /*require_full=*/false);
}

bool Regex::FullMatch(std::string_view text) const {
  return Run(text, /*anchored_start=*/true, /*require_full=*/true);
}

}  // namespace gigascope::udf
