#include <memory>
#include <string>

#include "common/bytes.h"
#include "common/logging.h"
#include "udf/lpm.h"
#include "udf/regex.h"
#include "udf/registry.h"

namespace gigascope::udf {

namespace {

using expr::DataType;
using expr::FunctionInfo;
using expr::Value;

/// getlpmid(addr IP, table STRING^handle) -> UINT, partial.
///
/// The paper's flagship UDF (§2.2): longest-prefix match of an address
/// against a routing-table file. The table argument is pass-by-handle: the
/// handle registration function reads the file and builds the in-memory
/// trie once, at query instantiation. Table literals starting with
/// "inline:" are parsed directly (used by tests and examples); anything
/// else is treated as a file path.
FunctionInfo MakeGetLpmId() {
  FunctionInfo info;
  info.name = "getlpmid";
  info.return_type = DataType::kUint;
  info.arg_types = {DataType::kIp, DataType::kString};
  info.partial = true;  // unmatched address = no result = tuple discarded
  info.pass_by_handle = {false, true};
  info.lfta_safe = false;
  info.cost = 200;
  info.make_handle =
      [](const Value& literal) -> Result<std::shared_ptr<void>> {
    if (literal.type() != DataType::kString) {
      return Status::TypeError("getlpmid table argument must be a string");
    }
    const std::string& spec = literal.string_value();
    constexpr std::string_view kInlinePrefix = "inline:";
    Result<LpmTable> table =
        spec.rfind(kInlinePrefix, 0) == 0
            ? LpmTable::Parse(
                  std::string_view(spec).substr(kInlinePrefix.size()))
            : LpmTable::LoadFromFile(spec);
    if (!table.ok()) return table.status();
    return std::shared_ptr<void>(
        std::make_shared<LpmTable>(std::move(table).value()));
  };
  info.invoke = [](const std::vector<Value>& args,
                   const std::vector<std::shared_ptr<void>>& handles,
                   Value* out, bool* has_result) -> Status {
    const auto* table = static_cast<const LpmTable*>(handles[1].get());
    GS_CHECK(table != nullptr);
    auto id = table->Lookup(args[0].ip_value());
    if (!id.has_value()) {
      *has_result = false;
      return Status::Ok();
    }
    *out = Value::Uint(*id);
    return Status::Ok();
  };
  return info;
}

/// match_regex(text STRING, pattern STRING^handle) -> BOOL.
///
/// The §4 experiment's HTTP detector. The pattern compiles once into a
/// Thompson NFA at instantiation; per-tuple work is a linear NFA
/// simulation.
FunctionInfo MakeMatchRegex() {
  FunctionInfo info;
  info.name = "match_regex";
  info.return_type = DataType::kBool;
  info.arg_types = {DataType::kString, DataType::kString};
  info.pass_by_handle = {false, true};
  info.lfta_safe = false;
  info.cost = 2000;
  info.make_handle =
      [](const Value& literal) -> Result<std::shared_ptr<void>> {
    if (literal.type() != DataType::kString) {
      return Status::TypeError("match_regex pattern must be a string");
    }
    Result<Regex> regex = Regex::Compile(literal.string_value());
    if (!regex.ok()) return regex.status();
    return std::shared_ptr<void>(
        std::make_shared<Regex>(std::move(regex).value()));
  };
  info.invoke = [](const std::vector<Value>& args,
                   const std::vector<std::shared_ptr<void>>& handles,
                   Value* out, bool* has_result) -> Status {
    (void)has_result;
    const auto* regex = static_cast<const Regex*>(handles[1].get());
    GS_CHECK(regex != nullptr);
    *out = Value::Bool(regex->Matches(args[0].string_value()));
    return Status::Ok();
  };
  return info;
}

/// str_find(haystack STRING, needle STRING) -> BOOL: plain substring test.
FunctionInfo MakeStrFind() {
  FunctionInfo info;
  info.name = "str_find";
  info.return_type = DataType::kBool;
  info.arg_types = {DataType::kString, DataType::kString};
  info.lfta_safe = false;  // payload scans stay out of the fast path
  info.cost = 300;
  info.invoke = [](const std::vector<Value>& args,
                   const std::vector<std::shared_ptr<void>>& handles,
                   Value* out, bool* has_result) -> Status {
    (void)handles;
    (void)has_result;
    *out = Value::Bool(args[0].string_value().find(args[1].string_value()) !=
                       std::string::npos);
    return Status::Ok();
  };
  return info;
}

/// str_len(s STRING) -> UINT.
FunctionInfo MakeStrLen() {
  FunctionInfo info;
  info.name = "str_len";
  info.return_type = DataType::kUint;
  info.arg_types = {DataType::kString};
  info.lfta_safe = true;
  info.cost = 2;
  info.invoke = [](const std::vector<Value>& args,
                   const std::vector<std::shared_ptr<void>>& handles,
                   Value* out, bool* has_result) -> Status {
    (void)handles;
    (void)has_result;
    *out = Value::Uint(args[0].string_value().size());
    return Status::Ok();
  };
  return info;
}

/// ip_in_subnet(addr IP, subnet IP, masklen UINT) -> BOOL. Cheap enough
/// for an LFTA (one mask + compare).
FunctionInfo MakeIpInSubnet() {
  FunctionInfo info;
  info.name = "ip_in_subnet";
  info.return_type = DataType::kBool;
  info.arg_types = {DataType::kIp, DataType::kIp, DataType::kUint};
  info.lfta_safe = true;
  info.cost = 3;
  info.invoke = [](const std::vector<Value>& args,
                   const std::vector<std::shared_ptr<void>>& handles,
                   Value* out, bool* has_result) -> Status {
    (void)handles;
    (void)has_result;
    uint64_t masklen = args[2].uint_value();
    if (masklen > 32) {
      return Status::InvalidArgument("ip_in_subnet: masklen > 32");
    }
    uint32_t mask =
        masklen == 0 ? 0 : ~uint32_t{0} << (32 - masklen);
    *out = Value::Bool((args[0].ip_value() & mask) ==
                       (args[1].ip_value() & mask));
    return Status::Ok();
  };
  return info;
}

/// hash64(x UINT) -> UINT. A monotone-nonrepeating-producing hash (the
/// paper's §2.1 example of how NonRepeating arises).
FunctionInfo MakeHash64() {
  FunctionInfo info;
  info.name = "hash64";
  info.return_type = DataType::kUint;
  info.arg_types = {DataType::kUint};
  info.lfta_safe = true;
  info.cost = 4;
  info.invoke = [](const std::vector<Value>& args,
                   const std::vector<std::shared_ptr<void>>& handles,
                   Value* out, bool* has_result) -> Status {
    (void)handles;
    (void)has_result;
    uint64_t x = args[0].uint_value();
    *out = Value::Uint(Fnv1a64(&x, sizeof(x)));
    return Status::Ok();
  };
  return info;
}

/// sample(key UINT, fraction FLOAT) -> BOOL: deterministic hash-based
/// sampling — keeps a tuple iff hash(key) falls in the lowest `fraction`
/// of the hash space. The paper defers sampling to future work but insists
/// it "must be integrated into the query language under the control of the
/// analyst" (§5); hashing the flow key keeps whole flows together, the
/// standard trick for trace sampling.
FunctionInfo MakeSample() {
  FunctionInfo info;
  info.name = "sample";
  info.return_type = DataType::kBool;
  info.arg_types = {DataType::kUint, DataType::kFloat};
  info.lfta_safe = true;
  info.cost = 5;
  info.invoke = [](const std::vector<Value>& args,
                   const std::vector<std::shared_ptr<void>>& handles,
                   Value* out, bool* has_result) -> Status {
    (void)handles;
    (void)has_result;
    double fraction = args[1].float_value();
    if (fraction < 0 || fraction > 1) {
      return Status::InvalidArgument("sample fraction must be in [0,1]");
    }
    uint64_t key = args[0].uint_value();
    uint64_t hash = Fnv1a64(&key, sizeof(key));
    *out = Value::Bool(static_cast<double>(hash) <
                       fraction * 18446744073709551616.0 /* 2^64 */);
    return Status::Ok();
  };
  return info;
}

}  // namespace

void RegisterBuiltins(FunctionRegistry* registry) {
  GS_CHECK(registry->Register(MakeGetLpmId()).ok());
  GS_CHECK(registry->Register(MakeMatchRegex()).ok());
  GS_CHECK(registry->Register(MakeStrFind()).ok());
  GS_CHECK(registry->Register(MakeStrLen()).ok());
  GS_CHECK(registry->Register(MakeIpInSubnet()).ok());
  GS_CHECK(registry->Register(MakeHash64()).ok());
  GS_CHECK(registry->Register(MakeSample()).ok());
}

}  // namespace gigascope::udf
