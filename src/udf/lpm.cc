#include "udf/lpm.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>

#include "common/bytes.h"

namespace gigascope::udf {

LpmTable::LpmTable() { nodes_.emplace_back(); }

Status LpmTable::Add(uint32_t prefix, int prefix_len, uint64_t id) {
  if (prefix_len < 0 || prefix_len > 32) {
    return Status::InvalidArgument("prefix length must be in [0,32], got " +
                                   std::to_string(prefix_len));
  }
  // Normalize: zero the host bits.
  uint32_t mask =
      prefix_len == 0 ? 0 : ~uint32_t{0} << (32 - prefix_len);
  prefix &= mask;

  int32_t node = 0;
  for (int depth = 0; depth < prefix_len; ++depth) {
    int bit = (prefix >> (31 - depth)) & 1;
    if (nodes_[node].child[bit] < 0) {
      nodes_[node].child[bit] = static_cast<int32_t>(nodes_.size());
      nodes_.emplace_back();
    }
    node = nodes_[node].child[bit];
  }
  if (nodes_[node].entry >= 0) {
    entries_[nodes_[node].entry].id = id;  // overwrite
    return Status::Ok();
  }
  nodes_[node].entry = static_cast<int32_t>(entries_.size());
  entries_.push_back(Entry{prefix, prefix_len, id});
  return Status::Ok();
}

std::optional<uint64_t> LpmTable::Lookup(uint32_t addr) const {
  std::optional<uint64_t> best;
  int32_t node = 0;
  for (int depth = 0; depth <= 32; ++depth) {
    if (nodes_[node].entry >= 0) best = entries_[nodes_[node].entry].id;
    if (depth == 32) break;
    int bit = (addr >> (31 - depth)) & 1;
    node = nodes_[node].child[bit];
    if (node < 0) break;
  }
  return best;
}

std::optional<uint64_t> LpmTable::LookupLinear(uint32_t addr) const {
  std::optional<uint64_t> best;
  int best_len = -1;
  for (const Entry& entry : entries_) {
    uint32_t mask =
        entry.prefix_len == 0 ? 0 : ~uint32_t{0} << (32 - entry.prefix_len);
    if ((addr & mask) == entry.prefix && entry.prefix_len > best_len) {
      best = entry.id;
      best_len = entry.prefix_len;
    }
  }
  return best;
}

Result<LpmTable> LpmTable::Parse(std::string_view text) {
  LpmTable table;
  size_t pos = 0;
  int line_no = 0;
  while (pos < text.size()) {
    size_t eol = text.find('\n', pos);
    if (eol == std::string_view::npos) eol = text.size();
    std::string line(text.substr(pos, eol - pos));
    pos = eol + 1;
    ++line_no;

    // Strip comments and whitespace.
    size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    size_t begin = line.find_first_not_of(" \t\r");
    if (begin == std::string::npos) continue;
    size_t end = line.find_last_not_of(" \t\r");
    line = line.substr(begin, end - begin + 1);

    // Format: a.b.c.d/len id
    size_t slash = line.find('/');
    if (slash == std::string::npos) {
      return Status::ParseError("lpm table line " + std::to_string(line_no) +
                                ": missing '/'");
    }
    GS_ASSIGN_OR_RETURN(uint32_t prefix, ParseIpv4(line.substr(0, slash)));
    char* after_len = nullptr;
    long len = std::strtol(line.c_str() + slash + 1, &after_len, 10);
    if (after_len == line.c_str() + slash + 1) {
      return Status::ParseError("lpm table line " + std::to_string(line_no) +
                                ": missing prefix length");
    }
    while (*after_len != '\0' &&
           std::isspace(static_cast<unsigned char>(*after_len))) {
      ++after_len;
    }
    char* after_id = nullptr;
    unsigned long long id = std::strtoull(after_len, &after_id, 10);
    if (after_id == after_len) {
      return Status::ParseError("lpm table line " + std::to_string(line_no) +
                                ": missing id");
    }
    GS_RETURN_IF_ERROR(table.Add(prefix, static_cast<int>(len), id));
  }
  return table;
}

Result<LpmTable> LpmTable::LoadFromFile(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    return Status::NotFound("cannot open lpm table file: " + path);
  }
  std::string text;
  char buffer[4096];
  size_t n;
  while ((n = std::fread(buffer, 1, sizeof(buffer), file)) > 0) {
    text.append(buffer, n);
  }
  std::fclose(file);
  return Parse(text);
}

}  // namespace gigascope::udf
