#ifndef GIGASCOPE_EXPR_NATIVE_H_
#define GIGASCOPE_EXPR_NATIVE_H_

#include <atomic>

#include "expr/vm.h"

namespace gigascope::expr {

/// A natively compiled expression kernel, the second evaluation tier beside
/// the bytecode VM (DESIGN.md §15). Implementations wrap a function loaded
/// from a per-query shared object; the contract is exactly `Eval()` in
/// expr/vm.h — same result values bit for bit, same error outcomes.
///
/// Threading: like `Evaluator`, a kernel instance may keep scratch state and
/// must only be called from one thread at a time. Each kernel is attached to
/// exactly one operator's expression, which is polled by a single worker.
class NativeKernel {
 public:
  virtual ~NativeKernel() = default;

  virtual Status Eval(const EvalContext& ctx, EvalOutput* out) = 0;
};

/// A natively compiled packed-byte filter: the jit counterpart of the
/// columnar raw-byte predicate pass in ops/select_project (PR 6). Takes the
/// undecoded payload bytes and returns nonzero when the tuple passes. The
/// caller is responsible for the minimum-payload-length guard.
using ByteFilterFn = int (*)(const unsigned char* data,
                             unsigned long long len);

/// Publication slot for a byte filter, hot-swapped like KernelSlot.
struct ByteFilterSlot {
  std::atomic<ByteFilterFn> fn{nullptr};
};

}  // namespace gigascope::expr

#endif  // GIGASCOPE_EXPR_NATIVE_H_
