#include "expr/type.h"

#include "common/bytes.h"
#include "common/logging.h"

namespace gigascope::expr {

Value Value::Bool(bool v) {
  Value value;
  value.type_ = DataType::kBool;
  value.bool_ = v;
  return value;
}

Value Value::Int(int64_t v) {
  Value value;
  value.type_ = DataType::kInt;
  value.int_ = v;
  return value;
}

Value Value::Uint(uint64_t v) {
  Value value;
  value.type_ = DataType::kUint;
  value.uint_ = v;
  return value;
}

Value Value::Float(double v) {
  Value value;
  value.type_ = DataType::kFloat;
  value.float_ = v;
  return value;
}

Value Value::String(std::string v) {
  Value value;
  value.type_ = DataType::kString;
  value.int_ = 0;
  value.string_ = std::move(v);
  return value;
}

Value Value::Ip(uint32_t v) {
  Value value;
  value.type_ = DataType::kIp;
  value.uint_ = v;
  return value;
}

Value Value::Default(DataType type) {
  switch (type) {
    case DataType::kBool:
      return Bool(false);
    case DataType::kInt:
      return Int(0);
    case DataType::kUint:
      return Uint(0);
    case DataType::kFloat:
      return Float(0);
    case DataType::kString:
      return String("");
    case DataType::kIp:
      return Ip(0);
  }
  return Int(0);
}

double Value::AsDouble() const {
  switch (type_) {
    case DataType::kBool:
      return bool_ ? 1 : 0;
    case DataType::kInt:
      return static_cast<double>(int_);
    case DataType::kUint:
    case DataType::kIp:
      return static_cast<double>(uint_);
    case DataType::kFloat:
      return float_;
    case DataType::kString:
      return 0;
  }
  return 0;
}

int Value::Compare(const Value& other) const {
  GS_CHECK(type_ == other.type_);
  auto cmp3 = [](auto a, auto b) { return a < b ? -1 : (a > b ? 1 : 0); };
  switch (type_) {
    case DataType::kBool:
      return cmp3(bool_ ? 1 : 0, other.bool_ ? 1 : 0);
    case DataType::kInt:
      return cmp3(int_, other.int_);
    case DataType::kUint:
    case DataType::kIp:
      return cmp3(uint_, other.uint_);
    case DataType::kFloat:
      return cmp3(float_, other.float_);
    case DataType::kString:
      return cmp3(string_.compare(other.string_), 0);
  }
  return 0;
}

uint64_t Value::Hash() const {
  switch (type_) {
    case DataType::kBool: {
      uint8_t byte = bool_ ? 1 : 0;
      return Fnv1a64(&byte, 1);
    }
    case DataType::kInt:
      return Fnv1a64(&int_, sizeof(int_));
    case DataType::kUint:
    case DataType::kIp:
      return Fnv1a64(&uint_, sizeof(uint_));
    case DataType::kFloat:
      return Fnv1a64(&float_, sizeof(float_));
    case DataType::kString:
      return Fnv1a64(string_.data(), string_.size());
  }
  return 0;
}

std::string Value::ToString() const {
  switch (type_) {
    case DataType::kBool:
      return bool_ ? "true" : "false";
    case DataType::kInt:
      return std::to_string(int_);
    case DataType::kUint:
      return std::to_string(uint_);
    case DataType::kFloat:
      return std::to_string(float_);
    case DataType::kString:
      return string_;
    case DataType::kIp:
      return Ipv4ToString(static_cast<uint32_t>(uint_));
  }
  return "?";
}

bool IsNumericType(DataType type) {
  return type == DataType::kInt || type == DataType::kUint ||
         type == DataType::kFloat || type == DataType::kIp;
}

Result<DataType> PromoteNumeric(DataType left, DataType right) {
  if (!IsNumericType(left) || !IsNumericType(right)) {
    return Status::TypeError(std::string("cannot apply arithmetic to ") +
                             DataTypeName(left) + " and " +
                             DataTypeName(right));
  }
  if (left == DataType::kFloat || right == DataType::kFloat) {
    return DataType::kFloat;
  }
  if (left == DataType::kUint || right == DataType::kUint ||
      left == DataType::kIp || right == DataType::kIp) {
    return DataType::kUint;
  }
  return DataType::kInt;
}

int64_t SaturatingDoubleToInt64(double v) {
  // `v != v` instead of std::isnan so the native tier can emit the exact
  // same expression without pulling <cmath> into generated code.
  if (v != v) return 0;
  if (v >= 9223372036854775808.0) return INT64_MAX;   // 2^63
  if (v < -9223372036854775808.0) return INT64_MIN;   // -2^63 is exact
  return static_cast<int64_t>(v);
}

uint64_t SaturatingDoubleToUint64(double v) {
  if (v != v) return 0;
  if (v >= 18446744073709551616.0) return UINT64_MAX;  // 2^64
  if (v < 0) return 0;
  return static_cast<uint64_t>(v);
}

Result<Value> CastValue(const Value& value, DataType target) {
  if (value.type() == target) return value;
  switch (target) {
    case DataType::kInt:
      switch (value.type()) {
        case DataType::kUint:
        case DataType::kIp:
          return Value::Int(static_cast<int64_t>(value.uint_value()));
        case DataType::kFloat:
          return Value::Int(SaturatingDoubleToInt64(value.float_value()));
        case DataType::kBool:
          return Value::Int(value.bool_value() ? 1 : 0);
        default:
          break;
      }
      break;
    case DataType::kUint:
      switch (value.type()) {
        case DataType::kInt:
          return Value::Uint(static_cast<uint64_t>(value.int_value()));
        case DataType::kIp:
          return Value::Uint(value.uint_value());
        case DataType::kFloat:
          return Value::Uint(SaturatingDoubleToUint64(value.float_value()));
        case DataType::kBool:
          return Value::Uint(value.bool_value() ? 1 : 0);
        default:
          break;
      }
      break;
    case DataType::kFloat:
      if (value.type() != DataType::kString) {
        return Value::Float(value.AsDouble());
      }
      break;
    case DataType::kIp:
      switch (value.type()) {
        case DataType::kUint:
          return Value::Ip(static_cast<uint32_t>(value.uint_value()));
        case DataType::kInt:
          return Value::Ip(static_cast<uint32_t>(value.int_value()));
        default:
          break;
      }
      break;
    case DataType::kBool:
      if (IsNumericType(value.type())) {
        return Value::Bool(value.AsDouble() != 0);
      }
      break;
    case DataType::kString:
      break;
  }
  return Status::TypeError(std::string("cannot cast ") +
                           DataTypeName(value.type()) + " to " +
                           DataTypeName(target));
}

}  // namespace gigascope::expr
