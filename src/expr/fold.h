#ifndef GIGASCOPE_EXPR_FOLD_H_
#define GIGASCOPE_EXPR_FOLD_H_

#include "expr/ir.h"

namespace gigascope::expr {

/// Constant folding: replaces subtrees that reference no fields, parameters,
/// or function calls with their constant value. Function calls are never
/// folded (UDFs may be stateful or handle-bound); parameters are never
/// folded (they can change on the fly, §3). Folding failures (e.g. a literal
/// division by zero) leave the subtree unchanged so the runtime reports the
/// error per tuple.
IrPtr FoldConstants(const IrPtr& ir);

}  // namespace gigascope::expr

#endif  // GIGASCOPE_EXPR_FOLD_H_
