#include "expr/fold.h"

#include "expr/codegen.h"
#include "expr/vm.h"

namespace gigascope::expr {

IrPtr FoldConstants(const IrPtr& ir) {
  if (ir == nullptr) return nullptr;
  if (ir->kind == IrKind::kConst) return ir;

  // Fold children first; a node folds only if every child became constant,
  // so fields, parameters, and calls naturally stop propagation.
  auto folded = std::make_shared<IrNode>(*ir);
  folded->children.clear();
  for (const IrPtr& child : ir->children) {
    folded->children.push_back(FoldConstants(child));
  }

  if (ir->kind == IrKind::kField || ir->kind == IrKind::kParam ||
      ir->kind == IrKind::kCall) {
    return folded;
  }

  for (const IrPtr& child : folded->children) {
    if (child->kind != IrKind::kConst) return folded;
  }

  auto compiled = Compile(folded);
  if (!compiled.ok()) return folded;
  EvalContext ctx;
  EvalOutput out;
  Status status = Eval(*compiled, ctx, &out);
  // On evaluation failure (e.g. literal division by zero) keep the subtree
  // so the error surfaces per tuple at runtime.
  if (!status.ok() || !out.has_value) return folded;
  return MakeConst(std::move(out.value));
}

}  // namespace gigascope::expr
