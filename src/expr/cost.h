#ifndef GIGASCOPE_EXPR_COST_H_
#define GIGASCOPE_EXPR_COST_H_

#include "expr/ir.h"

namespace gigascope::expr {

/// Abstract per-evaluation cost of an expression, in units of one
/// arithmetic operation. Function calls contribute their declared cost.
double EstimateCost(const IrPtr& ir);

/// Whether an expression may run in an LFTA (§3): every function it calls
/// must be flagged `lfta_safe`, and its total cost must stay under
/// `kLftaCostBudget`. Expensive work (regular expressions, prefix-table
/// joins) is forced up to the HFTA — "regular expression finding is too
/// expensive for an LFTA" (§4).
bool IsLftaSafe(const IrPtr& ir);

/// Cost ceiling for LFTA-resident expressions.
constexpr double kLftaCostBudget = 64;

}  // namespace gigascope::expr

#endif  // GIGASCOPE_EXPR_COST_H_
